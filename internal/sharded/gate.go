package sharded

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// Admission errors. Callers map these to transport-level responses
// (cmd/ratelimiter: ErrShed -> 429, deadline/close -> 503).
var (
	// ErrShed reports that the gate's waiter bound was already full:
	// the request was rejected immediately instead of queued. Shedding
	// early is the point — a request that would only time out in the
	// queue is cheapest to refuse at the door.
	ErrShed = errors.New("sharded: gate at capacity, request shed")
	// ErrClosed reports that the gate has begun draining: no acquire
	// succeeds after Close, even with free permits.
	ErrClosed = errors.New("sharded: gate closed")
)

// Gate is the admission-controlled front of the striped semaphore: at
// most `permits` callers hold it concurrently, at most `maxWaiters`
// more may wait, and everyone beyond that is shed immediately with
// ErrShed. Bounding the waiting room is what keeps tail latency
// bounded under overload: with W waiters ahead and P permits cycling
// every service time S, the worst queue delay is ~S*(W/P+1) no matter
// how far the offered rate exceeds capacity, while an unbounded
// semaphore's queue — and so its p99 — grows with every excess
// arrival. Outcome counts ride the striped Counter so the accounting
// adds nothing to the hot path's contention.
//
// The zero value is not ready; use NewGate.
type Gate struct {
	sem        *Semaphore
	permits    int64
	maxWaiters int64
	waiters    atomic.Int64
	inflight   atomic.Int64
	closed     atomic.Bool

	admitted *Counter
	shed     *Counter
	timedOut *Counter
	canceled *Counter
}

// NewGate returns a gate over a striped semaphore with the given
// permit count. maxWaiters bounds the waiting room: 0 means shed the
// moment no permit is free (pure try), < 0 means an unbounded room
// (no shedding; deadlines are then the only backpressure). stripes
// sizes the semaphore and counters as in NewSemaphore/NewCounter.
func NewGate(permits int64, maxWaiters int, stripes int) *Gate {
	return &Gate{
		sem:        NewSemaphore(permits, stripes),
		permits:    permits,
		maxWaiters: int64(maxWaiters),
		admitted:   NewCounter(stripes),
		shed:       NewCounter(stripes),
		timedOut:   NewCounter(stripes),
		canceled:   NewCounter(stripes),
	}
}

// Capacity reports the permit count.
func (g *Gate) Capacity() int64 { return g.permits }

// admit records a successful acquisition, re-checking closure: a
// permit grabbed concurrently with Close goes straight back so Drain
// never waits on a caller admitted after the drain began.
func (g *Gate) admit() error {
	if g.closed.Load() {
		g.sem.Release()
		return ErrClosed
	}
	g.inflight.Add(1)
	g.admitted.Inc()
	return nil
}

// waitErr classifies a context failure into the gate's counters.
func (g *Gate) waitErr(ctx context.Context) error {
	err := ctx.Err()
	if errors.Is(err, context.DeadlineExceeded) {
		g.timedOut.Inc()
	} else {
		g.canceled.Inc()
	}
	return err
}

// Acquire admits the caller or reports why not: nil (admitted — pair
// with Release), ErrShed (waiting room full), ErrClosed (draining), or
// ctx.Err() (deadline/cancellation while waiting). The wait uses the
// same bounded backoff as Semaphore.AcquireContext.
func (g *Gate) Acquire(ctx context.Context) error {
	if g.closed.Load() {
		return ErrClosed
	}
	if g.sem.TryAcquire() {
		return g.admit()
	}
	// No permit free: enter the bounded waiting room or shed.
	if g.maxWaiters >= 0 {
		if g.waiters.Add(1) > g.maxWaiters {
			g.waiters.Add(-1)
			g.shed.Inc()
			return ErrShed
		}
	} else {
		g.waiters.Add(1)
	}
	defer g.waiters.Add(-1)

	b := newBackoff()
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		if g.closed.Load() {
			return ErrClosed
		}
		if g.sem.TryAcquire() {
			return g.admit()
		}
		d := b.next()
		if d <= 0 {
			select {
			case <-ctx.Done():
				return g.waitErr(ctx)
			default:
			}
			continue
		}
		if timer == nil {
			timer = time.NewTimer(d)
		} else {
			timer.Reset(d)
		}
		select {
		case <-ctx.Done():
			return g.waitErr(ctx)
		case <-timer.C:
		}
	}
}

// Release returns an admitted caller's permit.
func (g *Gate) Release() {
	g.inflight.Add(-1)
	g.sem.Release()
}

// Close begins the drain: every subsequent (and every waiting) Acquire
// fails with ErrClosed; permits already held stay valid until their
// Release. Idempotent.
func (g *Gate) Close() { g.closed.Store(true) }

// Closed reports whether the drain has begun.
func (g *Gate) Closed() bool { return g.closed.Load() }

// Drain closes the gate and waits until every admitted caller has
// released, or ctx is done. After a nil return the gate holds its full
// permit complement and no caller is inside.
func (g *Gate) Drain(ctx context.Context) error {
	g.Close()
	b := newBackoff()
	for g.inflight.Load() != 0 {
		d := b.next()
		if d <= 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
			continue
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(d):
		}
	}
	return nil
}

// GateStats is a point-in-time snapshot of the admission counters.
type GateStats struct {
	Admitted int64 // acquisitions granted
	Shed     int64 // rejected at the door (waiting room full)
	TimedOut int64 // deadline expired while waiting
	Canceled int64 // context canceled while waiting
	InFlight int64 // currently admitted, not yet released
	Waiting  int64 // currently in the waiting room
	Closed   bool
}

// Stats snapshots the counters — linearizable-enough concurrent with
// traffic, exact once the gate quiesces.
func (g *Gate) Stats() GateStats {
	return GateStats{
		Admitted: g.admitted.Load(),
		Shed:     g.shed.Load(),
		TimedOut: g.timedOut.Load(),
		Canceled: g.canceled.Load(),
		InFlight: g.inflight.Load(),
		Waiting:  g.waiters.Load(),
		Closed:   g.closed.Load(),
	}
}
