package sharded

import (
	"runtime"
	"unsafe"

	"repro/internal/core"
)

// paddedRW keeps each shard's queue tail on its own cache line.
type paddedRW struct {
	mu core.RWMutex
	_  [64 - unsafe.Sizeof(core.RWMutex{})%64]byte
}

// Compile-time guard: a shard must occupy whole cache lines, or
// adjacent shards false-share and the sharding buys nothing.
const _ = -(unsafe.Sizeof(paddedRW{}) % 64)

// RWMutex is the reader-biased sharded reader-writer lock: an array of
// the mechanism's core.RWMutex queues (so every shard inherits the
// paper's local-spin node queue). A reader takes exactly one shard —
// chosen by the same goroutine-affine hash as the striped counter — so
// read acquisitions from different cores touch different cache lines
// and scale near-linearly. A writer sweeps all shards in index order,
// paying O(shards); the bias is deliberate and is the standard
// big-reader ("brlock") trade for read-mostly data.
//
// Within each shard the underlying queue is FIFO-fair, so a writer
// cannot be starved indefinitely by readers on any shard: it enqueues
// behind the current batch like any other waiter.
type RWMutex struct {
	shards []paddedRW
	mask   uint64
}

// RToken records which shard a reader holds and the shard's own token.
type RToken struct {
	shard int
	tok   *core.RToken
}

// NewRWMutex returns a sharded reader-writer lock with at least shards
// shards (rounded up to a power of two). shards <= 0 sizes to
// GOMAXPROCS.
func NewRWMutex(shards int) *RWMutex {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	return &RWMutex{shards: make([]paddedRW, n), mask: uint64(n - 1)}
}

// Shards reports the shard count.
func (rw *RWMutex) Shards() int { return len(rw.shards) }

// RLock acquires read access on the caller's home shard and returns
// the token to release it with.
func (rw *RWMutex) RLock() RToken {
	i := int(stripeHint() & rw.mask)
	return RToken{shard: i, tok: rw.shards[i].mu.RLock()}
}

// RUnlock releases a read acquisition made with RLock.
func (rw *RWMutex) RUnlock(t RToken) {
	rw.shards[t.shard].mu.RUnlock(t.tok)
}

// Lock acquires write access by locking every shard in index order
// (total order prevents writer-writer deadlock).
func (rw *RWMutex) Lock() {
	for i := range rw.shards {
		rw.shards[i].mu.Lock()
	}
}

// Unlock releases write access shard by shard.
func (rw *RWMutex) Unlock() {
	for i := range rw.shards {
		rw.shards[i].mu.Unlock()
	}
}
