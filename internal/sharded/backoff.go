package sharded

import (
	"runtime"
	"time"
)

// Acquisition backoff. The original Semaphore.Acquire hot-spun on
// runtime.Gosched(): under contention every blocked goroutine burned a
// full core re-sweeping the stripes, and under overload the sweeps
// themselves became the contention (each failed CAS dirties the stripe
// line for the releaser it is waiting on). The fix is the classic
// bounded exponential backoff, staged to keep the uncontended path
// free:
//
//  1. spin tier — a few immediate re-sweeps, for permits released
//     within nanoseconds;
//  2. yield tier — runtime.Gosched() rounds, for permits released
//     within a scheduling quantum;
//  3. sleep tier — exponentially growing, capped sleeps with
//     deterministic jitter, for genuine scarcity.
//
// The jitter stream is seeded from the goroutine-affine stripe hint
// and stepped by xorshift, so it needs no global RNG, costs no
// synchronization, and — given a fixed seed — replays the same
// schedule, which is what backoffSchedule's tests pin. Jitter draws
// from [cap/2, cap): desynchronizing sleepers matters more than the
// exact mean, and keeping at least half the nominal backoff preserves
// the exponential envelope.
type backoff struct {
	attempt int
	rng     uint64
}

const (
	backoffSpin     = 4                      // tier-1 immediate retries
	backoffYield    = 8                      // tier-2 Gosched rounds
	backoffSleepMin = 2 * time.Microsecond   // first tier-3 sleep cap
	backoffSleepMax = 256 * time.Microsecond // bounded: never sleep longer
)

// newBackoff seeds the jitter stream from the caller's stripe hint.
func newBackoff() backoff {
	return backoff{rng: stripeHint() | 1}
}

// next advances one attempt and returns how long to sleep: 0 means the
// tier already waited in place (spin or yield). Callers that must poll
// cancellation sleep through their own timer; plain callers just
// time.Sleep the result.
func (b *backoff) next() time.Duration {
	a := b.attempt
	b.attempt++
	switch {
	case a < backoffSpin:
		return 0
	case a < backoffSpin+backoffYield:
		runtime.Gosched()
		return 0
	}
	shift := uint(a - backoffSpin - backoffYield)
	d := backoffSleepMin << shift
	if shift >= 16 || d > backoffSleepMax || d <= 0 {
		d = backoffSleepMax
	}
	// xorshift64 step; the low bits are fine for a jitter draw.
	b.rng ^= b.rng << 13
	b.rng ^= b.rng >> 7
	b.rng ^= b.rng << 17
	half := d / 2
	return half + time.Duration(b.rng%uint64(half))
}
