package sharded

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGateBasic(t *testing.T) {
	g := NewGate(2, 0, 4)
	ctx := context.Background()
	if err := g.Acquire(ctx); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if err := g.Acquire(ctx); err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	// maxWaiters=0: no waiting room, immediate shed.
	if err := g.Acquire(ctx); !errors.Is(err, ErrShed) {
		t.Fatalf("over-capacity acquire = %v, want ErrShed", err)
	}
	g.Release()
	if err := g.Acquire(ctx); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	g.Release()
	g.Release()
	st := g.Stats()
	if st.Admitted != 3 || st.Shed != 1 || st.InFlight != 0 {
		t.Fatalf("stats = %+v, want admitted=3 shed=1 inflight=0", st)
	}
}

func TestGateDeadlineWhileWaiting(t *testing.T) {
	g := NewGate(1, 4, 4)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := g.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	g.Release()
	st := g.Stats()
	if st.TimedOut != 1 || st.Waiting != 0 {
		t.Fatalf("stats = %+v, want timedOut=1 waiting=0", st)
	}
}

// TestGateConservation is the -race storm the issue asks for: permits
// must never be lost across interleaved sheds, deadline expiries,
// cancellations, and successful admissions. Every admission is
// released; afterwards the semaphore holds its full complement and
// every op is accounted exactly once.
func TestGateConservation(t *testing.T) {
	const permits, maxWaiters, goroutines, iters = 3, 4, 16, 300
	g := NewGate(permits, maxWaiters, 4)
	var ok, shed, timedOut, canceled atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := uint64(w)*0x9e3779b97f4a7c15 + 1
			for i := 0; i < iters; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				ctx := context.Background()
				var cancel context.CancelFunc
				switch rng % 3 {
				case 0: // tight deadline: often expires in the waiting room
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng%50)*time.Microsecond)
				case 1: // cancellation racing the admission
					ctx, cancel = context.WithCancel(ctx)
					if rng%2 == 0 {
						cancel()
					} else {
						go cancel()
					}
				default: // patient caller
					ctx, cancel = context.WithTimeout(ctx, time.Second)
				}
				err := g.Acquire(ctx)
				switch {
				case err == nil:
					if rng%4 == 0 {
						time.Sleep(time.Duration(rng%20) * time.Microsecond)
					}
					g.Release()
					ok.Add(1)
				case errors.Is(err, ErrShed):
					shed.Add(1)
				case errors.Is(err, context.DeadlineExceeded):
					timedOut.Add(1)
				case errors.Is(err, context.Canceled):
					canceled.Add(1)
				default:
					t.Errorf("unexpected acquire error: %v", err)
				}
				cancel()
			}
		}()
	}
	wg.Wait()
	total := ok.Load() + shed.Load() + timedOut.Load() + canceled.Load()
	if want := int64(goroutines * iters); total != want {
		t.Fatalf("accounted %d ops, want %d", total, want)
	}
	st := g.Stats()
	if st.InFlight != 0 || st.Waiting != 0 {
		t.Fatalf("quiesced gate still shows inflight=%d waiting=%d", st.InFlight, st.Waiting)
	}
	if got := g.sem.Value(); got != permits {
		t.Fatalf("permits after storm = %d, want %d (lost or duplicated)", got, permits)
	}
	if st.Admitted != ok.Load() || st.Shed != shed.Load() ||
		st.TimedOut != timedOut.Load() || st.Canceled != canceled.Load() {
		t.Fatalf("counter mismatch: gate %+v vs observed ok=%d shed=%d to=%d cancel=%d",
			st, ok.Load(), shed.Load(), timedOut.Load(), canceled.Load())
	}
}

// TestGateDrain: after Close, no acquire succeeds (free permits or
// not), parked waiters unblock with ErrClosed, and Drain returns once
// the holders release.
func TestGateDrain(t *testing.T) {
	const permits = 2
	g := NewGate(permits, 8, 4)
	ctx := context.Background()
	// Fill the permits.
	for i := 0; i < permits; i++ {
		if err := g.Acquire(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// Park waiters behind them.
	const waiters = 4
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func() { errs <- g.Acquire(ctx) }()
	}
	time.Sleep(5 * time.Millisecond) // let them reach the waiting room

	g.Close()
	for i := 0; i < waiters; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("parked waiter got %v, want ErrClosed", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("waiter did not unblock after Close")
		}
	}
	// New arrivals fail even though permits will come free.
	if err := g.Acquire(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close acquire = %v, want ErrClosed", err)
	}

	// Drain must wait for the holders, then report a quiet gate.
	drained := make(chan error, 1)
	go func() {
		dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- g.Drain(dctx)
	}()
	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v with %d holders inside", err, permits)
	case <-time.After(20 * time.Millisecond):
	}
	g.Release()
	g.Release()
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("Drain: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Drain did not return after all releases")
	}
	if got := g.sem.Value(); got != permits {
		t.Fatalf("permits after drain = %d, want %d", got, permits)
	}
	if st := g.Stats(); st.InFlight != 0 || !st.Closed {
		t.Fatalf("post-drain stats = %+v", st)
	}
}

// TestGateDrainRace: Close racing a storm of acquirers — any acquire
// that wins a permit concurrently with Close either completes (and is
// awaited by Drain) or is rolled back; either way Drain's nil return
// means zero callers inside and a full permit pool.
func TestGateDrainRace(t *testing.T) {
	const permits, goroutines = 2, 12
	g := NewGate(permits, goroutines, 4)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
				if err := g.Acquire(ctx); err == nil {
					g.Release()
				}
				cancel()
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := g.Drain(dctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	close(stop)
	wg.Wait()
	if got := g.sem.Value(); got != permits {
		t.Fatalf("permits after drain race = %d, want %d", got, permits)
	}
	if st := g.Stats(); st.InFlight != 0 {
		t.Fatalf("inflight after drain = %d", st.InFlight)
	}
}

func TestGateUnboundedWaiters(t *testing.T) {
	g := NewGate(1, -1, 2)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Unbounded room: nobody sheds; the deadline is the only exit.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if err := g.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded (never ErrShed)", err)
	}
	g.Release()
	if st := g.Stats(); st.Shed != 0 {
		t.Fatalf("unbounded gate shed %d", st.Shed)
	}
}
