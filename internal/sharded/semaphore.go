package sharded

import (
	"context"
	"runtime"
	"sync/atomic"
	"time"
)

// semStripe keeps each permit cell on its own cache line.
type semStripe struct {
	v atomic.Int64
	_ [56]byte
}

// Semaphore is the striped counting semaphore — the real-runtime twin
// of the simulator's sem-sharded (internal/simsync): the permit pool
// is split across cache-line-padded stripes; Release returns a permit
// to the caller's goroutine-affine home stripe with one uncontended
// fetch&add, and Acquire tries the home stripe first before sweeping
// the others for a permit released elsewhere. In the steady state of a
// pipeline — each worker releasing roughly what it acquires — permits
// circulate within a stripe and acquire/release never touch a shared
// cache line, which is where a single-word semaphore melts at high
// core counts.
//
// The trade: Acquire under scarcity is O(stripes) per sweep, and the
// semaphore makes no fairness guarantee across stripes (a releaser's
// neighbor may win before an older waiter on another stripe). Use it
// for high-rate resource pools where throughput beats FIFO; the
// mechanism's core.Semaphore remains the fair choice.
//
// The zero value is not ready; use NewSemaphore.
type Semaphore struct {
	stripes []semStripe
	mask    uint64
}

// NewSemaphore returns a striped semaphore holding permits permits
// spread over at least stripes cells (rounded up to a power of two).
// stripes <= 0 sizes to GOMAXPROCS.
func NewSemaphore(permits int64, stripes int) *Semaphore {
	if stripes <= 0 {
		stripes = runtime.GOMAXPROCS(0)
	}
	if permits < 0 {
		permits = 0
	}
	n := 1
	for n < stripes {
		n <<= 1
	}
	s := &Semaphore{stripes: make([]semStripe, n), mask: uint64(n - 1)}
	// Round-robin distribution, computed per stripe: permits/n each,
	// with the first permits%n stripes carrying one extra. Plain stores
	// are fine — the semaphore is unpublished during construction.
	each, extra := permits/int64(n), permits%int64(n)
	for i := range s.stripes {
		share := each
		if int64(i) < extra {
			share++
		}
		s.stripes[i].v.Store(share)
	}
	return s
}

// Stripes reports the stripe count.
func (s *Semaphore) Stripes() int { return len(s.stripes) }

// tryDec decrements st if it is positive, reporting success. A failed
// CAS means another goroutine moved the stripe — progress was made
// globally — so the caller just moves its sweep along.
func tryDec(st *semStripe) bool {
	for {
		v := st.v.Load()
		if v <= 0 {
			return false
		}
		if st.v.CompareAndSwap(v, v-1) {
			return true
		}
	}
}

// TryAcquire takes one permit without blocking: the home stripe first,
// then one sweep of the rest. It reports false only after observing
// every stripe empty (permits released concurrently with the sweep may
// be missed — the usual TryAcquire weakening).
func (s *Semaphore) TryAcquire() bool {
	home := stripeHint() & s.mask
	n := uint64(len(s.stripes))
	for k := uint64(0); k < n; k++ {
		if tryDec(&s.stripes[(home+k)&s.mask]) {
			return true
		}
	}
	return false
}

// Acquire takes one permit, waiting with bounded exponential backoff
// (see backoff.go) until one is available. The uncontended path is one
// stripe sweep with no backoff machinery touched.
func (s *Semaphore) Acquire() {
	if s.TryAcquire() {
		return
	}
	b := newBackoff()
	for {
		if s.TryAcquire() {
			return
		}
		if d := b.next(); d > 0 {
			time.Sleep(d)
		}
	}
}

// AcquireContext takes one permit, waiting until one is available or
// ctx is done, in which case it returns ctx.Err() and takes nothing.
// The fast path is exactly Acquire's; a blocked acquirer backs off
// like Acquire but sleeps through a reusable timer raced against
// ctx.Done(), so cancellation is seen promptly without a spinning
// goroutine burning a core (the old implementation Gosched-spun at
// full speed under contention). This is the striped analogue of the
// simulator's bounded acquires (simsync.BoundedLock): a worker stuck
// behind a drained pool can give up instead of wedging its pipeline.
func (s *Semaphore) AcquireContext(ctx context.Context) error {
	if s.TryAcquire() {
		return nil
	}
	b := newBackoff()
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		if s.TryAcquire() {
			return nil
		}
		d := b.next()
		if d <= 0 {
			// Spin/yield tiers: one non-blocking cancellation poll.
			select {
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
			continue
		}
		if timer == nil {
			timer = time.NewTimer(d)
		} else {
			timer.Reset(d)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-timer.C:
		}
	}
}

// AcquireTimeout takes one permit, waiting at most d, and reports
// whether it succeeded. d <= 0 degenerates to one TryAcquire sweep.
// Unlike AcquireContext it allocates nothing on the wait path (no
// context, no timer), so it is the deadline primitive the saturation
// harness drives in tight loops.
func (s *Semaphore) AcquireTimeout(d time.Duration) bool {
	if s.TryAcquire() {
		return true
	}
	if d <= 0 {
		return false
	}
	deadline := time.Now().Add(d)
	b := newBackoff()
	for {
		if s.TryAcquire() {
			return true
		}
		w := b.next()
		remain := time.Until(deadline)
		if remain <= 0 {
			return false
		}
		if w > 0 {
			if w > remain {
				w = remain
			}
			time.Sleep(w)
		}
	}
}

// Release returns one permit to the caller's home stripe.
func (s *Semaphore) Release() {
	s.stripes[stripeHint()&s.mask].v.Add(1)
}

// Value combines the stripes into the number of currently available
// permits — a statistics read, linearizable-enough concurrent with
// acquirers and releasers.
func (s *Semaphore) Value() int64 {
	var total int64
	for i := range s.stripes {
		total += s.stripes[i].v.Load()
	}
	return total
}
