// Package sharded holds the scalability layer grown on top of the
// reconstructed mechanism: primitives that trade a little read-side or
// write-side work for hot paths that scale with the core count instead
// of colliding on one cache line. The simulator twin lives in
// internal/simsync (ctr-sharded); this package is the real-runtime
// version the library actually ships.
package sharded

import (
	"runtime"
	"sync/atomic"
	"unsafe"
)

// stripe is one cache-line-padded counter cell.
type stripe struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a striped (per-CPU-style) counter: each increment is one
// fetch&add on one of GOMAXPROCS-rounded-up-to-a-power-of-two stripes
// chosen by a cheap goroutine-affine hash, so concurrent writers almost
// never share a cache line, and reads fall back to combining the
// stripes. Use it where the write rate is high and reads are occasional
// (metrics, admission counts, progress tracking); a central atomic is
// better when every caller needs the exact running total.
//
// The zero value is not ready; use NewCounter.
type Counter struct {
	stripes []stripe
	mask    uint64
}

// NewCounter returns a striped counter with at least stripes cells
// (rounded up to a power of two). stripes <= 0 sizes to GOMAXPROCS.
func NewCounter(stripes int) *Counter {
	if stripes <= 0 {
		stripes = runtime.GOMAXPROCS(0)
	}
	n := 1
	for n < stripes {
		n <<= 1
	}
	return &Counter{stripes: make([]stripe, n), mask: uint64(n - 1)}
}

// stripeHint derives a goroutine-affine stripe hint: the address of a
// stack variable differs per goroutine (and stays stable while the
// stack doesn't move), so hashing it spreads concurrent goroutines
// across stripes without runtime hooks or thread-local storage.
func stripeHint() uint64 {
	var b byte
	h := uint64(uintptr(unsafe.Pointer(&b)))
	// splitmix64-style finalizer: stack addresses share high bits, so
	// mix them down hard before masking.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Add adds d to the counter: one wait-free fetch&add on the caller's
// home stripe. A fetch&add cannot fail, so there is no retry loop to
// spill contention onto other goroutines' stripes; the combining
// happens on the read side, where Load folds the stripes together.
func (c *Counter) Add(d int64) {
	c.stripes[stripeHint()&c.mask].v.Add(d)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Load combines the stripes into the current total. Concurrent with
// writers it is a linearizable-enough snapshot for statistics: every
// Add completed before Load began is included.
func (c *Counter) Load() int64 {
	var total int64
	for i := range c.stripes {
		total += c.stripes[i].v.Load()
	}
	return total
}

// Stripes reports the stripe count (for sizing tables and tests).
func (c *Counter) Stripes() int { return len(c.stripes) }

// CentralCounter is the baseline the striped counter is measured
// against: one atomic word, every increment an interconnect
// transaction on the same cache line.
type CentralCounter struct {
	v atomic.Int64
}

// NewCentralCounter returns a zeroed central counter.
func NewCentralCounter() *CentralCounter { return &CentralCounter{} }

// Add adds d.
func (c *CentralCounter) Add(d int64) { c.v.Add(d) }

// Inc adds one.
func (c *CentralCounter) Inc() { c.v.Add(1) }

// Load returns the current total.
func (c *CentralCounter) Load() int64 { return c.v.Load() }
