package sharded

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestSemaphoreBoundAndConservation(t *testing.T) {
	const permits, goroutines, iters = 4, 16, 2000
	s := NewSemaphore(permits, 0)
	var inside, worst atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s.Acquire()
				in := inside.Add(1)
				for {
					w := worst.Load()
					if in <= w || worst.CompareAndSwap(w, in) {
						break
					}
				}
				inside.Add(-1)
				s.Release()
			}
		}()
	}
	wg.Wait()
	if w := worst.Load(); w > permits {
		t.Fatalf("%d goroutines held permits concurrently, bound is %d", w, permits)
	}
	if got := s.Value(); got != permits {
		t.Fatalf("permits after run = %d, want %d (lost or duplicated)", got, permits)
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	s := NewSemaphore(2, 4)
	if !s.TryAcquire() || !s.TryAcquire() {
		t.Fatal("TryAcquire failed with permits available")
	}
	if s.TryAcquire() {
		t.Fatal("TryAcquire succeeded with no permits")
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("TryAcquire failed after Release")
	}
}

// A permit released on one stripe must be acquirable from a goroutine
// whose home is another stripe (the sweep): exhaust permits from the
// main goroutine, release them from many others, re-acquire all.
func TestSemaphoreCrossStripeSteal(t *testing.T) {
	const permits = 8
	s := NewSemaphore(permits, 8)
	for i := 0; i < permits; i++ {
		s.Acquire()
	}
	var wg sync.WaitGroup
	for i := 0; i < permits; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); s.Release() }()
	}
	wg.Wait()
	for i := 0; i < permits; i++ {
		if !s.TryAcquire() {
			t.Fatalf("permit %d not found by sweep", i)
		}
	}
	if s.TryAcquire() {
		t.Fatal("extra permit materialized")
	}
}

func TestSemaphoreSizing(t *testing.T) {
	if n := NewSemaphore(1, 3).Stripes(); n != 4 {
		t.Fatalf("stripes = %d, want 4 (power-of-two rounding)", n)
	}
	if n := NewSemaphore(1, 0).Stripes(); n < 1 {
		t.Fatalf("auto sizing gave %d stripes", n)
	}
	// Permits spread over stripes must sum exactly.
	if v := NewSemaphore(11, 4).Value(); v != 11 {
		t.Fatalf("initial permits = %d, want 11", v)
	}
}
