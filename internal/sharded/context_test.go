package sharded

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestAcquireContextImmediate: with a permit available, AcquireContext
// returns nil without consulting the context.
func TestAcquireContextImmediate(t *testing.T) {
	s := NewSemaphore(2, 4)
	if err := s.AcquireContext(context.Background()); err != nil {
		t.Fatalf("acquire with permits available: %v", err)
	}
	s.Release()
}

// TestAcquireContextCanceled: a canceled context aborts the wait with
// ctx.Err() and consumes no permit.
func TestAcquireContextCanceled(t *testing.T) {
	s := NewSemaphore(1, 4)
	s.Acquire() // drain the only permit

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.AcquireContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := s.Value(); got != 0 {
		t.Fatalf("aborted acquire changed the permit count: %d", got)
	}
	s.Release()
	if err := s.AcquireContext(context.Background()); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	s.Release()
}

// TestAcquireContextDeadline: a deadline expiring mid-wait unblocks the
// waiter with DeadlineExceeded instead of spinning forever.
func TestAcquireContextDeadline(t *testing.T) {
	s := NewSemaphore(1, 4)
	s.Acquire()
	defer s.Release()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s.AcquireContext(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestAcquireContextContended: waiters blocked on a full semaphore pick
// up permits as they are released; no acquire is lost and the final
// permit count balances.
func TestAcquireContextContended(t *testing.T) {
	const permits, waiters = 2, 8
	s := NewSemaphore(permits, 4)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.AcquireContext(ctx); err != nil {
				errs <- err
				return
			}
			time.Sleep(time.Millisecond)
			s.Release()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("contended acquire: %v", err)
	}
	if got := s.Value(); got != permits {
		t.Errorf("final permit count = %d, want %d", got, permits)
	}
}
