package sharded

import (
	"testing"
	"time"
)

// TestBackoffSchedule pins the tier structure and the deterministic
// jitter: same seed, same schedule; sleeps stay within the bounded
// exponential envelope [cap/2, cap] up to backoffSleepMax.
func TestBackoffSchedule(t *testing.T) {
	a := backoff{rng: 12345}
	b := backoff{rng: 12345}
	capFor := func(attempt int) time.Duration {
		shift := uint(attempt - backoffSpin - backoffYield)
		d := backoffSleepMin << shift
		if shift >= 16 || d > backoffSleepMax || d <= 0 {
			d = backoffSleepMax
		}
		return d
	}
	for i := 0; i < 64; i++ {
		da, db := a.next(), b.next()
		if da != db {
			t.Fatalf("attempt %d: same seed diverged (%v vs %v)", i, da, db)
		}
		switch {
		case i < backoffSpin+backoffYield:
			if da != 0 {
				t.Fatalf("attempt %d: spin/yield tier slept %v", i, da)
			}
		default:
			c := capFor(i)
			if da < c/2 || da >= c {
				t.Fatalf("attempt %d: sleep %v outside jitter envelope [%v, %v)", i, da, c/2, c)
			}
			if da > backoffSleepMax {
				t.Fatalf("attempt %d: sleep %v exceeds bound %v", i, da, backoffSleepMax)
			}
		}
	}
}

// TestBackoffSeedsDiffer: distinct seeds must desynchronize — that is
// the jitter's whole job.
func TestBackoffSeedsDiffer(t *testing.T) {
	a := backoff{rng: 1}
	b := backoff{rng: 99999}
	diff := false
	for i := 0; i < 32; i++ {
		if a.next() != b.next() {
			diff = true
		}
	}
	if !diff {
		t.Fatal("two seeds produced identical 32-step schedules")
	}
}

func TestAcquireTimeout(t *testing.T) {
	s := NewSemaphore(1, 4)
	if !s.AcquireTimeout(time.Millisecond) {
		t.Fatal("timeout acquire failed with a permit free")
	}
	// Drained: must report false, after roughly the budget.
	start := time.Now()
	if s.AcquireTimeout(20 * time.Millisecond) {
		t.Fatal("timeout acquire succeeded with no permits")
	}
	if el := time.Since(start); el < 15*time.Millisecond || el > 500*time.Millisecond {
		t.Fatalf("20ms timeout waited %v", el)
	}
	if s.AcquireTimeout(0) {
		t.Fatal("zero-budget acquire succeeded with no permits")
	}
	s.Release()
	if !s.AcquireTimeout(0) {
		t.Fatal("zero-budget acquire failed with a permit free (fast path)")
	}
	s.Release()
	if got := s.Value(); got != 1 {
		t.Fatalf("permits after timeout storm = %d, want 1", got)
	}
}

// TestAcquireTimeoutContended: a permit released mid-wait is picked up
// well before the deadline.
func TestAcquireTimeoutContended(t *testing.T) {
	s := NewSemaphore(1, 4)
	s.Acquire()
	done := make(chan bool)
	go func() { done <- s.AcquireTimeout(5 * time.Second) }()
	time.Sleep(5 * time.Millisecond)
	s.Release()
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("waiter missed the released permit")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter did not wake after release")
	}
	s.Release()
}
