package sharded

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCounterSequential(t *testing.T) {
	c := NewCounter(4)
	for i := 0; i < 1000; i++ {
		c.Inc()
	}
	c.Add(500)
	c.Add(-250)
	if got := c.Load(); got != 1250 {
		t.Fatalf("Load = %d, want 1250", got)
	}
}

func TestCounterStripeRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}} {
		if got := NewCounter(tc.in).Stripes(); got != tc.want {
			t.Errorf("NewCounter(%d).Stripes() = %d, want %d", tc.in, got, tc.want)
		}
	}
	if NewCounter(0).Stripes() < 1 {
		t.Fatal("default sizing produced no stripes")
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := NewCounter(0)
	const goroutines, iters = 16, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != goroutines*iters {
		t.Fatalf("lost updates: Load = %d, want %d", got, goroutines*iters)
	}
}

func TestCentralCounter(t *testing.T) {
	c := NewCentralCounter()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8000 {
		t.Fatalf("Load = %d, want 8000", got)
	}
}

func TestRWMutexExclusion(t *testing.T) {
	rw := NewRWMutex(4)
	gor := runtime.GOMAXPROCS(0)
	if gor < 4 {
		gor = 4
	}
	x, y := 0, 0
	var violations atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < gor; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := uint64(g)*0x9e3779b97f4a7c15 + 1
			for i := 0; i < 2000; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				if rng%10 < 8 {
					tok := rw.RLock()
					if x != y {
						violations.Add(1)
					}
					rw.RUnlock(tok)
				} else {
					rw.Lock()
					x++
					y++
					rw.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("readers saw writer-torn state %d times", v)
	}
	if x != y {
		t.Fatalf("writer invariant broken: x=%d y=%d", x, y)
	}
}

func TestRWMutexWriterExcludesWriters(t *testing.T) {
	rw := NewRWMutex(8)
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				rw.Lock()
				counter++
				rw.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != 8*500 {
		t.Fatalf("writer exclusion broken: counter = %d, want %d", counter, 8*500)
	}
}
