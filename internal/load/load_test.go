package load

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sharded"
)

func TestArrivalScheduleDeterministic(t *testing.T) {
	a := ArrivalSchedule(5000, 200*time.Millisecond, 7, true)
	b := ArrivalSchedule(5000, 200*time.Millisecond, 7, true)
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := ArrivalSchedule(5000, 200*time.Millisecond, 8, true)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestArrivalScheduleShape(t *testing.T) {
	const rate, dur = 10000.0, 500 * time.Millisecond
	// Uniform: exact spacing, exact count.
	u := ArrivalSchedule(rate, dur, 1, false)
	if got, want := len(u), int(rate*dur.Seconds())-1; got < want-1 || got > want+1 {
		t.Fatalf("uniform schedule has %d arrivals, want ~%d", got, want)
	}
	for i := 1; i < len(u); i++ {
		if u[i] <= u[i-1] {
			t.Fatalf("non-monotone at %d", i)
		}
	}
	// Poisson: mean inter-arrival within 10% of 1/rate over many draws.
	p := ArrivalSchedule(rate, dur, 3, true)
	if len(p) < 100 {
		t.Fatalf("poisson schedule too short: %d", len(p))
	}
	meanGap := float64(p[len(p)-1]) / float64(len(p)-1)
	wantGap := float64(time.Second) / rate
	if r := math.Abs(meanGap-wantGap) / wantGap; r > 0.10 {
		t.Fatalf("poisson mean gap %v, want %v (off by %.1f%%)",
			time.Duration(meanGap), time.Duration(wantGap), r*100)
	}
	for i := 1; i < len(p); i++ {
		if p[i] <= p[i-1] {
			t.Fatalf("non-monotone at %d", i)
		}
	}
	// Degenerate inputs.
	if ArrivalSchedule(0, dur, 1, true) != nil || ArrivalSchedule(rate, 0, 1, true) != nil {
		t.Fatal("degenerate schedule not empty")
	}
}

func TestKeyDeterministic(t *testing.T) {
	if Key(1, 5) != Key(1, 5) {
		t.Fatal("Key not deterministic")
	}
	if Key(1, 5) == Key(1, 6) || Key(1, 5) == Key(2, 5) {
		t.Fatal("Key collisions across index/seed (stream too weak)")
	}
}

// TestRunOpenConservation: every offered op is classified exactly once,
// whatever mix of outcomes the op returns.
func TestRunOpenConservation(t *testing.T) {
	res := RunOpen(func(ctx context.Context, i int) Outcome {
		switch Key(9, i) % 3 {
		case 0:
			return OK
		case 1:
			return Shed
		default:
			return DeadlineExceeded
		}
	}, OpenOpts{Rate: 20000, Duration: 150 * time.Millisecond, Seed: 9})
	if res.Offered == 0 {
		t.Fatal("no ops offered")
	}
	if !res.Accounted() {
		t.Fatalf("accounting broken: offered=%d ok=%d shed=%d dl=%d",
			res.Offered, res.OK, res.Shed, res.Deadline)
	}
	if res.Lat.Count() != uint64(res.OK) {
		t.Fatalf("hist count %d != OK %d", res.Lat.Count(), res.OK)
	}
	if res.OK == 0 || res.Shed == 0 || res.Deadline == 0 {
		t.Fatalf("outcome mix degenerate: %+v", res)
	}
}

// TestRunOpenDeadline: ops that block until the context expires all
// classify as deadline-exceeded, and the run ends promptly (the
// open-loop driver never waits for stragglers beyond their deadline).
func TestRunOpenDeadline(t *testing.T) {
	start := time.Now()
	res := RunOpen(func(ctx context.Context, i int) Outcome {
		<-ctx.Done()
		return DeadlineExceeded
	}, OpenOpts{Rate: 2000, Duration: 100 * time.Millisecond, Deadline: 20 * time.Millisecond, Seed: 2})
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("run took %v", el)
	}
	if res.Deadline != int64(res.Offered) || res.OK != 0 {
		t.Fatalf("want all deadline-exceeded, got %+v", res)
	}
	if res.DeadlineFrac() != 1 {
		t.Fatalf("DeadlineFrac = %v", res.DeadlineFrac())
	}
}

// TestRunOpenGateConservation is the cancellation/shed conservation
// suite over a real gate: an overloaded open-loop run sheds and times
// out under -race, and afterwards the gate's permits balance.
func TestRunOpenGateConservation(t *testing.T) {
	const permits = 2
	g := sharded.NewGate(permits, 2, 4)
	res := RunOpen(func(ctx context.Context, i int) Outcome {
		switch err := g.Acquire(ctx); {
		case err == nil:
			time.Sleep(500 * time.Microsecond) // service time: saturates 2 permits past ~4k/s
			g.Release()
			return OK
		case errors.Is(err, sharded.ErrShed):
			return Shed
		default:
			return DeadlineExceeded
		}
	}, OpenOpts{Rate: 20000, Duration: 200 * time.Millisecond, Deadline: 5 * time.Millisecond, Seed: 4})
	if !res.Accounted() {
		t.Fatalf("accounting broken: %+v", res)
	}
	if res.Shed == 0 {
		t.Fatalf("5x overload shed nothing: %+v", res)
	}
	st := g.Stats()
	if st.InFlight != 0 || st.Waiting != 0 {
		t.Fatalf("gate not quiesced: %+v", st)
	}
	if st.Admitted != res.OK {
		t.Fatalf("admitted %d != OK %d", st.Admitted, res.OK)
	}
}

func TestRunClosed(t *testing.T) {
	var calls atomic.Int64
	res := RunClosed(func(ctx context.Context, i int) Outcome {
		calls.Add(1)
		return OK
	}, ClosedOpts{Workers: 4, Duration: 50 * time.Millisecond})
	if res.Offered == 0 || int64(res.Offered) != calls.Load() {
		t.Fatalf("offered %d, calls %d", res.Offered, calls.Load())
	}
	if !res.Accounted() || res.OK != int64(res.Offered) {
		t.Fatalf("accounting broken: %+v", res)
	}
	if res.Lat.Count() != uint64(res.OK) {
		t.Fatalf("hist count %d != OK %d", res.Lat.Count(), res.OK)
	}
	if res.GoodputPerSec() <= 0 {
		t.Fatal("zero goodput")
	}
	// Degenerate options.
	if r := RunClosed(nil, ClosedOpts{}); r.Offered != 0 {
		t.Fatal("degenerate closed run offered ops")
	}
}

func BenchmarkArrivalSchedule(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// ~10k Poisson arrivals per schedule.
		s := ArrivalSchedule(10000, time.Second, uint64(i)+1, true)
		if len(s) == 0 {
			b.Fatal("empty schedule")
		}
	}
}

func BenchmarkClosedLoopOverhead(b *testing.B) {
	// Generator overhead per op: a no-op Op through the closed-loop
	// driver's classify-and-record path.
	b.ReportAllocs()
	res := RunClosed(func(ctx context.Context, i int) Outcome { return OK },
		ClosedOpts{Workers: 1, Duration: time.Duration(b.N) * 100 * time.Nanosecond})
	_ = res
}
