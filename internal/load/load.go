// Package load is the saturating traffic generator: it drives a
// real-runtime operation (a semaphore acquire, a gate admission, an
// HTTP call) at a *target offered rate* from a deterministic,
// pre-computed arrival schedule — the open-loop model — instead of
// from a fixed pool of goroutines that each wait for their last op to
// finish (closed-loop). The distinction is the whole point of
// saturation testing: a closed-loop driver slows its own arrival rate
// exactly when the system under test slows down, so it can never push
// past the knee and its latency numbers hide the queueing the real
// world would see (coordinated omission). The open-loop generator
// keeps offering work on schedule, measures each op's latency from
// its *scheduled* arrival, and classifies every offered op as ok,
// shed, or deadline-exceeded — so overload shows up as shed counts
// and tail latency, never as silently reduced load.
//
// A closed-loop mode is kept for comparison; the harness sweeps both.
package load

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// Outcome classifies one offered operation.
type Outcome uint8

const (
	// OK: the op completed within its deadline.
	OK Outcome = iota
	// Shed: the op was refused at admission (it consumed no service).
	Shed
	// DeadlineExceeded: the op gave up after its deadline expired.
	DeadlineExceeded
)

// Op is the operation under test. ctx carries the per-op deadline
// (from the scheduled arrival, not the possibly-late dispatch); i is
// the op's index in the arrival schedule, for deterministic per-op
// decisions (key choice, mix selection) derived from (seed, i).
type Op func(ctx context.Context, i int) Outcome

// splitmix64 steps the schedule stream.
func splitmix64(x uint64) (uint64, uint64) {
	x += 0x9e3779b97f4a7c15
	z := x
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return x, z
}

// Key derives the deterministic per-op key stream shared by every
// sweep that needs one: op i of a run seeded with seed always maps to
// the same 64-bit draw, independent of scheduling.
func Key(seed uint64, i int) uint64 {
	_, z := splitmix64(seed + uint64(i)*0x9e3779b97f4a7c15)
	return z
}

// ArrivalSchedule returns the deterministic open-loop arrival offsets
// for a run: target rate arrivals/sec over duration d, from the
// seeded stream. With poisson set, inter-arrival gaps are exponential
// (a Poisson process — the memoryless arrivals real traffic
// approximates, with the bursts that actually stress admission
// control); otherwise gaps are uniform 1/rate (a pure paced load).
// The same (rate, d, seed, poisson) always yields the same schedule.
func ArrivalSchedule(rate float64, d time.Duration, seed uint64, poisson bool) []time.Duration {
	if rate <= 0 || d <= 0 {
		return nil
	}
	if seed == 0 {
		seed = 1
	}
	mean := float64(time.Second) / rate // ns
	horizon := float64(d)
	out := make([]time.Duration, 0, int(horizon/mean)+1)
	t := 0.0
	s := seed
	for {
		gap := mean
		if poisson {
			var z uint64
			s, z = splitmix64(s)
			// (0,1] uniform from the top 53 bits; never 0, so Log is finite.
			u := (float64(z>>11) + 0.5) / (1 << 53)
			gap = -math.Log(u) * mean
		}
		t += gap
		if t >= horizon {
			return out
		}
		out = append(out, time.Duration(t))
	}
}

// Result is one load run's accounting. Offered == OK+Shed+Deadline by
// construction (every scheduled op is classified exactly once).
type Result struct {
	Offered  int
	OK       int64
	Shed     int64
	Deadline int64
	Elapsed  time.Duration
	// Lat holds OK-op latency in ns, measured from the scheduled
	// arrival to completion — so generator lateness and queueing both
	// count, which is the honest open-loop number. (Closed-loop runs
	// measure from op start; there is no schedule to be late against.)
	Lat *stats.Hist
}

// Accounted reports whether every offered op was classified.
func (r Result) Accounted() bool {
	return int64(r.Offered) == r.OK+r.Shed+r.Deadline
}

// GoodputPerSec is the completed-within-deadline throughput.
func (r Result) GoodputPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.OK) / r.Elapsed.Seconds()
}

// ShedFrac and DeadlineFrac are the per-outcome shares of offered load.
func (r Result) ShedFrac() float64 { return r.frac(r.Shed) }

// DeadlineFrac is the fraction of offered ops that ran out their deadline.
func (r Result) DeadlineFrac() float64 { return r.frac(r.Deadline) }

func (r Result) frac(n int64) float64 {
	if r.Offered == 0 {
		return 0
	}
	return float64(n) / float64(r.Offered)
}

// QuantileMs reports the p-quantile (0..1) of OK latency in
// milliseconds.
func (r Result) QuantileMs(p float64) float64 {
	if r.Lat == nil {
		return 0
	}
	return float64(r.Lat.Quantile(p)) / float64(time.Millisecond)
}

// OpenOpts configures an open-loop run.
type OpenOpts struct {
	Rate     float64       // target arrivals/sec (required)
	Duration time.Duration // schedule horizon (required)
	Deadline time.Duration // per-op budget from scheduled arrival; 0 = none
	Seed     uint64        // schedule + key stream seed; 0 -> 1
	Uniform  bool          // evenly paced arrivals instead of Poisson
}

// RunOpen drives op on the deterministic open-loop schedule: a
// dispatcher sleeps to each arrival and launches the op in its own
// goroutine, so a slow op never holds back the next arrival. Late
// dispatch (the generator itself falling behind under extreme rates)
// is charged to latency, not silently dropped.
func RunOpen(op Op, o OpenOpts) Result {
	sched := ArrivalSchedule(o.Rate, o.Duration, o.Seed, !o.Uniform)
	lat := stats.NewShardedHist(0)
	var ok, shed, dl atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for i, off := range sched {
		arrival := start.Add(off)
		if d := time.Until(arrival); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int, arrival time.Time) {
			defer wg.Done()
			ctx := context.Background()
			cancel := context.CancelFunc(func() {})
			if o.Deadline > 0 {
				ctx, cancel = context.WithDeadline(ctx, arrival.Add(o.Deadline))
			}
			out := op(ctx, i)
			cancel()
			switch out {
			case OK:
				ok.Add(1)
				lat.Record(int64(time.Since(arrival)))
			case Shed:
				shed.Add(1)
			default:
				dl.Add(1)
			}
		}(i, arrival)
	}
	wg.Wait()
	return Result{
		Offered:  len(sched),
		OK:       ok.Load(),
		Shed:     shed.Load(),
		Deadline: dl.Load(),
		Elapsed:  time.Since(start),
		Lat:      lat.Snapshot(),
	}
}

// ClosedOpts configures a closed-loop run.
type ClosedOpts struct {
	Workers  int           // concurrent callers (required)
	Duration time.Duration // run length (required)
	Deadline time.Duration // per-op budget from op start; 0 = none
	Seed     uint64        // key stream seed; 0 -> 1
}

// RunClosed drives op from a fixed worker pool, back-to-back — the
// classic benchmark loop, kept as the comparison baseline. Each
// worker owns a private histogram (allocation-free recording on the
// hot path) merged at the end; op indices come from one shared
// counter so the (seed, i) key stream matches RunOpen's.
func RunClosed(op Op, o ClosedOpts) Result {
	if o.Workers <= 0 || o.Duration <= 0 {
		return Result{}
	}
	var ok, shed, dl atomic.Int64
	var next atomic.Int64
	merged := new(stats.Hist)
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	end := start.Add(o.Duration)
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := new(stats.Hist)
			for time.Now().Before(end) {
				i := int(next.Add(1) - 1)
				ctx := context.Background()
				cancel := context.CancelFunc(func() {})
				if o.Deadline > 0 {
					ctx, cancel = context.WithTimeout(ctx, o.Deadline)
				}
				opStart := time.Now()
				out := op(ctx, i)
				cancel()
				switch out {
				case OK:
					ok.Add(1)
					h.Record(int64(time.Since(opStart)))
				case Shed:
					shed.Add(1)
				default:
					dl.Add(1)
				}
			}
			mu.Lock()
			merged.Merge(h)
			mu.Unlock()
		}()
	}
	wg.Wait()
	return Result{
		Offered:  int(next.Load()),
		OK:       ok.Load(),
		Shed:     shed.Load(),
		Deadline: dl.Load(),
		Elapsed:  time.Since(start),
		Lat:      merged,
	}
}
