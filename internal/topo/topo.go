// Package topo describes the shape of a simulated machine's memory
// system: how many modules it has, which module a word calls home, what
// a hop between a processor and a module costs, how remote spinning is
// polled, and which interconnect metric the topology's experiments
// headline. internal/machine consumes a Topology instead of switching
// on a machine-model enum, so new memory systems — hierarchical
// cluster machines, near-data topologies, asymmetric interconnects —
// are one Register call away from every sweep, CLI flag, and benchmark,
// exactly like algorithms are.
//
// Two invariants govern the package:
//
//   - The canonical Bus and NUMA instances must be bit-identical to the
//     historical hardcoded models: same cycle counts, traffic counters,
//     event sequencing, and spin-window decisions. The golden and
//     determinism suites in internal/simsync enforce this.
//   - A Topology only *describes* shape and cost; all mechanism
//     (coherence protocol, port occupancy, event scheduling) stays in
//     internal/machine. That keeps every topology automatically exact
//     under the engine's inline fast path and window batching rules.
package topo

import (
	"repro/internal/registry"
	"repro/internal/sim"
)

// Discipline is the memory-access protocol a topology runs under.
// There are exactly three in the simulator: the mechanism of an access
// is protocol business (internal/machine), while everything a topology
// can compose — distances, groupings, homes, poll spacing — varies
// freely within a discipline.
type Discipline uint8

const (
	// Uniform is unit-latency uncontended memory, for unit tests.
	Uniform Discipline = iota
	// SnoopingBus is the write-invalidate cache-coherent protocol over
	// one serializing bus (Sequent Symmetry class).
	SnoopingBus
	// Modules is the non-coherent distributed-memory protocol:
	// per-module ports, distance-priced traversals, polled remote
	// spinning (BBN Butterfly class and its hierarchical descendants).
	Modules
)

// TrafficKind names the headline interconnect metric of a topology's
// experiments: what Stats.TrafficFor counts.
type TrafficKind uint8

const (
	// TrafficOps counts every memory operation (uniform machines).
	TrafficOps TrafficKind = iota
	// TrafficBusTxns counts bus transactions.
	TrafficBusTxns
	// TrafficRemoteRefs counts remote references.
	TrafficRemoteRefs
)

// Unit is the per-operation unit label for tables ("bus txns",
// "remote refs").
func (k TrafficKind) Unit() string {
	switch k {
	case TrafficBusTxns:
		return "bus txns"
	case TrafficRemoteRefs:
		return "remote refs"
	}
	return "ops"
}

// Timing carries the machine's configured timing parameters into the
// topology's cost methods. Topologies price hops relative to these
// knobs (rather than holding absolute numbers) so parameter-sensitivity
// sweeps like A1 stay meaningful on every topology.
type Timing struct {
	CacheHit     sim.Time // cache hit (coherent machines)
	BusLatency   sim.Time // full bus transaction
	LocalMem     sim.Time // local module access
	RemoteMem    sim.Time // reference network traversal for remote refs
	PollInterval sim.Time // base spacing between remote spin polls
}

// Topology is the shape of one memory system. Implementations must be
// stateless comparable values: a Topology is used as a configuration
// key (pooled machines compare it on Reset) and shared by concurrent
// sweeps.
type Topology interface {
	// Name is the registry key and table label ("bus", "numa", ...).
	Name() string
	// Discipline selects the access protocol internal/machine runs.
	Discipline() Discipline
	// MaxProcs is the topology's processor ceiling; 0 means only the
	// simulator-wide cap applies.
	MaxProcs() int
	// Modules is the memory-module count of a procs-processor machine.
	// Module i is attached to processor i; today every topology keeps
	// one module per processor and varies distance instead.
	Modules(procs int) int
	// HomeModule maps shared-heap word index w to its home module
	// (local regions always live with their owning processor).
	HomeModule(w, procs int) int
	// Group is the locality group (cluster) of processor p. Flat
	// topologies make every processor its own group, so group-aware
	// data placement degenerates to per-processor placement on them.
	Group(p, procs int) int
	// GroupHome is the canonical home module of group g — where
	// group-shared words are placed.
	GroupHome(g, procs int) int
	// Traversal prices the network hops processor p pays to reach
	// module mod, in cycles, on top of the module's service time.
	// Zero means the access is module-local.
	Traversal(p, mod int, tm Timing) sim.Time
	// Remote reports whether an access by p to module mod counts as
	// interconnect traffic (a remote reference).
	Remote(p, mod int) bool
	// PollSpacing is the base interval between successive polls when p
	// spins on a remote word homed at mod (jitter is added by the
	// machine on top).
	PollSpacing(p, mod int, tm Timing) sim.Time
	// TraversalClasses enumerates the closed set of distinct remote
	// traversal costs a processor can pay to reach another processor's
	// module — the topology's distance classes. Declaring the set (ok
	// true) is the precondition for cross-processor spin-window
	// batching on a Modules machine: a test&set storm serializes on the
	// probed word's home port, so per-spinner probe periods drawn from
	// a small closed set still form a computable rotation (the machine
	// prices each spinner's hop individually via Traversal; the
	// declaration promises those prices are storm-stable). Topologies
	// whose hop costs are unbounded or state-dependent return ok=false
	// and their storms replay per-event.
	TraversalClasses(tm Timing) (classes []sim.Time, ok bool)
	// Traffic names the headline interconnect metric.
	Traffic() TrafficKind
}

// Groups returns the number of locality groups of a procs-processor
// machine under t.
func Groups(t Topology, procs int) int {
	max := 0
	for p := 0; p < procs; p++ {
		if g := t.Group(p, procs); g > max {
			max = g
		}
	}
	return max + 1
}

// Registry is the topology registry: selectable in sweeps and CLIs
// exactly like algorithm families. Canonical instances register at
// init; new topologies add one Register call.
var Registry = registry.NewSet[Topology]("topologies", Topology.Name)

// ByName resolves a registered topology.
func ByName(name string) (Topology, bool) { return Registry.ByName(name) }

// Names lists registered topology names in canonical order.
func Names() []string { return Registry.Names() }

func init() {
	Registry.Register(Ideal, Bus, NUMA, Cluster)
	Placements.Register(PlaceLocal, PlaceGroup, PlaceCentral)
}
