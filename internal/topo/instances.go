package topo

import (
	"fmt"

	"repro/internal/sim"
)

// The canonical topology instances. Ideal, Bus, and NUMA reproduce the
// three historical machine models bit-for-bit (enforced by the golden
// and determinism suites in internal/simsync); Cluster is the first
// genuinely new machine: a two-level hierarchy with cheap intra-cluster
// hops and expensive inter-cluster traversals.
var (
	// Ideal has unit-latency uncontended memory. For tests.
	Ideal Topology = idealTopo{}
	// Bus is the snooping write-invalidate cache-coherent machine.
	Bus Topology = busTopo{}
	// NUMA is the flat non-coherent distributed-memory machine: every
	// off-module reference pays one uniform network traversal.
	NUMA Topology = numaTopo{}
	// Cluster is the two-level cluster-NUMA machine: processors come in
	// clusters of four; a hop inside the cluster costs a third of the
	// flat-NUMA traversal, a hop between clusters twice it.
	Cluster Topology = NewCluster("cluster", 4)
)

// flat supplies the degenerate structure shared by machines without a
// locality hierarchy: one module per processor, shared words
// interleaved across modules, and every processor its own group (so
// group-aware placement degenerates to per-processor placement).
type flat struct{}

func (flat) MaxProcs() int                              { return 0 }
func (flat) Modules(procs int) int                      { return procs }
func (flat) HomeModule(w, procs int) int                { return w % procs }
func (flat) Group(p, procs int) int                     { return p }
func (flat) GroupHome(g, procs int) int                 { return g }
func (flat) PollSpacing(p, mod int, tm Timing) sim.Time { return tm.PollInterval }

// ---------------------------------------------------------------------
// ideal
// ---------------------------------------------------------------------

type idealTopo struct{ flat }

func (idealTopo) Name() string                               { return "ideal" }
func (idealTopo) String() string                             { return "ideal" }
func (idealTopo) Discipline() Discipline                     { return Uniform }
func (idealTopo) Traversal(p, mod int, tm Timing) sim.Time   { return 0 }
func (idealTopo) Remote(p, mod int) bool                     { return false }
func (idealTopo) RemoteTraversal(tm Timing) (sim.Time, bool) { return 0, false }
func (idealTopo) Traffic() TrafficKind                       { return TrafficOps }

// ---------------------------------------------------------------------
// bus
// ---------------------------------------------------------------------

type busTopo struct{ flat }

func (busTopo) Name() string           { return "bus" }
func (busTopo) String() string         { return "bus" }
func (busTopo) Discipline() Discipline { return SnoopingBus }

// MaxProcs is 64 on the bus machine: the coherence directory tracks
// sharers in one Word-wide bitmask. (The machine also enforces this
// for any future SnoopingBus topology, since the limit belongs to the
// protocol implementation; declaring it here makes the ceiling a
// topology property, visible to validation and CLIs.)
func (busTopo) MaxProcs() int { return 64 }

func (busTopo) Traversal(p, mod int, tm Timing) sim.Time   { return 0 }
func (busTopo) Remote(p, mod int) bool                     { return false }
func (busTopo) RemoteTraversal(tm Timing) (sim.Time, bool) { return 0, false }
func (busTopo) Traffic() TrafficKind                       { return TrafficBusTxns }

// ---------------------------------------------------------------------
// numa
// ---------------------------------------------------------------------

type numaTopo struct{ flat }

func (numaTopo) Name() string           { return "numa" }
func (numaTopo) String() string         { return "numa" }
func (numaTopo) Discipline() Discipline { return Modules }

func (numaTopo) Traversal(p, mod int, tm Timing) sim.Time {
	if mod != p {
		return tm.RemoteMem
	}
	return 0
}

func (numaTopo) Remote(p, mod int) bool { return mod != p }

// RemoteTraversal: every remote hop costs RemoteMem, so flat NUMA
// storms are spin-window eligible.
func (numaTopo) RemoteTraversal(tm Timing) (sim.Time, bool) { return tm.RemoteMem, true }

func (numaTopo) Traffic() TrafficKind { return TrafficRemoteRefs }

// ---------------------------------------------------------------------
// cluster
// ---------------------------------------------------------------------

// clusterTopo is the two-level cluster-NUMA machine: processors (and
// their modules) are grouped into clusters of span; intra-cluster hops
// are cheap, inter-cluster traversals expensive. This is the shape
// where placement policy starts to matter: a word shared within a
// cluster wants the cluster's home module, not the toucher's own —
// the hierarchical near-data trade SynCron-class designs exploit.
type clusterTopo struct {
	name string
	span int
}

// NewCluster builds a cluster-NUMA topology with the given cluster
// span. The canonical registered instance uses span 4; other spans can
// be registered by callers for their own experiments.
func NewCluster(name string, span int) Topology {
	if span < 1 {
		panic(fmt.Sprintf("topo: cluster span %d < 1", span))
	}
	return clusterTopo{name: name, span: span}
}

func (c clusterTopo) Name() string                { return c.name }
func (c clusterTopo) String() string              { return c.name }
func (c clusterTopo) Discipline() Discipline      { return Modules }
func (c clusterTopo) MaxProcs() int               { return 0 }
func (c clusterTopo) Modules(procs int) int       { return procs }
func (c clusterTopo) HomeModule(w, procs int) int { return w % procs }

func (c clusterTopo) Group(p, procs int) int     { return p / c.span }
func (c clusterTopo) GroupHome(g, procs int) int { return g * c.span }

// Traversal: a module in the same cluster costs a third of the flat
// traversal (one short intra-cluster hop); crossing clusters costs
// twice it (up through the cluster switch and down into another).
func (c clusterTopo) Traversal(p, mod int, tm Timing) sim.Time {
	switch {
	case mod == p:
		return 0
	case mod/c.span == p/c.span:
		return tm.RemoteMem / 3
	default:
		return 2 * tm.RemoteMem
	}
}

func (c clusterTopo) Remote(p, mod int) bool { return mod != p }

// PollSpacing: polling across the cluster boundary is twice as
// expensive, so spinners space far polls twice as wide — the era's
// "poll less where it hurts more" folklore, now a topology property.
func (c clusterTopo) PollSpacing(p, mod int, tm Timing) sim.Time {
	if mod/c.span == p/c.span {
		return tm.PollInterval
	}
	return 2 * tm.PollInterval
}

// RemoteTraversal: hop costs are distance-dependent, so no uniform
// probe period exists and cluster storms are spin-window ineligible —
// they replay per-event (still exact, just not fast-forwarded).
func (c clusterTopo) RemoteTraversal(tm Timing) (sim.Time, bool) { return 0, false }

func (c clusterTopo) Traffic() TrafficKind { return TrafficRemoteRefs }
