package topo

import (
	"fmt"

	"repro/internal/sim"
)

// The canonical topology instances. Ideal, Bus, and NUMA reproduce the
// three historical machine models bit-for-bit (enforced by the golden
// and determinism suites in internal/simsync); Cluster is the first
// genuinely new machine: a two-level hierarchy with cheap intra-cluster
// hops and expensive inter-cluster traversals.
var (
	// Ideal has unit-latency uncontended memory. For tests.
	Ideal Topology = idealTopo{}
	// Bus is the snooping write-invalidate cache-coherent machine.
	Bus Topology = busTopo{}
	// NUMA is the flat non-coherent distributed-memory machine: every
	// off-module reference pays one uniform network traversal.
	NUMA Topology = numaTopo{}
	// Cluster is the two-level cluster-NUMA machine: processors come in
	// clusters of four; a hop inside the cluster costs a third of the
	// flat-NUMA traversal, a hop between clusters twice it.
	Cluster Topology = NewCluster("cluster", 4)
)

// flat supplies the degenerate structure shared by machines without a
// locality hierarchy: one module per processor, shared words
// interleaved across modules, and every processor its own group (so
// group-aware placement degenerates to per-processor placement).
type flat struct{}

func (flat) MaxProcs() int                              { return 0 }
func (flat) Modules(procs int) int                      { return procs }
func (flat) HomeModule(w, procs int) int                { return w % procs }
func (flat) Group(p, procs int) int                     { return p }
func (flat) GroupHome(g, procs int) int                 { return g }
func (flat) PollSpacing(p, mod int, tm Timing) sim.Time { return tm.PollInterval }

// ---------------------------------------------------------------------
// ideal
// ---------------------------------------------------------------------

type idealTopo struct{ flat }

func (idealTopo) Name() string                               { return "ideal" }
func (idealTopo) String() string                             { return "ideal" }
func (idealTopo) Discipline() Discipline                     { return Uniform }
func (idealTopo) Traversal(p, mod int, tm Timing) sim.Time      { return 0 }
func (idealTopo) Remote(p, mod int) bool                        { return false }
func (idealTopo) TraversalClasses(tm Timing) ([]sim.Time, bool) { return nil, false }
func (idealTopo) Traffic() TrafficKind                          { return TrafficOps }

// ---------------------------------------------------------------------
// bus
// ---------------------------------------------------------------------

type busTopo struct{ flat }

func (busTopo) Name() string           { return "bus" }
func (busTopo) String() string         { return "bus" }
func (busTopo) Discipline() Discipline { return SnoopingBus }

// MaxProcs is 64 on the bus machine: the coherence directory tracks
// sharers in one Word-wide bitmask. (The machine also enforces this
// for any future SnoopingBus topology, since the limit belongs to the
// protocol implementation; declaring it here makes the ceiling a
// topology property, visible to validation and CLIs.)
func (busTopo) MaxProcs() int { return 64 }

// TraversalClasses: the bus machine has no module traversals at all —
// probe serialization happens on the bus itself, which the machine
// prices directly (spin windows on SnoopingBus never consult this).
func (busTopo) Traversal(p, mod int, tm Timing) sim.Time      { return 0 }
func (busTopo) Remote(p, mod int) bool                        { return false }
func (busTopo) TraversalClasses(tm Timing) ([]sim.Time, bool) { return nil, false }
func (busTopo) Traffic() TrafficKind                          { return TrafficBusTxns }

// ---------------------------------------------------------------------
// numa
// ---------------------------------------------------------------------

type numaTopo struct{ flat }

func (numaTopo) Name() string           { return "numa" }
func (numaTopo) String() string         { return "numa" }
func (numaTopo) Discipline() Discipline { return Modules }

func (numaTopo) Traversal(p, mod int, tm Timing) sim.Time {
	if mod != p {
		return tm.RemoteMem
	}
	return 0
}

func (numaTopo) Remote(p, mod int) bool { return mod != p }

// TraversalClasses: every remote hop costs RemoteMem — one distance
// class, so flat NUMA storms rotate with a single uniform probe period.
func (numaTopo) TraversalClasses(tm Timing) ([]sim.Time, bool) {
	return []sim.Time{tm.RemoteMem}, true
}

func (numaTopo) Traffic() TrafficKind { return TrafficRemoteRefs }

// ---------------------------------------------------------------------
// cluster
// ---------------------------------------------------------------------

// clusterTopo is the two-level cluster-NUMA machine: processors (and
// their modules) are grouped into clusters of span; intra-cluster hops
// are cheap, inter-cluster traversals expensive. This is the shape
// where placement policy starts to matter: a word shared within a
// cluster wants the cluster's home module, not the toucher's own —
// the hierarchical near-data trade SynCron-class designs exploit.
type clusterTopo struct {
	name string
	span int
}

// NewCluster builds a cluster-NUMA topology with the given cluster
// span. The canonical registered instance uses span 4; other spans can
// be registered by callers for their own experiments.
func NewCluster(name string, span int) Topology {
	if span < 1 {
		panic(fmt.Sprintf("topo: cluster span %d < 1", span))
	}
	return clusterTopo{name: name, span: span}
}

func (c clusterTopo) Name() string                { return c.name }
func (c clusterTopo) String() string              { return c.name }
func (c clusterTopo) Discipline() Discipline      { return Modules }
func (c clusterTopo) MaxProcs() int               { return 0 }
func (c clusterTopo) Modules(procs int) int       { return procs }
func (c clusterTopo) HomeModule(w, procs int) int { return w % procs }

func (c clusterTopo) Group(p, procs int) int     { return p / c.span }
func (c clusterTopo) GroupHome(g, procs int) int { return g * c.span }

// Traversal: a module in the same cluster costs a third of the flat
// traversal (one short intra-cluster hop); crossing clusters costs
// twice it (up through the cluster switch and down into another).
func (c clusterTopo) Traversal(p, mod int, tm Timing) sim.Time {
	switch {
	case mod == p:
		return 0
	case mod/c.span == p/c.span:
		return tm.RemoteMem / 3
	default:
		return 2 * tm.RemoteMem
	}
}

func (c clusterTopo) Remote(p, mod int) bool { return mod != p }

// PollSpacing: polling across the cluster boundary is twice as
// expensive, so spinners space far polls twice as wide — the era's
// "poll less where it hurts more" folklore, now a topology property.
func (c clusterTopo) PollSpacing(p, mod int, tm Timing) sim.Time {
	if mod/c.span == p/c.span {
		return tm.PollInterval
	}
	return 2 * tm.PollInterval
}

// TraversalClasses: two distance classes — the short intra-cluster hop
// and the double-cost inter-cluster traversal. Declaring them makes
// cluster storms spin-window eligible: the home port still serializes
// every probe, so the mixed-period rotation is computable in closed
// form (internal/machine/window.go).
func (c clusterTopo) TraversalClasses(tm Timing) ([]sim.Time, bool) {
	return []sim.Time{tm.RemoteMem / 3, 2 * tm.RemoteMem}, true
}

func (c clusterTopo) Traffic() TrafficKind { return TrafficRemoteRefs }
