package topo

import (
	"testing"

	"repro/internal/sim"
)

var testTiming = Timing{CacheHit: 1, BusLatency: 20, LocalMem: 2, RemoteMem: 12, PollInterval: 36}

func TestRegistryCanonicalOrder(t *testing.T) {
	want := []string{"ideal", "bus", "numa", "cluster"}
	got := Names()
	if len(got) < len(want) {
		t.Fatalf("registry names = %v, want at least %v", got, want)
	}
	for i, n := range want {
		if got[i] != n {
			t.Errorf("registry[%d] = %q, want %q", i, got[i], n)
		}
	}
	for _, n := range want {
		tp, ok := ByName(n)
		if !ok {
			t.Fatalf("topology %q not registered", n)
		}
		if tp.Name() != n {
			t.Errorf("ByName(%q).Name() = %q", n, tp.Name())
		}
	}
}

// TestCanonicalShapes pins the exact cost structure the hardcoded
// models had: these numbers feed the bit-identity guarantee.
func TestCanonicalShapes(t *testing.T) {
	if Bus.Discipline() != SnoopingBus || Bus.MaxProcs() != 64 || Bus.Traffic() != TrafficBusTxns {
		t.Error("bus shape wrong")
	}
	if NUMA.Discipline() != Modules || NUMA.MaxProcs() != 0 || NUMA.Traffic() != TrafficRemoteRefs {
		t.Error("numa shape wrong")
	}
	if Ideal.Discipline() != Uniform || Ideal.Traffic() != TrafficOps {
		t.Error("ideal shape wrong")
	}
	// NUMA: uniform remote traversal of RemoteMem; local free.
	if c := NUMA.Traversal(3, 3, testTiming); c != 0 {
		t.Errorf("numa local traversal = %d", c)
	}
	if c := NUMA.Traversal(3, 5, testTiming); c != testTiming.RemoteMem {
		t.Errorf("numa remote traversal = %d, want %d", c, testTiming.RemoteMem)
	}
	if NUMA.Remote(3, 3) || !NUMA.Remote(3, 5) {
		t.Error("numa remote classification wrong")
	}
	if classes, ok := NUMA.TraversalClasses(testTiming); !ok || len(classes) != 1 || classes[0] != testTiming.RemoteMem {
		t.Errorf("numa TraversalClasses = (%v, %v)", classes, ok)
	}
	if _, ok := Ideal.TraversalClasses(testTiming); ok {
		t.Error("ideal declares traversal classes")
	}
	if _, ok := Bus.TraversalClasses(testTiming); ok {
		t.Error("bus declares traversal classes")
	}
	// Flat topologies: one module per processor, interleaved shared
	// heap, per-processor groups.
	for _, tp := range []Topology{Bus, NUMA, Ideal} {
		if tp.Modules(16) != 16 || tp.HomeModule(35, 16) != 35%16 {
			t.Errorf("%s module mapping wrong", tp.Name())
		}
		if tp.Group(7, 16) != 7 || tp.GroupHome(7, 16) != 7 {
			t.Errorf("%s group structure not per-processor", tp.Name())
		}
		if sp := tp.PollSpacing(0, 9, testTiming); sp != testTiming.PollInterval {
			t.Errorf("%s poll spacing = %d", tp.Name(), sp)
		}
	}
}

func TestClusterShape(t *testing.T) {
	c := Cluster
	if c.Discipline() != Modules || c.Traffic() != TrafficRemoteRefs || c.MaxProcs() != 0 {
		t.Fatal("cluster shape wrong")
	}
	// Span-4 grouping.
	if c.Group(0, 16) != 0 || c.Group(3, 16) != 0 || c.Group(4, 16) != 1 || c.Group(15, 16) != 3 {
		t.Error("cluster grouping wrong")
	}
	if c.GroupHome(2, 16) != 8 {
		t.Errorf("cluster GroupHome(2) = %d, want 8", c.GroupHome(2, 16))
	}
	if Groups(c, 16) != 4 || Groups(c, 2) != 1 || Groups(NUMA, 8) != 8 {
		t.Error("Groups helper wrong")
	}
	// Distance pricing: free at home, RemoteMem/3 inside the cluster,
	// 2*RemoteMem across clusters.
	if d := c.Traversal(1, 1, testTiming); d != 0 {
		t.Errorf("home traversal = %d", d)
	}
	if d := c.Traversal(1, 3, testTiming); d != testTiming.RemoteMem/3 {
		t.Errorf("intra-cluster traversal = %d, want %d", d, testTiming.RemoteMem/3)
	}
	if d := c.Traversal(1, 4, testTiming); d != 2*testTiming.RemoteMem {
		t.Errorf("inter-cluster traversal = %d, want %d", d, 2*testTiming.RemoteMem)
	}
	// An intra-cluster hop still counts as a remote reference.
	if !c.Remote(1, 3) || c.Remote(1, 1) {
		t.Error("cluster remote classification wrong")
	}
	// Distance-scaled polling.
	if sp := c.PollSpacing(1, 3, testTiming); sp != testTiming.PollInterval {
		t.Errorf("intra-cluster poll spacing = %d", sp)
	}
	if sp := c.PollSpacing(1, 12, testTiming); sp != 2*testTiming.PollInterval {
		t.Errorf("inter-cluster poll spacing = %d", sp)
	}
	// Two declared distance classes: intra- and inter-cluster hops.
	// Every Traversal cost a remote access can pay must be one of them —
	// the spin-window batcher's per-class rotation depends on it.
	classes, ok := c.TraversalClasses(testTiming)
	if !ok || len(classes) != 2 ||
		classes[0] != testTiming.RemoteMem/3 || classes[1] != 2*testTiming.RemoteMem {
		t.Errorf("cluster TraversalClasses = (%v, %v)", classes, ok)
	}
	inClasses := func(d sim.Time) bool {
		for _, cl := range classes {
			if cl == d {
				return true
			}
		}
		return false
	}
	for p := 0; p < 16; p++ {
		for mod := 0; mod < 16; mod++ {
			if p == mod {
				continue
			}
			if d := c.Traversal(p, mod, testTiming); !inClasses(d) {
				t.Errorf("Traversal(%d,%d) = %d not in declared classes %v", p, mod, d, classes)
			}
		}
	}
}

func TestNewClusterSpanValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("span 0 accepted")
		}
	}()
	NewCluster("bad", 0)
}

func TestPlacements(t *testing.T) {
	for _, name := range []string{"local", "group-home", "central"} {
		if _, ok := PlacementByName(name); !ok {
			t.Errorf("placement %q not registered", name)
		}
	}
	if m := PlaceLocal.Module(Cluster, 6, 16); m != 6 {
		t.Errorf("local placement = %d", m)
	}
	// Group-home on the cluster machine: processor 6 is in cluster 1,
	// whose home module is 4.
	if m := PlaceGroup.Module(Cluster, 6, 16); m != 4 {
		t.Errorf("group placement on cluster = %d, want 4", m)
	}
	// On flat topologies group placement degenerates to local.
	if m := PlaceGroup.Module(NUMA, 6, 16); m != 6 {
		t.Errorf("group placement on numa = %d, want 6", m)
	}
	if m := PlaceCentral.Module(NUMA, 6, 16); m != 0 {
		t.Errorf("central placement = %d", m)
	}
}

// TestTopologyComparable pins that topology values work as
// configuration keys: equal instances compare equal, distinct ones
// do not (machine pooling and sweep cells rely on this).
func TestTopologyComparable(t *testing.T) {
	if Bus != Bus || NUMA == Bus {
		t.Fatal("canonical instances not comparable as expected")
	}
	if NewCluster("cluster", 4) != Cluster {
		t.Fatal("equal cluster values compare unequal")
	}
	if NewCluster("cluster", 8) == Cluster {
		t.Fatal("different spans compare equal")
	}
	var tm Timing
	_ = tm
	var zero sim.Time
	if zero != 0 {
		t.Fatal("sim.Time zero")
	}
}
