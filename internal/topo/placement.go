package topo

import "repro/internal/registry"

// Placement is a data-placement policy: given the topology and the
// processor that primarily touches a word, it picks the module the
// word should live in. Algorithms allocate through a policy (see
// machine.AllocPlaced) instead of hardcoding "my own module", so the
// same algorithm text places its words differently on different
// machine shapes — per-processor stripes on a flat machine, cluster-
// home shards on a hierarchical one.
type Placement interface {
	// Name is the registry key ("local", "group-home", "central").
	Name() string
	// Module picks the home module for a word owned (primarily
	// touched) by processor owner on a procs-processor machine of
	// topology t.
	Module(t Topology, owner, procs int) int
}

// Canonical placement policies.
var (
	// PlaceLocal puts the word in the owner's own module — the
	// classic local-spin placement.
	PlaceLocal Placement = placeLocal{}
	// PlaceGroup puts the word in the home module of the owner's
	// locality group. On flat topologies every processor is its own
	// group, so this degenerates to PlaceLocal; on a cluster machine
	// it shares one module among the cluster.
	PlaceGroup Placement = placeGroup{}
	// PlaceCentral puts every word in module 0 — the deliberate
	// hot-spot placement, for saturation experiments.
	PlaceCentral Placement = placeCentral{}
)

// Placements is the placement-policy registry (populated at init in
// topo.go alongside the topology registry).
var Placements = registry.NewSet[Placement]("placements", Placement.Name)

// PlacementByName resolves a registered placement policy.
func PlacementByName(name string) (Placement, bool) { return Placements.ByName(name) }

type placeLocal struct{}

func (placeLocal) Name() string                            { return "local" }
func (placeLocal) Module(t Topology, owner, procs int) int { return owner }

type placeGroup struct{}

func (placeGroup) Name() string { return "group-home" }
func (placeGroup) Module(t Topology, owner, procs int) int {
	return t.GroupHome(t.Group(owner, procs), procs)
}

type placeCentral struct{}

func (placeCentral) Name() string                            { return "central" }
func (placeCentral) Module(t Topology, owner, procs int) int { return 0 }
