package machine

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/topo"
)

// TestCrashHoldsWordForever: a processor crashed inside its critical
// section never releases the test&set word, so a blocking spinner burns
// events until the step limit — the wedge the robust primitives exist
// to survive.
func TestCrashHoldsWordForever(t *testing.T) {
	plan := fault.NewPlan("crash-in-cs").WithCrash(0, 50)
	m, err := New(Config{Procs: 2, Topo: topo.Bus, Seed: 1, MaxSteps: 20000, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	lock := m.AllocShared(1)
	err = m.RunEach([]func(p *Proc){
		func(p *Proc) {
			if p.TestAndSet(lock) != 0 {
				t.Error("P0 should win the uncontended word")
			}
			p.Delay(10000) // holds the word across the crash instant
			p.Store(lock, 0)
		},
		func(p *Proc) {
			p.Delay(20) // let P0 take the word first
			p.SpinTAS(lock, Backoff{})
		},
	})
	if !errors.Is(err, sim.ErrStepLimit) {
		t.Fatalf("want ErrStepLimit from the wedged spinner, got %v", err)
	}
	if !m.Crashed(0) {
		t.Error("P0 should be marked crashed")
	}
	if m.Crashed(1) {
		t.Error("P1 crashed without a plan entry")
	}
	if got := m.Peek(lock); got != 1 {
		t.Errorf("crashed holder's word should stay held, got %d", got)
	}
}

// TestCrashDeadlocksParkedWatcher: a watcher-parked waiter whose writer
// crashes generates no further events, so the run ends in the deadlock
// detector — with the crash reported in the error text.
func TestCrashDeadlocksParkedWatcher(t *testing.T) {
	plan := fault.NewPlan("crash-before-store").WithCrash(0, 50)
	m, err := New(Config{Procs: 2, Topo: topo.Bus, Seed: 1, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	flag := m.AllocShared(1)
	err = m.RunEach([]func(p *Proc){
		func(p *Proc) {
			p.Delay(100)
			p.Store(flag, 1) // never reached: crashed at t=50
		},
		func(p *Proc) { p.SpinUntilEq(flag, 1) },
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
	if !strings.Contains(err.Error(), "crashed") {
		t.Errorf("deadlock report should mention the crash: %v", err)
	}
	if !m.Crashed(0) {
		t.Error("P0 should be marked crashed")
	}
	if got := m.Peek(flag); got != 0 {
		t.Errorf("crashed processor's pending store leaked: flag=%d", got)
	}
}

// TestCrashAtZeroPreventsStart: a crash at t=0 carries a smaller
// sequence number than the start dispatches, so the victim's program
// body never runs at all.
func TestCrashAtZeroPreventsStart(t *testing.T) {
	plan := fault.NewPlan("stillborn").WithCrash(0, 0)
	m, err := New(Config{Procs: 2, Topo: topo.Bus, Seed: 1, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	flag := m.AllocShared(1)
	ran := false
	err = m.RunEach([]func(p *Proc){
		func(p *Proc) { ran = true; p.Store(flag, 1) },
		func(p *Proc) { p.Delay(500) },
	})
	if err != nil {
		t.Fatalf("survivor-only run should finish clean: %v", err)
	}
	if ran {
		t.Error("crashed-at-zero processor ran its body")
	}
	if got := m.Peek(flag); got != 0 {
		t.Errorf("flag=%d after a t=0 crash", got)
	}
}

// TestStallDefersDelivery: an event delivered inside a stall window is
// retimed to the window's end, so the stalled processor's progress
// resumes only after the stall.
func TestStallDefersDelivery(t *testing.T) {
	finish := func(plan *fault.Plan) [2]sim.Time {
		m, err := New(Config{Procs: 2, Topo: topo.Bus, Seed: 1, Faults: plan})
		if err != nil {
			t.Fatal(err)
		}
		var out [2]sim.Time
		// Lockstep delays keep both processors' events pending, so every
		// completion goes through the engine (the inline fast path needs
		// an empty horizon) and stall deferral is actually exercised.
		err = m.Run(func(p *Proc) {
			for i := 0; i < 10; i++ {
				p.Delay(60)
			}
			out[p.ID()] = p.Now()
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	clean := finish(nil)
	stalled := finish(fault.NewPlan("stall-p0").WithStall(0, 100, 500))
	if clean[0] != 600 || clean[1] != 600 {
		t.Fatalf("fault-free lockstep run should finish at 600, got %v", clean)
	}
	if stalled[0] < 500+60 {
		t.Errorf("P0's work should resume only after the stall: finished at %d", stalled[0])
	}
	if stalled[1] != clean[1] {
		t.Errorf("P1 is not stalled and must be unaffected: %d vs %d", stalled[1], clean[1])
	}
}

// TestDegradeScalesTraversal: a degraded module's remote accesses cost
// more while the interval is active, and exactly the same afterwards.
func TestDegradeScalesTraversal(t *testing.T) {
	loadCost := func(plan *fault.Plan, when sim.Time) sim.Time {
		m, err := New(Config{Procs: 2, Topo: topo.NUMA, Seed: 1, Faults: plan})
		if err != nil {
			t.Fatal(err)
		}
		word := m.AllocLocal(1, 1) // lives in module 1: remote for P0
		var cost sim.Time
		err = m.Run(func(p *Proc) {
			if p.ID() != 0 {
				p.Delay(1)
				return
			}
			p.Delay(when)
			before := p.Now()
			p.Load(word)
			cost = p.Now() - before
		})
		if err != nil {
			t.Fatal(err)
		}
		return cost
	}
	plan := fault.NewPlan("degrade-mod1").WithDegrade(1, 0, 1000, 4)
	clean := loadCost(nil, 100)
	during := loadCost(plan, 100)
	after := loadCost(plan, 2000)
	if during <= clean {
		t.Errorf("degraded remote load should cost more: clean=%d during=%d", clean, during)
	}
	if after != clean {
		t.Errorf("after the interval the cost must match fault-free: clean=%d after=%d", clean, after)
	}
}

// faultedConfig is the shared plan for the determinism checks below:
// stalls and degradations only (crashes would wedge the finite
// workload), dense enough to overlap the whole contendedProgram run.
func faultedConfig(procs int, seed uint64) Config {
	plan := fault.NewPlan("det").
		WithStall(0, 40, 160).
		WithStall(1, 100, 220).
		WithStall(0, 300, 340).
		WithDegrade(0, 0, 250, 3).
		WithDegrade(1, 120, 480, 2)
	return Config{Procs: procs, Topo: topo.Bus, Seed: seed, Faults: plan}
}

// TestFaultPlanDeterminism: the same plan with the same seed must be
// bit-identical across fresh runs, across pooled Reset, and across the
// windows-on/off A/B pair.
func TestFaultPlanDeterminism(t *testing.T) {
	cfg := faultedConfig(6, 11)
	m1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st1, c1, d1 := contendedProgram(t, m1)

	m2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st2, c2, d2 := contendedProgram(t, m2)
	if !reflect.DeepEqual(st1, st2) || c1 != c2 || !reflect.DeepEqual(d1, d2) {
		t.Errorf("same plan, same seed diverged:\n  %+v\n  %+v", st1, st2)
	}

	// Pooled reuse: run something else, Reset back, rerun.
	if err := m2.Reset(Config{Procs: 3, Topo: topo.NUMA, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	contendedProgram(t, m2)
	if err := m2.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	st3, c3, d3 := contendedProgram(t, m2)
	if !reflect.DeepEqual(st1, st3) || c1 != c3 || !reflect.DeepEqual(d1, d3) {
		t.Errorf("pooled faulted run diverged from fresh:\n  %+v\n  %+v", st1, st3)
	}

	// Windows A/B: batching must be invisible under faults too.
	cfgNoWin := cfg
	cfgNoWin.NoSpinWindows = true
	m4, err := New(cfgNoWin)
	if err != nil {
		t.Fatal(err)
	}
	st4, c4, d4 := contendedProgram(t, m4)
	st1.WindowOps = 0
	st4.WindowOps = 0
	if !reflect.DeepEqual(st1, st4) || c1 != c4 || !reflect.DeepEqual(d1, d4) {
		t.Errorf("window batching changed a faulted run:\n  on:  %+v\n  off: %+v", st1, st4)
	}
}

// TestEmptyPlanIsNilPlan: a plan with no entries (or only inert ones)
// must leave the machine bit-identical to an unfaulted one.
func TestEmptyPlanIsNilPlan(t *testing.T) {
	clean, err := New(Config{Procs: 4, Topo: topo.Bus, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	stClean, cClean, _ := contendedProgram(t, clean)

	inert := fault.NewPlan("inert").
		WithStall(99, 10, 20).    // processor out of range
		WithStall(0, 50, 50).     // empty interval
		WithDegrade(0, 10, 90, 1) // factor 1 = no-op
	faulted, err := New(Config{Procs: 4, Topo: topo.Bus, Seed: 9, Faults: inert})
	if err != nil {
		t.Fatal(err)
	}
	if faulted.flt != nil {
		t.Error("a plan of inert entries should compile to no fault state")
	}
	stF, cF, _ := contendedProgram(t, faulted)
	if !reflect.DeepEqual(stClean, stF) || cClean != cF {
		t.Errorf("inert plan changed the run:\n  clean: %+v\n  inert: %+v", stClean, stF)
	}
}

// TestPoolResetAfterStepLimit is the pooling regression for aborted
// runs: a machine whose run tripped ErrStepLimit mid-spin (events still
// queued, spin state live, budget exhausted) must Reset to a state
// bit-identical to a fresh machine — the fault sweeps lean on this,
// since every wedged cell returns its machine to the worker's pool.
func TestPoolResetAfterStepLimit(t *testing.T) {
	cfg := Config{Procs: 4, Topo: topo.Bus, Seed: 11}

	fresh, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stFresh, cFresh, dFresh := contendedProgram(t, fresh)

	m, err := New(Config{Procs: 4, Topo: topo.Bus, Seed: 11, MaxSteps: 2000})
	if err != nil {
		t.Fatal(err)
	}
	held := m.AllocShared(1)
	m.Poke(held, 1)
	err = m.Run(func(p *Proc) {
		p.SpinTAS(held, Backoff{}) // never granted: the word starts held
	})
	if !errors.Is(err, sim.ErrStepLimit) {
		t.Fatalf("setup run should trip the step limit, got %v", err)
	}

	if err := m.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	st, c, d := contendedProgram(t, m)
	if !reflect.DeepEqual(st, stFresh) || c != cFresh || !reflect.DeepEqual(d, dFresh) {
		t.Errorf("Reset after ErrStepLimit diverged from fresh:\n  fresh: %+v\n  reset: %+v", stFresh, st)
	}

	// Same contract after a program panic (the abort-sentinel unwind).
	m2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = m2.Run(func(p *Proc) {
		if p.ID() == 2 {
			panic("injected test panic")
		}
		p.Delay(100)
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("setup run should report the panic, got %v", err)
	}
	if err := m2.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	st2, c2, d2 := contendedProgram(t, m2)
	if !reflect.DeepEqual(st2, stFresh) || c2 != cFresh || !reflect.DeepEqual(d2, dFresh) {
		t.Errorf("Reset after panic abort diverged from fresh:\n  fresh: %+v\n  reset: %+v", stFresh, st2)
	}
}
