package machine

import (
	"repro/internal/sim"
)

// This file is the continuation table: the engine-level mechanism that
// executes straight-line instruction sequences inline in the drive loop
// instead of passing the baton back to the issuing goroutine for every
// operation.
//
// A processor running a scripted sequence (RunScript) parks its
// goroutine once. Each operation in the script is issued by whichever
// goroutine pops the processor's EvCont event — exactly the operations
// the goroutine would have performed at that moment, with the same side
// effects, the same scheduling calls, the same livelock-budget charges,
// and the same RNG draws in the same order — so cycle counts, traffic
// counters, and the interleaving of all processors are bit-identical to
// the baton-handoff execution (Config.NoInlineDispatch pins this A/B in
// the determinism suite). The only difference is host-side: the
// goroutine is resumed once, when the script completes, instead of once
// per operation that crosses a pending event.
//
// Ops are data-encoded (no closure per op except the optional free
// host-side callback), so scripts can be built once and reused across
// iterations without allocation on the hot path.

// ContOpKind selects what a ContOp does.
type ContOpKind uint8

const (
	// ContLoad issues a charged load of Addr; the value lands in the
	// script accumulator (consumed by ContStoreAcc).
	ContLoad ContOpKind = iota
	// ContDelay models local computation of Dur cycles.
	ContDelay
	// ContExpDelay models local computation of rng.ExpTime(Dur) cycles,
	// drawing from the processor's RNG at issue time — the same draw,
	// in the same stream position, the goroutine loop would make.
	ContExpDelay
	// ContStore issues a charged store of Val to Addr (waking watchers).
	ContStore
	// ContStoreAcc issues a charged store of accumulator+Val to Addr.
	ContStoreAcc
	// ContCall invokes the host-side callback Fn(p) with no simulated
	// cost: no cycles, no traffic, no RNG draws. Bookkeeping only.
	ContCall
)

// ContOp is one data-encoded scripted operation.
type ContOp struct {
	Kind ContOpKind
	Addr Addr
	Val  Word
	Dur  sim.Time
	Fn   func(*Proc)
}

// contState is the per-processor continuation descriptor. It lives by
// value in the Proc and is reused across scripts, so entering one
// allocates nothing beyond the caller's op slice.
type contState struct {
	active bool
	pc     int
	acc    Word // last ContLoad result, consumed by ContStoreAcc
	ops    []ContOp
}

// contWhy maps an op kind to the blockedOn tag the equivalent Proc call
// would set, so deadlock reports read the same either way.
func contWhy(k ContOpKind) string {
	switch k {
	case ContLoad:
		return "load"
	case ContStore, ContStoreAcc:
		return "store"
	default:
		return "delay"
	}
}

// RunScript executes the ops in order as this processor's program,
// advancing the virtual clock exactly as the equivalent sequence of
// Load/Delay/Store calls would. The goroutine parks while the drive
// loop advances the continuation in place and resumes when the script
// completes — one handoff per script instead of one per operation that
// crosses a pending event (or one per operation again under
// Config.NoInlineDispatch, the A/B reference mode). The op slice must
// not be mutated until RunScript returns.
func (p *Proc) RunScript(ops []ContOp) {
	c := &p.cont
	c.active = true
	c.pc = 0
	c.acc = 0
	c.ops = ops
	for !p.m.contAdvance(p) {
		p.m.drive(p)
	}
	c.active = false
	c.ops = nil
	p.blockedOn = ""
}

// contComplete mirrors Proc.complete for an operation issued by the
// continuation machinery: retire inline when no pending event precedes
// the completion (charging the livelock budget), otherwise schedule the
// continuation as an EvCont at the completion time. The scheduling
// decision, charge, and event timestamp are identical to the goroutine
// path; only the event kind differs, which the engine orders
// identically.
func (p *Proc) contComplete(lat sim.Time) bool {
	target := p.localNow + lat
	eng := p.m.eng
	if nxt, ok := eng.NextTime(); !ok || nxt > target {
		if !eng.ChargeStep() {
			p.localNow = target
			p.m.stats.InlineOps++
			return true
		}
	}
	eng.AtEvent(target, sim.EvCont, int32(p.id), 0)
	return false
}

// contAdvance runs p's continuation until the script completes (returns
// true: the processor's program resumes at p.localNow) or the current
// op must wait for an engine event (returns false). It is called from
// the drive loop when an EvCont fires, and from RunScript on the
// processor's own goroutine — including once more after each drive
// returns, where a completed script makes it a no-op reporting true.
func (m *Machine) contAdvance(p *Proc) bool {
	c := &p.cont
	for c.pc < len(c.ops) {
		op := &c.ops[c.pc]
		c.pc++
		p.blockedOn = contWhy(op.Kind)
		var lat sim.Time
		switch op.Kind {
		case ContLoad:
			c.acc, lat = p.loadIssue(op.Addr)
		case ContDelay:
			lat = op.Dur
		case ContExpDelay:
			lat = p.rng.ExpTime(op.Dur)
		case ContStore, ContStoreAcc:
			v := op.Val
			if op.Kind == ContStoreAcc {
				v += c.acc
			}
			p.stats.Stores++
			lat = m.access(p, op.Addr, accWrite)
			m.mem[op.Addr] = v
			m.wakeWatchers(op.Addr, p.localNow+lat)
		case ContCall:
			op.Fn(p)
			continue
		}
		if lat < 0 {
			lat = 0
		}
		if !p.contComplete(lat) {
			return false
		}
	}
	return true
}
