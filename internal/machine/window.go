package machine

import (
	"math"
	"slices"

	"repro/internal/sim"
	"repro/internal/topo"
)

// Cross-processor spin-window batching.
//
// PR 3's spinBatchTAS charges one processor's draw-free probe runs in
// closed form, but it stops at the first pending event — and in a
// contended storm the pending events are the *other* spinners' probes,
// so an interleaved storm still replays every probe through the engine
// queue. This file batches across processors: when every event the
// engine will fire before a computable horizon is a test&set probe
// with a draw-free deterministic schedule, the whole window
// [now, horizon) is charged in closed form and the clock advances in
// one step.
//
// Why that is exact. A saturated test&set storm serializes on one
// resource — the single bus, or the probed word's home module on a
// module machine — which serves exactly one probe at a time. Each probe
// completion pops, judges its predicate (it provably fails: the word
// stays non-zero, since the only in-window writes are the failing
// test&sets' idempotent stores of 1), immediately reissues, and parks
// again. The probe completions therefore form a strict rotation of the
// spinners in the (when, seq) order of their pending events at window
// start. With per-position service times S_1..S_n (one per spinner, in
// rotation order: BusLatency on the bus, LocalMem plus the spinner's
// declared distance-class traversal on a module machine), the j-th
// in-window pop reissues into the busy resource and completes at
// F + cumS(j), where F is the resource's free point and cumS(j) is the
// sum of the first j services of the cyclic schedule
// (cumS(j) = (j/n)·R + pre[j mod n], R the whole-rotation sum). Each
// pop performs one RMW, one traffic charge, one step/work debit, and
// consumes exactly one sequence number for the successor it schedules.
// Every quantity the simulation can observe — per-processor RMW and
// traffic counters, resource occupancy, the step and sequence counters,
// the value each probe reads, and the (when, seq) of each spinner's
// pending event at the horizon — is then closed-form arithmetic in j.
// Interleaved distance classes still pop in global (when, seq) order;
// the cyclic cumS schedule reproduces that order's tie-breaks exactly
// because every reissue joins the same serial queue. The window
// detector verifies the preconditions of that argument and refuses
// anything else, so enabling windows is bit-identical to per-event
// execution by construction (Config.NoSpinWindows exists purely for
// A/B tests and perf comparisons).
//
// Three window shapes commit:
//
//   - The uniform raw rotation (PR 4): every spinner shares one probe
//     period, positions are recovered arithmetically from the pending
//     timestamps, and the whole storm fast-forwards to the horizon.
//   - The mixed-schedule rotation: spinners in different distance
//     classes (cluster's intra- vs inter-hop periods) and jitter-free
//     fixed-backoff spinners (constant delay D between failed probes)
//     rotate together. A backoff pop is exact only in the regime where
//     its delay retires inline — ends strictly before the next event
//     fires — and its reissue still queues on the busy resource
//     (c_j + D within the current rotation); both are verified
//     per-position before committing, and the delay's inline budget
//     charge is replayed arithmetically.
//   - The release/takeover drain: when the storm word has been freed,
//     the pending probes judge-fail one last time and reissue; the
//     first reissue reads zero and wins the word (its value and
//     eligibility bit are materialized), every later reissue reads the
//     winner's 1 and parks. One pop per pending probe, after which the
//     winner's completion resumes the program per-event.
//
// Preconditions checked by tryWindow, and why each one matters:
//
//   - Every pending event before the horizon is an EvSpin whose
//     processor sits in a window-eligible test&set spin (kind spinTAS,
//     phase spTASJudge, draw-free non-growing Backoff) on one shared
//     address. Anything else — a dispatch, a closure, a TTAS burst
//     probe, a jittered backoff probe, a woken read-spin, a scheduled
//     backoff delay — becomes the horizon instead, truncating (not
//     aborting) the window.
//   - The last probe each spinner issued read a non-zero value
//     (spin.val != 0): all in-window judges provably fail. (A freed
//     word flips the attempt into drain mode instead.)
//   - The probed word has no watchers: no probe wakes anybody.
//   - Bus: the word's exclusive owner is not the first spinner in
//     rotation. In rotation every probe is preceded by a different
//     processor's probe, so it is a full bus transaction; only the
//     window's first probe could instead be a cache hit (and a
//     spinBatchTAS candidate), which would break the service schedule.
//   - Modules: every window spinner is remote to the word's home
//     module, on a topology declaring closed traversal classes
//     (topo.TraversalClasses), so each spinner's service time is a
//     storm-stable constant. The home processor itself has a shorter
//     period and can trigger spinBatchTAS mid-storm; its events bound
//     the window instead.
//   - Saturation: the resource's free point F is at or past the last
//     pending probe completion, so every in-window reissue queues on
//     the resource and the cumS schedule is exact. This holds whenever
//     the pending completions were themselves scheduled by the
//     resource (F *is* the last completion); the check guards the
//     cold-start transient.
//   - The pop budget: the window never charges more pops (or inline
//     delay charges) than the engine may still fire, so a livelocked
//     storm trips ErrStepLimit at exactly the event where per-event
//     execution would — but reaches it in one window instead of 10^8
//     pops.
const (
	// windowRetry is how many probes to wait before rescanning after a
	// failed attempt (storms that are structurally ineligible — RNG
	// backoff, watcher bursts — would otherwise pay a scan per probe);
	// windowRetryStorm is the shorter wait when an eligible storm was
	// found but transiently blocked (a winner mid-exit, a release in
	// flight).
	windowRetry      = 8
	windowRetryStorm = 2
	// windowMinPops is the smallest window worth committing.
	windowMinPops = 2
)

// The eligibility bitmask. Scanning the queue per attempt must not
// chase a pointer into every spinner's Proc struct, so the spin
// machinery maintains one bit per processor: set exactly while the
// processor's pending EvSpin (if any) is a window-eligible test&set
// probe completion that read a non-zero value. The static part
// (spinState.winStatic) is computed once at spin entry; the dynamic
// part follows the value each issued probe reads (and clears while a
// backoff delay is scheduled as an event). The mask is a word-indexed
// bit array, so eligibility tracking scales past 64 processors — the
// P ∈ {256, 1024} sweeps run the same code path with more words.

func (m *Machine) setWinMask(pid int, ok bool) {
	w := &m.winMask[pid>>6]
	bit := uint64(1) << uint(pid&63)
	if ok {
		if *w&bit == 0 {
			*w |= bit
			m.winCount++
		}
	} else if *w&bit != 0 {
		*w &^= bit
		m.winCount--
	}
}

func (m *Machine) winMaskBit(pid int32) bool {
	return m.winMask[pid>>6]&(uint64(1)<<uint(pid&63)) != 0
}

// winStatic reports the spin-entry-time part of window eligibility: a
// test&set with a draw-free, non-growing delay schedule (no RNG
// jitter; raw retries or a constant fixed backoff) on a machine with a
// serializing resource, and on a module machine only a spinner remote
// to the word's home module on a topology declaring closed traversal
// classes (a local spinner's shorter service period breaks the
// rotation the closed form depends on; undeclared topologies replay
// per-event, still exact).
// On success it caches the spinner's probe service time in
// spinState.winService (one topology hop-price call per spin entry,
// not per window scan).
func (m *Machine) winStatic(p *Proc, kind uint8, a Addr, bo Backoff) bool {
	if !m.winEnabled || kind != spinTAS || bo.PropJitter {
		return false
	}
	if bo.Base != 0 && bo.Cap > bo.Base {
		return false // growing schedule: the probe period is not constant
	}
	switch m.disc {
	case topo.SnoopingBus:
		p.spin.winService = m.cfg.BusLatency
		return true
	case topo.Modules:
		if !m.winClassed {
			return false
		}
		mod := m.home(a)
		if mod == p.id {
			return false
		}
		p.spin.winService = m.cfg.LocalMem + m.topo.Traversal(p.id, mod, m.tm)
		return true
	}
	return false
}

// sortSet orders set by (When, Seq) — the pop order at window start.
// The uniform fast path needs it only as a cold-start fallback: in a
// saturated uniform storm the pending completions are exactly
// period-spaced, so rotation positions are computed arithmetically
// (see tryWindow) and the set stays unsorted. Mixed-schedule windows
// sort always — their pending spacing depends on the order itself.
// Small sets use insertion sort: they are nearly sorted (completions
// were scheduled in increasing time order) and the constant beats any
// general sorter. Deep-machine storms are another matter — at P ∈
// {256, 1024} a heap-ordered set of hundreds of probes is far from
// sorted and insertion sort's quadratic worst case shows up in the
// profile — so large sets go to the standard pattern-defeating sort.
func sortSet(set []sim.WindowEvent) {
	if len(set) >= 48 {
		slices.SortFunc(set, func(a, b sim.WindowEvent) int {
			if a.When != b.When {
				if a.When < b.When {
					return -1
				}
				return 1
			}
			if a.Seq < b.Seq {
				return -1
			}
			return 1
		})
		return
	}
	for i := 1; i < len(set); i++ {
		e := set[i]
		j := i - 1
		for j >= 0 && (set[j].When > e.When || (set[j].When == e.When && set[j].Seq > e.Seq)) {
			set[j+1] = set[j]
			j--
		}
		set[j+1] = e
	}
}

// tryWindow attempts one closed-form window advance; next is the
// address the queue's earliest event is probing (from the drive
// loop's peek). On failure it backs the trigger off; on success the
// streak resets (the next pop is the horizon event). Called from the
// drive loop only.
func (m *Machine) tryWindow(next Addr) {
	m.spinStreak = -windowRetry
	// A rotation (or drain) needs at least two eligible spinners.
	if m.winCount < 2 {
		return
	}
	// A freed storm word means a takeover is in flight: the pending
	// probes judge-fail and reissue, and the first reissue wins. That
	// is the release drain — handled in closed form by the slow path.
	drain := m.mem[next] == 0
	if drain {
		m.spinStreak = -windowRetryStorm
	}
	eng := m.eng
	// Fault gating, part one: refuse to form a window while any stall
	// or degrade interval is active — a stalled spinner's pops would
	// need deferring and a degraded module would change the service
	// schedule, and a refused window is always exact (the per-event
	// path replays the storm identically). Crashes need no check here:
	// a pending EvFault is an ordinary horizon for ScanWindow, and a
	// materialized crash already cleared its processor's mask bit.
	if m.flt != nil && m.flt.activeAt(eng.Now()) {
		return
	}
	if eng.Pending() < windowMinPops {
		return
	}

	// Partition the queue in one engine-side pass: eligible probes of
	// the anchor address (classified by the eligibility mask, no
	// per-Proc pointer chasing) form the window candidates; the
	// earliest other event is the horizon. Anchoring on the
	// next-to-fire probe's address keeps a concurrent storm on another
	// word from stealing the scan and leaving an empty window.
	addr := next
	set, horizonWhen, horizonSeq, haveHorizon := eng.ScanWindow(sim.EvSpin, int32(addr), m.winMask, m.winSet[:0])
	m.winSet = set // keep the grown buffer
	if len(set) < 2 {
		return // rotation (and its alternating-owner argument) needs >= 2
	}
	// Fault gating, part two: clamp the horizon to the next fault
	// boundary. No interval is active now (checked above) and no
	// boundary precedes the clamped horizon, so fault state is
	// constant across every in-window pop — no stall can defer one,
	// no degrade can reprice one. Sequence 0 orders the synthetic
	// horizon before every real event at its instant.
	if m.flt != nil {
		if fb, ok := m.flt.nextBound(eng.Now()); ok && (!haveHorizon || fb <= horizonWhen) {
			horizonWhen, horizonSeq, haveHorizon = fb, 0, true
		}
	}

	// A storm is present; any remaining blocker is transient (a winner
	// draining out of the rotation, a release in flight), so retry
	// sooner than the structural backoff would.
	m.spinStreak = -windowRetryStorm
	if m.watchHead[addr] != 0 {
		return
	}

	// Only probes ordered before the horizon fire in the window; track
	// the window's time extent in the same pass (filtering first also
	// keeps the general path's insertion sort on the small live set).
	tmin, tmax := set[0].When, set[0].When
	if haveHorizon {
		k := 0
		for _, e := range set {
			if e.When < horizonWhen || (e.When == horizonWhen && e.Seq < horizonSeq) {
				set[k] = e
				k++
				if e.When < tmin || k == 1 {
					tmin = e.When
				}
				if e.When > tmax || k == 1 {
					tmax = e.When
				}
			}
		}
		set = set[:k]
	} else {
		for _, e := range set[1:] {
			if e.When < tmin {
				tmin = e.When
			}
			if e.When > tmax {
				tmax = e.When
			}
		}
	}
	n := len(set)
	if n < 2 {
		return
	}

	// Release drains and module-machine storms (whose per-distance-class
	// schedules need the per-position arrays anyway) go straight to the
	// general path; the arithmetic fast path below is reserved for the
	// uniform raw bus rotation. Fixed-backoff spinners force the general
	// path too (their inline delays need the per-position regime checks).
	if drain || m.disc == topo.Modules {
		m.tryWindowSlow(addr, set, tmax, horizonWhen, haveHorizon, drain)
		return
	}
	for i := range set {
		if m.procs[set[i].Arg0].spin.bo.Base > 0 {
			m.tryWindowSlow(addr, set, tmax, horizonWhen, haveHorizon, false)
			return
		}
	}
	period := m.cfg.BusLatency
	if period <= 0 {
		return
	}
	free := m.busFreeAt
	if free < tmax {
		return // cold-start transient: let the per-event path reach saturation
	}

	// Uniform raw bus rotation — the PR 4 fast path, bit-identical to
	// the general form but with arithmetic position recovery and no
	// per-position arrays.
	//
	// Assign rotation positions — the (when, seq) pop order at window
	// start. In a saturated storm the pending completions are exactly
	// period-spaced (one probe per resource slot), so entry positions
	// are recovered arithmetically as (When-tmin)/period, validated
	// with a seen-bitmap; ties cannot bucket (distinct multiples). Any
	// other spacing is a cold-start transient and takes the explicit
	// sort instead.
	seen := resetSlice(m.winSeen, (n+63)/64)
	m.winSeen = seen
	bucketed := true
	firstPid := set[0].Arg0
	for _, e := range set {
		d := e.When - tmin
		r := int(d / period)
		if d%period != 0 || r >= n || seen[r>>6]&(uint64(1)<<uint(r&63)) != 0 {
			bucketed = false
			break
		}
		seen[r>>6] |= uint64(1) << uint(r&63)
		if r == 0 {
			firstPid = e.Arg0
		}
	}
	if !bucketed {
		sortSet(set)
		firstPid = set[0].Arg0
	}
	if m.owner[addr] == int16(firstPid)+1 {
		return // first probe would be a cache hit, not a bus transaction
	}

	// How many pops fire before the horizon: the n pending probes, plus
	// the rotated completions c_j = free + j*period with (c_j, seq0+j)
	// ordered before the horizon — i.e. c_j < H (their seqs are larger
	// than the horizon's, which was scheduled earlier).
	nn := uint64(n)
	total := nn
	if haveHorizon {
		if horizonWhen > free {
			total += uint64((horizonWhen - free - 1) / period)
		} else {
			total = nn // horizon at or before the free point: only the pending probes fire
		}
	} else {
		total = math.MaxUint64 // pure storm: nothing but probes; the budget caps it
	}
	if avail := eng.PopBudget(); total > avail {
		total = avail
	}
	if total < windowMinPops {
		return
	}

	// Commit. Pop j (1-based) is the probe completion of the spinner
	// at rotation position (j-1) mod n; it issues the next probe,
	// completing at free + j*period with sequence seq0 + j. The set is
	// walked in whatever order the scan produced it: each entry's
	// position recomputes from its timestamp (or its index, after the
	// fallback sort). Two deliberate economies keep this loop free of
	// per-spinner pointer chasing:
	//
	//   - RMW and traffic charges accumulate in the flat winRMWs array
	//     and fold into the per-processor stats when Stats() snapshots
	//     them (the counters are read nowhere else mid-run).
	//   - spin.val is not materialized. Probe-by-probe it would be the
	//     value the spinner's last probe read — the pre-window word for
	//     the first prober, 1 after — but for a raw test&set wait val
	//     is dead beyond its zero/non-zero-ness (the judge retries on
	//     non-zero; SpinTAS discards the final value), and both the
	//     pre-window val and every in-window read are provably
	//     non-zero, so skipping the write is invisible.
	seq0 := eng.Seq()
	lastPos := (total - 1) % nn
	var last int32
	for i := range set {
		r := uint64(i) + 1
		if bucketed {
			r = uint64((set[i].When-tmin)/period) + 1
		}
		if r > total {
			continue // budget-capped window: this spinner never pops
		}
		if r-1 == lastPos {
			last = set[i].Arg0
		}
		cnt := (total-r)/nn + 1
		jLast := r + nn*(cnt-1)
		m.winRMWs[set[i].Arg0] += cnt
		eng.RetimePending(int(set[i].Index), free+sim.Time(jLast)*period, seq0+jLast)
	}
	m.mem[addr] = 1
	m.owner[addr] = int16(last) + 1
	m.sharers[addr] = uint64(1) << uint(last)
	m.busFreeAt = free + sim.Time(total)*period
	m.stats.BusTxns += total
	m.stats.WindowOps += total
	eng.FinishWindow(total)
	m.spinStreak = 0
}

// tryWindowSlow handles the window shapes beyond the uniform raw bus
// rotation: per-distance-class (mixed service period) storms, storms
// containing fixed-backoff spinners, and release/takeover drains. set
// is the horizon-filtered eligible pending probes (n >= 2, no
// watchers) with time extent ending at tmax.
func (m *Machine) tryWindowSlow(addr Addr, set []sim.WindowEvent, tmax sim.Time, horizonWhen sim.Time, haveHorizon bool, drain bool) {
	// The serializing resource and its free point; the saturation
	// precondition (free at or past the last pending completion) makes
	// the cumS schedule exact.
	mod := 0
	var free sim.Time
	if m.disc == topo.SnoopingBus {
		free = m.busFreeAt
	} else {
		mod = m.home(addr)
		free = m.modFreeAt[mod]
	}
	if free < tmax {
		return // cold-start transient: let the per-event path reach saturation
	}

	n := len(set)
	// Rotation positions are the (when, seq) pop order at window
	// start. Mixed service periods make arithmetic bucketing
	// impossible — the pending spacing depends on the order being
	// recovered — so sort unconditionally; the sort IS the tie-break
	// validation (it reproduces the engine's (when, seq) pop order by
	// construction).
	sortSet(set)
	if m.disc == topo.SnoopingBus && m.owner[addr] == int16(set[0].Arg0)+1 {
		return // first probe would be a cache hit, not a bus transaction
	}

	// Per-position schedules and prefix sums: svc[i]/del[i] are the
	// service time and fixed pre-issue delay of the spinner at rotation
	// position i (0-based); pre[i] = svc[0]+..+svc[i-1] and bpre[i]
	// counts the backoff positions among them. cumS(j) is the sum of
	// the first j services of the cyclic schedule. Service times come
	// from the spin-entry cache (spinState.winService) — every masked
	// spinner passed winStatic, which priced its hop once. The scratch
	// arrays are fully rewritten, not cleared (growSlice).
	svc := growSlice(m.winSvc, n)
	del := growSlice(m.winDel, n)
	pre := growSlice(m.winPre, n+1)
	bpre := growSlice(m.winBPre, n+1)
	m.winSvc, m.winDel, m.winPre, m.winBPre = svc, del, pre, bpre
	pre[0], bpre[0] = 0, 0
	hasBackoff := false
	for i := range set {
		sp := &m.procs[set[i].Arg0].spin
		s := sp.winService
		if s <= 0 {
			return // degenerate zero-cost probe: no serial schedule to batch
		}
		svc[i] = s
		var d sim.Time
		b := bpre[i]
		if sp.bo.Base > 0 {
			d = sp.cur // constant: winStatic admits only Cap <= Base
			hasBackoff = true
			b++
		}
		del[i] = d
		pre[i+1] = pre[i] + s
		bpre[i+1] = b
	}
	R := pre[n]
	nn := uint64(n)
	cumS := func(j uint64) sim.Time {
		return sim.Time(j/nn)*R + pre[j%nn]
	}

	// Pop count. A drain pops each pending probe exactly once: the
	// first reissue reads the freed word and wins, so the rotation
	// ends before the winner's next completion at free+cumS(1) — which
	// fires after every pending pop (free >= tmax). A rotation runs to
	// the horizon: rescheduled pop n+k fires at free+cumS(k), so count
	// the k >= 1 with cumS(k) <= horizon-free-1 — whole rotations
	// contribute n pops per R, the partial one is a prefix-sum scan.
	eng := m.eng
	total := nn
	if !drain {
		if haveHorizon {
			if d := horizonWhen - free; d > 0 {
				dm1 := d - 1
				q0 := uint64(dm1 / R)
				rem := dm1 - sim.Time(q0)*R
				extra := q0 * nn
				for s := 1; s <= n; s++ {
					if pre[s] <= rem {
						extra++
					}
				}
				total = nn + extra
			}
			// horizon at or before the free point: only the pending
			// probes fire.
		} else {
			total = math.MaxUint64 // pure storm: the budget caps it
		}
	}

	// Budget. Raw pops charge exactly one step each, so capping at the
	// pop budget reproduces the per-event ErrStepLimit point exactly.
	// Backoff pops additionally charge their inline delay, so cap the
	// window such that every in-window charge is known to succeed — a
	// shorter window is a safe prefix (the per-event path replays the
	// tail, including any budget trip, identically).
	if !hasBackoff {
		if avail := eng.PopBudget(); total > avail {
			total = avail
		}
	} else {
		avail := eng.ChargeBudget()
		perRot := nn + bpre[n]
		if total == math.MaxUint64 || total+(total/nn)*bpre[n]+bpre[total%nn] > avail {
			q := avail / perRot
			rem := avail - q*perRot
			s := uint64(0)
			for s < nn && s+1+bpre[s+1] <= rem {
				s++
			}
			if j := q*nn + s; j < total {
				total = j
			}
		}
	}
	if total < windowMinPops {
		return
	}

	if hasBackoff {
		// A fixed-backoff pop is exact only in the regime where its
		// delay retires inline (ends strictly before the next event
		// fires) and its reissue still queues on the busy resource
		// (judge time + delay within the current rotation, so the cumS
		// schedule holds). Verify both for every backoff pop; any
		// violation refuses the whole window and the per-event path
		// handles the storm exactly (including the regime where the
		// delay is long enough to schedule as its own event).
		fire := func(j uint64) sim.Time {
			if j <= nn {
				return set[j-1].When
			}
			return free + cumS(j-nn)
		}
		nxtFinal := fire(total + 1)
		if haveHorizon && horizonWhen < nxtFinal {
			nxtFinal = horizonWhen
		}
		// Transient pops judge at their recorded completion times.
		for j := uint64(1); j <= total && j <= nn; j++ {
			d := del[j-1]
			if d == 0 {
				continue
			}
			c := set[j-1].When
			nxt := nxtFinal
			if j < total {
				nxt = fire(j + 1)
			}
			if c+d >= nxt || c+d > free+cumS(j-1) {
				return
			}
		}
		if total > nn {
			// Final rescheduled pop, checked exactly.
			if d := del[(total-1)%nn]; d > 0 {
				c := free + cumS(total-nn)
				if c+d >= nxtFinal || c+d > free+cumS(total-1) {
					return
				}
			}
			// Steady-state pops reduce to per-position constants: the
			// delay must end before the next pop fires (d < the next
			// position's service) and the reissue must stay inside the
			// current rotation (d <= R - own service).
			if total > nn+1 {
				for i := 0; i < n; i++ {
					d := del[i]
					if d == 0 {
						continue
					}
					if d >= svc[(i+1)%n] || d > R-svc[i] {
						return
					}
				}
			}
		}
	}

	// Commit. Pop j (1-based) is the probe completion of the spinner
	// at rotation position (j-1) mod n; its reissue completes at
	// free+cumS(j) with sequence seq0+j. The same two economies as the
	// fast path apply (deferred winRMWs, unmaterialized spin.val) —
	// except a drain's winner, whose zero read is observable: its
	// value and eligibility bit are materialized, so its retimed
	// completion judges the win per-event and resumes the program.
	seq0 := eng.Seq()
	lastPos := (total - 1) % nn
	var last int32
	for i := range set {
		r := uint64(i) + 1
		if r > total {
			continue // capped window: this spinner never pops
		}
		if r-1 == lastPos {
			last = set[i].Arg0
		}
		cnt := (total-r)/nn + 1
		jLast := r + nn*(cnt-1)
		m.winRMWs[set[i].Arg0] += cnt
		eng.RetimePending(int(set[i].Index), free+cumS(jLast), seq0+jLast)
	}
	if drain {
		w := m.procs[set[0].Arg0]
		w.spin.val = 0
		m.setWinMask(w.id, false)
	}
	m.mem[addr] = 1
	occ := free + cumS(total)
	if m.disc == topo.SnoopingBus {
		m.owner[addr] = int16(last) + 1
		m.sharers[addr] = uint64(1) << uint(last)
		m.busFreeAt = occ
		m.stats.BusTxns += total
	} else {
		m.modFreeAt[mod] = occ
		m.stats.RemoteRefs += total
	}
	if hasBackoff {
		// Replay the in-window inline delay charges (budgeted above).
		b := (total/nn)*bpre[n] + bpre[total%nn]
		eng.ChargeN(b)
		m.stats.InlineOps += b
	}
	m.stats.WindowOps += total
	eng.FinishWindow(total)
	m.spinStreak = 0
}
