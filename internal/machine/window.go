package machine

import (
	"math"

	"repro/internal/sim"
	"repro/internal/topo"
)

// Cross-processor spin-window batching.
//
// PR 3's spinBatchTAS charges one processor's draw-free probe runs in
// closed form, but it stops at the first pending event — and in a
// contended storm the pending events are the *other* spinners' probes,
// so an interleaved storm still replays every probe through the engine
// queue. This file batches across processors: when every event the
// engine will fire before a computable horizon is a raw test&set probe
// with a draw-free constant-period schedule, the whole window
// [now, horizon) is charged in closed form and the clock advances in
// one step.
//
// Why that is exact. A saturated raw test&set storm serializes on one
// resource — the single bus, or the probed word's home module on NUMA —
// which serves exactly one probe per fixed period T (BusLatency on the
// bus; LocalMem+RemoteMem for an all-remote module storm). Each probe
// completion pops, judges its predicate (it provably fails: the word
// stays non-zero, since the only in-window writes are the failing
// test&sets' idempotent stores of 1), immediately issues the next
// probe, and parks again. The probe completions therefore form a
// strict rotation of the spinners in the (when, seq) order of their
// pending events at window start: the j-th in-window pop fires at
// F + j·T (F = the resource's free point), performs one RMW, one
// traffic charge, one step/work debit, and consumes exactly one
// sequence number for the successor it schedules. Every quantity the
// simulation can observe — per-processor RMW and traffic counters,
// resource occupancy, the step and sequence counters, the value each
// probe reads, and the (when, seq) of each spinner's pending event at
// the horizon — is then closed-form arithmetic in j. The window
// detector verifies the preconditions of that argument and refuses
// anything else, so enabling windows is bit-identical to per-event
// execution by construction (Config.NoSpinWindows exists purely for
// A/B tests and perf comparisons).
//
// Preconditions checked by tryWindow, and why each one matters:
//
//   - Every pending event before the horizon is an EvSpin whose
//     processor sits in a raw-TAS spin (kind spinTAS, phase
//     spTASJudge, zero Backoff — no RNG draws, no growing delay) on
//     one shared address. Anything else — a dispatch, a closure, a
//     TTAS burst probe, a jittered backoff probe, a woken read-spin —
//     becomes the horizon instead, truncating (not aborting) the
//     window.
//   - The last probe it issued read a non-zero value (spin.val != 0):
//     a spinner whose in-flight probe read 0 is about to win the word
//     and leave the storm.
//   - The probed word is non-zero with no watchers: the predicate
//     stays false all window and no probe wakes anybody.
//   - Bus: the word's exclusive owner is not the first spinner in
//     rotation. In rotation every probe is preceded by a different
//     processor's probe, so it is a full bus transaction; only the
//     window's first probe could instead be a cache hit (and a
//     spinBatchTAS candidate), which would break the uniform period.
//   - NUMA: every window spinner is remote to the word's home module,
//     so all probes share one service time. A local spinner (the home
//     processor itself) has a shorter period and can trigger
//     spinBatchTAS mid-storm; its events bound the window instead.
//   - Saturation: the resource's free point F is at or past the last
//     pending probe completion, so every in-window probe starts at F
//     plus a whole number of periods. This holds whenever the pending
//     completions were themselves scheduled by the resource (F *is*
//     the last completion); the check guards the cold-start transient.
//   - The pop budget: the window never charges more pops than the
//     engine may still fire, so a livelocked storm trips ErrStepLimit
//     at exactly the event where per-event execution would — but
//     reaches it in one window instead of 10^8 pops.
const (
	// windowRetry is how many probes to wait before rescanning after a
	// failed attempt (storms that are structurally ineligible — RNG
	// backoff, watcher bursts — would otherwise pay a scan per probe);
	// windowRetryStorm is the shorter wait when an eligible storm was
	// found but transiently blocked (a winner mid-exit, a release in
	// flight).
	windowRetry      = 8
	windowRetryStorm = 2
	// windowMinPops is the smallest window worth committing.
	windowMinPops = 2
)

// The eligibility bitmask. Scanning the queue per attempt must not
// chase a pointer into every spinner's Proc struct, so the spin
// machinery maintains one bit per processor: set exactly while the
// processor's pending EvSpin (if any) is a window-eligible raw-TAS
// probe completion that read a non-zero value. The static part
// (spinState.winStatic) is computed once at spin entry; the dynamic
// part follows the value each issued probe reads.

func (m *Machine) setWinMask(pid int, ok bool) {
	w := &m.winMask[pid>>6]
	bit := uint64(1) << uint(pid&63)
	if ok {
		if *w&bit == 0 {
			*w |= bit
			m.winCount++
		}
	} else if *w&bit != 0 {
		*w &^= bit
		m.winCount--
	}
}

func (m *Machine) winMaskBit(pid int32) bool {
	return m.winMask[pid>>6]&(uint64(1)<<uint(pid&63)) != 0
}

// winStatic reports the spin-entry-time part of window eligibility:
// a raw test&set (draw-free, constant period — no RNG jitter, no
// growing delay) on a machine with a serializing resource, and on a
// module machine only a spinner remote to the word's home module on a
// topology with a uniform remote traversal cost (a local spinner's
// shorter service period — or a hierarchy's distance-dependent hops —
// breaks the uniform rotation the closed form depends on; such storms
// replay per-event, still exact).
func (m *Machine) winStatic(p *Proc, kind uint8, a Addr, bo Backoff) bool {
	if !m.winEnabled || kind != spinTAS || bo.Base != 0 || bo.PropJitter {
		return false
	}
	switch m.disc {
	case topo.SnoopingBus:
		return true
	case topo.Modules:
		if _, uniform := m.topo.RemoteTraversal(m.tm); !uniform {
			return false
		}
		return m.home(a) != p.id
	}
	return false
}

// sortSet orders set by (When, Seq) — the pop order at window start.
// Only the cold-start fallback needs an explicit sort: in a saturated
// storm the pending completions are exactly period-spaced, so
// rotation positions are computed arithmetically (see tryWindow) and
// the set stays unsorted. Insertion sort: the set is small and nearly
// sorted (completions were scheduled in increasing time order).
func sortSet(set []sim.WindowEvent) {
	for i := 1; i < len(set); i++ {
		e := set[i]
		j := i - 1
		for j >= 0 && (set[j].When > e.When || (set[j].When == e.When && set[j].Seq > e.Seq)) {
			set[j+1] = set[j]
			j--
		}
		set[j+1] = e
	}
}

// tryWindow attempts one closed-form window advance; next is the
// address the queue's earliest event is probing (from the drive
// loop's peek). On failure it backs the trigger off; on success the
// streak resets (the next pop is the horizon event). Called from the
// drive loop only.
func (m *Machine) tryWindow(next Addr) {
	m.spinStreak = -windowRetry
	// Cheap early-outs before paying for a queue scan: a rotation
	// needs at least two eligible spinners, and a freed storm word
	// means a takeover is in flight (the winner's zero-read probe must
	// drain per-event before the storm can re-form).
	if m.winCount < 2 {
		return
	}
	if m.mem[next] == 0 {
		m.spinStreak = -windowRetryStorm
		return
	}
	eng := m.eng
	pend := eng.Pending()
	if pend < windowMinPops {
		return
	}

	// Partition the queue in one engine-side pass: eligible probes of
	// the anchor address (classified by the eligibility mask, no
	// per-Proc pointer chasing) form the window candidates; the
	// earliest other event is the horizon. Anchoring on the
	// next-to-fire probe's address keeps a concurrent storm on another
	// word from stealing the scan and leaving an empty window.
	addr := next
	set, horizonWhen, horizonSeq, haveHorizon := eng.ScanWindow(sim.EvSpin, int32(addr), m.winMask, m.winSet[:0])
	m.winSet = set // keep the grown buffer
	if len(set) == 0 {
		return
	}
	tmin, tmax := set[0].When, set[0].When
	if haveHorizon {
		// Only probes ordered before the horizon fire in the window;
		// track the window's time extent in the same pass.
		k := 0
		for _, e := range set {
			if e.When < horizonWhen || (e.When == horizonWhen && e.Seq < horizonSeq) {
				set[k] = e
				k++
				if e.When < tmin || k == 1 {
					tmin = e.When
				}
				if e.When > tmax || k == 1 {
					tmax = e.When
				}
			}
		}
		set = set[:k]
	} else {
		for _, e := range set[1:] {
			if e.When < tmin {
				tmin = e.When
			}
			if e.When > tmax {
				tmax = e.When
			}
		}
	}
	n := len(set)
	if n < 2 {
		return // rotation (and its alternating-owner argument) needs >= 2
	}

	// A storm is present; any remaining blocker is transient (a winner
	// draining out of the rotation, a release in flight), so retry
	// sooner than the structural backoff would.
	m.spinStreak = -windowRetryStorm
	if m.mem[addr] == 0 || m.watchHead[addr] != 0 {
		return
	}
	var period sim.Time
	switch m.disc {
	case topo.SnoopingBus:
		period = m.cfg.BusLatency
	case topo.Modules:
		// Every window spinner is remote (winStatic) on a topology
		// whose remote hops share one traversal cost, so one service
		// period covers the whole rotation.
		rt, _ := m.topo.RemoteTraversal(m.tm)
		period = m.cfg.LocalMem + rt
	}
	if period <= 0 {
		return
	}
	var free sim.Time
	if m.disc == topo.SnoopingBus {
		free = m.busFreeAt
	} else {
		free = m.modFreeAt[m.home(addr)]
	}
	if free < tmax {
		return // cold-start transient: let the per-event path reach saturation
	}

	// Assign rotation positions — the (when, seq) pop order at window
	// start. In a saturated storm the pending completions are exactly
	// period-spaced (one probe per resource slot), so entry positions
	// are recovered arithmetically as (When-tmin)/period, validated
	// with a seen-bitmap; ties cannot bucket (distinct multiples). Any
	// other spacing is a cold-start transient and takes the explicit
	// sort instead.
	seen := resetSlice(m.winSeen, (n+63)/64)
	m.winSeen = seen
	bucketed := true
	firstPid := set[0].Arg0
	for _, e := range set {
		d := e.When - tmin
		r := int(d / period)
		if d%period != 0 || r >= n || seen[r>>6]&(uint64(1)<<uint(r&63)) != 0 {
			bucketed = false
			break
		}
		seen[r>>6] |= uint64(1) << uint(r&63)
		if r == 0 {
			firstPid = e.Arg0
		}
	}
	if !bucketed {
		sortSet(set)
		firstPid = set[0].Arg0
	}
	if m.disc == topo.SnoopingBus && m.owner[addr] == int16(firstPid)+1 {
		return // first probe would be a cache hit, not a bus transaction
	}

	// How many pops fire before the horizon: the n pending probes, plus
	// the rotated completions c_j = free + j*period with (c_j, seq0+j)
	// ordered before the horizon — i.e. c_j < H (their seqs are larger
	// than the horizon's, which was scheduled earlier).
	nn := uint64(n)
	total := nn
	if haveHorizon {
		if horizonWhen > free {
			total += uint64((horizonWhen - free - 1) / period)
		} else {
			total = nn // horizon at or before the free point: only the pending probes fire
		}
	} else {
		total = math.MaxUint64 // pure storm: nothing but probes; the budget caps it
	}
	if avail := eng.PopBudget(); total > avail {
		total = avail
	}
	if total < windowMinPops {
		return
	}

	// Commit. Pop j (1-based) is the probe completion of the spinner
	// at rotation position (j-1) mod n; it issues the next probe,
	// completing at free + j*period with sequence seq0 + j. The set is
	// walked in whatever order the scan produced it: each entry's
	// position recomputes from its timestamp (or its index, after the
	// fallback sort). Two deliberate economies keep this loop free of
	// per-spinner pointer chasing:
	//
	//   - RMW and traffic charges accumulate in the flat winRMWs array
	//     and fold into the per-processor stats when Stats() snapshots
	//     them (the counters are read nowhere else mid-run).
	//   - spin.val is not materialized. Probe-by-probe it would be the
	//     value the spinner's last probe read — the pre-window word for
	//     the first prober, 1 after — but for a raw test&set wait val
	//     is dead beyond its zero/non-zero-ness (the judge retries on
	//     non-zero; SpinTAS discards the final value), and both the
	//     pre-window val and every in-window read are provably
	//     non-zero, so skipping the write is invisible.
	seq0 := eng.Seq()
	lastPos := (total - 1) % nn
	var last int32
	for i := range set {
		r := uint64(i) + 1
		if bucketed {
			r = uint64((set[i].When-tmin)/period) + 1
		}
		if r > total {
			continue // budget-capped window: this spinner never pops
		}
		if r-1 == lastPos {
			last = set[i].Arg0
		}
		cnt := (total-r)/nn + 1
		jLast := r + nn*(cnt-1)
		m.winRMWs[set[i].Arg0] += cnt
		eng.RetimePending(int(set[i].Index), free+sim.Time(jLast)*period, seq0+jLast)
	}
	m.mem[addr] = 1
	if m.disc == topo.SnoopingBus {
		m.owner[addr] = int16(last) + 1
		m.sharers[addr] = uint64(1) << uint(last)
		m.busFreeAt = free + sim.Time(total)*period
		m.stats.BusTxns += total
	} else {
		m.modFreeAt[m.home(addr)] = free + sim.Time(total)*period
		m.stats.RemoteRefs += total
	}
	m.stats.WindowOps += total
	eng.FinishWindow(total)
	m.spinStreak = 0
}
