package machine

// Pool recycles machines across runs. A sweep worker owns one Pool and
// serves every (configuration × algorithm) cell from it: Get resets a
// cached machine to the requested configuration (bit-identical to a
// fresh one — see Reset) instead of allocating megabytes of simulated
// memory per cell, and Put returns the machine after the cell's
// measurements are read.
//
// A Pool is not safe for concurrent use; parallel sweeps give each
// worker its own.
type Pool struct {
	free []*Machine
}

// Get returns a machine configured per cfg, reusing a pooled machine
// when one is available.
func (pl *Pool) Get(cfg Config) (*Machine, error) {
	if n := len(pl.free); n > 0 {
		m := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		if err := m.Reset(cfg); err != nil {
			return nil, err
		}
		return m, nil
	}
	return New(cfg)
}

// Put returns a machine to the pool for later reuse. The machine must
// not be used again by the caller; its simulated memory and statistics
// remain readable only until the next Get.
func (pl *Pool) Put(m *Machine) {
	if m == nil {
		return
	}
	pl.free = append(pl.free, m)
}
