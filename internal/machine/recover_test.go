package machine

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/topo"
)

// TestRestartReentersBody: a crash with a restart re-runs the program
// body from the top at the restart instant, with the incarnation
// counter bumped and nothing released on the dead incarnation's behalf
// until the new one acts.
func TestRestartReentersBody(t *testing.T) {
	plan := fault.NewPlan("restart").WithCrash(0, 50).WithRestart(0, 400)
	m, err := New(Config{Procs: 2, Topo: topo.Bus, Seed: 1, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	flag := m.AllocShared(1)
	var entries []sim.Time
	err = m.RunEach([]func(p *Proc){
		func(p *Proc) {
			entries = append(entries, p.Now())
			if m.Incarnation(0) == 0 {
				p.Delay(10000) // the crash at t=50 lands inside this delay
				t.Error("first incarnation survived its crash")
			}
			p.Store(flag, 7)
		},
		func(p *Proc) { p.Delay(600) },
	})
	if err != nil {
		t.Fatalf("recovered run should finish clean: %v", err)
	}
	want := []sim.Time{0, 400}
	if !reflect.DeepEqual(entries, want) {
		t.Errorf("body entry times = %v, want %v", entries, want)
	}
	if got := m.Incarnation(0); got != 1 {
		t.Errorf("incarnation = %d, want 1", got)
	}
	if m.Crashed(0) {
		t.Error("a reborn processor must not read as crashed")
	}
	if got := m.Peek(flag); got != 7 {
		t.Errorf("reborn incarnation's store lost: flag=%d", got)
	}
}

// TestSoloCrashRecovery exercises the self-revival path: with one
// processor, the victim is necessarily the goroutine driving the
// engine when its own EvRecover pops, so the rebirth unwinds its stack
// from inside its own drive call.
func TestSoloCrashRecovery(t *testing.T) {
	plan := fault.NewPlan("solo").WithCrash(0, 50).WithRestart(0, 200)
	m, err := New(Config{Procs: 1, Seed: 1, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	runs := 0
	err = m.Run(func(p *Proc) {
		runs++
		p.Delay(1000)
	})
	if err != nil {
		t.Fatalf("solo recovery run: %v", err)
	}
	if runs != 2 {
		t.Errorf("body ran %d times, want 2", runs)
	}
	if got := m.Stats().Cycles; got != 1200 {
		t.Errorf("run should end at restart+delay = 1200, got %d", got)
	}
}

// TestCrashAtZeroRestart: a stillborn processor (crashed before its
// start dispatch) is reborn at the restart instant and runs its body
// exactly once, from scratch.
func TestCrashAtZeroRestart(t *testing.T) {
	plan := fault.NewPlan("stillborn-reborn").WithCrash(0, 0).WithRestart(0, 300)
	m, err := New(Config{Procs: 2, Topo: topo.Bus, Seed: 1, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	var entries []sim.Time
	err = m.RunEach([]func(p *Proc){
		func(p *Proc) { entries = append(entries, p.Now()) },
		func(p *Proc) { p.Delay(500) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := []sim.Time{300}; !reflect.DeepEqual(entries, want) {
		t.Errorf("body entry times = %v, want %v", entries, want)
	}
	if got := m.Incarnation(0); got != 1 {
		t.Errorf("incarnation = %d, want 1", got)
	}
}

// TestRestartWithoutCrashIsInert: restart entries with no earlier
// crash of the same processor compile away entirely — the nil-plan
// invariance contract extends to them.
func TestRestartWithoutCrashIsInert(t *testing.T) {
	inert := fault.NewPlan("no-crash").
		WithRestart(0, 100).                  // no crash at all
		WithRestart(99, 500).                 // out of range
		WithCrash(1, 400).WithRestart(1, 200) // restart precedes the crash: both the restart and... the crash stays
	m, err := New(Config{Procs: 2, Topo: topo.Bus, Seed: 1, Faults: inert})
	if err != nil {
		t.Fatal(err)
	}
	if m.flt == nil {
		t.Fatal("the live crash entry must still compile")
	}
	if got := m.flt.restartAt[0]; got != -1 {
		t.Errorf("restartAt[0] = %d, want -1 (no crash to recover from)", got)
	}
	if got := m.flt.restartAt[1]; got != -1 {
		t.Errorf("restartAt[1] = %d, want -1 (restart precedes the crash)", got)
	}
}

// TestReclaimAfterRestart: the crash-recovery contract around held
// words — the dead incarnation's lock word stays held across the
// crash, and only the reborn incarnation's explicit store releases it,
// after which a blocked survivor gets through.
func TestReclaimAfterRestart(t *testing.T) {
	plan := fault.NewPlan("reclaim").WithCrash(0, 50).WithRestart(0, 2000)
	m, err := New(Config{Procs: 2, Topo: topo.Bus, Seed: 1, MaxSteps: 500_000, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	lock := m.AllocShared(1)
	var heldAtRebirth Word
	var p1Acquired sim.Time
	err = m.RunEach([]func(p *Proc){
		func(p *Proc) {
			if m.Incarnation(0) == 0 {
				p.TestAndSet(lock) // take the word, then die holding it
				p.Delay(10000)
				return
			}
			heldAtRebirth = m.Peek(lock)
			p.Store(lock, 0) // recovery: release what the dead self held
		},
		func(p *Proc) {
			p.Delay(100) // by now P0 holds the word and is dead
			p.SpinTAS(lock, Backoff{})
			p1Acquired = p.Now()
			p.Store(lock, 0)
		},
	})
	if err != nil {
		t.Fatalf("recovered run should finish clean: %v", err)
	}
	if heldAtRebirth != 1 {
		t.Errorf("dead incarnation's word should still be held at rebirth, got %d", heldAtRebirth)
	}
	if p1Acquired < 2000 {
		t.Errorf("P1 acquired at t=%d, before the holder's rebirth at 2000", p1Acquired)
	}
}

// TestSuspectIntervals pins the compiled failure detector: suspicion
// starts one threshold after the crash, clears at the restart, and a
// stall longer than the threshold reads as a false positive for its
// remainder.
func TestSuspectIntervals(t *testing.T) {
	plan := fault.NewPlan("suspect").
		WithCrash(0, 100).WithRestart(0, 5000).
		WithCrash(1, 200).       // no restart: suspected forever
		WithStall(2, 1000, 4000) // length 3000 > threshold 2000
	m, err := New(Config{Procs: 4, Topo: topo.Bus, Seed: 1, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		q    int
		t    sim.Time
		want bool
	}{
		{0, 2099, false}, {0, 2100, true}, {0, 4999, true}, {0, 5000, false},
		{1, 2199, false}, {1, 2200, true}, {1, 1 << 40, true},
		{2, 2999, false}, {2, 3000, true}, {2, 3999, true}, {2, 4000, false},
		{3, 1 << 40, false},
	}
	for _, tc := range cases {
		if got := m.SuspectedAt(tc.q, tc.t); got != tc.want {
			t.Errorf("SuspectedAt(P%d, t=%d) = %v, want %v", tc.q, tc.t, got, tc.want)
		}
	}

	// Short stalls (below the threshold) must never trip the detector.
	short, err := New(Config{Procs: 2, Topo: topo.Bus, Seed: 1,
		Faults: fault.NewPlan("short").WithStall(0, 100, 1500)})
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []sim.Time{0, 1000, 1499, 1500, 9999} {
		if short.SuspectedAt(0, at) {
			t.Errorf("sub-threshold stall suspected at t=%d", at)
		}
	}

	// A negative threshold disables the detector entirely.
	off, err := New(Config{Procs: 2, Topo: topo.Bus, Seed: 1, SuspectAfter: -1,
		Faults: fault.NewPlan("off").WithCrash(0, 100)})
	if err != nil {
		t.Fatal(err)
	}
	if off.SuspectedAt(0, 1<<40) {
		t.Error("disabled detector still suspects")
	}
}

// TestDeadlockErrorDetail: the typed DeadlockError carries who was
// blocked on what, who was dead, and the watched words with values and
// watcher sets — and the string renders all of it.
func TestDeadlockErrorDetail(t *testing.T) {
	plan := fault.NewPlan("wedge").WithCrash(0, 50)
	m, err := New(Config{Procs: 3, Topo: topo.Bus, Seed: 1, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	flag := m.AllocShared(1)
	err = m.RunEach([]func(p *Proc){
		func(p *Proc) {
			p.Delay(100)
			p.Store(flag, 1) // never reached: crashed at t=50
		},
		func(p *Proc) { p.SpinUntilEq(flag, 1) },
		func(p *Proc) { p.Delay(10); p.SpinUntilEq(flag, 1) },
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("error is %T, want *DeadlockError: %v", err, err)
	}
	if !reflect.DeepEqual(de.Crashed, []int{0}) {
		t.Errorf("Crashed = %v, want [0]", de.Crashed)
	}
	if len(de.Blocked) != 2 || de.Blocked[0].Proc != 1 || de.Blocked[1].Proc != 2 {
		t.Fatalf("Blocked = %+v, want P1 and P2", de.Blocked)
	}
	for _, bp := range de.Blocked {
		if bp.On != "watch" || bp.Addr != flag {
			t.Errorf("P%d blocked on %q@%d, want watch@%d", bp.Proc, bp.On, bp.Addr, flag)
		}
	}
	if len(de.Words) != 1 || de.Words[0].Addr != flag || de.Words[0].Value != 0 ||
		!reflect.DeepEqual(de.Words[0].Watchers, []int{1, 2}) {
		t.Errorf("Words = %+v, want word %d value 0 watched by [1 2]", de.Words, flag)
	}
	msg := err.Error()
	for _, want := range []string{"deadlock", "crashed: P0", "P1(watch@0)", "P2(watch@0)", "word[0]=0 watched by P1 P2"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error string missing %q:\n  %s", want, msg)
		}
	}
}

// TestRecoveryDeterminism: a crash+restart plan through the contended
// program — fresh vs fresh, fresh vs pooled Reset, and the windows
// A/B pair must all be bit-identical.
func TestRecoveryDeterminism(t *testing.T) {
	mkCfg := func(noWin bool) Config {
		// The crash lands mid-workload; the rebirth re-runs the whole
		// body, so the run still completes every invariant check in
		// contendedProgram.
		plan := fault.NewPlan("recover-det").
			WithStall(1, 100, 260).
			WithCrash(0, 0).WithRestart(0, 900).
			WithDegrade(0, 120, 480, 3)
		return Config{Procs: 6, Topo: topo.Bus, Seed: 11, NoSpinWindows: noWin, Faults: plan}
	}
	m1, err := New(mkCfg(false))
	if err != nil {
		t.Fatal(err)
	}
	st1, c1, d1 := contendedProgram(t, m1)
	if got := m1.Incarnation(0); got != 1 {
		t.Fatalf("incarnation = %d, want 1", got)
	}

	m2, err := New(mkCfg(false))
	if err != nil {
		t.Fatal(err)
	}
	st2, c2, d2 := contendedProgram(t, m2)
	if !reflect.DeepEqual(st1, st2) || c1 != c2 || !reflect.DeepEqual(d1, d2) {
		t.Errorf("recovery run diverged across fresh machines:\n  %+v\n  %+v", st1, st2)
	}

	// Pooled reuse across an intervening unrelated run.
	if err := m2.Reset(Config{Procs: 3, Topo: topo.NUMA, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	contendedProgram(t, m2)
	if err := m2.Reset(mkCfg(false)); err != nil {
		t.Fatal(err)
	}
	st3, c3, d3 := contendedProgram(t, m2)
	if !reflect.DeepEqual(st1, st3) || c1 != c3 || !reflect.DeepEqual(d1, d3) {
		t.Errorf("pooled recovery run diverged from fresh:\n  %+v\n  %+v", st1, st3)
	}

	// Windows A/B.
	m4, err := New(mkCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	st4, c4, d4 := contendedProgram(t, m4)
	if st4.WindowOps != 0 {
		t.Fatalf("NoSpinWindows run still batched %d window ops", st4.WindowOps)
	}
	st1.WindowOps = 0
	if !reflect.DeepEqual(st1, st4) || c1 != c4 || !reflect.DeepEqual(d1, d4) {
		t.Errorf("window batching changed a recovery run:\n  on:  %+v\n  off: %+v", st1, st4)
	}
}
