package machine

import (
	"sort"

	"repro/internal/fault"
	"repro/internal/sim"
)

// This file compiles a fault.Plan against one machine shape and answers
// the drive loop's fault queries. The design constraints, in order:
//
//   - Nil-plan invariance: with Config.Faults unset, no fault code runs
//     at all — every query site guards on m.flt != nil — so fault-free
//     runs are bit-identical to pre-fault builds, allocation for
//     allocation.
//   - Determinism: the compiled tables are pure data derived from the
//     plan; the drive loop consults them at event-delivery time only,
//     so the same plan on the same config yields bit-identical runs.
//   - Window exactness: spin windows refuse to form while any fault
//     interval is active and clamp their horizon to the next fault
//     boundary (window.go), so no closed-form pop can ever straddle a
//     point where fault state changes. The windows on/off A/B
//     invariant therefore survives every plan.
//
// Fault semantics implemented here and in the drive loop:
//
//   - Stall [start, end) of processor p: every dispatch or spin event
//     addressed to p inside the window is retimed to end (one extra
//     engine event per deferred delivery, identical in the windowed and
//     per-event executions). Inline run-ahead is not preempted — a
//     stall suspends event delivery, the model's stand-in for the OS
//     descheduling the thread between observable memory operations.
//   - Crash of processor p at time t: an EvFault event scheduled at t
//     (before any program event, so it carries the smallest sequence
//     number at its instant) marks p crashed; p's pending events are
//     dropped on delivery and its goroutine unwinds at teardown. The
//     pending EvFault also bounds every processor's inline lookahead,
//     so no operation of p completes at or after t — words p holds at
//     the crash stay held forever, which is the behavior the robust
//     primitives are measured against.
//   - Degrade [start, end) of module m by factor f: the network
//     traversal term of every access serviced by m and issued in the
//     window is scaled by f (module topologies only; the local-memory
//     term and bus machines are unaffected). Pricing is decided at
//     issue time, matching the occupancy model.

// faultSpan is one compiled interval, [start, end).
type faultSpan struct {
	start, end sim.Time
	factor     int // degrade factor; unused for stalls
}

// machineFaults is the compiled plan. Entry lists are tiny (a handful
// of faults per run), so point queries scan linearly; only nextBound,
// consulted per window attempt, binary-searches.
type machineFaults struct {
	stalls   [][]faultSpan // per processor: sorted, merged, disjoint
	crashAt  []sim.Time    // per processor: earliest crash instant, or -1
	degrades [][]faultSpan // per module: sorted by start (largest covering factor wins)
	active   []faultSpan   // union of all stall+degrade intervals, merged
	bounds   []sim.Time    // sorted, deduped: every interval endpoint and crash instant
}

// compileFaults builds the per-machine tables. Entries that do not
// apply to this shape — indices out of range, empty intervals,
// factors <= 1, negative times — are skipped, so one plan is portable
// across machine sizes.
func compileFaults(p *fault.Plan, procs, modules int) *machineFaults {
	f := &machineFaults{
		stalls:   make([][]faultSpan, procs),
		crashAt:  make([]sim.Time, procs),
		degrades: make([][]faultSpan, modules),
	}
	for i := range f.crashAt {
		f.crashAt[i] = -1
	}
	var raw []faultSpan
	var bounds []sim.Time
	for _, s := range p.Stalls() {
		if s.Proc < 0 || s.Proc >= procs || s.Start < 0 || s.End <= s.Start {
			continue
		}
		f.stalls[s.Proc] = append(f.stalls[s.Proc], faultSpan{start: s.Start, end: s.End})
		raw = append(raw, faultSpan{start: s.Start, end: s.End})
		bounds = append(bounds, s.Start, s.End)
	}
	for _, c := range p.Crashes() {
		if c.Proc < 0 || c.Proc >= procs || c.At < 0 {
			continue
		}
		if f.crashAt[c.Proc] < 0 || c.At < f.crashAt[c.Proc] {
			f.crashAt[c.Proc] = c.At
		}
		bounds = append(bounds, c.At)
	}
	for _, d := range p.Degrades() {
		if d.Module < 0 || d.Module >= modules || d.Start < 0 || d.End <= d.Start || d.Factor <= 1 {
			continue
		}
		f.degrades[d.Module] = append(f.degrades[d.Module], faultSpan{start: d.Start, end: d.End, factor: d.Factor})
		raw = append(raw, faultSpan{start: d.Start, end: d.End})
		bounds = append(bounds, d.Start, d.End)
	}
	for i := range f.stalls {
		f.stalls[i] = mergeSpans(f.stalls[i])
	}
	for i := range f.degrades {
		sort.Slice(f.degrades[i], func(a, b int) bool {
			return f.degrades[i][a].start < f.degrades[i][b].start
		})
	}
	f.active = mergeSpans(raw)
	sort.Slice(bounds, func(a, b int) bool { return bounds[a] < bounds[b] })
	for _, b := range bounds {
		if n := len(f.bounds); n == 0 || f.bounds[n-1] != b {
			f.bounds = append(f.bounds, b)
		}
	}
	if len(f.bounds) == 0 {
		// Every entry was inert for this shape: compile to "no faults"
		// so the run takes the nil-plan path exactly (no EvFault
		// scheduling, no window gating, no per-delivery checks).
		return nil
	}
	return f
}

// mergeSpans sorts spans by start and merges overlapping or adjacent
// ones. Merged lists are disjoint with gaps between consecutive spans,
// which is what guarantees a deferred delivery at a span's end is not
// immediately deferred again.
func mergeSpans(spans []faultSpan) []faultSpan {
	if len(spans) == 0 {
		return nil
	}
	sort.Slice(spans, func(a, b int) bool { return spans[a].start < spans[b].start })
	out := spans[:1]
	for _, s := range spans[1:] {
		if last := &out[len(out)-1]; s.start <= last.end {
			if s.end > last.end {
				last.end = s.end
			}
		} else {
			out = append(out, s)
		}
	}
	return out
}

// stallEnd returns the end of the stall interval covering processor pid
// at time t, or t itself when pid is not stalled then.
func (f *machineFaults) stallEnd(pid int, t sim.Time) sim.Time {
	for _, s := range f.stalls[pid] {
		if s.start > t {
			break
		}
		if t < s.end {
			return s.end
		}
	}
	return t
}

// degradeFactor returns the traversal scale factor for module mod at
// time t (1 when undegraded; overlapping intervals take the largest).
func (f *machineFaults) degradeFactor(mod int, t sim.Time) int {
	factor := 1
	for _, d := range f.degrades[mod] {
		if d.start > t {
			break
		}
		if t < d.end && d.factor > factor {
			factor = d.factor
		}
	}
	return factor
}

// activeAt reports whether any stall or degrade interval covers t —
// the conservative "some fault state is in effect" gate spin windows
// check before forming.
func (f *machineFaults) activeAt(t sim.Time) bool {
	for _, s := range f.active {
		if s.start > t {
			return false
		}
		if t < s.end {
			return true
		}
	}
	return false
}

// nextBound returns the earliest fault boundary — interval start or
// end, or crash instant — strictly after t. Spin windows and inline
// probe batches clamp their extent to it, so no closed form straddles
// a change of fault state.
func (f *machineFaults) nextBound(t sim.Time) (sim.Time, bool) {
	i := sort.Search(len(f.bounds), func(i int) bool { return f.bounds[i] > t })
	if i == len(f.bounds) {
		return 0, false
	}
	return f.bounds[i], true
}

// Crashed reports whether processor i has crashed in the current run.
// Host-side harness code uses it to tell a dead lock holder from a
// mutual-exclusion violation.
func (m *Machine) Crashed(i int) bool { return m.procs[i].crashed }
