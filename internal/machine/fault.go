package machine

import (
	"sort"

	"repro/internal/fault"
	"repro/internal/sim"
)

// This file compiles a fault.Plan against one machine shape and answers
// the drive loop's fault queries. The design constraints, in order:
//
//   - Nil-plan invariance: with Config.Faults unset, no fault code runs
//     at all — every query site guards on m.flt != nil — so fault-free
//     runs are bit-identical to pre-fault builds, allocation for
//     allocation.
//   - Determinism: the compiled tables are pure data derived from the
//     plan; the drive loop consults them at event-delivery time only,
//     so the same plan on the same config yields bit-identical runs.
//   - Window exactness: spin windows refuse to form while any fault
//     interval is active and clamp their horizon to the next fault
//     boundary (window.go), so no closed-form pop can ever straddle a
//     point where fault state changes. The windows on/off A/B
//     invariant therefore survives every plan.
//
// Fault semantics implemented here and in the drive loop:
//
//   - Stall [start, end) of processor p: every dispatch or spin event
//     addressed to p inside the window is retimed to end (one extra
//     engine event per deferred delivery, identical in the windowed and
//     per-event executions). Inline run-ahead is not preempted — a
//     stall suspends event delivery, the model's stand-in for the OS
//     descheduling the thread between observable memory operations.
//   - Crash of processor p at time t: an EvFault event scheduled at t
//     (before any program event, so it carries the smallest sequence
//     number at its instant) marks p crashed; p's pending events are
//     dropped on delivery and its goroutine unwinds at teardown. The
//     pending EvFault also bounds every processor's inline lookahead,
//     so no operation of p completes at or after t — words p holds at
//     the crash stay held, which is the behavior the robust primitives
//     are measured against.
//   - Restart of processor p at time r: the EvFault delivery arms an
//     EvRecover at r (only when the crash materialized, so crashes
//     drawn past the run's natural end stay inert together with their
//     restarts). The EvRecover delivery purges p's stale wakeups,
//     resets its proc-local state, re-derives its RNG stream, and
//     re-enters its program body at the recovery entry point. Nothing
//     is released on p's behalf. A processor crashes at most once and
//     recovers at most once per run: the compile keeps the earliest
//     crash and the earliest restart strictly after it.
//   - The heartbeat failure detector is compiled here too: processor p
//     is suspected from crash+threshold until its restart (forever,
//     failing one), and a stall longer than the threshold reads as a
//     false positive for its remainder. Suspicion is pure compiled
//     data — queries (Proc.Suspects) draw nothing and cost nothing, so
//     the detector cannot perturb timing or the window A/B contract.
//   - Degrade [start, end) of module m by factor f: the network
//     traversal term of every access serviced by m and issued in the
//     window is scaled by f (module topologies only; the local-memory
//     term and bus machines are unaffected). Pricing is decided at
//     issue time, matching the occupancy model.

// faultSpan is one compiled interval, [start, end).
type faultSpan struct {
	start, end sim.Time
	factor     int // degrade factor; unused for stalls
}

// machineFaults is the compiled plan. Entry lists are tiny (a handful
// of faults per run), so point queries scan linearly; only nextBound,
// consulted per window attempt, binary-searches.
type machineFaults struct {
	stalls    [][]faultSpan // per processor: sorted, merged, disjoint
	crashAt   []sim.Time    // per processor: earliest crash instant, or -1
	restartAt []sim.Time    // per processor: earliest restart after the crash, or -1
	degrades  [][]faultSpan // per module: sorted by start (largest covering factor wins)
	suspect   [][]faultSpan // per processor: failure-detector suspicion intervals
	active    []faultSpan   // union of all stall+degrade intervals, merged
	bounds    []sim.Time    // sorted, deduped: every interval endpoint and crash/restart instant
}

// suspectForever stands in for an open-ended suspicion interval (a
// crash with no restart); no run reaches this instant.
const suspectForever = sim.Time(1) << 62

// compileFaults builds the per-machine tables. Entries that do not
// apply to this shape — indices out of range, empty intervals,
// factors <= 1, negative times — are skipped, so one plan is portable
// across machine sizes.
func compileFaults(p *fault.Plan, procs, modules int, suspectAfter sim.Time) *machineFaults {
	f := &machineFaults{
		stalls:    make([][]faultSpan, procs),
		crashAt:   make([]sim.Time, procs),
		restartAt: make([]sim.Time, procs),
		degrades:  make([][]faultSpan, modules),
		suspect:   make([][]faultSpan, procs),
	}
	for i := range f.crashAt {
		f.crashAt[i] = -1
		f.restartAt[i] = -1
	}
	var raw []faultSpan
	var bounds []sim.Time
	for _, s := range p.Stalls() {
		if s.Proc < 0 || s.Proc >= procs || s.Start < 0 || s.End <= s.Start {
			continue
		}
		f.stalls[s.Proc] = append(f.stalls[s.Proc], faultSpan{start: s.Start, end: s.End})
		raw = append(raw, faultSpan{start: s.Start, end: s.End})
		bounds = append(bounds, s.Start, s.End)
	}
	for _, c := range p.Crashes() {
		if c.Proc < 0 || c.Proc >= procs || c.At < 0 {
			continue
		}
		if f.crashAt[c.Proc] < 0 || c.At < f.crashAt[c.Proc] {
			f.crashAt[c.Proc] = c.At
		}
		bounds = append(bounds, c.At)
	}
	for _, r := range p.Restarts() {
		// A restart is live only when this shape also crashes the same
		// processor earlier; the earliest qualifying restart wins. The
		// instant joins bounds like any other fault boundary, so spin
		// batches and windows clamp to it.
		if r.Proc < 0 || r.Proc >= procs || r.At < 0 {
			continue
		}
		c := f.crashAt[r.Proc]
		if c < 0 || r.At <= c {
			continue
		}
		if f.restartAt[r.Proc] < 0 || r.At < f.restartAt[r.Proc] {
			f.restartAt[r.Proc] = r.At
		}
	}
	for _, at := range f.restartAt {
		if at >= 0 {
			bounds = append(bounds, at)
		}
	}
	for _, d := range p.Degrades() {
		if d.Module < 0 || d.Module >= modules || d.Start < 0 || d.End <= d.Start || d.Factor <= 1 {
			continue
		}
		f.degrades[d.Module] = append(f.degrades[d.Module], faultSpan{start: d.Start, end: d.End, factor: d.Factor})
		raw = append(raw, faultSpan{start: d.Start, end: d.End})
		bounds = append(bounds, d.Start, d.End)
	}
	for i := range f.stalls {
		f.stalls[i] = mergeSpans(f.stalls[i])
	}
	if suspectAfter > 0 {
		// Compile the heartbeat failure detector's suspicion intervals.
		// A processor silent for suspectAfter cycles is suspected: a
		// crash from crash+threshold until its restart (forever without
		// one), and any single stall longer than the threshold from
		// stall-start+threshold until the stall ends — the detector's
		// honest false-positive mode. Suspicion intervals do not join
		// bounds: they gate no event timing, only Suspects queries.
		for i := range f.suspect {
			var spans []faultSpan
			if c := f.crashAt[i]; c >= 0 {
				end := suspectForever
				if f.restartAt[i] >= 0 {
					end = f.restartAt[i]
				}
				if c+suspectAfter < end {
					spans = append(spans, faultSpan{start: c + suspectAfter, end: end})
				}
			}
			for _, s := range f.stalls[i] {
				if s.end-s.start > suspectAfter {
					spans = append(spans, faultSpan{start: s.start + suspectAfter, end: s.end})
				}
			}
			f.suspect[i] = mergeSpans(spans)
		}
	}
	for i := range f.degrades {
		sort.Slice(f.degrades[i], func(a, b int) bool {
			return f.degrades[i][a].start < f.degrades[i][b].start
		})
	}
	f.active = mergeSpans(raw)
	sort.Slice(bounds, func(a, b int) bool { return bounds[a] < bounds[b] })
	for _, b := range bounds {
		if n := len(f.bounds); n == 0 || f.bounds[n-1] != b {
			f.bounds = append(f.bounds, b)
		}
	}
	if len(f.bounds) == 0 {
		// Every entry was inert for this shape: compile to "no faults"
		// so the run takes the nil-plan path exactly (no EvFault
		// scheduling, no window gating, no per-delivery checks).
		return nil
	}
	return f
}

// mergeSpans sorts spans by start and merges overlapping or adjacent
// ones. Merged lists are disjoint with gaps between consecutive spans,
// which is what guarantees a deferred delivery at a span's end is not
// immediately deferred again.
func mergeSpans(spans []faultSpan) []faultSpan {
	if len(spans) == 0 {
		return nil
	}
	sort.Slice(spans, func(a, b int) bool { return spans[a].start < spans[b].start })
	out := spans[:1]
	for _, s := range spans[1:] {
		if last := &out[len(out)-1]; s.start <= last.end {
			if s.end > last.end {
				last.end = s.end
			}
		} else {
			out = append(out, s)
		}
	}
	return out
}

// stallEnd returns the end of the stall interval covering processor pid
// at time t, or t itself when pid is not stalled then.
func (f *machineFaults) stallEnd(pid int, t sim.Time) sim.Time {
	for _, s := range f.stalls[pid] {
		if s.start > t {
			break
		}
		if t < s.end {
			return s.end
		}
	}
	return t
}

// degradeFactor returns the traversal scale factor for module mod at
// time t (1 when undegraded; overlapping intervals take the largest).
func (f *machineFaults) degradeFactor(mod int, t sim.Time) int {
	factor := 1
	for _, d := range f.degrades[mod] {
		if d.start > t {
			break
		}
		if t < d.end && d.factor > factor {
			factor = d.factor
		}
	}
	return factor
}

// activeAt reports whether any stall or degrade interval covers t —
// the conservative "some fault state is in effect" gate spin windows
// check before forming.
func (f *machineFaults) activeAt(t sim.Time) bool {
	for _, s := range f.active {
		if s.start > t {
			return false
		}
		if t < s.end {
			return true
		}
	}
	return false
}

// nextBound returns the earliest fault boundary — interval start or
// end, or crash instant — strictly after t. Spin windows and inline
// probe batches clamp their extent to it, so no closed form straddles
// a change of fault state.
func (f *machineFaults) nextBound(t sim.Time) (sim.Time, bool) {
	i := sort.Search(len(f.bounds), func(i int) bool { return f.bounds[i] > t })
	if i == len(f.bounds) {
		return 0, false
	}
	return f.bounds[i], true
}

// Crashed reports whether processor i is crashed right now (a reborn
// processor no longer is). Host-side harness code uses it to tell a
// dead lock holder from a mutual-exclusion violation.
func (m *Machine) Crashed(i int) bool { return m.procs[i].crashed }

// Incarnation returns how many times processor i has been reborn: 0
// for a processor that never recovered from a crash, 1 after its
// revival. Harness code records the incarnation a value was written
// under, so a reclaim from a holder that has since died AND recovered
// is still recognizable as a takeover rather than a violation.
func (m *Machine) Incarnation(i int) int { return m.procs[i].incarnation }

// SuspectedAt reports whether the deterministic heartbeat failure
// detector suspects processor q dead at time t. Pure table lookup over
// the compiled plan — see Proc.Suspects for the model and the
// determinism argument.
func (m *Machine) SuspectedAt(q int, t sim.Time) bool {
	if m.flt == nil {
		return false
	}
	for _, s := range m.flt.suspect[q] {
		if s.start > t {
			return false
		}
		if t < s.end {
			return true
		}
	}
	return false
}
