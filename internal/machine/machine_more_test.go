package machine

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/topo"
)

// On NUMA, spinning on a remote word must generate polling traffic (the
// Butterfly pathology), while spinning on a local word must not.
func TestNUMARemoteSpinPolls(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 2, Topo: topo.NUMA})
	remoteFlag := m.AllocLocal(1, 1) // remote to P0, local to P1
	err := m.RunEach([]func(p *Proc){
		func(p *Proc) {
			p.SpinUntilEq(remoteFlag, 1)
		},
		func(p *Proc) {
			p.Delay(3000)
			p.Store(remoteFlag, 1)
		},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	refs := m.Stats().PerProc[0].RemoteRefs
	// 3000 cycles of waiting at a ~36-cycle poll interval: tens of polls.
	if refs < 10 {
		t.Fatalf("remote spin made only %d remote refs; polling model broken", refs)
	}
}

func TestNUMALocalSpinIsQuiet(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 2, Topo: topo.NUMA})
	localFlag := m.AllocLocal(0, 1) // local to the spinner
	err := m.RunEach([]func(p *Proc){
		func(p *Proc) {
			p.SpinUntilEq(localFlag, 1)
		},
		func(p *Proc) {
			p.Delay(3000)
			p.Store(localFlag, 1) // one remote store
		},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if refs := m.Stats().PerProc[0].RemoteRefs; refs != 0 {
		t.Fatalf("local spinner made %d remote refs; local spin should be free of network traffic", refs)
	}
	if refs := m.Stats().PerProc[1].RemoteRefs; refs != 1 {
		t.Fatalf("writer made %d remote refs, want exactly 1", refs)
	}
}

// A write-upgrade (shared copy -> exclusive) must cost a bus transaction
// even though the data is already cached.
func TestBusWriteUpgradeCostsTransaction(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 1, Topo: topo.Bus})
	a := m.AllocShared(1)
	var afterLoad, afterStore uint64
	err := m.Run(func(p *Proc) {
		p.Load(a) // cold miss: 1 txn, shared
		afterLoad = p.stats.BusTxns
		p.Store(a, 1) // upgrade: 1 more txn
		afterStore = p.stats.BusTxns
		p.Store(a, 2) // exclusive hit: no txn
		if p.stats.BusTxns != afterStore {
			t.Errorf("exclusive write hit generated a transaction")
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if afterLoad != 1 || afterStore != 2 {
		t.Fatalf("txns after load=%d after store=%d, want 1 and 2", afterLoad, afterStore)
	}
}

// Failed CAS still costs a transaction, like a real locked operation.
func TestFailedCASCharged(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 1, Topo: topo.Bus})
	a := m.AllocShared(1)
	err := m.Run(func(p *Proc) {
		before := p.stats.BusTxns
		if p.CompareAndSwap(a, 99, 1) {
			t.Error("CAS with wrong expectation succeeded")
		}
		if p.stats.BusTxns == before {
			t.Error("failed CAS cost no bus transaction")
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// Many watchers on distinct addresses must each wake only for their own
// address's writes.
func TestWatchersAreAddressSpecific(t *testing.T) {
	const procs = 5
	m := newTestMachine(t, Config{Procs: procs, Topo: topo.Bus})
	flags := m.AllocShared(procs)
	wakeOrder := make([]int, 0, procs-1)
	bodies := make([]func(p *Proc), procs)
	for i := 1; i < procs; i++ {
		i := i
		bodies[i] = func(p *Proc) {
			p.SpinUntilEq(flags+Addr(i), 1)
			wakeOrder = append(wakeOrder, i)
		}
	}
	bodies[0] = func(p *Proc) {
		// Release in reverse order with gaps; wake order must follow
		// the store order, not the watch-registration order.
		for i := procs - 1; i >= 1; i-- {
			p.Delay(200)
			p.Store(flags+Addr(i), 1)
		}
	}
	if err := m.RunEach(bodies); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for k, want := 0, procs-1; k < len(wakeOrder); k, want = k+1, want-1 {
		if wakeOrder[k] != want {
			t.Fatalf("wake order %v; writes went %d..1", wakeOrder, procs-1)
		}
	}
}

// Two processors spinning on the same word both wake from one write.
func TestWatcherBroadcast(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 3, Topo: topo.Bus})
	flag := m.AllocShared(1)
	woke := 0
	bodies := []func(p *Proc){
		func(p *Proc) { p.SpinUntilEq(flag, 7); woke++ },
		func(p *Proc) { p.SpinUntilEq(flag, 7); woke++ },
		func(p *Proc) { p.Delay(100); p.Store(flag, 7) },
	}
	if err := m.RunEach(bodies); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if woke != 2 {
		t.Fatalf("%d spinners woke, want 2", woke)
	}
}

// A spurious wake (write that does not satisfy the predicate) must
// re-arm the watcher rather than returning or losing the processor.
func TestWatcherSpuriousWakeRearms(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 2, Topo: topo.Bus})
	flag := m.AllocShared(1)
	var got Word
	err := m.RunEach([]func(p *Proc){
		func(p *Proc) { got = p.SpinUntilEq(flag, 3) },
		func(p *Proc) {
			p.Delay(50)
			p.Store(flag, 1) // wrong value: spurious
			p.Delay(50)
			p.Store(flag, 2) // still wrong
			p.Delay(50)
			p.Store(flag, 3)
		},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != 3 {
		t.Fatalf("SpinUntil returned %d, want 3", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.Procs != 1 || c.CacheHit != 1 || c.BusLatency != 20 ||
		c.LocalMem != 2 || c.RemoteMem != 12 || c.PollInterval != 36 ||
		c.SharedWords != 1<<16 || c.LocalWords != 1<<12 || c.Seed != 1 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	// Explicit values survive.
	c2 := Config{Procs: 7, BusLatency: 5}.Defaults()
	if c2.Procs != 7 || c2.BusLatency != 5 {
		t.Fatalf("explicit values overwritten: %+v", c2)
	}
}

func TestTopologyNames(t *testing.T) {
	if topo.Ideal.Name() != "ideal" || topo.Bus.Name() != "bus" || topo.NUMA.Name() != "numa" {
		t.Fatal("canonical topology names broken")
	}
	if fmt.Sprint(topo.Bus) != "bus" {
		t.Fatal("topologies should format as their names")
	}
}

// The bus serializes: two simultaneous misses cannot both finish in one
// bus latency.
func TestBusSerializesTransactions(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 2, Topo: topo.Bus})
	a := m.AllocShared(2)
	var end0, end1 sim.Time
	err := m.RunEach([]func(p *Proc){
		func(p *Proc) { p.Load(a); end0 = p.Now() },
		func(p *Proc) { p.Load(a + 1); end1 = p.Now() },
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	first, second := end0, end1
	if second < first {
		first, second = second, first
	}
	if first != 20 || second != 40 {
		t.Fatalf("bus misses finished at %d and %d, want 20 and 40 (serialized)", first, second)
	}
}

// NUMA module ports serialize access to one module; accesses to
// different modules proceed in parallel.
func TestNUMAModuleContention(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 3, Topo: topo.NUMA})
	hot := m.AllocLocal(2, 1) // both P0 and P1 hit module 2
	var end0, end1 sim.Time
	err := m.RunEach([]func(p *Proc){
		func(p *Proc) { p.Load(hot); end0 = p.Now() },
		func(p *Proc) { p.Load(hot); end1 = p.Now() },
		func(p *Proc) {},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	d := end1 - end0
	if d < 0 {
		d = -d
	}
	// Remote service time is LocalMem+RemoteMem (14); the second
	// requester queues behind the first for a full service slot.
	if d != 14 {
		t.Fatalf("module completions differ by %d, want 14 (port serialization)", d)
	}
}

// Alloc validation.
func TestAllocValidation(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 2})
	for _, f := range []func(){
		func() { m.AllocShared(0) },
		func() { m.AllocShared(-1) },
		func() { m.AllocLocal(-1, 1) },
		func() { m.AllocLocal(2, 1) },
		func() { m.AllocLocal(0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid allocation did not panic")
				}
			}()
			f()
		}()
	}
}

// Address bounds are enforced at access time, and a panic inside a
// simulated program surfaces as a Run error, not a process crash.
func TestAddressOutOfRangeBecomesRunError(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 2, SharedWords: 4, LocalWords: 4})
	err := m.RunEach([]func(p *Proc){
		func(p *Proc) {
			p.Load(Addr(4 + 2*4)) // one past the end
		},
		func(p *Proc) { p.Delay(10) },
	})
	if err == nil {
		t.Fatal("out-of-range access did not produce a Run error")
	}
	if !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), "processor 0") {
		t.Fatalf("error %q should name the panicking processor", err)
	}
}

// A program panic with other processors still live must not wedge Run.
func TestProgramPanicDoesNotDeadlockRun(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 3})
	flag := m.AllocShared(1)
	err := m.RunEach([]func(p *Proc){
		func(p *Proc) { p.SpinUntilEq(flag, 1) }, // waits forever
		func(p *Proc) { panic("boom") },
		func(p *Proc) { p.Delay(100) },
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Fatalf("error %q should carry the panic value", err)
	}
}
