package machine

import (
	"testing"

	"repro/internal/topo"
)

// The per-word watcher slots replaced a map[Addr][]*Proc: links are
// stored intrusively (processor index + 1, zero-terminated) in
// watchHead/watchTail plus one next pointer per Proc. These tests pin
// the list discipline itself: FIFO wake order, correct consumption on
// wake, and isolation between words.

// TestWatcherListFIFOOrder parks three processors on one word and
// checks they are woken — and granted — in registration order.
func TestWatcherListFIFOOrder(t *testing.T) {
	m, err := New(Config{Procs: 4, Topo: topo.Ideal})
	if err != nil {
		t.Fatal(err)
	}
	flag := m.AllocShared(1)
	slot := m.AllocShared(1)

	var order []int
	err = m.Run(func(p *Proc) {
		if p.ID() < 3 {
			// P0, P1, P2 start in id order (start events are scheduled in
			// processor order at t=0) and park in that order.
			p.SpinUntilEq(flag, 1)
			order = append(order, p.ID())
			p.FetchAdd(slot, 1)
		} else {
			// P3 releases all three with one write after letting them park.
			p.Delay(100)
			p.Store(flag, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 {
		t.Fatalf("woke %d watchers, want 3", len(order))
	}
	for i, id := range order {
		if id != i {
			t.Fatalf("wake order %v, want FIFO [0 1 2]", order)
		}
	}
}

// TestWatcherListConsumedOnWake checks that a wake empties the word's
// list and resets every link, so re-parking on the same word works and
// a second write wakes again.
func TestWatcherListConsumedOnWake(t *testing.T) {
	m, err := New(Config{Procs: 2, Topo: topo.Ideal})
	if err != nil {
		t.Fatal(err)
	}
	flag := m.AllocShared(1)
	wakes := 0
	err = m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.SpinUntilEq(flag, 1)
			wakes++
			p.SpinUntilEq(flag, 2)
			wakes++
		} else {
			p.Delay(50)
			p.Store(flag, 1)
			p.Delay(50)
			p.Store(flag, 2)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if wakes != 2 {
		t.Fatalf("watcher woke %d times, want 2", wakes)
	}
	if m.watchHead[flag] != 0 || m.watchTail[flag] != 0 {
		t.Fatalf("watch list not consumed: head=%d tail=%d", m.watchHead[flag], m.watchTail[flag])
	}
	for _, p := range m.procs {
		if p.watchNext != 0 {
			t.Fatalf("P%d watchNext=%d after run, want 0", p.id, p.watchNext)
		}
	}
}

// TestWatcherListPerWordIsolation parks two processors on different
// words and writes only one of them: the other must stay parked (the
// run deadlocks, naming the still-watching processor).
func TestWatcherListPerWordIsolation(t *testing.T) {
	m, err := New(Config{Procs: 3, Topo: topo.Ideal})
	if err != nil {
		t.Fatal(err)
	}
	a := m.AllocShared(1)
	b := m.AllocShared(1)
	err = m.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			p.SpinUntilEq(a, 1)
		case 1:
			p.SpinUntilEq(b, 1) // never written: stays parked
		case 2:
			p.Delay(50)
			p.Store(a, 1)
		}
	})
	if err == nil {
		t.Fatal("expected deadlock: P1 watches a word nobody writes")
	}
	if got := err.Error(); !containsAll(got, "deadlock", "P1", "watch") {
		t.Fatalf("deadlock error %q should name P1 watching", got)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
