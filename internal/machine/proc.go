package machine

import (
	"repro/internal/sim"
)

// Proc is a simulated processor. Synchronization algorithms are written
// as ordinary Go code against this API; every operation advances the
// virtual clock and is charged model-appropriate interconnect cost.
//
// A Proc is only valid inside the program body passed to Machine.Run;
// its methods must never be called from any other goroutine.
//
// Timing is tracked on a per-processor local clock. When the engine
// dispatches a processor the local clock equals the engine clock; each
// operation then either retires inline — advancing only the local clock,
// with no event and no goroutine handoff — or synchronizes with the
// engine. Inlining is a conservative-lookahead decision: an operation
// completing at local time t may retire inline if and only if no pending
// engine event has a timestamp <= t, because then no other processor
// could have run (or observed anything) before the operation finished.
// The transformation is therefore exact: cycle counts, traffic counts,
// and the interleaving of all processors are bit-identical to the fully
// event-driven execution, but cache hits and local delays — the bulk of
// a spin loop — cost no engine work at all.
type Proc struct {
	id  int
	m   *Machine
	rng *sim.RNG

	// resume carries the baton: a send resumes this processor's program
	// at the time of the dispatch event the sender just fired.
	resume chan struct{}

	// localNow is this processor's clock. Invariant while running:
	// localNow >= engine clock, and no pending event fires in between.
	localNow sim.Time

	// watchNext links the intrusive per-word watcher list (see
	// Machine.watchHead) as processor index + 1; zero terminates.
	watchNext int32

	// spin is the machine-driven spin-wait state (see spin.go). It lives
	// here by value so entering a wait never allocates.
	spin spinState

	// cont is the machine-driven scripted-continuation state (see
	// cont.go). Like spin it lives here by value, so running a script
	// allocates nothing beyond the caller's op slice.
	cont contState

	finished bool
	// crashed marks a processor removed by a fault plan (fault.go): its
	// events are dropped and the words it holds are never released. A
	// plan without a matching restart leaves it crashed forever (its
	// goroutine unwinds at teardown); with one, the drive loop revives
	// it at the restart instant and the goroutine re-enters the body.
	crashed bool
	// incarnation counts rebirths: 0 until the processor recovers from
	// a crash, then incremented per revival. Harness code pairs it with
	// Crashed to tell a takeover from a dead-or-reborn holder apart
	// from a mutual-exclusion violation.
	incarnation int
	// reincarnate tells waitBaton the wake it just got is a revival:
	// instead of resuming the dead incarnation's program mid-operation,
	// the goroutine unwinds to the recovery entry point (the top of the
	// body) via the reincarnate sentinel.
	reincarnate bool
	blockedOn   string // static tag for deadlock reports; never formatted on the hot path
	blockedAddr Addr   // address detail when blockedOn == "watch"

	stats ProcStats
}

// ID returns the processor index in [0, Procs).
func (p *Proc) ID() int { return p.id }

// Machine returns the owning machine.
func (p *Proc) Machine() *Machine { return p.m }

// Now returns the current virtual time as seen by this processor.
func (p *Proc) Now() sim.Time { return p.localNow }

// RNG returns this processor's private deterministic generator.
func (p *Proc) RNG() *sim.RNG { return p.rng }

// waitBaton parks the processor until another drive loop hands it the
// baton (its dispatch event fired). During teardown of a terminated run
// the wake is RunEach unwinding us instead; the goroutine exits via the
// abort sentinel.
func (p *Proc) waitBaton() {
	<-p.resume
	if p.m.tearingDown {
		panic(abortSentinel)
	}
	if p.reincarnate {
		p.reincarnate = false
		panic(reincarnateSentinel)
	}
}

// Suspects asks the deterministic heartbeat failure detector whether
// processor q is suspected dead as of this processor's local clock.
// The detector is compiled from the fault plan (fault.go): suspicion
// follows q's heartbeats with a fixed threshold, so a crash is
// suspected Config.SuspectAfter cycles after it happens, the suspicion
// clears at q's restart, and a stall longer than the threshold shows
// up as a false positive for its duration. The query costs no cycles,
// no traffic, and no RNG draws — the model is a hardware-maintained
// local lease table — so algorithms may consult it freely without
// perturbing timing, and the A/B window contract is unaffected.
func (p *Proc) Suspects(q int) bool { return p.m.SuspectedAt(q, p.localNow) }

// complete finishes an operation that costs lat cycles. Fast path: when
// every pending engine event is strictly later than the completion time,
// the operation retires inline by advancing the local clock. Slow path:
// schedule the wakeup and yield to the engine.
func (p *Proc) complete(lat sim.Time, why string) {
	target := p.localNow + lat
	if next, ok := p.m.eng.NextTime(); !ok || next > target {
		// Inline work still charges the livelock budget; once it is
		// exhausted we must go through the engine so its run loop can
		// surface ErrStepLimit instead of spinning the host forever.
		if !p.m.eng.ChargeStep() {
			p.localNow = target
			p.m.stats.InlineOps++
			return
		}
	}
	p.blockAt(target, why)
}

// blockAt schedules this processor's wakeup at absolute time t and
// drives the engine until the wakeup fires; the drive loop
// resynchronizes the local clock.
func (p *Proc) blockAt(t sim.Time, why string) {
	p.blockedOn = why
	p.m.eng.AtEvent(t, sim.EvDispatch, int32(p.id), 0)
	p.m.drive(p)
	p.blockedOn = ""
}

// syncClock drains any fast-path run-ahead through one engine event, so
// the engine clock catches up to this processor's local clock. Called
// when the program body returns.
func (p *Proc) syncClock() {
	if p.localNow > p.m.eng.Now() {
		p.blockAt(p.localNow, "finish")
	}
}

// Delay models local computation taking d cycles. A delay whose end
// precedes every pending event retires inline; otherwise it yields,
// preserving fairness of the event ordering exactly as before.
func (p *Proc) Delay(d sim.Time) {
	if d < 0 {
		d = 0
	}
	p.complete(d, "delay")
}

// loadIssue performs the issue half of a load — traffic accounting,
// coherence/occupancy update, data read — and returns the value and the
// operation latency. Load and the spin state machine share it so a
// machine-driven probe is bit-identical to a goroutine-issued one.
func (p *Proc) loadIssue(a Addr) (Word, sim.Time) {
	p.stats.Loads++
	lat := p.m.access(p, a, accRead)
	return p.m.mem[a], lat
}

// tasIssue likewise performs the issue half of a test&set.
func (p *Proc) tasIssue(a Addr) (Word, sim.Time) {
	p.stats.RMWs++
	lat := p.m.access(p, a, accRMW)
	old := p.m.mem[a]
	p.m.mem[a] = 1
	p.m.wakeWatchers(a, p.localNow+lat)
	return old, lat
}

// Load reads a word.
func (p *Proc) Load(a Addr) Word {
	v, lat := p.loadIssue(a)
	p.complete(lat, "load")
	return v
}

// Store writes a word.
func (p *Proc) Store(a Addr, v Word) {
	p.stats.Stores++
	lat := p.m.access(p, a, accWrite)
	p.m.mem[a] = v
	p.m.wakeWatchers(a, p.localNow+lat)
	p.complete(lat, "store")
}

// TestAndSet atomically sets the word to 1 and returns its old value.
func (p *Proc) TestAndSet(a Addr) Word {
	old, lat := p.tasIssue(a)
	p.complete(lat, "test&set")
	return old
}

// FetchStore atomically swaps in v and returns the old value.
func (p *Proc) FetchStore(a Addr, v Word) Word {
	p.stats.RMWs++
	lat := p.m.access(p, a, accRMW)
	old := p.m.mem[a]
	p.m.mem[a] = v
	p.m.wakeWatchers(a, p.localNow+lat)
	p.complete(lat, "fetch&store")
	return old
}

// FetchAdd atomically adds d and returns the old value.
func (p *Proc) FetchAdd(a Addr, d Word) Word {
	p.stats.RMWs++
	lat := p.m.access(p, a, accRMW)
	old := p.m.mem[a]
	p.m.mem[a] = old + d
	p.m.wakeWatchers(a, p.localNow+lat)
	p.complete(lat, "fetch&add")
	return old
}

// CompareAndSwap installs new if the word equals old, reporting success.
// Failed CAS still costs a full interconnect transaction, as on real
// hardware of the era.
func (p *Proc) CompareAndSwap(a Addr, old, new Word) bool {
	p.stats.RMWs++
	lat := p.m.access(p, a, accRMW)
	ok := p.m.mem[a] == old
	if ok {
		p.m.mem[a] = new
		p.m.wakeWatchers(a, p.localNow+lat)
	}
	p.complete(lat, "compare&swap")
	return ok
}

// The spin-wait API (SpinUntilPred, SpinUntilEq, SpinWhileEq, SpinTAS,
// SpinTTAS) lives in spin.go: waits are machine-driven rather than
// replayed by this goroutine, so a contended spin costs no baton
// handoffs.
