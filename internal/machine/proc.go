package machine

import (
	"fmt"

	"repro/internal/sim"
)

// Proc is a simulated processor. Synchronization algorithms are written
// as ordinary Go code against this API; every operation advances the
// virtual clock and is charged model-appropriate interconnect cost.
//
// A Proc is only valid inside the program body passed to Machine.Run;
// its methods must never be called from any other goroutine.
type Proc struct {
	id  int
	m   *Machine
	rng *sim.RNG

	resume chan struct{}
	yield  chan struct{}

	finished  bool
	blockedOn string

	stats ProcStats
}

// ID returns the processor index in [0, Procs).
func (p *Proc) ID() int { return p.id }

// Machine returns the owning machine.
func (p *Proc) Machine() *Machine { return p.m }

// Now returns the current virtual time.
func (p *Proc) Now() sim.Time { return p.m.eng.Now() }

// RNG returns this processor's private deterministic generator.
func (p *Proc) RNG() *sim.RNG { return p.rng }

// wait parks the processor until the engine dispatches it. If the
// simulation is aborted (step limit, deadlock teardown) the processor
// goroutine unwinds via the abort sentinel.
func (p *Proc) wait() {
	select {
	case <-p.resume:
	case <-p.m.aborted:
		panic(abortSentinel)
	}
}

// block charges lat cycles: it schedules this processor's wakeup and
// yields to the engine.
func (p *Proc) block(lat sim.Time, why string) {
	p.blockedOn = why
	proc := p
	p.m.eng.After(lat, func() { p.m.dispatch(proc) })
	p.yield <- struct{}{}
	p.wait()
	p.blockedOn = ""
}

// parkOnWatch registers this processor as a watcher of addr and yields
// without scheduling a wakeup; only a write to addr (or teardown) resumes it.
func (p *Proc) parkOnWatch(a Addr) {
	p.blockedOn = fmt.Sprintf("watch@%d", a)
	p.m.watchers[a] = append(p.m.watchers[a], p)
	p.yield <- struct{}{}
	p.wait()
	p.blockedOn = ""
}

// Delay models local computation taking d cycles. Zero or negative
// delays cost nothing but still yield, preserving fairness of the event
// ordering.
func (p *Proc) Delay(d sim.Time) {
	if d < 0 {
		d = 0
	}
	p.block(d, "delay")
}

// Load reads a word.
func (p *Proc) Load(a Addr) Word {
	p.stats.Loads++
	lat := p.m.access(p, a, accRead)
	v := p.m.mem[a]
	p.block(lat, "load")
	return v
}

// Store writes a word.
func (p *Proc) Store(a Addr, v Word) {
	p.stats.Stores++
	lat := p.m.access(p, a, accWrite)
	p.m.mem[a] = v
	p.m.wakeWatchers(a, p.Now()+lat)
	p.block(lat, "store")
}

// TestAndSet atomically sets the word to 1 and returns its old value.
func (p *Proc) TestAndSet(a Addr) Word {
	p.stats.RMWs++
	lat := p.m.access(p, a, accRMW)
	old := p.m.mem[a]
	p.m.mem[a] = 1
	p.m.wakeWatchers(a, p.Now()+lat)
	p.block(lat, "test&set")
	return old
}

// FetchStore atomically swaps in v and returns the old value.
func (p *Proc) FetchStore(a Addr, v Word) Word {
	p.stats.RMWs++
	lat := p.m.access(p, a, accRMW)
	old := p.m.mem[a]
	p.m.mem[a] = v
	p.m.wakeWatchers(a, p.Now()+lat)
	p.block(lat, "fetch&store")
	return old
}

// FetchAdd atomically adds d and returns the old value.
func (p *Proc) FetchAdd(a Addr, d Word) Word {
	p.stats.RMWs++
	lat := p.m.access(p, a, accRMW)
	old := p.m.mem[a]
	p.m.mem[a] = old + d
	p.m.wakeWatchers(a, p.Now()+lat)
	p.block(lat, "fetch&add")
	return old
}

// CompareAndSwap installs new if the word equals old, reporting success.
// Failed CAS still costs a full interconnect transaction, as on real
// hardware of the era.
func (p *Proc) CompareAndSwap(a Addr, old, new Word) bool {
	p.stats.RMWs++
	lat := p.m.access(p, a, accRMW)
	ok := p.m.mem[a] == old
	if ok {
		p.m.mem[a] = new
		p.m.wakeWatchers(a, p.Now()+lat)
	}
	p.block(lat, "compare&swap")
	return ok
}

// SpinUntil blocks until pred holds for the word at a, returning the
// satisfying value. The cost model depends on the machine:
//
//   - Bus/Ideal: the classic cached spin. The first read may miss; while
//     the value is unchanged the spinner consumes no interconnect
//     bandwidth (it spins in its own cache); each write to the word
//     invalidates and forces a re-read, charged through the normal path.
//   - NUMA, word in another module: there is no cache to spin in, so the
//     processor polls the remote module every PollInterval cycles; every
//     poll is a remote reference. This is exactly why remote-spin
//     algorithms melt Butterfly-class machines.
//   - NUMA, word in this processor's module: local spin; watchers model
//     the (free) local re-check and each wakeup pays one local access.
func (p *Proc) SpinUntil(a Addr, pred func(Word) bool) Word {
	remotePoll := p.m.cfg.Model == NUMA && p.m.home(a) != p.id
	if remotePoll {
		for {
			v := p.Load(a)
			if pred(v) {
				return v
			}
			jitter := p.rng.Time(p.m.cfg.PollInterval/2 + 1)
			p.Delay(p.m.cfg.PollInterval + jitter)
		}
	}
	v := p.Load(a)
	for !pred(v) {
		// A write may have committed while our load was in flight (we
		// were blocked paying its latency, so other processors ran). A
		// real snooping cache would have observed that invalidation, so
		// there is no lost wakeup in hardware; model the snoop by
		// rechecking the committed value before parking and paying a
		// normal re-read if it changed.
		if pred(p.m.mem[a]) {
			v = p.Load(a)
			continue
		}
		p.parkOnWatch(a)
		v = p.Load(a)
	}
	return v
}

// SpinWhileEq is shorthand for SpinUntil(a, v != sentinel).
func (p *Proc) SpinWhileEq(a Addr, sentinel Word) Word {
	return p.SpinUntil(a, func(v Word) bool { return v != sentinel })
}

// SpinUntilEq is shorthand for SpinUntil(a, v == want).
func (p *Proc) SpinUntilEq(a Addr, want Word) Word {
	return p.SpinUntil(a, func(v Word) bool { return v == want })
}
