package machine

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/topo"
)

// contendedProgram is a small deterministic workload touching every
// machine subsystem the pool must reset: RNG streams, raw test&set
// storms (spin batching), watcher parks, bus/module occupancy, and the
// counters. It returns the machine stats, final counter value, and the
// per-processor RNG draw trace.
func contendedProgram(t *testing.T, m *Machine) (Stats, Word, [][]sim.Time) {
	t.Helper()
	lock := m.AllocShared(1)
	flag := m.AllocShared(1)
	count := m.AllocShared(1)
	draws := make([][]sim.Time, m.Procs())
	err := m.Run(func(p *Proc) {
		for i := 0; i < 12; i++ {
			d := p.RNG().Time(40) + 1
			draws[p.ID()] = append(draws[p.ID()], d)
			p.Delay(d)
			p.SpinTAS(lock, Backoff{})
			v := p.Load(count)
			p.Delay(3)
			p.Store(count, v+1)
			p.Store(lock, 0)
		}
		// One watcher-park round: everyone but P0 waits for P0's signal.
		if p.ID() == 0 {
			p.Delay(200)
			p.Store(flag, 1)
		} else {
			p.SpinUntilEq(flag, 1)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return m.Stats(), m.Peek(count), draws
}

// TestResetMatchesFresh is the pooling contract at the machine level:
// two back-to-back runs on one machine with Reset in between must equal
// two runs on fresh machines — stats, memory, and RNG streams included —
// across configuration changes (grow, shrink, model switch).
func TestResetMatchesFresh(t *testing.T) {
	cfgs := []Config{
		{Procs: 6, Topo: topo.Bus, Seed: 11},
		{Procs: 12, Topo: topo.NUMA, Seed: 5}, // grow + model switch
		{Procs: 3, Topo: topo.Bus, Seed: 11},  // shrink back
		{Procs: 6, Topo: topo.Bus, Seed: 11},  // repeat of the first
	}
	type outcome struct {
		stats Stats
		count Word
		draws [][]sim.Time
	}
	var fresh []outcome
	for _, cfg := range cfgs {
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, c, d := contendedProgram(t, m)
		fresh = append(fresh, outcome{st, c, d})
	}

	m, err := New(cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		if i > 0 {
			if err := m.Reset(cfg); err != nil {
				t.Fatalf("Reset %d: %v", i, err)
			}
		}
		st, c, d := contendedProgram(t, m)
		if !reflect.DeepEqual(st, fresh[i].stats) {
			t.Errorf("cfg %d: stats diverged after Reset:\n  fresh: %+v\n  reset: %+v", i, fresh[i].stats, st)
		}
		if c != fresh[i].count {
			t.Errorf("cfg %d: counter %d, fresh machine got %d", i, c, fresh[i].count)
		}
		if !reflect.DeepEqual(d, fresh[i].draws) {
			t.Errorf("cfg %d: RNG streams diverged after Reset", i)
		}
	}
}

// TestResetClearsAbortedRunState reuses a machine whose previous run
// ended abnormally — watchers still registered, events still queued, a
// processor deadlocked — and checks the next run starts clean.
func TestResetClearsAbortedRunState(t *testing.T) {
	m, err := New(Config{Procs: 2, Topo: topo.Bus, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	flag := m.AllocShared(1)
	err = m.RunEach([]func(p *Proc){
		func(p *Proc) { p.SpinUntilEq(flag, 1) }, // never satisfied
		func(p *Proc) { p.Delay(50) },
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("setup run should deadlock, got %v", err)
	}

	if err := m.Reset(Config{Procs: 2, Topo: topo.Bus, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	flag2 := m.AllocShared(1)
	if got := m.Peek(flag2); got != 0 {
		t.Fatalf("memory not cleared by Reset: %d", got)
	}
	woke := false
	err = m.RunEach([]func(p *Proc){
		func(p *Proc) { p.SpinUntilEq(flag2, 2); woke = true },
		func(p *Proc) { p.Delay(30); p.Store(flag2, 2) },
	})
	if err != nil {
		t.Fatalf("run after Reset: %v", err)
	}
	if !woke {
		t.Fatal("watcher from the aborted run leaked into the fresh run")
	}
	for _, p := range m.procs {
		if p.watchNext != 0 || p.spin.active {
			t.Fatalf("P%d carries stale spin/watch state after run", p.id)
		}
	}
}

// TestPoolReusesMachines checks the pool actually recycles (Get after
// Put returns the same machine) and that a pooled Get is equivalent to
// New for a different configuration.
func TestPoolReusesMachines(t *testing.T) {
	pool := new(Pool)
	m1, err := pool.Get(Config{Procs: 4, Topo: topo.Bus})
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Run(func(p *Proc) { p.Delay(10) }); err != nil {
		t.Fatal(err)
	}
	pool.Put(m1)
	m2, err := pool.Get(Config{Procs: 8, Topo: topo.NUMA, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m2 != m1 {
		t.Fatal("pool did not recycle the returned machine")
	}
	if m2.Procs() != 8 || m2.Config().Topo != topo.NUMA {
		t.Fatalf("recycled machine kept the old configuration: %+v", m2.Config())
	}
	if err := m2.Run(func(p *Proc) { p.Delay(1) }); err != nil {
		t.Fatalf("run on recycled machine: %v", err)
	}
	// The pool is empty now; the next Get must allocate.
	m3, err := pool.Get(Config{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m3 == m2 {
		t.Fatal("pool handed out a machine still owned by the caller")
	}
}
