// Package machine models a 1991-class shared-memory multiprocessor with
// cycle-level timing, suitable for measuring synchronization algorithms the
// way the ICPP/TOCS literature of that era did: elapsed cycles and
// interconnect transactions per operation.
//
// The shape of the memory system comes from a composable topology
// (internal/topo): module count, home-module mapping, hop costs, poll
// spacing, and traffic classification are all topology properties,
// while this package supplies the mechanism — the coherence protocol,
// port occupancy, and deterministic event scheduling. The canonical
// instances are:
//
//   - topo.Bus: a symmetric bus-based multiprocessor with per-processor
//     caches kept consistent by a write-invalidate protocol (Sequent
//     Symmetry class). The interesting metric is bus transactions.
//   - topo.NUMA: a flat distributed-memory machine without coherent
//     caches, where each processor owns a memory module and remote
//     references traverse an interconnection network (BBN Butterfly
//     class). The interesting metric is remote references, and spinning
//     on remote words is modeled as periodic polling.
//   - topo.Cluster: a two-level cluster-NUMA machine — cheap
//     intra-cluster hops, expensive inter-cluster traversals.
//
// topo.Ideal (unit latency, no contention) exists for unit tests.
//
// Processors execute ordinary Go closures against the Proc API; every
// memory operation advances the virtual clock through the deterministic
// event engine in internal/sim, so runs are exactly reproducible.
package machine

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Word is the machine word. All simulated memory holds Words.
type Word uint64

// Addr indexes a word in simulated memory.
type Addr int32

// NilAddr is an out-of-band address used by algorithms to mean "no node".
const NilAddr Addr = -1

// PtrWord encodes an address as a non-zero Word so that Word(0) can mean
// "nil pointer" in simulated data structures.
func PtrWord(a Addr) Word { return Word(a) + 1 }

// WordPtr decodes a Word previously produced by PtrWord. Word(0) decodes
// to NilAddr.
func WordPtr(w Word) Addr {
	if w == 0 {
		return NilAddr
	}
	return Addr(w - 1)
}

// Config describes a machine. Zero fields take defaults from Defaults.
type Config struct {
	Procs int // number of processors (each topology declares its own ceiling)
	// Topo is the memory-system topology; nil defaults to topo.Ideal.
	// The canonical instances (topo.Bus, topo.NUMA, topo.Cluster) are
	// registered in topo.Registry alongside any custom shapes.
	Topo topo.Topology

	// Timing, in cycles. Topologies price their hops relative to these
	// knobs (see topo.Timing), so they apply across machine shapes.
	CacheHit     sim.Time // cache hit (coherent topologies); default 1
	BusLatency   sim.Time // full bus transaction; default 20
	LocalMem     sim.Time // local module access; default 2
	RemoteMem    sim.Time // reference network traversal for remote refs; default 12
	PollInterval sim.Time // base spacing between remote spin polls; default 36

	SharedWords int // size of the shared heap; default 1<<16
	LocalWords  int // per-module local region (placement target); default 1<<12

	Seed     uint64 // RNG seed; default 1
	MaxSteps uint64 // event limit; default sim.DefaultMaxSteps

	// NoSpinWindows disables cross-processor spin-window batching
	// (window.go). Simulated results are bit-identical either way —
	// the switch exists for the determinism A/B tests and for host-side
	// performance comparisons.
	NoSpinWindows bool

	// NoInlineDispatch disables inline continuation dispatch (cont.go):
	// every EvCont hands the baton to the owning goroutine instead of
	// advancing the script in the popping goroutine's drive loop.
	// Simulated results are bit-identical either way — the switch exists
	// for the determinism A/B tests and for host-side performance
	// comparisons of the handoff cost the continuation table removes.
	NoInlineDispatch bool

	// Placement is the default data-placement policy handed to
	// placement-aware algorithms (see AllocPlaced); nil defaults to
	// topo.PlaceGroup, which degenerates to per-processor local
	// placement on flat topologies.
	Placement topo.Placement

	// Faults attaches a deterministic fault plan (processor stalls,
	// crashes and restarts, module degradation; see internal/fault and
	// fault.go in this package). Nil means a fault-free machine with
	// behavior bit-identical to builds predating fault support. The
	// plan is treated as read-only and may be shared across machines.
	Faults *fault.Plan

	// SuspectAfter is the heartbeat failure detector's suspicion
	// threshold in cycles (default 2000): a processor silent that long
	// is suspected dead until it speaks again. The detector is compiled
	// from the fault plan, so queries (Proc.Suspects) are table lookups
	// with zero timing or RNG effect. Negative disables the detector.
	SuspectAfter sim.Time
}

// Defaults fills in zero fields and returns the completed config.
func (c Config) Defaults() Config {
	if c.Procs == 0 {
		c.Procs = 1
	}
	if c.Topo == nil {
		c.Topo = topo.Ideal
	}
	if c.Placement == nil {
		c.Placement = topo.PlaceGroup
	}
	if c.CacheHit == 0 {
		c.CacheHit = 1
	}
	if c.BusLatency == 0 {
		c.BusLatency = 20
	}
	if c.LocalMem == 0 {
		c.LocalMem = 2
	}
	if c.RemoteMem == 0 {
		c.RemoteMem = 12
	}
	if c.PollInterval == 0 {
		c.PollInterval = 36
	}
	if c.SharedWords == 0 {
		c.SharedWords = 1 << 16
	}
	if c.LocalWords == 0 {
		c.LocalWords = 1 << 12
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.SuspectAfter == 0 {
		// Above every stall the standard fault sweeps draw (their
		// StallMax is 2000), so only genuine crashes trip the detector
		// by default; shorten it deliberately to study false positives.
		c.SuspectAfter = 2000
	}
	return c
}

func (c Config) validate() error {
	if c.Procs < 1 {
		return errors.New("machine: need at least one processor")
	}
	// The processor ceiling is a topology property: each topology
	// declares its own (the bus machine's 64 comes from the coherence
	// directory's sharer bitmask).
	if max := c.Topo.MaxProcs(); max > 0 && c.Procs > max {
		return fmt.Errorf("machine: topology %s supports at most %d processors", c.Topo.Name(), max)
	}
	// Independent of what a topology declares, the snooping-cache
	// implementation itself cannot track more than 64 sharers per word.
	if c.Topo.Discipline() == topo.SnoopingBus && c.Procs > 64 {
		return fmt.Errorf("machine: coherent topology %s exceeds the 64-sharer bitmask", c.Topo.Name())
	}
	// The machine's memory layout attaches one local region (and hence
	// one module) to each processor — home() maps local addresses to
	// their owning processor index. A topology declaring a different
	// module count would index past modFreeAt, so refuse it up front
	// instead of panicking mid-run; lifting the restriction means
	// generalizing the local-region layout, not just this check.
	if mods := c.Topo.Modules(c.Procs); mods != c.Procs {
		return fmt.Errorf("machine: topology %s declares %d modules for %d processors; the machine currently requires one module per processor",
			c.Topo.Name(), mods, c.Procs)
	}
	if c.Procs > 1024 {
		return errors.New("machine: at most 1024 processors")
	}
	return nil
}

// ProcStats are per-processor counters.
type ProcStats struct {
	Loads      uint64
	Stores     uint64
	RMWs       uint64
	BusTxns    uint64 // coherent topologies: transactions this processor caused
	RemoteRefs uint64 // module topologies: remote references this processor made
}

// Stats is a machine-wide counter snapshot.
type Stats struct {
	Cycles sim.Time // virtual time at the end of the run
	Events uint64   // engine events processed
	// InlineOps counts operations retired on the processor-side fast
	// path with no engine event and no goroutine handoff. A host-side
	// efficiency metric: it has no effect on simulated time or traffic.
	InlineOps uint64
	// WindowOps counts spin probes fast-forwarded in closed form by
	// cross-processor spin windows (window.go). Like InlineOps it is a
	// host-side efficiency metric with no effect on simulated time,
	// traffic, or even the Events count (windowed pops are charged to
	// the step counter exactly as if they had fired).
	WindowOps uint64
	// InlineDispatches counts continuation ops advanced in place by the
	// drive loop (cont.go) instead of over a baton handoff. Like
	// InlineOps and WindowOps it is a host-side efficiency metric with
	// no effect on simulated time, traffic, or the Events count; it is
	// the only Stats field allowed to differ across the
	// Config.NoInlineDispatch A/B pair (zero in the handoff mode).
	InlineDispatches uint64
	Loads            uint64
	Stores     uint64
	RMWs       uint64
	BusTxns    uint64
	RemoteRefs uint64
	PerProc    []ProcStats
}

// TrafficFor returns the topology's headline interconnect transaction
// count: bus transactions on a coherent machine, remote references on a
// module machine, and the total operation count on uniform memory
// (where every access is alike).
func (s Stats) TrafficFor(t topo.Topology) uint64 {
	switch t.Traffic() {
	case topo.TrafficBusTxns:
		return s.BusTxns
	case topo.TrafficRemoteRefs:
		return s.RemoteRefs
	default:
		return s.Loads + s.Stores + s.RMWs
	}
}

// Machine is a simulated multiprocessor. Construct with New, allocate
// simulated memory, then Run programs.
type Machine struct {
	cfg Config
	eng *sim.Engine
	rng *sim.RNG

	// Topology caches, refreshed by Reset: the topology itself, its
	// access discipline, and the timing parameters its cost methods
	// take. Hot paths read these instead of chasing cfg.
	topo topo.Topology
	disc topo.Discipline
	tm   topo.Timing

	mem     []Word
	sharers []uint64 // coherent: bitmask of caching processors, per word
	owner   []int16  // coherent: processor index + 1 holding the word exclusive, or 0

	busFreeAt sim.Time
	modFreeAt []sim.Time // modules: per-module port availability

	// Watchers form one intrusive FIFO list per word: watchHead/watchTail
	// index the first and last watching processor and each Proc carries
	// the next link. Links are stored as processor index + 1, so the
	// zero value means "empty" and the arrays need no initialization
	// pass. A processor watches at most one address at a time, so the
	// per-proc link is unambiguous and parking/waking never touches the
	// allocator or a map.
	watchHead []int32
	watchTail []int32

	procs []*Proc
	live  int
	// reviving counts crashed processors with a pending EvRecover: the
	// run must not terminate at live==0 while a rebirth is armed, or
	// the recovered processor would never get to run.
	reviving int

	// flt is the compiled fault plan (fault.go), nil on fault-free
	// machines — every fault query site guards on that nil, so the
	// fault-free hot path is untouched.
	flt *machineFaults

	// Cross-processor spin-window batching state (window.go):
	// spinStreak governs the attempt trigger (negative while backing
	// off after a failed attempt); winMask holds one eligibility bit
	// per processor; winSet/winOrder/winRetimes are reusable scratch
	// for the detector.
	winEnabled bool // set by Reset: windows possible on this config at all
	// noInline caches Config.NoInlineDispatch: when set, EvCont events
	// hand the baton to the owning goroutine (the A/B reference mode)
	// instead of advancing the continuation in the drive loop.
	noInline bool
	// winClassed caches the topology's TraversalClasses declaration for
	// Modules machines: storms are window-eligible only on topologies
	// that declare a closed set of remote distance classes.
	winClassed bool
	spinStreak int
	winCount   int
	winMask    []uint64
	winSeen    []uint64
	winSet     []sim.WindowEvent
	// Per-position scratch for mixed-period windows (window.go): probe
	// service times, fixed backoff delays, and their prefix sums in
	// rotation order.
	winSvc  []sim.Time
	winDel  []sim.Time
	winPre  []sim.Time
	winBPre []uint64
	// winRMWs defers window-charged per-processor RMW/traffic counts:
	// the window commit writes this flat array instead of chasing a
	// pointer into every spinner's Proc, and Stats() folds it into the
	// per-processor snapshot (the only place the counters are read).
	winRMWs []uint64

	nextShared Addr
	nextLocal  []Addr

	stats       Stats
	done        chan error // termination signal from the drive loop to RunEach
	tearingDown bool       // set by RunEach before waking parked processors to unwind
	ran         bool
	progErr     error // first panic raised by a simulated program
}

// New builds a machine from cfg (zero fields defaulted).
func New(cfg Config) (*Machine, error) {
	m := &Machine{
		eng:  sim.NewEngine(),
		rng:  sim.NewRNG(1),
		done: make(chan error, 1),
	}
	if err := m.Reset(cfg); err != nil {
		return nil, err
	}
	return m, nil
}

// Reset returns the machine to the state New(cfg) would produce while
// reusing every allocation that still fits: the event heap, the memory
// and watcher arrays, the coherence metadata, the processor structs and
// their resume channels, and the per-processor RNGs (re-derived, so the
// streams are bit-identical to a fresh machine's). Sweeps that run many
// (configuration × algorithm) cells draw machines from a Pool and Reset
// them instead of allocating a machine per cell, which makes the
// steady-state cell cost allocation-free up to the algorithm's own
// bookkeeping. Only the configured extent of each array is cleared, and
// arrays grow monotonically with the largest configuration seen.
func (m *Machine) Reset(cfg Config) error {
	cfg = cfg.Defaults()
	if err := cfg.validate(); err != nil {
		return err
	}
	m.cfg = cfg
	m.topo = cfg.Topo
	m.disc = cfg.Topo.Discipline()
	m.tm = topo.Timing{
		CacheHit:     cfg.CacheHit,
		BusLatency:   cfg.BusLatency,
		LocalMem:     cfg.LocalMem,
		RemoteMem:    cfg.RemoteMem,
		PollInterval: cfg.PollInterval,
	}
	total := cfg.SharedWords + cfg.Procs*cfg.LocalWords

	m.eng.Reset()
	m.eng.SetMaxSteps(cfg.MaxSteps) // zero restores the engine default
	m.rng.Reseed(cfg.Seed)

	m.mem = resetSlice(m.mem, total)
	m.watchHead = resetSlice(m.watchHead, total)
	m.watchTail = resetSlice(m.watchTail, total)
	if m.disc == topo.SnoopingBus {
		m.sharers = resetSlice(m.sharers, total)
		m.owner = resetSlice(m.owner, total)
	}
	if m.disc == topo.Modules {
		m.modFreeAt = resetSlice(m.modFreeAt, m.topo.Modules(cfg.Procs))
	}
	m.busFreeAt = 0

	// Grow the processor set as needed; shrinking just reslices (the
	// spare Proc structs stay in the backing array for later reuse).
	m.procs = resizeKeep(m.procs, cfg.Procs)
	for i := 0; i < cfg.Procs; i++ {
		p := m.procs[i]
		if p == nil {
			p = &Proc{id: i, m: m, rng: new(sim.RNG), resume: make(chan struct{})}
			m.procs[i] = p
		}
		m.rng.DeriveInto(uint64(i), p.rng)
		p.localNow = 0
		p.watchNext = 0
		p.spin = spinState{}
		p.cont = contState{}
		p.finished = false
		p.crashed = false
		p.incarnation = 0
		p.reincarnate = false
		p.blockedOn = ""
		p.blockedAddr = 0
		p.stats = ProcStats{}
	}
	m.live = 0
	m.reviving = 0

	m.flt = nil
	if cfg.Faults != nil && !cfg.Faults.Empty() {
		// Compiling per Reset keeps the plan portable across machine
		// shapes; the compile allocates, but only faulted configs pay it.
		m.flt = compileFaults(cfg.Faults, cfg.Procs, m.topo.Modules(cfg.Procs), cfg.SuspectAfter)
	}

	m.nextShared = 0
	m.nextLocal = resetSlice(m.nextLocal, cfg.Procs)
	for i := range m.nextLocal {
		m.nextLocal[i] = Addr(cfg.SharedWords + i*cfg.LocalWords)
	}

	m.stats = Stats{}
	m.winEnabled = !cfg.NoSpinWindows && m.disc != topo.Uniform
	m.noInline = cfg.NoInlineDispatch
	m.winClassed = false
	if m.disc == topo.Modules {
		_, m.winClassed = m.topo.TraversalClasses(m.tm)
	}
	m.spinStreak = 0
	m.winCount = 0
	m.winMask = resetSlice(m.winMask, (cfg.Procs+63)/64)
	m.winRMWs = resetSlice(m.winRMWs, cfg.Procs)
	m.tearingDown = false
	m.ran = false
	m.progErr = nil
	return nil
}

// resetSlice returns s resized to n elements, all zero, reusing the
// backing array when it is large enough.
func resetSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// growSlice returns s resized to n elements WITHOUT clearing: every
// element's value is unspecified and the caller must write all n. Used
// by the window batcher's per-attempt scratch arrays, which are fully
// rebuilt each attempt (clearing them first was measurable).
func growSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// resizeKeep returns s resized to n elements, preserving existing
// values (grown slots are zero). Used for the processor set, whose
// structs are reused across Resets.
func resizeKeep[T any](s []T, n int) []T {
	if cap(s) < n {
		grown := make([]T, n)
		copy(grown, s)
		return grown
	}
	return s[:n]
}

// Config returns the completed configuration.
func (m *Machine) Config() Config { return m.cfg }

// Topo returns the machine's topology.
func (m *Machine) Topo() topo.Topology { return m.topo }

// Placement returns the machine's default data-placement policy.
func (m *Machine) Placement() topo.Placement { return m.cfg.Placement }

// Procs returns the processor count.
func (m *Machine) Procs() int { return m.cfg.Procs }

// Now returns the current virtual time.
func (m *Machine) Now() sim.Time { return m.eng.Now() }

// AllocShared reserves n words in the shared heap and returns the base
// address. Memory is zeroed. Panics when the heap is exhausted, since
// that is a configuration error in an experiment, not a runtime condition.
func (m *Machine) AllocShared(n int) Addr {
	if n <= 0 {
		panic("machine: AllocShared with non-positive size")
	}
	base := m.nextShared
	if int(base)+n > m.cfg.SharedWords {
		panic(fmt.Sprintf("machine: shared heap exhausted (%d words)", m.cfg.SharedWords))
	}
	m.nextShared += Addr(n)
	return base
}

// AllocLocal reserves n words in module p (the local region attached to
// processor p). On coherent topologies locality has no timing effect
// but placement is still tracked, so algorithms are written once.
func (m *Machine) AllocLocal(p, n int) Addr {
	if p < 0 || p >= m.cfg.Procs {
		panic("machine: AllocLocal processor out of range")
	}
	if n <= 0 {
		panic("machine: AllocLocal with non-positive size")
	}
	base := m.nextLocal[p]
	limit := Addr(m.cfg.SharedWords + (p+1)*m.cfg.LocalWords)
	if base+Addr(n) > limit {
		panic(fmt.Sprintf("machine: local heap of processor %d exhausted (%d words)", p, m.cfg.LocalWords))
	}
	m.nextLocal[p] += Addr(n)
	return base
}

// AllocPlaced reserves n words in the module the placement policy picks
// for a word primarily touched by processor owner. This is how
// placement-aware algorithms allocate: the same algorithm text places
// its words per-processor on a flat machine and on cluster homes on a
// hierarchical one, with the policy as the only varying part.
func (m *Machine) AllocPlaced(pl topo.Placement, owner, n int) Addr {
	return m.AllocLocal(pl.Module(m.topo, owner, m.cfg.Procs), n)
}

// home returns the memory module owning addr: local regions belong to
// their module; the shared region's mapping is a topology property
// (interleaved across modules on every canonical instance).
func (m *Machine) home(a Addr) int {
	if int(a) >= m.cfg.SharedWords {
		return (int(a) - m.cfg.SharedWords) / m.cfg.LocalWords
	}
	return m.topo.HomeModule(int(a), m.cfg.Procs)
}

// Peek reads simulated memory without timing effects (host-side checks).
func (m *Machine) Peek(a Addr) Word { return m.mem[a] }

// Poke writes simulated memory without timing effects. Only valid before
// Run starts (initialization) — it does not wake watchers.
func (m *Machine) Poke(a Addr, v Word) {
	if m.ran {
		panic("machine: Poke after Run started")
	}
	m.mem[a] = v
}

// Stats returns a snapshot of the machine counters. Valid after Run.
func (m *Machine) Stats() Stats {
	s := m.stats
	s.Cycles = m.eng.Now()
	s.Events = m.eng.Steps()
	s.PerProc = make([]ProcStats, len(m.procs))
	for i, p := range m.procs {
		s.PerProc[i] = p.stats
		// Fold in the deferred window charges (window.go): every
		// window-charged operation is an RMW, and its traffic kind is
		// fixed by the model (a bus transaction per probe on Bus; a
		// remote reference per probe on module machines, where window
		// spinners are all remote to the probed word's home).
		if i < len(m.winRMWs) && m.winRMWs[i] != 0 {
			s.PerProc[i].RMWs += m.winRMWs[i]
			if m.disc == topo.SnoopingBus {
				s.PerProc[i].BusTxns += m.winRMWs[i]
			} else {
				s.PerProc[i].RemoteRefs += m.winRMWs[i]
			}
		}
		s.Loads += s.PerProc[i].Loads
		s.Stores += s.PerProc[i].Stores
		s.RMWs += s.PerProc[i].RMWs
	}
	return s
}

// Run executes the same program body on every processor (SPMD style; the
// body distinguishes processors via p.ID()) and drives the simulation to
// completion. It returns an error on livelock (event limit) or deadlock
// (all processors blocked with no pending events).
func (m *Machine) Run(body func(p *Proc)) error {
	bodies := make([]func(p *Proc), m.cfg.Procs)
	for i := range bodies {
		bodies[i] = body
	}
	return m.RunEach(bodies)
}

// RunEach executes one program per processor. len(bodies) must equal the
// processor count.
//
// The run loop is baton-passing: there is no central engine goroutine.
// Exactly one goroutine is runnable at a time — the processor holding
// the baton. When it blocks, it steps the engine itself until an event
// dispatches another processor, hands the baton over with a single
// channel send, and parks. A simulated context switch back into a
// program body therefore costs at most one goroutine handoff — and
// usually none: an operation retired on the inline fast path schedules
// no event at all, machine-driven spin waits (spin.go) and scripted
// continuations (cont.go) advance inside whichever goroutine pops
// their events, and the baton moves only when a processor's *program*
// must resume (acquire completed, script finished, recovery re-entry).
func (m *Machine) RunEach(bodies []func(p *Proc)) error {
	if len(bodies) != m.cfg.Procs {
		return fmt.Errorf("machine: RunEach needs %d bodies, got %d", m.cfg.Procs, len(bodies))
	}
	if m.ran {
		return errors.New("machine: Run called twice")
	}
	m.ran = true
	m.live = m.cfg.Procs

	// Crash events go in before any program event: at their instant
	// they carry the smallest sequence numbers, so a crash at time t
	// materializes before anything else scheduled at t — including the
	// t=0 start dispatches — and, while pending, bounds every
	// processor's inline lookahead at t.
	if m.flt != nil {
		for pid, at := range m.flt.crashAt {
			if at >= 0 {
				m.eng.AtEvent(at, sim.EvFault, int32(pid), 0)
			}
		}
	}

	var wg sync.WaitGroup
	for i, p := range m.procs {
		wg.Add(1)
		body := bodies[i]
		proc := p
		go func() {
			defer wg.Done()
			defer func() {
				r := recover()
				if r == nil || r == abortSentinel {
					return
				}
				// A panic in the simulated program (bad address, logic
				// error) surfaces as a Run error instead of killing the
				// process. The panicking processor holds the baton, so
				// it must keep driving the remaining processors.
				if m.progErr == nil {
					m.progErr = fmt.Errorf("machine: processor %d panicked: %v", proc.id, r)
				}
				proc.finished = true
				m.live--
				m.drive(proc)
			}()
			// Crash recovery re-enters the body: each revival unwinds the
			// dead incarnation's stack with the reincarnate sentinel and
			// restarts the program at the recovery entry point — the top
			// of the body — holding the baton (the EvRecover delivery
			// handed it over), so only the first incarnation waits.
			wait := true
			for runBody(proc, body, wait) {
				wait = false
			}
			// The body may have finished ahead of the engine clock on the
			// inline fast path; drain that run-ahead through one event so
			// the final Cycles count is exact.
			proc.syncClock()
			proc.finished = true
			m.live--
			m.drive(proc)
		}()
		// Stagger start events by scheduling order; all at t=0.
		m.eng.AtEvent(0, sim.EvDispatch, int32(i), 0)
	}

	// Kick off: hand the baton to the first dispatched processor, then
	// wait for a drive loop to signal termination.
	m.drive(nil)
	err := <-m.done
	if m.progErr != nil {
		err = m.progErr
	} else if err == nil && m.live > 0 {
		err = m.deadlockError()
	}
	// Unwind any still-parked processor goroutines. Every unfinished
	// processor is parked on its resume channel (the baton holder was
	// the one that signaled done, and it parks — or exits — right after).
	m.tearingDown = true
	for _, p := range m.procs {
		if !p.finished {
			p.resume <- struct{}{}
		}
	}
	wg.Wait()
	return err
}

// drive steps the engine on the calling goroutine until an event
// dispatches p (p resumes its program), handing the baton to any other
// processor dispatched along the way. Closure events run in place, and
// EvSpin events advance the target processor's spin state machine in
// place — executing its probes without waking its goroutine — handing
// the baton over only when a spin completes. When the queue drains or
// the work budget trips, drive signals termination on m.done; a
// finished (or nil, for kickoff) p then returns so its goroutine can
// exit, while a live p parks for teardown.
func (m *Machine) drive(p *Proc) {
	for {
		if m.live == 0 && m.reviving == 0 {
			// Nothing left that can run: every processor finished or
			// crashed with no rebirth armed. Don't drain the stale
			// remainder of the queue — popping a crash or deferred
			// wakeup scheduled beyond the last real event would advance
			// the clock and inflate the run's Cycles past the end of the
			// actual computation.
			m.done <- nil
			m.parkOrExit(p)
			return
		}
		if m.winEnabled && m.spinStreak >= 0 {
			// The next event being an *eligible* spin probe is the
			// cheap tell that a storm may be in rotation: scan for a
			// closed-form window before replaying it (window.go). Any
			// other next event would itself be the window's horizon,
			// so a scan cannot pay off. A negative streak is the
			// post-failure backoff — it climbs back to zero as
			// ineligible probes replay per-event; winEnabled is
			// decided once per Reset (NoSpinWindows, Ideal model).
			if k, a0, a1, ok := m.eng.NextPeek(); ok && k == sim.EvSpin && m.winMaskBit(a0) {
				m.tryWindow(Addr(a1))
			}
		}
		kind, arg0, arg1, fired := m.eng.StepPayload()
		if !fired {
			m.done <- nil // queue drained: completion, or deadlock if live > 0
			m.parkOrExit(p)
			return
		}
		if m.eng.Exhausted() {
			m.done <- fmt.Errorf("%w after %d events at t=%d", sim.ErrStepLimit, m.eng.Steps(), m.eng.Now())
			m.parkOrExit(p)
			return
		}
		var q *Proc
		switch kind {
		case sim.EvDispatch:
			m.spinStreak = 0
			q = m.procs[arg0]
			if q.finished || q.crashed {
				continue // stale wakeup: the processor returned or died
			}
			if m.flt != nil {
				if e := m.flt.stallEnd(int(arg0), m.eng.Now()); e > m.eng.Now() {
					// The processor is stalled: defer this delivery to the
					// end of the stall window. The replacement event draws
					// a fresh sequence number in both the windowed and
					// per-event executions (windows never contain a
					// stalled processor's events — see tryWindow), so the
					// A/B invariant is preserved.
					m.eng.AtEvent(e, kind, arg0, arg1)
					continue
				}
			}
			q.localNow = m.eng.Now()
		case sim.EvSpin:
			s := m.procs[arg0]
			if s.finished || s.crashed {
				m.spinStreak = 0
				continue
			}
			if m.flt != nil {
				if e := m.flt.stallEnd(int(arg0), m.eng.Now()); e > m.eng.Now() {
					m.spinStreak = 0
					m.eng.AtEvent(e, kind, arg0, arg1)
					continue
				}
			}
			s.localNow = m.eng.Now()
			if !m.spinAdvance(s) {
				m.spinStreak++
				continue // still waiting: probes ran here, no handoff
			}
			m.spinStreak = 0
			q = s // spin satisfied: resume the program at s.localNow
		case sim.EvCont:
			// Advance a parked processor's scripted continuation
			// (cont.go). The drop, stall-deferral, and clock-resync
			// steps mirror the EvDispatch case exactly; the only
			// difference is that the ops run here, in the popping
			// goroutine, unless NoInlineDispatch demands the
			// baton-handoff reference execution.
			m.spinStreak = 0
			c := m.procs[arg0]
			if c.finished || c.crashed {
				continue // stale wakeup: the processor returned or died
			}
			if m.flt != nil {
				if e := m.flt.stallEnd(int(arg0), m.eng.Now()); e > m.eng.Now() {
					m.eng.AtEvent(e, kind, arg0, arg1)
					continue
				}
			}
			c.localNow = m.eng.Now()
			if !m.noInline {
				m.stats.InlineDispatches++
				if !m.contAdvance(c) {
					continue // script still running: ops ran here, no handoff
				}
			}
			q = c // script complete (or reference mode): resume the goroutine
		case sim.EvFault:
			// Materialize a processor crash. The processor's live count
			// is surrendered here; its pending events are dropped on
			// delivery above, and any word it holds stays held. Without
			// a restart the crash is permanent and the goroutine unwinds
			// at teardown; with one, the rebirth is armed here — only
			// when the crash actually materialized, so a crash drawn
			// past the run's natural end never drags a recovery (or the
			// stale queue remainder) into the run either.
			m.spinStreak = 0
			r := m.procs[arg0]
			if !r.finished && !r.crashed {
				r.crashed = true
				m.live--
				m.setWinMask(r.id, false)
				if at := m.flt.restartAt[arg0]; at >= 0 {
					m.eng.AtEvent(at, sim.EvRecover, arg0, 0)
					m.reviving++
				}
			}
			continue
		case sim.EvRecover:
			// Rebirth a crashed processor at the recovery entry point.
			// Nothing is released on its behalf — words the dead
			// incarnation held stay held; reclaiming them is the
			// protocol's problem — but all proc-local machine state
			// (spin machinery, watch registration, pending wakeups, the
			// derived RNG stream) resets as at boot.
			m.spinStreak = 0
			m.reviving--
			r := m.procs[arg0]
			if r.finished || !r.crashed {
				continue
			}
			m.revive(r)
			if r == p {
				// We ARE the revived processor's goroutine: the crash
				// landed while it held the baton (parked inside its own
				// drive call). Unwind the dead incarnation's stack
				// straight into the recovery entry; runBody keeps the
				// baton and re-enters the program.
				panic(reincarnateSentinel)
			}
			r.reincarnate = true
			q = r // hand the baton to the reborn processor
		default:
			m.spinStreak = 0
			continue // closure event, already run in place
		}
		if q == p {
			return // our own wakeup: keep running, no handoff at all
		}
		q.resume <- struct{}{} // pass the baton
		if p == nil || p.finished {
			return
		}
		p.waitBaton() // park until dispatched; the sender set our clock
		return
	}
}

// parkOrExit ends p's participation in a terminated run: a live
// processor parks until RunEach's teardown wakes it (unwinding via the
// abort sentinel), a finished one — or the kickoff caller — just returns.
func (m *Machine) parkOrExit(p *Proc) {
	if p != nil && !p.finished {
		p.waitBaton()
	}
}

// runBody runs one incarnation of a processor's program, reporting
// whether the processor was reborn mid-body. A revival unwinds the
// dead incarnation's stack with the reincarnate sentinel — thrown from
// waitBaton when the baton wake is a rebirth, or from the drive loop
// directly when the crashed processor itself popped its EvRecover —
// and the caller restarts the body at the recovery entry point.
func runBody(p *Proc, body func(*Proc), wait bool) (reborn bool) {
	defer func() {
		if r := recover(); r != nil {
			if r == reincarnateSentinel {
				reborn = true
				return
			}
			panic(r)
		}
	}()
	if wait {
		p.waitBaton() // parked until the engine dispatches us at t=0
	}
	body(p)
	return false
}

// revive resets a crashed processor's machine-local state to its boot
// value at the current instant. The dead incarnation's pending wakeups
// (EvDispatch/EvSpin addressed to it) are purged so they cannot fire
// into the reborn program, its watcher registration is unlinked, and
// its RNG stream is re-derived from the machine seed — a reborn
// processor draws exactly what its first incarnation drew, which keeps
// recovery runs bit-identical without any extra seed plumbing. The
// per-processor stats are NOT reset: they are physical counters of
// what the hardware did, and they stay deterministic across rebirths.
func (m *Machine) revive(r *Proc) {
	pid := int32(r.id)
	m.eng.PurgePending(func(ev sim.PendingEvent) bool {
		return ev.Arg0 == pid &&
			(ev.Kind == sim.EvDispatch || ev.Kind == sim.EvSpin || ev.Kind == sim.EvCont)
	})
	if r.spin.active {
		m.watchUnlink(r.spin.addr, r.id)
	}
	r.spin = spinState{}
	r.cont = contState{}
	r.watchNext = 0
	r.blockedOn = ""
	r.blockedAddr = 0
	r.crashed = false
	r.localNow = m.eng.Now()
	m.rng.DeriveInto(uint64(r.id), r.rng)
	r.incarnation++
	m.live++
}

// watchUnlink removes processor pid from the intrusive watcher list of
// addr, if registered. Only recovery calls it (normal wakeups consume
// the whole list), so the linear walk is off every hot path.
func (m *Machine) watchUnlink(a Addr, pid int) {
	link := m.watchHead[a]
	prev := int32(0)
	for link != 0 {
		next := m.procs[link-1].watchNext
		if int(link-1) == pid {
			if prev == 0 {
				m.watchHead[a] = next
			} else {
				m.procs[prev-1].watchNext = next
			}
			if m.watchTail[a] == link {
				m.watchTail[a] = prev
			}
			m.procs[link-1].watchNext = 0
			return
		}
		prev = link
		link = next
	}
}

// ErrDeadlock marks a run that ended with live processors blocked and
// no pending events. Fault-tolerant harness runners match it (with
// errors.Is) to report a degraded cell — e.g. survivors blocked forever
// on a word a crashed processor holds — instead of failing a sweep.
var ErrDeadlock = errors.New("deadlock")

// BlockedProc is one live-but-stuck processor in a DeadlockError: what
// it was blocked on ("watch", "delay", ...) and, for watch waits, the
// address it was parked under.
type BlockedProc struct {
	Proc int
	On   string
	Addr Addr // valid when On == "watch"
}

// WatchedWord is one contended word in a DeadlockError: its value at
// the wedge and the live processors parked watching it, in FIFO
// registration order. The value is usually the smoking gun — a lock
// word still carrying a dead processor's claim tells the reader which
// crash orphaned it.
type WatchedWord struct {
	Addr     Addr
	Value    Word
	Watchers []int
}

// DeadlockError is the detail behind ErrDeadlock: which processors
// were blocked on what, which processors were dead at the wedge, and
// every watched word with its value and watcher set — enough to read a
// fault-table failure from the error string alone. It unwraps to
// ErrDeadlock, so existing errors.Is call sites are unaffected.
type DeadlockError struct {
	At      sim.Time
	Live    int
	Blocked []BlockedProc
	Crashed []int // processors dead at the wedge (never recovered)
	Words   []WatchedWord
}

func (e *DeadlockError) Unwrap() error { return ErrDeadlock }

func (e *DeadlockError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "machine: deadlock at t=%d with %d processors blocked: ", e.At, e.Live)
	for i, bp := range e.Blocked {
		if i > 0 {
			b.WriteString(", ")
		}
		if bp.On == "watch" {
			fmt.Fprintf(&b, "P%d(watch@%d)", bp.Proc, bp.Addr)
		} else {
			fmt.Fprintf(&b, "P%d(%s)", bp.Proc, bp.On)
		}
	}
	if len(e.Crashed) > 0 {
		fmt.Fprintf(&b, " (%d crashed:", len(e.Crashed))
		for _, id := range e.Crashed {
			fmt.Fprintf(&b, " P%d", id)
		}
		b.WriteString(")")
	}
	for _, w := range e.Words {
		fmt.Fprintf(&b, "; word[%d]=%d watched by", w.Addr, w.Value)
		for _, id := range w.Watchers {
			fmt.Fprintf(&b, " P%d", id)
		}
	}
	return b.String()
}

func (m *Machine) deadlockError() error {
	de := &DeadlockError{At: m.eng.Now(), Live: m.live}
	var order []Addr
	watchers := make(map[Addr][]int)
	for _, p := range m.procs {
		if p.crashed {
			de.Crashed = append(de.Crashed, p.id)
			continue // a dead processor is not blocked; it is gone
		}
		if p.finished {
			continue
		}
		de.Blocked = append(de.Blocked, BlockedProc{Proc: p.id, On: p.blockedOn, Addr: p.blockedAddr})
		if p.blockedOn == "watch" {
			if _, seen := watchers[p.blockedAddr]; !seen {
				order = append(order, p.blockedAddr)
			}
			watchers[p.blockedAddr] = append(watchers[p.blockedAddr], p.id)
		}
	}
	for _, a := range order {
		de.Words = append(de.Words, WatchedWord{Addr: a, Value: m.mem[a], Watchers: watchers[a]})
	}
	return de
}

// wakeWatchers schedules every processor watching addr to re-check at
// the given absolute time, in registration (FIFO) order. Spurious
// wakeups are fine: the spin machine rechecks. The intrusive list is
// consumed in place; no allocation, no map churn. Links are processor
// index + 1 (zero = end of list). Watchers in a machine-driven spin are
// woken as EvSpin (the drive loop runs their re-check in place); any
// other watcher gets a plain dispatch.
func (m *Machine) wakeWatchers(a Addr, at sim.Time) {
	link := m.watchHead[a]
	if link == 0 {
		return
	}
	m.watchHead[a] = 0
	m.watchTail[a] = 0
	for link != 0 {
		p := m.procs[link-1]
		kind := sim.EvDispatch
		if p.spin.active {
			kind = sim.EvSpin
		}
		m.eng.AtEvent(at, kind, link-1, int32(a))
		link = p.watchNext
		p.watchNext = 0
	}
}

var (
	abortSentinel       = new(int)
	reincarnateSentinel = new(int)
)
