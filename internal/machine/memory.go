package machine

import "repro/internal/sim"

// accessKind classifies a memory operation for the timing model.
type accessKind int

const (
	accRead accessKind = iota
	accWrite
	accRMW // read-modify-write: write semantics plus a returned value
)

// access computes the latency of an operation by processor p on address a
// and updates coherence state, interconnect occupancy, and traffic
// counters. The caller applies the data mutation immediately (engine
// event order equals interconnect arbitration order, so issue-order
// application yields a sequentially consistent memory).
func (m *Machine) access(p *Proc, a Addr, k accessKind) sim.Time {
	if int(a) < 0 || int(a) >= len(m.mem) {
		panic("machine: address out of range")
	}
	switch m.cfg.Model {
	case Bus:
		return m.accessBus(p, a, k)
	case NUMA:
		return m.accessNUMA(p, a, k)
	default:
		return 1 // Ideal: unit latency, no contention
	}
}

// accessBus models a snooping write-invalidate protocol over a single
// shared bus. Coherence granularity is one word (the model has no false
// sharing; algorithms that need padding on real machines simply get it
// for free here, which is the era-standard "padded to a cache line"
// assumption).
func (m *Machine) accessBus(p *Proc, a Addr, k accessKind) sim.Time {
	bit := uint64(1) << uint(p.id)
	switch k {
	case accRead:
		if m.sharers[a]&bit != 0 {
			return m.cfg.CacheHit // hit: shared or exclusive copy present
		}
		lat := m.busTransaction(p)
		// Read miss: any exclusive owner is downgraded to shared; the
		// requester joins the sharer set. Owners are stored as processor
		// index + 1 so a zeroed array means "no exclusive owner".
		m.owner[a] = 0
		m.sharers[a] |= bit
		return lat
	default: // accWrite, accRMW
		if m.owner[a] == int16(p.id)+1 {
			return m.cfg.CacheHit // already exclusive: write hit
		}
		lat := m.busTransaction(p)
		// Invalidate all other copies; requester becomes exclusive owner.
		m.sharers[a] = bit
		m.owner[a] = int16(p.id) + 1
		return lat
	}
}

// busTransaction serializes on the single bus and charges one
// transaction to processor p. Occupancy is computed against the
// processor's local clock, which may run ahead of the engine clock on
// the inline fast path.
func (m *Machine) busTransaction(p *Proc) sim.Time {
	now := p.localNow
	start := now
	if m.busFreeAt > start {
		start = m.busFreeAt
	}
	m.busFreeAt = start + m.cfg.BusLatency
	p.stats.BusTxns++
	m.stats.BusTxns++
	return (start - now) + m.cfg.BusLatency
}

// accessNUMA models per-module memory ports and network traversal for
// remote references. An access occupies the target module's port for
// its full service time — LocalMem cycles for a local access,
// LocalMem+RemoteMem for a remote one (the module and its switch path
// are busy for the whole transaction on a Butterfly-class machine).
// This occupancy is what makes hot-spot modules saturate: a word
// hammered by P processors serves at most one request per service time,
// and the queue in front of it grows with P.
func (m *Machine) accessNUMA(p *Proc, a Addr, _ accessKind) sim.Time {
	mod := m.home(a)
	now := p.localNow
	start := now
	if m.modFreeAt[mod] > start {
		start = m.modFreeAt[mod]
	}
	service := m.cfg.LocalMem
	if mod != p.id {
		service += m.cfg.RemoteMem
		p.stats.RemoteRefs++
		m.stats.RemoteRefs++
	}
	m.modFreeAt[mod] = start + service
	return (start - now) + service
}
