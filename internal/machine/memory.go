package machine

import (
	"repro/internal/sim"
	"repro/internal/topo"
)

// accessKind classifies a memory operation for the timing model.
type accessKind int

const (
	accRead accessKind = iota
	accWrite
	accRMW // read-modify-write: write semantics plus a returned value
)

// access computes the latency of an operation by processor p on address a
// and updates coherence state, interconnect occupancy, and traffic
// counters. The caller applies the data mutation immediately (engine
// event order equals interconnect arbitration order, so issue-order
// application yields a sequentially consistent memory). The mechanism
// is selected by the topology's discipline; the topology prices the
// distances inside it.
func (m *Machine) access(p *Proc, a Addr, k accessKind) sim.Time {
	if int(a) < 0 || int(a) >= len(m.mem) {
		panic("machine: address out of range")
	}
	switch m.disc {
	case topo.SnoopingBus:
		return m.accessBus(p, a, k)
	case topo.Modules:
		return m.accessModules(p, a, k)
	default:
		return 1 // uniform memory: unit latency, no contention
	}
}

// accessBus models a snooping write-invalidate protocol over a single
// shared bus. Coherence granularity is one word (the model has no false
// sharing; algorithms that need padding on real machines simply get it
// for free here, which is the era-standard "padded to a cache line"
// assumption).
func (m *Machine) accessBus(p *Proc, a Addr, k accessKind) sim.Time {
	bit := uint64(1) << uint(p.id)
	switch k {
	case accRead:
		if m.sharers[a]&bit != 0 {
			return m.cfg.CacheHit // hit: shared or exclusive copy present
		}
		lat := m.busTransaction(p)
		// Read miss: any exclusive owner is downgraded to shared; the
		// requester joins the sharer set. Owners are stored as processor
		// index + 1 so a zeroed array means "no exclusive owner".
		m.owner[a] = 0
		m.sharers[a] |= bit
		return lat
	default: // accWrite, accRMW
		if m.owner[a] == int16(p.id)+1 {
			return m.cfg.CacheHit // already exclusive: write hit
		}
		lat := m.busTransaction(p)
		// Invalidate all other copies; requester becomes exclusive owner.
		m.sharers[a] = bit
		m.owner[a] = int16(p.id) + 1
		return lat
	}
}

// busTransaction serializes on the single bus and charges one
// transaction to processor p. Occupancy is computed against the
// processor's local clock, which may run ahead of the engine clock on
// the inline fast path.
func (m *Machine) busTransaction(p *Proc) sim.Time {
	now := p.localNow
	start := now
	if m.busFreeAt > start {
		start = m.busFreeAt
	}
	m.busFreeAt = start + m.cfg.BusLatency
	p.stats.BusTxns++
	m.stats.BusTxns++
	return (start - now) + m.cfg.BusLatency
}

// accessModules models per-module memory ports and distance-priced
// network traversal for off-module references. An access occupies the
// target module's port for its full service time — LocalMem cycles
// plus whatever traversal the topology charges for the hop (the module
// and its switch path are busy for the whole transaction on a
// Butterfly-class machine, near or far). This occupancy is what makes
// hot-spot modules saturate: a word hammered by P processors serves at
// most one request per service time, and the queue in front of it
// grows with P. On a hierarchical topology the same mechanism prices
// intra-cluster sharing cheaply and cross-cluster hot spots dearly.
func (m *Machine) accessModules(p *Proc, a Addr, _ accessKind) sim.Time {
	mod := m.home(a)
	now := p.localNow
	start := now
	if m.modFreeAt[mod] > start {
		start = m.modFreeAt[mod]
	}
	trav := m.topo.Traversal(p.id, mod, m.tm)
	if m.flt != nil {
		// A degraded module's network path is slower: scale the
		// traversal term (not the local-memory term) by the factor
		// active at issue time. Issue-time pricing matches the
		// occupancy model — the request enters the degraded network
		// when it is issued.
		if f := m.flt.degradeFactor(mod, now); f > 1 {
			trav *= sim.Time(f)
		}
	}
	service := m.cfg.LocalMem + trav
	if m.topo.Remote(p.id, mod) {
		p.stats.RemoteRefs++
		m.stats.RemoteRefs++
	}
	m.modFreeAt[mod] = start + service
	return (start - now) + service
}
