package machine

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/topo"
)

// Tests for cross-processor spin-window batching (window.go). The
// contract under test is exactness: enabling windows must change no
// simulated quantity — cycles, traffic, per-processor counters, event
// counts, sequence numbering, RNG stream positions — only host cost.

// stormResult captures everything observable from one storm run.
type stormResult struct {
	Stats   Stats
	RNGPos  []uint64 // one post-run draw per processor: pins stream positions
	Counter Word
	Err     string
}

// runStorm drives a critical-section storm: every processor loops
// {think, acquire lock via its discipline, bump counter with a
// read-delay-write, release}. The discipline is per-processor so mixed
// storms can be expressed. WindowOps is scrubbed from the returned
// stats (it is the one legitimately window-dependent field) and
// reported separately.
func runStorm(t *testing.T, cfg Config, iters int,
	acquire func(p *Proc, lock Addr)) (stormResult, uint64) {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lock := m.AllocShared(1)
	counter := m.AllocShared(1)
	pos := make([]uint64, m.Procs())
	runErr := m.Run(func(p *Proc) {
		rng := p.RNG()
		for it := 0; it < iters; it++ {
			p.Delay(rng.ExpTime(50))
			acquire(p, lock)
			v := p.Load(counter)
			p.Delay(25)
			p.Store(counter, v+1)
			p.Store(lock, 0)
		}
		pos[p.ID()] = rng.Uint64()
	})
	res := stormResult{
		Stats:   m.Stats(),
		RNGPos:  pos,
		Counter: m.Peek(counter),
	}
	if runErr != nil {
		res.Err = runErr.Error()
	}
	win := res.Stats.WindowOps
	res.Stats.WindowOps = 0
	return res, win
}

// assertStormAB runs the same storm with windows enabled and disabled
// and requires bit-identical results, returning the enabled run's
// window-op count.
func assertStormAB(t *testing.T, cfg Config, iters int,
	acquire func(p *Proc, lock Addr)) uint64 {
	t.Helper()
	on, win := runStorm(t, cfg, iters, acquire)
	offCfg := cfg
	offCfg.NoSpinWindows = true
	off, offWin := runStorm(t, offCfg, iters, acquire)
	if offWin != 0 {
		t.Fatalf("NoSpinWindows run still batched %d window ops", offWin)
	}
	if !reflect.DeepEqual(on, off) {
		t.Errorf("%s P=%d: windows on/off diverged:\n on:  %+v\n off: %+v",
			cfg.Topo, cfg.Procs, on, off)
	}
	return win
}

func rawTAS(p *Proc, lock Addr) { p.SpinTAS(lock, Backoff{}) }

// TestSpinWindowBitIdentical is the core exactness regression: raw
// test&set storms across models and contention regimes, windows on vs
// forced off, everything compared — including per-processor stats and
// RNG stream positions.
func TestSpinWindowBitIdentical(t *testing.T) {
	for _, model := range []topo.Topology{topo.Bus, topo.NUMA} {
		for _, procs := range []int{2, 8, 32} {
			win := assertStormAB(t, Config{Procs: procs, Topo: model, Seed: 7}, 20, rawTAS)
			if procs >= 8 && win == 0 {
				t.Errorf("%s P=%d: windows never engaged on a raw storm", model, procs)
			}
		}
	}
}

// TestSpinWindowHeapMode pins the retime path of the heap queue
// layout: above the linear threshold the window must still commit and
// stay exact.
func TestSpinWindowHeapMode(t *testing.T) {
	win := assertStormAB(t, Config{Procs: 64, Topo: topo.NUMA, Seed: 3}, 8, rawTAS)
	if win == 0 {
		t.Error("P=64 NUMA storm engaged no windows (heap-mode retime untested)")
	}
}

// TestSpinWindowMixedBackoffStorm mixes draw-free raw spinners with
// RNG-jittered backoff spinners on one word. The jittered spinners are
// ineligible, so their probes bound every window (partial windows may
// still form among the raw spinners); the run must stay bit-identical
// with batching forced off — in particular every jitter draw must
// happen in the same stream position.
func TestSpinWindowMixedBackoffStorm(t *testing.T) {
	mixed := func(p *Proc, lock Addr) {
		if p.ID()%2 == 1 {
			p.SpinTAS(lock, Backoff{Base: 16, Cap: 1024, PropJitter: true})
			return
		}
		p.SpinTAS(lock, Backoff{})
	}
	for _, model := range []topo.Topology{topo.Bus, topo.NUMA} {
		for _, procs := range []int{2, 8, 32} {
			assertStormAB(t, Config{Procs: procs, Topo: model, Seed: 11}, 15, mixed)
		}
	}
}

// TestSpinWindowTTASStorm mixes raw test&set spinners with TTAS
// waiters on the same word. TTAS waiters alternate between watcher
// parking (which blocks windows on the word) and wake bursts (during
// which windows may legally form, bounded by the waiters' re-check
// events); whatever mixture results must be bit-identical with
// batching forced off.
func TestSpinWindowTTASStorm(t *testing.T) {
	mixed := func(p *Proc, lock Addr) {
		if p.ID()%2 == 1 {
			p.SpinTTAS(lock)
			return
		}
		p.SpinTAS(lock, Backoff{})
	}
	for _, procs := range []int{8, 32} {
		assertStormAB(t, Config{Procs: procs, Topo: topo.Bus, Seed: 5}, 15, mixed)
	}
}

// TestSpinWindowWatchedWordRefusal pins the watcher precondition: with
// the lock permanently held, every TTAS waiter parks on the watcher
// list for good, so the word is watched for the storm's entire
// lifetime and no window may ever form across it.
func TestSpinWindowWatchedWordRefusal(t *testing.T) {
	run := func(noWin bool) (string, Stats) {
		m, err := New(Config{Procs: 8, Topo: topo.Bus, Seed: 1, MaxSteps: 30000, NoSpinWindows: noWin})
		if err != nil {
			t.Fatal(err)
		}
		lock := m.AllocShared(1)
		m.Poke(lock, 1) // held forever
		runErr := m.Run(func(p *Proc) {
			if p.ID()%2 == 1 {
				p.SpinTTAS(lock)
				return
			}
			p.SpinTAS(lock, Backoff{})
		})
		if !errors.Is(runErr, sim.ErrStepLimit) {
			t.Fatalf("want ErrStepLimit, got %v", runErr)
		}
		return runErr.Error(), m.Stats()
	}
	msg, st := run(false)
	if st.WindowOps != 0 {
		t.Errorf("windows batched %d ops across a permanently watched word", st.WindowOps)
	}
	offMsg, offStats := run(true)
	st.WindowOps = 0
	offStats.WindowOps = 0
	if msg != offMsg || !reflect.DeepEqual(st, offStats) {
		t.Errorf("watched-word runs diverged:\n on:  %s %+v\n off: %s %+v", msg, st, offMsg, offStats)
	}
}

// TestSpinWindowLivelockTrip pins the budget interaction: a storm on a
// word that is never released must trip ErrStepLimit with exactly the
// same step count, clock, and error text as per-event execution — but
// the windowed run reaches the budget in closed form instead of
// replaying every probe.
func TestSpinWindowLivelockTrip(t *testing.T) {
	run := func(noWin bool) (string, Stats) {
		m, err := New(Config{Procs: 8, Topo: topo.Bus, Seed: 1, MaxSteps: 30000, NoSpinWindows: noWin})
		if err != nil {
			t.Fatal(err)
		}
		lock := m.AllocShared(1)
		m.Poke(lock, 1) // held forever: the storm can never win
		runErr := m.Run(func(p *Proc) {
			p.SpinTAS(lock, Backoff{})
		})
		if !errors.Is(runErr, sim.ErrStepLimit) {
			t.Fatalf("want ErrStepLimit, got %v", runErr)
		}
		st := m.Stats()
		st.WindowOps = 0
		return runErr.Error(), st
	}
	onMsg, onStats := run(false)
	offMsg, offStats := run(true)
	if onMsg != offMsg {
		t.Errorf("livelock errors diverged:\n on:  %s\n off: %s", onMsg, offMsg)
	}
	if !reflect.DeepEqual(onStats, offStats) {
		t.Errorf("livelock stats diverged:\n on:  %+v\n off: %+v", onStats, offStats)
	}
	if !strings.Contains(onMsg, "step limit") {
		t.Errorf("unexpected error text: %s", onMsg)
	}
}

// TestSpinWindowPooledReset pins that Reset clears every piece of
// window state: a machine that just ran a heavy storm must reproduce a
// fresh machine's results exactly, including the window decisions.
func TestSpinWindowPooledReset(t *testing.T) {
	cfg := Config{Procs: 16, Topo: topo.Bus, Seed: 9}
	fresh, freshWin := runStorm(t, cfg, 15, rawTAS)

	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the machine with a different storm, then Reset and re-run
	// the reference workload on the same machine via the same helper
	// path (reconstructing state by hand would miss scratch buffers).
	lock := m.AllocShared(1)
	if err := m.Run(func(p *Proc) { p.SpinTAS(lock, Backoff{}); p.Store(lock, 0) }); err != nil {
		t.Fatal(err)
	}
	if err := m.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	lock2 := m.AllocShared(1)
	counter2 := m.AllocShared(1)
	pos := make([]uint64, m.Procs())
	if err := m.Run(func(p *Proc) {
		rng := p.RNG()
		for it := 0; it < 15; it++ {
			p.Delay(rng.ExpTime(50))
			rawTAS(p, lock2)
			v := p.Load(counter2)
			p.Delay(25)
			p.Store(counter2, v+1)
			p.Store(lock2, 0)
		}
		pos[p.ID()] = rng.Uint64()
	}); err != nil {
		t.Fatal(err)
	}
	reset := stormResult{Stats: m.Stats(), RNGPos: pos, Counter: m.Peek(counter2)}
	resetWin := reset.Stats.WindowOps
	reset.Stats.WindowOps = 0
	if !reflect.DeepEqual(fresh, reset) {
		t.Errorf("reset machine diverged from fresh:\n fresh: %+v\n reset: %+v", fresh, reset)
	}
	if freshWin != resetWin {
		t.Errorf("window decisions diverged after Reset: fresh %d, reset %d", freshWin, resetWin)
	}
}
