package machine

import (
	"repro/internal/sim"
	"repro/internal/topo"
)

// This file is the engine-level spin-wait machinery. A spinning
// processor used to replay its wait loop in its own goroutine: every
// failed probe cost one engine event plus one baton handoff (a channel
// send and a scheduler switch) to resume the goroutine, re-test, and
// issue the next probe. Under a raw test&set storm — the paper's central
// workload — almost every probe crosses a pending event, so the handoff
// dominated host time (BENCH_sim.json: ~2.5% of lock/tas ops retired
// inline).
//
// SpinTAS, SpinTTAS, SpinUntilPred (and the SpinUntil* wrappers) instead
// park the goroutine once and hand the wait to a per-processor spin
// state machine executed inside the drive loop. Each EvSpin event
// advances the machine by exactly the operations the goroutine loop
// would have performed at that moment — same side effects, same
// scheduling calls, same livelock-budget charges, same RNG draws, in the
// same order — so cycle counts, traffic counters, and the interleaving
// of all processors are bit-identical to probe-by-probe execution (the
// determinism regression tests in internal/simsync pin this). The only
// difference is host-side: the goroutine is resumed once, when the wait
// is over, instead of once per probe.
//
// On top of that, runs of failed probes whose schedule is deterministic
// and draw-free (raw test&set, fixed backoff) are charged in closed
// form: k probes collapse into O(1) counter arithmetic whenever the
// probe period is constant and no pending event or budget boundary falls
// inside the run (see spinBatchTAS).

// PredOp selects the comparison a Pred applies.
type PredOp uint8

const (
	// PredEq holds when the (masked) value equals Want.
	PredEq PredOp = iota
	// PredNe holds when the (masked) value differs from Want.
	PredNe
	// PredGt holds when the (masked) value exceeds Want.
	PredGt
)

// Pred is a data-encoded spin predicate: it describes the wait condition
// without a closure, so registering it in the per-processor spin state
// allocates nothing. A zero Mask means "no mask" (compare the whole
// word).
type Pred struct {
	Op   PredOp
	Mask Word
	Want Word
}

// Holds reports whether the predicate is satisfied by v.
func (pr Pred) Holds(v Word) bool {
	if pr.Mask != 0 {
		v &= pr.Mask
	}
	switch pr.Op {
	case PredNe:
		return v != pr.Want
	case PredGt:
		return v > pr.Want
	default:
		return v == pr.Want
	}
}

// Backoff describes the deterministic delay schedule between failed
// test&set probes. The zero value means "retry immediately" (the raw
// test&set storm). With Base > 0, each failed probe is followed by a
// delay of cur, where cur starts at Base and doubles up to Cap;
// Cap <= Base keeps the delay fixed. PropJitter additionally draws
// RNG().Time(cur) on top of each delay (Anderson-style proportional
// jitter).
type Backoff struct {
	Base       sim.Time
	Cap        sim.Time
	PropJitter bool
}

// Spin-wait kinds.
const (
	spinRead uint8 = iota // read probes: cached watch on Bus, polling on remote NUMA
	spinTAS               // test&set probes with a Backoff schedule
	spinTTAS              // read-spin until the predicate holds, then one test&set; repeat
)

// Spin state-machine phases. Each phase names the next operation to
// perform; a phase boundary is exactly a resumption point of the
// equivalent goroutine loop.
const (
	spReadIssue uint8 = iota // issue a charged load of addr
	spReadJudge              // load completed: evaluate the predicate
	spTASIssue               // issue a charged test&set of addr
	spTASJudge               // test&set completed: evaluate the outcome
)

// spinState is the per-processor wait descriptor. It lives by value in
// the Proc and is reused across waits, so entering a spin allocates
// nothing.
type spinState struct {
	active bool
	kind   uint8
	phase  uint8
	poll   bool // remote word on a module machine: periodic polling instead of watching
	// winStatic is the spin-entry-time half of cross-processor window
	// eligibility (window.go): a draw-free raw or fixed-backoff
	// test&set on a model with a serializing resource. The dynamic
	// half — the last probe read non-zero — is tracked in the
	// machine's eligibility mask at each issue.
	winStatic bool
	// winService is this spinner's probe service time on the
	// serializing resource (BusLatency, or LocalMem plus the declared
	// distance-class traversal to the probed word's home module),
	// cached at spin entry so the window detector never recomputes the
	// topology's hop price per scan. Valid only while winStatic.
	winService sim.Time
	addr      Addr
	pred      Pred
	bo        Backoff
	cur       sim.Time // current backoff delay
	pollEvery sim.Time // base poll spacing (topology-priced; set when poll)
	// deadline, when non-zero, bounds a test&set wait: the spin gives
	// up at the first probe boundary at or past it (SpinTASFor). A
	// deadline spin is never window- or batch-eligible — the closed
	// forms would fast-forward past the give-up point.
	deadline sim.Time
	val      Word // last probed value; the spin's result
}

func (s *spinState) holds(v Word) bool {
	return s.pred.Holds(v)
}

// nextDelay computes the post-failure delay and advances the backoff
// schedule, drawing jitter from the processor's RNG in exactly the order
// the goroutine loop would have.
func (s *spinState) nextDelay(p *Proc) sim.Time {
	d := s.cur
	if s.bo.PropJitter {
		d += p.rng.Time(s.cur)
	}
	if s.cur < s.bo.Cap {
		s.cur *= 2
		if s.cur > s.bo.Cap {
			s.cur = s.bo.Cap
		}
	}
	return d
}

// spinBegin enters a machine-driven spin wait on the calling processor's
// goroutine. The state machine runs inline until the wait either
// completes (every probe retired on the fast path — the uncontended
// case, which schedules no event and performs no handoff, exactly like
// the goroutine loop it replaces) or must wait for an event, in which
// case the goroutine drives the engine like any blocked processor and
// returns when its spin completes.
func (p *Proc) spinBegin(kind uint8, a Addr, pr Pred, bo Backoff, deadline sim.Time) Word {
	s := &p.spin
	s.active = true
	s.kind = kind
	s.addr = a
	s.pred = pr
	s.bo = bo
	s.cur = bo.Base
	s.poll = false
	s.deadline = deadline
	if deadline > 0 {
		// A timed-out wait reports the last probed value; seed it
		// non-zero so a deadline already in the past reads as failure
		// without issuing a probe.
		s.val = 1
	}
	if kind != spinTAS && p.m.disc == topo.Modules {
		if mod := p.m.home(a); mod != p.id {
			s.poll = true
			s.pollEvery = p.m.topo.PollSpacing(p.id, mod, p.m.tm)
		}
	}
	s.winStatic = deadline == 0 && p.m.winStatic(p, kind, a, bo)
	s.phase = spReadIssue
	if kind == spinTAS {
		s.phase = spTASIssue
	}
	if !p.m.spinAdvance(p) {
		p.m.drive(p)
	}
	s.active = false
	if s.winStatic {
		p.m.setWinMask(p.id, false) // the wait is over; no probe is pending
	}
	p.blockedOn = ""
	return s.val
}

// spinComplete mirrors Proc.complete for an operation issued by the spin
// state machine: retire inline when no pending event precedes the
// completion (charging the livelock budget), otherwise schedule the
// continuation as an EvSpin at the completion time. The scheduling
// decision, charge, and event timestamp are identical to the goroutine
// path; only the event kind differs, which the engine orders identically.
func (p *Proc) spinComplete(lat sim.Time, next uint8) bool {
	target := p.localNow + lat
	eng := p.m.eng
	if nxt, ok := eng.NextTime(); !ok || nxt > target {
		if !eng.ChargeStep() {
			p.localNow = target
			p.m.stats.InlineOps++
			p.spin.phase = next
			return true
		}
	}
	p.spin.phase = next
	eng.AtEvent(target, sim.EvSpin, int32(p.id), int32(p.spin.addr))
	return false
}

// spinAdvance runs p's spin state machine until it completes (returns
// true: the processor's program resumes at p.localNow) or must wait for
// an engine event or a write to the watched word (returns false). It is
// called from the drive loop when an EvSpin fires, and once at spin
// entry on the processor's own goroutine.
func (m *Machine) spinAdvance(p *Proc) bool {
	s := &p.spin
	for {
		switch s.phase {
		case spReadIssue:
			p.blockedOn = "spin"
			v, lat := p.loadIssue(s.addr)
			s.val = v
			if !p.spinComplete(lat, spReadJudge) {
				return false
			}
		case spReadJudge:
			if s.holds(s.val) {
				if s.kind == spinTTAS {
					s.phase = spTASIssue
					continue
				}
				return true
			}
			if s.poll {
				// Remote word on a module machine: no cache to spin in,
				// so poll the module with jitter at the spacing the
				// topology prices for this distance.
				jitter := p.rng.Time(s.pollEvery/2 + 1)
				if !p.spinComplete(s.pollEvery+jitter, spReadIssue) {
					return false
				}
				continue
			}
			// A write may have committed while our load was in flight. A
			// real snooping cache would have observed that invalidation,
			// so recheck the committed value before parking and pay a
			// normal re-read if it changed.
			if s.holds(m.mem[s.addr]) {
				s.phase = spReadIssue
				continue
			}
			p.watchRegister(s.addr)
			s.phase = spReadIssue // a write wakes us into a charged re-read
			return false
		case spTASIssue:
			p.blockedOn = "spin"
			if s.deadline > 0 && p.localNow >= s.deadline {
				return true // out of time: s.val is non-zero, the wait failed
			}
			if s.kind == spinTAS {
				m.spinBatchTAS(p)
			}
			old, lat := p.tasIssue(s.addr)
			s.val = old
			if s.winStatic {
				// Keep the window-eligibility mask current: the probe
				// in flight is batchable iff it read a non-zero value
				// (a zero read means this spinner wins at the judge).
				m.setWinMask(p.id, old != 0)
			}
			if !p.spinComplete(lat, spTASJudge) {
				return false
			}
		case spTASJudge:
			if s.val == 0 {
				return true // test&set won the word
			}
			if s.kind == spinTTAS {
				s.phase = spReadIssue // lock still held: back to the cached read spin
				continue
			}
			if s.bo.Base > 0 {
				if !p.spinComplete(s.nextDelay(p), spTASIssue) {
					// The delay scheduled as its own event: the pending
					// entry is now an issue, not a probe completion, so
					// the spinner is not window-batchable until the
					// next issue re-evaluates the mask.
					if s.winStatic {
						m.setWinMask(p.id, false)
					}
					return false
				}
				continue
			}
			s.phase = spTASIssue // raw storm: retry immediately
		}
	}
}

// spinBatchTAS charges a run of failed test&set probes in closed form.
// It applies only when every probe in the run is provably identical —
// draw-free constant backoff, predicate-failing steady value, no
// watchers to wake, and a memory system in steady state (the processor
// already owns the word on Bus; the module port is idle on NUMA) — and
// only up to the first pending event or livelock-budget boundary, where
// the normal probe-by-probe path takes over. Within those bounds the
// per-probe effects are pure arithmetic on the counters, so k probes
// collapse into O(1) work with bit-identical results.
func (m *Machine) spinBatchTAS(p *Proc) {
	s := &p.spin
	// Backoff must be draw-free and no longer growing; a deadline spin
	// must judge its give-up point at every probe boundary, so it is
	// never batched.
	if s.deadline != 0 || s.bo.PropJitter || (s.bo.Base > 0 && s.cur < s.bo.Cap) {
		return
	}
	a := s.addr
	if m.mem[a] == 0 || m.watchHead[a] != 0 {
		return // the next probe may succeed, or writes must wake watchers
	}
	var lat sim.Time
	remote := false
	switch m.disc {
	case topo.SnoopingBus:
		if m.owner[a] != int16(p.id)+1 {
			return // first probe still needs a bus transaction
		}
		lat = m.cfg.CacheHit
	case topo.Modules:
		mod := m.home(a)
		if m.modFreeAt[mod] > p.localNow {
			return // port still draining: occupancy is not yet steady
		}
		trav := m.topo.Traversal(p.id, mod, m.tm)
		if m.flt != nil {
			// Price the whole run at the degrade factor active now; the
			// fault-boundary clamp below guarantees the factor cannot
			// change inside the batched span.
			if f := m.flt.degradeFactor(mod, p.localNow); f > 1 {
				trav *= sim.Time(f)
			}
		}
		lat = m.cfg.LocalMem + trav
		remote = m.topo.Remote(p.id, mod)
	default:
		lat = 1
	}
	delay := sim.Time(0)
	charges := uint64(1) // the test&set completion
	if s.bo.Base > 0 {
		delay = s.cur
		charges = 2 // plus the backoff delay completion
	}
	period := lat + delay
	if period <= 0 {
		return
	}
	k := m.eng.ChargeBudget() / charges
	if next, ok := m.eng.NextTime(); ok {
		// Every per-probe completion must stay strictly before the next
		// pending event; the run's last completion is at localNow + k*period.
		span := int64(next - p.localNow - 1)
		if span < int64(period) {
			return
		}
		if byTime := uint64(span / int64(period)); byTime < k {
			k = byTime
		}
	}
	if m.flt != nil {
		// Likewise stay strictly before the next fault boundary, where
		// the degrade factor (and hence the per-probe latency) may
		// change. A pending crash is already an event, caught above;
		// clamping on every bound kind is merely conservative — a
		// shorter batch is always exact, the tail replays per-probe.
		if fb, ok := m.flt.nextBound(p.localNow); ok {
			span := int64(fb - p.localNow - 1)
			if span < int64(period) {
				return
			}
			if byTime := uint64(span / int64(period)); byTime < k {
				k = byTime
			}
		}
	}
	if k < 2 {
		return // not worth short-circuiting; the normal path handles it
	}
	// Apply k failed probes at once. mem[a] is already non-zero; the
	// test&set write of 1 is idempotent after the first probe.
	m.mem[a] = 1
	p.stats.RMWs += k
	if remote {
		p.stats.RemoteRefs += k
		m.stats.RemoteRefs += k
	}
	if m.disc == topo.Modules {
		mod := m.home(a)
		m.modFreeAt[mod] = p.localNow + sim.Time(k-1)*period + lat
	}
	m.eng.ChargeN(k * charges)
	m.stats.InlineOps += k * charges
	p.localNow += sim.Time(k) * period
}

// watchRegister appends p to the intrusive watcher list of addr; the
// next write to addr schedules its wake. Links are processor index + 1,
// zero-terminated (see Machine.watchHead).
func (p *Proc) watchRegister(a Addr) {
	p.blockedOn = "watch"
	p.blockedAddr = a
	link := int32(p.id) + 1
	p.watchNext = 0
	if tail := p.m.watchTail[a]; tail != 0 {
		p.m.procs[tail-1].watchNext = link
	} else {
		p.m.watchHead[a] = link
	}
	p.m.watchTail[a] = link
}

// ---------------------------------------------------------------------
// Public spin-wait API
// ---------------------------------------------------------------------

// SpinUntilPred blocks until pred holds for the word at a, returning the
// satisfying value. The cost model depends on the machine:
//
//   - Bus/Ideal: the classic cached spin. The first read may miss; while
//     the value is unchanged the spinner consumes no interconnect
//     bandwidth (it spins in its own cache); each write to the word
//     invalidates and forces a re-read, charged through the normal path.
//   - NUMA, word in another module: there is no cache to spin in, so the
//     processor polls the remote module every PollInterval cycles; every
//     poll is a remote reference. This is exactly why remote-spin
//     algorithms melt Butterfly-class machines.
//   - NUMA, word in this processor's module: local spin; watchers model
//     the (free) local re-check and each wakeup pays one local access.
//
// The wait itself is machine-driven: the processor's goroutine parks
// once and the engine replays the probes (see the package comment above).
func (p *Proc) SpinUntilPred(a Addr, pred Pred) Word {
	return p.spinBegin(spinRead, a, pred, Backoff{}, 0)
}

// SpinWhileEq is shorthand for spinning until the word differs from
// sentinel.
func (p *Proc) SpinWhileEq(a Addr, sentinel Word) Word {
	return p.spinBegin(spinRead, a, Pred{Op: PredNe, Want: sentinel}, Backoff{}, 0)
}

// SpinUntilEq is shorthand for spinning until the word equals want.
func (p *Proc) SpinUntilEq(a Addr, want Word) Word {
	return p.spinBegin(spinRead, a, Pred{Op: PredEq, Want: want}, Backoff{}, 0)
}

// SpinTAS repeatedly issues test&set on a until it returns 0 (the caller
// then holds the latch), applying the Backoff schedule between failed
// probes. With the zero Backoff this is the raw test&set storm: every
// probe is an atomic read-modify-write hammering the interconnect for as
// long as the word stays non-zero.
func (p *Proc) SpinTAS(a Addr, bo Backoff) {
	p.spinBegin(spinTAS, a, Pred{}, bo, 0)
}

// SpinTASFor is the bounded-wait form of SpinTAS: it gives up at the
// first probe boundary at or past the absolute deadline, reporting
// whether the latch was won. A wait whose deadline has already passed
// issues no probe and reports failure. Deadline waits replay
// probe-by-probe (no closed-form batching or windowing — the give-up
// point must be judged at every boundary), so they remain bit-identical
// across every execution path by construction.
func (p *Proc) SpinTASFor(a Addr, bo Backoff, deadline sim.Time) bool {
	if deadline <= 0 {
		deadline = 1 // a degenerate deadline in the past, never "unbounded"
	}
	return p.spinBegin(spinTAS, a, Pred{}, bo, deadline) == 0
}

// SpinTTAS is the test-and-test&set discipline: spin with ordinary reads
// until the word looks free (zero), then attempt one test&set; on
// failure, fall back to the read spin. Traffic drops from continuous to
// one burst per release.
func (p *Proc) SpinTTAS(a Addr) {
	p.spinBegin(spinTTAS, a, Pred{Op: PredEq, Want: 0}, Backoff{}, 0)
}
