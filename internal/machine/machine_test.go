package machine

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/topo"
)

func newTestMachine(t *testing.T, cfg Config) *Machine {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestLoadStoreRoundTrip(t *testing.T) {
	for _, model := range []topo.Topology{topo.Ideal, topo.Bus, topo.NUMA} {
		t.Run(model.Name(), func(t *testing.T) {
			m := newTestMachine(t, Config{Procs: 1, Topo: model})
			a := m.AllocShared(4)
			err := m.Run(func(p *Proc) {
				p.Store(a, 123)
				p.Store(a+1, 456)
				if v := p.Load(a); v != 123 {
					t.Errorf("Load(a) = %d, want 123", v)
				}
				if v := p.Load(a + 1); v != 456 {
					t.Errorf("Load(a+1) = %d, want 456", v)
				}
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
		})
	}
}

func TestAtomicOps(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 1, Topo: topo.Ideal})
	a := m.AllocShared(1)
	err := m.Run(func(p *Proc) {
		if old := p.TestAndSet(a); old != 0 {
			t.Errorf("first TestAndSet = %d, want 0", old)
		}
		if old := p.TestAndSet(a); old != 1 {
			t.Errorf("second TestAndSet = %d, want 1", old)
		}
		if old := p.FetchStore(a, 9); old != 1 {
			t.Errorf("FetchStore = %d, want 1", old)
		}
		if old := p.FetchAdd(a, 5); old != 9 {
			t.Errorf("FetchAdd = %d, want 9", old)
		}
		if v := p.Load(a); v != 14 {
			t.Errorf("after FetchAdd = %d, want 14", v)
		}
		if p.CompareAndSwap(a, 13, 99) {
			t.Error("CAS with wrong expected value succeeded")
		}
		if !p.CompareAndSwap(a, 14, 99) {
			t.Error("CAS with right expected value failed")
		}
		if v := p.Load(a); v != 99 {
			t.Errorf("after CAS = %d, want 99", v)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// FetchAdd from many processors must never lose an increment regardless
// of interleaving: the simulated memory is sequentially consistent.
func TestFetchAddAtomicityAcrossProcs(t *testing.T) {
	for _, model := range []topo.Topology{topo.Ideal, topo.Bus, topo.NUMA} {
		t.Run(model.Name(), func(t *testing.T) {
			const procs, iters = 8, 200
			m := newTestMachine(t, Config{Procs: procs, Topo: model})
			a := m.AllocShared(1)
			err := m.Run(func(p *Proc) {
				for i := 0; i < iters; i++ {
					p.FetchAdd(a, 1)
					p.Delay(p.RNG().Time(5))
				}
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if got := m.Peek(a); got != procs*iters {
				t.Fatalf("counter = %d, want %d", got, procs*iters)
			}
		})
	}
}

func TestBusCoherenceTrafficAccounting(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 2, Topo: topo.Bus})
	a := m.AllocShared(1)
	flag := m.AllocShared(1)
	bodies := []func(p *Proc){
		func(p *Proc) {
			p.Store(a, 7)    // miss: 1 txn (exclusive)
			p.Store(a, 8)    // hit: owner writes again, 0 txns
			p.Store(flag, 1) // miss: 1 txn
			p.SpinUntilEq(flag, 2)
			p.Load(a) // P1 wrote a meanwhile -> our copy invalid -> miss
		},
		func(p *Proc) {
			p.SpinUntilEq(flag, 1)
			p.Load(a)     // miss: downgrade P0 to shared
			p.Load(a)     // hit
			p.Store(a, 9) // upgrade: 1 txn, invalidates P0
			p.Store(flag, 2)
		},
	}
	if err := m.RunEach(bodies); err != nil {
		t.Fatalf("RunEach: %v", err)
	}
	st := m.Stats()
	if st.BusTxns == 0 {
		t.Fatal("no bus transactions recorded")
	}
	// P0: store-miss(a) + store(flag) + spin first-load(flag) + invalidated
	// re-reads. The exact count depends on spin wakeups, but the hit cases
	// must not have generated traffic: bound the total.
	if st.BusTxns > 12 {
		t.Fatalf("bus transactions = %d, expected <= 12 (hits charged as misses?)", st.BusTxns)
	}
	if m.Peek(a) != 9 {
		t.Fatalf("final a = %d, want 9", m.Peek(a))
	}
}

func TestBusReadHitAfterRead(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 1, Topo: topo.Bus})
	a := m.AllocShared(1)
	var txnsAfterFirst, txnsAfterSecond uint64
	err := m.Run(func(p *Proc) {
		p.Load(a)
		txnsAfterFirst = p.stats.BusTxns
		p.Load(a)
		txnsAfterSecond = p.stats.BusTxns
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if txnsAfterFirst != 1 {
		t.Fatalf("first load caused %d txns, want 1 (cold miss)", txnsAfterFirst)
	}
	if txnsAfterSecond != 1 {
		t.Fatalf("second load caused %d total txns, want 1 (hit)", txnsAfterSecond)
	}
}

func TestNUMARemoteRefAccounting(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 4, Topo: topo.NUMA})
	local := m.AllocLocal(0, 1)
	bodies := make([]func(p *Proc), 4)
	bodies[0] = func(p *Proc) {
		p.Store(local, 1) // local: no remote ref
		p.Load(local)
	}
	for i := 1; i < 4; i++ {
		bodies[i] = func(p *Proc) {
			p.Load(local) // remote: 1 remote ref each
		}
	}
	if err := m.RunEach(bodies); err != nil {
		t.Fatalf("RunEach: %v", err)
	}
	st := m.Stats()
	if st.PerProc[0].RemoteRefs != 0 {
		t.Fatalf("P0 made %d remote refs to its own module", st.PerProc[0].RemoteRefs)
	}
	if st.RemoteRefs != 3 {
		t.Fatalf("total remote refs = %d, want 3", st.RemoteRefs)
	}
}

func TestNUMARemoteCostsMore(t *testing.T) {
	mLocal := newTestMachine(t, Config{Procs: 2, Topo: topo.NUMA})
	aLocal := mLocal.AllocLocal(0, 1)
	var localElapsed sim.Time
	err := mLocal.RunEach([]func(p *Proc){
		func(p *Proc) {
			start := p.Now()
			for i := 0; i < 100; i++ {
				p.Load(aLocal)
			}
			localElapsed = p.Now() - start
		},
		func(p *Proc) {},
	})
	if err != nil {
		t.Fatalf("Run local: %v", err)
	}

	mRemote := newTestMachine(t, Config{Procs: 2, Topo: topo.NUMA})
	aRemote := mRemote.AllocLocal(1, 1)
	var remoteElapsed sim.Time
	err = mRemote.RunEach([]func(p *Proc){
		func(p *Proc) {
			start := p.Now()
			for i := 0; i < 100; i++ {
				p.Load(aRemote)
			}
			remoteElapsed = p.Now() - start
		},
		func(p *Proc) {},
	})
	if err != nil {
		t.Fatalf("Run remote: %v", err)
	}
	if remoteElapsed <= localElapsed*2 {
		t.Fatalf("remote loads (%d cycles) not clearly dearer than local (%d)", remoteElapsed, localElapsed)
	}
}

func TestSpinUntilWakesOnStore(t *testing.T) {
	for _, model := range []topo.Topology{topo.Ideal, topo.Bus, topo.NUMA} {
		t.Run(model.Name(), func(t *testing.T) {
			m := newTestMachine(t, Config{Procs: 2, Topo: model})
			flag := m.AllocShared(1)
			var observed Word
			err := m.RunEach([]func(p *Proc){
				func(p *Proc) {
					observed = p.SpinUntilEq(flag, 42)
				},
				func(p *Proc) {
					p.Delay(500)
					p.Store(flag, 42)
				},
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if observed != 42 {
				t.Fatalf("SpinUntil returned %d, want 42", observed)
			}
		})
	}
}

func TestSpinUntilAlreadySatisfied(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 1, Topo: topo.Bus})
	flag := m.AllocShared(1)
	m.Poke(flag, 5)
	err := m.Run(func(p *Proc) {
		if v := p.SpinUntilEq(flag, 5); v != 5 {
			t.Errorf("SpinUntil = %d, want 5", v)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 2, Topo: topo.Bus})
	flag := m.AllocShared(1)
	err := m.RunEach([]func(p *Proc){
		func(p *Proc) { p.SpinUntilEq(flag, 1) }, // never satisfied
		func(p *Proc) {},
	})
	if err == nil {
		t.Fatal("expected deadlock error, got nil")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("error %q does not mention deadlock", err)
	}
	if !strings.Contains(err.Error(), "P0") {
		t.Fatalf("error %q does not name the blocked processor", err)
	}
}

func TestLivelockStepLimit(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 1, Topo: topo.NUMA, MaxSteps: 5000})
	// Remote spin on another module's word that never changes: endless polling.
	a := m.AllocShared(2)
	remote := a
	if m.home(remote) == 0 { // ensure the word is remote to P0... with 1 proc all is local
		// With one processor everything is local, so force livelock with Delay loop instead.
	}
	err := m.Run(func(p *Proc) {
		for {
			p.Delay(1)
		}
	})
	if err == nil {
		t.Fatal("expected step-limit error")
	}
	if !strings.Contains(err.Error(), "limit") {
		t.Fatalf("error %q does not mention the step limit", err)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() Stats {
		m, err := New(Config{Procs: 8, Topo: topo.Bus, Seed: 99})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		lock := m.AllocShared(1)
		count := m.AllocShared(1)
		err = m.Run(func(p *Proc) {
			for i := 0; i < 50; i++ {
				for p.TestAndSet(lock) != 0 {
					p.Delay(p.RNG().Time(20) + 1)
				}
				v := p.Load(count)
				p.Delay(3)
				p.Store(count, v+1)
				p.Store(lock, 0)
				p.Delay(p.RNG().Time(10))
			}
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if got := m.Peek(count); got != 8*50 {
			t.Fatalf("mutual exclusion violated: count = %d, want %d", got, 8*50)
		}
		return m.Stats()
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.BusTxns != b.BusTxns || a.Events != b.Events {
		t.Fatalf("replay diverged: %+v vs %+v", a, b)
	}
	for i := range a.PerProc {
		if a.PerProc[i] != b.PerProc[i] {
			t.Fatalf("replay diverged at P%d: %+v vs %+v", i, a.PerProc[i], b.PerProc[i])
		}
	}
}

func TestAllocSharedBounds(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 1, SharedWords: 8})
	m.AllocShared(8)
	defer func() {
		if recover() == nil {
			t.Fatal("over-allocation did not panic")
		}
	}()
	m.AllocShared(1)
}

func TestAllocLocalBounds(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 2, LocalWords: 4})
	a0 := m.AllocLocal(0, 4)
	a1 := m.AllocLocal(1, 4)
	if m.home(a0) != 0 || m.home(a1) != 1 {
		t.Fatalf("local homes wrong: home(a0)=%d home(a1)=%d", m.home(a0), m.home(a1))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("local over-allocation did not panic")
		}
	}()
	m.AllocLocal(0, 1)
}

func TestSharedHomeInterleaved(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 4, Topo: topo.NUMA})
	a := m.AllocShared(8)
	seen := map[int]bool{}
	for i := Addr(0); i < 8; i++ {
		seen[m.home(a+i)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("shared region maps to %d modules, want 4 (interleaving broken)", len(seen))
	}
}

func TestPtrWordRoundTrip(t *testing.T) {
	f := func(raw int32) bool {
		if raw < 0 {
			raw = -raw
		}
		a := Addr(raw % (1 << 20))
		return WordPtr(PtrWord(a)) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if WordPtr(0) != NilAddr {
		t.Fatal("WordPtr(0) != NilAddr")
	}
}

func TestPokeAfterRunPanics(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 1})
	a := m.AllocShared(1)
	if err := m.Run(func(p *Proc) {}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Poke after Run did not panic")
		}
	}()
	m.Poke(a, 1)
}

func TestRunTwiceFails(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 1})
	if err := m.Run(func(p *Proc) {}); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	if err := m.Run(func(p *Proc) {}); err == nil {
		t.Fatal("second Run did not fail")
	}
}

func TestRunEachLengthMismatch(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 2})
	if err := m.RunEach([]func(p *Proc){func(p *Proc) {}}); err == nil {
		t.Fatal("RunEach with wrong body count did not fail")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Procs: 65, Topo: topo.Bus}); err == nil {
		t.Fatal("bus with 65 procs accepted")
	}
	if _, err := New(Config{Procs: 2000, Topo: topo.NUMA}); err == nil {
		t.Fatal("2000 procs accepted")
	}
	if _, err := New(Config{Procs: -1}); err == nil {
		t.Fatal("negative procs accepted")
	}
}

func TestTrafficForModel(t *testing.T) {
	s := Stats{BusTxns: 10, RemoteRefs: 20, Loads: 1, Stores: 2, RMWs: 3}
	if s.TrafficFor(topo.Bus) != 10 {
		t.Fatal("TrafficFor(topo.Bus)")
	}
	if s.TrafficFor(topo.NUMA) != 20 {
		t.Fatal("TrafficFor(topo.NUMA)")
	}
	if s.TrafficFor(topo.Ideal) != 6 {
		t.Fatal("TrafficFor(topo.Ideal)")
	}
}

func TestDelayAdvancesClock(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 1, Topo: topo.Ideal})
	var before, after sim.Time
	err := m.Run(func(p *Proc) {
		before = p.Now()
		p.Delay(100)
		after = p.Now()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if after-before != 100 {
		t.Fatalf("Delay(100) advanced %d cycles", after-before)
	}
}

// Sequential consistency oracle: a random program of loads/stores per
// processor on disjoint addresses must read back exactly what it wrote.
func TestMemoryPerProcOracle(t *testing.T) {
	f := func(seed uint64, opsRaw uint8) bool {
		ops := int(opsRaw%64) + 1
		m, err := New(Config{Procs: 4, Topo: topo.Bus, Seed: seed | 1})
		if err != nil {
			return false
		}
		base := m.AllocShared(4 * 8)
		ok := true
		err = m.Run(func(p *Proc) {
			mine := base + Addr(p.ID()*8)
			shadow := make([]Word, 8)
			rng := p.RNG()
			for i := 0; i < ops; i++ {
				slot := Addr(rng.Intn(8))
				if rng.Intn(2) == 0 {
					v := Word(rng.Uint64())
					p.Store(mine+slot, v)
					shadow[slot] = v
				} else {
					if got := p.Load(mine + slot); got != shadow[slot] {
						ok = false
					}
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
