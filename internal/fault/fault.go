// Package fault describes deterministic fault plans for the simulated
// machine: processor stalls (preemption windows), processor crashes
// (with optional restarts — the crash-recovery model), and transient
// memory-module degradation intervals.
//
// A Plan is pure data. It draws nothing at simulation time — a plan is
// either built explicitly (NewPlan().WithStall(...)...) or generated
// up front by Generate from a seed on its own RNG stream, independent
// of every algorithm and machine stream. The same plan attached to the
// same machine.Config therefore yields bit-identical runs, and the
// machine's spin-window A/B invariant (windows on/off produce the same
// Stats) holds under any plan.
//
// Entries that do not apply to a given machine — a processor index at
// or above Procs, a module index at or above the topology's module
// count, an empty interval (End <= Start), or a degrade factor <= 1 —
// are inert: the machine skips them when it compiles the plan, so one
// plan can be reused across machine sizes.
package fault

import (
	"fmt"

	"repro/internal/sim"
)

// Stall suspends event delivery to one processor for [Start, End):
// every dispatch or spin event addressed to the processor inside the
// window is retimed to End. It models an OS preemption of the thread
// pinned to that processor — memory the processor holds stays held,
// in-flight operations complete, but it makes no forward progress
// until the window closes.
type Stall struct {
	Proc       int
	Start, End sim.Time
}

// Crash removes a processor at time At. Its pending events are
// dropped, and any words it holds are never released — the survivors'
// behavior under that loss is the point. Without a matching Restart
// entry the crash is permanent (fail-stop); with one, the processor is
// reborn at the restart instant with reset proc-local state.
type Crash struct {
	Proc int
	At   sim.Time
}

// Restart rebirths a crashed processor at time At: the machine
// re-registers it at the recovery entry point (the top of its program
// body) with fresh proc-local state — spin state, watch registrations,
// and the derived RNG stream all reset as at boot. Nothing is released
// on its behalf: words the dead incarnation held stay held until some
// protocol reclaims them. A Restart with no earlier Crash of the same
// processor is inert.
type Restart struct {
	Proc int
	At   sim.Time
}

// Degrade scales one memory module's traversal cost by Factor for
// [Start, End): a slow link, a contended router port, a thermal
// throttle. Only the network-traversal term is scaled, and only on
// module-based (Modules discipline) topologies; local references and
// bus machines are unaffected.
type Degrade struct {
	Module     int
	Start, End sim.Time
	Factor     int
}

// Plan is an immutable fault schedule. Build one with NewPlan and the
// With* methods (which mutate and return the same plan, builder
// style), or draw one with Generate. Attach it via
// machine.Config.Faults; the machine treats the entry slices as
// read-only, so a plan may be shared across machines and runs.
type Plan struct {
	name     string
	stalls   []Stall
	crashes  []Crash
	restarts []Restart
	degrades []Degrade
}

// NewPlan returns an empty named plan.
func NewPlan(name string) *Plan { return &Plan{name: name} }

// WithStall appends a stall window.
func (p *Plan) WithStall(proc int, start, end sim.Time) *Plan {
	p.stalls = append(p.stalls, Stall{Proc: proc, Start: start, End: end})
	return p
}

// WithCrash appends a permanent processor crash.
func (p *Plan) WithCrash(proc int, at sim.Time) *Plan {
	p.crashes = append(p.crashes, Crash{Proc: proc, At: at})
	return p
}

// WithRestart appends a processor rebirth. It only takes effect when
// the plan also crashes the same processor at an earlier instant.
func (p *Plan) WithRestart(proc int, at sim.Time) *Plan {
	p.restarts = append(p.restarts, Restart{Proc: proc, At: at})
	return p
}

// WithDegrade appends a module degradation interval.
func (p *Plan) WithDegrade(module int, start, end sim.Time, factor int) *Plan {
	p.degrades = append(p.degrades, Degrade{Module: module, Start: start, End: end, Factor: factor})
	return p
}

// Name returns the plan's label (used in experiment tables and test
// names).
func (p *Plan) Name() string {
	if p == nil {
		return "none"
	}
	return p.name
}

// Empty reports whether the plan schedules no faults at all.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.stalls) == 0 && len(p.crashes) == 0 &&
		len(p.restarts) == 0 && len(p.degrades) == 0)
}

// Stalls returns the stall entries. Callers must not mutate.
func (p *Plan) Stalls() []Stall { return p.stalls }

// Crashes returns the crash entries. Callers must not mutate.
func (p *Plan) Crashes() []Crash { return p.crashes }

// Restarts returns the restart entries. Callers must not mutate.
func (p *Plan) Restarts() []Restart { return p.restarts }

// Degrades returns the degrade entries. Callers must not mutate.
func (p *Plan) Degrades() []Degrade { return p.degrades }

// PlanError is the typed error Plan.Validate returns: one inconsistent
// entry, identified by kind and position.
type PlanError struct {
	Kind   string // "stall", "crash", "restart", "degrade"
	Index  int
	Reason string
}

func (e *PlanError) Error() string {
	return fmt.Sprintf("fault: plan %s[%d]: %s", e.Kind, e.Index, e.Reason)
}

// Validate checks a plan for internal consistency: non-negative
// indices and times, non-empty intervals, degrade factors >= 2, and —
// the crash-recovery rule — every restart paired with an earlier crash
// of the same processor. Entries that are merely inert on a given
// machine shape (an index beyond that machine's size) are fine;
// validation is machine-independent. The machine never calls this —
// attaching an unvalidated plan keeps the documented skip-inert
// semantics — but generated plans always pass, and harness/cmd paths
// validate what they build.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for i, s := range p.stalls {
		switch {
		case s.Proc < 0:
			return &PlanError{Kind: "stall", Index: i, Reason: "negative processor index"}
		case s.Start < 0:
			return &PlanError{Kind: "stall", Index: i, Reason: "negative start"}
		case s.End <= s.Start:
			return &PlanError{Kind: "stall", Index: i, Reason: fmt.Sprintf("empty interval [%d, %d)", s.Start, s.End)}
		}
	}
	for i, c := range p.crashes {
		switch {
		case c.Proc < 0:
			return &PlanError{Kind: "crash", Index: i, Reason: "negative processor index"}
		case c.At < 0:
			return &PlanError{Kind: "crash", Index: i, Reason: "negative instant"}
		}
	}
	for i, r := range p.restarts {
		if r.Proc < 0 {
			return &PlanError{Kind: "restart", Index: i, Reason: "negative processor index"}
		}
		ok := false
		for _, c := range p.crashes {
			if c.Proc == r.Proc && c.At < r.At {
				ok = true
				break
			}
		}
		if !ok {
			return &PlanError{Kind: "restart", Index: i,
				Reason: fmt.Sprintf("processor %d has no crash before t=%d to recover from", r.Proc, r.At)}
		}
	}
	for i, d := range p.degrades {
		switch {
		case d.Module < 0:
			return &PlanError{Kind: "degrade", Index: i, Reason: "negative module index"}
		case d.Start < 0:
			return &PlanError{Kind: "degrade", Index: i, Reason: "negative start"}
		case d.End <= d.Start:
			return &PlanError{Kind: "degrade", Index: i, Reason: fmt.Sprintf("empty interval [%d, %d)", d.Start, d.End)}
		case d.Factor < 2:
			return &PlanError{Kind: "degrade", Index: i, Reason: fmt.Sprintf("factor %d is a no-op", d.Factor)}
		}
	}
	return nil
}

// Spec sizes a generated plan. Zero counts mean none of that fault
// kind; zero interval bounds fall back to sensible defaults relative
// to Horizon.
type Spec struct {
	// Procs and Modules bound the indices drawn; both must be > 0 for
	// the corresponding fault kinds to be drawn.
	Procs   int
	Modules int
	// Horizon is the time span faults are drawn in: starts land in
	// [0, Horizon).
	Horizon sim.Time

	// Stalls is the number of stall windows to draw; their lengths are
	// uniform in [StallMin, StallMax] (defaults Horizon/50, Horizon/10).
	Stalls   int
	StallMin sim.Time
	StallMax sim.Time

	// Crashes is the number of distinct processors to crash. It is
	// clamped to Procs-1 so at least one processor survives.
	Crashes int

	// Restarts is how many of the crashed processors come back
	// (clamped to the drawn crash count): the first Restarts crash
	// victims in draw order are reborn a uniform delay in
	// [RestartDelayMin, RestartDelayMax] after their crash instant
	// (same defaults as stall lengths).
	Restarts        int
	RestartDelayMin sim.Time
	RestartDelayMax sim.Time

	// Degrades is the number of module-degradation intervals; their
	// lengths are uniform in [DegradeMin, DegradeMax] (same defaults as
	// stalls) and factors uniform in [2, FactorMax] (default 8).
	Degrades   int
	DegradeMin sim.Time
	DegradeMax sim.Time
	FactorMax  int
}

// SpecError is the typed error Spec.Validate returns: one degenerate
// field and why it was rejected.
type SpecError struct {
	Field  string
	Reason string
}

func (e *SpecError) Error() string {
	return "fault: spec." + e.Field + ": " + e.Reason
}

// Validate rejects degenerate specs with a *SpecError: negative counts
// or times, inverted interval ranges (a stall/degrade length range
// with Max set below Min would otherwise silently produce zero-length
// or default-length intervals), a degrade FactorMax of 1 (a no-op
// factor), and more Restarts than Crashes. Over-asked crash counts are
// NOT an error: Generate clamps Crashes to Procs-1 (at least one
// survivor) and Restarts to the drawn crash count, and both clamps are
// documented behavior.
func (sp Spec) Validate() error {
	if sp.Procs < 0 {
		return &SpecError{Field: "Procs", Reason: "negative"}
	}
	if sp.Modules < 0 {
		return &SpecError{Field: "Modules", Reason: "negative"}
	}
	if sp.Horizon < 0 {
		return &SpecError{Field: "Horizon", Reason: "negative"}
	}
	if sp.Stalls < 0 {
		return &SpecError{Field: "Stalls", Reason: "negative count"}
	}
	if sp.Crashes < 0 {
		return &SpecError{Field: "Crashes", Reason: "negative count"}
	}
	if sp.Restarts < 0 {
		return &SpecError{Field: "Restarts", Reason: "negative count"}
	}
	if sp.Degrades < 0 {
		return &SpecError{Field: "Degrades", Reason: "negative count"}
	}
	if sp.StallMin < 0 || sp.StallMax < 0 {
		return &SpecError{Field: "StallMin/StallMax", Reason: "negative bound"}
	}
	if sp.Stalls > 0 && sp.StallMax > 0 && sp.StallMax < sp.StallMin {
		return &SpecError{Field: "StallMax",
			Reason: fmt.Sprintf("%d below StallMin %d: empty length range", sp.StallMax, sp.StallMin)}
	}
	if sp.Restarts > sp.Crashes {
		return &SpecError{Field: "Restarts",
			Reason: fmt.Sprintf("%d exceeds Crashes %d: nothing to recover", sp.Restarts, sp.Crashes)}
	}
	if sp.RestartDelayMin < 0 || sp.RestartDelayMax < 0 {
		return &SpecError{Field: "RestartDelayMin/RestartDelayMax", Reason: "negative bound"}
	}
	if sp.Restarts > 0 && sp.RestartDelayMax > 0 && sp.RestartDelayMax < sp.RestartDelayMin {
		return &SpecError{Field: "RestartDelayMax",
			Reason: fmt.Sprintf("%d below RestartDelayMin %d: empty delay range", sp.RestartDelayMax, sp.RestartDelayMin)}
	}
	if sp.DegradeMin < 0 || sp.DegradeMax < 0 {
		return &SpecError{Field: "DegradeMin/DegradeMax", Reason: "negative bound"}
	}
	if sp.Degrades > 0 && sp.DegradeMax > 0 && sp.DegradeMax < sp.DegradeMin {
		return &SpecError{Field: "DegradeMax",
			Reason: fmt.Sprintf("%d below DegradeMin %d: empty length range", sp.DegradeMax, sp.DegradeMin)}
	}
	if sp.FactorMax == 1 || sp.FactorMax < 0 {
		return &SpecError{Field: "FactorMax",
			Reason: fmt.Sprintf("%d cannot scale anything (want 0 for the default, or >= 2)", sp.FactorMax)}
	}
	return nil
}

// Generate draws a plan from its own splitmix64 stream seeded by seed.
// The stream is private to the plan: generating a plan consumes no
// draws from any machine or processor RNG, so adding faults to a
// config perturbs nothing else about the run. A spec with Restarts: 0
// consumes exactly the draws it did before restarts existed, so plans
// generated by older callers are bit-identical.
//
// Generate panics with the *SpecError for specs Validate rejects;
// fault plans are experiment configuration, and a degenerate spec is a
// programming error on par with a bad machine.Config.
func Generate(name string, seed uint64, sp Spec) *Plan {
	if err := sp.Validate(); err != nil {
		panic(err)
	}
	p := NewPlan(name)
	rng := sim.NewRNG(seed)
	horizon := sp.Horizon
	if horizon <= 0 {
		horizon = 1 << 20
	}
	spanIn := func(min, max sim.Time, defMin, defMax sim.Time) sim.Time {
		if min <= 0 {
			min = defMin
		}
		if max < min {
			max = defMax
		}
		if max < min {
			max = min
		}
		return min + rng.Time(max-min+1)
	}
	defMin, defMax := horizon/50+1, horizon/10+1

	if sp.Procs > 0 {
		for i := 0; i < sp.Stalls; i++ {
			proc := rng.Intn(sp.Procs)
			start := rng.Time(horizon)
			length := spanIn(sp.StallMin, sp.StallMax, defMin, defMax)
			p.WithStall(proc, start, start+length)
		}
		crashes := sp.Crashes
		if crashes > sp.Procs-1 {
			crashes = sp.Procs - 1
		}
		// Distinct victims: rejection-sample over the small index space.
		crashed := make(map[int]bool, crashes)
		for len(crashed) < crashes {
			proc := rng.Intn(sp.Procs)
			if crashed[proc] {
				continue
			}
			crashed[proc] = true
			p.WithCrash(proc, rng.Time(horizon))
		}
		restarts := sp.Restarts
		if restarts > crashes {
			// Validate bounds Restarts by the requested Crashes; the
			// survivor clamp above can still shrink the drawn count.
			restarts = crashes
		}
		for i := 0; i < restarts; i++ {
			c := p.crashes[i]
			delay := spanIn(sp.RestartDelayMin, sp.RestartDelayMax, defMin, defMax)
			p.WithRestart(c.Proc, c.At+delay)
		}
	}
	if sp.Modules > 0 {
		factorMax := sp.FactorMax
		if factorMax < 2 {
			factorMax = 8
		}
		for i := 0; i < sp.Degrades; i++ {
			mod := rng.Intn(sp.Modules)
			start := rng.Time(horizon)
			length := spanIn(sp.DegradeMin, sp.DegradeMax, defMin, defMax)
			factor := 2 + rng.Intn(factorMax-1)
			p.WithDegrade(mod, start, start+length, factor)
		}
	}
	return p
}
