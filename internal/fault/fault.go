// Package fault describes deterministic fault plans for the simulated
// machine: processor stalls (preemption windows), permanent processor
// crashes, and transient memory-module degradation intervals.
//
// A Plan is pure data. It draws nothing at simulation time — a plan is
// either built explicitly (NewPlan().WithStall(...)...) or generated
// up front by Generate from a seed on its own RNG stream, independent
// of every algorithm and machine stream. The same plan attached to the
// same machine.Config therefore yields bit-identical runs, and the
// machine's spin-window A/B invariant (windows on/off produce the same
// Stats) holds under any plan.
//
// Entries that do not apply to a given machine — a processor index at
// or above Procs, a module index at or above the topology's module
// count, an empty interval (End <= Start), or a degrade factor <= 1 —
// are inert: the machine skips them when it compiles the plan, so one
// plan can be reused across machine sizes.
package fault

import "repro/internal/sim"

// Stall suspends event delivery to one processor for [Start, End):
// every dispatch or spin event addressed to the processor inside the
// window is retimed to End. It models an OS preemption of the thread
// pinned to that processor — memory the processor holds stays held,
// in-flight operations complete, but it makes no forward progress
// until the window closes.
type Stall struct {
	Proc       int
	Start, End sim.Time
}

// Crash permanently removes a processor at time At. Its pending events
// are dropped, it never runs again, and any words it holds are never
// released — the survivors' behavior under that loss is the point.
type Crash struct {
	Proc int
	At   sim.Time
}

// Degrade scales one memory module's traversal cost by Factor for
// [Start, End): a slow link, a contended router port, a thermal
// throttle. Only the network-traversal term is scaled, and only on
// module-based (Modules discipline) topologies; local references and
// bus machines are unaffected.
type Degrade struct {
	Module     int
	Start, End sim.Time
	Factor     int
}

// Plan is an immutable fault schedule. Build one with NewPlan and the
// With* methods (which mutate and return the same plan, builder
// style), or draw one with Generate. Attach it via
// machine.Config.Faults; the machine treats the entry slices as
// read-only, so a plan may be shared across machines and runs.
type Plan struct {
	name     string
	stalls   []Stall
	crashes  []Crash
	degrades []Degrade
}

// NewPlan returns an empty named plan.
func NewPlan(name string) *Plan { return &Plan{name: name} }

// WithStall appends a stall window.
func (p *Plan) WithStall(proc int, start, end sim.Time) *Plan {
	p.stalls = append(p.stalls, Stall{Proc: proc, Start: start, End: end})
	return p
}

// WithCrash appends a permanent processor crash.
func (p *Plan) WithCrash(proc int, at sim.Time) *Plan {
	p.crashes = append(p.crashes, Crash{Proc: proc, At: at})
	return p
}

// WithDegrade appends a module degradation interval.
func (p *Plan) WithDegrade(module int, start, end sim.Time, factor int) *Plan {
	p.degrades = append(p.degrades, Degrade{Module: module, Start: start, End: end, Factor: factor})
	return p
}

// Name returns the plan's label (used in experiment tables and test
// names).
func (p *Plan) Name() string {
	if p == nil {
		return "none"
	}
	return p.name
}

// Empty reports whether the plan schedules no faults at all.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.stalls) == 0 && len(p.crashes) == 0 && len(p.degrades) == 0)
}

// Stalls returns the stall entries. Callers must not mutate.
func (p *Plan) Stalls() []Stall { return p.stalls }

// Crashes returns the crash entries. Callers must not mutate.
func (p *Plan) Crashes() []Crash { return p.crashes }

// Degrades returns the degrade entries. Callers must not mutate.
func (p *Plan) Degrades() []Degrade { return p.degrades }

// Spec sizes a generated plan. Zero counts mean none of that fault
// kind; zero interval bounds fall back to sensible defaults relative
// to Horizon.
type Spec struct {
	// Procs and Modules bound the indices drawn; both must be > 0 for
	// the corresponding fault kinds to be drawn.
	Procs   int
	Modules int
	// Horizon is the time span faults are drawn in: starts land in
	// [0, Horizon).
	Horizon sim.Time

	// Stalls is the number of stall windows to draw; their lengths are
	// uniform in [StallMin, StallMax] (defaults Horizon/50, Horizon/10).
	Stalls   int
	StallMin sim.Time
	StallMax sim.Time

	// Crashes is the number of distinct processors to crash. It is
	// clamped to Procs-1 so at least one processor survives.
	Crashes int

	// Degrades is the number of module-degradation intervals; their
	// lengths are uniform in [DegradeMin, DegradeMax] (same defaults as
	// stalls) and factors uniform in [2, FactorMax] (default 8).
	Degrades   int
	DegradeMin sim.Time
	DegradeMax sim.Time
	FactorMax  int
}

// Generate draws a plan from its own splitmix64 stream seeded by seed.
// The stream is private to the plan: generating a plan consumes no
// draws from any machine or processor RNG, so adding faults to a
// config perturbs nothing else about the run.
func Generate(name string, seed uint64, sp Spec) *Plan {
	p := NewPlan(name)
	rng := sim.NewRNG(seed)
	horizon := sp.Horizon
	if horizon <= 0 {
		horizon = 1 << 20
	}
	spanIn := func(min, max sim.Time, defMin, defMax sim.Time) sim.Time {
		if min <= 0 {
			min = defMin
		}
		if max < min {
			max = defMax
		}
		if max < min {
			max = min
		}
		return min + rng.Time(max-min+1)
	}
	defMin, defMax := horizon/50+1, horizon/10+1

	if sp.Procs > 0 {
		for i := 0; i < sp.Stalls; i++ {
			proc := rng.Intn(sp.Procs)
			start := rng.Time(horizon)
			length := spanIn(sp.StallMin, sp.StallMax, defMin, defMax)
			p.WithStall(proc, start, start+length)
		}
		crashes := sp.Crashes
		if crashes > sp.Procs-1 {
			crashes = sp.Procs - 1
		}
		// Distinct victims: rejection-sample over the small index space.
		crashed := make(map[int]bool, crashes)
		for len(crashed) < crashes {
			proc := rng.Intn(sp.Procs)
			if crashed[proc] {
				continue
			}
			crashed[proc] = true
			p.WithCrash(proc, rng.Time(horizon))
		}
	}
	if sp.Modules > 0 {
		factorMax := sp.FactorMax
		if factorMax < 2 {
			factorMax = 8
		}
		for i := 0; i < sp.Degrades; i++ {
			mod := rng.Intn(sp.Modules)
			start := rng.Time(horizon)
			length := spanIn(sp.DegradeMin, sp.DegradeMax, defMin, defMax)
			factor := 2 + rng.Intn(factorMax-1)
			p.WithDegrade(mod, start, start+length, factor)
		}
	}
	return p
}
