package fault

import (
	"reflect"
	"testing"
)

func TestBuilderAccumulates(t *testing.T) {
	p := NewPlan("b").
		WithStall(1, 10, 20).
		WithCrash(2, 30).
		WithDegrade(0, 5, 15, 4)
	if p.Name() != "b" {
		t.Errorf("name = %q", p.Name())
	}
	if p.Empty() {
		t.Error("plan with entries reports Empty")
	}
	if got := p.Stalls(); len(got) != 1 || got[0] != (Stall{Proc: 1, Start: 10, End: 20}) {
		t.Errorf("stalls = %+v", got)
	}
	if got := p.Crashes(); len(got) != 1 || got[0] != (Crash{Proc: 2, At: 30}) {
		t.Errorf("crashes = %+v", got)
	}
	if got := p.Degrades(); len(got) != 1 || got[0] != (Degrade{Module: 0, Start: 5, End: 15, Factor: 4}) {
		t.Errorf("degrades = %+v", got)
	}
}

func TestNilPlanIsEmpty(t *testing.T) {
	var p *Plan
	if !p.Empty() {
		t.Error("nil plan should be Empty")
	}
	if p.Name() != "none" {
		t.Errorf("nil plan name = %q", p.Name())
	}
	if !NewPlan("x").Empty() {
		t.Error("fresh plan should be Empty")
	}
}

// TestGenerateDeterministic: same seed and spec give identical plans;
// a different seed gives a different one. Plans are pure data, so a
// config carrying a generated plan stays reproducible end to end.
func TestGenerateDeterministic(t *testing.T) {
	sp := Spec{Procs: 8, Modules: 8, Horizon: 10000,
		Stalls: 5, Crashes: 2, Degrades: 3, FactorMax: 6}
	a := Generate("g", 42, sp)
	b := Generate("g", 42, sp)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed diverged:\n  %+v\n  %+v", a, b)
	}
	c := Generate("g", 43, sp)
	if reflect.DeepEqual(a.Stalls(), c.Stalls()) && reflect.DeepEqual(a.Crashes(), c.Crashes()) {
		t.Error("different seeds drew identical plans")
	}
}

// TestGenerateRespectsSpec: counts, ranges, and the at-least-one-
// survivor clamp on crashes.
func TestGenerateRespectsSpec(t *testing.T) {
	sp := Spec{Procs: 4, Modules: 4, Horizon: 5000,
		Stalls: 6, StallMin: 100, StallMax: 300,
		Crashes:  9, // over-asks: must clamp to Procs-1
		Degrades: 4, DegradeMin: 200, DegradeMax: 400, FactorMax: 5}
	p := Generate("spec", 7, sp)
	if got := len(p.Stalls()); got != 6 {
		t.Errorf("stalls: got %d, want 6", got)
	}
	for _, s := range p.Stalls() {
		if s.Proc < 0 || s.Proc >= 4 {
			t.Errorf("stall proc %d out of range", s.Proc)
		}
		if l := s.End - s.Start; l < 100 || l > 300 {
			t.Errorf("stall length %d outside [100, 300]", l)
		}
		if s.Start < 0 || s.Start >= 5000 {
			t.Errorf("stall start %d outside horizon", s.Start)
		}
	}
	if got := len(p.Crashes()); got != 3 {
		t.Errorf("crashes: got %d, want Procs-1 = 3", got)
	}
	seen := map[int]bool{}
	for _, c := range p.Crashes() {
		if seen[c.Proc] {
			t.Errorf("processor %d crashed twice", c.Proc)
		}
		seen[c.Proc] = true
		if c.At < 0 || c.At >= 5000 {
			t.Errorf("crash time %d outside horizon", c.At)
		}
	}
	if got := len(p.Degrades()); got != 4 {
		t.Errorf("degrades: got %d, want 4", got)
	}
	for _, d := range p.Degrades() {
		if d.Module < 0 || d.Module >= 4 {
			t.Errorf("degrade module %d out of range", d.Module)
		}
		if d.Factor < 2 || d.Factor > 5 {
			t.Errorf("degrade factor %d outside [2, 5]", d.Factor)
		}
		if l := d.End - d.Start; l < 200 || l > 400 {
			t.Errorf("degrade length %d outside [200, 400]", l)
		}
	}
}

// TestGenerateZeroCounts: a spec asking for nothing generates an empty
// (and therefore inert) plan.
func TestGenerateZeroCounts(t *testing.T) {
	p := Generate("zero", 1, Spec{Procs: 8, Modules: 8, Horizon: 1000})
	if !p.Empty() {
		t.Errorf("zero-count spec generated %d/%d/%d entries",
			len(p.Stalls()), len(p.Crashes()), len(p.Degrades()))
	}
}
