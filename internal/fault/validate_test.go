package fault

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

// Edge specs: every degenerate field Validate guards must come back as
// a *SpecError naming the field, and Generate must refuse to draw from
// it.
func TestSpecValidateRejectsDegenerate(t *testing.T) {
	cases := []struct {
		name  string
		spec  Spec
		field string
	}{
		{"negative procs", Spec{Procs: -1}, "Procs"},
		{"negative modules", Spec{Modules: -2}, "Modules"},
		{"negative horizon", Spec{Procs: 4, Horizon: -5}, "Horizon"},
		{"negative stall count", Spec{Procs: 4, Stalls: -1}, "Stalls"},
		{"negative crash count", Spec{Procs: 4, Crashes: -3}, "Crashes"},
		{"negative restart count", Spec{Procs: 4, Restarts: -1}, "Restarts"},
		{"negative degrade count", Spec{Modules: 4, Degrades: -1}, "Degrades"},
		{"negative stall bound", Spec{Procs: 4, Stalls: 1, StallMin: -10}, "StallMin/StallMax"},
		{"inverted stall range", Spec{Procs: 4, Stalls: 1, StallMin: 500, StallMax: 100}, "StallMax"},
		{"restarts exceed crashes", Spec{Procs: 8, Crashes: 1, Restarts: 2}, "Restarts"},
		{"negative restart delay", Spec{Procs: 8, Crashes: 2, Restarts: 1, RestartDelayMin: -1}, "RestartDelayMin/RestartDelayMax"},
		{"inverted restart delay", Spec{Procs: 8, Crashes: 2, Restarts: 1, RestartDelayMin: 900, RestartDelayMax: 400}, "RestartDelayMax"},
		{"negative degrade bound", Spec{Modules: 4, Degrades: 1, DegradeMax: -7}, "DegradeMin/DegradeMax"},
		{"inverted degrade range", Spec{Modules: 4, Degrades: 1, DegradeMin: 300, DegradeMax: 200}, "DegradeMax"},
		{"no-op factor", Spec{Modules: 4, Degrades: 1, FactorMax: 1}, "FactorMax"},
		{"negative factor", Spec{Modules: 4, Degrades: 1, FactorMax: -4}, "FactorMax"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted the spec", tc.name)
			continue
		}
		var se *SpecError
		if !errors.As(err, &se) {
			t.Errorf("%s: error is %T, want *SpecError", tc.name, err)
			continue
		}
		if se.Field != tc.field {
			t.Errorf("%s: flagged field %q, want %q", tc.name, se.Field, tc.field)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Generate did not panic", tc.name)
				}
			}()
			Generate("bad", 1, tc.spec)
		}()
	}
}

// Well-formed specs — including the documented clamps and default
// ranges — pass.
func TestSpecValidateAcceptsClampsAndDefaults(t *testing.T) {
	ok := []Spec{
		{},
		{Procs: 4, Modules: 4, Horizon: 5000, Stalls: 2, Crashes: 9}, // over-ask clamps
		{Procs: 4, Crashes: 2, Restarts: 2},
		{Procs: 4, Stalls: 3, StallMin: 100}, // open-ended max: default applies
		{Modules: 4, Degrades: 2, FactorMax: 0},
	}
	for i, sp := range ok {
		if err := sp.Validate(); err != nil {
			t.Errorf("spec %d: Validate rejected a well-formed spec: %v", i, err)
		}
	}
}

// Restart draws ride the same private stream AFTER the crash draws: a
// Restarts: 0 spec must generate bit-identical stall/crash/degrade
// entries to one that never heard of restarts, so pre-recovery callers
// see unchanged plans.
func TestGenerateRestartsPreserveStream(t *testing.T) {
	base := Spec{Procs: 8, Modules: 8, Horizon: 10000,
		Stalls: 4, Crashes: 3, Degrades: 2, FactorMax: 6}
	withR := base
	withR.Restarts = 2
	withR.RestartDelayMin = 500
	withR.RestartDelayMax = 1500

	a := Generate("plain", 99, base)
	b := Generate("plain", 99, withR)
	if !reflect.DeepEqual(a.Stalls(), b.Stalls()) {
		t.Errorf("restart draws perturbed stalls:\n  %+v\n  %+v", a.Stalls(), b.Stalls())
	}
	if !reflect.DeepEqual(a.Crashes(), b.Crashes()) {
		t.Errorf("restart draws perturbed crashes:\n  %+v\n  %+v", a.Crashes(), b.Crashes())
	}
	if len(a.Restarts()) != 0 {
		t.Errorf("Restarts: 0 spec drew %d restarts", len(a.Restarts()))
	}
	if got := len(b.Restarts()); got != 2 {
		t.Fatalf("restarts: got %d, want 2", got)
	}
	for i, r := range b.Restarts() {
		c := b.Crashes()[i]
		if r.Proc != c.Proc {
			t.Errorf("restart %d rebirths P%d, want crash victim P%d", i, r.Proc, c.Proc)
		}
		if d := r.At - c.At; d < 500 || d > 1500 {
			t.Errorf("restart %d delay %d outside [500, 1500]", i, d)
		}
	}
	if err := b.Validate(); err != nil {
		t.Errorf("generated plan fails Validate: %v", err)
	}
}

// Restart clamp: asking for as many restarts as (over-asked) crashes
// rebirths exactly the drawn victims.
func TestGenerateRestartClampFollowsCrashClamp(t *testing.T) {
	p := Generate("clamp", 3, Spec{Procs: 4, Horizon: 4000, Crashes: 4, Restarts: 4})
	if got := len(p.Crashes()); got != 3 {
		t.Fatalf("crashes: got %d, want Procs-1 = 3", got)
	}
	if got := len(p.Restarts()); got != 3 {
		t.Errorf("restarts: got %d, want 3 (clamped with crashes)", got)
	}
}

// Plan.Validate: structural consistency, including the
// restart-needs-an-earlier-crash rule.
func TestPlanValidate(t *testing.T) {
	if err := (*Plan)(nil).Validate(); err != nil {
		t.Errorf("nil plan: %v", err)
	}
	good := NewPlan("ok").
		WithStall(1, 10, 20).
		WithCrash(2, 30).
		WithRestart(2, 90).
		WithDegrade(0, 5, 15, 4)
	if err := good.Validate(); err != nil {
		t.Errorf("well-formed plan rejected: %v", err)
	}

	cases := []struct {
		name string
		plan *Plan
		kind string
	}{
		{"empty stall", NewPlan("x").WithStall(0, 50, 50), "stall"},
		{"negative stall proc", NewPlan("x").WithStall(-1, 0, 10), "stall"},
		{"negative crash time", NewPlan("x").WithCrash(0, -5), "crash"},
		{"restart without crash", NewPlan("x").WithRestart(0, 100), "restart"},
		{"restart before crash", NewPlan("x").WithCrash(0, 200).WithRestart(0, 100), "restart"},
		{"restart of other proc", NewPlan("x").WithCrash(1, 50).WithRestart(0, 100), "restart"},
		{"no-op degrade", NewPlan("x").WithDegrade(0, 5, 15, 1), "degrade"},
		{"empty degrade", NewPlan("x").WithDegrade(0, 15, 15, 4), "degrade"},
	}
	for _, tc := range cases {
		err := tc.plan.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted the plan", tc.name)
			continue
		}
		var pe *PlanError
		if !errors.As(err, &pe) {
			t.Errorf("%s: error is %T, want *PlanError", tc.name, err)
			continue
		}
		if pe.Kind != tc.kind {
			t.Errorf("%s: flagged kind %q, want %q", tc.name, pe.Kind, tc.kind)
		}
		if !strings.Contains(err.Error(), tc.kind) {
			t.Errorf("%s: error string %q does not name the entry kind", tc.name, err)
		}
	}
}
