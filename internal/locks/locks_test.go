package locks

import (
	"sync"
	"testing"
	"time"
)

// Every registered lock must provide mutual exclusion under contention.
func TestAllLocksMutualExclusion(t *testing.T) {
	for _, info := range All() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			t.Parallel()
			workers, iters := 12, 1500
			if raceEnabled {
				workers, iters = 6, 150
			}
			l := info.New(workers)
			counter := 0
			var wg sync.WaitGroup
			for g := 0; g < workers; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						l.Lock()
						counter++
						l.Unlock()
					}
				}()
			}
			wg.Wait()
			if counter != workers*iters {
				t.Fatalf("%s lost updates: %d != %d", info.Name, counter, workers*iters)
			}
		})
	}
}

func TestAllLocksUncontended(t *testing.T) {
	for _, info := range All() {
		l := info.New(4)
		for i := 0; i < 100; i++ {
			l.Lock()
			l.Unlock()
		}
	}
}

func TestNamesMatchRegistry(t *testing.T) {
	for _, info := range All() {
		l := info.New(4)
		if l.Name() != info.Name {
			t.Errorf("registry %q constructs lock named %q", info.Name, l.Name())
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("ticket"); !ok {
		t.Fatal("ticket missing from registry")
	}
	if _, ok := ByName("bogus"); ok {
		t.Fatal("bogus lock found")
	}
}

func TestTicketLockFIFO(t *testing.T) {
	// Sequenced waiters on a ticket lock must be served in order.
	var l TicketLock
	l.Lock()
	const waiters = 6
	order := make(chan int, waiters)
	ready := make(chan struct{})
	for i := 0; i < waiters; i++ {
		i := i
		go func() {
			ready <- struct{}{}
			l.Lock()
			order <- i
			l.Unlock()
		}()
		<-ready
		time.Sleep(2 * time.Millisecond)
	}
	l.Unlock()
	for want := 0; want < waiters; want++ {
		if got := <-order; got != want {
			t.Fatalf("ticket order: waiter %d at position %d", got, want)
		}
	}
}

func TestAndersonLockRingWrap(t *testing.T) {
	// More sequential acquisitions than slots: the ring must wrap cleanly.
	l := NewAndersonLock(4)
	for i := 0; i < 100; i++ {
		l.Lock()
		l.Unlock()
	}
}

func TestAndersonLockMinimumSize(t *testing.T) {
	l := NewAndersonLock(0) // clamps to 1
	l.Lock()
	l.Unlock()
}

func TestBackoffLockParamClamping(t *testing.T) {
	l := NewBackoffLock(0, -5)
	l.Lock()
	l.Unlock()
}

func TestLocksWorkOversubscribed(t *testing.T) {
	// 4x CPUs; locks with Gosched in their spin loops must make progress.
	for _, name := range []string{"ttas", "ticket", "qsync-park"} {
		name := name
		t.Run(name, func(t *testing.T) {
			info, _ := ByName(name)
			workers, iters := 64, 300
			if raceEnabled {
				workers, iters = 16, 60
			}
			l := info.New(workers)
			counter := 0
			var wg sync.WaitGroup
			start := time.Now()
			for g := 0; g < workers; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						l.Lock()
						counter++
						l.Unlock()
					}
				}()
			}
			wg.Wait()
			if counter != workers*iters {
				t.Fatalf("lost updates: %d != %d", counter, workers*iters)
			}
			if d := time.Since(start); d > 60*time.Second {
				t.Fatalf("oversubscribed %s took %v", name, d)
			}
		})
	}
}
