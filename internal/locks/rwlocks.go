package locks

import (
	"sync"

	"repro/internal/core"
	"repro/internal/registry"
	"repro/internal/sharded"
)

// RWLock is the real-runtime reader-writer interface the harness
// sweeps. RLock returns an opaque token passed back to RUnlock; lock
// implementations that don't need one ignore it.
type RWLock interface {
	Name() string
	Lock()
	Unlock()
	RLock() RWToken
	RUnlock(RWToken)
}

// RWToken is an opaque read-acquisition handle.
type RWToken any

// RWInfo describes one reader-writer algorithm.
type RWInfo struct {
	Name string
	// New constructs a lock; shards hints how wide sharded variants
	// should stripe (typically GOMAXPROCS).
	New func(shards int) RWLock
}

// RWRegistry is the reader-writer family's registry.Set: the
// mechanism's fair queue lock, its sharded reader-biased derivative,
// the standard library reference point, and the plain-mutex baseline
// (every section exclusive — what an rw lock must beat).
var RWRegistry = registry.NewSet[RWInfo]("rwlocks", func(i RWInfo) string { return i.Name })

func init() {
	RWRegistry.Register(
		RWInfo{Name: "rw-qsync", New: func(int) RWLock { return &qsyncRW{} }},
		RWInfo{Name: "rw-sharded", New: func(n int) RWLock { return &shardedRW{rw: sharded.NewRWMutex(n)} }},
		RWInfo{Name: "rw-stdlib", New: func(int) RWLock { return &stdRW{} }},
		RWInfo{Name: "rw-mutex", New: func(int) RWLock { return &mutexRW{} }},
	)
}

// RWLocks returns the reader-writer registry in canonical order.
func RWLocks() []RWInfo { return RWRegistry.All() }

// RWByName returns the reader-writer registry entry for name, or false.
func RWByName(name string) (RWInfo, bool) { return RWRegistry.ByName(name) }

// qsyncRW adapts core.RWMutex (the mechanism's fair queue lock).
type qsyncRW struct {
	rw core.RWMutex
}

func (l *qsyncRW) Name() string      { return "rw-qsync" }
func (l *qsyncRW) Lock()             { l.rw.Lock() }
func (l *qsyncRW) Unlock()           { l.rw.Unlock() }
func (l *qsyncRW) RLock() RWToken    { return l.rw.RLock() }
func (l *qsyncRW) RUnlock(t RWToken) { l.rw.RUnlock(t.(*core.RToken)) }

// shardedRW adapts the reader-biased sharded lock. Tokens are pooled
// pointers so the interface conversion doesn't charge the sharded
// lock one heap allocation per read that the other backends don't pay.
type shardedRW struct {
	rw   *sharded.RWMutex
	pool sync.Pool
}

func (l *shardedRW) Name() string { return "rw-sharded" }
func (l *shardedRW) Lock()        { l.rw.Lock() }
func (l *shardedRW) Unlock()      { l.rw.Unlock() }

func (l *shardedRW) RLock() RWToken {
	t, _ := l.pool.Get().(*sharded.RToken)
	if t == nil {
		t = new(sharded.RToken)
	}
	*t = l.rw.RLock()
	return t
}

func (l *shardedRW) RUnlock(tok RWToken) {
	t := tok.(*sharded.RToken)
	l.rw.RUnlock(*t)
	*t = sharded.RToken{}
	l.pool.Put(t)
}

// mutexRW treats every section as a write through the mechanism's
// mutex — the baseline a reader-writer lock justifies itself against.
type mutexRW struct {
	m core.Mutex
}

func (l *mutexRW) Name() string    { return "rw-mutex" }
func (l *mutexRW) Lock()           { l.m.Lock() }
func (l *mutexRW) Unlock()         { l.m.Unlock() }
func (l *mutexRW) RLock() RWToken  { l.m.Lock(); return nil }
func (l *mutexRW) RUnlock(RWToken) { l.m.Unlock() }

// stdRW wraps sync.RWMutex, the modern reference point.
type stdRW struct {
	rw sync.RWMutex
}

func (l *stdRW) Name() string    { return "rw-stdlib" }
func (l *stdRW) Lock()           { l.rw.Lock() }
func (l *stdRW) Unlock()         { l.rw.Unlock() }
func (l *stdRW) RLock() RWToken  { l.rw.RLock(); return nil }
func (l *stdRW) RUnlock(RWToken) { l.rw.RUnlock() }
