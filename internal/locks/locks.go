// Package locks provides real-runtime implementations of the 1991
// baseline spin locks, sharing an interface with the core mechanism so
// the benchmark harness can sweep all of them uniformly.
//
// A caveat the repro band predicted: goroutines are not processors. The
// Go scheduler multiplexes them, so raw spin loops must yield
// (runtime.Gosched) to stay live when oversubscribed, and absolute
// numbers reflect the runtime as much as the algorithm. The simulator
// (internal/machine, internal/simsync) is the instrument for the
// paper's cycle/traffic claims; these implementations show the same
// qualitative ordering on real hardware and make the library useful.
package locks

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/registry"
)

// Lock is the common interface: sync.Locker plus a registry name.
type Lock interface {
	sync.Locker
	Name() string
}

// Info describes one algorithm for registries and sweeps.
type Info struct {
	Name string
	// New constructs a lock sized for at most maxWaiters concurrent
	// lockers (only the array lock cares).
	New func(maxWaiters int) Lock
}

// Registry is the lock family's registry.Set, in canonical order:
// the era's baselines first, the mechanism, and the standard library
// reference point last.
var Registry = registry.NewSet[Info]("locks", func(i Info) string { return i.Name })

func init() {
	Registry.Register(
		Info{Name: "tas", New: func(int) Lock { return new(TASLock) }},
		Info{Name: "ttas", New: func(int) Lock { return new(TTASLock) }},
		Info{Name: "tas-bo", New: func(int) Lock { return NewBackoffLock(4, 4096) }},
		Info{Name: "ticket", New: func(int) Lock { return new(TicketLock) }},
		Info{Name: "anderson", New: func(n int) Lock { return NewAndersonLock(n) }},
		Info{Name: "qsync", New: func(int) Lock { return &QSyncLock{name: "qsync", m: core.Mutex{Mode: core.Spin}} }},
		Info{Name: "qsync-park", New: func(int) Lock { return &QSyncLock{name: "qsync-park", m: core.Mutex{Mode: core.SpinPark}} }},
		Info{Name: "stdlib", New: func(int) Lock { return new(StdMutex) }},
	)
}

// All returns the registry in canonical order.
func All() []Info { return Registry.All() }

// ByName returns the registry entry for name, or false.
func ByName(name string) (Info, bool) { return Registry.ByName(name) }

// pause burns a few cycles without yielding, approximating a CPU pause
// instruction; k scales the duration.
func pause(k int) {
	for i := 0; i < k; i++ {
		// The loop body must not be optimizable away.
		if busyLoopSink.Load() > 1<<62 {
			busyLoopSink.Store(0)
		}
	}
}

var busyLoopSink atomic.Int64

// TASLock is the naive test&set lock: atomic swap until it sticks.
type TASLock struct {
	v atomic.Uint32
}

// Name implements Lock.
func (l *TASLock) Name() string { return "tas" }

// Lock implements sync.Locker.
func (l *TASLock) Lock() {
	for i := 0; l.v.Swap(1) != 0; i++ {
		if i%4096 == 4095 {
			runtime.Gosched()
		}
	}
}

// Unlock implements sync.Locker.
func (l *TASLock) Unlock() { l.v.Store(0) }

// TTASLock spins on a read and swaps only when the lock looks free.
type TTASLock struct {
	v atomic.Uint32
}

// Name implements Lock.
func (l *TTASLock) Name() string { return "ttas" }

// Lock implements sync.Locker.
func (l *TTASLock) Lock() {
	for {
		for i := 0; l.v.Load() != 0; i++ {
			if i%4096 == 4095 {
				runtime.Gosched()
			}
		}
		if l.v.Swap(1) == 0 {
			return
		}
	}
}

// Unlock implements sync.Locker.
func (l *TTASLock) Unlock() { l.v.Store(0) }

// BackoffLock is test&set with randomized bounded exponential backoff.
type BackoffLock struct {
	v         atomic.Uint32
	base, cap int
	seed      atomic.Uint64
}

// NewBackoffLock builds a backoff lock with the given pause bounds
// (units of pause iterations).
func NewBackoffLock(base, cap int) *BackoffLock {
	if base < 1 {
		base = 1
	}
	if cap < base {
		cap = base
	}
	l := &BackoffLock{base: base, cap: cap}
	l.seed.Store(0x9e3779b97f4a7c15)
	return l
}

// Name implements Lock.
func (l *BackoffLock) Name() string { return "tas-bo" }

// Lock implements sync.Locker.
func (l *BackoffLock) Lock() {
	b := l.base
	for l.v.Swap(1) != 0 {
		// xorshift on a shared seed: cheap, and contention on it only
		// adds to the randomness.
		s := l.seed.Load()
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		l.seed.Store(s)
		pause(b + int(s%uint64(b)))
		runtime.Gosched()
		if b < l.cap {
			b *= 2
		}
	}
}

// Unlock implements sync.Locker.
func (l *BackoffLock) Unlock() { l.v.Store(0) }

// TicketLock grants FIFO via a fetch&add dispenser.
type TicketLock struct {
	next    atomic.Uint32
	serving atomic.Uint32
}

// Name implements Lock.
func (l *TicketLock) Name() string { return "ticket" }

// Lock implements sync.Locker.
func (l *TicketLock) Lock() {
	t := l.next.Add(1) - 1
	for i := 0; l.serving.Load() != t; i++ {
		if i%4096 == 4095 {
			runtime.Gosched()
		}
	}
}

// Unlock implements sync.Locker.
func (l *TicketLock) Unlock() { l.serving.Add(1) }

// paddedFlag keeps each Anderson slot on its own cache line.
type paddedFlag struct {
	v atomic.Uint32
	_ [60]byte
}

// AndersonLock is the array-queue lock: a ring of per-waiter flags.
// The ring must be at least as large as the maximum number of
// concurrent lockers, or waiters would lap each other.
type AndersonLock struct {
	slots []paddedFlag
	tail  atomic.Uint32
	held  uint32 // ring index of the holder; single holder, no races
}

// NewAndersonLock builds an array lock for at most maxWaiters
// concurrent lockers.
func NewAndersonLock(maxWaiters int) *AndersonLock {
	if maxWaiters < 1 {
		maxWaiters = 1
	}
	l := &AndersonLock{slots: make([]paddedFlag, maxWaiters)}
	l.slots[0].v.Store(1)
	return l
}

// Name implements Lock.
func (l *AndersonLock) Name() string { return "anderson" }

// Lock implements sync.Locker.
func (l *AndersonLock) Lock() {
	idx := l.tail.Add(1) - 1
	slot := &l.slots[int(idx)%len(l.slots)]
	for i := 0; slot.v.Load() == 0; i++ {
		if i%4096 == 4095 {
			runtime.Gosched()
		}
	}
	slot.v.Store(0)
	l.held = idx
}

// Unlock implements sync.Locker.
func (l *AndersonLock) Unlock() {
	l.slots[int(l.held+1)%len(l.slots)].v.Store(1)
}

// QSyncLock adapts core.Mutex (the mechanism) to the registry
// interface, carrying the waiter-mode distinction in its name.
type QSyncLock struct {
	name string
	m    core.Mutex
}

// Name implements Lock.
func (l *QSyncLock) Name() string { return l.name }

// Lock implements sync.Locker.
func (l *QSyncLock) Lock() { l.m.Lock() }

// Unlock implements sync.Locker.
func (l *QSyncLock) Unlock() { l.m.Unlock() }

// StdMutex wraps sync.Mutex as the modern reference point (it is
// itself a futex-style adaptive lock — the design that superseded the
// 1991 mechanisms).
type StdMutex struct {
	sync.Mutex
}

// Name implements Lock.
func (l *StdMutex) Name() string { return "stdlib" }
