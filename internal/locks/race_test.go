//go:build race

package locks

// raceEnabled scales stress-test sizes down under the race detector:
// instrumented atomics make spin loops ~100x slower, and the full-size
// stress runs exceed the test timeout without telling us anything the
// small runs do not.
const raceEnabled = true
