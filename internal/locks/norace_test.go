//go:build !race

package locks

// raceEnabled is false in normal builds; see race_test.go.
const raceEnabled = false
