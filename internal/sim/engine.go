// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of events.
// Events scheduled for the same instant fire in scheduling order, so a
// simulation run is a pure function of its inputs: two runs with the same
// seed and the same program produce bit-identical results. This determinism
// is what lets the machine model (internal/machine) count cycles and
// interconnect transactions exactly, the way 1991-era synchronization
// studies did on real hardware.
//
// The queue is a typed 4-ary min-heap of small value events — no
// container/heap, no interface{} boxing, no per-event closure on the hot
// path — so steady-state scheduling and stepping perform zero heap
// allocations. Simulation layers (internal/machine) describe their events
// with a typed payload (kind plus two int32 arguments, typically a
// processor index and an address) consumed by a single installed Handler;
// the closure form At/After remains for tests and one-off setup work.
package sim

import (
	"errors"
	"fmt"
)

// Time is a point on the simulated clock, measured in cycles.
type Time int64

// EventKind tags the payload of a typed event. Kinds are defined by the
// simulation layer that installs the Handler; the engine only routes them.
type EventKind uint8

const (
	// EvFunc is reserved for closure events scheduled via At/After.
	EvFunc EventKind = iota
	// EvDispatch resumes a parked processor; arg0 is the processor index.
	EvDispatch
	// EvSpin advances a machine-driven spin wait: the simulation layer
	// executes the waiting processor's next probe (or watcher re-check)
	// directly in its drive loop, without resuming the processor's
	// goroutine. arg0 is the processor index, arg1 an address for
	// debugging. Scheduling-wise an EvSpin is indistinguishable from the
	// EvDispatch it replaces — same timestamp, same sequence-number
	// consumption — which is what keeps spin batching bit-identical to
	// probe-by-probe execution.
	EvSpin
	// EvFault materializes a scheduled machine fault (today: a permanent
	// processor crash); arg0 is the processor index. Keeping faults in
	// the event queue — rather than checking fault tables lazily — means
	// a pending EvFault bounds every processor's inline run-ahead and
	// every spin window's horizon exactly like any other event, which is
	// what keeps faulted runs bit-identical across execution paths.
	EvFault
	// EvRecover rebirths a crashed processor; arg0 is the processor
	// index. The simulation layer re-registers the processor at its
	// recovery entry point with reset local state — nothing the dead
	// incarnation held is released. Like EvFault, a pending EvRecover
	// is an ordinary queue entry: it bounds inline run-ahead and window
	// horizons exactly like any other event, so crash-recovery runs
	// keep the windows on/off bit-identity contract.
	EvRecover
	// EvCont advances a machine-driven straight-line continuation: the
	// simulation layer executes the next step of a parked processor's
	// scripted instruction sequence directly in its drive loop, without
	// resuming the processor's goroutine. arg0 is the processor index.
	// Scheduling-wise an EvCont is indistinguishable from the EvDispatch
	// it replaces — same timestamp, same sequence-number consumption —
	// which is what keeps inline continuation dispatch bit-identical to
	// the baton-handoff path. Like any other pending event, an EvCont
	// bounds every processor's inline run-ahead and every spin window's
	// horizon.
	EvCont
)

// Handler consumes typed events. A single handler is installed by the
// owning simulation layer (SetHandler); it is called with the event's
// kind and payload each time a typed event fires.
type Handler func(kind EventKind, arg0, arg1 int32)

// event is a queue entry. Typed events carry their whole payload by
// value; fn is non-nil only for closure events, so pushing and popping
// typed events never touches the garbage collector.
type event struct {
	when Time
	seq  uint64 // tie-break: FIFO among same-instant events
	kind EventKind
	arg0 int32
	arg1 int32
	fn   func()
}

// before reports whether a fires before b: earlier timestamp, or same
// timestamp and earlier scheduling order.
func (a *event) before(b *event) bool {
	return a.when < b.when || (a.when == b.when && a.seq < b.seq)
}

// ErrStepLimit is returned by Run when the configured maximum number of
// events is exceeded, which almost always indicates a livelock in the
// simulated program (for example, a spin loop that can never succeed).
var ErrStepLimit = errors.New("sim: event step limit exceeded (livelock?)")

// Engine is a deterministic discrete-event scheduler.
// The zero value is not usable; call NewEngine.
//
// The queue adapts its layout to the event population. Simulations keep
// roughly one pending event per processor, so small populations (the
// common case: a machine with tens of processors) live in an unsorted
// array with a cached minimum — push is an append, pop a swap-remove
// plus a sequential rescan, both cheaper than heap sifts at this size.
// When the population first exceeds linearMax the queue heapifies and
// stays a 4-ary min-heap for the rest of the run (Reset restores linear
// mode). Both layouts pop in exactly (when, seq) order, so the mode is
// invisible to simulation results.
type Engine struct {
	now      Time
	events   []event // linear: unsorted, minIdx cached; heap: 4-ary min-heap
	linear   bool
	minIdx   int // linear mode: index of the (when, seq) minimum
	seq      uint64
	steps    uint64 // events fired
	work     uint64 // events fired + inline work charged via ChargeStep
	maxSteps uint64
	handler  Handler
}

// linearMax is the population above which the queue switches to the
// heap. Measured on the contended P=32 storm cells (PR 6): the heap's
// O(log n) pops beat the linear rescan from the mid-teens up — raising
// this to 32 or 48 costs the per-event cluster path 10-20% — while tiny
// populations (a handful of workers trading one lock) still pop faster
// out of the flat array. 16 keeps the small-machine cells linear and
// hands every contended storm to the heap.
const linearMax = 16

// DefaultMaxSteps bounds runaway simulations. Each simulated memory
// operation is roughly one event, so this allows on the order of 10^8
// operations before the engine declares a livelock.
const DefaultMaxSteps = 200_000_000

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{maxSteps: DefaultMaxSteps, linear: true}
}

// SetMaxSteps overrides the livelock guard. A value of zero restores the
// default.
func (e *Engine) SetMaxSteps(n uint64) {
	if n == 0 {
		n = DefaultMaxSteps
	}
	e.maxSteps = n
}

// SetHandler installs the consumer of typed events. Scheduling a typed
// event without a handler is a programming error and panics at fire time.
func (e *Engine) SetHandler(h Handler) { e.handler = h }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events processed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// ChargeStep counts one unit of simulated work retired outside the
// event loop (an inline fast-path operation in the machine layer)
// toward the livelock budget, and reports whether the budget is about
// to be exhausted. Callers that see true must fall back to scheduling
// a real event — which is then the unit that gets charged, so no
// operation is ever counted twice — and the engine's run loop surfaces
// ErrStepLimit; without this, a livelocked program whose operations
// all retire inline would spin the host forever.
func (e *Engine) ChargeStep() bool {
	if e.work+1 >= e.maxSteps {
		return true
	}
	e.work++
	return false
}

// ChargeBudget returns how many further ChargeStep calls would succeed
// from the current state. Closed-form spin accounting uses this to
// charge a whole run of inline probes at once (via ChargeN) while
// stopping at exactly the operation where step-by-step charging would
// have hit the budget.
func (e *Engine) ChargeBudget() uint64 {
	if e.work+1 >= e.maxSteps {
		return 0
	}
	return e.maxSteps - 1 - e.work
}

// ChargeN charges n units of inline work in one call. n must not exceed
// ChargeBudget(); the pairing keeps batched charging bit-identical to n
// individual ChargeStep calls.
func (e *Engine) ChargeN(n uint64) { e.work += n }

// Exhausted reports whether the livelock budget has been spent. External
// drivers (the machine's baton-passing run loop steps the engine itself
// rather than calling Run) use this to surface ErrStepLimit.
func (e *Engine) Exhausted() bool { return e.work > e.maxSteps }

// Reset returns the engine to its initial state — clock at zero, queue
// empty, sequence and step counters cleared — while keeping the event
// heap's backing array, so a pooled simulation pays no scheduling
// allocations on reuse. The step limit is preserved; callers that pool
// across configurations reapply SetMaxSteps.
func (e *Engine) Reset() {
	for i := range e.events {
		e.events[i].fn = nil // release closure references to the GC
	}
	e.events = e.events[:0]
	e.linear = true
	e.minIdx = 0
	e.now = 0
	e.seq = 0
	e.steps = 0
	e.work = 0
}

// Pending returns the number of events waiting to fire.
func (e *Engine) Pending() int { return len(e.events) }

// Seq returns the scheduling sequence counter: the seq of the most
// recently scheduled event. Closed-form window accounting uses it to
// compute the sequence numbers that elided AtEvent calls would have
// consumed.
func (e *Engine) Seq() uint64 { return e.seq }

// PendingEvent is a read-only view of one queued event, exposed so the
// simulation layer can run queue-wide analyses — the machine layer's
// spin-window detector scans the whole queue to find a quiescent
// horizon. Index order is the queue's internal layout order, not
// firing order.
type PendingEvent struct {
	When Time
	Seq  uint64
	Kind EventKind
	Arg0 int32
	Arg1 int32
}

// PendingAt returns the i-th pending event in internal layout order.
// The index is stable only until the next scheduling or stepping call.
func (e *Engine) PendingAt(i int) PendingEvent {
	ev := &e.events[i]
	return PendingEvent{When: ev.when, Seq: ev.seq, Kind: ev.kind, Arg0: ev.arg0, Arg1: ev.arg1}
}

// PurgePending removes every pending typed event for which match
// returns true and restores queue order; it returns how many were
// removed. Closure events (EvFunc) are never offered to match — the
// purge targets typed per-processor events, which is what the machine
// layer needs to drop a reborn processor's stale wakeups at recovery.
// Survivors keep their (when, seq) keys, so pop order among them is
// unchanged, and no counter (steps, work, seq) moves: a purge is pure
// queue surgery, observable only through the events that no longer
// fire.
func (e *Engine) PurgePending(match func(PendingEvent) bool) int {
	kept := e.events[:0]
	removed := 0
	for i := range e.events {
		ev := e.events[i]
		if ev.fn == nil && match(PendingEvent{When: ev.when, Seq: ev.seq, Kind: ev.kind, Arg0: ev.arg0, Arg1: ev.arg1}) {
			removed++
			continue
		}
		kept = append(kept, ev)
	}
	if removed == 0 {
		return 0
	}
	// Clear the abandoned tail: survivors were copied down, and the
	// stale copies could pin closure references against the GC.
	for i := len(kept); i < len(e.events); i++ {
		e.events[i] = event{}
	}
	e.events = kept
	if e.linear {
		e.rescanMin()
	} else {
		e.heapify()
	}
	return removed
}

// WindowEvent is one window-candidate event collected by ScanWindow:
// payload plus the queue index a Retime needs.
type WindowEvent struct {
	When  Time
	Seq   uint64
	Arg0  int32
	Index int32
}

// ScanWindow partitions the pending events for a closed-form window in
// one pass: events of kind `kind` whose Arg0 bit is set in eligible
// and whose Arg1 equals arg1 — the caller anchors the window on the
// next-to-fire event's address, so concurrent storms on other words
// cannot steal the scan — are appended to buf (reused across calls;
// pass buf[:0]); every other event lowers the returned horizon, the
// earliest (when, seq) the window must not reach. This is the hot half
// of the machine layer's spin-window detector, kept inside the engine
// so the scan touches the event array directly instead of copying
// every entry out through PendingAt.
func (e *Engine) ScanWindow(kind EventKind, arg1 int32, eligible []uint64, buf []WindowEvent) (
	set []WindowEvent, horizonWhen Time, horizonSeq uint64, haveHorizon bool) {
	for i := range e.events {
		ev := &e.events[i]
		if ev.kind == kind && ev.arg1 == arg1 {
			a0 := ev.arg0
			if eligible[a0>>6]&(uint64(1)<<uint(a0&63)) != 0 {
				buf = append(buf, WindowEvent{When: ev.when, Seq: ev.seq, Arg0: a0, Index: int32(i)})
				continue
			}
		}
		if !haveHorizon || ev.when < horizonWhen || (ev.when == horizonWhen && ev.seq < horizonSeq) {
			haveHorizon, horizonWhen, horizonSeq = true, ev.when, ev.seq
		}
	}
	return buf, horizonWhen, horizonSeq, haveHorizon
}

// PopBudget returns how many further events may fire before the step
// limit trips (Step/StepPayload charge one unit of work per event, and
// Exhausted reports work > maxSteps). Closed-form window accounting
// caps its elided pops here so a livelocked storm still trips
// ErrStepLimit at exactly the event where per-event execution would.
func (e *Engine) PopBudget() uint64 {
	if e.work >= e.maxSteps {
		return 0
	}
	return e.maxSteps - e.work
}

// Retime re-addresses one pending event inside ApplyWindow: the entry
// at Index (a PendingAt index) moves to absolute time When with
// sequence number Seq, exactly as if it had been popped and a
// successor scheduled there.
type Retime struct {
	Index int
	When  Time
	Seq   uint64
}

// RetimePending re-addresses the pending event at index i to (when,
// seq), exactly as if it had been popped and a successor scheduled
// there. Only valid between queue-stable points; the caller must
// finish the batch with FinishWindow (or use ApplyWindow, which wraps
// both) so counters and queue order are restored. Small enough to
// inline into the machine layer's window-commit loop.
func (e *Engine) RetimePending(i int, when Time, seq uint64) {
	e.events[i].when = when
	e.events[i].seq = seq
}

// FinishWindow charges pops elided event firings — the step, work, and
// sequence counters advance as if pops events had been popped and each
// had scheduled one successor — and restores queue order after a batch
// of RetimePending calls.
func (e *Engine) FinishWindow(pops uint64) {
	e.steps += pops
	e.work += pops
	e.seq += pops
	if e.linear {
		e.rescanMin()
	} else {
		e.heapify()
	}
}

// ApplyWindow commits a closed-form fast-forward of pops event
// firings with the listed pending entries retimed to their post-window
// positions. The caller (the machine layer's spin-window batcher) is
// responsible for the equivalence argument: every retimed (When, Seq)
// must be what probe-by-probe execution would have left pending, pops
// must not exceed PopBudget(), and Seq values must lie in
// (Seq(), Seq()+pops]. The engine clock is not advanced; it catches up
// at the next pop, which no simulated quantity can observe.
func (e *Engine) ApplyWindow(pops uint64, retimes []Retime) {
	for _, r := range retimes {
		e.RetimePending(r.Index, r.When, r.Seq)
	}
	e.FinishWindow(pops)
}

// NextTime returns the timestamp of the earliest pending event and
// whether one exists. This is what makes conservative lookahead possible
// in the machine layer: an operation whose completion time precedes every
// pending event can finish inline, because no other event could have
// observed or perturbed it.
func (e *Engine) NextTime() (Time, bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	if e.linear {
		return e.events[e.minIdx].when, true
	}
	return e.events[0].when, true
}

// NextPeek returns the kind and payload arguments of the earliest
// pending event, without firing it — the cheap peek the machine
// layer's window trigger uses to decide whether a queue scan could pay
// off (a window can only form when the very next event is itself an
// eligible probe of a live storm; anything else would be the horizon
// and leave the window empty).
func (e *Engine) NextPeek() (EventKind, int32, int32, bool) {
	if len(e.events) == 0 {
		return 0, 0, 0, false
	}
	i := 0
	if e.linear {
		i = e.minIdx
	}
	return e.events[i].kind, e.events[i].arg0, e.events[i].arg1, true
}

// clamp keeps the clock monotonic: scheduling in the past is an error in
// the caller, clamped to "now" so bugs stay visible (time never runs
// backward) without corrupting the heap invariant.
func (e *Engine) clamp(t Time) Time {
	if t < e.now {
		return e.now
	}
	return t
}

// At schedules fn to run at absolute time t.
func (e *Engine) At(t Time, fn func()) {
	e.seq++
	e.push(event{when: e.clamp(t), seq: e.seq, kind: EvFunc, fn: fn})
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// AtEvent schedules a typed event at absolute time t. This is the
// allocation-free path: the payload travels by value through the heap.
func (e *Engine) AtEvent(t Time, kind EventKind, arg0, arg1 int32) {
	e.seq++
	e.push(event{when: e.clamp(t), seq: e.seq, kind: kind, arg0: arg0, arg1: arg1})
}

// AfterEvent schedules a typed event d cycles from now.
func (e *Engine) AfterEvent(d Time, kind EventKind, arg0, arg1 int32) {
	if d < 0 {
		d = 0
	}
	e.AtEvent(e.now+d, kind, arg0, arg1)
}

// Step runs the single next event, advancing the clock to its timestamp.
// It reports whether an event was available.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.when
	e.steps++
	e.work++
	if ev.fn != nil {
		ev.fn()
		return true
	}
	if e.handler == nil {
		panic(fmt.Sprintf("sim: typed event kind=%d fired with no handler installed", ev.kind))
	}
	e.handler(ev.kind, ev.arg0, ev.arg1)
	return true
}

// StepPayload pops the next event, advances the clock, and returns the
// event's typed payload directly instead of routing it through the
// installed Handler — the hot-path form of Step for external drive
// loops (closure events still run in place and report kind EvFunc).
// fired is false when the queue is empty.
func (e *Engine) StepPayload() (kind EventKind, arg0, arg1 int32, fired bool) {
	if len(e.events) == 0 {
		return 0, 0, 0, false
	}
	ev := e.pop()
	e.now = ev.when
	e.steps++
	e.work++
	if ev.fn != nil {
		ev.fn()
		return EvFunc, 0, 0, true
	}
	return ev.kind, ev.arg0, ev.arg1, true
}

// Run processes events until the queue drains or the step limit trips.
func (e *Engine) Run() error {
	for e.Step() {
		if e.work > e.maxSteps {
			return fmt.Errorf("%w after %d events at t=%d", ErrStepLimit, e.steps, e.now)
		}
	}
	return nil
}

// RunUntil processes events with timestamps <= deadline.
func (e *Engine) RunUntil(deadline Time) error {
	for {
		next, ok := e.NextTime()
		if !ok || next > deadline {
			break
		}
		if !e.Step() {
			break
		}
		if e.work > e.maxSteps {
			return fmt.Errorf("%w after %d events at t=%d", ErrStepLimit, e.steps, e.now)
		}
	}
	if e.now < deadline {
		e.now = deadline
	}
	return nil
}

// The heap is 4-ary: children of node i sit at 4i+1..4i+4. A wider node
// halves the tree height relative to a binary heap, trading a few extra
// comparisons per level for fewer cache-missing levels — the standard
// layout for event queues whose entries are small values.
const heapArity = 4

func (e *Engine) push(ev event) {
	e.events = append(e.events, ev)
	n := len(e.events)
	if e.linear {
		if n == 1 || ev.before(&e.events[e.minIdx]) {
			e.minIdx = n - 1
		}
		if n > linearMax {
			e.heapify()
		}
		return
	}
	e.siftUp(n - 1)
}

func (e *Engine) pop() event {
	h := e.events
	n := len(h) - 1
	if e.linear {
		i := e.minIdx
		top := h[i]
		h[i] = h[n]
		if h[n].fn != nil {
			h[n].fn = nil // release the closure reference to the GC
		}
		e.events = h[:n]
		e.rescanMin()
		return top
	}
	top := h[0]
	h[0] = h[n]
	if h[n].fn != nil {
		h[n].fn = nil
	}
	e.events = h[:n]
	if n > 1 {
		e.siftDown(0)
	}
	return top
}

// rescanMin recomputes the cached minimum of the unsorted linear queue:
// one sequential pass, branch-friendly and cache-dense at the small
// populations the linear mode is reserved for.
func (e *Engine) rescanMin() {
	h := e.events
	m := 0
	for i := 1; i < len(h); i++ {
		if h[i].before(&h[m]) {
			m = i
		}
	}
	e.minIdx = m
}

// heapify converts the unsorted queue into a 4-ary min-heap; the engine
// stays in heap mode until Reset. Crossing the threshold mid-run is
// rare (the population tracks the processor count).
func (e *Engine) heapify() {
	e.linear = false
	for i := (len(e.events) - 2) / heapArity; i >= 0; i-- {
		e.siftDown(i)
	}
}

func (e *Engine) siftUp(i int) {
	h := e.events
	ev := h[i]
	for i > 0 {
		parent := (i - 1) / heapArity
		if h[parent].before(&ev) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = ev
}

func (e *Engine) siftDown(i int) {
	h := e.events
	n := len(h)
	ev := h[i]
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		last := first + heapArity
		if last > n {
			last = n
		}
		best := first
		for c := first + 1; c < last; c++ {
			if h[c].before(&h[best]) {
				best = c
			}
		}
		if ev.before(&h[best]) {
			break
		}
		h[i] = h[best]
		i = best
	}
	h[i] = ev
}
