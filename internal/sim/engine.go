// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of events.
// Events scheduled for the same instant fire in scheduling order, so a
// simulation run is a pure function of its inputs: two runs with the same
// seed and the same program produce bit-identical results. This determinism
// is what lets the machine model (internal/machine) count cycles and
// interconnect transactions exactly, the way 1991-era synchronization
// studies did on real hardware.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
)

// Time is a point on the simulated clock, measured in cycles.
type Time int64

// Event is a closure scheduled to run at a virtual instant.
type event struct {
	when Time
	seq  uint64 // tie-break: FIFO among same-instant events
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// ErrStepLimit is returned by Run when the configured maximum number of
// events is exceeded, which almost always indicates a livelock in the
// simulated program (for example, a spin loop that can never succeed).
var ErrStepLimit = errors.New("sim: event step limit exceeded (livelock?)")

// Engine is a deterministic discrete-event scheduler.
// The zero value is not usable; call NewEngine.
type Engine struct {
	now      Time
	events   eventHeap
	seq      uint64
	steps    uint64
	maxSteps uint64
}

// DefaultMaxSteps bounds runaway simulations. Each simulated memory
// operation is roughly one event, so this allows on the order of 10^8
// operations before the engine declares a livelock.
const DefaultMaxSteps = 200_000_000

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{maxSteps: DefaultMaxSteps}
}

// SetMaxSteps overrides the livelock guard. A value of zero restores the
// default.
func (e *Engine) SetMaxSteps(n uint64) {
	if n == 0 {
		n = DefaultMaxSteps
	}
	e.maxSteps = n
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events processed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of events waiting to fire.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute time t. Scheduling in the past is an
// error in the caller; the engine clamps it to "now" to preserve a
// monotonic clock, which keeps bugs visible (time never runs backward)
// without corrupting the heap invariant.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, event{when: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Step runs the single next event, advancing the clock to its timestamp.
// It reports whether an event was available.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.when
	e.steps++
	ev.fn()
	return true
}

// Run processes events until the queue drains or the step limit trips.
func (e *Engine) Run() error {
	for e.Step() {
		if e.steps > e.maxSteps {
			return fmt.Errorf("%w after %d events at t=%d", ErrStepLimit, e.steps, e.now)
		}
	}
	return nil
}

// RunUntil processes events with timestamps <= deadline.
func (e *Engine) RunUntil(deadline Time) error {
	for len(e.events) > 0 && e.events[0].when <= deadline {
		if !e.Step() {
			break
		}
		if e.steps > e.maxSteps {
			return fmt.Errorf("%w after %d events at t=%d", ErrStepLimit, e.steps, e.now)
		}
	}
	if e.now < deadline {
		e.now = deadline
	}
	return nil
}
