package sim

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, d := range []Time{30, 10, 20, 10, 5} {
		d := d
		e.At(d, func() { got = append(got, d) })
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []Time{5, 10, 10, 20, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
}

func TestEngineSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(7, func() { got = append(got, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events fired out of order: %v", got)
		}
	}
}

func TestEngineClockMonotonic(t *testing.T) {
	e := NewEngine()
	last := Time(-1)
	// Events scheduled "in the past" from inside an event must clamp.
	e.At(50, func() {
		e.At(10, func() { // in the past relative to now=50
			if e.Now() < 50 {
				t.Errorf("clock ran backward: %d", e.Now())
			}
		})
	})
	e.At(5, func() {})
	for e.Step() {
		if e.Now() < last {
			t.Fatalf("clock went backward: %d after %d", e.Now(), last)
		}
		last = e.Now()
	}
}

func TestEngineAfter(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(100, func() {
		e.After(25, func() { at = e.Now() })
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 125 {
		t.Fatalf("After fired at %d, want 125", at)
	}
}

func TestEngineAfterNegativeClamps(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(10, func() {
		e.After(-5, func() {
			fired = true
			if e.Now() != 10 {
				t.Errorf("negative After fired at %d, want 10", e.Now())
			}
		})
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !fired {
		t.Fatal("negative After never fired")
	}
}

func TestEngineStepLimit(t *testing.T) {
	e := NewEngine()
	e.SetMaxSteps(100)
	var reschedule func()
	reschedule = func() { e.After(1, reschedule) }
	e.At(0, reschedule)
	err := e.Run()
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("Run error = %v, want ErrStepLimit", err)
	}
}

func TestEngineSetMaxStepsZeroRestoresDefault(t *testing.T) {
	e := NewEngine()
	e.SetMaxSteps(0)
	if e.maxSteps != DefaultMaxSteps {
		t.Fatalf("maxSteps = %d, want default", e.maxSteps)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, d := range []Time{5, 10, 15, 20} {
		d := d
		e.At(d, func() { fired = append(fired, d) })
	}
	if err := e.RunUntil(12); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(fired) != 2 || fired[0] != 5 || fired[1] != 10 {
		t.Fatalf("RunUntil(12) fired %v, want [5 10]", fired)
	}
	if e.Now() != 12 {
		t.Fatalf("clock after RunUntil = %d, want 12", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
}

func TestEngineStepOnEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

// Property: for any random set of (time, index) pairs, the engine fires
// them sorted by time and, within a time, by scheduling order.
func TestEngineOrderProperty(t *testing.T) {
	f := func(delays []uint8) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine()
		type rec struct {
			when Time
			idx  int
		}
		var got []rec
		for i, d := range delays {
			i, when := i, Time(d)
			e.At(when, func() { got = append(got, rec{when, i}) })
		}
		if err := e.Run(); err != nil {
			return false
		}
		sorted := sort.SliceIsSorted(got, func(i, j int) bool {
			if got[i].when != got[j].when {
				return got[i].when < got[j].when
			}
			return got[i].idx < got[j].idx
		})
		return sorted && len(got) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineTypedEventsInterleaveWithClosures(t *testing.T) {
	e := NewEngine()
	var got []string
	e.SetHandler(func(kind EventKind, arg0, arg1 int32) {
		if kind != EvDispatch {
			t.Fatalf("handler saw kind %d, want EvDispatch", kind)
		}
		got = append(got, fmt.Sprintf("d%d.%d", arg0, arg1))
	})
	e.AtEvent(20, EvDispatch, 2, 7)
	e.At(10, func() { got = append(got, "f10") })
	e.AtEvent(10, EvDispatch, 1, 0) // same instant as f10, scheduled later
	e.AfterEvent(5, EvDispatch, 0, 0)
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"d0.0", "f10", "d1.0", "d2.7"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("fire order %v, want %v", got, want)
	}
}

func TestEngineStepPayload(t *testing.T) {
	e := NewEngine()
	ranFn := false
	e.At(5, func() { ranFn = true })
	e.AtEvent(10, EvDispatch, 3, 9)
	kind, _, _, fired := e.StepPayload()
	if !fired || kind != EvFunc || !ranFn {
		t.Fatalf("first StepPayload = (%d, fired=%v), ranFn=%v; want closure event run in place", kind, fired, ranFn)
	}
	kind, a0, a1, fired := e.StepPayload()
	if !fired || kind != EvDispatch || a0 != 3 || a1 != 9 {
		t.Fatalf("second StepPayload = (%d, %d, %d, %v), want (EvDispatch, 3, 9, true)", kind, a0, a1, fired)
	}
	if e.Now() != 10 {
		t.Fatalf("clock = %d, want 10", e.Now())
	}
	if _, _, _, fired := e.StepPayload(); fired {
		t.Fatal("StepPayload on empty queue reported an event")
	}
}

func TestEngineNextTime(t *testing.T) {
	e := NewEngine()
	e.SetHandler(func(EventKind, int32, int32) {})
	if _, ok := e.NextTime(); ok {
		t.Fatal("NextTime on empty queue reported an event")
	}
	e.AtEvent(30, EvDispatch, 0, 0)
	e.AtEvent(12, EvDispatch, 1, 0)
	if next, ok := e.NextTime(); !ok || next != 12 {
		t.Fatalf("NextTime = (%d, %v), want (12, true)", next, ok)
	}
	e.Step()
	if next, ok := e.NextTime(); !ok || next != 30 {
		t.Fatalf("NextTime after Step = (%d, %v), want (30, true)", next, ok)
	}
}

func TestEngineChargeStepExhaustsBudget(t *testing.T) {
	e := NewEngine()
	e.SetMaxSteps(10)
	for i := 0; i < 9; i++ {
		if e.ChargeStep() {
			t.Fatalf("budget exhausted after %d charges, limit is 10", i+1)
		}
	}
	if !e.ChargeStep() {
		t.Fatal("10th charge should refuse: the budget boundary belongs to a real event")
	}
	// A refused charge falls back to a real event, which is the unit
	// that gets counted — exactly once. The op on the boundary itself
	// is still within budget; the one after it trips Exhausted, so a
	// program doing exactly maxSteps units of work never sees a
	// spurious ErrStepLimit.
	e.SetHandler(func(EventKind, int32, int32) {})
	e.AtEvent(1, EvDispatch, 0, 0)
	e.Step()
	if e.Exhausted() {
		t.Fatal("work == maxSteps is within budget")
	}
	if !e.ChargeStep() {
		t.Fatal("charge past the boundary should refuse")
	}
	e.AtEvent(2, EvDispatch, 0, 0)
	e.Step()
	if !e.Exhausted() {
		t.Fatal("Exhausted should report true past the budget")
	}
}

func TestEngineTypedEventWithoutHandlerPanics(t *testing.T) {
	e := NewEngine()
	e.AtEvent(1, EvDispatch, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("firing a typed event with no handler should panic")
		}
	}()
	e.Step()
}

// TestEngineHeapProperty drives a large random schedule through the
// 4-ary heap and checks the (time, seq) fire order — the heap-shape
// analog of TestEngineOrderProperty, at a size that exercises multi-level
// sifts in both directions.
func TestEngineHeapProperty(t *testing.T) {
	e := NewEngine()
	r := NewRNG(99)
	const n = 5000
	type rec struct {
		when Time
		seq  int
	}
	var got []rec
	e.SetHandler(func(_ EventKind, arg0, _ int32) {
		got = append(got, rec{e.Now(), int(arg0)})
	})
	for i := 0; i < n; i++ {
		e.AtEvent(Time(r.Intn(500)), EvDispatch, int32(i), 0)
	}
	// Interleave pops and pushes to exercise steady-state churn.
	for i := 0; i < n/2; i++ {
		e.Step()
		e.AtEvent(e.Now()+Time(r.Intn(200)), EvDispatch, int32(n+i), 0)
	}
	for e.Step() {
	}
	if len(got) != n+n/2 {
		t.Fatalf("fired %d events, want %d", len(got), n+n/2)
	}
	sorted := sort.SliceIsSorted(got, func(i, j int) bool {
		if got[i].when != got[j].when {
			return got[i].when < got[j].when
		}
		return got[i].seq < got[j].seq
	})
	if !sorted {
		t.Fatal("heap fired events out of (time, seq) order")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed generators diverged")
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestRNGDerive(t *testing.T) {
	base := NewRNG(7)
	d0 := base.Derive(0)
	d1 := base.Derive(1)
	if d0.Uint64() == d1.Uint64() {
		t.Fatal("derived streams 0 and 1 start identically")
	}
	// Deriving must not disturb the base stream.
	base2 := NewRNG(7)
	if base.Uint64() != base2.Uint64() {
		t.Fatal("Derive disturbed the base stream")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestRNGExpTimeMean(t *testing.T) {
	r := NewRNG(11)
	const mean = 100
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.ExpTime(mean))
	}
	got := sum / n
	if math.Abs(got-mean) > mean*0.05 {
		t.Fatalf("ExpTime mean = %.1f, want ~%d", got, mean)
	}
}

func TestRNGExpTimeZeroMean(t *testing.T) {
	r := NewRNG(1)
	if r.ExpTime(0) != 0 || r.ExpTime(-5) != 0 {
		t.Fatal("ExpTime of non-positive mean should be 0")
	}
}

func TestRNGTimeRange(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		v := r.Time(23)
		if v < 0 || v >= 23 {
			t.Fatalf("Time(23) = %d out of range", v)
		}
	}
}

// ---------------------------------------------------------------------
// Window-advance API (PendingAt / PopBudget / ApplyWindow)
// ---------------------------------------------------------------------

// TestPendingAtCoversQueue pins that the pending-event scan exposes
// every queued event exactly once with the payload it was scheduled
// with, in both queue layouts.
func TestPendingAtCoversQueue(t *testing.T) {
	for _, n := range []int{5, linearMax + 10} {
		e := NewEngine()
		for i := 0; i < n; i++ {
			e.AtEvent(Time(100-i), EvSpin, int32(i), int32(2*i))
		}
		if e.Pending() != n {
			t.Fatalf("Pending = %d, want %d", e.Pending(), n)
		}
		seen := make(map[int32]PendingEvent, n)
		for i := 0; i < e.Pending(); i++ {
			ev := e.PendingAt(i)
			seen[ev.Arg0] = ev
		}
		if len(seen) != n {
			t.Fatalf("scan saw %d distinct events, want %d", len(seen), n)
		}
		for i := 0; i < n; i++ {
			ev := seen[int32(i)]
			if ev.When != Time(100-i) || ev.Kind != EvSpin || ev.Arg1 != int32(2*i) || ev.Seq != uint64(i+1) {
				t.Fatalf("event %d = %+v, want when=%d arg1=%d seq=%d", i, ev, 100-i, 2*i, i+1)
			}
		}
	}
}

// TestApplyWindowEquivalence drives the same schedule two ways — fully
// event by event, and with a middle run of pops replaced by
// ApplyWindow — and requires identical counters, identical remaining
// pop order, and identical sequence numbering for events scheduled
// afterwards.
func TestApplyWindowEquivalence(t *testing.T) {
	build := func() *Engine {
		e := NewEngine()
		e.SetHandler(func(EventKind, int32, int32) {})
		// Three "spinners" at 10/20/30 plus a horizon event at 100.
		e.AtEvent(10, EvSpin, 0, 0)
		e.AtEvent(20, EvSpin, 1, 0)
		e.AtEvent(30, EvSpin, 2, 0)
		e.AtEvent(100, EvDispatch, 9, 0)
		return e
	}

	// Reference: pop the three spins, each rescheduling one successor
	// past the horizon (what a probe rotation leaves behind).
	ref := build()
	for i := 0; i < 3; i++ {
		kind, arg0, _, fired := ref.StepPayload()
		if !fired || kind != EvSpin {
			t.Fatalf("pop %d: kind=%v fired=%v", i, kind, fired)
		}
		ref.AtEvent(Time(110+10*int(arg0)), EvSpin, arg0, 0)
	}

	// Windowed: commit the same three pops in closed form.
	win := build()
	var retimes []Retime
	seq0 := win.Seq()
	for i := 0; i < win.Pending(); i++ {
		ev := win.PendingAt(i)
		if ev.Kind != EvSpin {
			continue
		}
		// Spinner arg0 was popped as pop arg0+1 and rescheduled at
		// 110+10*arg0 with the (arg0+1)-th elided sequence number.
		retimes = append(retimes, Retime{Index: i, When: Time(110 + 10*int(ev.Arg0)), Seq: seq0 + uint64(ev.Arg0) + 1})
	}
	win.ApplyWindow(3, retimes)

	if ref.Steps() != win.Steps() {
		t.Fatalf("steps diverge: ref %d, win %d", ref.Steps(), win.Steps())
	}
	if ref.Seq() != win.Seq() {
		t.Fatalf("seq diverge: ref %d, win %d", ref.Seq(), win.Seq())
	}
	if ref.PopBudget() != win.PopBudget() {
		t.Fatalf("pop budget diverge: ref %d, win %d", ref.PopBudget(), win.PopBudget())
	}
	// Both schedule one more event (must draw the same seq), then the
	// remaining queues must pop identically.
	ref.AtEvent(105, EvDispatch, 7, 0)
	win.AtEvent(105, EvDispatch, 7, 0)
	for {
		rk, ra, _, rf := ref.StepPayload()
		wk, wa, _, wf := win.StepPayload()
		if rk != wk || ra != wa || rf != wf || ref.Now() != win.Now() {
			t.Fatalf("pop diverged: ref (%v,%d,%v)@%d vs win (%v,%d,%v)@%d",
				rk, ra, rf, ref.Now(), wk, wa, wf, win.Now())
		}
		if !rf {
			break
		}
	}
}

// TestApplyWindowHeapMode re-times entries while the queue is in heap
// mode and checks the heap invariant is restored.
func TestApplyWindowHeapMode(t *testing.T) {
	e := NewEngine()
	e.SetHandler(func(EventKind, int32, int32) {})
	n := linearMax + 16
	for i := 0; i < n; i++ {
		e.AtEvent(Time(10+i), EvSpin, int32(i), 0)
	}
	if e.linear {
		t.Fatal("queue should be in heap mode")
	}
	// Push the earliest 8 entries to the back of the schedule.
	var retimes []Retime
	for i := 0; i < e.Pending(); i++ {
		ev := e.PendingAt(i)
		if ev.When < Time(10+8) {
			retimes = append(retimes, Retime{Index: i, When: ev.When + Time(1000), Seq: e.Seq() + uint64(ev.Arg0) + 1})
		}
	}
	e.ApplyWindow(8, retimes)
	// The retimed entries must drain in exactly the recomputed order:
	// the untouched events 8..n-1 at their original times, then the
	// retimed 0..7 at original+1000 (their new seqs preserve arrival
	// order within the group).
	var got []int32
	for e.Pending() > 0 {
		_, arg0, _, fired := e.StepPayload()
		if !fired {
			break
		}
		got = append(got, arg0)
	}
	var want []int32
	for i := 8; i < n; i++ {
		want = append(want, int32(i))
	}
	for i := 0; i < 8; i++ {
		want = append(want, int32(i))
	}
	if len(got) != len(want) {
		t.Fatalf("drained %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("heap-mode drain order diverged at %d: got %v, want %v", i, got[:i+1], want[:i+1])
		}
	}
}

// TestPopBudgetMatchesExhaustion pins PopBudget against the actual
// trip point of the step limit.
func TestPopBudgetMatchesExhaustion(t *testing.T) {
	e := NewEngine()
	e.SetHandler(func(EventKind, int32, int32) {})
	e.SetMaxSteps(5)
	for i := 0; i < 10; i++ {
		e.AtEvent(Time(i), EvSpin, 0, 0)
	}
	for !e.Exhausted() {
		if e.PopBudget() == 0 {
			// Budget zero: the very next pop must trip.
			e.Step()
			if !e.Exhausted() {
				t.Fatal("pop after zero budget did not exhaust the engine")
			}
			return
		}
		e.Step()
	}
	t.Fatal("engine exhausted while budget was still positive")
}
