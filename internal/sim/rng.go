package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64). Every simulated processor owns one, seeded from the
// machine seed and the processor index, so simulations are reproducible
// regardless of how many processors run or in which order events fire.
//
// We deliberately do not use math/rand: the simulator's contract is
// bit-identical replay across Go releases, and splitmix64 is a fixed
// published algorithm.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators with the
// same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Derive returns a new independent generator deterministically derived
// from this one's seed and the given stream index. It does not disturb
// the receiver's stream.
func (r *RNG) Derive(stream uint64) *RNG {
	return &RNG{state: r.deriveState(stream)}
}

// DeriveInto reseeds dst with the same state Derive(stream) would give a
// fresh generator — the allocation-free form used when machines are
// pooled: a Reset machine's per-processor streams must be bit-identical
// to a newly constructed machine's.
func (r *RNG) DeriveInto(stream uint64, dst *RNG) {
	dst.state = r.deriveState(stream)
}

// Reseed restarts the generator's stream from seed, exactly as if it had
// been constructed with NewRNG(seed).
func (r *RNG) Reseed(seed uint64) { r.state = seed }

func (r *RNG) deriveState(stream uint64) uint64 {
	// Mix the stream index through one splitmix round of a copy.
	tmp := RNG{state: r.state + 0x9e3779b97f4a7c15*(stream+1)}
	return tmp.Uint64()
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Time returns a pseudo-random Time in [0, n). n must be positive.
func (r *RNG) Time(n Time) Time {
	if n <= 0 {
		panic("sim: Time with non-positive n")
	}
	return Time(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpTime returns an exponentially distributed Time with the given mean,
// truncated below at zero. Means of zero or less return zero, which lets
// callers express "no think time" naturally.
func (r *RNG) ExpTime(mean Time) Time {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return Time(-float64(mean) * math.Log(u))
}
