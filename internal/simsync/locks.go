// Package simsync implements the 1991 synchronization-algorithm zoo on
// the simulated multiprocessor of internal/machine: the spin-lock and
// barrier baselines of the era, plus QSync — the reconstructed "new
// synchronization mechanism" — a one-word queueing cell with local-only
// spinning and direct hand-off.
//
// Algorithms are written against the simulated ISA, so the package
// measures exactly what the 1991 papers measured: elapsed cycles and
// interconnect transactions per synchronization operation, with no
// interference from the Go runtime scheduler.
package simsync

import (
	"repro/internal/machine"
	"repro/internal/sim"
)

// Lock is a simulated mutual-exclusion lock. Acquire blocks the calling
// processor until it holds the lock; Release must be called by the
// holder.
type Lock interface {
	Name() string
	Acquire(p *machine.Proc)
	Release(p *machine.Proc)
}

// ScriptedRelease is implemented by locks whose Release is a single
// plain store whose address and value are fixed from the moment the
// lock is held. Workload runners use it to fold the critical section
// and the release into one machine-driven continuation script
// (machine.RunScript), eliminating the holder-side goroutine handoffs.
//
// ReleaseScript must be called exactly once per Acquire, by the holder,
// and replaces the Release call for that acquisition. It may perform
// the same host-side bookkeeping Release would (ticket/slot tracking);
// calling it any earlier than Release is safe because only processors
// *holding* the lock mutate that state, and the simulation is
// single-threaded. Locks whose release performs simulated reads or
// RMWs (qsync's successor handoff) cannot implement it.
type ScriptedRelease interface {
	Lock
	ReleaseScript(p *machine.Proc) (machine.Addr, machine.Word)
}

// LockMaker constructs a lock on a machine, allocating whatever
// simulated memory the algorithm needs.
type LockMaker func(m *machine.Machine) Lock

// LockInfo describes one lock algorithm for registries and sweeps.
type LockInfo struct {
	Name string
	Make LockMaker
	FIFO bool // whether the algorithm guarantees FIFO granting
}

// ---------------------------------------------------------------------
// test&set
// ---------------------------------------------------------------------

// tasLock is the naive test&set spin lock: every retry is an atomic
// read-modify-write, so every spinning processor hammers the
// interconnect for the whole time the lock is held.
type tasLock struct {
	l machine.Addr
}

// NewTAS builds a test&set lock.
func NewTAS(m *machine.Machine) Lock {
	return &tasLock{l: m.AllocShared(1)}
}

func (t *tasLock) Name() string { return "tas" }

func (t *tasLock) Acquire(p *machine.Proc) {
	// The raw probe storm, engine-batched: every retry is still an
	// atomic read-modify-write hammering the interconnect, but the
	// whole run of failed probes is charged without waking this
	// goroutine once per probe. The zero Backoff declares the schedule
	// draw-free and constant-period, which is exactly what makes a
	// contended tas storm eligible for cross-processor spin windows:
	// interleaved probes from many spinners fast-forward in closed
	// form (machine/window.go).
	p.SpinTAS(t.l, machine.Backoff{})
}

func (t *tasLock) Release(p *machine.Proc) {
	p.Store(t.l, 0)
}

func (t *tasLock) ReleaseScript(p *machine.Proc) (machine.Addr, machine.Word) {
	return t.l, 0
}

// ---------------------------------------------------------------------
// test&test&set
// ---------------------------------------------------------------------

// ttasLock spins with ordinary reads (cache hits on a coherent machine)
// and attempts the test&set only when the lock looks free. Traffic drops
// from continuous to one burst per release — but the burst still grows
// with the number of spinners.
type ttasLock struct {
	l machine.Addr
}

// NewTTAS builds a test&test&set lock.
func NewTTAS(m *machine.Machine) Lock {
	return &ttasLock{l: m.AllocShared(1)}
}

func (t *ttasLock) Name() string { return "ttas" }

func (t *ttasLock) Acquire(p *machine.Proc) {
	// The read-spin phase is event-silent on a coherent machine
	// (watcher-parked until a write invalidates) and jitter-polled on
	// NUMA, and the post-release test&set burst falls back to the read
	// spin on failure — so TTAS waits never enter a constant-period
	// probe rotation. They are window-ineligible by construction:
	// their events (and the watchers they leave on the lock word)
	// bound any raw-TAS window instead of joining it.
	p.SpinTTAS(t.l)
}

func (t *ttasLock) Release(p *machine.Proc) {
	p.Store(t.l, 0)
}

func (t *ttasLock) ReleaseScript(p *machine.Proc) (machine.Addr, machine.Word) {
	return t.l, 0
}

// ---------------------------------------------------------------------
// test&set with bounded exponential backoff (Anderson 1990)
// ---------------------------------------------------------------------

// BackoffParams tunes the exponential backoff lock. The F5 ablation
// sweeps these; the point of the 1991 mechanism is that it needs no such
// tuning.
type BackoffParams struct {
	Base sim.Time // initial backoff
	Cap  sim.Time // maximum backoff
}

// DefaultBackoff matches the common guidance of the era: start around a
// bus transaction, cap near the expected total contention window.
var DefaultBackoff = BackoffParams{Base: 16, Cap: 1024}

type backoffLock struct {
	l      machine.Addr
	params BackoffParams
}

// NewTASBackoff builds a test&set lock with default exponential backoff.
func NewTASBackoff(m *machine.Machine) Lock {
	return NewTASBackoffParams(m, DefaultBackoff)
}

// NewTASBackoffParams builds a test&set lock with explicit backoff
// parameters (used by the F5 sensitivity ablation).
func NewTASBackoffParams(m *machine.Machine, bp BackoffParams) Lock {
	if bp.Base <= 0 {
		bp.Base = 1
	}
	if bp.Cap < bp.Base {
		bp.Cap = bp.Base
	}
	return &backoffLock{l: m.AllocShared(1), params: bp}
}

func (t *backoffLock) Name() string { return "tas-bo" }

func (t *backoffLock) Acquire(p *machine.Proc) {
	// Anderson-style bounded exponential backoff with proportional
	// jitter: delay cur + rng.Time(cur) after each failed probe, cur
	// doubling up to Cap. The schedule (and its RNG draws) is replayed
	// by the engine's spin machine, probe for probe. PropJitter
	// declares the schedule RNG-dependent, which makes these waits
	// window-ineligible: every probe must consume its jitter draw at
	// the right stream position, so tas-bo storms replay per-event and
	// their pending probes act as window horizons (the mixed-storm
	// determinism test pins the fallback).
	p.SpinTAS(t.l, machine.Backoff{Base: t.params.Base, Cap: t.params.Cap, PropJitter: true})
}

func (t *backoffLock) Release(p *machine.Proc) {
	p.Store(t.l, 0)
}

func (t *backoffLock) ReleaseScript(p *machine.Proc) (machine.Addr, machine.Word) {
	return t.l, 0
}

// ---------------------------------------------------------------------
// ticket lock
// ---------------------------------------------------------------------

// ticketLock grants in FIFO order using a fetch&add ticket dispenser.
// Plain version spins on now-serving (a coherent-cache spin, but every
// release invalidates every waiter); the backoff version estimates its
// distance from the head and sleeps proportionally.
type ticketLock struct {
	next    machine.Addr
	serving machine.Addr
	propK   sim.Time // 0: plain spin; >0: proportional backoff factor
	held    machine.Word
}

// NewTicket builds a plain ticket lock.
func NewTicket(m *machine.Machine) Lock {
	return &ticketLock{next: m.AllocShared(1), serving: m.AllocShared(1)}
}

// NewTicketBackoff builds a ticket lock with proportional backoff.
func NewTicketBackoff(m *machine.Machine) Lock {
	return &ticketLock{next: m.AllocShared(1), serving: m.AllocShared(1), propK: 24}
}

func (t *ticketLock) Name() string {
	if t.propK > 0 {
		return "ticket-bo"
	}
	return "ticket"
}

func (t *ticketLock) Acquire(p *machine.Proc) {
	ticket := p.FetchAdd(t.next, 1)
	if t.propK > 0 {
		for {
			s := p.Load(t.serving)
			if s == ticket {
				break
			}
			p.Delay(sim.Time(ticket-s) * t.propK)
		}
	} else {
		p.SpinUntilEq(t.serving, ticket)
	}
	// Only the holder writes this host-side field; the simulation is
	// single-threaded, so recording the held ticket here is safe.
	t.held = ticket
}

func (t *ticketLock) Release(p *machine.Proc) {
	p.Store(t.serving, t.held+1)
}

func (t *ticketLock) ReleaseScript(p *machine.Proc) (machine.Addr, machine.Word) {
	// t.held is stable for the whole critical section: the next holder
	// records its ticket only after its spin sees our serving store.
	return t.serving, t.held + 1
}

// ---------------------------------------------------------------------
// Anderson array-queue lock (1990)
// ---------------------------------------------------------------------

// andersonLock queues waiters on a ring of flags; each waiter spins on
// its own slot, so a release invalidates exactly one spinner. The array
// is statically sized at one slot per processor and lives in shared
// (interleaved) memory — on a NUMA machine most waiters therefore spin
// on a *remote* slot, the algorithm's documented weakness.
type andersonLock struct {
	slots machine.Addr // ring of P flags
	tail  machine.Addr // fetch&add ticket into the ring
	size  machine.Word
	held  machine.Word // ring index held; single holder, host-side
}

// NewAnderson builds an Anderson array-queue lock sized to the machine.
func NewAnderson(m *machine.Machine) Lock {
	size := m.Procs()
	a := &andersonLock{
		slots: m.AllocShared(size),
		tail:  m.AllocShared(1),
		size:  machine.Word(size),
	}
	m.Poke(a.slots, 1) // slot 0 starts as "has lock"
	return a
}

func (a *andersonLock) Name() string { return "anderson" }

func (a *andersonLock) Acquire(p *machine.Proc) {
	idx := p.FetchAdd(a.tail, 1) % a.size
	slot := a.slots + machine.Addr(idx)
	p.SpinUntilEq(slot, 1)
	p.Store(slot, 0) // reset for the next lap around the ring
	a.held = idx
}

func (a *andersonLock) Release(p *machine.Proc) {
	next := (a.held + 1) % a.size
	p.Store(a.slots+machine.Addr(next), 1)
}

func (a *andersonLock) ReleaseScript(p *machine.Proc) (machine.Addr, machine.Word) {
	// a.held is stable for the whole critical section: the next holder
	// records its ring index only after its slot spin sees our store.
	next := (a.held + 1) % a.size
	return a.slots + machine.Addr(next), 1
}

// ---------------------------------------------------------------------
// Graunke & Thakkar array lock (1990)
// ---------------------------------------------------------------------

// gtLock is Graunke & Thakkar's lock: each processor owns a flag word;
// the lock word packs (whose flag to watch, the value it had when that
// processor enqueued). Arrival is one fetch&store; release flips the
// holder's own flag. Each waiter spins on its *predecessor's* flag —
// fine with coherent caches, remote on NUMA (the same weakness as
// Anderson's lock, which is exactly why it appears in the sweep).
type gtLock struct {
	lock  machine.Addr   // packed (flag index << 1 | expected value)
	flags machine.Addr   // P per-processor flag words (shared placement)
	vals  []machine.Word // host-tracked current value of each flag
	procs int
}

// NewGraunkeThakkar builds a Graunke-Thakkar lock.
func NewGraunkeThakkar(m *machine.Machine) Lock {
	g := &gtLock{
		lock:  m.AllocShared(1),
		flags: m.AllocShared(m.Procs()),
		vals:  make([]machine.Word, m.Procs()),
		procs: m.Procs(),
	}
	// The lock starts pointing at processor 0's flag with the *opposite*
	// of its current value, so the first arrival proceeds immediately.
	m.Poke(g.lock, g.pack(0, 1))
	return g
}

func (g *gtLock) pack(idx int, val machine.Word) machine.Word {
	return machine.Word(idx)<<1 | (val & 1)
}

func (g *gtLock) Name() string { return "gt" }

func (g *gtLock) Acquire(p *machine.Proc) {
	me := p.ID()
	myVal := g.vals[me]
	old := p.FetchStore(g.lock, g.pack(me, myVal))
	prevIdx := int(old >> 1)
	prevVal := old & 1
	// Wait until the predecessor flips its flag away from the value it
	// had when it enqueued. A read-spin on a per-processor flag: like
	// every SpinUntilPred wait (qsync's local spins included) it is
	// window-ineligible by kind — watcher-parked on Bus, jitter-polled
	// on remote NUMA words — and never appears in a probe rotation.
	p.SpinUntilPred(g.flags+machine.Addr(prevIdx),
		machine.Pred{Op: machine.PredNe, Mask: 1, Want: prevVal})
}

func (g *gtLock) Release(p *machine.Proc) {
	me := p.ID()
	g.vals[me] ^= 1
	p.Store(g.flags+machine.Addr(me), g.vals[me])
}

func (g *gtLock) ReleaseScript(p *machine.Proc) (machine.Addr, machine.Word) {
	// Flipping the host-tracked flag value here (before the critical
	// section) instead of at release time is safe: only processor me
	// ever reads or writes vals[me], and the simulated flag word does
	// not change until the scripted store issues.
	me := p.ID()
	g.vals[me] ^= 1
	return g.flags + machine.Addr(me), g.vals[me]
}

// ---------------------------------------------------------------------
// QSync — the reconstructed "new synchronization mechanism"
// ---------------------------------------------------------------------

// Node layout within a processor's local memory.
const (
	qNext   = 0 // successor pointer (PtrWord encoding; 0 = none)
	qStatus = 1 // 1 = waiting, 0 = granted
	qWords  = 2
)

// qsyncLock is the mechanism applied to mutual exclusion: the lock is a
// single shared word (the cell) holding the queue tail. A processor
// enqueues its local record with one fetch&store, links itself behind
// its predecessor with one remote store, and then spins only on its own
// record — local memory on NUMA, its own cache line on a bus. Release is
// a direct hand-off: one store into the successor's record. Interconnect
// cost per acquire/release pair is therefore constant, independent of
// the number of waiters.
type qsyncLock struct {
	cell  machine.Addr   // queue tail; Word(0) = free
	nodes []machine.Addr // per-processor record, in local memory
}

// NewQSync builds the mechanism's mutual-exclusion lock.
func NewQSync(m *machine.Machine) Lock {
	q := &qsyncLock{cell: m.AllocShared(1), nodes: make([]machine.Addr, m.Procs())}
	for i := range q.nodes {
		q.nodes[i] = m.AllocLocal(i, qWords)
	}
	return q
}

func (q *qsyncLock) Name() string { return "qsync" }

func (q *qsyncLock) Acquire(p *machine.Proc) {
	n := q.nodes[p.ID()]
	p.Store(n+qNext, 0)
	pred := p.FetchStore(q.cell, machine.PtrWord(n))
	if pred == 0 {
		return // cell was free: we hold the lock
	}
	// Must appear "waiting" before the predecessor can see us.
	p.Store(n+qStatus, 1)
	p.Store(machine.WordPtr(pred)+qNext, machine.PtrWord(n))
	p.SpinUntilEq(n+qStatus, 0) // local spin
}

func (q *qsyncLock) Release(p *machine.Proc) {
	n := q.nodes[p.ID()]
	next := p.Load(n + qNext)
	if next == 0 {
		// No known successor: try to swing the cell back to free.
		if p.CompareAndSwap(q.cell, machine.PtrWord(n), 0) {
			return
		}
		// A successor is mid-enqueue; wait (locally) for the link.
		next = p.SpinWhileEq(n+qNext, 0)
	}
	p.Store(machine.WordPtr(next)+qStatus, 0) // direct hand-off
}
