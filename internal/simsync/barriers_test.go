package simsync

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/topo"
)

// Every barrier must be safe (nobody leaves early) on every model, for a
// spread of processor counts including awkward non-powers-of-two.
func TestAllBarriersSafety(t *testing.T) {
	for _, info := range Barriers() {
		for _, model := range []topo.Topology{topo.Ideal, topo.Bus, topo.NUMA} {
			for _, procs := range []int{1, 2, 3, 5, 8, 13, 16} {
				info, model, procs := info, model, procs
				name := info.Name + "/" + model.Name() + "/" + itoa(procs)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					res, err := RunBarrier(
						machine.Config{Procs: procs, Topo: model, Seed: 17},
						info,
						BarrierOpts{Episodes: 12, Work: 30},
					)
					if err != nil {
						t.Fatal(err)
					}
					if res.CyclesPerEpisode <= 0 {
						t.Fatalf("non-positive cycles per episode: %v", res.CyclesPerEpisode)
					}
				})
			}
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// Barriers must be reusable: many episodes with zero work stress the
// sense/epoch recycling logic hardest.
func TestBarriersReusableBackToBack(t *testing.T) {
	for _, info := range Barriers() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			t.Parallel()
			_, err := RunBarrier(
				machine.Config{Procs: 7, Topo: topo.Bus, Seed: 1},
				info,
				BarrierOpts{Episodes: 50, Work: 0},
			)
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// The central barrier funnels everyone through one counter and one
// sense word: on NUMA its episodes must be clearly slower than the
// local-spin qsync tree (the polls queue at the hot module and inflate
// everyone's latency), and its traffic higher.
func TestCentralBarrierHotSpotVsQSyncTree(t *testing.T) {
	run := func(name string, procs int) BarrierResult {
		info, ok := BarrierByName(name)
		if !ok {
			t.Fatalf("unknown barrier %q", name)
		}
		res, err := RunBarrier(
			machine.Config{Procs: procs, Topo: topo.NUMA, Seed: 9},
			info,
			BarrierOpts{Episodes: 10, Work: 40},
		)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	central := run("central", 16)
	qtree := run("qsync-tree", 16)
	if central.CyclesPerEpisode < qtree.CyclesPerEpisode*1.5 {
		t.Fatalf("central episodes (%.0f cyc) not clearly slower than qsync-tree (%.0f)",
			central.CyclesPerEpisode, qtree.CyclesPerEpisode)
	}
	if central.TrafficPerEpisode <= qtree.TrafficPerEpisode {
		t.Fatalf("central traffic (%.1f refs/ep) not above qsync-tree (%.1f)",
			central.TrafficPerEpisode, qtree.TrafficPerEpisode)
	}
}

// Dissemination issues exactly one remote signal per processor per round
// on NUMA: ceil(log2 P) remote stores per processor per episode, plus
// nothing for spinning (all spins local).
func TestDisseminationRemoteStoresPerEpisode(t *testing.T) {
	const procs = 16 // log2 = 4
	info, _ := BarrierByName("dissemination")
	res, err := RunBarrier(
		machine.Config{Procs: procs, Topo: topo.NUMA, Seed: 2},
		info,
		BarrierOpts{Episodes: 20, Work: 0},
	)
	if err != nil {
		t.Fatal(err)
	}
	perProcPerEp := res.TrafficPerEpisode / procs
	// 4 rounds -> 4 remote flag stores. Allow a little slop for the
	// first-episode cold effects.
	if perProcPerEp < 3.5 || perProcPerEp > 5.0 {
		t.Fatalf("dissemination made %.2f remote refs/proc/episode, want ~4", perProcPerEp)
	}
}

// With skewed work the barrier time is dominated by the slowest arrival;
// all algorithms should produce comparable episode times (within a small
// factor), or something is broken in release propagation.
func TestBarrierEpisodeTimesComparableUnderSkew(t *testing.T) {
	var minT, maxT float64
	for _, info := range Barriers() {
		res, err := RunBarrier(
			machine.Config{Procs: 8, Topo: topo.Bus, Seed: 33},
			info,
			BarrierOpts{Episodes: 10, Work: 2000},
		)
		if err != nil {
			t.Fatal(err)
		}
		v := res.CyclesPerEpisode
		if minT == 0 || v < minT {
			minT = v
		}
		if v > maxT {
			maxT = v
		}
	}
	if maxT > minT*2 {
		t.Fatalf("episode times spread too wide under skew: min %.0f max %.0f", minT, maxT)
	}
}

func TestBarrierByNameUnknown(t *testing.T) {
	if _, ok := BarrierByName("nope"); ok {
		t.Fatal("BarrierByName accepted a bogus name")
	}
}

// Determinism: the same barrier workload twice gives identical cycle counts.
func TestBarrierDeterministicReplay(t *testing.T) {
	run := func() BarrierResult {
		info, _ := BarrierByName("tournament")
		res, err := RunBarrier(
			machine.Config{Procs: 10, Topo: topo.NUMA, Seed: 5},
			info,
			BarrierOpts{Episodes: 15, Work: 100},
		)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Stats.RemoteRefs != b.Stats.RemoteRefs {
		t.Fatalf("replay diverged: %v/%v cycles, %v/%v refs",
			a.Cycles, b.Cycles, a.Stats.RemoteRefs, b.Stats.RemoteRefs)
	}
}
