package simsync

import (
	"repro/internal/machine"
	"repro/internal/sim"
)

// This file holds the self-healing primitives built on the machine's
// crash-recovery seam (fault restarts, the deterministic heartbeat
// failure detector exposed as Proc.Suspects, and per-processor
// incarnations): a fencing-token lease lock whose stale writers are
// detected rather than trusted, a queue lock that excises
// suspected-dead queue nodes so FIFO hand-off survives the crash that
// wedges qsync, and a reconfigurable barrier that drops detected-dead
// processors from the episode and lets recovered ones rejoin. All
// three are deterministic and fault-free-exact, so they register in
// the ordinary sweeps; the fault harness tightens their bounds.

// FencedLock is a Lock whose critical-section writes can be fenced: a
// GuardedStore by a holder whose tenure has been superseded (its lease
// expired and someone took over) is suppressed and counted instead of
// corrupting shared state. This is the classic fencing-token discipline:
// the lock hands every acquire a monotonically increasing token, and
// the write path refuses tokens older than the newest one issued.
type FencedLock interface {
	Lock
	GuardedStore(p *machine.Proc, a machine.Addr, v machine.Word) bool
}

// ---------------------------------------------------------------------
// fencing-token lease lock
// ---------------------------------------------------------------------

// fenceLock wraps the lease-lock protocol with an epoch word: every
// acquire — first grant or takeover — increments the epoch with a
// fetch&add, and the value it returns is the holder's fencing token.
// A holder that lost its lease mid-section still *thinks* it holds the
// lock, but its token is stale the instant the usurper's fetch&add
// lands, so GuardedStore detects and suppresses the zombie write. The
// epoch therefore turns the lease lock's one unavoidable weakness
// (a usurped holder briefly acting like an owner) into a counted,
// harmless event.
type fenceLock struct {
	lease  leaseLock
	epoch  machine.Addr
	tokens []machine.Word // host-side: fencing token from each processor's last acquire

	staleWrites uint64 // GuardedStores suppressed on a stale token
	renewals    uint64 // successful lease renewals
}

// NewLeaseFence builds a fencing lease lock with an effectively
// infinite term: fault-free (every registry sweep) it is a plain
// polling CAS lock whose epoch counts acquires, and no write is ever
// fenced. Fault experiments shorten the term with NewLeaseFenceTerm.
func NewLeaseFence(m *machine.Machine) Lock {
	return NewLeaseFenceTerm(m, 1<<40, 64)
}

// NewLeaseFenceTerm builds a fencing lease lock with an explicit lease
// term and poll period.
func NewLeaseFenceTerm(m *machine.Machine, lease, poll sim.Time) Lock {
	if lease <= 0 {
		lease = 1
	}
	if poll <= 0 {
		poll = 1
	}
	return &fenceLock{
		lease:  leaseLock{word: m.AllocShared(1), lease: lease, poll: poll},
		epoch:  m.AllocShared(1),
		tokens: make([]machine.Word, m.Procs()),
	}
}

func (l *fenceLock) Name() string { return "lease-fence" }

func (l *fenceLock) Acquire(p *machine.Proc) {
	l.lease.Acquire(p)
	// The token is the epoch value after our increment. Between the
	// lease CAS and this fetch&add no other processor can acquire (the
	// lease word is ours and unexpired for a full term), so tokens are
	// issued in acquisition order.
	l.tokens[p.ID()] = p.FetchAdd(l.epoch, 1) + 1
}

// Renew extends the holder's lease by a full term from now, reporting
// whether the renewal won. A renewal loses exactly when the lease
// already expired and a usurper's CAS landed first — the (when, seq)
// tie at the expiry instant resolves deterministically in the engine.
func (l *fenceLock) Renew(p *machine.Proc) bool {
	v := p.Load(l.lease.word)
	if int(v>>leaseExpBits) != p.ID()+1 {
		return false // already usurped; nothing to renew
	}
	if p.CompareAndSwap(l.lease.word, v, l.lease.pack(p, p.Now()+l.lease.lease)) {
		l.renewals++
		return true
	}
	return false
}

func (l *fenceLock) Release(p *machine.Proc) {
	l.lease.Release(p)
}

// GuardedStore writes v to a only when this processor's fencing token
// is still the newest issued; a stale token means the lease was taken
// over and the write is suppressed (and counted) instead of stomping
// the usurper's critical section.
func (l *fenceLock) GuardedStore(p *machine.Proc, a machine.Addr, v machine.Word) bool {
	if p.Load(l.epoch) != l.tokens[p.ID()] {
		l.staleWrites++
		return false
	}
	p.Store(a, v)
	return true
}

// Token returns the fencing token from processor pid's last acquire.
func (l *fenceLock) Token(pid int) machine.Word { return l.tokens[pid] }

// Takeovers reports how many acquires usurped an expired lease.
func (l *fenceLock) Takeovers() uint64 { return l.lease.takeovers }

// StaleWrites reports how many GuardedStores were fenced off.
func (l *fenceLock) StaleWrites() uint64 { return l.staleWrites }

// Renewals reports how many lease renewals succeeded.
func (l *fenceLock) Renewals() uint64 { return l.renewals }

// ---------------------------------------------------------------------
// self-healing ticket queue lock
// ---------------------------------------------------------------------

// Slot layout for healQueueLock: ticket in the high bits, owner
// (processor index + 1) in the low healOwnerBits. One slot per
// processor suffices: tickets t and t-P can never be outstanding
// together (each processor holds at most one ticket at a time), so a
// slot is only ever overwritten after its previous ticket was served
// or excised.
const (
	healOwnerBits = 12
	healOwnerMask = machine.Word(1)<<healOwnerBits - 1
)

// healQueueLock is a ticket lock whose waiters heal the queue: each
// polling waiter identifies the processor owning the head ticket (via
// its announcement slot) and, when the failure detector suspects that
// owner dead, excises the ticket with a CAS on the serving counter so
// hand-off flows past the corpse. A waiter whose own ticket was
// excised from under it (a false positive, or its pre-crash ticket
// observed after rebirth) simply re-enqueues with a fresh ticket. A
// grace timeout backstops the detector: a head ticket that stays stuck
// past the grace period is excised unconditionally, which unwedges
// tickets whose dead owner recovered (clearing its suspicion) without
// ever draining its old ticket.
//
// Fault-free the lock is a plain FIFO ticket queue — nothing is ever
// suspected and the default grace is unreachable — so it registers in
// the ordinary sweeps. This is the lock FT3 measures against qsync,
// whose dead-node hand-off chain wedges forever under the same crash.
type healQueueLock struct {
	next    machine.Addr // ticket dispenser
	serving machine.Addr // lowest unserved ticket
	slots   machine.Addr // procs words: per-slot ticket announcement
	procs   int
	poll    sim.Time
	grace   sim.Time

	tickets   []machine.Word // host-side: each processor's current ticket
	excisions uint64         // dead-head tickets removed from the queue
	requeues  uint64         // acquires that had to take a fresh ticket
}

// NewHealQueue builds a self-healing ticket lock with a grace timeout
// far above any live holder's head residence, so fault-free runs are
// exact FIFO. Excision is normally detector-driven; the grace backstop
// covers the one case the detector cannot: a ticket abandoned by a
// crash whose owner was already reborn (and so no longer suspected) by
// the time the ticket reached the head. Fault experiments tune the
// knobs with NewHealQueueGrace.
func NewHealQueue(m *machine.Machine) Lock {
	return NewHealQueueGrace(m, 1<<15, 64)
}

// NewHealQueueGrace builds a self-healing ticket lock with an explicit
// head-stuck grace timeout and poll period. The grace period must
// comfortably exceed any live holder's critical-section residence
// (including stalls), or the backstop will excise live holders.
func NewHealQueueGrace(m *machine.Machine, grace, poll sim.Time) Lock {
	if grace <= 0 {
		grace = 1
	}
	if poll <= 0 {
		poll = 1
	}
	return &healQueueLock{
		next:    m.AllocShared(1),
		serving: m.AllocShared(1),
		slots:   m.AllocShared(m.Procs()),
		procs:   m.Procs(),
		poll:    poll,
		grace:   grace,
		tickets: make([]machine.Word, m.Procs()),
	}
}

func (l *healQueueLock) Name() string { return "qheal" }

func (l *healQueueLock) Acquire(p *machine.Proc) {
	for {
		t := p.FetchAdd(l.next, 1)
		// Announce the ticket so waiters behind us can identify (and,
		// if we die, excise) us.
		p.Store(l.slots+machine.Addr(int(t)%l.procs), t<<healOwnerBits|machine.Word(p.ID()+1))
		if l.waitTurn(p, t) {
			l.tickets[p.ID()] = t
			return
		}
		l.requeues++ // our ticket was excised from under us: take another
	}
}

// waitTurn polls until ticket t is served (true) or excised (false),
// healing the queue head along the way.
func (l *healQueueLock) waitTurn(p *machine.Proc, t machine.Word) bool {
	var headSeen machine.Word
	headSince := p.Now()
	first := true
	for {
		s := p.Load(l.serving)
		if s == t {
			return true
		}
		if s > t {
			return false
		}
		if first || s != headSeen {
			headSeen, headSince = s, p.Now()
			first = false
		}
		slot := p.Load(l.slots + machine.Addr(int(s)%l.procs))
		if slot>>healOwnerBits == s {
			if owner := int(slot&healOwnerMask) - 1; owner != p.ID() && p.Suspects(owner) {
				// The head ticket's owner is suspected dead: excise it.
				// The CAS makes excision idempotent across waiters, and
				// a serving counter can only move forward, so a healthy
				// hand-off can never be rewound.
				if p.CompareAndSwap(l.serving, s, s+1) {
					l.excisions++
				}
				continue
			}
		}
		if p.Now()-headSince >= l.grace {
			// Backstop: the head has not moved for a full grace period.
			// Catches dead tickets whose owner already recovered (its
			// suspicion cleared at rebirth, but its old ticket remains).
			if p.CompareAndSwap(l.serving, s, s+1) {
				l.excisions++
			}
			continue
		}
		p.Delay(l.poll)
	}
}

func (l *healQueueLock) Release(p *machine.Proc) {
	// CAS, not store: if our ticket was grace-excised while we were in
	// the critical section, serving has moved past us and the hand-off
	// already happened — a blind increment would skip a live waiter.
	t := l.tickets[p.ID()]
	p.CompareAndSwap(l.serving, t, t+1)
}

// Excisions reports how many dead head tickets waiters removed.
func (l *healQueueLock) Excisions() uint64 { return l.excisions }

// Requeues reports how many acquires re-enqueued after their ticket
// was excised.
func (l *healQueueLock) Requeues() uint64 { return l.requeues }

// ---------------------------------------------------------------------
// reconfigurable barrier
// ---------------------------------------------------------------------

// reconfBarrier is an all-arrive barrier that reconfigures its
// membership under crashes: every completion scan treats a processor
// as arrived, evicted, or pending — and a pending processor the
// failure detector suspects dead is evicted on the spot (a shared mark,
// so the decision is made once and seen by all). Episodes complete
// over the surviving membership. A recovered processor finds its
// eviction mark, clears it, and catches up: it replays its missed
// episodes, each completing instantly because every survivor has
// already arrived at (or past) it, until it reaches the group's
// frontier and participates normally again. The survivors' schedule
// never depends on whether the corpse returns — while the mark stands
// they treat the processor as absent, and a catch-up arrival at an old
// episode only re-satisfies scans that were already satisfied.
//
// Fault-free nothing is ever suspected, so the barrier is an exact
// all-arrive barrier (release is raised only when every processor has
// arrived) and registers in the ordinary correctness sweeps, unlike
// the straggler barrier whose budget expiry force-opens episodes.
type reconfBarrier struct {
	arrive  machine.Addr // procs words: latest episode each processor arrived at
	dead    machine.Addr // procs words: eviction marks
	release machine.Addr // highest completed episode
	procs   int
	budget  sim.Time // poll budget between completion re-scans
	poll    sim.Time

	epoch     []machine.Word // host-side per-processor episode
	evictions uint64         // suspected-dead processors removed from an episode
	rejoins   uint64         // recovered processors that re-entered
}

// NewReconfBarrier builds a reconfigurable barrier with the default
// re-scan budget.
func NewReconfBarrier(m *machine.Machine) Barrier {
	return NewReconfBudget(m, 4096)
}

// NewReconfBudget builds a reconfigurable barrier whose waiters re-run
// the completion scan every budget cycles while polling for release.
func NewReconfBudget(m *machine.Machine, budget sim.Time) Barrier {
	if budget <= 0 {
		budget = 1
	}
	poll := budget / 16
	if poll <= 0 {
		poll = 1
	}
	return &reconfBarrier{
		arrive:  m.AllocShared(m.Procs()),
		dead:    m.AllocShared(m.Procs()),
		release: m.AllocShared(1),
		procs:   m.Procs(),
		budget:  budget,
		poll:    poll,
		epoch:   make([]machine.Word, m.Procs()),
	}
}

func (b *reconfBarrier) Name() string { return "reconf" }

// raiseTo lifts the release word to at least e (CAS-max; see the
// straggler barrier for why a blind store would be wrong).
func (b *reconfBarrier) raiseTo(p *machine.Proc, e machine.Word) {
	for {
		v := p.Load(b.release)
		if v >= e {
			return
		}
		if p.CompareAndSwap(b.release, v, e) {
			return
		}
	}
}

// scan runs one completion pass for episode e: every processor must be
// arrived, evicted, or — when suspected dead — evicted now. Reports
// whether the episode is complete over the surviving membership.
func (b *reconfBarrier) scan(p *machine.Proc, e machine.Word) bool {
	done := true
	for q := 0; q < b.procs; q++ {
		if machine.Word(p.Load(b.arrive+machine.Addr(q))) >= e {
			continue
		}
		if p.Load(b.dead+machine.Addr(q)) != 0 {
			continue
		}
		if p.Suspects(q) {
			p.Store(b.dead+machine.Addr(q), 1)
			b.evictions++
			continue
		}
		done = false
	}
	return done
}

func (b *reconfBarrier) Wait(p *machine.Proc) {
	me := p.ID()
	if p.Load(b.dead+machine.Addr(me)) != 0 {
		// We were evicted while dead (or falsely suspected): clear the
		// mark and catch up from our own episode counter. Missed
		// episodes complete instantly — everyone else already arrived
		// at them or is evicted — so no survivor ever waits on a corpse
		// that might not return, yet a returning processor still gets
		// its full episode count.
		p.Store(b.dead+machine.Addr(me), 0)
		b.rejoins++
	}
	e := b.epoch[me] + 1
	b.epoch[me] = e
	p.Store(b.arrive+machine.Addr(me), e)
	if b.scan(p, e) {
		b.raiseTo(p, e)
		return
	}
	deadline := p.Now() + b.budget
	for p.Load(b.release) < e {
		if p.Now() >= deadline {
			// Re-scan: late crashes become suspicions only with time, so
			// waiting on release alone could park the survivors forever.
			if b.scan(p, e) {
				b.raiseTo(p, e)
				return
			}
			deadline = p.Now() + b.budget
		}
		p.Delay(b.poll)
	}
}

// Leave removes this processor from the group voluntarily: scans treat
// it like an evicted processor from now on. A processor done with its
// episodes must leave, or a recovered straggler catching up past the
// group's frontier (its crashed incarnation consumed a barrier episode
// the workload never counted) would wait forever on peers that already
// finished. A later Wait — a rebirth with quota left — re-admits it
// through the ordinary rejoin path.
func (b *reconfBarrier) Leave(p *machine.Proc) {
	p.Store(b.dead+machine.Addr(p.ID()), 1)
}

// Evictions reports how many suspected-dead processors were removed
// from an episode.
func (b *reconfBarrier) Evictions() uint64 { return b.evictions }

// Rejoins reports how many recovered processors re-entered the group.
func (b *reconfBarrier) Rejoins() uint64 { return b.rejoins }
