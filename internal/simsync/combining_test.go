package simsync

import (
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Both counters must produce exact totals and unique pre-increment
// values (RunCounter enforces both) on every model.
func TestCountersCorrect(t *testing.T) {
	for _, info := range Counters() {
		for _, model := range []topo.Topology{topo.Ideal, topo.Bus, topo.NUMA} {
			for _, procs := range []int{1, 2, 7, 16} {
				info, model, procs := info, model, procs
				name := info.Name + "/" + model.Name() + "/" + itoa(procs)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					res, err := RunCounter(
						machine.Config{Procs: procs, Topo: model, Seed: 19},
						info,
						CounterOpts{Incs: 40, Think: 25},
					)
					if err != nil {
						t.Fatal(err)
					}
					if res.Incs != uint64(procs)*40 {
						t.Fatalf("incs = %d", res.Incs)
					}
				})
			}
		}
	}
}

// Hot-spot relief: under heavy contention on NUMA, combining must
// reduce traffic to the counter's home module versus plain fetch&add.
func TestCombiningRelievesHotSpot(t *testing.T) {
	run := func(name string) float64 {
		info, ok := CounterByName(name)
		if !ok {
			t.Fatalf("unknown counter %q", name)
		}
		res, err := RunCounter(
			machine.Config{Procs: 32, Topo: topo.NUMA, Seed: 5},
			info,
			CounterOpts{Incs: 40, Think: 0}, // no think: maximum pressure
		)
		if err != nil {
			t.Fatal(err)
		}
		return res.CyclesPerInc
	}
	fa, comb := run("ctr-fa"), run("ctr-combine")
	if comb >= fa {
		t.Fatalf("combining (%.1f cyc/inc) not faster than fetch&add (%.1f) under hot-spot pressure", comb, fa)
	}
}

// With a single processor combining never matches; the timeout path
// must still deliver every increment.
func TestCombiningSingleProcTimeoutPath(t *testing.T) {
	info, _ := CounterByName("ctr-combine")
	res, err := RunCounter(
		machine.Config{Procs: 1, Topo: topo.Bus, Seed: 1},
		info,
		CounterOpts{Incs: 20},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Incs != 20 {
		t.Fatalf("incs = %d", res.Incs)
	}
}

func TestCounterByNameUnknown(t *testing.T) {
	if _, ok := CounterByName("bogus"); ok {
		t.Fatal("bogus counter found")
	}
}

// Property: arbitrary processor counts and paces never break the
// counter's exactness (RunCounter fails on duplicates or lost counts).
func TestCombiningCounterProperty(t *testing.T) {
	info, _ := CounterByName("ctr-combine")
	f := func(seed uint64, procsRaw, thinkRaw uint8) bool {
		procs := int(procsRaw%12) + 1
		think := int64(thinkRaw % 60)
		_, err := RunCounter(
			machine.Config{Procs: procs, Topo: topo.NUMA, Seed: seed | 1},
			info,
			CounterOpts{Incs: 15, Think: sim.Time(think)},
		)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCounterDeterministicReplay(t *testing.T) {
	run := func() CounterResult {
		info, _ := CounterByName("ctr-combine")
		res, err := RunCounter(
			machine.Config{Procs: 9, Topo: topo.Bus, Seed: 77},
			info, CounterOpts{Incs: 25, Think: 10},
		)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Stats.BusTxns != b.Stats.BusTxns {
		t.Fatalf("replay diverged")
	}
}
