package simsync

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Unit tests for the fault-tolerant primitives in robust.go, driving
// the timeout, takeover, and forced-release paths directly rather than
// through generated plans.

func robustMachine(t *testing.T, procs int) *machine.Machine {
	t.Helper()
	m, err := machine.New(machine.Config{Procs: procs, Topo: topo.Bus, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestTASDeadlineTimesOut: an AcquireWithin against a held latch burns
// its budget, returns false, and leaves the caller free to proceed; a
// later attempt after the release succeeds.
func TestTASDeadlineTimesOut(t *testing.T) {
	m := robustMachine(t, 2)
	lk := NewTASDeadlineSlice(m, 500, 100).(*deadlineTASLock)

	var firstTry bool
	var secondTry bool
	err := m.Run(func(p *machine.Proc) {
		switch p.ID() {
		case 0:
			lk.Acquire(p)
			p.Delay(2000)
			lk.Release(p)
		case 1:
			p.Delay(100) // let P0 take the latch first
			start := p.Now()
			firstTry = lk.AcquireWithin(p, 300)
			if got := p.Now() - start; got < 300 {
				t.Errorf("timed-out attempt burned only %d of its 300-cycle budget", got)
			}
			p.Delay(3000) // well past P0's release
			secondTry = lk.AcquireWithin(p, 300)
			if secondTry {
				lk.Release(p)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if firstTry {
		t.Error("acquire against a held latch should time out")
	}
	if !secondTry {
		t.Error("acquire after release should succeed")
	}
}

// TestTASDeadlineBlockingRetries: the blocking Acquire is a loop of
// bounded slices, so it eventually wins and counts the expired slices.
func TestTASDeadlineBlockingRetries(t *testing.T) {
	m := robustMachine(t, 2)
	lk := NewTASDeadlineSlice(m, 200, 50).(*deadlineTASLock)

	err := m.Run(func(p *machine.Proc) {
		switch p.ID() {
		case 0:
			lk.Acquire(p)
			p.Delay(1500)
			lk.Release(p)
		case 1:
			p.Delay(100)
			lk.Acquire(p) // must slice-timeout a few times, then win
			lk.Release(p)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if lk.Timeouts() == 0 {
		t.Error("blocking acquire against a long hold should expire at least one slice")
	}
}

// TestLeaseTakeover: a holder that sits on the lock past its lease term
// (the simulation stand-in for a crash) is usurped at expiry, the
// usurper's identity lands in the owner bits, and the usurped holder's
// late Release is a no-op.
func TestLeaseTakeover(t *testing.T) {
	m := robustMachine(t, 2)
	lk := NewLeaseTerm(m, 500, 20).(*leaseLock)

	err := m.Run(func(p *machine.Proc) {
		switch p.ID() {
		case 0:
			lk.Acquire(p)
			p.Delay(2000) // sit far past the 500-cycle lease
			lk.Release(p) // usurped by now: must not free P1's lease
		case 1:
			p.Delay(100)
			lk.Acquire(p) // blocks until P0's lease expires, then usurps
			if owner := int(m.Peek(lk.word) >> leaseExpBits); owner != p.ID()+1 {
				t.Errorf("after takeover, owner bits = %d, want %d", owner, p.ID()+1)
			}
			p.Delay(3000) // outlive P0's late Release while still holding
			if owner := int(m.Peek(lk.word) >> leaseExpBits); owner != p.ID()+1 {
				t.Errorf("usurped holder's release stole the lock: owner bits = %d", owner)
			}
			lk.Release(p)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if lk.Takeovers() != 1 {
		t.Errorf("takeovers = %d, want 1", lk.Takeovers())
	}
	if got := m.Peek(lk.word); got != 0 {
		t.Errorf("lock word after final release = %#x, want 0", got)
	}
}

// TestLeaseNoTakeoverWhenHealthy: with releases well inside the term,
// the lease lock is a plain mutual-exclusion lock and never usurps.
func TestLeaseNoTakeoverWhenHealthy(t *testing.T) {
	m := robustMachine(t, 4)
	lk := NewLeaseTerm(m, 10000, 20).(*leaseLock)

	err := m.Run(func(p *machine.Proc) {
		for i := 0; i < 5; i++ {
			lk.Acquire(p)
			p.Delay(50)
			lk.Release(p)
			p.Delay(30)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if lk.Takeovers() != 0 {
		t.Errorf("healthy run recorded %d takeovers", lk.Takeovers())
	}
}

// TestStragglerBarrierTimeout: one processor lagging far past the wait
// budget forces the episode open — the punctual processors time out and
// proceed, and the run completes without deadlock.
func TestStragglerBarrierTimeout(t *testing.T) {
	m := robustMachine(t, 3)
	bar := NewStragglerBarrier(m, 400).(*stragglerBarrier)

	err := m.Run(func(p *machine.Proc) {
		if p.ID() == 2 {
			p.Delay(5000) // straggle far past everyone's budget
		}
		bar.Wait(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if bar.Timeouts() < 1 {
		t.Errorf("timeouts = %d, want at least 1 forced release", bar.Timeouts())
	}
}

// TestStragglerBarrierNoTimeouts: balanced arrivals over several
// episodes never consume the budget, so the barrier behaves like a
// plain sense barrier.
func TestStragglerBarrierNoTimeouts(t *testing.T) {
	m := robustMachine(t, 4)
	bar := NewStragglerBarrier(m, 100000).(*stragglerBarrier)

	err := m.Run(func(p *machine.Proc) {
		for e := 0; e < 4; e++ {
			p.Delay(sim.Time(10 * (p.ID() + 1)))
			bar.Wait(p)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if bar.Timeouts() != 0 {
		t.Errorf("balanced run recorded %d timeouts", bar.Timeouts())
	}
}

// TestStragglerBarrierSurvivesCrash: a crashed processor stops arriving
// forever; every surviving wait from then on completes by budget expiry
// and the workload still finishes.
func TestStragglerBarrierSurvivesCrash(t *testing.T) {
	plan := fault.NewPlan("barrier-crash").WithCrash(2, 150)
	res, err := RunBarrierFaulted(nil,
		machine.Config{Procs: 3, Topo: topo.Bus, Seed: 5},
		plan, FaultBarrierOpts{Episodes: 4, Work: 60, Budget: 500, MaxSteps: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeOK {
		t.Errorf("outcome = %s, want ok (survivors must finish)", res.Outcome)
	}
	if res.Crashed != 1 {
		t.Errorf("crashed = %d, want 1", res.Crashed)
	}
	if res.Timeouts == 0 {
		t.Error("survivors should have forced episodes open after the crash")
	}
	// Two survivors times four episodes, plus whatever the victim got
	// through before t=150.
	if res.Episodes < 8 {
		t.Errorf("episodes completed = %d, want at least 8", res.Episodes)
	}
}
