package simsync

import "repro/internal/registry"

// The five simulated algorithm families, each a registry.Set so
// harness sweeps, cmd/syncsim, and benchmarks resolve algorithms
// through one mechanism. Canonical order is registration order: the
// era's baselines first, the reconstructed mechanism (and its modern
// descendants) last.
var (
	// LockSet is the mutual-exclusion family.
	LockSet = registry.NewSet[LockInfo]("sim-locks", func(i LockInfo) string { return i.Name })
	// BarrierSet is the barrier family.
	BarrierSet = registry.NewSet[BarrierInfo]("sim-barriers", func(i BarrierInfo) string { return i.Name })
	// RWLockSet is the reader-writer family.
	RWLockSet = registry.NewSet[RWLockInfo]("sim-rwlocks", func(i RWLockInfo) string { return i.Name })
	// SemaphoreSet is the counting-semaphore family.
	SemaphoreSet = registry.NewSet[SemaphoreInfo]("sim-semaphores", func(i SemaphoreInfo) string { return i.Name })
	// CounterSet is the hot-spot counter family.
	CounterSet = registry.NewSet[CounterInfo]("sim-counters", func(i CounterInfo) string { return i.Name })
)

func init() {
	LockSet.Register(
		LockInfo{Name: "tas", Make: NewTAS, FIFO: false},
		LockInfo{Name: "ttas", Make: NewTTAS, FIFO: false},
		LockInfo{Name: "tas-bo", Make: NewTASBackoff, FIFO: false},
		LockInfo{Name: "ticket", Make: NewTicket, FIFO: true},
		LockInfo{Name: "ticket-bo", Make: NewTicketBackoff, FIFO: true},
		LockInfo{Name: "anderson", Make: NewAnderson, FIFO: true},
		LockInfo{Name: "gt", Make: NewGraunkeThakkar, FIFO: true},
		LockInfo{Name: "qsync", Make: NewQSync, FIFO: true},
		// Fault-tolerant locks (robust.go). With default parameters —
		// long slices, an effectively infinite lease — they are plain
		// deterministic locks in fault-free sweeps; the fault harness
		// tightens their bounds to exercise timeout and takeover paths.
		LockInfo{Name: "tas-deadline", Make: NewTASDeadline, FIFO: false},
		LockInfo{Name: "lease", Make: NewLease, FIFO: false},
		// Self-healing locks (selfheal.go). Same contract: fault-free
		// with default parameters lease-fence is a plain lease lock whose
		// epoch counts acquires, and qheal is an exact FIFO ticket lock
		// (nothing is ever suspected, the grace backstop is unreachable).
		LockInfo{Name: "lease-fence", Make: NewLeaseFence, FIFO: false},
		LockInfo{Name: "qheal", Make: NewHealQueue, FIFO: true},
	)
	BarrierSet.Register(
		BarrierInfo{Name: "central", Make: NewCentralBarrier},
		BarrierInfo{Name: "combining", Make: NewCombiningBarrier},
		BarrierInfo{Name: "dissemination", Make: NewDisseminationBarrier},
		BarrierInfo{Name: "tournament", Make: NewTournamentBarrier},
		BarrierInfo{Name: "qsync-tree", Make: NewQSyncTreeBarrier},
		// Reconfigurable barrier (selfheal.go): fault-free it is an
		// exact all-arrive barrier, so unlike straggler it registers.
		BarrierInfo{Name: "reconf", Make: NewReconfBarrier},
	)
	RWLockSet.Register(
		RWLockInfo{Name: "rw-ctr", Make: NewCounterRW, Fair: false},
		RWLockInfo{Name: "rw-qsync", Make: NewQSyncRW, Fair: true},
	)
	SemaphoreSet.Register(
		SemaphoreInfo{Name: "sem-central", Make: NewCentralSemaphore},
		SemaphoreInfo{Name: "sem-qsync", Make: NewQSyncSemaphore},
		SemaphoreInfo{Name: "sem-sharded", Make: NewShardedSemaphore},
	)
	CounterSet.Register(
		CounterInfo{Name: "ctr-fa", Make: NewFetchAddCounter},
		CounterInfo{Name: "ctr-combine", Make: NewCombiningCounter},
		CounterInfo{Name: "ctr-sharded", Make: NewShardedCounter},
	)
}

// Locks returns the full lock registry in canonical order.
func Locks() []LockInfo { return LockSet.All() }

// LockByName returns the lock registry entry for name, or false.
func LockByName(name string) (LockInfo, bool) { return LockSet.ByName(name) }

// Barriers returns the barrier registry in canonical order.
func Barriers() []BarrierInfo { return BarrierSet.All() }

// BarrierByName returns the barrier registry entry for name, or false.
func BarrierByName(name string) (BarrierInfo, bool) { return BarrierSet.ByName(name) }

// RWLocks returns the reader-writer registry in canonical order.
func RWLocks() []RWLockInfo { return RWLockSet.All() }

// RWLockByName returns the reader-writer registry entry for name, or false.
func RWLockByName(name string) (RWLockInfo, bool) { return RWLockSet.ByName(name) }

// Semaphores returns the semaphore registry in canonical order.
func Semaphores() []SemaphoreInfo { return SemaphoreSet.All() }

// SemaphoreByName returns the semaphore registry entry for name, or false.
func SemaphoreByName(name string) (SemaphoreInfo, bool) { return SemaphoreSet.ByName(name) }

// Counters returns the counter registry in canonical order.
func Counters() []CounterInfo { return CounterSet.All() }

// CounterByName returns the counter registry entry for name, or false.
func CounterByName(name string) (CounterInfo, bool) { return CounterSet.ByName(name) }
