package simsync

import (
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/topo"
)

// shardedSem is the counting semaphore built on the same placement
// idea as the sharded counter: the permit pool is striped across the
// machine's locality groups, each stripe living in its group's home
// module (machine.AllocPlaced). V returns a permit to the caller's own
// stripe — a cheap, contention-free fetch&add. P tries the caller's
// stripe first and then sweeps the others, so a permit released
// anywhere can satisfy a waiter anywhere (no lost permits), but in the
// common producer/consumer steady state permits circulate within a
// group and the expensive links stay quiet. On a flat machine every
// processor is its own group and the semaphore degenerates to
// per-processor permit caching with stealing.
//
// A stripe is decremented with a load + compare&swap pair (the era's
// optimistic "decrement if positive"); a failed CAS just moves the
// sweep along — some other processor got the permit, which is progress
// globally. An empty sweep backs off for a fixed, draw-free delay
// before rescanning, keeping the wait loop deterministic and bounded
// per round.
type shardedSem struct {
	stripes []machine.Addr
	group   []int32 // processor -> starting stripe
	groups  int
}

// semScanBackoff is the fixed pause between permit sweeps. Draw-free
// (no RNG), so waits stay cheap for the engine and identical across
// runs by construction.
const semScanBackoff = sim.Time(24)

// NewShardedSemaphore builds the group-striped counting semaphore with
// the initial permits distributed round-robin across stripes.
func NewShardedSemaphore(m *machine.Machine, permits int) Semaphore {
	t := m.Topo()
	procs := m.Procs()
	groups := topo.Groups(t, procs)
	s := &shardedSem{
		stripes: make([]machine.Addr, groups),
		group:   make([]int32, procs),
		groups:  groups,
	}
	pl := m.Placement()
	for g := 0; g < groups; g++ {
		s.stripes[g] = m.AllocPlaced(pl, t.GroupHome(g, procs), 1)
	}
	for p := 0; p < procs; p++ {
		s.group[p] = int32(t.Group(p, procs))
	}
	for i := 0; i < permits; i++ {
		g := s.stripes[i%groups]
		m.Poke(g, m.Peek(g)+1)
	}
	return s
}

func (s *shardedSem) Name() string { return "sem-sharded" }

func (s *shardedSem) P(p *machine.Proc) {
	start := int(s.group[p.ID()])
	for {
		for k := 0; k < s.groups; k++ {
			stripe := s.stripes[(start+k)%s.groups]
			v := p.Load(stripe)
			if v > 0 && p.CompareAndSwap(stripe, v, v-1) {
				return
			}
		}
		p.Delay(semScanBackoff)
	}
}

func (s *shardedSem) V(p *machine.Proc) {
	p.FetchAdd(s.stripes[s.group[p.ID()]], 1)
}
