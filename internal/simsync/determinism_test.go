package simsync

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/topo"
)

// Determinism regression: every simulated family, run twice with the
// same seed on every registered topology, must produce bit-identical
// Stats — cycles, traffic, and every per-processor counter. This is
// the guardrail for the processor-side fast path: an operation may
// only retire inline when doing so is invisible to every other
// processor, so any divergence between two runs (or any dependence on
// host scheduling) is a bug in that reasoning, not noise.

// toposUnderTest sweeps the whole topology registry, so a newly
// registered topology is automatically held to the same determinism
// and window-A/B contract as the canonical machines.
func toposUnderTest() []topo.Topology {
	return topo.Registry.All()
}

// procsUnderTest spans the contention regimes: a near-uncontended pair,
// the classic mid-size storm, and a machine large enough that every
// engine path (event queue growth, watcher bursts, spin batching at
// scale) is exercised.
func procsUnderTest() []int {
	return []int{2, 8, 32}
}

// forEachConfig runs fn for every topology × processor-count
// combination in the registry.
func forEachConfig(t *testing.T, fn func(tp topo.Topology, procs int)) {
	t.Helper()
	for _, tp := range toposUnderTest() {
		for _, procs := range procsUnderTest() {
			fn(tp, procs)
		}
	}
}

// assertIdentical runs measure twice and compares the full Stats
// structure including the host-side efficiency fields (Events and
// InlineOps are also compared: the fast-path decisions themselves are
// deterministic functions of the simulation state). A third run forces
// cross-processor spin-window batching off and must match the enabled
// runs on everything except WindowOps itself — event counts and
// sequence-dependent interleavings included, since windowed pops are
// charged to the same counters the per-event path uses. Two further
// runs force inline continuation dispatch off (NoInlineDispatch), one
// per window mode, and must match on everything except
// InlineDispatches itself: executing scripted ops in the drive loop
// instead of over baton handoffs may not move a single event, draw, or
// counter.
func assertIdentical(t *testing.T, name string, measure func(noWindows, noInline bool) (machine.Stats, error)) {
	t.Helper()
	a, err := measure(false, false)
	if err != nil {
		t.Fatalf("%s: first run: %v", name, err)
	}
	b, err := measure(false, false)
	if err != nil {
		t.Fatalf("%s: second run: %v", name, err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("%s: runs diverged:\n  first:  %+v\n  second: %+v", name, a, b)
	}
	if a.Cycles == 0 {
		t.Errorf("%s: run did no simulated work", name)
	}
	c, err := measure(true, false)
	if err != nil {
		t.Fatalf("%s: windows-off run: %v", name, err)
	}
	if c.WindowOps != 0 {
		t.Fatalf("%s: NoSpinWindows run still batched %d window ops", name, c.WindowOps)
	}
	aw := a
	aw.WindowOps = 0
	if !reflect.DeepEqual(aw, c) {
		t.Errorf("%s: window batching changed results:\n  on:  %+v\n  off: %+v", name, aw, c)
	}
	d, err := measure(false, true)
	if err != nil {
		t.Fatalf("%s: no-inline run: %v", name, err)
	}
	if d.InlineDispatches != 0 {
		t.Fatalf("%s: NoInlineDispatch run still dispatched %d continuation ops inline", name, d.InlineDispatches)
	}
	ai := a
	ai.InlineDispatches = 0
	if !reflect.DeepEqual(ai, d) {
		t.Errorf("%s: inline dispatch changed results:\n  inline:  %+v\n  handoff: %+v", name, ai, d)
	}
	e, err := measure(true, true)
	if err != nil {
		t.Fatalf("%s: windows-off no-inline run: %v", name, err)
	}
	if e.WindowOps != 0 || e.InlineDispatches != 0 {
		t.Fatalf("%s: fully-disabled run still batched (win=%d, inline=%d)", name, e.WindowOps, e.InlineDispatches)
	}
	ci := c
	ci.InlineDispatches = 0
	if !reflect.DeepEqual(ci, e) {
		t.Errorf("%s: inline dispatch changed windows-off results:\n  inline:  %+v\n  handoff: %+v", name, ci, e)
	}
}

func TestDeterminismLocks(t *testing.T) {
	forEachConfig(t, func(tp topo.Topology, procs int) {
		for _, info := range Locks() {
			info := info
			name := fmt.Sprintf("%s/%s/P%d", tp.Name(), info.Name, procs)
			assertIdentical(t, name, func(noWindows, noInline bool) (machine.Stats, error) {
				res, err := RunLock(
					machine.Config{Procs: procs, Topo: tp, Seed: 7, NoSpinWindows: noWindows, NoInlineDispatch: noInline},
					info, LockOpts{Iters: 20, CS: 25, Think: 50, CheckMutex: true})
				return res.Stats, err
			})
		}
	})
}

func TestDeterminismBarriers(t *testing.T) {
	forEachConfig(t, func(tp topo.Topology, procs int) {
		for _, info := range Barriers() {
			info := info
			name := fmt.Sprintf("%s/%s/P%d", tp.Name(), info.Name, procs)
			assertIdentical(t, name, func(noWindows, noInline bool) (machine.Stats, error) {
				res, err := RunBarrier(
					machine.Config{Procs: procs, Topo: tp, Seed: 7, NoSpinWindows: noWindows, NoInlineDispatch: noInline},
					info, BarrierOpts{Episodes: 10, Work: 150})
				return res.Stats, err
			})
		}
	})
}

func TestDeterminismRWLocks(t *testing.T) {
	forEachConfig(t, func(tp topo.Topology, procs int) {
		for _, info := range RWLocks() {
			info := info
			name := fmt.Sprintf("%s/%s/P%d", tp.Name(), info.Name, procs)
			assertIdentical(t, name, func(noWindows, noInline bool) (machine.Stats, error) {
				res, err := RunRW(
					machine.Config{Procs: procs, Topo: tp, Seed: 7, NoSpinWindows: noWindows, NoInlineDispatch: noInline},
					info, RWOpts{Iters: 20, ReadFraction: 0.8, Work: 40, Think: 60})
				return res.Stats, err
			})
		}
	})
}

func TestDeterminismSemaphores(t *testing.T) {
	forEachConfig(t, func(tp topo.Topology, procs int) {
		for _, info := range Semaphores() {
			info := info
			name := fmt.Sprintf("%s/%s/P%d", tp.Name(), info.Name, procs)
			assertIdentical(t, name, func(noWindows, noInline bool) (machine.Stats, error) {
				res, err := RunProducerConsumer(
					machine.Config{Procs: procs, Topo: tp, Seed: 7, NoSpinWindows: noWindows, NoInlineDispatch: noInline},
					info, PCOpts{Items: 40, Capacity: 4, Work: 20})
				return res.Stats, err
			})
		}
	})
}

func TestDeterminismCounters(t *testing.T) {
	forEachConfig(t, func(tp topo.Topology, procs int) {
		for _, info := range Counters() {
			info := info
			name := fmt.Sprintf("%s/%s/P%d", tp.Name(), info.Name, procs)
			assertIdentical(t, name, func(noWindows, noInline bool) (machine.Stats, error) {
				res, err := RunCounter(
					machine.Config{Procs: procs, Topo: tp, Seed: 7, NoSpinWindows: noWindows, NoInlineDispatch: noInline},
					info, CounterOpts{Incs: 30, Think: 20})
				return res.Stats, err
			})
		}
	})
}

// TestFastPathEngages pins down that the fast path actually fires: a
// single-processor run has an empty event queue almost throughout, so
// nearly every operation must retire inline rather than through the
// engine. Without this, a regression that silently disabled inlining
// would keep every result correct while giving all the performance back.
func TestFastPathEngages(t *testing.T) {
	info, ok := LockByName("tas")
	if !ok {
		t.Fatal("tas lock missing")
	}
	res, err := RunLock(
		machine.Config{Procs: 1, Topo: topo.Bus, Seed: 1},
		info, LockOpts{Iters: 50, CS: 25, Think: 50, CheckMutex: true})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	ops := st.Loads + st.Stores + st.RMWs
	if st.InlineOps == 0 {
		t.Fatalf("no operations retired inline (ops=%d, events=%d)", ops, st.Events)
	}
	if st.InlineOps*10 < ops*9 {
		t.Errorf("uncontended run should retire ~all ops inline: inline=%d of %d ops (events=%d)",
			st.InlineOps, ops, st.Events)
	}
}

// TestPooledRunsMatchFresh pins the machine-pooling contract: drawing a
// machine from a pool (Reset reuse) must produce results bit-identical
// to constructing a fresh machine — stats, per-processor counters, and
// the RNG-driven workload schedule included. The pooled sequence
// deliberately alternates configurations (topology, processor count,
// algorithm) so every Reset transition — grow, shrink, topology switch —
// is exercised on one reused machine.
func TestPooledRunsMatchFresh(t *testing.T) {
	type cell struct {
		lock string
		cfg  machine.Config
	}
	cells := []cell{
		{"tas", machine.Config{Procs: 8, Topo: topo.Bus, Seed: 7}},
		{"qsync", machine.Config{Procs: 16, Topo: topo.NUMA, Seed: 7}},
		{"ttas", machine.Config{Procs: 4, Topo: topo.Bus, Seed: 9}},
		{"tas", machine.Config{Procs: 8, Topo: topo.Bus, Seed: 7}}, // repeat of cell 0
	}
	opts := LockOpts{Iters: 15, CS: 25, Think: 50, CheckMutex: true}

	var fresh []LockResult
	for _, c := range cells {
		info, ok := LockByName(c.lock)
		if !ok {
			t.Fatalf("unknown lock %q", c.lock)
		}
		res, err := RunLock(c.cfg, info, opts)
		if err != nil {
			t.Fatalf("fresh %s: %v", c.lock, err)
		}
		fresh = append(fresh, res)
	}

	pool := new(machine.Pool)
	for i, c := range cells {
		info, _ := LockByName(c.lock)
		res, err := RunLockIn(pool, c.cfg, info, opts)
		if err != nil {
			t.Fatalf("pooled %s: %v", c.lock, err)
		}
		if !reflect.DeepEqual(res, fresh[i]) {
			t.Errorf("cell %d (%s): pooled run diverged from fresh:\n  fresh:  %+v\n  pooled: %+v",
				i, c.lock, fresh[i], res)
		}
	}
}

// TestPooledReuseAfterInlineRun pins the continuation-state hygiene of
// Reset reuse (the inline-dispatch extension of the PR 7
// Reset-after-abort suite): a machine that just executed scripted
// continuations — including one whose scripts were cut off mid-run by a
// processor crash — must, after Reset, replay any configuration
// bit-identical to a fresh machine. The sequence alternates dispatch
// modes on one reused machine so stale contState (a leftover active
// script, pc, or accumulator) from either mode would surface in the
// other's comparison.
func TestPooledReuseAfterInlineRun(t *testing.T) {
	info, ok := LockByName("tas")
	if !ok {
		t.Fatal("tas lock missing")
	}
	opts := LockOpts{Iters: 15, CS: 25, Think: 50, CheckMutex: true}
	base := machine.Config{Procs: 8, Topo: topo.Bus, Seed: 7}
	noInlineCfg := base
	noInlineCfg.NoInlineDispatch = true

	freshInline, err := RunLock(base, info, opts)
	if err != nil {
		t.Fatal(err)
	}
	freshHandoff, err := RunLock(noInlineCfg, info, opts)
	if err != nil {
		t.Fatal(err)
	}

	pool := new(machine.Pool)

	// Run 1: a crash plan kills a processor mid-workload, abandoning
	// whatever script it was executing. The Reset drawn for run 2 must
	// scrub that residue.
	plan := fault.NewPlan("pool/inline-crash").WithCrash(base.Procs-1, 700)
	fOpts := FaultLockOpts{Iters: 12, CS: 25, Think: 50, Budget: 2048, MaxSteps: 500_000}
	crashed, err := RunLockFaulted(pool, base, info, plan, fOpts)
	if err != nil {
		t.Fatalf("crashed run: %v", err)
	}
	if crashed.Crashed != 1 {
		t.Fatalf("crash plan should kill one processor, got %d", crashed.Crashed)
	}

	// Run 2: clean inline run on the reused machine.
	got, err := RunLockIn(pool, base, info, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, freshInline) {
		t.Errorf("pooled inline run after crash diverged from fresh:\n  fresh:  %+v\n  pooled: %+v", freshInline, got)
	}

	// Run 3: handoff mode on the same machine — stale continuation state
	// from the inline runs would change what the baton path replays.
	got, err = RunLockIn(pool, noInlineCfg, info, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, freshHandoff) {
		t.Errorf("pooled handoff run after inline runs diverged from fresh:\n  fresh:  %+v\n  pooled: %+v", freshHandoff, got)
	}

	// Run 4: back to inline, closing the mode round-trip.
	got, err = RunLockIn(pool, base, info, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, freshInline) {
		t.Errorf("pooled inline run after handoff run diverged from fresh:\n  fresh:  %+v\n  pooled: %+v", freshInline, got)
	}
}

// mixedStormLock drives a deliberately heterogeneous storm on one
// word: even processors use the draw-free raw test&set (window
// eligible), odd processors the RNG-jittered exponential backoff of
// tas-bo (ineligible — every delay consumes a jitter draw). The
// ineligible probes bound every window, so batching degrades to
// partial windows or none; what it must never do is change a result.
type mixedStormLock struct {
	l machine.Addr
}

func (ml *mixedStormLock) Name() string { return "mixed-storm" }

func (ml *mixedStormLock) Acquire(p *machine.Proc) {
	if p.ID()%2 == 1 {
		p.SpinTAS(ml.l, machine.Backoff{Base: 16, Cap: 1024, PropJitter: true})
		return
	}
	p.SpinTAS(ml.l, machine.Backoff{})
}

func (ml *mixedStormLock) Release(p *machine.Proc) {
	p.Store(ml.l, 0)
}

// TestDeterminismMixedFamilyStorm pins window ineligibility of
// RNG-backoff schedules: a storm mixing draw-free TAS spinners with
// tas-bo-style jittered spinners must fall back to (at most partially
// windowed) per-event execution and stay bit-identical with window
// batching forced off — same cycles, traffic, event counts, and jitter
// draws in the same RNG stream positions (any skipped or reordered
// draw would shift every subsequent think time and show up in Cycles
// and AcqPerProc).
func TestDeterminismMixedFamilyStorm(t *testing.T) {
	info := LockInfo{Name: "mixed-storm", Make: func(m *machine.Machine) Lock {
		return &mixedStormLock{l: m.AllocShared(1)}
	}}
	forEachConfig(t, func(tp topo.Topology, procs int) {
		name := fmt.Sprintf("%s/mixed-storm/P%d", tp.Name(), procs)
		opts := LockOpts{Iters: 20, CS: 25, Think: 50, CheckMutex: true}
		on, err := RunLock(machine.Config{Procs: procs, Topo: tp, Seed: 13}, info, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		off, err := RunLock(machine.Config{Procs: procs, Topo: tp, Seed: 13, NoSpinWindows: true}, info, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		noInline, err := RunLock(machine.Config{Procs: procs, Topo: tp, Seed: 13, NoInlineDispatch: true}, info, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if noInline.Stats.InlineDispatches != 0 {
			t.Fatalf("%s: NoInlineDispatch run still dispatched %d ops inline", name, noInline.Stats.InlineDispatches)
		}
		onScrub := on
		onScrub.Stats.InlineDispatches = 0
		if !reflect.DeepEqual(onScrub, noInline) {
			t.Errorf("%s: inline dispatch changed results:\n  inline:  %+v\n  handoff: %+v", name, onScrub, noInline)
		}
		on.Stats.WindowOps = 0
		if !reflect.DeepEqual(on, off) {
			t.Errorf("%s: window batching changed results:\n  on:  %+v\n  off: %+v", name, on, off)
		}
	})
}
