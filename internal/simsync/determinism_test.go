package simsync

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/machine"
)

// Determinism regression: every simulated family, run twice with the
// same seed on both machine models at 8 processors, must produce
// bit-identical Stats — cycles, traffic, and every per-processor
// counter. This is the guardrail for the processor-side fast path: an
// operation may only retire inline when doing so is invisible to every
// other processor, so any divergence between two runs (or any
// dependence on host scheduling) is a bug in that reasoning, not noise.

func modelsUnderTest() []machine.Model {
	return []machine.Model{machine.Bus, machine.NUMA}
}

// procsUnderTest spans the contention regimes: a near-uncontended pair,
// the classic mid-size storm, and a machine large enough that every
// engine path (event queue growth, watcher bursts, spin batching at
// scale) is exercised.
func procsUnderTest() []int {
	return []int{2, 8, 32}
}

// forEachConfig runs fn for every model × processor-count combination.
func forEachConfig(t *testing.T, fn func(model machine.Model, procs int)) {
	t.Helper()
	for _, model := range modelsUnderTest() {
		for _, procs := range procsUnderTest() {
			fn(model, procs)
		}
	}
}

// assertIdentical runs measure twice and compares the full Stats
// structure except the host-side efficiency fields (Events and
// InlineOps are also compared: the fast-path decisions themselves are
// deterministic functions of the simulation state).
func assertIdentical(t *testing.T, name string, measure func() (machine.Stats, error)) {
	t.Helper()
	a, err := measure()
	if err != nil {
		t.Fatalf("%s: first run: %v", name, err)
	}
	b, err := measure()
	if err != nil {
		t.Fatalf("%s: second run: %v", name, err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("%s: runs diverged:\n  first:  %+v\n  second: %+v", name, a, b)
	}
	if a.Cycles == 0 {
		t.Errorf("%s: run did no simulated work", name)
	}
}

func TestDeterminismLocks(t *testing.T) {
	forEachConfig(t, func(model machine.Model, procs int) {
		for _, info := range Locks() {
			info := info
			name := fmt.Sprintf("%s/%s/P%d", model, info.Name, procs)
			assertIdentical(t, name, func() (machine.Stats, error) {
				res, err := RunLock(
					machine.Config{Procs: procs, Model: model, Seed: 7},
					info, LockOpts{Iters: 20, CS: 25, Think: 50, CheckMutex: true})
				return res.Stats, err
			})
		}
	})
}

func TestDeterminismBarriers(t *testing.T) {
	forEachConfig(t, func(model machine.Model, procs int) {
		for _, info := range Barriers() {
			info := info
			name := fmt.Sprintf("%s/%s/P%d", model, info.Name, procs)
			assertIdentical(t, name, func() (machine.Stats, error) {
				res, err := RunBarrier(
					machine.Config{Procs: procs, Model: model, Seed: 7},
					info, BarrierOpts{Episodes: 10, Work: 150})
				return res.Stats, err
			})
		}
	})
}

func TestDeterminismRWLocks(t *testing.T) {
	forEachConfig(t, func(model machine.Model, procs int) {
		for _, info := range RWLocks() {
			info := info
			name := fmt.Sprintf("%s/%s/P%d", model, info.Name, procs)
			assertIdentical(t, name, func() (machine.Stats, error) {
				res, err := RunRW(
					machine.Config{Procs: procs, Model: model, Seed: 7},
					info, RWOpts{Iters: 20, ReadFraction: 0.8, Work: 40, Think: 60})
				return res.Stats, err
			})
		}
	})
}

func TestDeterminismSemaphores(t *testing.T) {
	forEachConfig(t, func(model machine.Model, procs int) {
		for _, info := range Semaphores() {
			info := info
			name := fmt.Sprintf("%s/%s/P%d", model, info.Name, procs)
			assertIdentical(t, name, func() (machine.Stats, error) {
				res, err := RunProducerConsumer(
					machine.Config{Procs: procs, Model: model, Seed: 7},
					info, PCOpts{Items: 40, Capacity: 4, Work: 20})
				return res.Stats, err
			})
		}
	})
}

func TestDeterminismCounters(t *testing.T) {
	forEachConfig(t, func(model machine.Model, procs int) {
		for _, info := range Counters() {
			info := info
			name := fmt.Sprintf("%s/%s/P%d", model, info.Name, procs)
			assertIdentical(t, name, func() (machine.Stats, error) {
				res, err := RunCounter(
					machine.Config{Procs: procs, Model: model, Seed: 7},
					info, CounterOpts{Incs: 30, Think: 20})
				return res.Stats, err
			})
		}
	})
}

// TestFastPathEngages pins down that the fast path actually fires: a
// single-processor run has an empty event queue almost throughout, so
// nearly every operation must retire inline rather than through the
// engine. Without this, a regression that silently disabled inlining
// would keep every result correct while giving all the performance back.
func TestFastPathEngages(t *testing.T) {
	info, ok := LockByName("tas")
	if !ok {
		t.Fatal("tas lock missing")
	}
	res, err := RunLock(
		machine.Config{Procs: 1, Model: machine.Bus, Seed: 1},
		info, LockOpts{Iters: 50, CS: 25, Think: 50, CheckMutex: true})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	ops := st.Loads + st.Stores + st.RMWs
	if st.InlineOps == 0 {
		t.Fatalf("no operations retired inline (ops=%d, events=%d)", ops, st.Events)
	}
	if st.InlineOps*10 < ops*9 {
		t.Errorf("uncontended run should retire ~all ops inline: inline=%d of %d ops (events=%d)",
			st.InlineOps, ops, st.Events)
	}
}

// TestPooledRunsMatchFresh pins the machine-pooling contract: drawing a
// machine from a pool (Reset reuse) must produce results bit-identical
// to constructing a fresh machine — stats, per-processor counters, and
// the RNG-driven workload schedule included. The pooled sequence
// deliberately alternates configurations (model, processor count,
// algorithm) so every Reset transition — grow, shrink, model switch —
// is exercised on one reused machine.
func TestPooledRunsMatchFresh(t *testing.T) {
	type cell struct {
		lock string
		cfg  machine.Config
	}
	cells := []cell{
		{"tas", machine.Config{Procs: 8, Model: machine.Bus, Seed: 7}},
		{"qsync", machine.Config{Procs: 16, Model: machine.NUMA, Seed: 7}},
		{"ttas", machine.Config{Procs: 4, Model: machine.Bus, Seed: 9}},
		{"tas", machine.Config{Procs: 8, Model: machine.Bus, Seed: 7}}, // repeat of cell 0
	}
	opts := LockOpts{Iters: 15, CS: 25, Think: 50, CheckMutex: true}

	var fresh []LockResult
	for _, c := range cells {
		info, ok := LockByName(c.lock)
		if !ok {
			t.Fatalf("unknown lock %q", c.lock)
		}
		res, err := RunLock(c.cfg, info, opts)
		if err != nil {
			t.Fatalf("fresh %s: %v", c.lock, err)
		}
		fresh = append(fresh, res)
	}

	pool := new(machine.Pool)
	for i, c := range cells {
		info, _ := LockByName(c.lock)
		res, err := RunLockIn(pool, c.cfg, info, opts)
		if err != nil {
			t.Fatalf("pooled %s: %v", c.lock, err)
		}
		if !reflect.DeepEqual(res, fresh[i]) {
			t.Errorf("cell %d (%s): pooled run diverged from fresh:\n  fresh:  %+v\n  pooled: %+v",
				i, c.lock, fresh[i], res)
		}
	}
}
