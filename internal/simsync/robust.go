package simsync

import (
	"repro/internal/machine"
	"repro/internal/sim"
)

// This file holds the fault-tolerant primitives: locks and a barrier
// that bound how long any processor waits on any other, so a crashed or
// stalled peer (internal/fault) degrades throughput instead of wedging
// the computation. All of them are deterministic — their schedules are
// pure functions of the machine state — so they run in the registry
// sweeps and the golden/determinism suites like every other algorithm.

// BoundedLock is a Lock whose acquire can give up. AcquireWithin
// attempts the acquire for at most budget cycles of this processor's
// clock and reports whether the lock was taken; on false the processor
// holds nothing and may retry, back off, or abandon the operation. The
// fault-tolerant runner (fault_workload.go) uses this to keep survivors
// making attempts after a crash wedges the lock word.
type BoundedLock interface {
	Lock
	AcquireWithin(p *machine.Proc, budget sim.Time) bool
}

// ---------------------------------------------------------------------
// test&set with a deadline
// ---------------------------------------------------------------------

// deadlineTASLock is the test&set lock hardened with bounded waits: each
// acquire attempt spins for at most one slice, then backs off for a
// penalty and retries. Under no faults it behaves like tas with backoff;
// under faults every slice boundary is a chance to observe that the
// world moved on. Deadline spins are window-ineligible by construction
// (machine/spin.go), so adding this lock never perturbs the windowed
// fast-forward of the plain tas storms running beside it.
type deadlineTASLock struct {
	latch   machine.Addr
	slice   sim.Time
	penalty sim.Time
	bo      machine.Backoff

	// timeouts counts expired slices. Host-side is safe: the simulation
	// runs one goroutine at a time (baton passing).
	timeouts uint64
}

// NewTASDeadline builds a deadline test&set lock with default slice and
// retry penalty.
func NewTASDeadline(m *machine.Machine) Lock {
	return NewTASDeadlineSlice(m, 4096, 256)
}

// NewTASDeadlineSlice builds a deadline test&set lock with an explicit
// spin slice and inter-attempt penalty.
func NewTASDeadlineSlice(m *machine.Machine, slice, penalty sim.Time) Lock {
	if slice <= 0 {
		slice = 1
	}
	if penalty < 0 {
		penalty = 0
	}
	return &deadlineTASLock{
		latch:   m.AllocShared(1),
		slice:   slice,
		penalty: penalty,
		// Deterministic bounded exponential backoff: no jitter draws, so
		// the probe schedule is a pure function of the deadline.
		bo: machine.Backoff{Base: 16, Cap: 1024},
	}
}

func (t *deadlineTASLock) Name() string { return "tas-deadline" }

func (t *deadlineTASLock) AcquireWithin(p *machine.Proc, budget sim.Time) bool {
	if budget <= 0 {
		budget = 1
	}
	return p.SpinTASFor(t.latch, t.bo, p.Now()+budget)
}

func (t *deadlineTASLock) Acquire(p *machine.Proc) {
	for !t.AcquireWithin(p, t.slice) {
		t.timeouts++
		p.Delay(t.penalty)
	}
}

func (t *deadlineTASLock) Release(p *machine.Proc) {
	p.Store(t.latch, 0)
}

// Timeouts reports how many spin slices expired without an acquire.
func (t *deadlineTASLock) Timeouts() uint64 { return t.timeouts }

// ---------------------------------------------------------------------
// lease lock
// ---------------------------------------------------------------------

// Lease word layout: owner (processor index + 1) in the high bits,
// expiry time in the low 48. Zero means free. Packing both into one
// word keeps acquire/takeover a single CAS, the only way takeover can
// be race-free on a machine whose widest atomic is one word.
const (
	leaseExpBits = 48
	leaseExpMask = machine.Word(1)<<leaseExpBits - 1
)

// leaseLock grants the lock as a lease: the holder owns it until an
// expiry time stamped into the lock word itself. A healthy holder
// releases long before expiry; a crashed or stalled holder's lease runs
// out, and the next contender takes the lock over with a CAS on the
// observed (owner, expiry) pair. Release CASes rather than stores so a
// holder that was usurped after expiring does not stomp the usurper.
type leaseLock struct {
	word  machine.Addr
	lease sim.Time // lease term stamped on acquire
	poll  sim.Time // re-check period while held by a live lease

	takeovers uint64 // host-side: acquires that usurped an expired lease
}

// NewLease builds a lease lock with an effectively infinite term: in
// fault-free runs (every registry sweep) no lease ever expires, so the
// lock is a plain polling CAS lock and mutual exclusion is
// unconditional. Fault experiments shorten the term with NewLeaseTerm.
func NewLease(m *machine.Machine) Lock {
	return NewLeaseTerm(m, 1<<40, 64)
}

// NewLeaseTerm builds a lease lock with an explicit lease term and poll
// period.
func NewLeaseTerm(m *machine.Machine, lease, poll sim.Time) Lock {
	if lease <= 0 {
		lease = 1
	}
	if poll <= 0 {
		poll = 1
	}
	return &leaseLock{word: m.AllocShared(1), lease: lease, poll: poll}
}

func (l *leaseLock) Name() string { return "lease" }

func (l *leaseLock) pack(p *machine.Proc, exp sim.Time) machine.Word {
	return machine.Word(p.ID()+1)<<leaseExpBits | machine.Word(exp)&leaseExpMask
}

func (l *leaseLock) Acquire(p *machine.Proc) {
	for {
		v := p.Load(l.word)
		if v == 0 {
			if p.CompareAndSwap(l.word, 0, l.pack(p, p.Now()+l.lease)) {
				return
			}
			continue
		}
		if exp := sim.Time(v & leaseExpMask); exp <= p.Now() {
			// The lease ran out — the holder crashed, or stalled past
			// its term. CAS on the exact observed word: of all the
			// contenders that saw this expired lease, exactly one wins.
			if p.CompareAndSwap(l.word, v, l.pack(p, p.Now()+l.lease)) {
				l.takeovers++
				return
			}
			continue
		}
		p.Delay(l.poll)
	}
}

func (l *leaseLock) Release(p *machine.Proc) {
	v := p.Load(l.word)
	if int(v>>leaseExpBits) != p.ID()+1 {
		return // usurped after our lease expired; nothing left to release
	}
	// CAS, not store: the lease may expire and be taken over between the
	// load above and this write. Losing the CAS means the usurper owns
	// the word now, and it is theirs to release.
	p.CompareAndSwap(l.word, v, 0)
}

// Takeovers reports how many acquires usurped an expired lease.
func (l *leaseLock) Takeovers() uint64 { return l.takeovers }

// ---------------------------------------------------------------------
// straggler-tolerant barrier
// ---------------------------------------------------------------------

// stragglerBarrier is a counter barrier with a per-episode wait budget:
// a waiter that polls past its budget forces the episode released and
// proceeds, so one crashed or badly stalled processor cannot wedge the
// rest forever. Arrivals accumulate in one monotone counter (never
// reset), which keeps the episode accounting correct even when timeouts
// let processors run episodes apart.
//
// Deliberately NOT in BarrierSet: a forced release is exactly the
// "released before all arrived" condition RunBarrierIn counts as a
// violation, so the registered correctness sweeps would (rightly) flag
// it. It is driven by the fault harness instead, where early release
// under a crash is the feature being measured.
type stragglerBarrier struct {
	arrivals machine.Addr // cumulative arrival count across all episodes
	release  machine.Addr // highest released episode; raised monotonically
	procs    machine.Word
	budget   sim.Time
	poll     sim.Time

	epoch    []machine.Word // host-side per-processor episode
	timeouts uint64         // host-side: waits that gave up on the budget
}

// NewStragglerBarrier builds a straggler-tolerant barrier whose waiters
// poll for at most budget cycles before forcing the episode open.
func NewStragglerBarrier(m *machine.Machine, budget sim.Time) Barrier {
	if budget <= 0 {
		budget = 1
	}
	poll := budget / 16
	if poll <= 0 {
		poll = 1
	}
	return &stragglerBarrier{
		arrivals: m.AllocShared(1),
		release:  m.AllocShared(1),
		procs:    machine.Word(m.Procs()),
		budget:   budget,
		poll:     poll,
		epoch:    make([]machine.Word, m.Procs()),
	}
}

func (b *stragglerBarrier) Name() string { return "straggler" }

// raiseTo lifts the release word to at least e. CAS-max rather than a
// plain store: with timeouts in play a slow processor can complete an
// old episode after a fast one forced a newer episode open, and a blind
// store of the old episode number would momentarily un-release it.
func (b *stragglerBarrier) raiseTo(p *machine.Proc, e machine.Word) {
	for {
		v := p.Load(b.release)
		if v >= e {
			return
		}
		if p.CompareAndSwap(b.release, v, e) {
			return
		}
	}
}

func (b *stragglerBarrier) Wait(p *machine.Proc) {
	e := b.epoch[p.ID()] + 1
	b.epoch[p.ID()] = e
	pos := p.FetchAdd(b.arrivals, 1)
	if pos == e*b.procs-1 {
		// Cumulative position e*P-1 means e*P arrivals total: every
		// processor has arrived e times, episode e is complete.
		b.raiseTo(p, e)
		return
	}
	deadline := p.Now() + b.budget
	for p.Load(b.release) < e {
		if p.Now() >= deadline {
			b.timeouts++
			b.raiseTo(p, e) // give up on the stragglers; open the episode
			return
		}
		p.Delay(b.poll)
	}
}

// Timeouts reports how many waits exhausted their budget and forced the
// episode open.
func (b *stragglerBarrier) Timeouts() uint64 { return b.timeouts }
