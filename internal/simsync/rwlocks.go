package simsync

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/topo"
)

// RWLock is a simulated reader-writer lock.
type RWLock interface {
	Name() string
	AcquireRead(p *machine.Proc)
	ReleaseRead(p *machine.Proc)
	AcquireWrite(p *machine.Proc)
	ReleaseWrite(p *machine.Proc)
}

// RWLockMaker constructs a reader-writer lock on a machine.
type RWLockMaker func(m *machine.Machine) RWLock

// RWLockInfo describes one algorithm.
type RWLockInfo struct {
	Name string
	Make RWLockMaker
	Fair bool // FIFO between classes (no writer starvation)
}

// ---------------------------------------------------------------------
// counter-based reader-writer lock (the naive era baseline)
// ---------------------------------------------------------------------

// counterRW takes a test&set writer latch plus a reader count. Readers
// spin on the latch, increment, and back out if a writer sneaked in;
// writers take the latch and spin for the count to drain. Simple,
// reader-preferring, and capable of starving writers — which is why the
// mechanism's fair variant exists.
type counterRW struct {
	wlatch  machine.Addr
	readers machine.Addr
}

// NewCounterRW builds the counter-based reader-writer lock.
func NewCounterRW(m *machine.Machine) RWLock {
	return &counterRW{wlatch: m.AllocShared(1), readers: m.AllocShared(1)}
}

func (l *counterRW) Name() string { return "rw-ctr" }

func (l *counterRW) AcquireRead(p *machine.Proc) {
	for {
		p.SpinUntilEq(l.wlatch, 0)
		p.FetchAdd(l.readers, 1)
		if p.Load(l.wlatch) == 0 {
			return
		}
		// A writer claimed the latch between our check and increment:
		// back out and retry.
		p.FetchAdd(l.readers, ^machine.Word(0))
	}
}

func (l *counterRW) ReleaseRead(p *machine.Proc) {
	p.FetchAdd(l.readers, ^machine.Word(0)) // -1
}

func (l *counterRW) AcquireWrite(p *machine.Proc) {
	p.SpinTTAS(l.wlatch)
	p.SpinUntilEq(l.readers, 0)
}

func (l *counterRW) ReleaseWrite(p *machine.Proc) {
	p.Store(l.wlatch, 0)
}

// ---------------------------------------------------------------------
// the mechanism's fair reader-writer lock (queue with reader chaining)
// ---------------------------------------------------------------------

// Node layout (per-processor, in local memory).
const (
	rwNext  = 0 // successor pointer (PtrWord)
	rwState = 1 // blocked bit | successor-class bits
	rwClass = 2 // this waiter's class (read by the successor)
	rwWords = 3
)

// State word bits (mirrors internal/core/rwmutex.go).
const (
	rwBlocked    machine.Word = 1 << 0
	rwSuccNone   machine.Word = 0 << 1
	rwSuccReader machine.Word = 1 << 1
	rwSuccWriter machine.Word = 2 << 1
	rwSuccMask   machine.Word = 3 << 1
)

const (
	classReader machine.Word = 0
	classWriter machine.Word = 1
)

// qsyncRW is the fair queue-based reader-writer lock built on the
// mechanism's cell: one queue of typed records, batched reader grants
// via chaining, direct hand-off to the next writer. All spinning is on
// the waiter's own record.
type qsyncRW struct {
	tail       machine.Addr // the cell
	readers    machine.Addr // active reader count
	nextWriter machine.Addr // writer waiting for readers to drain
	nodes      []machine.Addr
}

// NewQSyncRW builds the mechanism's reader-writer lock.
func NewQSyncRW(m *machine.Machine) RWLock {
	l := &qsyncRW{
		tail:       m.AllocShared(1),
		readers:    m.AllocShared(1),
		nextWriter: m.AllocShared(1),
		nodes:      make([]machine.Addr, m.Procs()),
	}
	for i := range l.nodes {
		l.nodes[i] = m.AllocLocal(i, rwWords)
	}
	return l
}

func (l *qsyncRW) Name() string { return "rw-qsync" }

// setSucc merges a successor class into a node's state word.
func setSucc(p *machine.Proc, state machine.Addr, sc machine.Word) {
	for {
		old := p.Load(state)
		if p.CompareAndSwap(state, old, (old&^rwSuccMask)|sc) {
			return
		}
	}
}

// clearBlocked clears the blocked bit, preserving successor class.
func clearBlocked(p *machine.Proc, state machine.Addr) {
	for {
		old := p.Load(state)
		if p.CompareAndSwap(state, old, old&^rwBlocked) {
			return
		}
	}
}

func (l *qsyncRW) AcquireWrite(p *machine.Proc) {
	n := l.nodes[p.ID()]
	p.Store(n+rwNext, 0)
	p.Store(n+rwClass, classWriter)
	p.Store(n+rwState, rwBlocked|rwSuccNone)
	pred := p.FetchStore(l.tail, machine.PtrWord(n))
	if pred == 0 {
		p.Store(l.nextWriter, machine.PtrWord(n))
		if p.Load(l.readers) == 0 && p.FetchStore(l.nextWriter, 0) == machine.PtrWord(n) {
			clearBlocked(p, n+rwState)
		}
	} else {
		pa := machine.WordPtr(pred)
		setSucc(p, pa+rwState, rwSuccWriter)
		p.Store(pa+rwNext, machine.PtrWord(n))
	}
	p.SpinUntilPred(n+rwState, machine.Pred{Op: machine.PredEq, Mask: rwBlocked, Want: 0})
}

func (l *qsyncRW) ReleaseWrite(p *machine.Proc) {
	n := l.nodes[p.ID()]
	next := p.Load(n + rwNext)
	if next != 0 || !p.CompareAndSwap(l.tail, machine.PtrWord(n), 0) {
		next = p.SpinWhileEq(n+rwNext, 0)
		na := machine.WordPtr(next)
		if p.Load(na+rwClass) == classReader {
			p.FetchAdd(l.readers, 1)
		}
		clearBlocked(p, na+rwState)
	}
}

func (l *qsyncRW) AcquireRead(p *machine.Proc) {
	n := l.nodes[p.ID()]
	p.Store(n+rwNext, 0)
	p.Store(n+rwClass, classReader)
	p.Store(n+rwState, rwBlocked|rwSuccNone)
	pred := p.FetchStore(l.tail, machine.PtrWord(n))
	if pred == 0 {
		p.FetchAdd(l.readers, 1)
		clearBlocked(p, n+rwState)
	} else {
		pa := machine.WordPtr(pred)
		if p.Load(pa+rwClass) == classWriter ||
			p.CompareAndSwap(pa+rwState, rwBlocked|rwSuccNone, rwBlocked|rwSuccReader) {
			// Predecessor is a writer or a blocked reader: wait to be
			// chained in.
			p.Store(pa+rwNext, machine.PtrWord(n))
			p.SpinUntilPred(n+rwState, machine.Pred{Op: machine.PredEq, Mask: rwBlocked, Want: 0})
		} else {
			// Active reader ahead of us: join the batch immediately.
			p.FetchAdd(l.readers, 1)
			p.Store(pa+rwNext, machine.PtrWord(n))
			clearBlocked(p, n+rwState)
		}
	}
	if p.Load(n+rwState)&rwSuccMask == rwSuccReader {
		// Chain-unblock the reader queued behind us.
		next := p.SpinWhileEq(n+rwNext, 0)
		p.FetchAdd(l.readers, 1)
		clearBlocked(p, machine.WordPtr(next)+rwState)
	}
}

func (l *qsyncRW) ReleaseRead(p *machine.Proc) {
	n := l.nodes[p.ID()]
	next := p.Load(n + rwNext)
	if next != 0 || !p.CompareAndSwap(l.tail, machine.PtrWord(n), 0) {
		next = p.SpinWhileEq(n+rwNext, 0)
		if p.Load(n+rwState)&rwSuccMask == rwSuccWriter {
			p.Store(l.nextWriter, next)
		}
	}
	if p.FetchAdd(l.readers, ^machine.Word(0)) == 1 {
		w := p.FetchStore(l.nextWriter, 0)
		if w != 0 {
			clearBlocked(p, machine.WordPtr(w)+rwState)
		}
	}
}

// RWOpts configures a simulated reader-writer workload.
type RWOpts struct {
	Iters        int
	ReadFraction float64  // 0..1
	Work         sim.Time // work inside each section
	Think        sim.Time // mean think time between sections
}

// RWResult reports a simulated reader-writer run.
type RWResult struct {
	Lock         string
	Topo         topo.Topology
	Procs        int
	Reads        uint64
	Writes       uint64
	Cycles       sim.Time
	CyclesPerOp  float64
	TrafficPerOp float64
	Stats        machine.Stats
}

// RunRW drives a simulated reader-writer lock through a read/write mix
// and verifies both exclusion invariants exactly (the simulator
// interleaves only at yield points, so host-side brackets are precise):
// writers exclude everyone; readers exclude writers only.
func RunRW(cfg machine.Config, info RWLockInfo, opts RWOpts) (RWResult, error) {
	return RunRWIn(nil, cfg, info, opts)
}

// RunRWIn is RunRW drawing its machine from pool (see machines.go).
func RunRWIn(pool *machine.Pool, cfg machine.Config, info RWLockInfo, opts RWOpts) (RWResult, error) {
	cfg = cfg.Defaults()
	m, err := getMachine(pool, cfg)
	if err != nil {
		return RWResult{}, err
	}
	defer putMachine(pool, m)
	lock := info.Make(m)

	activeReaders, activeWriters := 0, 0
	violations := 0
	var reads, writes uint64

	body := func(p *machine.Proc) {
		rng := p.RNG()
		for i := 0; i < opts.Iters; i++ {
			if opts.Think > 0 {
				p.Delay(rng.ExpTime(opts.Think))
			}
			if rng.Float64() < opts.ReadFraction {
				lock.AcquireRead(p)
				activeReaders++
				if activeWriters != 0 {
					violations++
				}
				if opts.Work > 0 {
					p.Delay(opts.Work)
				}
				activeReaders--
				lock.ReleaseRead(p)
				reads++
			} else {
				lock.AcquireWrite(p)
				activeWriters++
				if activeWriters != 1 || activeReaders != 0 {
					violations++
				}
				if opts.Work > 0 {
					p.Delay(opts.Work)
				}
				activeWriters--
				lock.ReleaseWrite(p)
				writes++
			}
		}
	}

	if err := m.Run(body); err != nil {
		return RWResult{}, fmt.Errorf("rwlock %q: %w", info.Name, err)
	}
	if violations > 0 {
		return RWResult{}, fmt.Errorf("rwlock %q: %d exclusion violations", info.Name, violations)
	}

	st := m.Stats()
	total := reads + writes
	res := RWResult{
		Lock:   info.Name,
		Topo:   cfg.Topo,
		Procs:  cfg.Procs,
		Reads:  reads,
		Writes: writes,
		Cycles: st.Cycles,
		Stats:  st,
	}
	if total > 0 {
		res.CyclesPerOp = float64(st.Cycles) / float64(total)
		res.TrafficPerOp = float64(st.TrafficFor(cfg.Topo)) / float64(total)
	}
	return res, nil
}
