package simsync

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/topo"
)

// Both semaphores must conserve items through a bounded buffer on every
// model, for odd processor counts and tiny buffers too.
func TestSemaphoresProducerConsumer(t *testing.T) {
	for _, info := range Semaphores() {
		for _, model := range []topo.Topology{topo.Ideal, topo.Bus, topo.NUMA} {
			for _, procs := range []int{2, 5, 8} {
				info, model, procs := info, model, procs
				name := info.Name + "/" + model.Name() + "/" + itoa(procs)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					res, err := RunProducerConsumer(
						machine.Config{Procs: procs, Topo: model, Seed: 31},
						info,
						PCOpts{Items: 60, Capacity: 4, Work: 15},
					)
					if err != nil {
						t.Fatal(err)
					}
					if res.CyclesPerItem <= 0 {
						t.Fatalf("bad cycles/item: %v", res.CyclesPerItem)
					}
				})
			}
		}
	}
}

func TestSemaphoreCapacityOne(t *testing.T) {
	for _, info := range Semaphores() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			t.Parallel()
			_, err := RunProducerConsumer(
				machine.Config{Procs: 6, Topo: topo.Bus, Seed: 7},
				info,
				PCOpts{Items: 40, Capacity: 1},
			)
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSemaphoreNeedsTwoProcs(t *testing.T) {
	info, _ := SemaphoreByName("sem-qsync")
	_, err := RunProducerConsumer(
		machine.Config{Procs: 1, Topo: topo.Bus},
		info, PCOpts{Items: 5, Capacity: 2},
	)
	if err == nil {
		t.Fatal("single-processor producer/consumer accepted")
	}
}

func TestSemaphoreByNameUnknown(t *testing.T) {
	if _, ok := SemaphoreByName("bogus"); ok {
		t.Fatal("bogus semaphore found")
	}
}

// The mechanism's semaphore must generate bounded remote traffic on
// NUMA (blocked waiters spin locally); the central one polls the shared
// counter remotely.
func TestSemaphoreTrafficNUMA(t *testing.T) {
	run := func(name string) float64 {
		info, _ := SemaphoreByName(name)
		res, err := RunProducerConsumer(
			machine.Config{Procs: 8, Topo: topo.NUMA, Seed: 3},
			info,
			// Zero work: consumers block hard on an empty buffer, which
			// is where blocked-waiter traffic shows up.
			PCOpts{Items: 80, Capacity: 2, Work: 0},
		)
		if err != nil {
			t.Fatal(err)
		}
		return res.TrafficPerItem
	}
	central, qsync := run("sem-central"), run("sem-qsync")
	if qsync >= central {
		t.Fatalf("sem-qsync traffic %.1f not below sem-central %.1f on NUMA", qsync, central)
	}
}

func TestSemaphoreDeterministicReplay(t *testing.T) {
	run := func() PCResult {
		info, _ := SemaphoreByName("sem-qsync")
		res, err := RunProducerConsumer(
			machine.Config{Procs: 6, Topo: topo.NUMA, Seed: 11},
			info, PCOpts{Items: 50, Capacity: 3, Work: 10},
		)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Stats.RemoteRefs != b.Stats.RemoteRefs {
		t.Fatalf("replay diverged: %v/%v", a.Cycles, b.Cycles)
	}
}
