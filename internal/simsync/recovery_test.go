package simsync

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Crash-recovery determinism and self-healing behavior. The recovery
// seam (EvRecover, rebirth, the failure detector) must preserve the
// whole determinism contract — run twice bit-identical, windows on/off
// A/B identical — and the self-healing primitives must actually heal:
// qheal completes the workload that wedges plain qsync, and lease-fence
// suppresses a usurped holder's stale writes.

// recoveryPlanFor extends the stall+degrade determinism plan with a
// crash-at-zero + restart of the last processor. Crashing at t=0 keeps
// every blocking family runnable: the victim holds nothing and has done
// nothing, so its rebirth replays the full body once and all workload
// invariants (mutex checks, item totals) stay exact, while the run
// still exercises the full revival path (event purge, RNG re-derive,
// re-entry) under every family and topology.
func recoveryPlanFor(tp topo.Topology, procs int) *fault.Plan {
	return faultPlanFor(tp, procs).
		WithCrash(procs-1, 0).
		WithRestart(procs-1, 5000)
}

func TestRecoveryDeterminismLocks(t *testing.T) {
	forEachConfig(t, func(tp topo.Topology, procs int) {
		plan := recoveryPlanFor(tp, procs)
		for _, info := range Locks() {
			info := info
			name := fmt.Sprintf("%s/%s/P%d/recovery", tp.Name(), info.Name, procs)
			assertIdentical(t, name, func(noWindows, noInline bool) (machine.Stats, error) {
				res, err := RunLock(
					machine.Config{Procs: procs, Topo: tp, Seed: 7, NoSpinWindows: noWindows, NoInlineDispatch: noInline, Faults: plan},
					info, LockOpts{Iters: 20, CS: 25, Think: 50, CheckMutex: true})
				return res.Stats, err
			})
		}
	})
}

func TestRecoveryDeterminismBarriers(t *testing.T) {
	forEachConfig(t, func(tp topo.Topology, procs int) {
		plan := recoveryPlanFor(tp, procs)
		for _, info := range Barriers() {
			info := info
			name := fmt.Sprintf("%s/%s/P%d/recovery", tp.Name(), info.Name, procs)
			if info.Name == "reconf" {
				// reconf evicts the crashed processor and completes
				// episodes without it — correct under this plan, but the
				// fault-free runner's all-arrive check reads that as an
				// early release. Assert its determinism contract through
				// the crash-aware runner instead.
				assertIdentical(t, name, func(noWindows, noInline bool) (machine.Stats, error) {
					res, err := RunBarrierRecovery(nil,
						machine.Config{Procs: procs, Topo: tp, Seed: 7, NoSpinWindows: noWindows, NoInlineDispatch: noInline},
						info.Name, func(m *machine.Machine) Barrier { return info.Make(m) },
						plan, RecoveryBarrierOpts{Episodes: 10, Work: 150, MaxSteps: 2_000_000})
					if err == nil && res.Outcome != OutcomeOK {
						err = fmt.Errorf("reconf under recovery plan: outcome %v", res.Outcome)
					}
					return res.Stats, err
				})
				continue
			}
			assertIdentical(t, name, func(noWindows, noInline bool) (machine.Stats, error) {
				res, err := RunBarrier(
					machine.Config{Procs: procs, Topo: tp, Seed: 7, NoSpinWindows: noWindows, NoInlineDispatch: noInline, Faults: plan},
					info, BarrierOpts{Episodes: 10, Work: 150})
				return res.Stats, err
			})
		}
	})
}

func TestRecoveryDeterminismRWLocks(t *testing.T) {
	forEachConfig(t, func(tp topo.Topology, procs int) {
		plan := recoveryPlanFor(tp, procs)
		for _, info := range RWLocks() {
			info := info
			name := fmt.Sprintf("%s/%s/P%d/recovery", tp.Name(), info.Name, procs)
			assertIdentical(t, name, func(noWindows, noInline bool) (machine.Stats, error) {
				res, err := RunRW(
					machine.Config{Procs: procs, Topo: tp, Seed: 7, NoSpinWindows: noWindows, NoInlineDispatch: noInline, Faults: plan},
					info, RWOpts{Iters: 20, ReadFraction: 0.8, Work: 40, Think: 60})
				return res.Stats, err
			})
		}
	})
}

func TestRecoveryDeterminismSemaphores(t *testing.T) {
	forEachConfig(t, func(tp topo.Topology, procs int) {
		plan := recoveryPlanFor(tp, procs)
		for _, info := range Semaphores() {
			info := info
			name := fmt.Sprintf("%s/%s/P%d/recovery", tp.Name(), info.Name, procs)
			assertIdentical(t, name, func(noWindows, noInline bool) (machine.Stats, error) {
				res, err := RunProducerConsumer(
					machine.Config{Procs: procs, Topo: tp, Seed: 7, NoSpinWindows: noWindows, NoInlineDispatch: noInline, Faults: plan},
					info, PCOpts{Items: 40, Capacity: 4, Work: 20})
				return res.Stats, err
			})
		}
	})
}

func TestRecoveryDeterminismCounters(t *testing.T) {
	forEachConfig(t, func(tp topo.Topology, procs int) {
		plan := recoveryPlanFor(tp, procs)
		for _, info := range Counters() {
			info := info
			name := fmt.Sprintf("%s/%s/P%d/recovery", tp.Name(), info.Name, procs)
			assertIdentical(t, name, func(noWindows, noInline bool) (machine.Stats, error) {
				res, err := RunCounter(
					machine.Config{Procs: procs, Topo: tp, Seed: 7, NoSpinWindows: noWindows, NoInlineDispatch: noInline, Faults: plan},
					info, CounterOpts{Incs: 30, Think: 20})
				return res.Stats, err
			})
		}
	})
}

// TestRecoveryDeterminismMidRunCrash covers the hard case: a processor
// crashes mid-workload — possibly inside the critical section — and is
// reborn later. The full RecoveryLockResult (outcome, orphan and
// timeout counts, time-to-recovery) must be bit-identical across repeat
// runs and the windows A/B switch, for resilient and non-resilient
// locks alike (a wedged tas run is data too, and must wedge
// identically).
func TestRecoveryDeterminismMidRunCrash(t *testing.T) {
	locks := []string{"tas", "tas-deadline", "lease", "lease-fence", "qheal"}
	for _, tp := range []topo.Topology{topo.Bus, topo.NUMA} {
		for _, procs := range []int{4, 8} {
			plan := fault.NewPlan(fmt.Sprintf("recover/%s/P%d", tp.Name(), procs)).
				WithStall(0, 300, 900).
				WithCrash(procs-1, 700).
				WithRestart(procs-1, 6000)
			for _, lk := range locks {
				info := mustLock(t, lk)
				name := fmt.Sprintf("%s/%s/P%d/midrun", tp.Name(), lk, procs)
				opts := RecoveryLockOpts{Iters: 8, CS: 25, Think: 50, Budget: 2048, MaxSteps: 500_000}
				measure := func(noWindows, noInline bool) (RecoveryLockResult, error) {
					return RunLockRecovery(nil,
						machine.Config{Procs: procs, Topo: tp, Seed: 11, NoSpinWindows: noWindows, NoInlineDispatch: noInline},
						info, plan, opts)
				}
				a, err := measure(false, false)
				if err != nil {
					t.Fatalf("%s: first run: %v", name, err)
				}
				b, err := measure(false, false)
				if err != nil {
					t.Fatalf("%s: second run: %v", name, err)
				}
				if !reflect.DeepEqual(a, b) {
					t.Errorf("%s: runs diverged:\n  first:  %+v\n  second: %+v", name, a, b)
				}
				c, err := measure(true, false)
				if err != nil {
					t.Fatalf("%s: windows-off run: %v", name, err)
				}
				if c.Stats.WindowOps != 0 {
					t.Fatalf("%s: NoSpinWindows run still batched %d window ops", name, c.Stats.WindowOps)
				}
				d, err := measure(false, true)
				if err != nil {
					t.Fatalf("%s: no-inline run: %v", name, err)
				}
				if d.Stats.InlineDispatches != 0 {
					t.Fatalf("%s: NoInlineDispatch run still dispatched %d ops inline", name, d.Stats.InlineDispatches)
				}
				ai := a
				ai.Stats.InlineDispatches = 0
				if !reflect.DeepEqual(ai, d) {
					t.Errorf("%s: inline dispatch changed a mid-run crash:\n  inline:  %+v\n  handoff: %+v", name, ai, d)
				}
				a.Stats.WindowOps = 0
				if !reflect.DeepEqual(a, c) {
					t.Errorf("%s: window batching changed results:\n  on:  %+v\n  off: %+v", name, a, c)
				}
				if a.Crashed != 1 {
					t.Errorf("%s: plan crashes one processor, run reports %d", name, a.Crashed)
				}
			}
		}
	}
}

// TestHealQueueCompletesWhereQSyncWedges is the FT3 acceptance property
// in miniature: under a crash-with-restart plan that kills a processor
// while it is holding or queued on the lock (Think=0 keeps every
// processor contending), plain qsync wedges forever — the hand-off
// chain dies with the corpse — while qheal excises the dead ticket once
// the failure detector fires and completes the whole workload,
// measuring the reborn processor's time back to useful work.
func TestHealQueueCompletesWhereQSyncWedges(t *testing.T) {
	cfg := machine.Config{Procs: 8, Topo: topo.Bus, Seed: 17}
	opts := RecoveryLockOpts{Iters: 8, CS: 25, Think: 0, MaxSteps: 2_000_000}

	// A crash instant can land between the victim's memory operations
	// (the enqueue RMW is simply cut off and the queue never contains
	// the corpse), so scan a few instants for one that kills the victim
	// while it is actually holding or queued — where qsync wedges.
	var plan *fault.Plan
	for at := sim.Time(500); at <= 1200; at += 37 {
		cand := fault.NewPlan(fmt.Sprintf("heal/crash@%d", at)).
			WithCrash(0, at).
			WithRestart(0, 9000)
		qs, err := RunLockRecovery(nil, cfg, mustLock(t, "qsync"), cand, opts)
		if err != nil {
			t.Fatalf("qsync under crash@%d: %v", at, err)
		}
		if qs.Outcome != OutcomeOK {
			plan = cand
			break
		}
	}
	if plan == nil {
		t.Fatal("no crash instant wedged qsync; the failure mode this test measures is gone")
	}

	healInfo := LockInfo{Name: "qheal-ft", FIFO: true, Make: func(m *machine.Machine) Lock {
		return NewHealQueueGrace(m, 1<<40, 64) // detector-only healing: no grace backstop
	}}
	heal, err := RunLockRecovery(nil, cfg, healInfo, plan, opts)
	if err != nil {
		t.Fatalf("qheal: %v", err)
	}
	if heal.Outcome != OutcomeOK {
		t.Fatalf("qheal did not complete: %+v", heal)
	}
	if heal.Recovered != 1 || heal.Crashed != 1 {
		t.Errorf("qheal: want 1 crashed + 1 recovered, got %d/%d", heal.Crashed, heal.Recovered)
	}
	if heal.Recoveries != 1 || heal.RecoveryCycles <= 0 {
		t.Errorf("qheal: time-to-recovery not measured: recoveries=%d cycles=%d",
			heal.Recoveries, heal.RecoveryCycles)
	}
	// At-least-once across incarnations: an acquisition the victim
	// completed but crashed before finishing its iteration is redone by
	// the rebirth, so the count can exceed the quota but never trail it.
	if heal.Acquisitions < uint64(cfg.Procs*opts.Iters) {
		t.Errorf("qheal: want >= %d acquisitions, got %d", cfg.Procs*opts.Iters, heal.Acquisitions)
	}
}

// TestHealQueueExcisesDeadTicket drives qheal directly and checks the
// healing counters: the dead processor's ticket is excised once the
// detector suspects it, and a live waiter whose ticket was excised
// from under it by a false positive (a stall longer than the suspicion
// threshold while queued) detects the excision and re-enqueues with a
// fresh ticket.
func TestHealQueueExcisesDeadTicket(t *testing.T) {
	plan := fault.NewPlan("heal/excise").
		WithCrash(0, 700).
		WithRestart(0, 9000).
		// Long enough past SuspectAfter (2000) to read as a false
		// positive: processor 1's queued ticket gets excised while it
		// sleeps, forcing the requeue path when it wakes.
		WithStall(1, 1000, 4000)
	m, err := machine.New(machine.Config{Procs: 4, Topo: topo.Bus, Seed: 23, Faults: plan, MaxSteps: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	lk := NewHealQueueGrace(m, 1<<40, 64).(*healQueueLock)
	count := m.AllocShared(1)
	if err := m.Run(func(p *machine.Proc) {
		for i := 0; i < 6; i++ {
			lk.Acquire(p)
			p.Store(count, p.Load(count)+1)
			p.Delay(25)
			lk.Release(p)
		}
	}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if lk.Excisions() == 0 {
		t.Error("no dead ticket was excised")
	}
	if lk.Requeues() == 0 {
		t.Error("no excised live waiter ever re-enqueued")
	}
}

// TestLeaseFenceSuppressesStaleWrites exercises the fencing token
// discipline without any fault plan at all: a holder whose lease
// expires mid-critical-section is usurped by a live waiter, and the
// zombie's guarded write must be suppressed and counted while the
// usurper's goes through.
func TestLeaseFenceSuppressesStaleWrites(t *testing.T) {
	run := func() (staleBlocked, freshOK bool, l *fenceLock) {
		m, err := machine.New(machine.Config{Procs: 2, Topo: topo.Bus, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		l = NewLeaseFenceTerm(m, 500, 16).(*fenceLock)
		data := m.AllocShared(1)
		if err := m.Run(func(p *machine.Proc) {
			if p.ID() == 0 {
				l.Acquire(p)
				p.Delay(2000) // sleep through our own lease
				staleBlocked = !l.GuardedStore(p, data, 1)
				l.Release(p) // usurped: must be a no-op
			} else {
				p.Delay(100)
				l.Acquire(p) // blocks until P0's lease expires, then usurps
				freshOK = l.GuardedStore(p, data, 2)
				l.Release(p)
			}
		}); err != nil {
			t.Fatal(err)
		}
		return staleBlocked, freshOK, l
	}
	stale, fresh, l := run()
	if !stale {
		t.Error("usurped holder's guarded store went through")
	}
	if !fresh {
		t.Error("usurper's guarded store was suppressed")
	}
	if l.Takeovers() != 1 {
		t.Errorf("want 1 takeover, got %d", l.Takeovers())
	}
	if l.StaleWrites() != 1 {
		t.Errorf("want 1 stale write, got %d", l.StaleWrites())
	}
	// Determinism: the usurpation race must replay bit-identically.
	stale2, fresh2, l2 := run()
	if stale2 != stale || fresh2 != fresh || l2.Takeovers() != l.Takeovers() || l2.StaleWrites() != l.StaleWrites() {
		t.Error("usurpation outcome diverged between identical runs")
	}
}

// TestLeaseExpiryTieIsDeterministic pins the contested instant: the
// owner tries to renew its lease at the exact moment it expires while a
// usurper is polling for exactly that expiry. Whoever's RMW the engine
// orders first wins — the point is not which one, but that exactly one
// wins and that the outcome replays bit-identically.
func TestLeaseExpiryTieIsDeterministic(t *testing.T) {
	type tieResult struct {
		RenewOK   bool
		Takeovers uint64
		Stale     uint64
	}
	run := func(seed uint64) tieResult {
		m, err := machine.New(machine.Config{Procs: 2, Topo: topo.Bus, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		l := NewLeaseFenceTerm(m, 1000, 8).(*fenceLock)
		data := m.AllocShared(1)
		var res tieResult
		var expiry sim.Time
		if err := m.Run(func(p *machine.Proc) {
			if p.ID() == 0 {
				l.Acquire(p)
				expiry = sim.Time(p.Load(l.lease.word) & leaseExpMask)
				if d := expiry - p.Now(); d > 0 {
					p.Delay(d) // arrive at the expiry instant exactly
				}
				res.RenewOK = l.Renew(p)
				if !l.GuardedStore(p, data, 1) {
					res.Stale++
				}
				l.Release(p)
			} else {
				// Let the owner win the initial acquire, then poll tightly
				// so a takeover attempt lands at the expiry instant; the
				// tie against the owner's renewal resolves by the engine's
				// (when, seq) order.
				p.Delay(50)
				l.Acquire(p)
				l.Release(p)
			}
		}); err != nil {
			t.Fatal(err)
		}
		res.Takeovers = l.Takeovers()
		return res
	}
	a := run(9)
	b := run(9)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("tie outcome diverged: %+v vs %+v", a, b)
	}
	if a.RenewOK == (a.Takeovers > 0) {
		t.Errorf("want exactly one of renewal and takeover to win, got %+v", a)
	}
	if a.Takeovers > 0 && a.Stale != 1 {
		t.Errorf("usurped owner's write should have been fenced: %+v", a)
	}
}

// TestReconfBarrierEvictsAndRejoins: under a crash-with-restart plan
// the reconfigurable barrier keeps completing episodes without the dead
// processor and readmits it after rebirth, with both healing counters
// visible. The run must also complete every surviving processor's
// episode quota — the property central barriers lose under the same
// plan.
func TestReconfBarrierEvictsAndRejoins(t *testing.T) {
	plan := fault.NewPlan("reconf/crash+restart").
		WithCrash(0, 2000).
		WithRestart(0, 30000)
	cfg := machine.Config{Procs: 8, Topo: topo.Bus, Seed: 29}
	opts := RecoveryBarrierOpts{Episodes: 30, Work: 150, MaxSteps: 4_000_000}

	var bar *reconfBarrier
	res, err := RunBarrierRecovery(nil, cfg, "reconf", func(m *machine.Machine) Barrier {
		bar = NewReconfBudget(m, 4096).(*reconfBarrier)
		return bar
	}, plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeOK {
		t.Fatalf("reconf barrier did not complete: %+v", res)
	}
	if bar.Evictions() == 0 {
		t.Error("dead processor was never evicted from an episode")
	}
	if bar.Rejoins() == 0 {
		t.Error("reborn processor never rejoined the group")
	}
	if res.Recovered != 1 {
		t.Errorf("want 1 recovered processor, got %d", res.Recovered)
	}
	if res.Recoveries != 1 || res.RecoveryCycles <= 0 {
		t.Errorf("time-to-recovery not measured: %+v", res)
	}

	// The same plan wedges the plain central barrier until the restart
	// lands, costing most of the episode budget; with no restart at all
	// it would never complete. Here we only require reconf to beat it.
	central, err := RunBarrierRecovery(nil, cfg, "central", func(m *machine.Machine) Barrier {
		info, _ := BarrierByName("central")
		return info.Make(m)
	}, plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	if central.Outcome == OutcomeOK && central.Cycles <= res.Cycles {
		t.Errorf("central barrier (%d cycles) was not slower than reconf (%d) under the crash",
			central.Cycles, res.Cycles)
	}
}
