package simsync

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/topo"
)

// Property: arbitrary generated fault plans never induce a safety
// violation. Faults may cost throughput — runs are allowed to end at
// the step limit or in deadlock, and bounded attempts may time out —
// but a mutual-exclusion breach among live processors, or a lost
// semaphore permit, is a bug regardless of what the plan did, and the
// runners turn those into errors.

// arbitraryPlan derives a full stall+crash+degrade plan from quick's
// random draws. Everything downstream of the (seed, shape) pair is
// deterministic, so a failing case replays from the logged parameters.
func arbitraryPlan(seed uint64, procs int, stalls, crashes, degrades uint8) *fault.Plan {
	return fault.Generate(
		fmt.Sprintf("prop/s%d", seed),
		seed|1,
		fault.Spec{
			Procs:   procs,
			Modules: procs,
			Horizon: 12000,
			Stalls:  int(stalls % 5), StallMin: 100, StallMax: 1500,
			Crashes:  int(crashes % 3),
			Degrades: int(degrades % 3), DegradeMin: 500, DegradeMax: 3000, FactorMax: 6,
		})
}

// Property: the deadline lock under arbitrary fault plans — including
// crashes that wedge the lock word — upholds mutual exclusion among
// live processors. Bounded attempts turn a dead holder into timeouts,
// so most runs still complete; whatever the outcome, RunLockFaulted
// errors on any safety breach.
func TestFaultLockSafetyProperty(t *testing.T) {
	for _, name := range []string{"tas-deadline", "tas"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			info := mustLock(t, name)
			f := func(seed uint64, procsRaw, stalls, crashes, degrades uint8) bool {
				procs := int(procsRaw%7) + 2
				plan := arbitraryPlan(seed, procs, stalls, crashes, degrades)
				for _, model := range []topo.Topology{topo.Bus, topo.NUMA} {
					_, err := RunLockFaulted(nil,
						machine.Config{Procs: procs, Topo: model, Seed: seed | 1},
						info, plan,
						FaultLockOpts{Iters: 10, CS: 25, Think: 40, Budget: 600, MaxSteps: 250_000})
					if err != nil {
						t.Logf("seed=%d procs=%d plan=%s model=%s: %v", seed, procs, plan.Name(), model, err)
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Property: a short-term lease lock under arbitrary crash-only plans
// never lets two live processors into the critical section at once.
// Crashed holders are taken over at lease expiry, so these runs should
// normally complete rather than wedge; either way the safety check is
// what the property asserts.
func TestFaultLeaseSafetyProperty(t *testing.T) {
	info := LockInfo{Name: "lease-short", Make: func(m *machine.Machine) Lock {
		return NewLeaseTerm(m, 2500, 40)
	}}
	f := func(seed uint64, procsRaw, crashes uint8) bool {
		procs := int(procsRaw%7) + 2
		plan := fault.Generate(
			fmt.Sprintf("lease/s%d", seed), seed|1,
			fault.Spec{Procs: procs, Modules: procs, Horizon: 8000,
				Crashes: int(crashes%3) + 1})
		_, err := RunLockFaulted(nil,
			machine.Config{Procs: procs, Topo: topo.Bus, Seed: seed | 1},
			info, plan,
			FaultLockOpts{Iters: 10, CS: 30, Think: 40, MaxSteps: 400_000})
		if err != nil {
			t.Logf("seed=%d procs=%d: %v", seed, procs, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: semaphore permit conservation holds under arbitrary
// stall/degrade plans. The producer-consumer runner checks internally
// that no item is lost or duplicated and that the buffer never exceeds
// capacity; fault-induced retiming must not break the accounting.
func TestFaultSemaphoreConservationProperty(t *testing.T) {
	info, ok := SemaphoreByName("sem-qsync")
	if !ok {
		t.Fatal("sem-qsync missing")
	}
	f := func(seed uint64, procsRaw, stalls, degrades uint8) bool {
		procs := int(procsRaw%7) + 2
		plan := arbitraryPlan(seed, procs, stalls, 0, degrades)
		_, err := RunProducerConsumer(
			machine.Config{Procs: procs, Topo: topo.NUMA, Seed: seed | 1, Faults: plan},
			info, PCOpts{Items: 30, Capacity: 3, Work: 20})
		if err != nil {
			t.Logf("seed=%d procs=%d plan=%s: %v", seed, procs, plan.Name(), err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
