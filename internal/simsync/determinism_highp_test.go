package simsync

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/machine"
	"repro/internal/topo"
)

// High-P A/B determinism: the P ∈ {128, 256} ceiling raise (PR 6) must
// hold every family to the same windows-on ≡ windows-off bit-identity
// contract as the canonical P ∈ {2, 8, 32} suite. One representative
// algorithm per family with a quick-mode workload keeps the suite
// affordable at these sizes; the eligibility mask, the engine's heap
// mode, and the per-distance-class window machinery all run their
// multi-word / deep-queue paths here. Topologies whose protocol caps
// the machine size (the bus coherence directory is one 64-bit sharer
// word) are skipped above their ceiling, mirroring the harness's sweep
// behavior.
func TestDeterminismHighP(t *testing.T) {
	type cell struct{ family, algo string }
	cells := []cell{
		{"lock", "tas"},
		{"lock", "qsync"},
		{"barrier", "dissemination"},
		{"rw", "rw-qsync"},
		{"sem", "sem-qsync"},
		{"counter", "ctr-sharded"},
	}
	for _, procs := range []int{128, 256} {
		for _, tp := range toposUnderTest() {
			if mp := tp.MaxProcs(); mp > 0 && procs > mp {
				continue // e.g. bus: sharer bitmap tops out at 64 processors
			}
			for _, c := range cells {
				name := fmt.Sprintf("%s/%s/%s/P%d", tp.Name(), c.family, c.algo, procs)
				c := c
				cfg := func(noWindows, noInline bool) machine.Config {
					return machine.Config{Procs: procs, Topo: tp, Seed: 7, NoSpinWindows: noWindows, NoInlineDispatch: noInline}
				}
				assertIdentical(t, name, func(noWindows, noInline bool) (machine.Stats, error) {
					switch c.family {
					case "lock":
						info, _ := LockByName(c.algo)
						res, err := RunLock(cfg(noWindows, noInline), info, LockOpts{Iters: 3, CS: 25, Think: 50, CheckMutex: true})
						return res.Stats, err
					case "barrier":
						info, _ := BarrierByName(c.algo)
						res, err := RunBarrier(cfg(noWindows, noInline), info, BarrierOpts{Episodes: 3, Work: 120})
						return res.Stats, err
					case "rw":
						info, _ := RWLockByName(c.algo)
						res, err := RunRW(cfg(noWindows, noInline), info, RWOpts{Iters: 3, ReadFraction: 0.8, Work: 40, Think: 60})
						return res.Stats, err
					case "sem":
						info, _ := SemaphoreByName(c.algo)
						res, err := RunProducerConsumer(cfg(noWindows, noInline), info, PCOpts{Items: 64, Capacity: 4, Work: 20})
						return res.Stats, err
					default:
						info, _ := CounterByName(c.algo)
						res, err := RunCounter(cfg(noWindows, noInline), info, CounterOpts{Incs: 4, Think: 20})
						return res.Stats, err
					}
				})
			}
		}
	}
}

// TestClusterMixedClassStorm pins the per-distance-class rotation on
// the cluster machine. A raw test&set storm on a word homed in module
// 0 splits the spinners into the cluster topology's two declared
// traversal classes — the lock cluster's processors probe with the
// short intra-cluster hop, everyone else pays the double-cost
// inter-cluster traversal — and the window batcher must fast-forward
// the interleaved storm without disturbing either class's probe
// account. The per-class RMW totals are pinned as literals (a change
// means the simulation itself changed, not just the batching), the
// windows-off twin must match them bit for bit, and the run must
// actually batch (WindowOps > 0): a silently window-ineligible cluster
// storm would leave this green-but-meaningless.
func TestClusterMixedClassStorm(t *testing.T) {
	const procs = 16
	info, ok := LockByName("tas")
	if !ok {
		t.Fatal("tas lock missing")
	}
	opts := LockOpts{Iters: 20, CS: 25, Think: 50, CheckMutex: true}
	run := func(noWindows, noInline bool) LockResult {
		res, err := RunLock(machine.Config{Procs: procs, Topo: topo.Cluster, Seed: 7,
			NoSpinWindows: noWindows, NoInlineDispatch: noInline}, info, opts)
		if err != nil {
			t.Fatalf("noWindows=%v noInline=%v: %v", noWindows, noInline, err)
		}
		return res
	}
	on := run(false, false)
	off := run(true, false)

	// The continuation-dispatch A/B on the same pinned storm: handing
	// every scripted op over the baton must not move a counter.
	noInline := run(false, true)
	if noInline.Stats.InlineDispatches != 0 {
		t.Fatalf("NoInlineDispatch storm still dispatched %d ops inline", noInline.Stats.InlineDispatches)
	}
	onScrub := on
	onScrub.Stats.InlineDispatches = 0
	if !reflect.DeepEqual(onScrub, noInline) {
		t.Errorf("inline dispatch changed the mixed-class storm:\n  inline:  %+v\n  handoff: %+v", onScrub, noInline)
	}

	if on.Stats.WindowOps == 0 {
		t.Fatal("cluster storm batched no window ops: per-distance-class windows did not engage")
	}

	// The tas lock's word is the run's first shared allocation, so its
	// home is module 0 and the intra class is exactly cluster 0.
	classOf := func(p int) int {
		if topo.Cluster.Group(p, procs) == topo.Cluster.Group(0, procs) {
			return 0 // intra-cluster hop (home's own cluster)
		}
		return 1 // inter-cluster traversal
	}
	var rmws, refs [2]uint64
	for p, ps := range on.Stats.PerProc {
		rmws[classOf(p)] += ps.RMWs
		refs[classOf(p)] += ps.RemoteRefs
	}
	var offRMWs, offRefs [2]uint64
	for p, ps := range off.Stats.PerProc {
		offRMWs[classOf(p)] += ps.RMWs
		offRefs[classOf(p)] += ps.RemoteRefs
	}
	if rmws != offRMWs || refs != offRefs {
		t.Errorf("per-class probe accounts diverge between windows on/off:\n  on:  rmws=%v refs=%v\n  off: rmws=%v refs=%v",
			rmws, refs, offRMWs, offRefs)
	}
	// Pinned per-class event counts (generated from the windows-off
	// per-event run; see CHANGES.md PR 6). Both classes must appear —
	// a storm with only one class would not exercise the mixed-period
	// cumS schedule at all.
	wantRMWs := [2]uint64{2046, 3144}
	wantRefs := [2]uint64{1520, 3864}
	if rmws != wantRMWs {
		t.Errorf("per-class RMW counts = %v, want %v", rmws, wantRMWs)
	}
	if refs != wantRefs {
		t.Errorf("per-class remote-reference counts = %v, want %v", refs, wantRefs)
	}

	on.Stats.WindowOps = 0
	if !reflect.DeepEqual(on, off) {
		t.Errorf("windows changed the mixed-class storm:\n  on:  %+v\n  off: %+v", on, off)
	}
}
