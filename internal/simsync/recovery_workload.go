package simsync

import (
	"errors"
	"fmt"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/topo"
)

// This file holds the crash-recovery workload runners behind the FT3
// and FT4 experiments. They differ from the fail-stop runners
// (fault_workload.go) in three ways forced by rebirth:
//
//   - The program body is the machine's recovery entry point: a reborn
//     processor re-enters it from the top with fresh proc-local state,
//     so all workload progress lives in host-side arrays indexed by
//     processor and the body *resumes* (it never replays completed
//     iterations, which would double-count work).
//   - The mutual-exclusion check must distinguish three ways an acquire
//     can find the critical section occupied: by a live holder (a
//     violation), by a crashed holder (an orphaned acquisition — the
//     reclaim the self-healing locks exist to make), and by a holder
//     that died and was reborn since (also orphaned: its old claim is a
//     previous incarnation's, detected by comparing incarnations).
//   - Time-to-recovery is measured per rebirth: from the revival
//     instant until the reborn processor completes its first unit of
//     useful work (a lock acquisition, a barrier episode).

// RecoveryLockOpts configures a crash-recovery lock workload.
type RecoveryLockOpts struct {
	Iters int      // acquisitions each processor must complete
	CS    sim.Time // work inside the critical section
	Think sim.Time // mean exponential think time between attempts

	// Budget, when positive and the lock implements BoundedLock, bounds
	// each attempt as in FaultLockOpts.
	Budget sim.Time

	// MaxSteps caps the engine's event budget so wedged runs come back
	// quickly as OutcomeStepLimit. Zero keeps the machine default.
	MaxSteps uint64
}

// RecoveryLockResult is the outcome of one crash-recovery lock run.
type RecoveryLockResult struct {
	Lock    string
	Plan    string
	Topo    topo.Topology
	Procs   int
	Outcome Outcome

	Attempts     uint64 // acquire attempts issued (all incarnations)
	Acquisitions uint64 // attempts that entered the critical section
	Timeouts     uint64 // bounded attempts that expired
	Orphaned     uint64 // acquisitions that reclaimed from a dead or reborn holder
	StaleWrites  uint64 // fenced critical-section writes suppressed (FencedLock only)
	Crashed      int    // processors the plan crashed at any point
	Recovered    int    // crashed processors that were reborn

	// Recoveries counts rebirths that reached useful work again, and
	// RecoveryCycles sums, over those rebirths, the cycles from the
	// revival instant to the first post-rebirth acquisition. Their ratio
	// is the mean time-to-recovery FT3 reports.
	Recoveries     uint64
	RecoveryCycles sim.Time

	Cycles       sim.Time
	AcqPerKCycle float64
	Stats        machine.Stats
}

// RunLockRecovery executes the critical-section workload for one lock
// on a machine driven by a crash-recovery fault plan. Mutual exclusion
// is enforced among live same-incarnation holders only; reclaims from
// dead or reborn holders are counted as orphaned acquisitions. When the
// lock is a FencedLock every critical section also issues one guarded
// write to a scratch word, so a usurped holder's suppressed (stale)
// writes are observable in the result.
func RunLockRecovery(pool *machine.Pool, cfg machine.Config, info LockInfo, plan *fault.Plan, opts RecoveryLockOpts) (RecoveryLockResult, error) {
	cfg.Faults = plan
	if opts.MaxSteps > 0 {
		cfg.MaxSteps = opts.MaxSteps
	}
	cfg = cfg.Defaults()
	m, err := getMachine(pool, cfg)
	if err != nil {
		return RecoveryLockResult{}, err
	}
	defer putMachine(pool, m)
	lock := info.Make(m)
	bounded, _ := lock.(BoundedLock)
	fenced, _ := lock.(FencedLock)
	var scratch machine.Addr
	if fenced != nil {
		scratch = m.AllocShared(1)
	}

	procs := cfg.Procs
	var attempts, acqs, timeouts, orphaned, stale uint64
	var recoveries uint64
	var recoveryCycles sim.Time
	done := make([]int, procs)    // iterations completed, surviving rebirth
	lastInc := make([]int, procs) // incarnation the body last entered under
	rebornAt := make([]sim.Time, procs)
	for i := range rebornAt {
		rebornAt[i] = -1
	}
	holder := -1   // host-side: processor inside the CS, -1 when free
	holderInc := 0 // incarnation the holder acquired under
	violations := 0

	body := func(p *machine.Proc) {
		me := p.ID()
		rng := p.RNG()
		inc := m.Incarnation(me)
		if inc != lastInc[me] {
			// Recovery entry point: this body invocation is a rebirth.
			lastInc[me] = inc
			rebornAt[me] = p.Now()
		}
		for done[me] < opts.Iters {
			if opts.Think > 0 {
				p.Delay(rng.ExpTime(opts.Think))
			}
			attempts++
			if bounded != nil && opts.Budget > 0 {
				if !bounded.AcquireWithin(p, opts.Budget) {
					timeouts++
					continue
				}
			} else {
				lock.Acquire(p)
			}
			if holder >= 0 {
				switch {
				case m.Crashed(holder) || m.Incarnation(holder) != holderInc:
					// The previous claim belongs to a dead processor or a
					// dead processor's earlier incarnation: a reclaim, the
					// behavior under test, not a violation.
					orphaned++
				case holder != me:
					violations++
				}
			}
			holder, holderInc = me, inc
			acqs++
			if rebornAt[me] >= 0 {
				recoveryCycles += p.Now() - rebornAt[me]
				recoveries++
				rebornAt[me] = -1
			}
			if opts.CS > 0 {
				p.Delay(opts.CS)
			}
			if fenced != nil {
				if !fenced.GuardedStore(p, scratch, machine.Word(me+1)) {
					stale++
				}
			}
			// A usurped or excised holder may find the claim overwritten;
			// clearing only our own same-incarnation claim keeps the
			// check exact (see RunLockFaulted).
			if holder == me && holderInc == inc {
				holder = -1
			}
			lock.Release(p)
			done[me]++
		}
	}

	runErr := m.Run(body)
	res := RecoveryLockResult{
		Lock:           info.Name,
		Plan:           plan.Name(),
		Topo:           cfg.Topo,
		Procs:          procs,
		Attempts:       attempts,
		Acquisitions:   acqs,
		Timeouts:       timeouts,
		Orphaned:       orphaned,
		StaleWrites:    stale,
		Recoveries:     recoveries,
		RecoveryCycles: recoveryCycles,
	}
	switch {
	case runErr == nil:
		res.Outcome = OutcomeOK
	case errors.Is(runErr, sim.ErrStepLimit):
		res.Outcome = OutcomeStepLimit
	case errors.Is(runErr, machine.ErrDeadlock):
		res.Outcome = OutcomeDeadlock
	default:
		return RecoveryLockResult{}, fmt.Errorf("lock %q under plan %q: %w", info.Name, plan.Name(), runErr)
	}
	if violations > 0 {
		return RecoveryLockResult{}, fmt.Errorf("lock %q under plan %q violated mutual exclusion %d times among live processors", info.Name, plan.Name(), violations)
	}
	for i := 0; i < procs; i++ {
		if m.Crashed(i) || m.Incarnation(i) > 0 {
			res.Crashed++
		}
		if m.Incarnation(i) > 0 {
			res.Recovered++
		}
	}
	st := m.Stats()
	res.Cycles = st.Cycles
	res.Stats = st
	if st.Cycles > 0 {
		res.AcqPerKCycle = float64(acqs) * 1000 / float64(st.Cycles)
	}
	return res, nil
}

// RecoveryBarrierOpts configures a crash-recovery barrier workload.
type RecoveryBarrierOpts struct {
	Episodes int      // episodes each processor must complete
	Work     sim.Time // mean exponential work per phase
	MaxSteps uint64
}

// RecoveryBarrierResult is the outcome of one crash-recovery barrier run.
type RecoveryBarrierResult struct {
	Barrier string
	Plan    string
	Procs   int
	Outcome Outcome

	Episodes  uint64 // episodes completed across all processors and incarnations
	Crashed   int
	Recovered int

	// Time-to-recovery, as in RecoveryLockResult: cycles from each
	// revival to the reborn processor's first completed episode.
	Recoveries     uint64
	RecoveryCycles sim.Time

	Cycles sim.Time
	Stats  machine.Stats
}

// RunBarrierRecovery drives one barrier construction through a
// crash-recovery fault plan. The factory indirection (rather than a
// registry name) lets FT4 compare registered barriers against
// fault-parameterized ones like the straggler barrier on equal footing.
func RunBarrierRecovery(pool *machine.Pool, cfg machine.Config, name string, mk func(*machine.Machine) Barrier, plan *fault.Plan, opts RecoveryBarrierOpts) (RecoveryBarrierResult, error) {
	cfg.Faults = plan
	if opts.MaxSteps > 0 {
		cfg.MaxSteps = opts.MaxSteps
	}
	cfg = cfg.Defaults()
	m, err := getMachine(pool, cfg)
	if err != nil {
		return RecoveryBarrierResult{}, err
	}
	defer putMachine(pool, m)
	bar := mk(m)

	procs := cfg.Procs
	var total, recoveries uint64
	var recoveryCycles sim.Time
	done := make([]int, procs)
	lastInc := make([]int, procs)
	rebornAt := make([]sim.Time, procs)
	for i := range rebornAt {
		rebornAt[i] = -1
	}

	body := func(p *machine.Proc) {
		me := p.ID()
		rng := p.RNG()
		if inc := m.Incarnation(me); inc != lastInc[me] {
			lastInc[me] = inc
			rebornAt[me] = p.Now()
		}
		for done[me] < opts.Episodes {
			if opts.Work > 0 {
				p.Delay(rng.ExpTime(opts.Work))
			}
			bar.Wait(p)
			done[me]++
			total++
			if rebornAt[me] >= 0 {
				recoveryCycles += p.Now() - rebornAt[me]
				recoveries++
				rebornAt[me] = -1
			}
		}
		// Reconfigurable barriers need finished processors to leave the
		// group, or a recovered straggler could wait on them forever.
		if lv, ok := bar.(interface{ Leave(*machine.Proc) }); ok {
			lv.Leave(p)
		}
	}

	runErr := m.Run(body)
	res := RecoveryBarrierResult{
		Barrier:        name,
		Plan:           plan.Name(),
		Procs:          procs,
		Episodes:       total,
		Recoveries:     recoveries,
		RecoveryCycles: recoveryCycles,
	}
	switch {
	case runErr == nil:
		res.Outcome = OutcomeOK
	case errors.Is(runErr, sim.ErrStepLimit):
		res.Outcome = OutcomeStepLimit
	case errors.Is(runErr, machine.ErrDeadlock):
		res.Outcome = OutcomeDeadlock
	default:
		return RecoveryBarrierResult{}, fmt.Errorf("barrier %q under plan %q: %w", name, plan.Name(), runErr)
	}
	for i := 0; i < procs; i++ {
		if m.Crashed(i) || m.Incarnation(i) > 0 {
			res.Crashed++
		}
		if m.Incarnation(i) > 0 {
			res.Recovered++
		}
	}
	st := m.Stats()
	res.Cycles = st.Cycles
	res.Stats = st
	return res, nil
}
