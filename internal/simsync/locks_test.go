package simsync

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Every lock must provide mutual exclusion and lose no updates on every
// machine model, under contention with randomized think and hold times.
func TestAllLocksMutualExclusion(t *testing.T) {
	for _, info := range Locks() {
		for _, model := range []topo.Topology{Ideal, busModel, numaModel} {
			info, model := info, model
			t.Run(info.Name+"/"+model.Name(), func(t *testing.T) {
				t.Parallel()
				res, err := RunLock(
					machine.Config{Procs: 8, Topo: model, Seed: 7},
					info,
					LockOpts{Iters: 40, CS: 10, Think: 25, CheckMutex: true},
				)
				if err != nil {
					t.Fatal(err)
				}
				if res.Acquisitions != 8*40 {
					t.Fatalf("acquisitions = %d, want %d", res.Acquisitions, 8*40)
				}
				if res.CyclesPerAcq <= 0 {
					t.Fatalf("non-positive cycles per acquisition: %v", res.CyclesPerAcq)
				}
			})
		}
	}
}

// Aliases so the table above reads naturally.
var (
	Ideal     = topo.Ideal
	busModel  = topo.Bus
	numaModel = topo.NUMA
)

func TestAllLocksSingleProc(t *testing.T) {
	for _, info := range Locks() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			res, err := RunLock(
				machine.Config{Procs: 1, Topo: topo.Bus},
				info,
				LockOpts{Iters: 10, CheckMutex: true},
			)
			if err != nil {
				t.Fatal(err)
			}
			if res.Acquisitions != 10 {
				t.Fatalf("acquisitions = %d, want 10", res.Acquisitions)
			}
		})
	}
}

// FIFO locks must grant strictly in arrival order.
func TestFIFOLocksHaveNoInversions(t *testing.T) {
	for _, info := range Locks() {
		if !info.FIFO {
			continue
		}
		info := info
		t.Run(info.Name, func(t *testing.T) {
			t.Parallel()
			res, err := RunLock(
				machine.Config{Procs: 12, Topo: topo.Bus, Seed: 3},
				info,
				LockOpts{Iters: 30, CS: 8, Think: 40, CheckMutex: true, RecordOrder: true},
			)
			if err != nil {
				t.Fatal(err)
			}
			if res.FIFOInversions != 0 {
				t.Fatalf("FIFO lock %s granted %d requests out of order", info.Name, res.FIFOInversions)
			}
		})
	}
}

// The unfair locks should show inversions under heavy contention —
// otherwise our inversion counter is broken. Note: pure tas in this
// model is arbitrated by the FIFO bus queue and therefore rotates almost
// fairly; the era-documented unfairness appears once randomized backoff
// delays decide who retries nearest a release, so tas-bo is the
// canonical unfair lock here (see DESIGN.md, T3).
func TestUnfairLocksShowInversions(t *testing.T) {
	res, err := RunLock(
		machine.Config{Procs: 12, Topo: topo.Bus, Seed: 3},
		mustLock(t, "tas-bo"),
		LockOpts{Iters: 30, CS: 8, Think: 10, CheckMutex: true, RecordOrder: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.FIFOInversions == 0 {
		t.Fatal("tas-bo under heavy contention showed zero inversions; counter suspect")
	}
}

func mustLock(t *testing.T, name string) LockInfo {
	t.Helper()
	info, ok := LockByName(name)
	if !ok {
		t.Fatalf("unknown lock %q", name)
	}
	return info
}

// QSync's headline property: interconnect traffic per acquisition is
// essentially constant in the number of contending processors, while
// test&set's grows.
func TestQSyncConstantTraffic(t *testing.T) {
	traffic := func(procs int) float64 {
		res, err := RunLock(
			machine.Config{Procs: procs, Topo: topo.Bus, Seed: 5},
			mustLock(t, "qsync"),
			LockOpts{Iters: 50, CS: 10, CheckMutex: true},
		)
		if err != nil {
			t.Fatal(err)
		}
		return res.TrafficPerAcq
	}
	t2, t16 := traffic(2), traffic(16)
	if t16 > t2*2.5 {
		t.Fatalf("qsync traffic grew from %.2f (P=2) to %.2f (P=16); expected near-constant", t2, t16)
	}
}

func TestTASTrafficGrowsWithProcs(t *testing.T) {
	traffic := func(procs int) float64 {
		res, err := RunLock(
			machine.Config{Procs: procs, Topo: topo.Bus, Seed: 5},
			mustLock(t, "tas"),
			LockOpts{Iters: 30, CS: 10, CheckMutex: true},
		)
		if err != nil {
			t.Fatal(err)
		}
		return res.TrafficPerAcq
	}
	t2, t16 := traffic(2), traffic(16)
	if t16 < t2*3 {
		t.Fatalf("tas traffic went %.2f (P=2) -> %.2f (P=16); expected strong growth", t2, t16)
	}
}

// On NUMA, QSync spins locally: remote references per acquisition must
// stay small and flat.
func TestQSyncLocalSpinOnNUMA(t *testing.T) {
	res, err := RunLock(
		machine.Config{Procs: 16, Topo: topo.NUMA, Seed: 5},
		mustLock(t, "qsync"),
		LockOpts{Iters: 50, CS: 10, CheckMutex: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Enqueue (1 RMW on the cell) + link (1 store) + release CAS/store:
	// a handful of remote refs per acquisition even under full contention.
	// The CS counter itself adds 2 remote refs (load+store). Anything
	// beyond ~8 means somebody is spinning remotely.
	if res.TrafficPerAcq > 8 {
		t.Fatalf("qsync made %.2f remote refs per acquisition on NUMA; local-spin property broken", res.TrafficPerAcq)
	}
}

func TestTicketRemoteSpinOnNUMAIsCostly(t *testing.T) {
	run := func(name string) float64 {
		res, err := RunLock(
			machine.Config{Procs: 16, Topo: topo.NUMA, Seed: 5},
			mustLock(t, name),
			LockOpts{Iters: 30, CS: 10, CheckMutex: true},
		)
		if err != nil {
			t.Fatal(err)
		}
		return res.TrafficPerAcq
	}
	ticket, qsync := run("ticket"), run("qsync")
	if ticket < qsync*2 {
		t.Fatalf("ticket remote refs %.2f not clearly above qsync %.2f on NUMA", ticket, qsync)
	}
}

func TestDurationModeAndFairnessSpread(t *testing.T) {
	res, err := RunLock(
		machine.Config{Procs: 8, Topo: topo.Bus, Seed: 11},
		mustLock(t, "qsync"),
		LockOpts{Duration: 50000, CS: 10, CheckMutex: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Acquisitions == 0 {
		t.Fatal("duration mode made no acquisitions")
	}
	var min, max uint64 = ^uint64(0), 0
	for _, c := range res.AcqPerProc {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if min == 0 {
		t.Fatal("a processor was starved under the FIFO lock")
	}
	// FIFO lock: spread should be tight.
	if float64(max) > 1.5*float64(min) {
		t.Fatalf("qsync fairness spread too wide: min=%d max=%d", min, max)
	}
}

func TestUncontendedLockCost(t *testing.T) {
	for _, info := range Locks() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			cyc, traf, err := UncontendedLockCost(topo.Bus, info)
			if err != nil {
				t.Fatal(err)
			}
			if cyc <= 0 {
				t.Fatalf("non-positive uncontended cost %d", cyc)
			}
			if cyc > 500 {
				t.Fatalf("uncontended acquire/release cost %d cycles is absurd", cyc)
			}
			_ = traf
		})
	}
}

// The classic single-processor ranking: test&set is the cheapest
// uncontended lock; the queueing mechanism pays a few extra cycles.
func TestUncontendedRankingTASBeatsQSync(t *testing.T) {
	tas, _, err := UncontendedLockCost(topo.Bus, mustLock(t, "tas"))
	if err != nil {
		t.Fatal(err)
	}
	qs, _, err := UncontendedLockCost(topo.Bus, mustLock(t, "qsync"))
	if err != nil {
		t.Fatal(err)
	}
	if tas > qs {
		t.Fatalf("uncontended tas (%d cycles) dearer than qsync (%d); model inverted", tas, qs)
	}
}

func TestBackoffParamsClamping(t *testing.T) {
	m, err := machine.New(machine.Config{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	l := NewTASBackoffParams(m, BackoffParams{Base: 0, Cap: -1})
	if l == nil {
		t.Fatal("nil lock")
	}
}

func TestLockByNameUnknown(t *testing.T) {
	if _, ok := LockByName("no-such-lock"); ok {
		t.Fatal("LockByName accepted a bogus name")
	}
}

func TestCountInversions(t *testing.T) {
	mk := func(enqs ...int) []grantRecord {
		rs := make([]grantRecord, len(enqs))
		for i, e := range enqs {
			rs[i] = grantRecord{enqueue: sim.Time(e), grant: sim.Time(i)}
		}
		return rs
	}
	cases := []struct {
		enqs []int
		want uint64
	}{
		{nil, 0},
		{[]int{1}, 0},
		{[]int{1, 2, 3, 4}, 0},
		{[]int{2, 1}, 1},
		{[]int{3, 2, 1}, 3},
		{[]int{1, 3, 2, 4}, 1},
		{[]int{4, 3, 2, 1}, 6},
	}
	for _, c := range cases {
		if got := countInversions(mk(c.enqs...)); got != c.want {
			t.Errorf("inversions(%v) = %d, want %d", c.enqs, got, c.want)
		}
	}
}
