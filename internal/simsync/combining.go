package simsync

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Counter is a simulated shared counter supporting a concurrent
// increment — the "hot spot" object of the late-1980s interconnection
// literature (histogram bins, loop indexes, job queues all reduce to
// it).
type Counter interface {
	Name() string
	// Inc adds one and returns the pre-increment value.
	Inc(p *machine.Proc) machine.Word
}

// CounterMaker constructs a counter on a machine.
type CounterMaker func(m *machine.Machine) Counter

// CounterInfo describes one algorithm.
type CounterInfo struct {
	Name string
	Make CounterMaker
}

// faCounter is the baseline: every increment is a fetch&add on one
// word. On a bus each is an invalidating transaction; on NUMA every
// increment queues at the word's home module — the textbook hot spot.
type faCounter struct {
	w machine.Addr
}

// NewFetchAddCounter builds the plain fetch&add counter.
func NewFetchAddCounter(m *machine.Machine) Counter {
	return &faCounter{w: m.AllocShared(1)}
}

func (c *faCounter) Name() string { return "ctr-fa" }

func (c *faCounter) Inc(p *machine.Proc) machine.Word {
	return p.FetchAdd(c.w, 1)
}

// combiningCounter is a software combining tree: processors are paired
// at each level; when two increments meet at a node, one processor
// carries the combined count upward and the other waits for its share
// of the result. The root sees at most one operation per combining
// window, so the hot spot's traffic is spread across the tree.
//
// This implementation uses a binary tree of combining slots. A
// processor climbing with `carry` increments tries to deposit at its
// level slot: if the slot is empty (CAS 0 -> carry), it waits for a
// partner or, failing that, climbs alone after claiming the slot back;
// if the slot is full, it takes the deposit, combines, and climbs with
// the sum, later distributing the partner's base value.
//
// For determinism and boundedness we use the simpler two-phase variant:
// the *first* arrival at a node parks its contribution and waits; the
// *second* combines and climbs. A parked processor that is never
// matched would wait forever, so arrivals time out after a fixed
// window and climb alone (claiming their deposit back with a CAS).
type combiningCounter struct {
	root   machine.Addr
	levels [][]combineNode
	window sim.Time
}

type combineNode struct {
	deposit machine.Addr // parked contribution (0 = empty)
	result  machine.Addr // base value handed back to the parked proc (result+1 encodes)
}

// NewCombiningCounter builds a software combining tree counter.
func NewCombiningCounter(m *machine.Machine) Counter {
	procs := m.Procs()
	c := &combiningCounter{root: m.AllocShared(1), window: 60}
	for width := (procs + 1) / 2; ; width = (width + 1) / 2 {
		level := make([]combineNode, width)
		for i := range level {
			level[i] = combineNode{
				deposit: m.AllocShared(1),
				result:  m.AllocShared(1),
			}
		}
		c.levels = append(c.levels, level)
		if width <= 1 {
			break
		}
	}
	return c
}

func (c *combiningCounter) Name() string { return "ctr-combine" }

// lockedSlot marks a deposit captured by a combiner. The slot stays in
// this state until the parked partner has consumed its result and
// reopened the slot, so at most one result is ever in flight per node —
// the property that makes the hand-back race-free.
const lockedSlot = ^machine.Word(0)

func (c *combiningCounter) Inc(p *machine.Proc) machine.Word {
	const carry = machine.Word(1)
	id := p.ID()
	for lvl := 0; lvl < len(c.levels); lvl++ {
		node := &c.levels[lvl][(id>>(uint(lvl)+1))%len(c.levels[lvl])]
		// Try to park our contribution and wait for a combiner.
		if p.CompareAndSwap(node.deposit, 0, carry) {
			deadline := p.Now() + c.window
			for {
				v := p.Load(node.result)
				if v != 0 {
					p.Store(node.result, 0)
					p.Store(node.deposit, 0) // reopen the slot
					return v - 1             // our base (encoded +1)
				}
				if p.Now() >= deadline {
					if p.CompareAndSwap(node.deposit, carry, 0) {
						break // withdrawn: try the next level
					}
					// A combiner captured our deposit between the check
					// and the CAS; its result is (or will be) there.
					v = p.SpinWhileEq(node.result, 0)
					p.Store(node.result, 0)
					p.Store(node.deposit, 0)
					return v - 1
				}
				p.Delay(8)
			}
			continue
		}
		// The slot looked busy: try to capture the parked contribution.
		old := p.FetchStore(node.deposit, lockedSlot)
		if old == 0 || old == lockedSlot {
			// Raced with a reopen or another combiner; restore what we
			// displaced (a re-written lockedSlot is harmless: the
			// partner's reopen store orders with ours either way).
			if old == 0 {
				p.Store(node.deposit, 0)
			}
			continue
		}
		// Captured a real deposit: climb with the sum, hand back the
		// partner's base. The slot is ours (locked), so result is free.
		base := p.FetchAdd(c.root, carry+old)
		p.Store(node.result, base+carry+1) // partner's range starts after ours
		return base
	}
	return p.FetchAdd(c.root, carry)
}

// CounterOpts configures a hot-spot counter workload.
type CounterOpts struct {
	Incs  int      // increments per processor
	Think sim.Time // mean think time between increments
}

// CounterResult reports a hot-spot counter run.
type CounterResult struct {
	Counter       string
	Topo          topo.Topology
	Procs         int
	Incs          uint64
	Cycles        sim.Time
	CyclesPerInc  float64
	TrafficPerInc float64
	Stats         machine.Stats
}

// RunCounter drives a counter from every processor and checks the two
// correctness properties of a combining counter: the final total equals
// the number of increments, and the returned pre-increment values are
// unique (each caller owns a distinct slot of the count).
func RunCounter(cfg machine.Config, info CounterInfo, opts CounterOpts) (CounterResult, error) {
	return RunCounterIn(nil, cfg, info, opts)
}

// RunCounterIn is RunCounter drawing its machine from pool (see
// machines.go).
func RunCounterIn(pool *machine.Pool, cfg machine.Config, info CounterInfo, opts CounterOpts) (CounterResult, error) {
	cfg = cfg.Defaults()
	m, err := getMachine(pool, cfg)
	if err != nil {
		return CounterResult{}, err
	}
	defer putMachine(pool, m)
	ctr := info.Make(m)

	seen := make(map[machine.Word]bool)
	dups := 0
	var total uint64

	body := func(p *machine.Proc) {
		rng := p.RNG()
		for i := 0; i < opts.Incs; i++ {
			if opts.Think > 0 {
				p.Delay(rng.ExpTime(opts.Think))
			}
			v := ctr.Inc(p)
			if seen[v] {
				dups++
			}
			seen[v] = true
			total++
		}
	}

	if err := m.Run(body); err != nil {
		return CounterResult{}, fmt.Errorf("counter %q: %w", info.Name, err)
	}
	if dups > 0 {
		return CounterResult{}, fmt.Errorf("counter %q returned %d duplicate values", info.Name, dups)
	}
	want := uint64(cfg.Procs) * uint64(opts.Incs)
	if total != want {
		return CounterResult{}, fmt.Errorf("counter %q: %d increments, want %d", info.Name, total, want)
	}
	// Counters whose value is distributed (the sharded counter) expose a
	// combine-on-read path; validate it against the host-side count.
	if tr, ok := ctr.(interface {
		ReadTotal(*machine.Machine) machine.Word
	}); ok {
		if got := tr.ReadTotal(m); uint64(got) != total {
			return CounterResult{}, fmt.Errorf("counter %q combined total %d, want %d", info.Name, got, total)
		}
	}

	st := m.Stats()
	res := CounterResult{
		Counter: info.Name,
		Topo:    cfg.Topo,
		Procs:   cfg.Procs,
		Incs:    total,
		Cycles:  st.Cycles,
		Stats:   st,
	}
	if total > 0 {
		res.CyclesPerInc = float64(st.Cycles) / float64(total)
		res.TrafficPerInc = float64(st.TrafficFor(cfg.Topo)) / float64(total)
	}
	return res, nil
}
