package simsync

import (
	"errors"
	"fmt"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Outcome classifies how a fault-injected run ended. Degraded outcomes
// (step limit, deadlock) are data, not errors: a crashed holder wedging
// its lock word is exactly the failure mode the resilience sweeps
// measure, so the runner reports how far the survivors got instead of
// aborting the sweep.
type Outcome int

const (
	// OutcomeOK: every non-crashed processor completed its iterations.
	OutcomeOK Outcome = iota
	// OutcomeStepLimit: the run hit the engine's event budget — the
	// survivors were still burning cycles (usually spinning on a word a
	// crashed processor holds) when the simulation was cut off.
	OutcomeStepLimit
	// OutcomeDeadlock: every live processor was blocked with no pending
	// events — survivors parked forever behind a crashed processor.
	OutcomeDeadlock
)

func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeStepLimit:
		return "steplimit"
	case OutcomeDeadlock:
		return "deadlock"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// FaultLockOpts configures a fault-injected lock workload.
type FaultLockOpts struct {
	Iters int      // acquisition attempts per processor
	CS    sim.Time // work inside the critical section
	Think sim.Time // mean exponential think time between attempts

	// Budget, when positive and the lock implements BoundedLock, makes
	// each attempt bounded: an attempt that cannot acquire within Budget
	// cycles counts as a timeout and the processor moves on to its next
	// attempt. Zero (or an unbounded lock) means blocking Acquire, where
	// a wedged lock word ends the run at the step limit or in deadlock.
	Budget sim.Time

	// MaxSteps caps the engine's event budget so wedged runs come back
	// quickly as OutcomeStepLimit. Zero keeps the machine default.
	MaxSteps uint64
}

// FaultLockResult is the outcome of one fault-injected lock run. Counts
// and Stats are valid for every Outcome — a degraded run reports the
// work completed before the wedge.
type FaultLockResult struct {
	Lock    string
	Plan    string
	Topo    topo.Topology
	Procs   int
	Outcome Outcome

	Attempts     uint64 // acquire attempts issued (all processors)
	Acquisitions uint64 // attempts that entered the critical section
	Timeouts     uint64 // bounded attempts that expired
	Crashed      int    // processors the plan crashed during the run

	Cycles sim.Time
	// AcqPerKCycle is throughput: acquisitions per thousand elapsed
	// cycles. The resilience sweeps plot it against fault level.
	AcqPerKCycle float64
	Stats        machine.Stats
}

// RunLockFaulted executes the critical-section workload for one lock on
// a machine driven by the given fault plan, checking mutual exclusion
// among live processors as it goes.
//
// The safety check tracks the host-side holder identity: an acquire
// that succeeds while a *live* processor is inside the critical section
// is a violation (and a returned error — a broken lock never produces a
// data point). A holder that crashed inside the critical section is
// excused: whether survivors can get past it is precisely the
// robustness property under test, so that shows up in Outcome and
// throughput, not as a safety failure.
func RunLockFaulted(pool *machine.Pool, cfg machine.Config, info LockInfo, plan *fault.Plan, opts FaultLockOpts) (FaultLockResult, error) {
	cfg.Faults = plan
	if opts.MaxSteps > 0 {
		cfg.MaxSteps = opts.MaxSteps
	}
	cfg = cfg.Defaults()
	m, err := getMachine(pool, cfg)
	if err != nil {
		return FaultLockResult{}, err
	}
	defer putMachine(pool, m)
	lock := info.Make(m)
	bounded, _ := lock.(BoundedLock)

	procs := cfg.Procs
	var attempts, acqs, timeouts uint64
	holder := -1 // host-side: processor inside the CS, -1 when free
	violations := 0

	body := func(p *machine.Proc) {
		me := p.ID()
		rng := p.RNG()
		for it := 0; it < opts.Iters; it++ {
			if opts.Think > 0 {
				p.Delay(rng.ExpTime(opts.Think))
			}
			attempts++
			if bounded != nil && opts.Budget > 0 {
				if !bounded.AcquireWithin(p, opts.Budget) {
					timeouts++
					continue
				}
			} else {
				lock.Acquire(p)
			}
			if holder >= 0 && holder != me && !m.Crashed(holder) {
				violations++
			}
			holder = me
			acqs++
			if opts.CS > 0 {
				p.Delay(opts.CS)
			}
			// A usurped lease holder keeps `holder` set until its (noop)
			// release; clearing only our own claim keeps the check exact.
			if holder == me {
				holder = -1
			}
			lock.Release(p)
		}
	}

	runErr := m.Run(body)
	res := FaultLockResult{
		Lock:         info.Name,
		Plan:         plan.Name(),
		Topo:         cfg.Topo,
		Procs:        procs,
		Attempts:     attempts,
		Acquisitions: acqs,
		Timeouts:     timeouts,
	}
	switch {
	case runErr == nil:
		res.Outcome = OutcomeOK
	case errors.Is(runErr, sim.ErrStepLimit):
		res.Outcome = OutcomeStepLimit
	case errors.Is(runErr, machine.ErrDeadlock):
		res.Outcome = OutcomeDeadlock
	default:
		return FaultLockResult{}, fmt.Errorf("lock %q under plan %q: %w", info.Name, plan.Name(), runErr)
	}
	if violations > 0 {
		return FaultLockResult{}, fmt.Errorf("lock %q under plan %q violated mutual exclusion %d times among live processors", info.Name, plan.Name(), violations)
	}
	for i := 0; i < procs; i++ {
		if m.Crashed(i) {
			res.Crashed++
		}
	}
	st := m.Stats()
	res.Cycles = st.Cycles
	res.Stats = st
	if st.Cycles > 0 {
		res.AcqPerKCycle = float64(acqs) * 1000 / float64(st.Cycles)
	}
	return res, nil
}

// FaultBarrierOpts configures a fault-injected straggler-barrier run.
type FaultBarrierOpts struct {
	Episodes int
	Work     sim.Time // mean exponential work per phase
	Budget   sim.Time // straggler barrier wait budget
	MaxSteps uint64
}

// FaultBarrierResult is the outcome of one fault-injected barrier run.
type FaultBarrierResult struct {
	Plan     string
	Procs    int
	Outcome  Outcome
	Episodes uint64 // episodes completed across all live processors
	Timeouts uint64 // waits that forced an episode open
	Crashed  int
	Cycles   sim.Time
	Stats    machine.Stats
}

// RunBarrierFaulted drives the straggler-tolerant barrier through a
// fault plan: crashed processors stop arriving, and every completed
// wait — on time or by budget expiry — counts toward the episode total.
func RunBarrierFaulted(pool *machine.Pool, cfg machine.Config, plan *fault.Plan, opts FaultBarrierOpts) (FaultBarrierResult, error) {
	cfg.Faults = plan
	if opts.MaxSteps > 0 {
		cfg.MaxSteps = opts.MaxSteps
	}
	cfg = cfg.Defaults()
	m, err := getMachine(pool, cfg)
	if err != nil {
		return FaultBarrierResult{}, err
	}
	defer putMachine(pool, m)
	bar := NewStragglerBarrier(m, opts.Budget).(*stragglerBarrier)

	var done uint64
	body := func(p *machine.Proc) {
		rng := p.RNG()
		for e := 0; e < opts.Episodes; e++ {
			if opts.Work > 0 {
				p.Delay(rng.ExpTime(opts.Work))
			}
			bar.Wait(p)
			done++
		}
	}

	runErr := m.Run(body)
	res := FaultBarrierResult{
		Plan:     plan.Name(),
		Procs:    cfg.Procs,
		Episodes: done,
		Timeouts: bar.Timeouts(),
	}
	switch {
	case runErr == nil:
		res.Outcome = OutcomeOK
	case errors.Is(runErr, sim.ErrStepLimit):
		res.Outcome = OutcomeStepLimit
	case errors.Is(runErr, machine.ErrDeadlock):
		res.Outcome = OutcomeDeadlock
	default:
		return FaultBarrierResult{}, fmt.Errorf("straggler barrier under plan %q: %w", plan.Name(), runErr)
	}
	for i := 0; i < cfg.Procs; i++ {
		if m.Crashed(i) {
			res.Crashed++
		}
	}
	st := m.Stats()
	res.Cycles = st.Cycles
	res.Stats = st
	return res, nil
}
