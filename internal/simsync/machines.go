package simsync

import "repro/internal/machine"

// Every workload runner (RunLock, RunBarrier, RunRW,
// RunProducerConsumer, RunCounter) has an In-suffixed variant taking a
// *machine.Pool. A pooled run draws its machine with Get — which resets
// a cached machine instead of allocating simulated memory — and returns
// it with Put once the measurements are read. Reset machines are
// bit-identical to fresh ones (pinned by the determinism tests), so
// pooled and unpooled runs produce the same results; the pool only
// removes the per-cell allocation cost. A nil pool means "allocate
// fresh", which keeps the plain entry points working unchanged.

// getMachine draws a machine for one run.
func getMachine(pool *machine.Pool, cfg machine.Config) (*machine.Machine, error) {
	if pool != nil {
		return pool.Get(cfg)
	}
	return machine.New(cfg)
}

// putMachine returns a machine after a run; no-op without a pool.
func putMachine(pool *machine.Pool, m *machine.Machine) {
	if pool != nil {
		pool.Put(m)
	}
}
