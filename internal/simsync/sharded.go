package simsync

import "repro/internal/machine"

// shardedCounter stripes the hot-spot counter across the machine: each
// processor increments a stripe in its *own* local module, so an
// increment is one local fetch&add — no interconnect transaction at all
// on NUMA, and no invalidation storm on a bus. The global value exists
// only on demand: ReadTotal combines the stripes, the SynCron-style
// trade of hierarchical synchronization (arXiv:2101.07557) — spend a
// P-wide combine on the rare read to make the hot write path O(1) and
// contention-free.
//
// Inc still returns a globally unique pre-increment value by giving
// each stripe a disjoint residue class: stripe i hands out i, i+P,
// i+2P, ... This is a sharded ticket dispenser — unique but not
// FIFO-ordered across processors, which is exactly the discipline a
// statistics counter or work-stealing id generator needs, and what the
// central fetch&add pays a hot spot to over-deliver.
type shardedCounter struct {
	stripes []machine.Addr // one word per processor, in its local module
	procs   machine.Word
}

// NewShardedCounter builds the per-processor-striped counter.
func NewShardedCounter(m *machine.Machine) Counter {
	c := &shardedCounter{
		stripes: make([]machine.Addr, m.Procs()),
		procs:   machine.Word(m.Procs()),
	}
	for i := range c.stripes {
		c.stripes[i] = m.AllocLocal(i, 1)
	}
	return c
}

func (c *shardedCounter) Name() string { return "ctr-sharded" }

func (c *shardedCounter) Inc(p *machine.Proc) machine.Word {
	local := p.FetchAdd(c.stripes[p.ID()], 1)
	return local*c.procs + machine.Word(p.ID())
}

// ReadTotal combines the stripes into the current global count. It is a
// host-side Peek sum (the instrument reading, not a simulated
// operation); a simulated reader would pay one remote load per stripe,
// the cost the write path no longer pays.
func (c *shardedCounter) ReadTotal(m *machine.Machine) machine.Word {
	var total machine.Word
	for _, s := range c.stripes {
		total += m.Peek(s)
	}
	return total
}
