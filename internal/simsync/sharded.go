package simsync

import (
	"repro/internal/machine"
	"repro/internal/topo"
)

// shardedCounter stripes the hot-spot counter across the machine's
// locality groups, placing each stripe through the machine's placement
// policy (machine.AllocPlaced). On a flat machine every processor is
// its own group, so this is the classic per-processor striping: an
// increment is one local fetch&add — no interconnect transaction at
// all on NUMA, and no invalidation storm on a bus. On a hierarchical
// machine (topo.Cluster) the stripes land one per cluster on the
// cluster's home module: increments pay at most a cheap intra-cluster
// hop and the expensive inter-cluster links carry no counter traffic —
// the SynCron-style near-data trade (arXiv:2101.07557) expressed as a
// placement policy instead of a rewritten algorithm. The global value
// exists only on demand: ReadTotal combines the stripes.
//
// Inc still returns a globally unique pre-increment value by giving
// each stripe a disjoint residue class: stripe g hands out g, g+G,
// g+2G, ... for G stripes. This is a sharded ticket dispenser — unique
// but not FIFO-ordered across processors, which is exactly the
// discipline a statistics counter or work-stealing id generator needs,
// and what the central fetch&add pays a hot spot to over-deliver.
type shardedCounter struct {
	stripes []machine.Addr // one per locality group, at the group's placed module
	group   []machine.Word // processor -> stripe index (host-side, fixed at build)
	groups  machine.Word
}

// NewShardedCounter builds the group-striped counter on m, placing
// stripes through the machine's placement policy.
func NewShardedCounter(m *machine.Machine) Counter {
	t := m.Topo()
	procs := m.Procs()
	groups := topo.Groups(t, procs)
	c := &shardedCounter{
		stripes: make([]machine.Addr, groups),
		group:   make([]machine.Word, procs),
		groups:  machine.Word(groups),
	}
	pl := m.Placement()
	for g := 0; g < groups; g++ {
		c.stripes[g] = m.AllocPlaced(pl, t.GroupHome(g, procs), 1)
	}
	for p := 0; p < procs; p++ {
		c.group[p] = machine.Word(t.Group(p, procs))
	}
	return c
}

func (c *shardedCounter) Name() string { return "ctr-sharded" }

func (c *shardedCounter) Inc(p *machine.Proc) machine.Word {
	g := c.group[p.ID()]
	local := p.FetchAdd(c.stripes[g], 1)
	return local*c.groups + g
}

// ReadTotal combines the stripes into the current global count. It is a
// host-side Peek sum (the instrument reading, not a simulated
// operation); a simulated reader would pay one remote load per stripe,
// the cost the write path no longer pays.
func (c *shardedCounter) ReadTotal(m *machine.Machine) machine.Word {
	var total machine.Word
	for _, s := range c.stripes {
		total += m.Peek(s)
	}
	return total
}
