package simsync

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/topo"
)

// The sharded semaphore must enforce the permit bound on every
// topology: with N permits, at most N processors are ever inside the
// guarded section at once, and no permit is lost.
func TestShardedSemaphoreBound(t *testing.T) {
	for _, tp := range toposUnderTest() {
		tp := tp
		t.Run(tp.Name(), func(t *testing.T) {
			const procs, permits, iters = 8, 3, 20
			m, err := machine.New(machine.Config{Procs: procs, Topo: tp, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			sem := NewShardedSemaphore(m, permits)
			inside, worst := 0, 0
			err = m.Run(func(p *machine.Proc) {
				for i := 0; i < iters; i++ {
					sem.P(p)
					inside++
					if inside > worst {
						worst = inside
					}
					p.Delay(p.RNG().Time(40) + 1)
					inside--
					sem.V(p)
					p.Delay(p.RNG().Time(20))
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if worst > permits {
				t.Fatalf("%d processors held permits concurrently, bound is %d", worst, permits)
			}
			if worst < permits {
				t.Fatalf("peak concurrency %d never reached the bound %d; workload too weak", worst, permits)
			}
		})
	}
}

// The producer/consumer battery must validate sem-sharded end to end
// (conservation of items) on the hierarchical machine too.
func TestShardedSemaphoreProducerConsumer(t *testing.T) {
	info, ok := SemaphoreByName("sem-sharded")
	if !ok {
		t.Fatal("sem-sharded not registered")
	}
	for _, tp := range []topo.Topology{topo.Bus, topo.NUMA, topo.Cluster} {
		res, err := RunProducerConsumer(
			machine.Config{Procs: 8, Topo: tp, Seed: 3},
			info, PCOpts{Items: 60, Capacity: 4, Work: 20})
		if err != nil {
			t.Fatalf("%s: %v", tp.Name(), err)
		}
		if res.Cycles == 0 {
			t.Fatalf("%s: no simulated work", tp.Name())
		}
	}
}

// Placement proof for the group-striped counter on the cluster
// machine: each stripe lives on its cluster's home module, so of every
// cluster's span processors exactly one increments locally and the
// rest pay one intra-cluster remote reference — refs per increment is
// exactly (span-1)/span, and no increment crosses a cluster boundary
// (which would show up as extra cycles via the dearer traversal).
func TestShardedCounterClusterPlacement(t *testing.T) {
	info, ok := CounterByName("ctr-sharded")
	if !ok {
		t.Fatal("ctr-sharded not registered")
	}
	const procs, incs = 16, 30
	res, err := RunCounter(
		machine.Config{Procs: procs, Topo: topo.Cluster, Seed: 9},
		info, CounterOpts{Incs: incs, Think: 20})
	if err != nil {
		t.Fatal(err)
	}
	// 4 clusters of 4: processors 0,4,8,12 increment locally; the other
	// 12 each pay exactly one remote reference per increment.
	wantRefs := uint64(12 * incs)
	if got := res.Stats.RemoteRefs; got != wantRefs {
		t.Fatalf("cluster-placed sharded counter made %d remote refs, want exactly %d", got, wantRefs)
	}
	for p, ps := range res.Stats.PerProc {
		wantLocal := p%4 == 0
		if wantLocal && ps.RemoteRefs != 0 {
			t.Errorf("P%d is a cluster home but made %d remote refs", p, ps.RemoteRefs)
		}
		if !wantLocal && ps.RemoteRefs != incs {
			t.Errorf("P%d made %d remote refs, want %d (one intra-cluster hop per inc)", p, ps.RemoteRefs, incs)
		}
	}
	// The same counter run on flat NUMA is entirely local.
	resFlat, err := RunCounter(
		machine.Config{Procs: procs, Topo: topo.NUMA, Seed: 9},
		info, CounterOpts{Incs: incs, Think: 20})
	if err != nil {
		t.Fatal(err)
	}
	if resFlat.Stats.RemoteRefs != 0 {
		t.Fatalf("flat-placed sharded counter made %d remote refs, want 0", resFlat.Stats.RemoteRefs)
	}
}

// The central placement policy is the deliberate hot-spot: every
// stripe lands on module 0, so the sharded counter degenerates into a
// striped-but-centralized structure and pays remote references from
// every non-zero processor. This pins that the policy knob actually
// reaches the allocation.
func TestCentralPlacementCreatesHotSpot(t *testing.T) {
	info, _ := CounterByName("ctr-sharded")
	res, err := RunCounter(
		machine.Config{Procs: 8, Topo: topo.NUMA, Seed: 9, Placement: topo.PlaceCentral},
		info, CounterOpts{Incs: 20, Think: 20})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Stats.RemoteRefs, uint64(7*20); got != want {
		t.Fatalf("central placement made %d remote refs, want %d", got, want)
	}
}
