package simsync

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/topo"
)

// Fault-plan determinism: the whole determinism contract — run twice
// bit-identical, windows on/off A/B identical — must survive fault
// injection. Stalls and degrades perturb event timing and memory
// pricing mid-run, which is exactly the regime where a spin window
// popping in closed form across a fault boundary would diverge from
// the per-event execution; these suites replay every family through
// such plans on every registered topology.
//
// The plans here carry no crashes: a crash can wedge the blocking
// runners (that behavior has its own suite below and in the machine
// package), while stall+degrade plans leave every workload able to
// finish.

// faultPlanFor builds a deterministic stall+degrade plan sized to the
// short determinism workloads: a couple of mid-run stalls spread over
// the contending processors plus two module degrades.
func faultPlanFor(tp topo.Topology, procs int) *fault.Plan {
	return fault.Generate(
		fmt.Sprintf("det/%s/P%d", tp.Name(), procs),
		0xFA017+uint64(procs),
		fault.Spec{
			Procs:   procs,
			Modules: procs,
			Horizon: 20000,
			Stalls:  procs/2 + 1, StallMin: 200, StallMax: 1000,
			Degrades: 2, DegradeMin: 1000, DegradeMax: 4000, FactorMax: 4,
		})
}

func TestFaultDeterminismLocks(t *testing.T) {
	forEachConfig(t, func(tp topo.Topology, procs int) {
		plan := faultPlanFor(tp, procs)
		for _, info := range Locks() {
			info := info
			name := fmt.Sprintf("%s/%s/P%d/faulted", tp.Name(), info.Name, procs)
			assertIdentical(t, name, func(noWindows, noInline bool) (machine.Stats, error) {
				res, err := RunLock(
					machine.Config{Procs: procs, Topo: tp, Seed: 7, NoSpinWindows: noWindows, NoInlineDispatch: noInline, Faults: plan},
					info, LockOpts{Iters: 20, CS: 25, Think: 50, CheckMutex: true})
				return res.Stats, err
			})
		}
	})
}

func TestFaultDeterminismBarriers(t *testing.T) {
	forEachConfig(t, func(tp topo.Topology, procs int) {
		plan := faultPlanFor(tp, procs)
		for _, info := range Barriers() {
			info := info
			name := fmt.Sprintf("%s/%s/P%d/faulted", tp.Name(), info.Name, procs)
			assertIdentical(t, name, func(noWindows, noInline bool) (machine.Stats, error) {
				res, err := RunBarrier(
					machine.Config{Procs: procs, Topo: tp, Seed: 7, NoSpinWindows: noWindows, NoInlineDispatch: noInline, Faults: plan},
					info, BarrierOpts{Episodes: 10, Work: 150})
				return res.Stats, err
			})
		}
	})
}

func TestFaultDeterminismRWLocks(t *testing.T) {
	forEachConfig(t, func(tp topo.Topology, procs int) {
		plan := faultPlanFor(tp, procs)
		for _, info := range RWLocks() {
			info := info
			name := fmt.Sprintf("%s/%s/P%d/faulted", tp.Name(), info.Name, procs)
			assertIdentical(t, name, func(noWindows, noInline bool) (machine.Stats, error) {
				res, err := RunRW(
					machine.Config{Procs: procs, Topo: tp, Seed: 7, NoSpinWindows: noWindows, NoInlineDispatch: noInline, Faults: plan},
					info, RWOpts{Iters: 20, ReadFraction: 0.8, Work: 40, Think: 60})
				return res.Stats, err
			})
		}
	})
}

func TestFaultDeterminismSemaphores(t *testing.T) {
	forEachConfig(t, func(tp topo.Topology, procs int) {
		plan := faultPlanFor(tp, procs)
		for _, info := range Semaphores() {
			info := info
			name := fmt.Sprintf("%s/%s/P%d/faulted", tp.Name(), info.Name, procs)
			assertIdentical(t, name, func(noWindows, noInline bool) (machine.Stats, error) {
				res, err := RunProducerConsumer(
					machine.Config{Procs: procs, Topo: tp, Seed: 7, NoSpinWindows: noWindows, NoInlineDispatch: noInline, Faults: plan},
					info, PCOpts{Items: 40, Capacity: 4, Work: 20})
				return res.Stats, err
			})
		}
	})
}

func TestFaultDeterminismCounters(t *testing.T) {
	forEachConfig(t, func(tp topo.Topology, procs int) {
		plan := faultPlanFor(tp, procs)
		for _, info := range Counters() {
			info := info
			name := fmt.Sprintf("%s/%s/P%d/faulted", tp.Name(), info.Name, procs)
			assertIdentical(t, name, func(noWindows, noInline bool) (machine.Stats, error) {
				res, err := RunCounter(
					machine.Config{Procs: procs, Topo: tp, Seed: 7, NoSpinWindows: noWindows, NoInlineDispatch: noInline, Faults: plan},
					info, CounterOpts{Incs: 30, Think: 20})
				return res.Stats, err
			})
		}
	})
}

// TestFaultDeterminismCrashRunner covers the crash path: plans that
// kill processors mid-run, executed through the degradation-tolerant
// runner. The full FaultLockResult — outcome classification, attempt
// and timeout counts, crash tally, throughput — must be bit-identical
// across repeat runs and across the windows A/B switch.
func TestFaultDeterminismCrashRunner(t *testing.T) {
	locks := []string{"tas", "tas-deadline", "lease"}
	for _, tp := range []topo.Topology{topo.Bus, topo.NUMA} {
		for _, procs := range []int{4, 8} {
			// A hand-built plan pins the crash early enough to land inside
			// even the fastest configuration's run (a generated crash
			// drawn past the last real event never materializes — the
			// drive loop stops at live==0 without draining stale events).
			plan := fault.NewPlan(fmt.Sprintf("crash/%s/P%d", tp.Name(), procs)).
				WithStall(0, 300, 900).
				WithCrash(procs-1, 700)
			for _, lk := range locks {
				info := mustLock(t, lk)
				name := fmt.Sprintf("%s/%s/P%d/crash", tp.Name(), lk, procs)
				opts := FaultLockOpts{Iters: 12, CS: 25, Think: 50, Budget: 2048, MaxSteps: 500_000}
				measure := func(noWindows, noInline bool) (FaultLockResult, error) {
					return RunLockFaulted(nil,
						machine.Config{Procs: procs, Topo: tp, Seed: 11, NoSpinWindows: noWindows, NoInlineDispatch: noInline},
						info, plan, opts)
				}
				a, err := measure(false, false)
				if err != nil {
					t.Fatalf("%s: first run: %v", name, err)
				}
				b, err := measure(false, false)
				if err != nil {
					t.Fatalf("%s: second run: %v", name, err)
				}
				if !reflect.DeepEqual(a, b) {
					t.Errorf("%s: runs diverged:\n  first:  %+v\n  second: %+v", name, a, b)
				}
				c, err := measure(true, false)
				if err != nil {
					t.Fatalf("%s: windows-off run: %v", name, err)
				}
				if c.Stats.WindowOps != 0 {
					t.Fatalf("%s: NoSpinWindows run still batched %d window ops", name, c.Stats.WindowOps)
				}
				d, err := measure(false, true)
				if err != nil {
					t.Fatalf("%s: no-inline run: %v", name, err)
				}
				if d.Stats.InlineDispatches != 0 {
					t.Fatalf("%s: NoInlineDispatch run still dispatched %d ops inline", name, d.Stats.InlineDispatches)
				}
				ai := a
				ai.Stats.InlineDispatches = 0
				if !reflect.DeepEqual(ai, d) {
					t.Errorf("%s: inline dispatch changed a crashed run:\n  inline:  %+v\n  handoff: %+v", name, ai, d)
				}
				a.Stats.WindowOps = 0
				if !reflect.DeepEqual(a, c) {
					t.Errorf("%s: window batching changed results:\n  on:  %+v\n  off: %+v", name, a, c)
				}
				if a.Crashed != 1 {
					t.Errorf("%s: plan crashes one processor, run reports %d", name, a.Crashed)
				}
			}
		}
	}
}
