package simsync

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/machine"
	"repro/internal/topo"
)

// Golden cluster per-event equivalence. The per-distance-class window
// batcher (ISSUE 6) must leave the cluster topology's *per-event*
// execution bit-identical to the pre-batcher implementation: the file
// was generated on the last tree where cluster storms were window
// ineligible, with NoSpinWindows set so the recording pins the
// per-event path explicitly. Replays run with the same flag, so the
// comparison stays meaningful after batching lands — windows-on
// equivalence is enforced separately by the determinism A/B suite,
// whose scrubbed-WindowOps comparison closes the triangle back to
// these cells.
//
// Cells cover every algorithm of all five simulated families on the
// canonical cluster machine at P ∈ {8, 32} — 8 spans both the
// intra-cluster storm and one boundary crossing, 32 is the classic
// eight-cluster contended regime.

var updateGoldenCluster = flag.Bool("update-golden-cluster", false, "rewrite testdata/golden_cluster.json from the current implementation")

const goldenClusterPath = "testdata/golden_cluster.json"

func goldenClusterConfig(procs int) machine.Config {
	return machine.Config{Procs: procs, Topo: topo.Cluster, Seed: 7, NoSpinWindows: true}
}

func generateGoldenCluster(t *testing.T) []goldenCell {
	t.Helper()
	var cells []goldenCell
	for _, family := range goldenFamilies {
		for _, algo := range goldenAlgoLists()[family] {
			for _, procs := range []int{8, 32} {
				cell, err := runGoldenCellCfg(family, algo, "cluster", topo.Cluster, goldenClusterConfig(procs))
				if err != nil {
					t.Fatalf("%s/%s/cluster/P%d: %v", family, algo, procs, err)
				}
				cells = append(cells, cell)
			}
		}
	}
	return cells
}

// TestGoldenClusterEquivalence replays every recorded pre-batcher
// cluster cell on the current implementation and requires bit-identical
// stats, Events and WindowOps included.
func TestGoldenClusterEquivalence(t *testing.T) {
	if *updateGoldenCluster {
		cells := generateGoldenCluster(t)
		data, err := json.MarshalIndent(cells, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenClusterPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenClusterPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden cells to %s", len(cells), goldenClusterPath)
		return
	}

	data, err := os.ReadFile(goldenClusterPath)
	if err != nil {
		t.Fatalf("golden file missing (generate with -update-golden-cluster on a pre-batcher tree): %v", err)
	}
	var want []goldenCell
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("golden file is empty")
	}
	for _, w := range want {
		if w.Model != "cluster" {
			t.Fatalf("golden cell references unexpected model %q", w.Model)
		}
		got, err := runGoldenCellCfg(w.Family, w.Algo, w.Model, topo.Cluster, goldenClusterConfig(w.Procs))
		if err != nil {
			t.Errorf("%s/%s/%s/P%d: %v", w.Family, w.Algo, w.Model, w.Procs, err)
			continue
		}
		// InlineDispatches is host-side dispatch accounting (cont.go),
		// not a simulation observable; the recording predates it. Its
		// A/B invariance is pinned by the NoInlineDispatch suite.
		got.Stats.InlineDispatches = 0
		w.Stats.InlineDispatches = 0
		if !reflect.DeepEqual(got, w) {
			t.Errorf("%s/%s/%s/P%d diverged from the pre-batcher baseline:\n  want: %+v\n  got:  %+v",
				w.Family, w.Algo, w.Model, w.Procs, w, got)
		}
	}
}
