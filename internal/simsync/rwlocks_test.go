package simsync

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/topo"
)

// Every RW lock must uphold both exclusion invariants on every model
// across read fractions.
func TestRWLocksExclusion(t *testing.T) {
	for _, info := range RWLocks() {
		for _, model := range []topo.Topology{topo.Ideal, topo.Bus, topo.NUMA} {
			for _, frac := range []float64{0, 0.5, 0.9, 1} {
				info, model, frac := info, model, frac
				name := info.Name + "/" + model.Name() + "/" + fmtFrac(frac)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					res, err := RunRW(
						machine.Config{Procs: 8, Topo: model, Seed: 13},
						info,
						RWOpts{Iters: 30, ReadFraction: frac, Work: 15, Think: 30},
					)
					if err != nil {
						t.Fatal(err)
					}
					if res.Reads+res.Writes != 8*30 {
						t.Fatalf("ops = %d+%d, want %d", res.Reads, res.Writes, 8*30)
					}
					if frac == 0 && res.Reads != 0 {
						t.Fatal("fraction 0 produced reads")
					}
					if frac == 1 && res.Writes != 0 {
						t.Fatal("fraction 1 produced writes")
					}
				})
			}
		}
	}
}

func fmtFrac(f float64) string {
	switch f {
	case 0:
		return "w-only"
	case 1:
		return "r-only"
	case 0.5:
		return "mixed"
	default:
		return "read-heavy"
	}
}

// Read-sharing must actually happen: with a long read section and all
// readers, total elapsed time must be far below the serialized sum.
func TestRWLocksReadersShare(t *testing.T) {
	for _, info := range RWLocks() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			// Ideal memory isolates the sharing semantics from
			// interconnect serialization (on the bus model the lock
			// protocol's transactions queue at 20 cycles each, which
			// is measured by F2, not by this test).
			const procs, iters = 8, 10
			const work = 2000
			res, err := RunRW(
				machine.Config{Procs: procs, Topo: topo.Ideal, Seed: 3},
				info,
				RWOpts{Iters: iters, ReadFraction: 1, Work: work},
			)
			if err != nil {
				t.Fatal(err)
			}
			serialized := int64(procs) * iters * work
			if int64(res.Cycles) > serialized/3 {
				t.Fatalf("%s: %d cycles for all-reader load; near-serialized (%d) means readers do not share",
					info.Name, res.Cycles, serialized)
			}
		})
	}
}

// The fair lock must not starve writers even under a reader flood; the
// counter lock is allowed to (it is the baseline that motivates
// fairness) but both must at least complete.
func TestRWQSyncWriterProgress(t *testing.T) {
	info, _ := RWLockByName("rw-qsync")
	res, err := RunRW(
		machine.Config{Procs: 12, Topo: topo.Bus, Seed: 17},
		info,
		RWOpts{Iters: 40, ReadFraction: 0.9, Work: 20, Think: 10},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Writes == 0 {
		t.Fatal("no writes completed under reader flood")
	}
}

// The mechanism's RW lock must keep remote traffic per operation low on
// NUMA: spins are local.
func TestRWQSyncLocalSpinOnNUMA(t *testing.T) {
	info, _ := RWLockByName("rw-qsync")
	res, err := RunRW(
		machine.Config{Procs: 16, Topo: topo.NUMA, Seed: 9},
		info,
		RWOpts{Iters: 30, ReadFraction: 0.5, Work: 15, Think: 20},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrafficPerOp > 14 {
		t.Fatalf("rw-qsync made %.2f remote refs/op; expected bounded (local spinning)", res.TrafficPerOp)
	}
}

func TestRWLockByNameUnknown(t *testing.T) {
	if _, ok := RWLockByName("bogus"); ok {
		t.Fatal("bogus rwlock found")
	}
}

func TestRWDeterministicReplay(t *testing.T) {
	run := func() RWResult {
		info, _ := RWLockByName("rw-qsync")
		res, err := RunRW(
			machine.Config{Procs: 6, Topo: topo.NUMA, Seed: 21},
			info,
			RWOpts{Iters: 25, ReadFraction: 0.7, Work: 10, Think: 15},
		)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Reads != b.Reads || a.Stats.RemoteRefs != b.Stats.RemoteRefs {
		t.Fatalf("replay diverged: %+v vs %+v", a, b)
	}
}

func TestGraunkeThakkarBasics(t *testing.T) {
	// The gt lock is covered by the registry-wide tests; pin down its
	// FIFO property and flag-flipping reuse explicitly.
	res, err := RunLock(
		machine.Config{Procs: 10, Topo: topo.Bus, Seed: 2},
		mustLock(t, "gt"),
		LockOpts{Iters: 50, CS: 10, Think: 20, CheckMutex: true, RecordOrder: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.FIFOInversions != 0 {
		t.Fatalf("gt granted %d requests out of order", res.FIFOInversions)
	}
	if res.Acquisitions != 10*50 {
		t.Fatalf("acquisitions = %d", res.Acquisitions)
	}
}
