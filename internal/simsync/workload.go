package simsync

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/topo"
)

// LockOpts configures a simulated lock workload.
type LockOpts struct {
	Iters int      // acquisitions per processor (ignored if Duration > 0)
	CS    sim.Time // work performed inside the critical section
	Think sim.Time // mean exponential think time between acquisitions

	// Duration, when positive, switches to open-ended mode: processors
	// acquire repeatedly until the virtual clock passes Duration. This is
	// the mode used for fairness measurements, where per-processor
	// acquisition counts are allowed to diverge.
	Duration sim.Time

	CheckMutex  bool // verify mutual exclusion with a read-delay-write counter
	RecordOrder bool // record enqueue/grant times for FIFO analysis
}

// LockResult is the outcome of one lock workload run.
type LockResult struct {
	Lock         string
	Topo         topo.Topology
	Procs        int
	Acquisitions uint64
	Cycles       sim.Time
	CyclesPerAcq float64
	// TrafficPerAcq is interconnect transactions (bus transactions or
	// remote references, per the model) per acquisition.
	TrafficPerAcq float64
	AcqPerProc    []uint64
	// FIFOInversions counts pairs granted out of arrival order
	// (normalized later by the harness; exact queue locks score 0).
	FIFOInversions uint64
	Stats          machine.Stats
}

// grantRecord captures one acquisition for fairness/FIFO analysis.
type grantRecord struct {
	enqueue sim.Time // time Acquire was entered
	grant   sim.Time // time Acquire returned
}

// RunLock executes a standard critical-section workload for one lock
// algorithm on a fresh machine and verifies the lock's safety invariants
// as it goes. Any invariant violation is returned as an error: a broken
// lock must never produce a data point.
func RunLock(cfg machine.Config, info LockInfo, opts LockOpts) (LockResult, error) {
	return RunLockIn(nil, cfg, info, opts)
}

// RunLockIn is RunLock drawing its machine from pool (see machines.go).
func RunLockIn(pool *machine.Pool, cfg machine.Config, info LockInfo, opts LockOpts) (LockResult, error) {
	cfg = cfg.Defaults()
	m, err := getMachine(pool, cfg)
	if err != nil {
		return LockResult{}, err
	}
	defer putMachine(pool, m)
	lock := info.Make(m)

	var counter machine.Addr
	if opts.CheckMutex {
		counter = m.AllocShared(1)
	}

	procs := cfg.Procs
	acqPerProc := make([]uint64, procs)
	inCS := 0
	overlaps := 0
	var records []grantRecord

	// Locks whose release is a single plain store run the whole held
	// section — counter load, CS delay, counter store, bookkeeping,
	// release store, and (in fixed-iteration mode) the next think time —
	// as one machine-driven continuation script: the holder's goroutine
	// parks once per acquisition instead of once per operation that
	// crosses a pending event. The script issues exactly the operations
	// the plain body would, in the same order with the same RNG draws,
	// so results are bit-identical (the golden and determinism suites
	// pin this against the recorded pre-continuation numbers).
	scripted, _ := lock.(ScriptedRelease)
	bump := func(p *machine.Proc) {
		acqPerProc[p.ID()]++
		inCS--
	}

	body := func(p *machine.Proc) {
		rng := p.RNG()
		var ops []machine.ContOp
		relIdx := -1
		thinkTail := false
		if scripted != nil {
			// Scripts overlap across processors (the think tail runs
			// after the release store, while the next holder's script is
			// already active), so each processor carries its own slice.
			ops = make([]machine.ContOp, 0, 6)
			if opts.CheckMutex {
				ops = append(ops, machine.ContOp{Kind: machine.ContLoad, Addr: counter})
				if opts.CS > 0 {
					ops = append(ops, machine.ContOp{Kind: machine.ContDelay, Dur: opts.CS})
				}
				ops = append(ops, machine.ContOp{Kind: machine.ContStoreAcc, Addr: counter, Val: 1})
			} else if opts.CS > 0 {
				ops = append(ops, machine.ContOp{Kind: machine.ContDelay, Dur: opts.CS})
			}
			ops = append(ops, machine.ContOp{Kind: machine.ContCall, Fn: bump})
			relIdx = len(ops)
			ops = append(ops, machine.ContOp{Kind: machine.ContStore})
			// The loop-top think of iteration it+1 folds into iteration
			// it's script tail — the draw lands at the same position in
			// this processor's RNG stream. Duration mode keeps the think
			// at the loop top: its clock check must precede the draw.
			if opts.Think > 0 && opts.Duration <= 0 {
				ops = append(ops, machine.ContOp{Kind: machine.ContExpDelay, Dur: opts.Think})
				thinkTail = true
			}
		}
		for it := 0; ; it++ {
			if opts.Duration > 0 {
				if p.Now() >= opts.Duration {
					return
				}
			} else if it >= opts.Iters {
				return
			}
			if opts.Think > 0 && (scripted == nil || opts.Duration > 0 || it == 0) {
				p.Delay(rng.ExpTime(opts.Think))
			}
			enq := p.Now()
			lock.Acquire(p)
			// Host-side bracket check: the simulator interleaves only at
			// yield points, so this counter detects any overlap exactly.
			inCS++
			if inCS != 1 {
				overlaps++
			}
			if opts.RecordOrder {
				records = append(records, grantRecord{enqueue: enq, grant: p.Now()})
			}
			if scripted != nil {
				ops[relIdx].Addr, ops[relIdx].Val = scripted.ReleaseScript(p)
				script := ops
				if thinkTail && it+1 >= opts.Iters {
					// The plain loop draws no think after its last
					// release; drop the tail to match.
					script = ops[:relIdx+1]
				}
				p.RunScript(script)
				continue
			}
			if opts.CheckMutex {
				v := p.Load(counter)
				if opts.CS > 0 {
					p.Delay(opts.CS)
				}
				p.Store(counter, v+1)
			} else if opts.CS > 0 {
				p.Delay(opts.CS)
			}
			acqPerProc[p.ID()]++
			inCS--
			lock.Release(p)
		}
	}

	if err := m.Run(body); err != nil {
		return LockResult{}, fmt.Errorf("lock %q: %w", info.Name, err)
	}

	var total uint64
	for _, c := range acqPerProc {
		total += c
	}
	if overlaps > 0 {
		return LockResult{}, fmt.Errorf("lock %q violated mutual exclusion %d times", info.Name, overlaps)
	}
	if opts.CheckMutex {
		if got := m.Peek(counter); uint64(got) != total {
			return LockResult{}, fmt.Errorf("lock %q lost updates: counter=%d, acquisitions=%d", info.Name, got, total)
		}
	}

	st := m.Stats()
	res := LockResult{
		Lock:         info.Name,
		Topo:         cfg.Topo,
		Procs:        procs,
		Acquisitions: total,
		Cycles:       st.Cycles,
		AcqPerProc:   acqPerProc,
		Stats:        st,
	}
	if total > 0 {
		// System-level time per acquisition (elapsed cycles over total
		// acquisitions), the 1991 papers' metric: under full contention
		// the lock system completes one critical section per
		// (CS + hand-off) regardless of P, so scalable locks plot flat
		// and traffic-bound locks climb.
		res.CyclesPerAcq = float64(st.Cycles) / float64(total)
		res.TrafficPerAcq = float64(st.TrafficFor(cfg.Topo)) / float64(total)
	}
	if opts.RecordOrder {
		res.FIFOInversions = countInversions(records)
	}
	return res, nil
}

// countInversions counts pairs (i, j) where request i entered Acquire
// strictly before request j but was granted strictly after it. Records
// arrive in grant order (the simulator is single-threaded), so this is
// the number of enqueue-time inversions in that sequence, counted with a
// mergesort in O(n log n).
func countInversions(records []grantRecord) uint64 {
	keys := make([]sim.Time, len(records))
	for i, r := range records {
		keys[i] = r.enqueue
	}
	buf := make([]sim.Time, len(keys))
	return mergeCount(keys, buf)
}

func mergeCount(keys, buf []sim.Time) uint64 {
	n := len(keys)
	if n < 2 {
		return 0
	}
	mid := n / 2
	inv := mergeCount(keys[:mid], buf[:mid]) + mergeCount(keys[mid:], buf[mid:])
	i, j, k := 0, mid, 0
	for i < mid && j < n {
		if keys[i] <= keys[j] {
			buf[k] = keys[i]
			i++
		} else {
			// keys[j] entered earlier than everything left in [i, mid):
			// those were granted before it despite arriving later.
			inv += uint64(mid - i)
			buf[k] = keys[j]
			j++
		}
		k++
	}
	copy(buf[k:], keys[i:mid])
	copy(buf[k+mid-i:], keys[j:])
	copy(keys, buf[:n])
	return inv
}

// BarrierOpts configures a simulated barrier workload.
type BarrierOpts struct {
	Episodes int      // barrier episodes to run
	Work     sim.Time // mean exponential work per phase per processor
}

// BarrierResult is the outcome of one barrier workload run.
type BarrierResult struct {
	Barrier           string
	Topo              topo.Topology
	Procs             int
	Episodes          int
	Cycles            sim.Time
	CyclesPerEpisode  float64
	TrafficPerEpisode float64
	Stats             machine.Stats
}

// RunBarrier executes Episodes barrier episodes with optional skewed
// work between them, verifying the barrier's safety property: no
// processor may leave episode e before every processor has arrived at
// episode e.
func RunBarrier(cfg machine.Config, info BarrierInfo, opts BarrierOpts) (BarrierResult, error) {
	return RunBarrierIn(nil, cfg, info, opts)
}

// RunBarrierIn is RunBarrier drawing its machine from pool.
func RunBarrierIn(pool *machine.Pool, cfg machine.Config, info BarrierInfo, opts BarrierOpts) (BarrierResult, error) {
	cfg = cfg.Defaults()
	m, err := getMachine(pool, cfg)
	if err != nil {
		return BarrierResult{}, err
	}
	defer putMachine(pool, m)
	bar := info.Make(m)

	procs := cfg.Procs
	arrived := make([]int, opts.Episodes) // host-side arrival counts
	violations := 0

	body := func(p *machine.Proc) {
		rng := p.RNG()
		for e := 0; e < opts.Episodes; e++ {
			if opts.Work > 0 {
				p.Delay(rng.ExpTime(opts.Work))
			}
			arrived[e]++
			bar.Wait(p)
			if arrived[e] != procs {
				violations++
			}
		}
	}

	if err := m.Run(body); err != nil {
		return BarrierResult{}, fmt.Errorf("barrier %q: %w", info.Name, err)
	}
	if violations > 0 {
		return BarrierResult{}, fmt.Errorf("barrier %q released %d waiters early", info.Name, violations)
	}

	st := m.Stats()
	res := BarrierResult{
		Barrier:  info.Name,
		Topo:     cfg.Topo,
		Procs:    procs,
		Episodes: opts.Episodes,
		Cycles:   st.Cycles,
		Stats:    st,
	}
	if opts.Episodes > 0 {
		res.CyclesPerEpisode = float64(st.Cycles) / float64(opts.Episodes)
		res.TrafficPerEpisode = float64(st.TrafficFor(cfg.Topo)) / float64(opts.Episodes)
	}
	return res, nil
}

// UncontendedLockCost measures the latency in cycles of a single
// acquire/release pair with no contention whatsoever (T1).
func UncontendedLockCost(tp topo.Topology, info LockInfo) (acquireRelease sim.Time, traffic uint64, err error) {
	return UncontendedLockCostIn(nil, tp, info)
}

// UncontendedLockCostIn is UncontendedLockCost drawing its machine
// from pool (see machines.go): the T1 table and its benchmark measure
// one acquire/release pair per machine, so without pooling the
// dominant cost of the sweep is machine construction, not simulation.
func UncontendedLockCostIn(pool *machine.Pool, tp topo.Topology, info LockInfo) (acquireRelease sim.Time, traffic uint64, err error) {
	m, err := getMachine(pool, machine.Config{Procs: 1, Topo: tp})
	if err != nil {
		return 0, 0, err
	}
	defer putMachine(pool, m)
	lock := info.Make(m)
	var start, end sim.Time
	var trafBefore uint64
	err = m.Run(func(p *machine.Proc) {
		// Warm the caches with one throwaway pair.
		lock.Acquire(p)
		lock.Release(p)
		trafBefore = m.Stats().TrafficFor(tp)
		start = p.Now()
		lock.Acquire(p)
		lock.Release(p)
		end = p.Now()
	})
	if err != nil {
		return 0, 0, err
	}
	return end - start, m.Stats().TrafficFor(tp) - trafBefore, nil
}
