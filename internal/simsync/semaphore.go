package simsync

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Semaphore is a simulated counting semaphore.
type Semaphore interface {
	Name() string
	P(p *machine.Proc) // acquire one permit
	V(p *machine.Proc) // release one permit
}

// SemaphoreMaker constructs a semaphore with an initial permit count.
type SemaphoreMaker func(m *machine.Machine, permits int) Semaphore

// SemaphoreInfo describes one algorithm.
type SemaphoreInfo struct {
	Name string
	Make SemaphoreMaker
}

// ---------------------------------------------------------------------
// central spinning semaphore (baseline)
// ---------------------------------------------------------------------

// centralSem guards a counter with a test&set latch; P spins re-taking
// the latch until a permit appears. Every blocked processor keeps
// hammering the shared pair — the semaphore version of the tas lock.
type centralSem struct {
	latch machine.Addr
	count machine.Addr
}

// NewCentralSemaphore builds the central spinning semaphore.
func NewCentralSemaphore(m *machine.Machine, permits int) Semaphore {
	s := &centralSem{latch: m.AllocShared(1), count: m.AllocShared(1)}
	m.Poke(s.count, machine.Word(permits))
	return s
}

func (s *centralSem) Name() string { return "sem-central" }

// semLatchBackoff is the fixed 8-cycle pause between latch probes.
var semLatchBackoff = machine.Backoff{Base: 8, Cap: 8}

func (s *centralSem) P(p *machine.Proc) {
	for {
		// Wait for permits to look available, then take the latch.
		p.SpinUntilPred(s.count, machine.Pred{Op: machine.PredGt, Want: 0})
		p.SpinTAS(s.latch, semLatchBackoff)
		if p.Load(s.count) > 0 {
			p.Store(s.count, p.Load(s.count)-1)
			p.Store(s.latch, 0)
			return
		}
		p.Store(s.latch, 0)
	}
}

func (s *centralSem) V(p *machine.Proc) {
	p.SpinTAS(s.latch, semLatchBackoff)
	p.Store(s.count, p.Load(s.count)+1)
	p.Store(s.latch, 0)
}

// ---------------------------------------------------------------------
// the mechanism's queueing semaphore
// ---------------------------------------------------------------------

// qsyncSem derives a FIFO counting semaphore from the mechanism's cell:
// the count and waiter queue are guarded by a QSync lock held only for
// the constant-time bookkeeping, and a blocked processor spins on a
// flag in its own local memory. V hands a permit directly to the
// oldest waiter.
type qsyncSem struct {
	lock  Lock         // short-section guard (the mechanism's mutex)
	count machine.Addr // available permits
	head  machine.Addr // waiter queue head (PtrWord of a wait flag)
	tail  machine.Addr
	// Per-processor wait records: [next, flag], in local memory.
	nodes []machine.Addr
}

// NewQSyncSemaphore builds the mechanism's semaphore.
func NewQSyncSemaphore(m *machine.Machine, permits int) Semaphore {
	s := &qsyncSem{
		lock:  NewQSync(m),
		count: m.AllocShared(1),
		head:  m.AllocShared(1),
		tail:  m.AllocShared(1),
		nodes: make([]machine.Addr, m.Procs()),
	}
	m.Poke(s.count, machine.Word(permits))
	for i := range s.nodes {
		s.nodes[i] = m.AllocLocal(i, 2)
	}
	return s
}

const (
	semNext = 0
	semFlag = 1
)

func (s *qsyncSem) Name() string { return "sem-qsync" }

func (s *qsyncSem) P(p *machine.Proc) {
	s.lock.Acquire(p)
	if c := p.Load(s.count); c > 0 {
		p.Store(s.count, c-1)
		s.lock.Release(p)
		return
	}
	// Enqueue our local record and wait on our own flag.
	n := s.nodes[p.ID()]
	p.Store(n+semNext, 0)
	p.Store(n+semFlag, 0)
	if tail := p.Load(s.tail); tail == 0 {
		p.Store(s.head, machine.PtrWord(n))
	} else {
		p.Store(machine.WordPtr(tail)+semNext, machine.PtrWord(n))
	}
	p.Store(s.tail, machine.PtrWord(n))
	s.lock.Release(p)
	p.SpinUntilEq(n+semFlag, 1) // local spin; V writes exactly this word
}

func (s *qsyncSem) V(p *machine.Proc) {
	s.lock.Acquire(p)
	head := p.Load(s.head)
	if head != 0 {
		h := machine.WordPtr(head)
		next := p.Load(h + semNext)
		p.Store(s.head, next)
		if next == 0 {
			p.Store(s.tail, 0)
		}
		s.lock.Release(p)
		p.Store(h+semFlag, 1) // direct hand-off
		return
	}
	p.Store(s.count, p.Load(s.count)+1)
	s.lock.Release(p)
}

// PCOpts configures a simulated producer/consumer workload.
type PCOpts struct {
	Items    int      // total items through the buffer
	Capacity int      // buffer capacity
	Work     sim.Time // per-item work on each side
}

// PCResult reports a simulated producer/consumer run.
type PCResult struct {
	Semaphore      string
	Topo           topo.Topology
	Procs          int
	Items          int
	Cycles         sim.Time
	CyclesPerItem  float64
	TrafficPerItem float64
	Stats          machine.Stats
}

// RunProducerConsumer drives a bounded buffer with two semaphores
// (spaces, items) on half producers / half consumers and validates
// conservation: every slot value written is read exactly once.
func RunProducerConsumer(cfg machine.Config, info SemaphoreInfo, opts PCOpts) (PCResult, error) {
	return RunProducerConsumerIn(nil, cfg, info, opts)
}

// RunProducerConsumerIn is RunProducerConsumer drawing its machine from
// pool (see machines.go).
func RunProducerConsumerIn(pool *machine.Pool, cfg machine.Config, info SemaphoreInfo, opts PCOpts) (PCResult, error) {
	cfg = cfg.Defaults()
	if cfg.Procs < 2 {
		return PCResult{}, fmt.Errorf("producer/consumer needs at least 2 processors")
	}
	if opts.Capacity < 1 {
		opts.Capacity = 1
	}
	m, err := getMachine(pool, cfg)
	if err != nil {
		return PCResult{}, err
	}
	defer putMachine(pool, m)
	spaces := info.Make(m, opts.Capacity)
	items := info.Make(m, 0)
	ring := m.AllocShared(opts.Capacity)
	mutex := NewQSync(m) // guards ring indexes on both algorithms
	headA := m.AllocShared(1)
	tailA := m.AllocShared(1)

	producers := cfg.Procs / 2
	nextItem := 0 // host-side dispensers (mutated only at yield points)
	nextTake := 0
	var sumIn, sumOut uint64

	body := func(p *machine.Proc) {
		if p.ID() < producers {
			for {
				if nextItem >= opts.Items {
					return
				}
				nextItem++
				v := machine.Word(nextItem)
				spaces.P(p)
				mutex.Acquire(p)
				t := p.Load(tailA)
				p.Store(ring+machine.Addr(t), v)
				p.Store(tailA, (t+1)%machine.Word(opts.Capacity))
				mutex.Release(p)
				items.V(p)
				sumIn += uint64(v)
				if opts.Work > 0 {
					p.Delay(opts.Work)
				}
			}
		}
		for {
			if nextTake >= opts.Items {
				return
			}
			nextTake++
			items.P(p)
			mutex.Acquire(p)
			h := p.Load(headA)
			v := p.Load(ring + machine.Addr(h))
			p.Store(headA, (h+1)%machine.Word(opts.Capacity))
			mutex.Release(p)
			spaces.V(p)
			sumOut += uint64(v)
			if opts.Work > 0 {
				p.Delay(opts.Work)
			}
		}
	}

	if err := m.Run(body); err != nil {
		return PCResult{}, fmt.Errorf("semaphore %q: %w", info.Name, err)
	}
	if sumIn != sumOut {
		return PCResult{}, fmt.Errorf("semaphore %q lost items: in=%d out=%d", info.Name, sumIn, sumOut)
	}

	st := m.Stats()
	res := PCResult{
		Semaphore: info.Name,
		Topo:      cfg.Topo,
		Procs:     cfg.Procs,
		Items:     opts.Items,
		Cycles:    st.Cycles,
		Stats:     st,
	}
	if opts.Items > 0 {
		res.CyclesPerItem = float64(st.Cycles) / float64(opts.Items)
		res.TrafficPerItem = float64(st.TrafficFor(cfg.Topo)) / float64(opts.Items)
	}
	return res, nil
}
