package simsync

import (
	"repro/internal/machine"
)

// Barrier is a simulated barrier. Wait returns when all processors have
// arrived at the same episode. Barriers are reusable across episodes.
type Barrier interface {
	Name() string
	Wait(p *machine.Proc)
}

// BarrierMaker constructs a barrier for all processors of a machine.
type BarrierMaker func(m *machine.Machine) Barrier

// BarrierInfo describes one barrier algorithm for registries and sweeps.
type BarrierInfo struct {
	Name string
	Make BarrierMaker
}

// ---------------------------------------------------------------------
// central sense-reversing barrier
// ---------------------------------------------------------------------

// centralBarrier is the textbook counter barrier: everyone increments a
// shared counter, the last arriver flips a shared sense flag. All
// waiters spin on the one flag, so release is a P-wide invalidation
// burst on a bus and a hot-spot module on NUMA.
type centralBarrier struct {
	count      machine.Addr
	sense      machine.Addr
	procs      machine.Word
	localSense []machine.Word // host-side, indexed by processor
}

// NewCentralBarrier builds a central sense-reversing barrier.
func NewCentralBarrier(m *machine.Machine) Barrier {
	return &centralBarrier{
		count:      m.AllocShared(1),
		sense:      m.AllocShared(1),
		procs:      machine.Word(m.Procs()),
		localSense: make([]machine.Word, m.Procs()),
	}
}

func (b *centralBarrier) Name() string { return "central" }

func (b *centralBarrier) Wait(p *machine.Proc) {
	ls := 1 - b.localSense[p.ID()]
	b.localSense[p.ID()] = ls
	pos := p.FetchAdd(b.count, 1)
	if pos == b.procs-1 {
		p.Store(b.count, 0)
		p.Store(b.sense, ls)
	} else {
		p.SpinUntilEq(b.sense, ls)
	}
}

// ---------------------------------------------------------------------
// combining-tree barrier (arity 4)
// ---------------------------------------------------------------------

type ctNode struct {
	count    machine.Addr // arrivals at this node
	sense    machine.Addr // release flag for this node's waiters
	expected machine.Word
	parent   *ctNode
}

// combiningBarrier splits the arrival counter across a 4-ary tree of
// small counters: each processor arrives at its leaf node; the last
// arriver at each node climbs to the parent. Release cascades back down
// through the per-node sense flags. Contention on any one word is
// bounded by the tree arity. Node words live in the local memory of the
// lowest-numbered processor in the node's subtree.
type combiningBarrier struct {
	leaves     []*ctNode // indexed by processor
	localSense []machine.Word
}

const ctArity = 4

// NewCombiningBarrier builds a 4-ary combining-tree barrier.
func NewCombiningBarrier(m *machine.Machine) Barrier {
	procs := m.Procs()
	b := &combiningBarrier{
		leaves:     make([]*ctNode, procs),
		localSense: make([]machine.Word, procs),
	}
	// Build the bottom level: groups of up to ctArity processors.
	level := make([]*ctNode, 0, (procs+ctArity-1)/ctArity)
	for g := 0; g < procs; g += ctArity {
		hi := g + ctArity
		if hi > procs {
			hi = procs
		}
		node := &ctNode{
			count:    m.AllocLocal(g, 1),
			sense:    m.AllocLocal(g, 1),
			expected: machine.Word(hi - g),
		}
		for i := g; i < hi; i++ {
			b.leaves[i] = node
		}
		level = append(level, node)
	}
	// Collapse levels until a single root remains. The owner of a parent
	// node is the owner of its first child group.
	owners := make([]int, len(level))
	for i := range owners {
		owners[i] = i * ctArity
	}
	for len(level) > 1 {
		next := make([]*ctNode, 0, (len(level)+ctArity-1)/ctArity)
		nextOwners := make([]int, 0, cap(next))
		for g := 0; g < len(level); g += ctArity {
			hi := g + ctArity
			if hi > len(level) {
				hi = len(level)
			}
			owner := owners[g]
			parent := &ctNode{
				count:    m.AllocLocal(owner, 1),
				sense:    m.AllocLocal(owner, 1),
				expected: machine.Word(hi - g),
			}
			for i := g; i < hi; i++ {
				level[i].parent = parent
			}
			next = append(next, parent)
			nextOwners = append(nextOwners, owner)
		}
		level = next
		owners = nextOwners
	}
	return b
}

func (b *combiningBarrier) Name() string { return "combining" }

func (b *combiningBarrier) Wait(p *machine.Proc) {
	ls := 1 - b.localSense[p.ID()]
	b.localSense[p.ID()] = ls
	b.climb(p, b.leaves[p.ID()], ls)
}

func (b *combiningBarrier) climb(p *machine.Proc, n *ctNode, ls machine.Word) {
	pos := p.FetchAdd(n.count, 1)
	if pos == n.expected-1 {
		if n.parent != nil {
			b.climb(p, n.parent, ls)
		}
		p.Store(n.count, 0) // reset before release so the next episode is clean
		p.Store(n.sense, ls)
	} else {
		p.SpinUntilEq(n.sense, ls)
	}
}

// ---------------------------------------------------------------------
// dissemination barrier
// ---------------------------------------------------------------------

// disseminationBarrier runs ceil(log2 P) rounds; in round r, processor i
// signals processor (i + 2^r) mod P and waits for a signal from
// (i - 2^r) mod P. Every processor spins only on flags in its own local
// memory; each round costs exactly one remote write per processor.
// There is no distinguished root and no release phase.
type disseminationBarrier struct {
	procs  int
	rounds int
	// flags[parity][round] is a vector indexed by processor; the flag
	// for processor i lives in i's local memory.
	flags  [2][][]machine.Addr
	parity []int
	sense  []machine.Word
}

// NewDisseminationBarrier builds a dissemination barrier.
func NewDisseminationBarrier(m *machine.Machine) Barrier {
	procs := m.Procs()
	rounds := 0
	for 1<<rounds < procs {
		rounds++
	}
	if rounds == 0 {
		rounds = 1 // degenerate single-processor case still needs a slot
	}
	b := &disseminationBarrier{
		procs:  procs,
		rounds: rounds,
		parity: make([]int, procs),
		sense:  make([]machine.Word, procs),
	}
	for i := range b.sense {
		b.sense[i] = 1
	}
	for par := 0; par < 2; par++ {
		b.flags[par] = make([][]machine.Addr, rounds)
		for r := 0; r < rounds; r++ {
			b.flags[par][r] = make([]machine.Addr, procs)
			for i := 0; i < procs; i++ {
				b.flags[par][r][i] = m.AllocLocal(i, 1)
			}
		}
	}
	return b
}

func (b *disseminationBarrier) Name() string { return "dissemination" }

func (b *disseminationBarrier) Wait(p *machine.Proc) {
	i := p.ID()
	par := b.parity[i]
	sense := b.sense[i]
	if b.procs > 1 {
		for r := 0; r < b.rounds; r++ {
			partner := (i + (1 << r)) % b.procs
			p.Store(b.flags[par][r][partner], sense)
			p.SpinUntilEq(b.flags[par][r][i], sense)
		}
	}
	if par == 1 {
		b.sense[i] = 1 - sense
	}
	b.parity[i] = 1 - par
}

// ---------------------------------------------------------------------
// tournament barrier
// ---------------------------------------------------------------------

// tournamentBarrier pairs processors in a static binary tree: the loser
// of each round signals the winner's (local) arrival flag and waits on
// its own (local) release flag; the champion descends writing release
// flags. All spins are local; the winner/loser roles are fixed by
// processor number, so no atomic operations are needed at all.
type tournamentBarrier struct {
	procs   int
	rounds  int
	arrive  [][]machine.Addr // [round][proc], in proc's local memory
	release [][]machine.Addr
	sense   []machine.Word
}

// NewTournamentBarrier builds a tournament barrier.
func NewTournamentBarrier(m *machine.Machine) Barrier {
	procs := m.Procs()
	rounds := 0
	for 1<<rounds < procs {
		rounds++
	}
	b := &tournamentBarrier{
		procs:   procs,
		rounds:  rounds,
		arrive:  make([][]machine.Addr, rounds),
		release: make([][]machine.Addr, rounds),
		sense:   make([]machine.Word, procs),
	}
	for r := 0; r < rounds; r++ {
		b.arrive[r] = make([]machine.Addr, procs)
		b.release[r] = make([]machine.Addr, procs)
		for i := 0; i < procs; i++ {
			b.arrive[r][i] = m.AllocLocal(i, 1)
			b.release[r][i] = m.AllocLocal(i, 1)
		}
	}
	return b
}

func (b *tournamentBarrier) Name() string { return "tournament" }

func (b *tournamentBarrier) Wait(p *machine.Proc) {
	i := p.ID()
	sense := b.sense[i] + 1 // fresh epoch value each episode
	b.sense[i] = sense

	// Ascend. Processor i wins round r iff bit r..0 of i are zero; the
	// loser signals and stops climbing.
	stopped := b.rounds
	for r := 0; r < b.rounds; r++ {
		span := 1 << r
		if i%(span<<1) == 0 {
			partner := i + span
			if partner < b.procs {
				p.SpinUntilEq(b.arrive[r][i], sense)
			}
			// Bye (partner beyond P): advance silently.
		} else {
			partner := i - span
			p.Store(b.arrive[r][partner], sense)
			p.SpinUntilEq(b.release[r][i], sense)
			stopped = r
			break
		}
	}
	// Descend: wake the losers of every round we won with a live partner.
	for r := stopped - 1; r >= 0; r-- {
		partner := i + 1<<r
		if partner < b.procs {
			p.Store(b.release[r][partner], sense)
		}
	}
}

// ---------------------------------------------------------------------
// QSync tree barrier — the mechanism's barrier
// ---------------------------------------------------------------------

// qsyncTreeBarrier is the mechanism's event discipline applied to
// barriers: a static 4-ary tree where children *push* arrival epochs
// into slots in the parent's local memory and the parent *pushes* the
// release epoch directly into each child's personal flag — the same
// direct-hand-off idea as the lock's grant. All spins are on the
// processor's own module; per episode each processor issues at most one
// remote arrival store and receives one release store.
type qsyncTreeBarrier struct {
	procs int
	// childSlots[i] is the base of a 4-word arrival vector in processor
	// i's local memory; slot s is written by child 4i+s+1.
	childSlots []machine.Addr
	relFlag    []machine.Addr // personal release flag, local to each proc
	epoch      []machine.Word // host-side per-processor episode number
}

const qtArity = 4

// NewQSyncTreeBarrier builds the mechanism's tree barrier.
func NewQSyncTreeBarrier(m *machine.Machine) Barrier {
	procs := m.Procs()
	b := &qsyncTreeBarrier{
		procs:      procs,
		childSlots: make([]machine.Addr, procs),
		relFlag:    make([]machine.Addr, procs),
		epoch:      make([]machine.Word, procs),
	}
	for i := 0; i < procs; i++ {
		b.childSlots[i] = m.AllocLocal(i, qtArity)
		b.relFlag[i] = m.AllocLocal(i, 1)
	}
	return b
}

func (b *qsyncTreeBarrier) Name() string { return "qsync-tree" }

func (b *qsyncTreeBarrier) Wait(p *machine.Proc) {
	i := p.ID()
	epoch := b.epoch[i] + 1
	b.epoch[i] = epoch

	// Gather: wait for each existing child to post this epoch into our
	// local arrival vector.
	for s := 0; s < qtArity; s++ {
		child := qtArity*i + s + 1
		if child >= b.procs {
			break
		}
		p.SpinUntilEq(b.childSlots[i]+machine.Addr(s), epoch)
	}
	if i != 0 {
		parent := (i - 1) / qtArity
		slot := machine.Addr((i - 1) % qtArity)
		p.Store(b.childSlots[parent]+slot, epoch) // one remote store
		p.SpinUntilEq(b.relFlag[i], epoch)        // local spin
	}
	// Scatter: push the release epoch to each child's personal flag.
	for s := 0; s < qtArity; s++ {
		child := qtArity*i + s + 1
		if child >= b.procs {
			break
		}
		p.Store(b.relFlag[child], epoch)
	}
}
