package simsync

import (
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Property: for arbitrary workload parameters, every lock preserves
// mutual exclusion and loses no updates — the safety checkers inside
// RunLock turn any violation into an error.
func TestLockSafetyProperty(t *testing.T) {
	for _, name := range []string{"qsync", "tas-bo", "gt"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			info := mustLock(t, name)
			f := func(seed uint64, procsRaw, csRaw, thinkRaw uint8) bool {
				procs := int(procsRaw%10) + 2
				cs := sim.Time(csRaw % 60)
				think := sim.Time(thinkRaw % 100)
				for _, model := range []topo.Topology{topo.Bus, topo.NUMA} {
					_, err := RunLock(
						machine.Config{Procs: procs, Topo: model, Seed: seed | 1},
						info,
						LockOpts{Iters: 15, CS: cs, Think: think, CheckMutex: true},
					)
					if err != nil {
						t.Logf("params procs=%d cs=%d think=%d model=%s: %v", procs, cs, think, model, err)
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Property: barriers never release early for arbitrary parameters.
func TestBarrierSafetyProperty(t *testing.T) {
	for _, name := range []string{"qsync-tree", "dissemination"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			info, ok := BarrierByName(name)
			if !ok {
				t.Fatal("unknown barrier")
			}
			f := func(seed uint64, procsRaw, workRaw uint8) bool {
				procs := int(procsRaw%14) + 1
				work := sim.Time(workRaw % 200)
				_, err := RunBarrier(
					machine.Config{Procs: procs, Topo: topo.NUMA, Seed: seed | 1},
					info,
					BarrierOpts{Episodes: 6, Work: work},
				)
				return err == nil
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Property: the RW lock upholds exclusion for arbitrary mixes.
func TestRWSafetyProperty(t *testing.T) {
	info, _ := RWLockByName("rw-qsync")
	f := func(seed uint64, procsRaw, fracRaw uint8) bool {
		procs := int(procsRaw%8) + 2
		frac := float64(fracRaw%101) / 100
		_, err := RunRW(
			machine.Config{Procs: procs, Topo: topo.Bus, Seed: seed | 1},
			info,
			RWOpts{Iters: 12, ReadFraction: frac, Work: 10, Think: 20},
		)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
