// Package registry is the one generic named-factory registry behind
// every algorithm family in the repository. The paper's point is that a
// single queueing cell yields a whole family of synchronization
// disciplines; this package is the code-level mirror of that claim: a
// single Set type yields every registry — real-runtime locks, barriers,
// reader-writer locks and counters, and the simulator's five families —
// so a new backend is one Register call, and every sweep, CLI flag, and
// benchmark picks it up without further plumbing.
//
// A Set holds entries of an arbitrary payload type T. Per-entry
// metadata (max-waiters sizing hooks, FIFO/fairness flags, factory
// functions with family-specific signatures) lives in T itself; the Set
// only needs to know how to extract the canonical name. Iteration order
// is registration order and never changes afterwards, so table columns
// and experiment output are stable across runs.
package registry

import (
	"fmt"
	"sort"
	"strings"
)

// Set is a named-factory registry for one algorithm family. The zero
// value is not usable; construct with NewSet. Sets are built at init
// time and read-only afterwards, so they are safe for concurrent reads.
type Set[T any] struct {
	family string
	nameOf func(T) string
	order  []string
	byName map[string]T
}

// NewSet returns an empty registry for the named family. nameOf
// extracts an entry's canonical name (typically the Name field of the
// family's Info struct).
func NewSet[T any](family string, nameOf func(T) string) *Set[T] {
	if nameOf == nil {
		panic("registry: NewSet with nil name function")
	}
	return &Set[T]{
		family: family,
		nameOf: nameOf,
		byName: make(map[string]T),
	}
}

// Family returns the family label given to NewSet.
func (s *Set[T]) Family() string { return s.family }

// Len returns the number of registered entries.
func (s *Set[T]) Len() int { return len(s.order) }

// Add registers one entry, returning an error on an empty or duplicate
// name. Entries keep registration order forever (canonical ordering).
func (s *Set[T]) Add(item T) error {
	name := s.nameOf(item)
	if name == "" {
		return fmt.Errorf("registry %s: entry with empty name", s.family)
	}
	if _, dup := s.byName[name]; dup {
		return fmt.Errorf("registry %s: duplicate entry %q", s.family, name)
	}
	s.byName[name] = item
	s.order = append(s.order, name)
	return nil
}

// Register registers entries in order, panicking on any error. It is
// the init-time form of Add: a duplicate or unnamed algorithm is a
// programming error, not a runtime condition.
func (s *Set[T]) Register(items ...T) {
	for _, it := range items {
		if err := s.Add(it); err != nil {
			panic(err)
		}
	}
}

// All returns every entry in canonical (registration) order. The slice
// is a copy; callers may reorder or filter it freely.
func (s *Set[T]) All() []T {
	out := make([]T, 0, len(s.order))
	for _, name := range s.order {
		out = append(out, s.byName[name])
	}
	return out
}

// Names returns the canonical name list, in order.
func (s *Set[T]) Names() []string {
	return append([]string(nil), s.order...)
}

// ByName returns the entry registered under name, reporting whether it
// exists.
func (s *Set[T]) ByName(name string) (T, bool) {
	item, ok := s.byName[name]
	return item, ok
}

// Select resolves an explicit selection: every requested name must
// exist, and entries come back in canonical order regardless of request
// order. An empty request selects the whole family. This is the strict
// form used by CLI -algos flags, where a typo should fail loudly.
func (s *Set[T]) Select(names []string) ([]T, error) {
	if len(names) == 0 {
		return s.All(), nil
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if _, ok := s.byName[n]; !ok {
			known := s.Names()
			sort.Strings(known)
			return nil, fmt.Errorf("registry %s: unknown algorithm %q (known: %s)",
				s.family, n, strings.Join(known, " "))
		}
		want[n] = true
	}
	if len(want) == 0 {
		return s.All(), nil
	}
	var out []T
	for _, name := range s.order {
		if want[name] {
			out = append(out, s.byName[name])
		}
	}
	return out, nil
}

// SplitList parses a comma-separated -algos flag value into names,
// trimming whitespace and dropping empties — the one spelling of the
// flag syntax shared by every CLI.
func SplitList(s string) []string {
	var out []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

// Filter returns the entries whose names appear in names, in canonical
// order. Unknown names are ignored, and an empty intersection (or empty
// names) returns the whole family. This is the lenient form used when
// one -algos list is applied across several families at once: a lock
// name should not break the barrier sweep.
func (s *Set[T]) Filter(names []string) []T {
	if len(names) == 0 {
		return s.All()
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[strings.TrimSpace(n)] = true
	}
	var out []T
	for _, name := range s.order {
		if want[name] {
			out = append(out, s.byName[name])
		}
	}
	if len(out) == 0 {
		return s.All()
	}
	return out
}
