package registry

import (
	"strings"
	"testing"
)

type fakeInfo struct {
	Name string
	Max  int // stand-in for per-entry metadata (max-waiters sizing)
}

func newFakeSet(t *testing.T, names ...string) *Set[fakeInfo] {
	t.Helper()
	s := NewSet[fakeInfo]("fake", func(i fakeInfo) string { return i.Name })
	for n, name := range names {
		s.Register(fakeInfo{Name: name, Max: n})
	}
	return s
}

func TestOrderingStability(t *testing.T) {
	// Registration order is canonical and survives repeated reads.
	s := newFakeSet(t, "zeta", "alpha", "mid")
	want := []string{"zeta", "alpha", "mid"}
	for round := 0; round < 3; round++ {
		names := s.Names()
		if len(names) != len(want) {
			t.Fatalf("round %d: %d names, want %d", round, len(names), len(want))
		}
		for i := range want {
			if names[i] != want[i] {
				t.Fatalf("round %d: names[%d] = %q, want %q", round, i, names[i], want[i])
			}
			if s.All()[i].Name != want[i] {
				t.Fatalf("round %d: All()[%d] = %q, want %q", round, i, s.All()[i].Name, want[i])
			}
		}
	}
	// Mutating the returned slices must not corrupt the set.
	s.All()[0] = fakeInfo{Name: "clobbered"}
	s.Names()[0] = "clobbered"
	if s.All()[0].Name != "zeta" || s.Names()[0] != "zeta" {
		t.Fatal("returned slices alias internal state")
	}
}

func TestByName(t *testing.T) {
	s := newFakeSet(t, "a", "b")
	got, ok := s.ByName("b")
	if !ok || got.Name != "b" || got.Max != 1 {
		t.Fatalf("ByName(b) = %+v, %v", got, ok)
	}
	if _, ok := s.ByName("nope"); ok {
		t.Fatal("ByName miss reported a hit")
	}
	if _, ok := s.ByName(""); ok {
		t.Fatal("ByName empty reported a hit")
	}
}

func TestDuplicateRejection(t *testing.T) {
	s := newFakeSet(t, "a")
	if err := s.Add(fakeInfo{Name: "a"}); err == nil {
		t.Fatal("duplicate Add accepted")
	}
	if err := s.Add(fakeInfo{Name: ""}); err == nil {
		t.Fatal("empty-name Add accepted")
	}
	// Register must panic on the same conditions.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("duplicate Register did not panic")
			}
		}()
		s.Register(fakeInfo{Name: "a"})
	}()
	if s.Len() != 1 {
		t.Fatalf("failed registrations changed the set: len=%d", s.Len())
	}
}

func TestSelect(t *testing.T) {
	s := newFakeSet(t, "x", "y", "z")
	// Empty selection is the whole family.
	all, err := s.Select(nil)
	if err != nil || len(all) != 3 {
		t.Fatalf("Select(nil) = %d entries, err %v", len(all), err)
	}
	// Explicit selection comes back in canonical order, not request order.
	got, err := s.Select([]string{"z", "x"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "x" || got[1].Name != "z" {
		t.Fatalf("Select order wrong: %+v", got)
	}
	// Unknown names fail loudly and mention the family.
	if _, err := s.Select([]string{"x", "typo"}); err == nil {
		t.Fatal("Select with unknown name accepted")
	} else if !strings.Contains(err.Error(), "typo") || !strings.Contains(err.Error(), "fake") {
		t.Fatalf("unhelpful Select error: %v", err)
	}
}

func TestFilter(t *testing.T) {
	s := newFakeSet(t, "x", "y", "z")
	if got := s.Filter(nil); len(got) != 3 {
		t.Fatalf("Filter(nil) = %d entries", len(got))
	}
	got := s.Filter([]string{"z", "unknown-from-other-family", "x"})
	if len(got) != 2 || got[0].Name != "x" || got[1].Name != "z" {
		t.Fatalf("Filter = %+v", got)
	}
	// A filter that matches nothing in this family keeps the family whole.
	if got := s.Filter([]string{"only-locks"}); len(got) != 3 {
		t.Fatalf("empty intersection should fall back to All, got %d", len(got))
	}
}

func TestFamilyAndLen(t *testing.T) {
	s := newFakeSet(t, "a", "b")
	if s.Family() != "fake" || s.Len() != 2 {
		t.Fatalf("Family=%q Len=%d", s.Family(), s.Len())
	}
}
