package harness

import (
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/simsync"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Sweep sizes. Quick mode is for tests and smoke runs; full mode
// matches the numbers recorded in EXPERIMENTS.md.
func (o Options) busProcs() []int {
	if o.Quick {
		return []int{2, 4, 8}
	}
	return []int{1, 2, 4, 8, 16, 24, 32}
}

func (o Options) numaProcs() []int {
	if o.Quick {
		return []int{2, 4, 8}
	}
	return []int{1, 2, 4, 8, 16, 32, 48, 64}
}

func (o Options) lockIters() int {
	if o.Quick {
		return 25
	}
	return 80
}

func (o Options) episodes() int {
	if o.Quick {
		return 8
	}
	return 25
}

// Standard simulated lock workload: short critical section, a little
// think time (the era's "small delay" loop).
func simLockOpts(iters int) simsync.LockOpts {
	return simsync.LockOpts{Iters: iters, CS: 25, Think: 50, CheckMutex: true}
}

// ---------------------------------------------------------------------
// T1 — uncontended latency
// ---------------------------------------------------------------------

func runT1(o Options) ([]Table, error) {
	t := Table{
		ID:    "T1",
		Title: "Single-processor acquire+release latency, no contention",
		Note:  "tas cheapest; the queueing mechanism pays a few extra cycles for its scalability",
		Cols:  []string{"lock", "bus cycles", "bus txns", "numa cycles", "numa refs"},
	}
	for _, info := range simsync.Locks() {
		busCyc, busTraf, err := simsync.UncontendedLockCost(machine.Bus, info)
		if err != nil {
			return nil, err
		}
		numaCyc, numaTraf, err := simsync.UncontendedLockCost(machine.NUMA, info)
		if err != nil {
			return nil, err
		}
		t.AddRow(info.Name, Fmt(float64(busCyc)), Fmt(float64(busTraf)),
			Fmt(float64(numaCyc)), Fmt(float64(numaTraf)))
	}
	return []Table{t}, nil
}

// ---------------------------------------------------------------------
// F1 + F2 + T4 — bus machine lock sweep
// ---------------------------------------------------------------------

func lockSweep(o Options, model machine.Model, procsList []int) (cyc, traf Table, perLockTraffic map[string][]float64, err error) {
	infos := simsync.Locks()
	cols := []string{"P"}
	for _, li := range infos {
		cols = append(cols, li.Name)
	}
	cyc = Table{Cols: cols}
	traf = Table{Cols: append([]string(nil), cols...)}
	perLockTraffic = make(map[string][]float64)

	for _, p := range procsList {
		cycRow := []string{Fmt(float64(p))}
		trafRow := []string{Fmt(float64(p))}
		for _, li := range infos {
			res, rerr := simsync.RunLock(
				machine.Config{Procs: p, Model: model, Seed: o.seed()},
				li, simLockOpts(o.lockIters()),
			)
			if rerr != nil {
				return cyc, traf, nil, rerr
			}
			o.progressf("  %s %s P=%d: %.0f cyc/acq, %.2f traffic/acq\n",
				model, li.Name, p, res.CyclesPerAcq, res.TrafficPerAcq)
			cycRow = append(cycRow, Fmt(res.CyclesPerAcq))
			trafRow = append(trafRow, Fmt(res.TrafficPerAcq))
			perLockTraffic[li.Name] = append(perLockTraffic[li.Name], res.TrafficPerAcq)
		}
		cyc.Rows = append(cyc.Rows, cycRow)
		traf.Rows = append(traf.Rows, trafRow)
	}
	return cyc, traf, perLockTraffic, nil
}

func runBusLockSweep(o Options) ([]Table, error) {
	procs := o.busProcs()
	cyc, traf, perLock, err := lockSweep(o, machine.Bus, procs)
	if err != nil {
		return nil, err
	}
	cyc.ID, cyc.Title = "F1", "Cycles per critical section vs processors (bus machine)"
	cyc.Note = "tas superlinear; ttas better; backoff/ticket flatten; anderson & qsync near-flat"
	traf.ID, traf.Title = "F2", "Bus transactions per acquisition vs processors"
	traf.Note = "tas ~O(P); ttas O(P) release burst; qsync O(1)"

	t4 := Table{
		ID:    "T4",
		Title: "Fitted scaling exponent k of traffic ~ P^k (bus)",
		Note:  "k ≈ 1 for tas/ttas, k ≈ 0 for the mechanism",
		Cols:  []string{"lock", "exponent k", "R^2"},
	}
	// Fit only the contended regime (P >= 2): the uncontended point is a
	// different operating mode and the era's log-log slopes exclude it.
	var xs []float64
	var keep []int
	for i, p := range procs {
		if p >= 2 {
			xs = append(xs, float64(p))
			keep = append(keep, i)
		}
	}
	for _, li := range simsync.Locks() {
		var ys []float64
		for _, i := range keep {
			ys = append(ys, perLock[li.Name][i])
		}
		k, r2 := stats.PowerLawExponent(xs, ys)
		t4.AddRow(li.Name, fmt.Sprintf("%.3f", k), fmt.Sprintf("%.3f", r2))
	}
	return []Table{cyc, traf, t4}, nil
}

// ---------------------------------------------------------------------
// F3 + F4 — NUMA machine lock sweep
// ---------------------------------------------------------------------

func runNUMALockSweep(o Options) ([]Table, error) {
	cyc, traf, _, err := lockSweep(o, machine.NUMA, o.numaProcs())
	if err != nil {
		return nil, err
	}
	cyc.ID, cyc.Title = "F3", "Cycles per critical section vs processors (NUMA machine)"
	cyc.Note = "remote-spin algorithms degrade with network hot-spotting; qsync flat"
	traf.ID, traf.Title = "F4", "Remote references per acquisition vs processors (NUMA)"
	traf.Note = "qsync constant (~4); ticket/anderson/tas grow with P"
	return []Table{cyc, traf}, nil
}

// ---------------------------------------------------------------------
// F5 — backoff sensitivity ablation
// ---------------------------------------------------------------------

func runF5(o Options) ([]Table, error) {
	const procs = 16
	p := procs
	if o.Quick {
		p = 8
	}
	t := Table{
		ID:    "F5",
		Title: fmt.Sprintf("Backoff tuning sensitivity at P=%d (bus): cycles per acquisition", p),
		Note:  "backoff needs tuning per workload; the mechanism is parameter-free and matches the best tuning",
		Cols:  []string{"lock (base/cap)", "cycles/acq", "txns/acq"},
	}
	bases := []sim.Time{4, 16, 64, 256}
	caps := []sim.Time{256, 2048, 16384}
	for _, base := range bases {
		for _, cap := range caps {
			base, cap := base, cap
			info := simsync.LockInfo{
				Name: fmt.Sprintf("tas-bo %d/%d", base, cap),
				Make: func(m *machine.Machine) simsync.Lock {
					return simsync.NewTASBackoffParams(m, simsync.BackoffParams{Base: base, Cap: cap})
				},
			}
			res, err := simsync.RunLock(
				machine.Config{Procs: p, Model: machine.Bus, Seed: o.seed()},
				info, simLockOpts(o.lockIters()),
			)
			if err != nil {
				return nil, err
			}
			t.AddRow(info.Name, Fmt(res.CyclesPerAcq), Fmt(res.TrafficPerAcq))
		}
	}
	qs, _ := simsync.LockByName("qsync")
	res, err := simsync.RunLock(
		machine.Config{Procs: p, Model: machine.Bus, Seed: o.seed()},
		qs, simLockOpts(o.lockIters()),
	)
	if err != nil {
		return nil, err
	}
	t.AddRow("qsync (no tuning)", Fmt(res.CyclesPerAcq), Fmt(res.TrafficPerAcq))
	return []Table{t}, nil
}

// ---------------------------------------------------------------------
// F6 — critical-section length crossover
// ---------------------------------------------------------------------

func runF6(o Options) ([]Table, error) {
	p := 16
	if o.Quick {
		p = 8
	}
	lengths := []sim.Time{0, 100, 400, 1600}
	cols := []string{"CS cycles"}
	for _, li := range simsync.Locks() {
		cols = append(cols, li.Name)
	}
	t := Table{
		ID:    "F6",
		Title: fmt.Sprintf("Cycles per critical section vs CS length at P=%d (bus)", p),
		Note:  "lock overhead differences wash out as the critical section grows; columns converge",
		Cols:  cols,
	}
	for _, cs := range lengths {
		row := []string{Fmt(float64(cs))}
		for _, li := range simsync.Locks() {
			opts := simsync.LockOpts{Iters: o.lockIters(), CS: cs, Think: 2 * cs, CheckMutex: true}
			res, err := simsync.RunLock(
				machine.Config{Procs: p, Model: machine.Bus, Seed: o.seed()},
				li, opts,
			)
			if err != nil {
				return nil, err
			}
			row = append(row, Fmt(res.CyclesPerAcq))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}

// ---------------------------------------------------------------------
// F7 + F8 — barrier sweeps
// ---------------------------------------------------------------------

func barrierSweep(o Options, model machine.Model, procsList []int, perProc bool) (Table, error) {
	cols := []string{"P"}
	for _, bi := range simsync.Barriers() {
		cols = append(cols, bi.Name)
	}
	t := Table{Cols: cols}
	for _, p := range procsList {
		row := []string{Fmt(float64(p))}
		for _, bi := range simsync.Barriers() {
			res, err := simsync.RunBarrier(
				machine.Config{Procs: p, Model: model, Seed: o.seed()},
				bi, simsync.BarrierOpts{Episodes: o.episodes(), Work: 150},
			)
			if err != nil {
				return t, err
			}
			o.progressf("  %s %s P=%d: %.0f cyc/ep, %.1f traffic/ep\n",
				model, bi.Name, p, res.CyclesPerEpisode, res.TrafficPerEpisode)
			if perProc {
				row = append(row, Fmt(res.TrafficPerEpisode/float64(p)))
			} else {
				row = append(row, Fmt(res.CyclesPerEpisode))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func runF7(o Options) ([]Table, error) {
	t, err := barrierSweep(o, machine.Bus, o.busProcs(), false)
	if err != nil {
		return nil, err
	}
	t.ID, t.Title = "F7", "Barrier: cycles per episode vs processors (bus machine)"
	t.Note = "on a bus, arrival counting is cheap and central stays competitive; dissemination's O(P log P) transactions make it the worst bus citizen (it exists for NUMA, see F8)"
	return []Table{t}, nil
}

func runF8(o Options) ([]Table, error) {
	t, err := barrierSweep(o, machine.NUMA, o.numaProcs(), true)
	if err != nil {
		return nil, err
	}
	t.ID, t.Title = "F8", "Barrier: remote references per episode per processor (NUMA)"
	t.Note = "structural counts for local-spin barriers: dissemination exactly ceil(log2 P), push-release trees ~2; central's polls are throttled by its own saturated module (its penalty is episode latency, not ref count)"
	return []Table{t}, nil
}

// ---------------------------------------------------------------------
// F9 — reader-writer vs read fraction (real runtime)
// ---------------------------------------------------------------------

func runF9(o Options) ([]Table, error) {
	iters := 4000
	if o.Quick {
		iters = 400
	}
	gor := runtime.GOMAXPROCS(0)
	if gor > 16 {
		gor = 16
	}
	t := Table{
		ID:    "F9",
		Title: fmt.Sprintf("RWMutex throughput vs read fraction (%d goroutines, real runtime)", gor),
		Note:  "rw lock overtakes the plain mutex as the read fraction approaches 1",
		Cols:  []string{"read fraction", "rwmutex ops/s", "mutex ops/s", "rw/mutex"},
	}
	for _, frac := range []float64{0, 0.5, 0.9, 0.99, 1} {
		var rw core.RWMutex
		rwRes, ok := workload.RunReadMix(&rw, workload.RWOpts{
			Goroutines: gor, Iters: iters, ReadFraction: frac, Work: 300,
		})
		if !ok {
			return nil, fmt.Errorf("F9: rw invariant broken at fraction %v", frac)
		}
		// Baseline: same mix through a plain mechanism mutex.
		info, _ := locks.ByName("qsync")
		muRes, ok := workload.RunCriticalSections(info.New(gor), workload.CSOpts{
			Goroutines: gor, Iters: iters, CSWork: 300,
		})
		if !ok {
			return nil, fmt.Errorf("F9: mutex baseline violated exclusion")
		}
		t.AddRow(fmt.Sprintf("%.2f", frac), Fmt(rwRes.OpsPerSec), Fmt(muRes.OpsPerSec),
			fmt.Sprintf("%.2f", rwRes.OpsPerSec/muRes.OpsPerSec))
	}
	return []Table{t}, nil
}

// ---------------------------------------------------------------------
// F10 — pipeline throughput (real runtime)
// ---------------------------------------------------------------------

func runF10(o Options) ([]Table, error) {
	items := 200000
	if o.Quick {
		items = 10000
	}
	t := Table{
		ID:    "F10",
		Title: "Bounded-buffer pipeline throughput (semaphore + mutex, real runtime)",
		Note:  "throughput rises with workers until buffer contention dominates",
		Cols:  []string{"producers=consumers", "items/s (spin-park)", "items/s (spin)", "validated"},
	}
	for _, w := range []int{1, 2, 4, 8} {
		park := workload.RunPipeline(workload.PipelineOpts{
			Producers: w, Consumers: w, Items: items, Capacity: 64, Mode: core.SpinPark,
		})
		spin := workload.RunPipeline(workload.PipelineOpts{
			Producers: w, Consumers: w, Items: items, Capacity: 64, Mode: core.Spin,
		})
		okStr := "yes"
		if !park.SumValidated || !spin.SumValidated {
			okStr = "NO"
		}
		t.AddRow(Fmt(float64(w)), Fmt(park.ItemsPerSec), Fmt(spin.ItemsPerSec), okStr)
	}
	return []Table{t}, nil
}

// ---------------------------------------------------------------------
// F11 — real-runtime lock sweep
// ---------------------------------------------------------------------

func runF11(o Options) ([]Table, error) {
	iters := 20000
	if o.Quick {
		iters = 1000
	}
	maxG := 2 * runtime.GOMAXPROCS(0)
	var gs []int
	for g := 1; g <= maxG; g *= 2 {
		gs = append(gs, g)
	}
	cols := []string{"goroutines"}
	for _, li := range locks.All() {
		cols = append(cols, li.Name)
	}
	t := Table{
		ID:    "F11",
		Title: "ns per acquire/release pair vs goroutines (real runtime)",
		Note:  "same qualitative ordering as F1; absolute values are Go-runtime specific",
		Cols:  cols,
	}
	for _, g := range gs {
		row := []string{Fmt(float64(g))}
		for _, li := range locks.All() {
			res, ok := workload.RunCriticalSections(li.New(g), workload.CSOpts{
				Goroutines: g, Iters: iters / g, CSWork: 20, ThinkWork: 40,
			})
			if !ok {
				return nil, fmt.Errorf("F11: %s violated exclusion", li.Name)
			}
			row = append(row, Fmt(res.NsPerOp))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}

// ---------------------------------------------------------------------
// F12 — spin vs park under oversubscription
// ---------------------------------------------------------------------

func runF12(o Options) ([]Table, error) {
	iters := 4000
	if o.Quick {
		iters = 400
	}
	n := runtime.GOMAXPROCS(0)
	t := Table{
		ID:    "F12",
		Title: "Mechanism with spin vs spin-park waiters under oversubscription",
		Note:  "pure spin collapses past 1 waiter per CPU; parking degrades gracefully — why futex-style waiting superseded these primitives",
		Cols:  []string{"goroutines", "spin ns/op", "spin-park ns/op", "spin/park"},
	}
	for _, mult := range []int{1, 2, 4} {
		g := n * mult
		spinInfo, _ := locks.ByName("qsync")
		parkInfo, _ := locks.ByName("qsync-park")
		spinRes, ok1 := workload.RunCriticalSections(spinInfo.New(g), workload.CSOpts{
			Goroutines: g, Iters: iters / mult, CSWork: 30,
		})
		parkRes, ok2 := workload.RunCriticalSections(parkInfo.New(g), workload.CSOpts{
			Goroutines: g, Iters: iters / mult, CSWork: 30,
		})
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("F12: exclusion violated")
		}
		t.AddRow(Fmt(float64(g)), Fmt(spinRes.NsPerOp), Fmt(parkRes.NsPerOp),
			fmt.Sprintf("%.2f", spinRes.NsPerOp/parkRes.NsPerOp))
	}
	return []Table{t}, nil
}

// ---------------------------------------------------------------------
// F13 — simulated reader-writer locks
// ---------------------------------------------------------------------

func runF13(o Options) ([]Table, error) {
	p := 16
	iters := 60
	if o.Quick {
		p, iters = 8, 20
	}
	t := Table{
		ID:    "F13",
		Title: fmt.Sprintf("Reader-writer locks on the bus machine at P=%d: cycles and transactions per operation", p),
		Note:  "reader sharing pays off as the read fraction rises; the fair queue variant adds bounded overhead and removes writer starvation",
		Cols:  []string{"read fraction", "rw-ctr cyc/op", "rw-ctr txn/op", "rw-qsync cyc/op", "rw-qsync txn/op"},
	}
	for _, frac := range []float64{0, 0.5, 0.9, 1} {
		row := []string{fmt.Sprintf("%.2f", frac)}
		for _, info := range simsync.RWLocks() {
			res, err := simsync.RunRW(
				machine.Config{Procs: p, Model: machine.Bus, Seed: o.seed()},
				info,
				simsync.RWOpts{Iters: iters, ReadFraction: frac, Work: 40, Think: 60},
			)
			if err != nil {
				return nil, err
			}
			o.progressf("  rw %s frac=%.2f: %.0f cyc/op\n", info.Name, frac, res.CyclesPerOp)
			row = append(row, Fmt(res.CyclesPerOp), Fmt(res.TrafficPerOp))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}

// ---------------------------------------------------------------------
// F14 — simulated semaphores (bounded buffer)
// ---------------------------------------------------------------------

func runF14(o Options) ([]Table, error) {
	items := 120
	procsList := []int{2, 4, 8, 16, 32}
	if o.Quick {
		items = 40
		procsList = []int{2, 4, 8}
	}
	t := Table{
		ID:    "F14",
		Title: "Bounded-buffer producer/consumer through counting semaphores (simulated)",
		Note:  "the central spin semaphore hammers its counter from every blocked processor; the mechanism's queueing semaphore hands permits off directly with bounded traffic",
		Cols: []string{"P", "bus: central cyc/item", "bus: qsync cyc/item",
			"numa: central refs/item", "numa: qsync refs/item"},
	}
	for _, p := range procsList {
		row := []string{Fmt(float64(p))}
		for _, model := range []machine.Model{machine.Bus, machine.NUMA} {
			for _, info := range simsync.Semaphores() {
				res, err := simsync.RunProducerConsumer(
					machine.Config{Procs: p, Model: model, Seed: o.seed()},
					info,
					simsync.PCOpts{Items: items, Capacity: 4, Work: 20},
				)
				if err != nil {
					return nil, err
				}
				o.progressf("  %s %s P=%d: %.0f cyc/item %.1f traffic/item\n",
					model, info.Name, p, res.CyclesPerItem, res.TrafficPerItem)
				if model == machine.Bus {
					row = append(row, Fmt(res.CyclesPerItem))
				} else {
					row = append(row, Fmt(res.TrafficPerItem))
				}
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}

// ---------------------------------------------------------------------
// F15 — hot-spot counter: software combining
// ---------------------------------------------------------------------

func runF15(o Options) ([]Table, error) {
	incs := 60
	procsList := []int{1, 4, 8, 16, 32, 64}
	if o.Quick {
		incs = 20
		procsList = []int{1, 4, 8}
	}
	t := Table{
		ID:    "F15",
		Title: "Hot-spot counter on the NUMA machine: cycles per increment (no think time)",
		Note:  "a single fetch&add word saturates its home module as P grows; pairwise software combining halves the root pressure and wins past the crossover, at the price of idle-case latency (the Ultracomputer trade)",
		Cols:  []string{"P", "fetch&add", "combining", "fa/combining"},
	}
	for _, p := range procsList {
		row := []string{Fmt(float64(p))}
		var vals []float64
		for _, info := range simsync.Counters() {
			res, err := simsync.RunCounter(
				machine.Config{Procs: p, Model: machine.NUMA, Seed: o.seed()},
				info,
				simsync.CounterOpts{Incs: incs},
			)
			if err != nil {
				return nil, err
			}
			o.progressf("  %s P=%d: %.1f cyc/inc\n", info.Name, p, res.CyclesPerInc)
			row = append(row, Fmt(res.CyclesPerInc))
			vals = append(vals, res.CyclesPerInc)
		}
		row = append(row, fmt.Sprintf("%.2f", vals[0]/vals[1]))
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}

// ---------------------------------------------------------------------
// A1 — machine timing-parameter ablation
// ---------------------------------------------------------------------

// runA1 sweeps the two timing knobs that define the machine models and
// shows that the mechanism's advantage is structural, not an artifact
// of one parameter choice: qsync's traffic per acquisition stays
// constant while tas's cost scales with the interconnect penalty.
func runA1(o Options) ([]Table, error) {
	p := 16
	if o.Quick {
		p = 8
	}
	t := Table{
		ID:    "A1",
		Title: fmt.Sprintf("Timing-parameter sensitivity at P=%d: cycles per acquisition as interconnect latencies vary", p),
		Note:  "the tas:qsync gap widens on both machines as transactions get dearer (remote polls queue at the saturated home module); qsync's own traffic count never moves",
		Cols:  []string{"machine", "parameter", "tas cyc/acq", "qsync cyc/acq", "tas/qsync", "qsync traffic/acq"},
	}
	tas, _ := simsync.LockByName("tas")
	qs, _ := simsync.LockByName("qsync")

	run := func(cfg machine.Config, li simsync.LockInfo) (simsync.LockResult, error) {
		return simsync.RunLock(cfg, li, simLockOpts(o.lockIters()))
	}
	for _, busLat := range []sim.Time{5, 20, 80} {
		cfg := machine.Config{Procs: p, Model: machine.Bus, BusLatency: busLat, Seed: o.seed()}
		rt, err := run(cfg, tas)
		if err != nil {
			return nil, err
		}
		rq, err := run(cfg, qs)
		if err != nil {
			return nil, err
		}
		t.AddRow("bus", fmt.Sprintf("bus latency %d", busLat),
			Fmt(rt.CyclesPerAcq), Fmt(rq.CyclesPerAcq),
			fmt.Sprintf("%.2f", rt.CyclesPerAcq/rq.CyclesPerAcq), Fmt(rq.TrafficPerAcq))
	}
	for _, remote := range []sim.Time{4, 12, 48} {
		cfg := machine.Config{Procs: p, Model: machine.NUMA, RemoteMem: remote, Seed: o.seed()}
		rt, err := run(cfg, tas)
		if err != nil {
			return nil, err
		}
		rq, err := run(cfg, qs)
		if err != nil {
			return nil, err
		}
		t.AddRow("numa", fmt.Sprintf("remote latency %d", remote),
			Fmt(rt.CyclesPerAcq), Fmt(rq.CyclesPerAcq),
			fmt.Sprintf("%.2f", rt.CyclesPerAcq/rq.CyclesPerAcq), Fmt(rq.TrafficPerAcq))
	}
	return []Table{t}, nil
}

// ---------------------------------------------------------------------
// T2 — space costs
// ---------------------------------------------------------------------

func runT2(o Options) ([]Table, error) {
	lockB, waiterB, rwB, rwWaiterB := core.Footprint()
	t := Table{
		ID:    "T2",
		Title: "Space cost per primitive (simulated words are the paper's metric; bytes are this implementation)",
		Note:  "the mechanism: one word per lock plus one record per waiter",
		Cols:  []string{"primitive", "sim words (lock)", "sim words (per waiter)", "real bytes (lock)", "real bytes (per waiter)"},
	}
	t.AddRow("tas/ttas/tas-bo", "1", "0", "4", "0")
	t.AddRow("ticket", "2", "0", "8", "0")
	t.AddRow("anderson", "P+1", "0", "64*P+8", "0")
	t.AddRow("qsync mutex", "1", "2", Fmt(float64(lockB)), Fmt(float64(waiterB)))
	t.AddRow("qsync rwmutex", "3", "2", Fmt(float64(rwB)), Fmt(float64(rwWaiterB)))
	return []Table{t}, nil
}

// ---------------------------------------------------------------------
// T3 — fairness
// ---------------------------------------------------------------------

func runT3(o Options) ([]Table, error) {
	p := 16
	duration := sim.Time(150000)
	if o.Quick {
		p = 8
		duration = 40000
	}
	t := Table{
		ID:    "T3",
		Title: fmt.Sprintf("Fairness over a fixed interval at P=%d (bus): per-processor acquisition spread and FIFO inversions", p),
		Note:  "queue locks: spread ~1, zero inversions; randomized backoff: wide spread, many inversions",
		Cols:  []string{"lock", "total acq", "min/proc", "max/proc", "max/min", "inversions/acq"},
	}
	for _, li := range simsync.Locks() {
		res, err := simsync.RunLock(
			machine.Config{Procs: p, Model: machine.Bus, Seed: o.seed()},
			li, simsync.LockOpts{Duration: duration, CS: 25, Think: 50, CheckMutex: true, RecordOrder: true},
		)
		if err != nil {
			return nil, err
		}
		var min, max uint64 = ^uint64(0), 0
		for _, c := range res.AcqPerProc {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		ratio := "inf"
		if min > 0 {
			ratio = fmt.Sprintf("%.2f", float64(max)/float64(min))
		}
		t.AddRow(li.Name, Fmt(float64(res.Acquisitions)), Fmt(float64(min)), Fmt(float64(max)),
			ratio, fmt.Sprintf("%.3f", float64(res.FIFOInversions)/float64(res.Acquisitions)))
	}
	return []Table{t}, nil
}
