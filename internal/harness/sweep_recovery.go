package harness

// FT3 + FT4 — crash recovery and self-healing synchronization.
//
// FT1/FT2 established the fail-stop story: a crash wedges the blocking
// disciplines and the bounded/lease ones degrade gracefully. These
// sweeps extend the axis to crash-with-restart plans (the R levels) and
// the self-healing primitives, reporting per cell:
//
//   - availability: operations completed as a fraction of the same
//     (topology, discipline) cell's fault-free twin — a dedicated
//     baseline run, so the measure survives -faults= selections that
//     omit L0;
//   - mean time-to-recovery (ttr): cycles from each rebirth to the
//     reborn processor's first completed operation, averaged;
//   - orphaned acquisitions (orph): reclaims from a dead or reborn
//     holder — a protocol-level event the resilient locks make safe;
//   - fenced writes (fenced): critical-section stores suppressed by the
//     fencing-token check (lease-fence only).
//
// FT3's acceptance property: qheal (the excising queue lock) completes
// its episodes at the crash levels where plain qsync wedges, with a
// measured time-to-recovery; FT4's: the reconfigurable barrier keeps
// completing episodes through crash and rebirth where the central
// barrier stalls until the restart (fail-stop: forever).

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/simsync"
	"repro/internal/topo"
)

// ftRecoveryDefaults is the FT3/FT4 axis: fault-free baseline, the
// fail-stop crash level for contrast, then the restart plans.
func (o Options) ftRecoveryDefaults() []string {
	if o.Quick {
		return []string{"L0", "R1"}
	}
	return []string{"L0", "L2", "R1", "R2"}
}

// recoveryLocks is the FT3 column set: the FT2 survivors (tas-deadline,
// lease) next to the self-healing disciplines, with plain qsync as the
// wedge baseline. Terms and graces mirror lease-ft: long enough that no
// stall can trigger them, short enough that a crash does.
func recoveryLocks() []simsync.LockInfo {
	td, _ := simsync.LockByName("tas-deadline")
	qs, _ := simsync.LockByName("qsync")
	return []simsync.LockInfo{
		qs,
		td,
		{Name: "lease-ft", Make: func(m *machine.Machine) simsync.Lock {
			return simsync.NewLeaseTerm(m, 16000, 64)
		}},
		{Name: "fence-ft", Make: func(m *machine.Machine) simsync.Lock {
			return simsync.NewLeaseFenceTerm(m, 16000, 64)
		}},
		{Name: "qheal-ft", FIFO: true, Make: func(m *machine.Machine) simsync.Lock {
			// Grace 32768 >> any live head residence (CS + stall +
			// hand-off), so only the failure detector — or a truly
			// stuck head whose owner's suspicion already cleared at
			// rebirth — triggers excision.
			return simsync.NewHealQueueGrace(m, 32768, 64)
		}},
	}
}

// recoveryBarrier is one FT4 column.
type recoveryBarrier struct {
	name string
	mk   func(m *machine.Machine) simsync.Barrier
}

func recoveryBarriers() []recoveryBarrier {
	central, _ := simsync.BarrierByName("central")
	return []recoveryBarrier{
		{name: "central", mk: central.Make},
		{name: "straggler", mk: func(m *machine.Machine) simsync.Barrier {
			return simsync.NewStragglerBarrier(m, 4096)
		}},
		{name: "reconf", mk: func(m *machine.Machine) simsync.Barrier {
			return simsync.NewReconfBudget(m, 4096)
		}},
	}
}

// recoveryCell renders the common cell shape: outcome, availability
// against the fault-free twin, then whichever recovery metrics the run
// produced.
func recoveryCell(outcome simsync.Outcome, ops, baseline, recoveries uint64, recoveryCycles int64, orphaned, fenced uint64) string {
	avail := 100.0
	if baseline > 0 {
		avail = 100 * float64(ops) / float64(baseline)
	}
	cell := fmt.Sprintf("%s %.0f%%", outcome, avail)
	if recoveries > 0 {
		cell += fmt.Sprintf(" ttr=%d", recoveryCycles/int64(recoveries))
	}
	if orphaned > 0 {
		cell += fmt.Sprintf(" orph=%d", orphaned)
	}
	if fenced > 0 {
		cell += fmt.Sprintf(" fenced=%d", fenced)
	}
	return cell
}

func runRecoverySweep(o Options) ([]Table, error) {
	procs := 16
	barProcs := 32
	maxSteps := uint64(2_000_000)
	iters := o.lockIters()
	episodes := o.episodes()
	if o.Quick {
		procs = 8
		barProcs = 8
		maxSteps = 500_000
	}
	topos := o.axisTopos()
	levels, err := o.faultAxis(o.ftRecoveryDefaults())
	if err != nil {
		return nil, err
	}
	locks := recoveryLocks()
	bars := recoveryBarriers()

	type rowKey struct {
		tp    topo.Topology
		level FaultLevel
		plan  *fault.Plan // lock-sweep plan
		bplan *fault.Plan // barrier-sweep plan (sized to barProcs)
	}
	var rows []rowKey
	for ti, tp := range topos {
		for li, lv := range levels {
			plan, bplan := fault.NewPlan(lv.Name), fault.NewPlan(lv.Name)
			if !lv.None {
				seed := o.seed()*4096 + uint64(ti)*64 + uint64(li)
				plan = fault.Generate(fmt.Sprintf("%s/%s", tp.Name(), lv.Name), seed, lv.Spec(procs, iters))
				bplan = fault.Generate(fmt.Sprintf("%s/%s/bar", tp.Name(), lv.Name), seed+17, lv.Spec(barProcs, episodes))
			}
			rows = append(rows, rowKey{tp: tp, level: lv, plan: plan, bplan: bplan})
		}
	}

	lockOpts := simsync.RecoveryLockOpts{
		Iters: iters, CS: 25, Think: 50,
		Budget:   4096,
		MaxSteps: maxSteps,
	}
	barOpts := simsync.RecoveryBarrierOpts{Episodes: episodes, Work: 150, MaxSteps: maxSteps}
	empty := fault.NewPlan("L0")

	// Fault-free twins: one per (topology, column), the availability
	// denominator for every level row of that topology.
	lockBase := make([][]uint64, len(topos))
	barBase := make([][]uint64, len(topos))
	for i := range topos {
		lockBase[i] = make([]uint64, len(locks))
		barBase[i] = make([]uint64, len(bars))
	}
	err = forEachCell(true, len(topos)*(len(locks)+len(bars)), func(cell int, pool *machine.Pool) error {
		per := len(locks) + len(bars)
		ti, ci := cell/per, cell%per
		if ci < len(locks) {
			res, rerr := simsync.RunLockRecovery(pool,
				machine.Config{Procs: procs, Topo: topos[ti], Seed: o.seed()},
				locks[ci], empty, lockOpts)
			if rerr != nil {
				return rerr
			}
			lockBase[ti][ci] = res.Acquisitions
			return nil
		}
		bi := ci - len(locks)
		res, rerr := simsync.RunBarrierRecovery(pool,
			machine.Config{Procs: barProcs, Topo: topos[ti], Seed: o.seed()},
			bars[bi].name, bars[bi].mk, empty, barOpts)
		if rerr != nil {
			return rerr
		}
		barBase[ti][bi] = res.Episodes
		return nil
	})
	if err != nil {
		return nil, err
	}

	lockRes := make([][]simsync.RecoveryLockResult, len(rows))
	barRes := make([][]simsync.RecoveryBarrierResult, len(rows))
	for i := range rows {
		lockRes[i] = make([]simsync.RecoveryLockResult, len(locks))
		barRes[i] = make([]simsync.RecoveryBarrierResult, len(bars))
	}
	err = forEachCell(true, len(rows)*(len(locks)+len(bars)), func(cell int, pool *machine.Pool) error {
		per := len(locks) + len(bars)
		ri, ci := cell/per, cell%per
		row := rows[ri]
		if ci < len(locks) {
			res, rerr := simsync.RunLockRecovery(pool,
				machine.Config{Procs: procs, Topo: row.tp, Seed: o.seed()},
				locks[ci], row.plan, lockOpts)
			if rerr != nil {
				return rerr
			}
			o.progressf("  %s %s %s: %s, %d acq, %d orphaned, %d recovered\n",
				row.tp.Name(), row.level.Name, res.Lock, res.Outcome,
				res.Acquisitions, res.Orphaned, res.Recovered)
			lockRes[ri][ci] = res
			return nil
		}
		bi := ci - len(locks)
		res, rerr := simsync.RunBarrierRecovery(pool,
			machine.Config{Procs: barProcs, Topo: row.tp, Seed: o.seed()},
			bars[bi].name, bars[bi].mk, row.bplan, barOpts)
		if rerr != nil {
			return rerr
		}
		o.progressf("  %s %s %s: %s, %d episodes, %d recovered\n",
			row.tp.Name(), row.level.Name, res.Barrier, res.Outcome,
			res.Episodes, res.Recovered)
		barRes[ri][bi] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	lockCols := []string{"topo/level"}
	for _, li := range locks {
		lockCols = append(lockCols, li.Name)
	}
	barCols := []string{"topo/level"}
	for _, b := range bars {
		barCols = append(barCols, b.name)
	}
	ft3 := Table{
		ID:    "FT3",
		Title: fmt.Sprintf("Lock availability and time-to-recovery under crash-with-restart plans at P=%d", procs),
		Note:  "outcome + completed ops vs fault-free twin; ttr = mean cycles from rebirth to first reacquisition, orph = reclaims from dead/reborn holders, fenced = stale CS writes suppressed; qsync wedges where qheal heals the queue",
		Cols:  lockCols,
	}
	ft4 := Table{
		ID:    "FT4",
		Title: fmt.Sprintf("Barrier availability and time-to-recovery under crash-with-restart plans at P=%d", barProcs),
		Note:  "outcome + completed episodes vs fault-free twin; central stalls every survivor until the restart (fail-stop: forever), reconf evicts the corpse and readmits it at rebirth",
		Cols:  barCols,
	}
	for ri, row := range rows {
		label := row.tp.Name() + "/" + row.level.Name
		ti := ri / len(levels)
		r3 := []string{label}
		for ci := range locks {
			res := lockRes[ri][ci]
			r3 = append(r3, recoveryCell(res.Outcome, res.Acquisitions, lockBase[ti][ci],
				res.Recoveries, int64(res.RecoveryCycles), res.Orphaned, res.StaleWrites))
		}
		ft3.Rows = append(ft3.Rows, r3)
		r4 := []string{label}
		for bi := range bars {
			res := barRes[ri][bi]
			r4 = append(r4, recoveryCell(res.Outcome, res.Episodes, barBase[ti][bi],
				res.Recoveries, int64(res.RecoveryCycles), 0, 0))
		}
		ft4.Rows = append(ft4.Rows, r4)
	}
	return []Table{ft3, ft4}, nil
}
