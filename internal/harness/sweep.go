package harness

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/locks"
	"repro/internal/machine"
	"repro/internal/registry"
	"repro/internal/simsync"
)

// errSkipCell is returned by a measure function for a cell that cannot
// run on this axis point — e.g. a bus-machine cell above the snooping
// protocol's 64-processor sharer-bitmask ceiling in a sweep whose P
// axis is shared across topologies. The sweep records the cell as
// skipped (rendered as skippedCell) instead of failing the run, so
// `-topo=` scaling sweeps at P=256 complete cleanly across the whole
// registry. Contrast clipProcs, which trims the axis itself when the
// axis belongs to a single topology.
var errSkipCell = errors.New("harness: cell skipped (axis point above topology ceiling)")

// skippedCell marks a skipped cell in rendered tables and CSVs.
const skippedCell = "-"

// errCellTimeout is returned by a watchdogged cell whose measurement
// exceeded its wall-clock budget. The sweep records the cell as failed
// ("!timeout") and the battery keeps going: a wedged real-runtime cell
// (a livelocked lock, a semaphore that never sheds) must cost one
// table cell, not the whole run. The wedged goroutine itself cannot be
// killed and is abandoned — which is why the watchdog hands it a
// private machine pool (see watchdogCell) and why it is only wired to
// real-runtime sweeps, whose cells hold no simulator state.
var errCellTimeout = errors.New("harness: cell watchdog expired")

// realCellTimeout is the wall-clock budget for one real-runtime sweep
// cell. The slowest legitimate cells (full-size F11 at high goroutine
// counts, SAT cells with their fixed-duration load runs) finish in a
// few seconds; a cell still running after a minute is wedged.
const realCellTimeout = 60 * time.Second

// watchdogCell runs fn under a wall-clock watchdog, returning
// errCellTimeout if it does not finish within timeout (fn keeps
// running on its abandoned goroutine; its eventual result is
// discarded). A panic inside fn is re-raised on the caller's
// goroutine, so measureSafe's panic-to-failed-cell downgrade still
// applies. timeout <= 0 disables the watchdog.
func watchdogCell(timeout time.Duration, fn func() ([]float64, error)) ([]float64, error) {
	if timeout <= 0 {
		return fn()
	}
	type cellOut struct {
		vals   []float64
		err    error
		panicv any
	}
	done := make(chan cellOut, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- cellOut{panicv: r}
			}
		}()
		vals, err := fn()
		done <- cellOut{vals: vals, err: err}
	}()
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case out := <-done:
		if out.panicv != nil {
			panic(out.panicv)
		}
		return out.vals, out.err
	case <-t.C:
		return nil, errCellTimeout
	}
}

// runMatrixTimeout is runMatrix for real-runtime sweeps (sequential
// cells, host-time measurements) with a per-cell wall-clock watchdog:
// a cell exceeding timeout renders as "!timeout" instead of hanging
// the battery. Each cell gets a private machine pool, since on timeout
// the measuring goroutine — and anything handed to it — is abandoned.
func runMatrixTimeout[A any](timeout time.Duration, algos []A, nameOf func(A) string,
	axisLabel string, axis []string, metrics []metricSpec,
	measure func(ai int, algo A, pool *machine.Pool) ([]float64, error)) ([]Table, error) {

	return runMatrix(false, algos, nameOf, axisLabel, axis, metrics,
		func(ai int, algo A, _ *machine.Pool) ([]float64, error) {
			return watchdogCell(timeout, func() ([]float64, error) {
				return measure(ai, algo, new(machine.Pool))
			})
		})
}

// failedCell renders a cell whose measurement panicked: a bang plus the
// truncated panic reason, so the table both flags the failure and gives
// enough of the message to find it.
func failedCell(reason string) string {
	reason = strings.Join(strings.Fields(reason), " ")
	const max = 24
	if len(reason) > max {
		reason = reason[:max-1] + "…"
	}
	return "!" + reason
}

// This file is the backend-agnostic sweep engine shared by every
// per-family experiment file (sweep_locks.go, sweep_barriers.go,
// sweep_rw.go, sweep_sem.go, sweep_misc.go): algorithm selection comes
// from the registry sets (filtered by Options.Algos), the matrix driver
// below turns (axis point × algorithm × metric) measurements into
// tables, and Table handles emission. Adding a backend to a registry
// therefore adds a column to every sweep of its family with no harness
// changes.

// algosFor applies the -algos selection to one family's registry. The
// filter is per family and lenient: names that belong to other families
// are ignored, and a selection that matches nothing in this family
// leaves the family complete (so `-algos=tas,qsync -all` narrows the
// lock sweeps without emptying the barrier sweeps).
func algosFor[A any](o Options, set *registry.Set[A]) []A {
	return set.Filter(o.Algos)
}

// ValidateAlgos rejects names that belong to no family the harness
// sweeps — a name unknown everywhere is certainly a typo, and lenient
// per-family filtering would otherwise run a full unfiltered sweep.
func ValidateAlgos(names []string) error {
	if len(names) == 0 {
		return nil
	}
	known := map[string]bool{}
	collect := func(ns []string) {
		for _, n := range ns {
			known[n] = true
		}
	}
	collect(locks.Registry.Names())
	collect(locks.RWRegistry.Names())
	collect(simsync.LockSet.Names())
	collect(simsync.BarrierSet.Names())
	collect(simsync.RWLockSet.Names())
	collect(simsync.SemaphoreSet.Names())
	collect(simsync.CounterSet.Names())
	var unknown []string
	for _, n := range names {
		if !known[n] {
			unknown = append(unknown, n)
		}
	}
	if len(unknown) > 0 {
		all := make([]string, 0, len(known))
		for n := range known {
			all = append(all, n)
		}
		sort.Strings(all)
		return fmt.Errorf("unknown algorithm(s) %s (known: %s)",
			strings.Join(unknown, ", "), strings.Join(all, " "))
	}
	return nil
}

// metricSpec names one table a sweep emits.
type metricSpec struct {
	ID    string
	Title string
	Note  string
}

// runMatrix is the shared sweep driver: one row per axis value, one
// column per algorithm, one emitted table per metric. measure returns
// one value per metric for a single (axis point, algorithm) cell,
// drawing any machine it needs from the per-worker pool it is handed.
//
// Simulated sweeps run their cells concurrently across host cores —
// each cell resets its own deterministic Machine from its worker's
// pool, so the numbers are bit-identical to a sequential unpooled run
// and only wall-clock (and allocation) changes; the tables are
// assembled in canonical (axis-major) order afterwards. Real-runtime
// sweeps must instead pass parallel=false: their cells measure host
// time and would perturb each other (they ignore the pool).
func runMatrix[A any](parallel bool, algos []A, nameOf func(A) string, axisLabel string,
	axis []string, metrics []metricSpec,
	measure func(ai int, algo A, pool *machine.Pool) ([]float64, error)) ([]Table, error) {

	tables := make([]Table, len(metrics))
	for mi, ms := range metrics {
		cols := []string{axisLabel}
		for _, a := range algos {
			cols = append(cols, nameOf(a))
		}
		tables[mi] = Table{ID: ms.ID, Title: ms.Title, Note: ms.Note, Cols: cols}
	}

	// results[ai][aj] holds one value per metric; cells are independent
	// and written by at most one goroutine each. failures[ai][aj] holds
	// the panic reason for a cell whose measurement panicked: one broken
	// algorithm marks its own cells failed and the rest of the battery
	// still runs (ordinary measurement *errors* stay fatal — they mean
	// the sweep itself is wrong, not one cell).
	results := make([][][]float64, len(axis))
	failures := make([][]string, len(axis))
	for ai := range results {
		results[ai] = make([][]float64, len(algos))
		failures[ai] = make([]string, len(algos))
	}
	measureSafe := func(ai int, algo A, pool *machine.Pool) (vals []float64, panicked string, err error) {
		defer func() {
			if r := recover(); r != nil {
				vals, err = nil, nil
				panicked = fmt.Sprintf("%v", r)
			}
		}()
		vals, err = measure(ai, algo, pool)
		return
	}
	err := forEachCell(parallel, len(axis)*len(algos), func(cell int, pool *machine.Pool) error {
		// Axis-major assignment keeps the single-worker order identical
		// to the historical sequential sweep.
		ai, aj := cell/len(algos), cell%len(algos)
		vals, panicked, merr := measureSafe(ai, algos[aj], pool)
		if panicked != "" {
			failures[ai][aj] = panicked
			return nil
		}
		if merr != nil {
			if errors.Is(merr, errSkipCell) {
				return nil // leave the slot nil; rendered as skippedCell
			}
			if errors.Is(merr, errCellTimeout) {
				failures[ai][aj] = "timeout" // rendered as "!timeout"
				return nil
			}
			return merr
		}
		results[ai][aj] = vals
		return nil
	})
	if err != nil {
		return nil, err
	}

	for ai, x := range axis {
		rows := make([][]string, len(metrics))
		for mi := range rows {
			rows[mi] = []string{x}
		}
		for aj := range algos {
			for mi := range metrics {
				switch {
				case failures[ai][aj] != "":
					rows[mi] = append(rows[mi], failedCell(failures[ai][aj]))
				case results[ai][aj] == nil:
					rows[mi] = append(rows[mi], skippedCell)
				default:
					rows[mi] = append(rows[mi], Fmt(results[ai][aj][mi]))
				}
			}
		}
		for mi := range tables {
			tables[mi].Rows = append(tables[mi].Rows, rows[mi])
		}
	}
	return tables, nil
}

// forEachCell runs fn for every cell index in [0, total) and returns
// the first error. With parallel set, cells run concurrently across
// host cores (each must write only its own result slot); remaining
// cells are skipped once any cell fails, so an early error does not
// cost a full sweep's wall-clock. With parallel unset, cells run
// sequentially in index order on the calling goroutine — the mode for
// real-runtime measurements.
//
// Each worker owns a machine.Pool handed to every cell it runs, so a
// worker's cells reuse one simulated machine (reset per cell) instead
// of allocating megabytes of simulated memory each. Pools are
// per-worker precisely because they are not concurrency-safe.
//
// A panic escaping fn is recovered and returned as that cell's error: a
// panic on a bare worker goroutine would kill the whole process, and no
// single sweep cell is worth the battery. (runMatrix recovers measure
// panics one level earlier and downgrades them to failed *cells*; this
// recovery is the backstop for direct forEachCell callers and for
// panics outside the measure call.)
func forEachCell(parallel bool, total int, fn func(i int, pool *machine.Pool) error) error {
	call := func(i int, pool *machine.Pool) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("harness: sweep cell %d panicked: %v", i, r)
			}
		}()
		return fn(i, pool)
	}
	var (
		firstErr error
		errMu    sync.Mutex
		failed   atomic.Bool
	)
	record := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		failed.Store(true)
	}
	workers := 1
	if parallel {
		workers = runtime.GOMAXPROCS(0)
		if workers > total {
			workers = total
		}
	}
	if workers <= 1 {
		pool := new(machine.Pool)
		for i := 0; i < total; i++ {
			if err := call(i, pool); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next int64 = -1
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pool := new(machine.Pool)
			for !failed.Load() {
				cell := int(atomic.AddInt64(&next, 1))
				if cell >= total {
					return
				}
				if err := call(cell, pool); err != nil {
					record(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// intAxis renders an integer axis (processor or goroutine counts) as
// row labels.
func intAxis(xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = Fmt(float64(x))
	}
	return out
}

// Sweep sizes. Quick mode is for tests and smoke runs; full mode
// matches the numbers recorded in EXPERIMENTS.md.
func (o Options) busProcs() []int {
	if o.Quick {
		return []int{2, 4, 8}
	}
	return []int{1, 2, 4, 8, 16, 24, 32}
}

func (o Options) numaProcs() []int {
	if o.Quick {
		return []int{2, 4, 8}
	}
	return []int{1, 2, 4, 8, 16, 32, 48, 64}
}

func (o Options) lockIters() int {
	if o.Quick {
		return 25
	}
	return 80
}

func (o Options) episodes() int {
	if o.Quick {
		return 8
	}
	return 25
}

// Standard simulated lock workload: short critical section, a little
// think time (the era's "small delay" loop).
func simLockOpts(iters int) simsync.LockOpts {
	return simsync.LockOpts{Iters: iters, CS: 25, Think: 50, CheckMutex: true}
}

// The remaining families' standard workload shapes, shared by the
// canonical figures (F13/F14/F16) and the per-topology battery
// (sweep_topo.go) so the two can never silently drift apart.

// rwSweepSize is the simulated reader-writer sweep's size.
func (o Options) rwSweepSize() (procs, iters int) {
	if o.Quick {
		return 8, 20
	}
	return 16, 60
}

// rwFracs is the read-fraction axis of the simulated rw sweeps.
func rwFracs() []float64 { return []float64{0, 0.5, 0.9, 1} }

// simRWOpts is the standard simulated reader-writer workload.
func simRWOpts(iters int, frac float64) simsync.RWOpts {
	return simsync.RWOpts{Iters: iters, ReadFraction: frac, Work: 40, Think: 60}
}

// semSweepSize is the simulated bounded-buffer sweep's size.
func (o Options) semSweepSize() (items int, procsList []int) {
	if o.Quick {
		return 40, []int{2, 4, 8}
	}
	return 120, []int{2, 4, 8, 16, 32}
}

// simPCOpts is the standard simulated producer/consumer workload.
func simPCOpts(items int) simsync.PCOpts {
	return simsync.PCOpts{Items: items, Capacity: 4, Work: 20}
}

// counterSweepSize is the hot-spot counter sweep's size (F16 and the
// per-topology battery; F15's two-algorithm study keeps its own).
func (o Options) counterSweepSize() (incs int, procsList []int) {
	if o.Quick {
		return 20, []int{4, 16}
	}
	return 60, []int{4, 8, 16, 32, 64}
}

// clipProcs drops axis points above a topology's processor ceiling
// (max <= 0 means unlimited).
func clipProcs(procsList []int, max int) []int {
	if max <= 0 {
		return procsList
	}
	var out []int
	for _, p := range procsList {
		if p <= max {
			out = append(out, p)
		}
	}
	return out
}
