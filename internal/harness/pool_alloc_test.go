package harness

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/simsync"
	"repro/internal/topo"
)

// Machine pooling exists so that a sweep's steady-state cell cost is
// the simulation itself, not allocation: a fresh 8-processor machine is
// megabytes of simulated memory plus watcher and coherence arrays,
// while a pooled cell only pays the algorithm's own small bookkeeping
// (lock records, result slices, goroutine stacks). This test pins that
// property with a hard budget; a regression that quietly reintroduces
// per-cell machine construction blows the budget by orders of
// magnitude.
func TestPooledCellAllocationBudget(t *testing.T) {
	info, ok := simsync.LockByName("tas")
	if !ok {
		t.Fatal("tas lock missing")
	}
	cfg := machine.Config{Procs: 8, Topo: topo.Bus, Seed: 7}
	opts := simsync.LockOpts{Iters: 10, CS: 25, Think: 50, CheckMutex: true}

	pool := new(machine.Pool)
	cell := func() {
		if _, err := simsync.RunLockIn(pool, cfg, info, opts); err != nil {
			t.Fatal(err)
		}
	}
	cell() // warm the pool: the first cell constructs the machine

	// Measured steady state is ~17 objects/run (result slices, lock
	// records, goroutine bookkeeping); a fresh machine costs ~3.5x that
	// in objects and megabytes in bytes. The budget leaves headroom for
	// runtime noise while catching any return to per-cell construction.
	const budget = 48
	avg := testing.AllocsPerRun(20, cell)
	if avg > budget {
		t.Fatalf("pooled sweep cell allocates %.0f objects/run, budget %d", avg, budget)
	}

	// Cross-check that the budget is meaningful: an unpooled cell must
	// cost strictly more than a pooled one.
	unpooled := testing.AllocsPerRun(5, func() {
		if _, err := simsync.RunLock(cfg, info, opts); err != nil {
			t.Fatal(err)
		}
	})
	if unpooled <= avg {
		t.Fatalf("unpooled cell (%.0f allocs) not dearer than pooled (%.0f) — pool no longer reuses machines?", unpooled, avg)
	}
}

// TestPooledT1AllocationBudget pins the same property for the
// one-shot uncontended measurement (T1): it runs one acquire/release
// pair per machine, so the unpooled form is dominated by machine
// construction. Drawn from a pool, a T1 point costs only the lock's
// own records.
func TestPooledT1AllocationBudget(t *testing.T) {
	info, ok := simsync.LockByName("tas")
	if !ok {
		t.Fatal("tas lock missing")
	}
	pool := new(machine.Pool)
	point := func() {
		for _, model := range []topo.Topology{topo.Bus, topo.NUMA} {
			if _, _, err := simsync.UncontendedLockCostIn(pool, model, info); err != nil {
				t.Fatal(err)
			}
		}
	}
	point() // warm the pool

	// A pooled T1 point allocates the lock record, the run's body
	// closures, and goroutine bookkeeping — small and constant. The
	// budget covers both models' measurements per run.
	const budget = 48
	avg := testing.AllocsPerRun(20, point)
	if avg > budget {
		t.Fatalf("pooled T1 point allocates %.0f objects/run, budget %d", avg, budget)
	}

	unpooled := testing.AllocsPerRun(5, func() {
		for _, model := range []topo.Topology{topo.Bus, topo.NUMA} {
			if _, _, err := simsync.UncontendedLockCost(model, info); err != nil {
				t.Fatal(err)
			}
		}
	})
	if unpooled <= avg {
		t.Fatalf("unpooled T1 point (%.0f allocs) not dearer than pooled (%.0f) — pool no longer reuses machines?", unpooled, avg)
	}
}
