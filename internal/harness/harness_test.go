package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := Table{
		ID:    "TX",
		Title: "demo",
		Note:  "shape",
		Cols:  []string{"a", "bb"},
	}
	tb.AddRow("1", "2")
	tb.AddRow("10", "20")
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	for _, want := range []string{"TX", "demo", "shape", "bb", "20"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := Table{Cols: []string{"x", "y"}}
	tb.AddRow("1", "2")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "x,y\n1,2\n" {
		t.Fatalf("csv = %q", got)
	}
}

func TestFmt(t *testing.T) {
	cases := map[float64]string{
		3:      "3",
		1234:   "1234",
		123.4:  "123",
		12.345: "12.35",
		0.1234: "0.123",
	}
	for in, want := range cases {
		if got := Fmt(in); got != want {
			t.Errorf("Fmt(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestLookup(t *testing.T) {
	for _, id := range IDList() {
		if _, ok := Lookup(id); !ok {
			t.Errorf("registry id %q not found by Lookup", id)
		}
	}
	if _, ok := Lookup("F99"); ok {
		t.Fatal("bogus id found")
	}
	// Case-insensitive.
	if _, ok := Lookup("f2"); !ok {
		t.Fatal("lower-case lookup failed")
	}
}

func TestRegistryCoversDesignDoc(t *testing.T) {
	want := []string{"T1", "T2", "T3", "T4", "F1", "F2", "F3", "F4", "F5",
		"F6", "F7", "F8", "F9", "F10", "F11", "F12"}
	have := map[string]bool{}
	for _, id := range IDList() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s from DESIGN.md missing from registry", id)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if err := RunIDs([]string{"nope"}, Options{Quick: true}, &buf); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// Each experiment must run end-to-end in quick mode and produce
// non-empty tables whose ids match the registry.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick harness sweep still takes a few seconds")
	}
	for _, e := range Registry() {
		e := e
		t.Run(strings.Join(e.IDs, "+"), func(t *testing.T) {
			tables, err := e.Run(Options{Quick: true, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) != len(e.IDs) {
				t.Fatalf("produced %d tables for ids %v", len(tables), e.IDs)
			}
			for i, tb := range tables {
				if tb.ID != e.IDs[i] {
					t.Errorf("table %d id %q, want %q", i, tb.ID, e.IDs[i])
				}
				if len(tb.Rows) == 0 {
					t.Errorf("table %s has no rows", tb.ID)
				}
				if len(tb.Cols) == 0 {
					t.Errorf("table %s has no columns", tb.ID)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Cols) {
						t.Errorf("table %s row width %d != %d cols", tb.ID, len(row), len(tb.Cols))
					}
				}
			}
		})
	}
}

func TestRunIDsWithCSV(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	err := RunIDs([]string{"T2"}, Options{Quick: true, CSVDir: dir}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "T2.csv"))
	if err != nil {
		t.Fatalf("csv not written: %v", err)
	}
	if !strings.Contains(string(data), "qsync") {
		t.Fatal("csv content suspect")
	}
	if !strings.Contains(buf.String(), "T2") {
		t.Fatal("table not rendered")
	}
}

func TestRunIDsDeduplicates(t *testing.T) {
	// F1 and F2 come from the same sweep; requesting both must run once.
	var buf bytes.Buffer
	err := RunIDs([]string{"T1", "T1"}, Options{Quick: true}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "T1 — ") != 1 {
		t.Fatalf("T1 rendered %d times", strings.Count(buf.String(), "T1 — "))
	}
}
