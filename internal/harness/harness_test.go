package harness

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := Table{
		ID:    "TX",
		Title: "demo",
		Note:  "shape",
		Cols:  []string{"a", "bb"},
	}
	tb.AddRow("1", "2")
	tb.AddRow("10", "20")
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	for _, want := range []string{"TX", "demo", "shape", "bb", "20"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := Table{Cols: []string{"x", "y"}}
	tb.AddRow("1", "2")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "x,y\n1,2\n" {
		t.Fatalf("csv = %q", got)
	}
}

func TestFmt(t *testing.T) {
	cases := map[float64]string{
		3:      "3",
		1234:   "1234",
		123.4:  "123",
		12.345: "12.35",
		0.1234: "0.123",
	}
	for in, want := range cases {
		if got := Fmt(in); got != want {
			t.Errorf("Fmt(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestLookup(t *testing.T) {
	for _, id := range IDList() {
		if _, ok := Lookup(id); !ok {
			t.Errorf("registry id %q not found by Lookup", id)
		}
	}
	if _, ok := Lookup("F99"); ok {
		t.Fatal("bogus id found")
	}
	// Case-insensitive.
	if _, ok := Lookup("f2"); !ok {
		t.Fatal("lower-case lookup failed")
	}
}

func TestRegistryCoversDesignDoc(t *testing.T) {
	want := []string{"T1", "T2", "T3", "T4", "F1", "F2", "F3", "F4", "F5",
		"F6", "F7", "F8", "F9", "F10", "F11", "F12", "F13", "F14", "F15",
		"F16", "A1"}
	have := map[string]bool{}
	for _, id := range IDList() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s from DESIGN.md missing from registry", id)
		}
	}
}

// TestTableCSVRoundTrip writes a table through WriteCSV and reads it
// back through ReadCSV: columns and every cell must survive, including
// cells containing the CSV metacharacters.
func TestTableCSVRoundTrip(t *testing.T) {
	tb := Table{
		ID:   "RT",
		Cols: []string{"lock", "cyc/acq", "note"},
	}
	tb.AddRow("tas", "12.5", "plain")
	tb.AddRow("qsync", "9", `comma, quote " and
newline`)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cols) != len(tb.Cols) || len(got.Rows) != len(tb.Rows) {
		t.Fatalf("shape changed: %dx%d -> %dx%d",
			len(tb.Rows), len(tb.Cols), len(got.Rows), len(got.Cols))
	}
	for i, c := range tb.Cols {
		if got.Cols[i] != c {
			t.Errorf("col %d = %q, want %q", i, got.Cols[i], c)
		}
	}
	for r := range tb.Rows {
		for c := range tb.Rows[r] {
			if got.Rows[r][c] != tb.Rows[r][c] {
				t.Errorf("cell (%d,%d) = %q, want %q", r, c, got.Rows[r][c], tb.Rows[r][c])
			}
		}
	}
	if _, err := ReadCSV(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty CSV accepted")
	}
}

// TestF16ShardedBeatsCentral is the acceptance gate for the sharded
// layer: at 16 simulated processors the striped counter must complete
// increments in fewer cycles than the central fetch&add hot spot.
func TestF16ShardedBeatsCentral(t *testing.T) {
	tables, err := runF16(Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	col := func(name string) int {
		for i, c := range tb.Cols {
			if c == name {
				return i
			}
		}
		t.Fatalf("column %q missing from F16 (cols: %v)", name, tb.Cols)
		return -1
	}
	fa, sh := col("ctr-fa cyc/inc"), col("ctr-sharded cyc/inc")
	checked := false
	for _, row := range tb.Rows {
		var p, faCyc, shCyc float64
		if _, err := fmt.Sscanf(row[0], "%g", &p); err != nil {
			t.Fatalf("bad P cell %q", row[0])
		}
		if p < 16 {
			continue
		}
		if _, err := fmt.Sscanf(row[fa], "%g", &faCyc); err != nil {
			t.Fatalf("bad fa cell %q", row[fa])
		}
		if _, err := fmt.Sscanf(row[sh], "%g", &shCyc); err != nil {
			t.Fatalf("bad sharded cell %q", row[sh])
		}
		checked = true
		if shCyc >= faCyc {
			t.Errorf("P=%v: sharded (%.1f cyc/inc) does not beat central fetch&add (%.1f)",
				p, shCyc, faCyc)
		}
	}
	if !checked {
		t.Fatal("F16 quick sweep has no row with P >= 16")
	}
}

// TestAlgosFilter narrows a registry-driven sweep with Options.Algos
// and checks that only the requested columns appear — the shared
// selection path behind the -algos= flag.
func TestAlgosFilter(t *testing.T) {
	tables, err := runF6(Options{Quick: true, Seed: 1, Algos: []string{"tas", "qsync"}})
	if err != nil {
		t.Fatal(err)
	}
	cols := tables[0].Cols
	if len(cols) != 3 || cols[1] != "tas" || cols[2] != "qsync" {
		t.Fatalf("filtered cols = %v, want [CS cycles tas qsync]", cols)
	}
	// A filter naming no lock algorithm must leave the sweep whole.
	tables, err = runF6(Options{Quick: true, Seed: 1, Algos: []string{"not-a-lock"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Cols) < 4 {
		t.Fatalf("empty intersection emptied the sweep: cols = %v", tables[0].Cols)
	}
}

// TestScalingSweepSkipsOverCeilingBus pins the skip (not error)
// contract for protocol-limited topologies on shared processor axes:
// the scaling sweep's quick axis crosses the bus machine's 64-sharer
// ceiling, and the bus column must come back as skipped cells while
// the unlimited topologies' cells in the same rows carry numbers.
func TestScalingSweepSkipsOverCeilingBus(t *testing.T) {
	tables, err := runScalingSweep(Options{Quick: true, Seed: 1, Topos: []string{"bus", "cluster"}})
	if err != nil {
		t.Fatalf("sweep across the bus ceiling errored instead of skipping: %v", err)
	}
	if len(tables) != 2 {
		t.Fatalf("got %d tables, want 2", len(tables))
	}
	for _, tb := range tables {
		col := func(name string) int {
			for i, c := range tb.Cols {
				if c == name {
					return i
				}
			}
			t.Fatalf("%s: column %q missing (cols: %v)", tb.ID, name, tb.Cols)
			return -1
		}
		bus, cluster := col("bus"), col("cluster")
		checkedSkip := false
		for _, row := range tb.Rows {
			var p int
			if _, err := fmt.Sscanf(row[0], "%d", &p); err != nil {
				t.Fatalf("%s: bad P cell %q", tb.ID, row[0])
			}
			if row[cluster] == skippedCell {
				t.Errorf("%s P=%d: unlimited cluster column skipped", tb.ID, p)
			}
			if p > 64 {
				checkedSkip = true
				if row[bus] != skippedCell {
					t.Errorf("%s P=%d: bus cell = %q, want skipped %q", tb.ID, p, row[bus], skippedCell)
				}
			} else if row[bus] == skippedCell {
				t.Errorf("%s P=%d: bus cell skipped below its ceiling", tb.ID, p)
			}
		}
		if !checkedSkip {
			t.Fatalf("%s: quick axis never crossed the bus ceiling — skip path untested", tb.ID)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if err := RunIDs([]string{"nope"}, Options{Quick: true}, &buf); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// Each experiment must run end-to-end in quick mode and produce
// non-empty tables whose ids match the registry.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick harness sweep still takes a few seconds")
	}
	for _, e := range Registry() {
		e := e
		t.Run(strings.Join(e.IDs, "+"), func(t *testing.T) {
			tables, err := e.Run(Options{Quick: true, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) != len(e.IDs) {
				t.Fatalf("produced %d tables for ids %v", len(tables), e.IDs)
			}
			for i, tb := range tables {
				if tb.ID != e.IDs[i] {
					t.Errorf("table %d id %q, want %q", i, tb.ID, e.IDs[i])
				}
				if len(tb.Rows) == 0 {
					t.Errorf("table %s has no rows", tb.ID)
				}
				if len(tb.Cols) == 0 {
					t.Errorf("table %s has no columns", tb.ID)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Cols) {
						t.Errorf("table %s row width %d != %d cols", tb.ID, len(row), len(tb.Cols))
					}
				}
			}
		})
	}
}

func TestRunIDsWithCSV(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	err := RunIDs([]string{"T2"}, Options{Quick: true, CSVDir: dir}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "T2.csv"))
	if err != nil {
		t.Fatalf("csv not written: %v", err)
	}
	if !strings.Contains(string(data), "qsync") {
		t.Fatal("csv content suspect")
	}
	if !strings.Contains(buf.String(), "T2") {
		t.Fatal("table not rendered")
	}
}

func TestRunIDsDeduplicates(t *testing.T) {
	// F1 and F2 come from the same sweep; requesting both must run once.
	var buf bytes.Buffer
	err := RunIDs([]string{"T1", "T1"}, Options{Quick: true}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "T1 — ") != 1 {
		t.Fatalf("T1 rendered %d times", strings.Count(buf.String(), "T1 — "))
	}
}
