package harness

// FT1 + FT2 — graceful degradation under deterministic fault injection.
//
// Each row fixes a (topology, fault level) pair; each column is one
// lock discipline driven through the same fault plan. FT1 reports how
// the run ended (ok / steplimit / deadlock) together with the fraction
// of the offered work that completed; FT2 reports throughput. Degraded
// outcomes are data: a blocking lock wedged behind a crashed holder is
// the baseline the bounded and lease disciplines are measured against,
// so an ErrStepLimit cell renders as a row entry, never as a sweep
// failure. Every plan is generated from the sweep seed, so the whole
// matrix is bit-reproducible.
//
// The fault-intensity axis is the exported, named FaultLevels registry
// (selected with -faults=); the crash-with-restart levels (R1, R2)
// drive the FT3/FT4 recovery sweeps in sweep_recovery.go.

import (
	"fmt"
	"strings"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/simsync"
	"repro/internal/topo"
)

// FaultLevel is one named intensity step of the injected fault load,
// selectable by name with the -faults= flag.
type FaultLevel struct {
	Name string
	// Note is the one-line description shown by listing flags.
	Note string
	// None marks the fault-free baseline (no plan is generated).
	None bool
	// Recovery marks levels whose crashes carry restarts; the FT3/FT4
	// sweeps default to these.
	Recovery bool
	// Spec generates the fault spec for a run of procs processors each
	// offering iters operations; the plan horizon is sized to the
	// offered work so generated fault times land inside the run.
	Spec func(procs, iters int) fault.Spec
}

// mkFaultSpec fixes the interval shapes shared by every level: stalls
// of 500–2000 cycles (at most the failure-detector threshold, so no
// stall ever reads as a false-positive suspicion), degrades of
// 2000–8000 cycles, and — for recovery levels — restarts 3000–8000
// cycles after their crash (past the suspicion threshold, so the
// detector observably fires before the rebirth).
func mkFaultSpec(stalls, crashes, restarts, degrades, factorMax int) func(procs, iters int) fault.Spec {
	return func(procs, iters int) fault.Spec {
		horizon := sim.Time(iters) * sim.Time(procs) * 30
		return fault.Spec{
			Procs:   procs,
			Modules: procs,
			Horizon: horizon,
			Stalls:  stalls, StallMin: 500, StallMax: 2000,
			Crashes:  crashes,
			Restarts: restarts, RestartDelayMin: 3000, RestartDelayMax: 8000,
			Degrades: degrades, DegradeMin: 2000, DegradeMax: 8000,
			FactorMax: factorMax,
		}
	}
}

// FaultLevels returns the named fault-intensity registry in canonical
// order: the fail-stop ramp L0–L3, then the crash-recovery levels.
func FaultLevels() []FaultLevel {
	return []FaultLevel{
		{Name: "L0", Note: "fault-free baseline", None: true},
		{Name: "L1", Note: "stalls and module degrades, no crashes", Spec: mkFaultSpec(4, 0, 0, 2, 4)},
		{Name: "L2", Note: "L1 plus one fail-stop crash", Spec: mkFaultSpec(4, 1, 0, 2, 4)},
		{Name: "L3", Note: "heavy: eight stalls, two fail-stop crashes, deep degrades", Spec: mkFaultSpec(8, 2, 0, 4, 8)},
		{Name: "R1", Note: "one crash with restart, light stalls and degrades", Recovery: true, Spec: mkFaultSpec(2, 1, 1, 1, 4)},
		{Name: "R2", Note: "two crashes with restarts, heavier stalls and degrades", Recovery: true, Spec: mkFaultSpec(4, 2, 2, 2, 8)},
	}
}

// FaultLevelByName resolves a fault level case-insensitively.
func FaultLevelByName(name string) (FaultLevel, bool) {
	name = strings.TrimSpace(name)
	for _, lv := range FaultLevels() {
		if strings.EqualFold(lv.Name, name) {
			return lv, true
		}
	}
	return FaultLevel{}, false
}

// ValidateFaults rejects unknown fault-level names (the -faults= flag's
// strict check, mirroring the topology flag).
func ValidateFaults(names []string) error {
	var known []string
	for _, lv := range FaultLevels() {
		known = append(known, lv.Name)
	}
	for _, n := range names {
		if _, ok := FaultLevelByName(n); !ok {
			return fmt.Errorf("harness: unknown fault level %q (known: %s)", n, strings.Join(known, " "))
		}
	}
	return nil
}

// faultAxis resolves the fault-level axis for one sweep: the Options
// selection when -faults= was given, the sweep's defaults otherwise.
func (o Options) faultAxis(defaults []string) ([]FaultLevel, error) {
	names := defaults
	if len(o.Faults) > 0 {
		names = o.Faults
	}
	var levels []FaultLevel
	for _, n := range names {
		lv, ok := FaultLevelByName(n)
		if !ok {
			return nil, fmt.Errorf("harness: unknown fault level %q", n)
		}
		levels = append(levels, lv)
	}
	return levels, nil
}

// ft12Defaults is the FT1/FT2 axis: the fail-stop ramp.
func (o Options) ft12Defaults() []string {
	if o.Quick {
		return []string{"L0", "L2"}
	}
	return []string{"L0", "L1", "L2", "L3"}
}

// faultLocks is the FT column set: the blocking baselines (tas, tas-bo,
// qsync), the bounded-wait lock (driven through AcquireWithin), and a
// lease lock whose term is long enough that no stall can outlive it —
// only a crash triggers takeover, so its mutual-exclusion check stays
// exact under every level.
func faultLocks() []simsync.LockInfo {
	td, _ := simsync.LockByName("tas-deadline")
	infos := []simsync.LockInfo{}
	for _, n := range []string{"tas", "tas-bo"} {
		li, _ := simsync.LockByName(n)
		infos = append(infos, li)
	}
	infos = append(infos, td,
		simsync.LockInfo{Name: "lease-ft", Make: func(m *machine.Machine) simsync.Lock {
			// Term 16000 >> StallMax + CS residence: a stalled live
			// holder always finishes inside its lease; a crashed one
			// expires and is taken over.
			return simsync.NewLeaseTerm(m, 16000, 64)
		}})
	qs, _ := simsync.LockByName("qsync")
	return append(infos, qs)
}

func runFaultSweep(o Options) ([]Table, error) {
	procs := 16
	maxSteps := uint64(2_000_000)
	iters := o.lockIters()
	if o.Quick {
		procs = 8
		maxSteps = 300_000
	}
	topos := o.axisTopos()
	levels, err := o.faultAxis(o.ft12Defaults())
	if err != nil {
		return nil, err
	}
	for _, lv := range levels {
		// The fail-stop runner is incarnation-blind: a reborn processor
		// replays its iterations (inflating the completed fraction) and
		// a holder that crashed in the CS reads as live again after its
		// rebirth, turning a legitimate lease takeover into a spurious
		// mutual-exclusion abort. Recovery levels belong to FT3/FT4.
		if lv.Recovery {
			return nil, fmt.Errorf("harness: fault level %q carries restarts; FT1/FT2 are fail-stop experiments — run FT3/FT4 for the recovery levels", lv.Name)
		}
	}
	infos := faultLocks()

	type rowKey struct {
		tp    topo.Topology
		level FaultLevel
		plan  *fault.Plan
	}
	var rows []rowKey
	for ti, tp := range topos {
		for li, lv := range levels {
			plan := fault.NewPlan(lv.Name)
			if !lv.None {
				// One plan per row, shared by every lock column, so the
				// columns are hit by the same stalls/crashes/degrades.
				seed := o.seed()*1000 + uint64(ti)*16 + uint64(li)
				plan = fault.Generate(fmt.Sprintf("%s/%s", tp.Name(), lv.Name), seed, lv.Spec(procs, iters))
			}
			rows = append(rows, rowKey{tp: tp, level: lv, plan: plan})
		}
	}

	results := make([][]simsync.FaultLockResult, len(rows))
	for i := range results {
		results[i] = make([]simsync.FaultLockResult, len(infos))
	}
	err = forEachCell(true, len(rows)*len(infos), func(cell int, pool *machine.Pool) error {
		ri, ci := cell/len(infos), cell%len(infos)
		row := rows[ri]
		res, rerr := simsync.RunLockFaulted(pool,
			machine.Config{Procs: procs, Topo: row.tp, Seed: o.seed()},
			infos[ci], row.plan, simsync.FaultLockOpts{
				Iters: iters, CS: 25, Think: 50,
				Budget:   4096, // bounded locks give up a slice after this
				MaxSteps: maxSteps,
			})
		if rerr != nil {
			return rerr
		}
		o.progressf("  %s %s %s: %s, %d/%d acq, %d timeouts, %d crashed\n",
			row.tp.Name(), row.level.Name, res.Lock, res.Outcome,
			res.Acquisitions, uint64(iters)*uint64(procs), res.Timeouts, res.Crashed)
		results[ri][ci] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	cols := []string{"topo/level"}
	for _, li := range infos {
		cols = append(cols, li.Name)
	}
	ft1 := Table{
		ID:    "FT1",
		Title: fmt.Sprintf("Run outcome and completed fraction under fault injection at P=%d", procs),
		Note:  "outcome + % of offered acquisitions completed; blocking locks wedge (steplimit/deadlock) once a crash lands, bounded and lease locks stay ok with partial completion",
		Cols:  cols,
	}
	ft2 := Table{
		ID:    "FT2",
		Title: fmt.Sprintf("Lock throughput (acquisitions per kilocycle) under fault injection at P=%d", procs),
		Note:  "same matrix as FT1; wedged cells report throughput up to the cutoff, so they understate only as much as the wedge itself does",
		Cols:  cols,
	}
	offered := uint64(iters) * uint64(procs)
	for ri, row := range rows {
		label := row.tp.Name() + "/" + row.level.Name
		r1 := []string{label}
		r2 := []string{label}
		for ci := range infos {
			res := results[ri][ci]
			pct := 100 * float64(res.Acquisitions) / float64(offered)
			r1 = append(r1, fmt.Sprintf("%s %.0f%%", res.Outcome, pct))
			r2 = append(r2, Fmt(res.AcqPerKCycle))
		}
		ft1.Rows = append(ft1.Rows, r1)
		ft2.Rows = append(ft2.Rows, r2)
	}
	return []Table{ft1, ft2}, nil
}
