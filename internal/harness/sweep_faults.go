package harness

// FT1 + FT2 — graceful degradation under deterministic fault injection.
//
// Each row fixes a (topology, fault level) pair; each column is one
// lock discipline driven through the same fault plan. FT1 reports how
// the run ended (ok / steplimit / deadlock) together with the fraction
// of the offered work that completed; FT2 reports throughput. Degraded
// outcomes are data: a blocking lock wedged behind a crashed holder is
// the baseline the bounded and lease disciplines are measured against,
// so an ErrStepLimit cell renders as a row entry, never as a sweep
// failure. Every plan is generated from the sweep seed, so the whole
// matrix is bit-reproducible.

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/simsync"
	"repro/internal/topo"
)

// faultLevel describes one intensity step of the injected fault load.
type faultLevel struct {
	name string
	spec func(procs int) fault.Spec // zero Spec plus empty=true means no faults
	none bool
}

// faultLevels is the fault-intensity axis. Level 0 is the fault-free
// baseline; stalls and degradations arrive first, crashes last, so the
// table reads as a monotone stress ramp. The plan horizon is sized to
// the offered work (not to some fixed constant) so the generated fault
// times actually land inside the run: a crash scheduled after the last
// release would test nothing.
func (o Options) faultLevels() []faultLevel {
	mk := func(stalls, crashes, degrades, factorMax int) func(int) fault.Spec {
		return func(procs int) fault.Spec {
			horizon := sim.Time(o.lockIters()) * sim.Time(procs) * 30
			return fault.Spec{
				Procs:   procs,
				Modules: procs,
				Horizon: horizon,
				Stalls:  stalls, StallMin: 500, StallMax: 2000,
				Crashes:  crashes,
				Degrades: degrades, DegradeMin: 2000, DegradeMax: 8000,
				FactorMax: factorMax,
			}
		}
	}
	all := []faultLevel{
		{name: "L0", none: true},
		{name: "L1", spec: mk(4, 0, 2, 4)},
		{name: "L2", spec: mk(4, 1, 2, 4)},
		{name: "L3", spec: mk(8, 2, 4, 8)},
	}
	if o.Quick {
		return []faultLevel{all[0], all[2]}
	}
	return all
}

// faultLocks is the FT column set: the blocking baselines (tas, tas-bo,
// qsync), the bounded-wait lock (driven through AcquireWithin), and a
// lease lock whose term is long enough that no stall can outlive it —
// only a crash triggers takeover, so its mutual-exclusion check stays
// exact under every level.
func faultLocks() []simsync.LockInfo {
	td, _ := simsync.LockByName("tas-deadline")
	infos := []simsync.LockInfo{}
	for _, n := range []string{"tas", "tas-bo"} {
		li, _ := simsync.LockByName(n)
		infos = append(infos, li)
	}
	infos = append(infos, td,
		simsync.LockInfo{Name: "lease-ft", Make: func(m *machine.Machine) simsync.Lock {
			// Term 16000 >> StallMax + CS residence: a stalled live
			// holder always finishes inside its lease; a crashed one
			// expires and is taken over.
			return simsync.NewLeaseTerm(m, 16000, 64)
		}})
	qs, _ := simsync.LockByName("qsync")
	return append(infos, qs)
}

func runFaultSweep(o Options) ([]Table, error) {
	procs := 16
	maxSteps := uint64(2_000_000)
	iters := o.lockIters()
	if o.Quick {
		procs = 8
		maxSteps = 300_000
	}
	topos := o.axisTopos()
	levels := o.faultLevels()
	infos := faultLocks()

	type rowKey struct {
		tp    topo.Topology
		level faultLevel
		plan  *fault.Plan
	}
	var rows []rowKey
	for ti, tp := range topos {
		for li, lv := range levels {
			plan := fault.NewPlan(lv.name)
			if !lv.none {
				// One plan per row, shared by every lock column, so the
				// columns are hit by the same stalls/crashes/degrades.
				seed := o.seed()*1000 + uint64(ti)*16 + uint64(li)
				plan = fault.Generate(fmt.Sprintf("%s/%s", tp.Name(), lv.name), seed, lv.spec(procs))
			}
			rows = append(rows, rowKey{tp: tp, level: lv, plan: plan})
		}
	}

	results := make([][]simsync.FaultLockResult, len(rows))
	for i := range results {
		results[i] = make([]simsync.FaultLockResult, len(infos))
	}
	err := forEachCell(true, len(rows)*len(infos), func(cell int, pool *machine.Pool) error {
		ri, ci := cell/len(infos), cell%len(infos)
		row := rows[ri]
		res, rerr := simsync.RunLockFaulted(pool,
			machine.Config{Procs: procs, Topo: row.tp, Seed: o.seed()},
			infos[ci], row.plan, simsync.FaultLockOpts{
				Iters: iters, CS: 25, Think: 50,
				Budget:   4096, // bounded locks give up a slice after this
				MaxSteps: maxSteps,
			})
		if rerr != nil {
			return rerr
		}
		o.progressf("  %s %s %s: %s, %d/%d acq, %d timeouts, %d crashed\n",
			row.tp.Name(), row.level.name, res.Lock, res.Outcome,
			res.Acquisitions, uint64(iters)*uint64(procs), res.Timeouts, res.Crashed)
		results[ri][ci] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	cols := []string{"topo/level"}
	for _, li := range infos {
		cols = append(cols, li.Name)
	}
	ft1 := Table{
		ID:    "FT1",
		Title: fmt.Sprintf("Run outcome and completed fraction under fault injection at P=%d", procs),
		Note:  "outcome + % of offered acquisitions completed; blocking locks wedge (steplimit/deadlock) once a crash lands, bounded and lease locks stay ok with partial completion",
		Cols:  cols,
	}
	ft2 := Table{
		ID:    "FT2",
		Title: fmt.Sprintf("Lock throughput (acquisitions per kilocycle) under fault injection at P=%d", procs),
		Note:  "same matrix as FT1; wedged cells report throughput up to the cutoff, so they understate only as much as the wedge itself does",
		Cols:  cols,
	}
	offered := uint64(iters) * uint64(procs)
	for ri, row := range rows {
		label := row.tp.Name() + "/" + row.level.name
		r1 := []string{label}
		r2 := []string{label}
		for ci := range infos {
			res := results[ri][ci]
			pct := 100 * float64(res.Acquisitions) / float64(offered)
			r1 = append(r1, fmt.Sprintf("%s %.0f%%", res.Outcome, pct))
			r2 = append(r2, Fmt(res.AcqPerKCycle))
		}
		ft1.Rows = append(ft1.Rows, r1)
		ft2.Rows = append(ft2.Rows, r2)
	}
	return []Table{ft1, ft2}, nil
}
