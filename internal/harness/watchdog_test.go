package harness

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/machine"
)

func TestWatchdogCellPassThrough(t *testing.T) {
	vals, err := watchdogCell(time.Second, func() ([]float64, error) {
		return []float64{42}, nil
	})
	if err != nil || len(vals) != 1 || vals[0] != 42 {
		t.Fatalf("got %v, %v", vals, err)
	}
	wantErr := errors.New("boom")
	if _, err := watchdogCell(time.Second, func() ([]float64, error) {
		return nil, wantErr
	}); !errors.Is(err, wantErr) {
		t.Fatalf("error not passed through: %v", err)
	}
	// Disabled watchdog runs inline.
	vals, err = watchdogCell(0, func() ([]float64, error) { return []float64{7}, nil })
	if err != nil || vals[0] != 7 {
		t.Fatalf("disabled watchdog: %v, %v", vals, err)
	}
}

func TestWatchdogCellTimeout(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	_, err := watchdogCell(20*time.Millisecond, func() ([]float64, error) {
		<-block
		return []float64{1}, nil
	})
	if !errors.Is(err, errCellTimeout) {
		t.Fatalf("want errCellTimeout, got %v", err)
	}
}

func TestWatchdogCellRepanics(t *testing.T) {
	defer func() {
		if r := recover(); r != "cell exploded" {
			t.Fatalf("panic not re-raised: %v", r)
		}
	}()
	watchdogCell(time.Second, func() ([]float64, error) { panic("cell exploded") })
}

// TestRunMatrixTimeoutCell: a wedged cell costs one "!timeout" table
// cell while the rest of the matrix completes with real values.
func TestRunMatrixTimeoutCell(t *testing.T) {
	algos := []string{"good", "wedged"}
	block := make(chan struct{})
	defer close(block)
	tables, err := runMatrixTimeout(30*time.Millisecond, algos,
		func(s string) string { return s },
		"x", []string{"0"},
		[]metricSpec{{ID: "WD", Title: "watchdog test"}},
		func(ai int, algo string, _ *machine.Pool) ([]float64, error) {
			if algo == "wedged" {
				<-block
			}
			return []float64{1}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 1 {
		t.Fatalf("unexpected shape: %+v", tables)
	}
	row := tables[0].Rows[0]
	joined := strings.Join(row, "|")
	if !strings.Contains(joined, "!timeout") {
		t.Fatalf("no !timeout cell in row %v", row)
	}
	if !strings.Contains(joined, "1") {
		t.Fatalf("good cell missing from row %v", row)
	}
}
