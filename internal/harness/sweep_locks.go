package harness

// Lock-family sweeps: the simulated sweeps behind T1, F1/F2/T4, F3/F4,
// F5, F6, T3, A1 and the real-runtime sweeps behind F11 and F12. All
// algorithm selection resolves through the registries in
// internal/simsync and internal/locks.

import (
	"fmt"
	"runtime"

	"repro/internal/locks"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/simsync"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------
// T1 — uncontended latency
// ---------------------------------------------------------------------

func runT1(o Options) ([]Table, error) {
	t := Table{
		ID:    "T1",
		Title: "Single-processor acquire+release latency, no contention",
		Note:  "tas cheapest; the queueing mechanism pays a few extra cycles for its scalability",
		Cols:  []string{"lock", "bus cycles", "bus txns", "numa cycles", "numa refs"},
	}
	pool := new(machine.Pool)
	for _, info := range algosFor(o, simsync.LockSet) {
		busCyc, busTraf, err := simsync.UncontendedLockCostIn(pool, topo.Bus, info)
		if err != nil {
			return nil, err
		}
		numaCyc, numaTraf, err := simsync.UncontendedLockCostIn(pool, topo.NUMA, info)
		if err != nil {
			return nil, err
		}
		t.AddRow(info.Name, Fmt(float64(busCyc)), Fmt(float64(busTraf)),
			Fmt(float64(numaCyc)), Fmt(float64(numaTraf)))
	}
	return []Table{t}, nil
}

// ---------------------------------------------------------------------
// F1 + F2 + T4 — bus machine lock sweep
// ---------------------------------------------------------------------

func lockSweep(o Options, tp topo.Topology, procsList []int, metrics []metricSpec) (tables []Table, perLockTraffic map[string][]float64, err error) {
	infos := algosFor(o, simsync.LockSet)
	// Pre-size the traffic series so concurrent cells write disjoint
	// indexed slots instead of appending (the map itself is read-only
	// while the matrix runs).
	perLockTraffic = make(map[string][]float64, len(infos))
	for _, li := range infos {
		perLockTraffic[li.Name] = make([]float64, len(procsList))
	}
	tables, err = runMatrix(true, infos, func(li simsync.LockInfo) string { return li.Name },
		"P", intAxis(procsList), metrics,
		func(ai int, li simsync.LockInfo, pool *machine.Pool) ([]float64, error) {
			p := procsList[ai]
			res, rerr := simsync.RunLockIn(pool,
				machine.Config{Procs: p, Topo: tp, Seed: o.seed()},
				li, simLockOpts(o.lockIters()),
			)
			if rerr != nil {
				return nil, rerr
			}
			o.progressf("  %s %s P=%d: %.0f cyc/acq, %.2f traffic/acq\n",
				tp.Name(), li.Name, p, res.CyclesPerAcq, res.TrafficPerAcq)
			perLockTraffic[li.Name][ai] = res.TrafficPerAcq
			return []float64{res.CyclesPerAcq, res.TrafficPerAcq}, nil
		})
	return tables, perLockTraffic, err
}

func runBusLockSweep(o Options) ([]Table, error) {
	procs := o.busProcs()
	tables, perLock, err := lockSweep(o, topo.Bus, procs, []metricSpec{
		{ID: "F1", Title: "Cycles per critical section vs processors (bus machine)",
			Note: "tas superlinear; ttas better; backoff/ticket flatten; anderson & qsync near-flat"},
		{ID: "F2", Title: "Bus transactions per acquisition vs processors",
			Note: "tas ~O(P); ttas O(P) release burst; qsync O(1)"},
	})
	if err != nil {
		return nil, err
	}

	t4 := Table{
		ID:    "T4",
		Title: "Fitted scaling exponent k of traffic ~ P^k (bus)",
		Note:  "k ≈ 1 for tas/ttas, k ≈ 0 for the mechanism",
		Cols:  []string{"lock", "exponent k", "R^2"},
	}
	// Fit only the contended regime (P >= 2): the uncontended point is a
	// different operating mode and the era's log-log slopes exclude it.
	var xs []float64
	var keep []int
	for i, p := range procs {
		if p >= 2 {
			xs = append(xs, float64(p))
			keep = append(keep, i)
		}
	}
	for _, li := range algosFor(o, simsync.LockSet) {
		var ys []float64
		for _, i := range keep {
			ys = append(ys, perLock[li.Name][i])
		}
		k, r2 := stats.PowerLawExponent(xs, ys)
		t4.AddRow(li.Name, fmt.Sprintf("%.3f", k), fmt.Sprintf("%.3f", r2))
	}
	return append(tables, t4), nil
}

// ---------------------------------------------------------------------
// F3 + F4 — NUMA machine lock sweep
// ---------------------------------------------------------------------

func runNUMALockSweep(o Options) ([]Table, error) {
	tables, _, err := lockSweep(o, topo.NUMA, o.numaProcs(), []metricSpec{
		{ID: "F3", Title: "Cycles per critical section vs processors (NUMA machine)",
			Note: "remote-spin algorithms degrade with network hot-spotting; qsync flat"},
		{ID: "F4", Title: "Remote references per acquisition vs processors (NUMA)",
			Note: "qsync constant (~4); ticket/anderson/tas grow with P"},
	})
	return tables, err
}

// ---------------------------------------------------------------------
// F5 — backoff sensitivity ablation
// ---------------------------------------------------------------------

func runF5(o Options) ([]Table, error) {
	const procs = 16
	p := procs
	if o.Quick {
		p = 8
	}
	t := Table{
		ID:    "F5",
		Title: fmt.Sprintf("Backoff tuning sensitivity at P=%d (bus): cycles per acquisition", p),
		Note:  "backoff needs tuning per workload; the mechanism is parameter-free and matches the best tuning",
		Cols:  []string{"lock (base/cap)", "cycles/acq", "txns/acq"},
	}
	bases := []sim.Time{4, 16, 64, 256}
	caps := []sim.Time{256, 2048, 16384}
	pool := new(machine.Pool)
	for _, base := range bases {
		for _, cap := range caps {
			base, cap := base, cap
			info := simsync.LockInfo{
				Name: fmt.Sprintf("tas-bo %d/%d", base, cap),
				Make: func(m *machine.Machine) simsync.Lock {
					return simsync.NewTASBackoffParams(m, simsync.BackoffParams{Base: base, Cap: cap})
				},
			}
			res, err := simsync.RunLockIn(pool,
				machine.Config{Procs: p, Topo: topo.Bus, Seed: o.seed()},
				info, simLockOpts(o.lockIters()),
			)
			if err != nil {
				return nil, err
			}
			t.AddRow(info.Name, Fmt(res.CyclesPerAcq), Fmt(res.TrafficPerAcq))
		}
	}
	qs, _ := simsync.LockByName("qsync")
	res, err := simsync.RunLockIn(pool,
		machine.Config{Procs: p, Topo: topo.Bus, Seed: o.seed()},
		qs, simLockOpts(o.lockIters()),
	)
	if err != nil {
		return nil, err
	}
	t.AddRow("qsync (no tuning)", Fmt(res.CyclesPerAcq), Fmt(res.TrafficPerAcq))
	return []Table{t}, nil
}

// ---------------------------------------------------------------------
// F6 — critical-section length crossover
// ---------------------------------------------------------------------

func runF6(o Options) ([]Table, error) {
	p := 16
	if o.Quick {
		p = 8
	}
	lengths := []sim.Time{0, 100, 400, 1600}
	axis := make([]string, len(lengths))
	for i, cs := range lengths {
		axis[i] = Fmt(float64(cs))
	}
	return runMatrix(true, algosFor(o, simsync.LockSet),
		func(li simsync.LockInfo) string { return li.Name },
		"CS cycles", axis,
		[]metricSpec{{ID: "F6",
			Title: fmt.Sprintf("Cycles per critical section vs CS length at P=%d (bus)", p),
			Note:  "lock overhead differences wash out as the critical section grows; columns converge"}},
		func(ai int, li simsync.LockInfo, pool *machine.Pool) ([]float64, error) {
			cs := lengths[ai]
			opts := simsync.LockOpts{Iters: o.lockIters(), CS: cs, Think: 2 * cs, CheckMutex: true}
			res, err := simsync.RunLockIn(pool,
				machine.Config{Procs: p, Topo: topo.Bus, Seed: o.seed()},
				li, opts,
			)
			if err != nil {
				return nil, err
			}
			return []float64{res.CyclesPerAcq}, nil
		})
}

// ---------------------------------------------------------------------
// F11 — real-runtime lock sweep
// ---------------------------------------------------------------------

func runF11(o Options) ([]Table, error) {
	iters := 20000
	if o.Quick {
		iters = 1000
	}
	maxG := 2 * runtime.GOMAXPROCS(0)
	var gs []int
	for g := 1; g <= maxG; g *= 2 {
		gs = append(gs, g)
	}
	// Real runtime: cells time the host and must not run concurrently;
	// the watchdog turns a wedged lock into a "!timeout" cell. The
	// latency tables come from the same cells as the throughput table —
	// one measurement, four views.
	return runMatrixTimeout(realCellTimeout, algosFor(o, locks.Registry),
		func(li locks.Info) string { return li.Name },
		"goroutines", intAxis(gs),
		[]metricSpec{{ID: "F11",
			Title: "ns per acquire/release pair vs goroutines (real runtime)",
			Note:  "same qualitative ordering as F1; absolute values are Go-runtime specific"},
			{ID: "F11-p50",
				Title: "p50 acquire→release latency (ns) vs goroutines (real runtime)",
				Note:  "the median pair stays near the uncontended cost until the queue builds"},
			{ID: "F11-p99",
				Title: "p99 acquire→release latency (ns) vs goroutines (real runtime)",
				Note:  "unfair locks grow a long tail under contention; queue locks keep p99 near p50 × queue depth"},
			{ID: "F11-slow",
				Title: "contention proxy: fraction of acquire→release pairs slower than 2× the median",
				Note:  "≈0 uncontended; rises with goroutines as ops start queueing"}},
		func(ai int, li locks.Info, _ *machine.Pool) ([]float64, error) {
			g := gs[ai]
			res, ok := workload.RunCriticalSections(li.New(g), workload.CSOpts{
				Goroutines: g, Iters: iters / g, CSWork: 20, ThinkWork: 40,
			})
			if !ok {
				return nil, fmt.Errorf("F11: %s violated exclusion", li.Name)
			}
			return []float64{res.NsPerOp,
				float64(res.Lat.P50Ns), float64(res.Lat.P99Ns), res.Lat.SlowFrac}, nil
		})
}

// ---------------------------------------------------------------------
// F12 — spin vs park under oversubscription
// ---------------------------------------------------------------------

func runF12(o Options) ([]Table, error) {
	iters := 4000
	if o.Quick {
		iters = 400
	}
	n := runtime.GOMAXPROCS(0)
	t := Table{
		ID:    "F12",
		Title: "Mechanism with spin vs spin-park waiters under oversubscription",
		Note:  "pure spin collapses past 1 waiter per CPU; parking degrades gracefully — why futex-style waiting superseded these primitives. slow = fraction of pairs beyond 2× the median (contention proxy)",
		Cols: []string{"goroutines", "spin ns/op", "spin p50/p99 ns", "spin slow",
			"spin-park ns/op", "park p50/p99 ns", "park slow", "spin/park"},
	}
	pctl := func(l workload.LatSummary) string {
		return fmt.Sprintf("%s/%s", Fmt(float64(l.P50Ns)), Fmt(float64(l.P99Ns)))
	}
	for _, mult := range []int{1, 2, 4} {
		g := n * mult
		spinInfo, _ := locks.ByName("qsync")
		parkInfo, _ := locks.ByName("qsync-park")
		spinRes, ok1 := workload.RunCriticalSections(spinInfo.New(g), workload.CSOpts{
			Goroutines: g, Iters: iters / mult, CSWork: 30,
		})
		parkRes, ok2 := workload.RunCriticalSections(parkInfo.New(g), workload.CSOpts{
			Goroutines: g, Iters: iters / mult, CSWork: 30,
		})
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("F12: exclusion violated")
		}
		t.AddRow(Fmt(float64(g)),
			Fmt(spinRes.NsPerOp), pctl(spinRes.Lat), Fmt(spinRes.Lat.SlowFrac),
			Fmt(parkRes.NsPerOp), pctl(parkRes.Lat), Fmt(parkRes.Lat.SlowFrac),
			fmt.Sprintf("%.2f", spinRes.NsPerOp/parkRes.NsPerOp))
	}
	return []Table{t}, nil
}

// ---------------------------------------------------------------------
// T3 — fairness
// ---------------------------------------------------------------------

func runT3(o Options) ([]Table, error) {
	p := 16
	duration := sim.Time(150000)
	if o.Quick {
		p = 8
		duration = 40000
	}
	t := Table{
		ID:    "T3",
		Title: fmt.Sprintf("Fairness over a fixed interval at P=%d (bus): per-processor acquisition spread and FIFO inversions", p),
		Note:  "queue locks: spread ~1, zero inversions; randomized backoff: wide spread, many inversions",
		Cols:  []string{"lock", "total acq", "min/proc", "max/proc", "max/min", "inversions/acq"},
	}
	infos := algosFor(o, simsync.LockSet)
	results := make([]simsync.LockResult, len(infos))
	err := forEachCell(true, len(infos), func(cell int, pool *machine.Pool) error {
		res, rerr := simsync.RunLockIn(pool,
			machine.Config{Procs: p, Topo: topo.Bus, Seed: o.seed()},
			infos[cell], simsync.LockOpts{Duration: duration, CS: 25, Think: 50, CheckMutex: true, RecordOrder: true},
		)
		if rerr != nil {
			return rerr
		}
		results[cell] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ci, li := range infos {
		res := results[ci]
		var min, max uint64 = ^uint64(0), 0
		for _, c := range res.AcqPerProc {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		ratio := "inf"
		if min > 0 {
			ratio = fmt.Sprintf("%.2f", float64(max)/float64(min))
		}
		t.AddRow(li.Name, Fmt(float64(res.Acquisitions)), Fmt(float64(min)), Fmt(float64(max)),
			ratio, fmt.Sprintf("%.3f", float64(res.FIFOInversions)/float64(res.Acquisitions)))
	}
	return []Table{t}, nil
}

// ---------------------------------------------------------------------
// A1 — machine timing-parameter ablation
// ---------------------------------------------------------------------

// runA1 sweeps the two timing knobs that define the machine models and
// shows that the mechanism's advantage is structural, not an artifact
// of one parameter choice: qsync's traffic per acquisition stays
// constant while tas's cost scales with the interconnect penalty.
func runA1(o Options) ([]Table, error) {
	p := 16
	if o.Quick {
		p = 8
	}
	t := Table{
		ID:    "A1",
		Title: fmt.Sprintf("Timing-parameter sensitivity at P=%d: cycles per acquisition as interconnect latencies vary", p),
		Note:  "the tas:qsync gap widens on both machines as transactions get dearer (remote polls queue at the saturated home module); qsync's own traffic count never moves",
		Cols:  []string{"machine", "parameter", "tas cyc/acq", "qsync cyc/acq", "tas/qsync", "qsync traffic/acq"},
	}
	tas, _ := simsync.LockByName("tas")
	qs, _ := simsync.LockByName("qsync")

	type point struct {
		machine string
		param   string
		cfg     machine.Config
	}
	var points []point
	for _, busLat := range []sim.Time{5, 20, 80} {
		points = append(points, point{"bus", fmt.Sprintf("bus latency %d", busLat),
			machine.Config{Procs: p, Topo: topo.Bus, BusLatency: busLat, Seed: o.seed()}})
	}
	for _, remote := range []sim.Time{4, 12, 48} {
		points = append(points, point{"numa", fmt.Sprintf("remote latency %d", remote),
			machine.Config{Procs: p, Topo: topo.NUMA, RemoteMem: remote, Seed: o.seed()}})
	}
	locksUnder := []simsync.LockInfo{tas, qs}
	results := make([]simsync.LockResult, len(points)*len(locksUnder))
	err := forEachCell(true, len(results), func(cell int, pool *machine.Pool) error {
		pi, li := cell/len(locksUnder), cell%len(locksUnder)
		res, rerr := simsync.RunLockIn(pool, points[pi].cfg, locksUnder[li], simLockOpts(o.lockIters()))
		if rerr != nil {
			return rerr
		}
		results[cell] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for pi, pt := range points {
		rt, rq := results[pi*len(locksUnder)], results[pi*len(locksUnder)+1]
		t.AddRow(pt.machine, pt.param,
			Fmt(rt.CyclesPerAcq), Fmt(rq.CyclesPerAcq),
			fmt.Sprintf("%.2f", rt.CyclesPerAcq/rq.CyclesPerAcq), Fmt(rq.TrafficPerAcq))
	}
	return []Table{t}, nil
}
