package harness

// SC1/SC2 — the extreme-scale sweep (PR 6): one contended tas storm
// per (P, topology) cell with the processor count on the axis and the
// registered topologies as columns, up to the P ∈ {256, 1024} deep
// points where the engine runs in heap mode and the window eligibility
// mask spans multiple words. The P axis is shared across columns, so
// topologies with a protocol ceiling (the bus machine's 64-sharer
// coherence bitmask) skip their over-ceiling cells rather than erroring
// or clipping the axis — the sweep completes across the whole registry
// and the skipped cells render as "-".
//
// SC1 is simulated and deterministic (cycles per acquisition). SC2 is
// host throughput (simulated memory operations per host second, the
// number that bounds sweep wall-clock): it depends on the machine that
// ran it, so cells run sequentially to keep the timing honest, and
// recorded copies (EXPERIMENTS.md) name their host.

import (
	"time"

	"repro/internal/machine"
	"repro/internal/simsync"
	"repro/internal/topo"
)

// scaleProcs is the scaling sweep's processor axis. Quick mode stays
// small but deliberately crosses the bus ceiling so the skip path is
// exercised by the quick-mode experiment tests.
func (o Options) scaleProcs() []int {
	if o.Quick {
		return []int{32, 128}
	}
	return []int{32, 64, 256, 1024}
}

// scaleIters keeps cell cost roughly flat as P grows: total simulated
// events scale with P × iters × storm size, and the storm itself grows
// with P, so a fixed small iteration count is what keeps the P=1024
// cells affordable.
func (o Options) scaleIters() int {
	if o.Quick {
		return 2
	}
	return 6
}

func runScalingSweep(o Options) ([]Table, error) {
	topos := o.axisTopos()
	procs := o.scaleProcs()
	info, ok := simsync.LockByName("tas")
	if !ok {
		panic("harness: tas lock missing from registry")
	}
	return runMatrix(false, topos,
		func(t topo.Topology) string { return t.Name() },
		"P", intAxis(procs),
		[]metricSpec{
			{ID: "SC1", Title: "Scaling law: cycles per acquisition vs processors (contended tas storm, per topology)",
				Note: "simulated and deterministic; over-ceiling cells (bus above 64 processors) are skipped, not errors"},
			{ID: "SC2", Title: "Scaling law: host simops/s vs processors (contended tas storm, per topology)",
				Note: "host-dependent throughput — regenerate on your machine before comparing; spin windows batch the storms on every topology"},
		},
		func(ai int, tp topo.Topology, pool *machine.Pool) ([]float64, error) {
			p := procs[ai]
			if mp := tp.MaxProcs(); mp > 0 && p > mp {
				o.progressf("  %s P=%d: skipped (topology ceiling %d)\n", tp.Name(), p, mp)
				return nil, errSkipCell
			}
			start := time.Now()
			res, err := simsync.RunLockIn(pool,
				machine.Config{Procs: p, Topo: tp, Seed: o.seed()},
				info, simLockOpts(o.scaleIters()),
			)
			if err != nil {
				return nil, err
			}
			el := time.Since(start).Seconds()
			st := res.Stats
			simops := float64(st.Loads+st.Stores+st.RMWs) / el
			o.progressf("  %s tas P=%d: %.0f cyc/acq, %.2fM simops/s\n",
				tp.Name(), p, res.CyclesPerAcq, simops/1e6)
			return []float64{res.CyclesPerAcq, simops}, nil
		})
}
