package harness

// The saturation experiments (SAT1/SAT2): the first sweeps judged at
// the tail instead of the mean. An open-loop generator (internal/load)
// offers work at a target rate — past the knee, unlike every
// closed-loop sweep in this harness — against two acquisition
// disciplines over the same striped semaphore:
//
//   sem:  bare deadline acquisition (Semaphore.AcquireTimeout). No
//         admission control: every arrival joins the scrum and either
//         wins a permit or burns its whole deadline.
//   gate: admission-controlled (sharded.Gate): a bounded waiting room,
//         everyone beyond it shed immediately with ErrShed.
//
// Each admitted op holds its permit for a fixed service time, so
// capacity is exactly permits/hold and the knee is known in advance.
// SAT1 sweeps offered rate on one shared pool; SAT2 splits the permits
// into per-key pools and compares a uniform key mix against a hot-key
// mix, where aggregate capacity is unreachable because the hot key's
// pool saturates first. Cells run under the real-runtime watchdog: a
// wedged discipline renders as "!timeout" across its columns.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/load"
	"repro/internal/sharded"
)

// satShape fixes the saturation workload. Capacity is permits/hold =
// 2000 ops/s, so the rate axis brackets the knee from both sides.
type satShape struct {
	permits    int64
	maxWaiters int
	hold       time.Duration // service time while holding a permit
	deadline   time.Duration // per-op budget from scheduled arrival
	dur        time.Duration // open-loop horizon per cell
	rates      []float64     // offered arrivals/sec
}

func (o Options) satShape() satShape {
	s := satShape{
		permits:    4,
		maxWaiters: 24,
		hold:       2 * time.Millisecond,
		deadline:   100 * time.Millisecond,
		dur:        1200 * time.Millisecond,
		rates:      []float64{1000, 2000, 4000, 8000},
	}
	if o.Quick {
		s.dur = 250 * time.Millisecond
		s.rates = []float64{1000, 4000}
	}
	return s
}

// satMetrics flattens one load.Result into the table's per-discipline
// metric columns.
func satMetrics(res load.Result) []float64 {
	return []float64{
		res.GoodputPerSec(),
		res.ShedFrac() * 100,
		res.DeadlineFrac() * 100,
		res.QuantileMs(0.50),
		res.QuantileMs(0.95),
		res.QuantileMs(0.99),
	}
}

// satHeaders matches satMetrics.
var satHeaders = []string{"ok/s", "shed%", "dl%", "p50ms", "p95ms", "p99ms"}

// satFmt formats one satMetrics value: throughput like every other
// table, percentages and milliseconds with one decimal.
func satFmt(col int, v float64) string {
	if col == 0 {
		return Fmt(v)
	}
	return fmt.Sprintf("%.1f", v)
}

// appendSatCells renders one discipline's cells into a row: values on
// success, "!timeout" across the group when the watchdog fired.
func appendSatCells(row []string, vals []float64, err error) ([]string, error) {
	if errors.Is(err, errCellTimeout) {
		for range satHeaders {
			row = append(row, failedCell("timeout"))
		}
		return row, nil
	}
	if err != nil {
		return nil, err
	}
	for i, v := range vals {
		row = append(row, satFmt(i, v))
	}
	return row, nil
}

// semOp is the bare discipline: wait for a permit until the op's
// deadline, no shedding.
func semOp(sem *sharded.Semaphore, hold, deadline time.Duration) load.Op {
	return func(ctx context.Context, i int) load.Outcome {
		budget := deadline
		if dl, ok := ctx.Deadline(); ok {
			budget = time.Until(dl)
		}
		if !sem.AcquireTimeout(budget) {
			return load.DeadlineExceeded
		}
		time.Sleep(hold)
		sem.Release()
		return load.OK
	}
}

// gateOp is the admission-controlled discipline.
func gateOp(g *sharded.Gate, hold time.Duration) load.Op {
	return func(ctx context.Context, i int) load.Outcome {
		switch err := g.Acquire(ctx); {
		case err == nil:
			time.Sleep(hold)
			g.Release()
			return load.OK
		case errors.Is(err, sharded.ErrShed):
			return load.Shed
		default:
			return load.DeadlineExceeded
		}
	}
}

// satDisciplines builds the two fresh-per-cell disciplines.
func satDisciplines(s satShape) []struct {
	name string
	mk   func() load.Op
} {
	return []struct {
		name string
		mk   func() load.Op
	}{
		{"sem", func() load.Op { return semOp(sharded.NewSemaphore(s.permits, 0), s.hold, s.deadline) }},
		{"gate", func() load.Op { return gateOp(sharded.NewGate(s.permits, s.maxWaiters, 0), s.hold) }},
	}
}

// ---------------------------------------------------------------------
// SAT1 — open-loop rate sweep, one shared pool
// ---------------------------------------------------------------------

func runSAT1(o Options) ([]Table, error) {
	s := o.satShape()
	capacity := float64(s.permits) / s.hold.Seconds()
	t := Table{
		ID: "SAT1",
		Title: fmt.Sprintf("Open-loop saturation, uniform load: bare semaphore vs admission gate (permits=%d, hold=%v, deadline=%v, waiters<=%d, capacity≈%.0f/s)",
			s.permits, s.hold, s.deadline, s.maxWaiters, capacity),
		Note: "past the knee the bare semaphore's tail runs to the deadline ceiling while the gate's bounded waiting room pins p99 near (waiters/permits+1)*hold and converts the excess into immediate sheds",
		Cols: []string{"offered/s"},
	}
	for _, d := range satDisciplines(s) {
		for _, h := range satHeaders {
			t.Cols = append(t.Cols, d.name+" "+h)
		}
	}
	for _, rate := range s.rates {
		row := []string{Fmt(rate)}
		for _, disc := range satDisciplines(s) {
			disc, rate := disc, rate
			vals, err := watchdogCell(realCellTimeout, func() ([]float64, error) {
				res := load.RunOpen(disc.mk(), load.OpenOpts{
					Rate: rate, Duration: s.dur, Deadline: s.deadline, Seed: o.seed(),
				})
				if !res.Accounted() {
					return nil, fmt.Errorf("SAT1 %s rate=%.0f: %d offered, %d accounted",
						disc.name, rate, res.Offered, res.OK+res.Shed+res.Deadline)
				}
				o.progressf("  SAT1 %s rate=%.0f: ok/s=%.0f shed=%.1f%% p99=%.1fms\n",
					disc.name, rate, res.GoodputPerSec(), res.ShedFrac()*100, res.QuantileMs(0.99))
				return satMetrics(res), nil
			})
			var aerr error
			row, aerr = appendSatCells(row, vals, err)
			if aerr != nil {
				return nil, aerr
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}

// ---------------------------------------------------------------------
// SAT2 — keyed pools, uniform vs hot-key mix
// ---------------------------------------------------------------------

// satKeys is the keyed-pool count and hot-key share: 90% of hot-mix
// arrivals hit key 0, so the hot knee sits at perKeyCapacity/0.9 of
// aggregate offered rate — about a quarter of the uniform knee.
const (
	satKeys   = 4
	satHotPct = 90
)

// satKeyFor derives op i's pool deterministically from the load
// package's key stream.
func satKeyFor(seed uint64, i int, hot bool) int {
	k := load.Key(seed, i)
	if hot && k%100 < satHotPct {
		return 0
	}
	return int(k>>32) % satKeys
}

func runSAT2(o Options) ([]Table, error) {
	s := o.satShape()
	// Split the pool: per-key capacity is 1/satKeys of SAT1's.
	perKey := s.permits / satKeys
	if perKey < 1 {
		perKey = 1
	}
	perWait := s.maxWaiters / satKeys
	if !o.Quick {
		// Shift the axis down one octave: the hot knee sits at ~1/4 of
		// the uniform one, and the lowest row should be under both.
		s.rates = []float64{500, 1000, 2000, 4000}
	}
	keyCap := float64(perKey) / s.hold.Seconds()
	t := Table{
		ID: "SAT2",
		Title: fmt.Sprintf("Open-loop saturation, %d keyed pools (%d permit(s) each, per-key capacity≈%.0f/s): uniform vs %d%%-hot-key mix",
			satKeys, perKey, keyCap, satHotPct),
		Note: "the hot mix saturates one pool at ~1/4 the uniform knee while the other pools idle: aggregate capacity is unreachable under skew, and only the gated pool keeps the hot key's p99 bounded there",
		Cols: []string{"offered/s"},
	}
	mixes := []struct {
		name string
		hot  bool
	}{{"uni", false}, {"hot", true}}
	// Per-(mix, discipline) column groups with the headline metrics.
	satTailHeaders := []string{"ok/s", "shed%", "p99ms"}
	for _, m := range mixes {
		for _, d := range satDisciplines(s) {
			for _, h := range satTailHeaders {
				t.Cols = append(t.Cols, m.name+"-"+d.name+" "+h)
			}
		}
	}
	pick := func(vals []float64) []float64 { // satMetrics -> {ok/s, shed%, p99ms}
		return []float64{vals[0], vals[1], vals[5]}
	}
	for _, rate := range s.rates {
		row := []string{Fmt(rate)}
		for _, m := range mixes {
			for _, disc := range satDisciplines(s) {
				m, disc, rate := m, disc, rate
				vals, err := watchdogCell(realCellTimeout, func() ([]float64, error) {
					// One pool per key, fresh per cell.
					var ops [satKeys]load.Op
					for k := range ops {
						if disc.name == "sem" {
							ops[k] = semOp(sharded.NewSemaphore(perKey, 0), s.hold, s.deadline)
						} else {
							ops[k] = gateOp(sharded.NewGate(perKey, perWait, 0), s.hold)
						}
					}
					res := load.RunOpen(func(ctx context.Context, i int) load.Outcome {
						return ops[satKeyFor(o.seed(), i, m.hot)](ctx, i)
					}, load.OpenOpts{
						Rate: rate, Duration: s.dur, Deadline: s.deadline, Seed: o.seed(),
					})
					if !res.Accounted() {
						return nil, fmt.Errorf("SAT2 %s/%s rate=%.0f: %d offered, %d accounted",
							m.name, disc.name, rate, res.Offered, res.OK+res.Shed+res.Deadline)
					}
					o.progressf("  SAT2 %s/%s rate=%.0f: ok/s=%.0f shed=%.1f%% p99=%.1fms\n",
						m.name, disc.name, rate, res.GoodputPerSec(), res.ShedFrac()*100, res.QuantileMs(0.99))
					return pick(satMetrics(res)), nil
				})
				if errors.Is(err, errCellTimeout) {
					for range satTailHeaders {
						row = append(row, failedCell("timeout"))
					}
					continue
				}
				if err != nil {
					return nil, err
				}
				for i, v := range vals {
					row = append(row, satFmt(i, v))
				}
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}
