package harness

// Semaphore-family sweeps: F10 (real-runtime bounded-buffer pipeline)
// and F14 (simulated semaphores through the same workload shape).

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/simsync"
	"repro/internal/topo"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------
// F10 — pipeline throughput (real runtime)
// ---------------------------------------------------------------------

func runF10(o Options) ([]Table, error) {
	items := 200000
	if o.Quick {
		items = 10000
	}
	t := Table{
		ID:    "F10",
		Title: "Bounded-buffer pipeline throughput (semaphore + mutex, real runtime)",
		Note:  "throughput rises with workers until buffer contention dominates. slow = fraction of push/pop ops beyond 2× the median latency (contention proxy)",
		Cols: []string{"producers=consumers",
			"items/s (spin-park)", "park p50/p99 ns", "park slow",
			"items/s (spin)", "spin p50/p99 ns", "spin slow", "validated"},
	}
	pctl := func(l workload.LatSummary) string {
		return fmt.Sprintf("%s/%s", Fmt(float64(l.P50Ns)), Fmt(float64(l.P99Ns)))
	}
	for _, w := range []int{1, 2, 4, 8} {
		park := workload.RunPipeline(workload.PipelineOpts{
			Producers: w, Consumers: w, Items: items, Capacity: 64, Mode: core.SpinPark,
		})
		spin := workload.RunPipeline(workload.PipelineOpts{
			Producers: w, Consumers: w, Items: items, Capacity: 64, Mode: core.Spin,
		})
		okStr := "yes"
		if !park.SumValidated || !spin.SumValidated {
			okStr = "NO"
		}
		t.AddRow(Fmt(float64(w)),
			Fmt(park.ItemsPerSec), pctl(park.Lat), Fmt(park.Lat.SlowFrac),
			Fmt(spin.ItemsPerSec), pctl(spin.Lat), Fmt(spin.Lat.SlowFrac), okStr)
	}
	return []Table{t}, nil
}

// ---------------------------------------------------------------------
// F14 — simulated semaphores (bounded buffer)
// ---------------------------------------------------------------------

func runF14(o Options) ([]Table, error) {
	items, procsList := o.semSweepSize()
	infos := algosFor(o, simsync.SemaphoreSet)
	cols := []string{"P"}
	for _, model := range []topo.Topology{topo.Bus, topo.NUMA} {
		unit := "cyc/item"
		if model == topo.NUMA {
			unit = "refs/item"
		}
		for _, info := range infos {
			cols = append(cols, fmt.Sprintf("%s: %s %s", model, info.Name, unit))
		}
	}
	t := Table{
		ID:    "F14",
		Title: "Bounded-buffer producer/consumer through counting semaphores (simulated)",
		Note:  "the central spin semaphore hammers its counter from every blocked processor; the mechanism's queueing semaphore hands permits off directly with bounded traffic",
		Cols:  cols,
	}
	models := []topo.Topology{topo.Bus, topo.NUMA}
	perRow := len(models) * len(infos)
	results := make([]simsync.PCResult, len(procsList)*perRow)
	err := forEachCell(true, len(results), func(cell int, pool *machine.Pool) error {
		pi, rest := cell/perRow, cell%perRow
		model, info := models[rest/len(infos)], infos[rest%len(infos)]
		res, rerr := simsync.RunProducerConsumerIn(pool,
			machine.Config{Procs: procsList[pi], Topo: model, Seed: o.seed()},
			info,
			simPCOpts(items),
		)
		if rerr != nil {
			return rerr
		}
		o.progressf("  %s %s P=%d: %.0f cyc/item %.1f traffic/item\n",
			model.Name(), info.Name, procsList[pi], res.CyclesPerItem, res.TrafficPerItem)
		results[cell] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for pi, p := range procsList {
		row := []string{Fmt(float64(p))}
		for mi, model := range models {
			for ii := range infos {
				res := results[pi*perRow+mi*len(infos)+ii]
				if model == topo.Bus {
					row = append(row, Fmt(res.CyclesPerItem))
				} else {
					row = append(row, Fmt(res.TrafficPerItem))
				}
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}
