package harness

// Topology-axis sweeps. The canonical bus/numa figures (F1–F8, ...)
// keep their historical per-model tables; this file adds the seam new
// machine shapes plug into:
//
//   - X1/X2 put the topology itself on the matrix axis: one row per
//     registered topology, one column per lock, at a fixed processor
//     count — the quickest read on "what does this memory system do to
//     each algorithm".
//   - runTopoBattery runs the full simulated battery (locks, barriers,
//     reader-writer locks, semaphores, hot-spot counters) on each
//     selected topology and emits per-topology tables (L1-<name>,
//     L2-<name>, B1-<name>, R1-<name>, S1-<name>, C1-<name>). By
//     default it covers every registered topology beyond the canonical
//     bus/numa pair, so registering a topology is enough to get its
//     whole battery; -topo=... selects explicitly (canonical names
//     allowed, handy for A/B runs).
//
// Both resolve topologies strictly through topo.Registry — the same
// one-Register-call contract the algorithm families have.

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/machine"
	"repro/internal/simsync"
	"repro/internal/topo"
)

// ValidateTopos rejects topology names missing from the registry.
func ValidateTopos(names []string) error {
	var unknown []string
	for _, n := range names {
		if _, ok := topo.ByName(n); !ok {
			unknown = append(unknown, n)
		}
	}
	if len(unknown) > 0 {
		known := topo.Names()
		sort.Strings(known)
		return fmt.Errorf("unknown topology(s) %s (known: %s)",
			strings.Join(unknown, ", "), strings.Join(known, " "))
	}
	return nil
}

// selectTopos resolves the -topo selection, or the default set when
// none was given.
func (o Options) selectTopos(deflt func(t topo.Topology) bool) []topo.Topology {
	if len(o.Topos) > 0 {
		var out []topo.Topology
		for _, t := range topo.Registry.All() {
			for _, n := range o.Topos {
				if t.Name() == n {
					out = append(out, t)
					break
				}
			}
		}
		return out
	}
	var out []topo.Topology
	for _, t := range topo.Registry.All() {
		if deflt(t) {
			out = append(out, t)
		}
	}
	return out
}

// axisTopos is the X1/X2 default: every registered topology with a
// real cost model (ideal exists for unit tests, not comparison).
func (o Options) axisTopos() []topo.Topology {
	return o.selectTopos(func(t topo.Topology) bool { return t != topo.Ideal })
}

// batteryTopos is the per-topology battery default: everything beyond
// the canonical pair (their batteries are the historical figures).
func (o Options) batteryTopos() []topo.Topology {
	return o.selectTopos(func(t topo.Topology) bool {
		return t != topo.Ideal && t != topo.Bus && t != topo.NUMA
	})
}

// topoProcs picks the processor axis for one topology: the numa-style
// ladder, clipped to the topology's own ceiling.
func (o Options) topoProcs(t topo.Topology) []int {
	base := o.numaProcs()
	if t.Discipline() == topo.SnoopingBus {
		base = o.busProcs()
	}
	return clipProcs(base, t.MaxProcs())
}

// ---------------------------------------------------------------------
// X1 + X2 — topology as the matrix axis
// ---------------------------------------------------------------------

func runTopoAxis(o Options) ([]Table, error) {
	p := 16
	if o.Quick {
		p = 8
	}
	topos := o.axisTopos()
	axis := make([]string, len(topos))
	for i, t := range topos {
		axis[i] = t.Name()
	}
	return runMatrix(true, algosFor(o, simsync.LockSet),
		func(li simsync.LockInfo) string { return li.Name },
		"topology", axis,
		[]metricSpec{
			{ID: "X1", Title: fmt.Sprintf("Cycles per critical section at P=%d across machine topologies", p),
				Note: "one row per registered topology: the cluster machine sits between bus and flat numa for local-spin queues, while remote-spin algorithms pay its inter-cluster traversals"},
			{ID: "X2", Title: fmt.Sprintf("Interconnect transactions per acquisition at P=%d across topologies", p),
				Note: "traffic in each topology's own headline metric (bus txns / remote refs); counts compare within a row's machine, not across machines"},
		},
		func(ai int, li simsync.LockInfo, pool *machine.Pool) ([]float64, error) {
			res, err := simsync.RunLockIn(pool,
				machine.Config{Procs: p, Topo: topos[ai], Seed: o.seed()},
				li, simLockOpts(o.lockIters()),
			)
			if err != nil {
				return nil, err
			}
			o.progressf("  %s %s P=%d: %.0f cyc/acq\n", topos[ai].Name(), li.Name, p, res.CyclesPerAcq)
			return []float64{res.CyclesPerAcq, res.TrafficPerAcq}, nil
		})
}

// ---------------------------------------------------------------------
// per-topology battery
// ---------------------------------------------------------------------

func runTopoBattery(o Options) ([]Table, error) {
	var tables []Table
	for _, tp := range o.batteryTopos() {
		ts, err := o.runBatteryOn(tp)
		if err != nil {
			return nil, fmt.Errorf("topology %s: %w", tp.Name(), err)
		}
		tables = append(tables, ts...)
	}
	return tables, nil
}

// runBatteryOn produces the six per-topology tables for tp.
func (o Options) runBatteryOn(tp topo.Topology) ([]Table, error) {
	name := tp.Name()
	unit := tp.Traffic().Unit()
	procs := o.topoProcs(tp)

	tables, _, err := lockSweep(o, tp, procs, []metricSpec{
		{ID: "L1-" + name, Title: fmt.Sprintf("Cycles per critical section vs processors (%s machine)", name),
			Note: "the lock sweep of F1/F3 on this topology"},
		{ID: "L2-" + name, Title: fmt.Sprintf("%s per acquisition vs processors (%s machine)", unit, name),
			Note: "the traffic sweep of F2/F4 on this topology"},
	})
	if err != nil {
		return nil, err
	}

	bar, err := barrierSweep(o, tp, procs, false, metricSpec{
		ID: "B1-" + name, Title: fmt.Sprintf("Barrier: cycles per episode vs processors (%s machine)", name),
		Note: "the barrier sweep of F7/F8 on this topology"})
	if err != nil {
		return nil, err
	}
	tables = append(tables, bar...)

	rw, err := o.rwBatteryOn(tp)
	if err != nil {
		return nil, err
	}
	sem, err := o.semBatteryOn(tp)
	if err != nil {
		return nil, err
	}
	ctr, err := o.counterBatteryOn(tp)
	if err != nil {
		return nil, err
	}
	return append(tables, rw, sem, ctr), nil
}

func (o Options) rwBatteryOn(tp topo.Topology) (Table, error) {
	p, iters := o.rwSweepSize()
	infos := algosFor(o, simsync.RWLockSet)
	cols := []string{"read fraction"}
	for _, info := range infos {
		cols = append(cols, info.Name+" cyc/op")
	}
	t := Table{
		ID:    "R1-" + tp.Name(),
		Title: fmt.Sprintf("Reader-writer locks on the %s machine at P=%d: cycles per operation", tp.Name(), p),
		Note:  "the F13 sweep on this topology",
		Cols:  cols,
	}
	fracs := rwFracs()
	results := make([]simsync.RWResult, len(fracs)*len(infos))
	err := forEachCell(true, len(results), func(cell int, pool *machine.Pool) error {
		fi, ii := cell/len(infos), cell%len(infos)
		res, rerr := simsync.RunRWIn(pool,
			machine.Config{Procs: p, Topo: tp, Seed: o.seed()},
			infos[ii],
			simRWOpts(iters, fracs[fi]),
		)
		if rerr != nil {
			return rerr
		}
		results[cell] = res
		return nil
	})
	if err != nil {
		return Table{}, err
	}
	for fi, frac := range fracs {
		row := []string{fmt.Sprintf("%.2f", frac)}
		for ii := range infos {
			row = append(row, Fmt(results[fi*len(infos)+ii].CyclesPerOp))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func (o Options) semBatteryOn(tp topo.Topology) (Table, error) {
	items, procsList := o.semSweepSize()
	infos := algosFor(o, simsync.SemaphoreSet)
	cols := []string{"P"}
	for _, info := range infos {
		cols = append(cols, info.Name+" cyc/item")
	}
	t := Table{
		ID:    "S1-" + tp.Name(),
		Title: fmt.Sprintf("Bounded-buffer producer/consumer on the %s machine: cycles per item", tp.Name()),
		Note:  "the F14 sweep on this topology; the sharded semaphore keeps permits circulating inside a cluster",
		Cols:  cols,
	}
	results := make([]simsync.PCResult, len(procsList)*len(infos))
	err := forEachCell(true, len(results), func(cell int, pool *machine.Pool) error {
		pi, ii := cell/len(infos), cell%len(infos)
		res, rerr := simsync.RunProducerConsumerIn(pool,
			machine.Config{Procs: procsList[pi], Topo: tp, Seed: o.seed()},
			infos[ii],
			simPCOpts(items),
		)
		if rerr != nil {
			return rerr
		}
		results[cell] = res
		return nil
	})
	if err != nil {
		return Table{}, err
	}
	for pi, p := range procsList {
		row := []string{Fmt(float64(p))}
		for ii := range infos {
			row = append(row, Fmt(results[pi*len(infos)+ii].CyclesPerItem))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func (o Options) counterBatteryOn(tp topo.Topology) (Table, error) {
	incs, procsList := o.counterSweepSize()
	procsList = clipProcs(procsList, tp.MaxProcs())
	infos := algosFor(o, simsync.CounterSet)
	cols := []string{"P"}
	for _, info := range infos {
		cols = append(cols, info.Name+" cyc/inc")
	}
	for _, info := range infos {
		cols = append(cols, info.Name+" refs/inc")
	}
	t := Table{
		ID:    "C1-" + tp.Name(),
		Title: fmt.Sprintf("Hot-spot counter on the %s machine: cycles and %s per increment", tp.Name(), tp.Traffic().Unit()),
		Note:  "the F16 sweep on this topology; group-home placement keeps sharded-counter traffic off the inter-cluster links",
		Cols:  cols,
	}
	results := make([]simsync.CounterResult, len(procsList)*len(infos))
	err := forEachCell(true, len(results), func(cell int, pool *machine.Pool) error {
		pi, ii := cell/len(infos), cell%len(infos)
		res, rerr := simsync.RunCounterIn(pool,
			machine.Config{Procs: procsList[pi], Topo: tp, Seed: o.seed()},
			infos[ii],
			simsync.CounterOpts{Incs: incs},
		)
		if rerr != nil {
			return rerr
		}
		results[cell] = res
		return nil
	})
	if err != nil {
		return Table{}, err
	}
	for pi, p := range procsList {
		row := []string{Fmt(float64(p))}
		var refs []string
		for ii := range infos {
			res := results[pi*len(infos)+ii]
			row = append(row, Fmt(res.CyclesPerInc))
			refs = append(refs, Fmt(res.TrafficPerInc))
		}
		row = append(row, refs...)
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
