// Package harness is the experiment driver: it knows every figure and
// table of the reconstructed evaluation, runs the matching simulated or
// real workload sweeps, and renders results as aligned text tables or
// CSV. cmd/syncbench is a thin CLI over this package.
package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is one figure or table of the evaluation, in row form.
type Table struct {
	ID    string   // experiment id, e.g. "F2"
	Title string   // human title
	Note  string   // expected shape from the 1991 literature
	Cols  []string // column headers
	Rows  [][]string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fmt formats a float for table cells: integers plainly, small values
// with sensible precision.
func Fmt(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e15:
		return fmt.Sprintf("%d", int64(v))
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "\n%s — %s\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "expected shape: %s\n", t.Note)
	}
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			sb.WriteString(strings.Repeat(" ", pad))
			sb.WriteString(c)
		}
		fmt.Fprintln(w, sb.String())
	}
	line(t.Cols)
	total := len(t.Cols) - 1
	for _, w := range widths {
		total += w + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		line(row)
	}
}

// WriteCSV writes the table in CSV form (header row first).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Cols); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a table previously written by WriteCSV: the first
// record becomes Cols, the rest Rows. ID/Title/Note are not stored in
// CSV form and come back empty; callers tracking results across runs
// (the perf-trajectory tooling) key tables by file name instead.
func ReadCSV(r io.Reader) (Table, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return Table{}, err
	}
	if len(records) == 0 {
		return Table{}, fmt.Errorf("harness: empty CSV table")
	}
	t := Table{Cols: records[0]}
	if len(records) > 1 {
		t.Rows = records[1:]
	}
	return t, nil
}
