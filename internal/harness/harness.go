package harness

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Options tune a harness run.
type Options struct {
	// Quick shrinks sweep sizes so the full suite finishes in seconds;
	// used by tests and smoke runs. Full mode matches EXPERIMENTS.md.
	Quick bool
	// Seed for all simulated sweeps (deterministic; default 1).
	Seed uint64
	// CSVDir, when non-empty, receives one <id>.csv per table.
	CSVDir string
	// Progress, when non-nil, receives one line per sweep point.
	Progress io.Writer
	// Algos, when non-empty, restricts registry-driven sweeps to the
	// named algorithms (the -algos= flag). Applied per family and
	// leniently: names from other families are ignored, and a family
	// with no match runs in full.
	Algos []string
	// Topos, when non-empty, selects the topologies the topology-axis
	// experiments cover (the -topo= flag), resolved strictly against
	// topo.Registry. Empty defaults per experiment: the X1/X2 axis
	// sweeps every registered non-ideal topology, and the per-topology
	// battery covers the non-canonical ones (everything beyond bus and
	// numa, which have their own canonical tables).
	Topos []string
	// Faults, when non-empty, selects the named fault levels (the
	// -faults= flag) the fault-axis experiments sweep, resolved strictly
	// against FaultLevels. Empty defaults per experiment: FT1/FT2 ramp
	// the fail-stop levels, FT3/FT4 the crash-recovery ones. FT1/FT2
	// reject the restart-carrying levels (R1, R2) — their fail-stop
	// runner is incarnation-blind; FT3/FT4 accept every level.
	Faults []string
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// progressMu serializes progress lines from concurrently running sweep
// cells, wherever the sweep was entered from (RunIDs or a direct
// Experiment.Run call). Progress is low-rate, so one process-wide lock
// costs nothing.
var progressMu sync.Mutex

func (o Options) progressf(format string, args ...interface{}) {
	if o.Progress != nil {
		progressMu.Lock()
		defer progressMu.Unlock()
		fmt.Fprintf(o.Progress, format, args...)
	}
}

// Experiment is one registry entry. An entry may regenerate several
// closely related tables (e.g. F1 and F2 come from the same sweep).
type Experiment struct {
	IDs   []string // table ids produced, e.g. ["F1","F2"]
	Title string
	Run   func(o Options) ([]Table, error)
}

// Registry returns all experiments in canonical order.
func Registry() []Experiment {
	return []Experiment{
		{IDs: []string{"T1"}, Title: "Uncontended lock latency (simulated cycles)", Run: runT1},
		{IDs: []string{"F1", "F2", "T4"}, Title: "Bus machine lock sweep: cycles, bus transactions, scaling exponents", Run: runBusLockSweep},
		{IDs: []string{"F3", "F4"}, Title: "NUMA machine lock sweep: cycles, remote references", Run: runNUMALockSweep},
		{IDs: []string{"F5"}, Title: "Backoff parameter sensitivity vs the mechanism", Run: runF5},
		{IDs: []string{"F6"}, Title: "Critical-section length crossover", Run: runF6},
		{IDs: []string{"F7"}, Title: "Barrier sweep, bus machine", Run: runF7},
		{IDs: []string{"F8"}, Title: "Barrier sweep, NUMA machine", Run: runF8},
		{IDs: []string{"F9", "F9-p50", "F9-p99", "F9-slow"}, Title: "Reader-writer throughput and latency percentiles vs read fraction (real runtime)", Run: runF9},
		{IDs: []string{"F10"}, Title: "Producer-consumer pipeline throughput (real runtime)", Run: runF10},
		{IDs: []string{"F11", "F11-p50", "F11-p99", "F11-slow"}, Title: "Real-runtime lock throughput and latency percentiles vs goroutines", Run: runF11},
		{IDs: []string{"F12"}, Title: "Spin vs spin-park under oversubscription (the futex story)", Run: runF12},
		{IDs: []string{"F13"}, Title: "Simulated reader-writer locks vs read fraction", Run: runF13},
		{IDs: []string{"F14"}, Title: "Simulated semaphores: bounded-buffer producer/consumer", Run: runF14},
		{IDs: []string{"F15"}, Title: "Hot-spot counter: fetch&add vs software combining", Run: runF15},
		{IDs: []string{"F16"}, Title: "Hot-spot counter at scale: sharded vs central", Run: runF16},
		{IDs: []string{"T2"}, Title: "Space cost per lock and per waiter", Run: runT2},
		{IDs: []string{"T3"}, Title: "Fairness: acquisition spread and FIFO inversions", Run: runT3},
		{IDs: []string{"A1"}, Title: "Ablation: machine timing-parameter sensitivity", Run: runA1},
		{IDs: []string{"X1", "X2"}, Title: "Lock sweep with machine topology as the matrix axis", Run: runTopoAxis},
		{IDs: []string{"SC1", "SC2"}, Title: "Scaling-law sweep: contended tas storm vs processor count across topologies", Run: runScalingSweep},
		{IDs: []string{"SAT1"}, Title: "Open-loop saturation: bare semaphore vs admission gate, tail latency vs offered rate", Run: runSAT1},
		{IDs: []string{"SAT2"}, Title: "Open-loop saturation with keyed pools: uniform vs hot-key mix", Run: runSAT2},
		{IDs: []string{"FT1", "FT2"}, Title: "Resilience under deterministic fault injection: outcomes and throughput vs fault level", Run: runFaultSweep},
		{IDs: []string{"FT3", "FT4"}, Title: "Crash recovery: lock and barrier availability, time-to-recovery, orphaned acquisitions under restart plans", Run: runRecoverySweep},
		{IDs: []string{"L1-cluster", "L2-cluster", "B1-cluster", "R1-cluster", "S1-cluster", "C1-cluster"},
			Title: "Full simulated battery per topology (default: every non-canonical registered topology; -topo selects)", Run: runTopoBattery},
	}
}

// IDList returns every table id in the registry, sorted.
func IDList() []string {
	var ids []string
	for _, e := range Registry() {
		ids = append(ids, e.IDs...)
	}
	sort.Strings(ids)
	return ids
}

// Lookup finds the experiment producing table id (case-insensitive, so
// "f2" and "l1-CLUSTER" both resolve).
func Lookup(id string) (Experiment, bool) {
	id = strings.TrimSpace(id)
	for _, e := range Registry() {
		for _, eid := range e.IDs {
			if strings.EqualFold(eid, id) {
				return e, true
			}
		}
	}
	return Experiment{}, false
}

// RunIDs runs the experiments producing the requested table ids (all of
// them when ids is empty), renders tables to w, and optionally writes
// CSVs. Duplicate experiments (two ids from one sweep) run once.
func RunIDs(ids []string, o Options, w io.Writer) error {
	var exps []Experiment
	if len(ids) == 0 {
		exps = Registry()
	} else {
		seen := map[string]bool{}
		for _, id := range ids {
			e, ok := Lookup(id)
			if !ok {
				return fmt.Errorf("harness: unknown experiment %q (known: %s)", id, strings.Join(IDList(), " "))
			}
			key := strings.Join(e.IDs, "+")
			if !seen[key] {
				seen[key] = true
				exps = append(exps, e)
			}
		}
	}
	for _, e := range exps {
		o.progressf("== running %s: %s\n", strings.Join(e.IDs, "+"), e.Title)
		tables, err := e.Run(o)
		if err != nil {
			return fmt.Errorf("harness: %s: %w", strings.Join(e.IDs, "+"), err)
		}
		for i := range tables {
			tables[i].Render(w)
			if o.CSVDir != "" {
				if err := writeCSVFile(o.CSVDir, tables[i]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func writeCSVFile(dir string, t Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}
