package harness

// Miscellaneous experiments: the hot-spot counter studies (F15's
// combining trade, F16's sharded-vs-central scalability sweep) and the
// T2 space-cost table.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/simsync"
	"repro/internal/topo"
)

// ---------------------------------------------------------------------
// F15 — hot-spot counter: software combining
// ---------------------------------------------------------------------

func runF15(o Options) ([]Table, error) {
	incs := 60
	procsList := []int{1, 4, 8, 16, 32, 64}
	if o.Quick {
		incs = 20
		procsList = []int{1, 4, 8}
	}
	// F15 is the Ultracomputer-era pairwise-combining story; it compares
	// exactly these two algorithms (F16 widens the field).
	infos, err := simsync.CounterSet.Select([]string{"ctr-fa", "ctr-combine"})
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:    "F15",
		Title: "Hot-spot counter on the NUMA machine: cycles per increment (no think time)",
		Note:  "a single fetch&add word saturates its home module as P grows; pairwise software combining halves the root pressure and wins past the crossover, at the price of idle-case latency (the Ultracomputer trade)",
		Cols:  []string{"P", "fetch&add", "combining", "fa/combining"},
	}
	results := make([]simsync.CounterResult, len(procsList)*len(infos))
	err = forEachCell(true, len(results), func(cell int, pool *machine.Pool) error {
		pi, ii := cell/len(infos), cell%len(infos)
		res, rerr := simsync.RunCounterIn(pool,
			machine.Config{Procs: procsList[pi], Topo: topo.NUMA, Seed: o.seed()},
			infos[ii],
			simsync.CounterOpts{Incs: incs},
		)
		if rerr != nil {
			return rerr
		}
		o.progressf("  %s P=%d: %.1f cyc/inc\n", infos[ii].Name, procsList[pi], res.CyclesPerInc)
		results[cell] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for pi, p := range procsList {
		row := []string{Fmt(float64(p))}
		var vals []float64
		for ii := range infos {
			res := results[pi*len(infos)+ii]
			row = append(row, Fmt(res.CyclesPerInc))
			vals = append(vals, res.CyclesPerInc)
		}
		row = append(row, fmt.Sprintf("%.2f", vals[0]/vals[1]))
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}

// ---------------------------------------------------------------------
// F16 — hot-spot counter at scale: sharded vs central
// ---------------------------------------------------------------------

// runF16 is the scalability sweep the sharded layer exists for: every
// registered counter discipline on the NUMA machine under maximum
// write pressure, with the headline ratio between the central
// fetch&add hot spot and the per-processor-striped counter. The
// striped counter's increments are local fetch&adds, so its cost stays
// flat while the central word's home module queues ever deeper.
func runF16(o Options) ([]Table, error) {
	incs, procsList := o.counterSweepSize()
	infos := algosFor(o, simsync.CounterSet)
	cols := []string{"P"}
	for _, info := range infos {
		cols = append(cols, info.Name+" cyc/inc")
	}
	for _, info := range infos {
		cols = append(cols, info.Name+" refs/inc")
	}
	haveRatio := containsName(infos, "ctr-fa") && containsName(infos, "ctr-sharded")
	if haveRatio {
		cols = append(cols, "fa/sharded")
	}
	t := Table{
		ID:    "F16",
		Title: "Hot-spot counter at scale on the NUMA machine: sharded vs central (no think time)",
		Note:  "striping moves every increment into the caller's own module: cycles and remote references per increment stay flat with P while the central fetch&add climbs; the ratio is the scalability headroom sharding buys",
		Cols:  cols,
	}
	results := make([]simsync.CounterResult, len(procsList)*len(infos))
	err := forEachCell(true, len(results), func(cell int, pool *machine.Pool) error {
		pi, ii := cell/len(infos), cell%len(infos)
		res, rerr := simsync.RunCounterIn(pool,
			machine.Config{Procs: procsList[pi], Topo: topo.NUMA, Seed: o.seed()},
			infos[ii],
			simsync.CounterOpts{Incs: incs},
		)
		if rerr != nil {
			return rerr
		}
		o.progressf("  %s P=%d: %.1f cyc/inc, %.2f refs/inc\n",
			infos[ii].Name, procsList[pi], res.CyclesPerInc, res.TrafficPerInc)
		results[cell] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for pi, p := range procsList {
		row := []string{Fmt(float64(p))}
		cycByName := make(map[string]float64, len(infos))
		var refs []string
		for ii, info := range infos {
			res := results[pi*len(infos)+ii]
			cycByName[info.Name] = res.CyclesPerInc
			row = append(row, Fmt(res.CyclesPerInc))
			refs = append(refs, Fmt(res.TrafficPerInc))
		}
		row = append(row, refs...)
		if haveRatio {
			row = append(row, fmt.Sprintf("%.2f", cycByName["ctr-fa"]/cycByName["ctr-sharded"]))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}

func containsName(infos []simsync.CounterInfo, name string) bool {
	for _, i := range infos {
		if i.Name == name {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// T2 — space costs
// ---------------------------------------------------------------------

func runT2(o Options) ([]Table, error) {
	lockB, waiterB, rwB, rwWaiterB := core.Footprint()
	t := Table{
		ID:    "T2",
		Title: "Space cost per primitive (simulated words are the paper's metric; bytes are this implementation)",
		Note:  "the mechanism: one word per lock plus one record per waiter; sharded variants trade S cache lines of space for contention-free stripes",
		Cols:  []string{"primitive", "sim words (lock)", "sim words (per waiter)", "real bytes (lock)", "real bytes (per waiter)"},
	}
	t.AddRow("tas/ttas/tas-bo", "1", "0", "4", "0")
	t.AddRow("ticket", "2", "0", "8", "0")
	t.AddRow("anderson", "P+1", "0", "64*P+8", "0")
	t.AddRow("qsync mutex", "1", "2", Fmt(float64(lockB)), Fmt(float64(waiterB)))
	t.AddRow("qsync rwmutex", "3", "2", Fmt(float64(rwB)), Fmt(float64(rwWaiterB)))
	t.AddRow("sharded counter", "P", "0", "64*S+32", "0")
	// Each shard is padded to a whole cache line; the header is a slice
	// plus the stripe mask.
	t.AddRow("sharded rwmutex", "3*S", "2", "64*S+32", Fmt(float64(rwWaiterB)))
	return []Table{t}, nil
}
