package harness

// Reader-writer sweeps: F9 (real runtime, over the locks.RWRegistry —
// the mechanism's fair lock, the sharded reader-biased lock, and the
// standard library) and F13 (simulated, over simsync.RWLockSet).

import (
	"fmt"
	"runtime"

	"repro/internal/locks"
	"repro/internal/machine"
	"repro/internal/simsync"
	"repro/internal/topo"
	"repro/internal/workload"
)

func runF9(o Options) ([]Table, error) {
	iters := 4000
	if o.Quick {
		iters = 400
	}
	gor := runtime.GOMAXPROCS(0)
	if gor > 16 {
		gor = 16
	}
	// The whole rwlock registry, rw-mutex baseline included — so the
	// baseline is selectable and filterable like any other backend.
	algos := algosFor(o, locks.RWRegistry)

	fracs := []float64{0, 0.5, 0.9, 0.99, 1}
	axis := make([]string, len(fracs))
	for i, f := range fracs {
		axis[i] = fmt.Sprintf("%.2f", f)
	}
	// Real runtime: cells time the host and must not run concurrently;
	// the watchdog turns a wedged lock into a "!timeout" cell. The
	// latency tables share the throughput table's cells.
	return runMatrixTimeout(realCellTimeout, algos, func(i locks.RWInfo) string { return i.Name },
		"read fraction", axis,
		[]metricSpec{{ID: "F9",
			Title: fmt.Sprintf("Reader-writer throughput (ops/s) vs read fraction (%d goroutines, real runtime)", gor),
			Note:  "rw locks overtake the plain mutex as the read fraction approaches 1; the sharded lock pulls ahead at high read fractions and pays for it on writes"},
			{ID: "F9-p50",
				Title: fmt.Sprintf("p50 section latency (ns) vs read fraction (%d goroutines, real runtime)", gor),
				Note:  "read-mostly mixes shrink the median as readers overlap"},
			{ID: "F9-p99",
				Title: fmt.Sprintf("p99 section latency (ns) vs read fraction (%d goroutines, real runtime)", gor),
				Note:  "the tail is the writers' story: writer-preference keeps it bounded at high read fractions, reader-biased designs let it stretch"},
			{ID: "F9-slow",
				Title: "contention proxy: fraction of sections slower than 2× the median",
				Note:  "≈0 when readers dominate and overlap; mixed fractions queue the most"}},
		func(ai int, info locks.RWInfo, _ *machine.Pool) ([]float64, error) {
			res, ok := workload.RunReadMix(info.New(gor), workload.RWOpts{
				Goroutines: gor, Iters: iters, ReadFraction: fracs[ai], Work: 300,
			})
			if !ok {
				return nil, fmt.Errorf("F9: %s invariant broken at fraction %v", info.Name, fracs[ai])
			}
			o.progressf("  rw %s frac=%.2f: %.0f ops/s\n", info.Name, fracs[ai], res.OpsPerSec)
			return []float64{res.OpsPerSec,
				float64(res.Lat.P50Ns), float64(res.Lat.P99Ns), res.Lat.SlowFrac}, nil
		})
}

// ---------------------------------------------------------------------
// F13 — simulated reader-writer locks
// ---------------------------------------------------------------------

func runF13(o Options) ([]Table, error) {
	p, iters := o.rwSweepSize()
	infos := algosFor(o, simsync.RWLockSet)
	cols := []string{"read fraction"}
	for _, info := range infos {
		cols = append(cols, info.Name+" cyc/op", info.Name+" txn/op")
	}
	t := Table{
		ID:    "F13",
		Title: fmt.Sprintf("Reader-writer locks on the bus machine at P=%d: cycles and transactions per operation", p),
		Note:  "reader sharing pays off as the read fraction rises; the fair queue variant adds bounded overhead and removes writer starvation",
		Cols:  cols,
	}
	fracs := rwFracs()
	results := make([]simsync.RWResult, len(fracs)*len(infos))
	err := forEachCell(true, len(results), func(cell int, pool *machine.Pool) error {
		fi, ii := cell/len(infos), cell%len(infos)
		res, rerr := simsync.RunRWIn(pool,
			machine.Config{Procs: p, Topo: topo.Bus, Seed: o.seed()},
			infos[ii],
			simRWOpts(iters, fracs[fi]),
		)
		if rerr != nil {
			return rerr
		}
		o.progressf("  rw %s frac=%.2f: %.0f cyc/op\n", infos[ii].Name, fracs[fi], res.CyclesPerOp)
		results[cell] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for fi, frac := range fracs {
		row := []string{fmt.Sprintf("%.2f", frac)}
		for ii := range infos {
			res := results[fi*len(infos)+ii]
			row = append(row, Fmt(res.CyclesPerOp), Fmt(res.TrafficPerOp))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}
