package harness

// Barrier-family sweeps: F7 (bus) and F8 (NUMA), both driven by the
// shared matrix driver over the simulated barrier registry.

import (
	"repro/internal/machine"
	"repro/internal/simsync"
	"repro/internal/topo"
)

func barrierSweep(o Options, tp topo.Topology, procsList []int, perProc bool, ms metricSpec) ([]Table, error) {
	return runMatrix(true, algosFor(o, simsync.BarrierSet),
		func(bi simsync.BarrierInfo) string { return bi.Name },
		"P", intAxis(procsList), []metricSpec{ms},
		func(ai int, bi simsync.BarrierInfo, pool *machine.Pool) ([]float64, error) {
			p := procsList[ai]
			res, err := simsync.RunBarrierIn(pool,
				machine.Config{Procs: p, Topo: tp, Seed: o.seed()},
				bi, simsync.BarrierOpts{Episodes: o.episodes(), Work: 150},
			)
			if err != nil {
				return nil, err
			}
			o.progressf("  %s %s P=%d: %.0f cyc/ep, %.1f traffic/ep\n",
				tp.Name(), bi.Name, p, res.CyclesPerEpisode, res.TrafficPerEpisode)
			if perProc {
				return []float64{res.TrafficPerEpisode / float64(p)}, nil
			}
			return []float64{res.CyclesPerEpisode}, nil
		})
}

func runF7(o Options) ([]Table, error) {
	return barrierSweep(o, topo.Bus, o.busProcs(), false, metricSpec{
		ID:    "F7",
		Title: "Barrier: cycles per episode vs processors (bus machine)",
		Note:  "on a bus, arrival counting is cheap and central stays competitive; dissemination's O(P log P) transactions make it the worst bus citizen (it exists for NUMA, see F8)",
	})
}

func runF8(o Options) ([]Table, error) {
	return barrierSweep(o, topo.NUMA, o.numaProcs(), true, metricSpec{
		ID:    "F8",
		Title: "Barrier: remote references per episode per processor (NUMA)",
		Note:  "structural counts for local-spin barriers: dissemination exactly ceil(log2 P), push-release trees ~2; central's polls are throttled by its own saturated module (its penalty is episode latency, not ref count)",
	})
}
