package harness

import (
	"strings"
	"testing"
)

func TestValidateFaults(t *testing.T) {
	if err := ValidateFaults([]string{"L0", "r1", "L3"}); err != nil {
		t.Fatalf("valid names rejected: %v", err)
	}
	err := ValidateFaults([]string{"L0", "L9"})
	if err == nil {
		t.Fatal("unknown level accepted")
	}
	if !strings.Contains(err.Error(), "L9") || !strings.Contains(err.Error(), "R2") {
		t.Fatalf("error should name the offender and the known levels: %v", err)
	}
}

func TestFaultLevelByNameCaseInsensitive(t *testing.T) {
	lv, ok := FaultLevelByName(" r2 ")
	if !ok || lv.Name != "R2" {
		t.Fatalf("got (%v, %v), want R2", lv.Name, ok)
	}
	if !lv.Recovery {
		t.Fatal("R2 must be a recovery level")
	}
	if _, ok := FaultLevelByName("nope"); ok {
		t.Fatal("unknown name resolved")
	}
}

// The fail-stop FT1/FT2 runner replays reborn processors' iterations
// and mis-reads a reborn holder as live, so the sweep must refuse the
// restart-carrying levels instead of producing corrupt cells (or a
// spurious mutual-exclusion abort).
func TestFaultSweepRejectsRecoveryLevels(t *testing.T) {
	o := Options{Quick: true, Faults: []string{"L0", "R1"}}
	_, err := runFaultSweep(o)
	if err == nil {
		t.Fatal("FT1/FT2 accepted a recovery level")
	}
	if !strings.Contains(err.Error(), "R1") || !strings.Contains(err.Error(), "FT3") {
		t.Fatalf("error should name the level and point at FT3/FT4: %v", err)
	}
}

// FT3/FT4 accept any mix of fail-stop and recovery levels.
func TestRecoverySweepAcceptsMixedLevels(t *testing.T) {
	o := Options{Quick: true, Faults: []string{"L2", "R1"}}
	tables, err := runRecoverySweep(o)
	if err != nil {
		t.Fatalf("runRecoverySweep: %v", err)
	}
	if len(tables) != 2 {
		t.Fatalf("got %d tables, want FT3+FT4", len(tables))
	}
	wantRows := 3 * 2 // topologies x selected levels
	for _, tb := range tables {
		if len(tb.Rows) != wantRows {
			t.Fatalf("%s: got %d rows, want %d", tb.ID, len(tb.Rows), wantRows)
		}
	}
}
