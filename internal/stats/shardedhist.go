package stats

import (
	"sync"
	"sync/atomic"
)

// ShardedHist is the shared-recorder variant of Hist for callers whose
// recording goroutines are anonymous and short-lived (HTTP handlers,
// the open-loop generator's one-goroutine-per-arrival ops), where
// per-worker histograms have no owner to merge. Recording picks a
// stripe by try-lock sweep from a rotating start, so concurrent
// recorders land on different stripes instead of convoying on one
// mutex; the blocking lock on the hint stripe is only the fallback
// when every stripe is busy.
//
// This is deliberately heavier than Hist.Record (one atomic add plus a
// try-lock): use Hist directly when each worker can own one.
type ShardedHist struct {
	stripes []histStripe
	mask    uint32
	next    atomic.Uint32
}

type histStripe struct {
	mu sync.Mutex
	h  Hist
	// The Hist is 15 KiB, so stripes never share a cache line; no
	// padding needed.
}

// NewShardedHist returns a recorder with at least stripes stripes
// (rounded up to a power of two); stripes <= 0 picks 8.
func NewShardedHist(stripes int) *ShardedHist {
	if stripes <= 0 {
		stripes = 8
	}
	n := 1
	for n < stripes {
		n <<= 1
	}
	return &ShardedHist{stripes: make([]histStripe, n), mask: uint32(n - 1)}
}

// Record adds one sample to some stripe.
func (s *ShardedHist) Record(v int64) {
	start := s.next.Add(1)
	for i := uint32(0); i < uint32(len(s.stripes)); i++ {
		st := &s.stripes[(start+i)&s.mask]
		if st.mu.TryLock() {
			st.h.Record(v)
			st.mu.Unlock()
			return
		}
	}
	st := &s.stripes[start&s.mask]
	st.mu.Lock()
	st.h.Record(v)
	st.mu.Unlock()
}

// Snapshot merges the stripes into one Hist. It locks each stripe in
// turn, so concurrent with recorders it is the usual
// linearizable-enough statistics read: every Record completed before
// Snapshot began is included.
func (s *ShardedHist) Snapshot() *Hist {
	out := new(Hist)
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		out.Merge(&st.h)
		st.mu.Unlock()
	}
	return out
}
