package stats

// Fixed-bucket log-spaced latency histogram. The harness records one
// latency per operation inside tight loops, so the recorder must be
// allocation-free and branch-light; the load generator runs many
// workers, so histograms must merge exactly; and the tables report
// p50/p95/p99, so quantiles need a known, bounded relative error.
//
// Bucket layout (HDR-style, base 2): values below histSub are exact
// (one bucket per integer). Above that, each power-of-two octave is
// split into histSub linear sub-buckets, so a bucket's width is at
// most 1/histSub of its lower edge. Quantile reports a bucket's upper
// edge, giving the documented one-sided bound: for the nearest-rank
// sample x at that quantile,
//
//	x <= Quantile(p) <= x * (1 + 1/histSub)
//
// (exact for x < histSub). With histSub = 32 that is a worst-case
// overestimate of 3.125% — far below run-to-run latency noise — from a
// fixed 15 KiB count array that covers every non-negative int64
// without configuration.

import "math/bits"

const (
	// histSubBits fixes the sub-bucket resolution: 2^histSubBits
	// linear sub-buckets per octave, hence a 1/histSub relative-error
	// bound on Quantile.
	histSubBits = 5
	histSub     = 1 << histSubBits

	// histBuckets covers all of int64: the top value (2^63 - 1) lands
	// in exponent 63-1-histSubBits = 57, and each exponent e >= 0
	// contributes histSub buckets starting at index (e+1)*histSub.
	histMaxExp  = 63 - 1 - histSubBits
	histBuckets = (histMaxExp + 2) * histSub
)

// Hist is the fixed-bucket log-spaced histogram. The zero value is
// ready to use; Record never allocates. Hist is not concurrency-safe —
// give each worker its own and Merge them (see ShardedHist for the
// shared-recorder variant).
type Hist struct {
	counts [histBuckets]uint64
	total  uint64
	sum    int64
}

// histIndex maps a non-negative value to its bucket.
func histIndex(v int64) int {
	if v < histSub {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 - histSubBits
	return e<<histSubBits + int(v>>uint(e))
}

// histUpper is the largest value a bucket holds (the value Quantile
// reports).
func histUpper(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	e := uint(idx>>histSubBits - 1)
	sub := int64(idx - int(e)<<histSubBits)
	return (sub+1)<<e - 1
}

// Record adds one sample. Negative values clamp to zero (latencies can
// come out negative from clock adjustments; they mean "fast"). The hot
// path is a bit-scan, two adds, and one array increment — zero
// allocations.
func (h *Hist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[histIndex(v)]++
	h.total++
	h.sum += v
}

// Count reports the number of recorded samples.
func (h *Hist) Count() uint64 { return h.total }

// Sum reports the running sum of recorded samples (saturation is the
// caller's concern; latencies in ns overflow int64 only after ~292
// years of recorded time).
func (h *Hist) Sum() int64 { return h.sum }

// Mean reports the exact mean of recorded samples (the sum is kept
// outside the buckets, so the mean carries no bucketing error).
func (h *Hist) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Merge adds o's samples into h. Merging is exact (bucket-wise
// addition), so it is associative and commutative: any merge tree over
// per-worker histograms yields the same histogram.
func (h *Hist) Merge(o *Hist) {
	for i, c := range o.counts {
		if c != 0 {
			h.counts[i] += c
		}
	}
	h.total += o.total
	h.sum += o.sum
}

// Reset clears the histogram for reuse.
func (h *Hist) Reset() { *h = Hist{} }

// CountAbove reports how many recorded samples are known to exceed v:
// the count of all buckets strictly above v's bucket. Samples sharing
// v's bucket are excluded, so the result is a one-sided lower bound
// with the same 1/histSub relative resolution as Quantile — a sample
// must exceed v's bucket upper edge (at most v*(1+1/histSub)) to be
// counted. The intended use is the contention proxy "operations slower
// than k× the median", where v comes from Quantile and the two
// roundings compose consistently: Quantile reports an upper edge, so
// CountAbove(k*Quantile(p)) never counts a sample the threshold merely
// brushed.
func (h *Hist) CountAbove(v int64) uint64 {
	if v < 0 {
		v = 0
	}
	var n uint64
	for i := histIndex(v) + 1; i < histBuckets; i++ {
		n += h.counts[i]
	}
	return n
}

// Quantile returns the p-quantile (0 <= p <= 1) as the upper edge of
// the bucket holding the nearest-rank sample, so it never
// underestimates and overestimates by at most a factor of 1+1/histSub
// (see the package comment for the derivation). An empty histogram
// reports 0.
func (h *Hist) Quantile(p float64) int64 {
	if h.total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	// Nearest-rank: the ceil(p*n)-th smallest sample, at least the 1st.
	target := uint64(p * float64(h.total))
	if float64(target) < p*float64(h.total) {
		target++
	}
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			return histUpper(i)
		}
	}
	// Unreachable: cum == h.total >= target after the loop.
	return histUpper(histBuckets - 1)
}
