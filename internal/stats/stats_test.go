package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}

func TestStddev(t *testing.T) {
	if Stddev([]float64{5}) != 0 {
		t.Fatal("Stddev of one sample should be 0")
	}
	got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !approx(got, 2.138, 0.01) {
		t.Fatalf("Stddev = %v, want ~2.138", got)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Fatalf("MinMax = %v,%v", min, max)
	}
	min, max = MinMax(nil)
	if min != 0 || max != 0 {
		t.Fatal("MinMax(nil) should be zeros")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 10 {
		t.Fatalf("P100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 5.5 {
		t.Fatalf("P50 = %v, want 5.5", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("Percentile(nil) != 0")
	}
	// Out-of-range p clamps.
	if got := Percentile(xs, -5); got != 1 {
		t.Fatalf("P-5 = %v", got)
	}
	if got := Percentile(xs, 150); got != 10 {
		t.Fatalf("P150 = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestCI95(t *testing.T) {
	if CI95([]float64{1}) != 0 {
		t.Fatal("CI95 of one sample should be 0")
	}
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i % 2) // sd ~0.5, n=100 -> CI ~0.098
	}
	if got := CI95(xs); !approx(got, 0.0985, 0.01) {
		t.Fatalf("CI95 = %v, want ~0.0985", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Fatalf("Summary = %+v", s)
	}
	if !strings.Contains(s.String(), "n=3") {
		t.Fatal("Summary.String missing n")
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 1 + 2x
	f := LinearFit(xs, ys)
	if !approx(f.Slope, 2, 1e-9) || !approx(f.Intercept, 1, 1e-9) || !approx(f.R2, 1, 1e-9) {
		t.Fatalf("fit = %+v", f)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if f := LinearFit([]float64{1}, []float64{2}); f != (Fit{}) {
		t.Fatal("fit of one point should be zero")
	}
	f := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3})
	if f.Slope != 0 || f.Intercept != 2 {
		t.Fatalf("vertical data fit = %+v", f)
	}
	// Constant y: slope 0, perfect fit.
	f = LinearFit([]float64{1, 2, 3}, []float64{5, 5, 5})
	if f.Slope != 0 || f.R2 != 1 {
		t.Fatalf("constant-y fit = %+v", f)
	}
}

func TestPowerLawExponent(t *testing.T) {
	// y = 3 * x^1.7
	var xs, ys []float64
	for x := 1.0; x <= 64; x *= 2 {
		xs = append(xs, x)
		ys = append(ys, 3*math.Pow(x, 1.7))
	}
	k, r2 := PowerLawExponent(xs, ys)
	if !approx(k, 1.7, 1e-6) || !approx(r2, 1, 1e-9) {
		t.Fatalf("exponent = %v r2 = %v", k, r2)
	}
}

func TestPowerLawSkipsNonPositive(t *testing.T) {
	k, _ := PowerLawExponent([]float64{0, 1, 2, 4}, []float64{5, 1, 2, 4})
	if !approx(k, 1, 1e-9) {
		t.Fatalf("exponent = %v, want 1", k)
	}
}

func TestHistogram(t *testing.T) {
	out := Histogram([]float64{1, 1, 2, 3, 3, 3}, 3, 20)
	if !strings.Contains(out, "#") {
		t.Fatal("histogram has no bars")
	}
	if Histogram(nil, 3, 20) != "(no data)\n" {
		t.Fatal("empty histogram output wrong")
	}
	// Constant data must not divide by zero.
	if out := Histogram([]float64{2, 2, 2}, 4, 10); !strings.Contains(out, "3") {
		t.Fatalf("constant histogram: %q", out)
	}
}

// Property: mean lies within [min, max]; stddev is non-negative.
func TestMeanBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		min, max := MinMax(xs)
		return m >= min-1e-6 && m <= max+1e-6 && Stddev(xs) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: percentiles are monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(xs, pa) <= Percentile(xs, pb)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
