package stats

import (
	"math"
	"reflect"
	"sort"
	"sync"
	"testing"
)

// splitmix64 gives the tests their own deterministic stream.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// logUniform draws values spread across many octaves — the shape that
// stresses log-spaced buckets (latencies span ns to seconds).
func logUniform(s *uint64) int64 {
	shift := splitmix64(s) % 40
	return int64(splitmix64(s) % (uint64(1)<<(shift+1) | 1))
}

func TestHistIndexRoundTrip(t *testing.T) {
	// Every value must land in a bucket whose bounds contain it, and
	// the bucket's width must respect the relative-error bound.
	var s uint64 = 7
	vals := []int64{0, 1, 31, 32, 33, 63, 64, 65, 1023, 1 << 20, math.MaxInt64}
	for i := 0; i < 2000; i++ {
		vals = append(vals, logUniform(&s))
	}
	for _, v := range vals {
		idx := histIndex(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("histIndex(%d) = %d out of range", v, idx)
		}
		up := histUpper(idx)
		if v > up {
			t.Fatalf("value %d above its bucket's upper edge %d", v, up)
		}
		if idx > 0 && histUpper(idx-1) >= v {
			t.Fatalf("value %d at or below the previous bucket's upper edge %d", v, histUpper(idx-1))
		}
		// Width bound: upper <= v * (1 + 1/histSub) for v >= histSub.
		if v >= histSub && up-v > v/histSub {
			t.Fatalf("bucket upper %d exceeds %d * (1+1/%d)", up, v, histSub)
		}
		if v < histSub && up != v {
			t.Fatalf("small value %d not exact: upper %d", v, up)
		}
	}
}

// TestHistQuantileBound is the property test pinning Quantile against
// the sort-based reference: for random log-uniform samples, Quantile
// must sit between the nearest-rank order statistic and that statistic
// scaled by the documented 1+1/histSub error bound, and must sandwich
// against stats.Percentile evaluated one rank either side (Percentile
// interpolates between ranks, so the comparison widens by one rank,
// not by any value tolerance).
func TestHistQuantileBound(t *testing.T) {
	var s uint64 = 42
	for trial := 0; trial < 20; trial++ {
		n := 100 + int(splitmix64(&s)%5000)
		vals := make([]int64, n)
		var h Hist
		fs := make([]float64, n)
		for i := range vals {
			vals[i] = logUniform(&s)
			h.Record(vals[i])
			fs[i] = float64(vals[i])
		}
		sorted := append([]int64(nil), vals...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, p := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
			q := h.Quantile(p)
			// Nearest-rank reference.
			rank := int(math.Ceil(p * float64(n)))
			if rank < 1 {
				rank = 1
			}
			truth := sorted[rank-1]
			if q < truth {
				t.Fatalf("trial %d p=%v: Quantile %d below nearest-rank sample %d", trial, p, q, truth)
			}
			if q > truth+truth/histSub {
				t.Fatalf("trial %d p=%v: Quantile %d exceeds error bound on %d (max %d)",
					trial, p, q, truth, truth+truth/histSub)
			}
			// Sort-based Percentile sandwich, one rank of slack for its
			// interpolation.
			slack := 100.0 / float64(n)
			lo := Percentile(fs, math.Max(0, p*100-slack))
			hi := Percentile(fs, math.Min(100, p*100+slack))
			if float64(q) < lo {
				t.Fatalf("trial %d p=%v: Quantile %d below Percentile lower sandwich %g", trial, p, q, lo)
			}
			if float64(q) > hi*(1+1.0/histSub)+1 {
				t.Fatalf("trial %d p=%v: Quantile %d above Percentile upper sandwich %g", trial, p, q, hi)
			}
		}
	}
}

func TestHistMergeAssociative(t *testing.T) {
	var s uint64 = 9
	mk := func() *Hist {
		h := new(Hist)
		n := int(splitmix64(&s) % 3000)
		for i := 0; i < n; i++ {
			h.Record(logUniform(&s))
		}
		return h
	}
	a, b, c := mk(), mk(), mk()
	clone := func(h *Hist) *Hist { cp := *h; return &cp }

	left := clone(a)
	left.Merge(b)
	left.Merge(c)

	bc := clone(b)
	bc.Merge(c)
	right := clone(a)
	right.Merge(bc)

	if !reflect.DeepEqual(left, right) {
		t.Fatal("(a+b)+c != a+(b+c)")
	}

	comm := clone(b)
	comm.Merge(a)
	ab := clone(a)
	ab.Merge(b)
	if !reflect.DeepEqual(ab, comm) {
		t.Fatal("a+b != b+a")
	}
	if want := a.Count() + b.Count() + c.Count(); left.Count() != want {
		t.Fatalf("merged count %d, want %d", left.Count(), want)
	}
	if want := a.Sum() + b.Sum() + c.Sum(); left.Sum() != want {
		t.Fatalf("merged sum %d, want %d", left.Sum(), want)
	}
}

// TestHistRecordAllocs is the allocation-budget test: Record must be
// allocation-free so it can sit inside per-op hot loops.
func TestHistRecordAllocs(t *testing.T) {
	h := new(Hist)
	var s uint64 = 3
	vals := make([]int64, 256)
	for i := range vals {
		vals[i] = logUniform(&s)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for _, v := range vals {
			h.Record(v)
		}
	})
	if allocs != 0 {
		t.Fatalf("Record allocates: %v allocs per 256 records, want 0", allocs)
	}
}

func TestHistEdgeCases(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not zero")
	}
	h.Record(-5) // clamps to 0
	if h.Quantile(1) != 0 {
		t.Fatalf("negative record did not clamp: q100=%d", h.Quantile(1))
	}
	h.Record(7)
	if got := h.Quantile(1); got != 7 {
		t.Fatalf("q100 = %d, want 7 (exact below %d)", got, histSub)
	}
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("q0 = %d, want 0", got)
	}
	if got := h.Mean(); got != 3.5 {
		t.Fatalf("mean = %v, want 3.5", got)
	}
	h.Record(math.MaxInt64)
	if got := h.Quantile(1); got != math.MaxInt64 {
		t.Fatalf("max-value quantile = %d", got)
	}
	h.Reset()
	if h.Count() != 0 || h.Quantile(1) != 0 {
		t.Fatal("Reset did not clear")
	}
}

// TestHistCountAbove pins the one-sided bound: samples strictly above
// the threshold's bucket are counted, samples at or below the
// threshold never are, and in the exact region (values < histSub) the
// count is precise.
func TestHistCountAbove(t *testing.T) {
	var h Hist
	for v := int64(0); v < 10; v++ {
		h.Record(v)
	}
	if got := h.CountAbove(4); got != 5 { // 5..9
		t.Fatalf("exact-region CountAbove(4) = %d, want 5", got)
	}
	if got := h.CountAbove(9); got != 0 {
		t.Fatalf("CountAbove(max) = %d, want 0", got)
	}
	if got := h.CountAbove(-3); got != 9 { // clamps to 0; 1..9 exceed it
		t.Fatalf("CountAbove(-3) = %d, want 9", got)
	}

	// Log region: never count a sample the threshold's bucket contains,
	// always count samples in strictly higher buckets.
	var g Hist
	var s uint64 = 11
	vals := make([]int64, 4096)
	for i := range vals {
		vals[i] = logUniform(&s)
		g.Record(vals[i])
	}
	for _, thr := range []int64{100, 10_000, 1 << 30} {
		got := g.CountAbove(thr)
		var exact, safe uint64 // exact count above thr; count above thr's bucket edge
		edge := histUpper(histIndex(thr))
		for _, v := range vals {
			if v > thr {
				exact++
			}
			if v > edge {
				safe++
			}
		}
		if got != safe {
			t.Errorf("CountAbove(%d) = %d, want %d (above bucket edge %d)", thr, got, safe, edge)
		}
		if got > exact {
			t.Errorf("CountAbove(%d) = %d overcounts: only %d samples exceed it", thr, got, exact)
		}
	}
}

func TestShardedHist(t *testing.T) {
	sh := NewShardedHist(4)
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			var s = uint64(w + 1)
			for i := 0; i < per; i++ {
				sh.Record(logUniform(&s))
			}
		}()
	}
	wg.Wait()
	h := sh.Snapshot()
	if got := h.Count(); got != workers*per {
		t.Fatalf("snapshot count = %d, want %d (lost records)", got, workers*per)
	}
}

func BenchmarkHistRecord(b *testing.B) {
	var h Hist
	var s uint64 = 11
	vals := make([]int64, 1024)
	for i := range vals {
		vals[i] = logUniform(&s)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record(vals[i&1023])
	}
}

func BenchmarkHistQuantile(b *testing.B) {
	var h Hist
	var s uint64 = 11
	for i := 0; i < 100000; i++ {
		h.Record(logUniform(&s))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Quantile(0.99)
	}
}

func BenchmarkShardedHistRecord(b *testing.B) {
	sh := NewShardedHist(0)
	b.RunParallel(func(pb *testing.PB) {
		var s uint64 = 5
		for pb.Next() {
			sh.Record(logUniform(&s))
		}
	})
}
