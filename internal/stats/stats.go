// Package stats provides the small statistical toolkit the benchmark
// harness needs: summary statistics, percentiles, confidence intervals,
// least-squares fits (for scaling exponents), and text histograms.
// Standard library only.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the sample standard deviation (n-1 denominator), or 0
// for fewer than two samples.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// MinMax returns the extremes of xs; both zero for an empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks. It copies xs; the input is not
// disturbed.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CI95 returns the half-width of the 95% confidence interval of the
// mean under a normal approximation (1.96 sigma / sqrt(n)).
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * Stddev(xs) / math.Sqrt(float64(len(xs)))
}

// Summary bundles the usual descriptive statistics.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
	P50    float64
	P95    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	min, max := MinMax(xs)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Stddev: Stddev(xs),
		Min:    min,
		Max:    max,
		P50:    Percentile(xs, 50),
		P95:    Percentile(xs, 95),
	}
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3g sd=%.3g min=%.3g p50=%.3g p95=%.3g max=%.3g",
		s.N, s.Mean, s.Stddev, s.Min, s.P50, s.P95, s.Max)
}

// Fit is a least-squares line y = Intercept + Slope*x with the
// coefficient of determination.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinearFit fits ys against xs by ordinary least squares. The slices
// must have equal length of at least two, or the zero Fit is returned.
func LinearFit(xs, ys []float64) Fit {
	n := len(xs)
	if n < 2 || n != len(ys) {
		return Fit{}
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{Intercept: my}
	}
	slope := sxy / sxx
	f := Fit{Slope: slope, Intercept: my - slope*mx}
	if syy == 0 {
		f.R2 = 1
	} else {
		f.R2 = (sxy * sxy) / (sxx * syy)
	}
	return f
}

// PowerLawExponent fits y = c * x^k on log-log axes and returns k with
// its R². Non-positive values are skipped. This is how the harness
// extracts scaling exponents (T4) the way the era's papers eyeballed
// slopes on log-log figures.
func PowerLawExponent(xs, ys []float64) (k, r2 float64) {
	var lx, ly []float64
	for i := range xs {
		if i < len(ys) && xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	f := LinearFit(lx, ly)
	return f.Slope, f.R2
}

// Histogram renders a fixed-width text histogram of xs with the given
// number of buckets, suitable for terminal output.
func Histogram(xs []float64, buckets int, width int) string {
	if len(xs) == 0 || buckets < 1 {
		return "(no data)\n"
	}
	if width < 1 {
		width = 40
	}
	min, max := MinMax(xs)
	span := max - min
	if span == 0 {
		span = 1
	}
	counts := make([]int, buckets)
	for _, x := range xs {
		b := int((x - min) / span * float64(buckets))
		if b >= buckets {
			b = buckets - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	peak := 0
	for _, c := range counts {
		if c > peak {
			peak = c
		}
	}
	var sb strings.Builder
	for b, c := range counts {
		lo := min + span*float64(b)/float64(buckets)
		hi := min + span*float64(b+1)/float64(buckets)
		bar := 0
		if peak > 0 {
			bar = c * width / peak
		}
		fmt.Fprintf(&sb, "[%10.3g, %10.3g) %6d %s\n", lo, hi, c, strings.Repeat("#", bar))
	}
	return sb.String()
}
