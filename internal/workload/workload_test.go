package workload

import (
	"testing"

	"repro/internal/barriers"
	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/sharded"
)

func TestRunCriticalSections(t *testing.T) {
	info, _ := locks.ByName("qsync-park")
	res, ok := RunCriticalSections(info.New(8), CSOpts{
		Goroutines: 8, Iters: 500, CSWork: 5, ThinkWork: 5,
	})
	if !ok {
		t.Fatal("mutual exclusion violated")
	}
	if res.Total != 8*500 {
		t.Fatalf("total = %d", res.Total)
	}
	if res.NsPerOp <= 0 || res.OpsPerSec <= 0 {
		t.Fatalf("bad rates: %+v", res)
	}
}

func TestRunCriticalSectionsAllLocks(t *testing.T) {
	for _, info := range locks.All() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			t.Parallel()
			_, ok := RunCriticalSections(info.New(4), CSOpts{
				Goroutines: 4, Iters: 300, CSWork: 2,
			})
			if !ok {
				t.Fatalf("%s violated mutual exclusion", info.Name)
			}
		})
	}
}

func TestRunReadMix(t *testing.T) {
	for _, info := range locks.RWLocks() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			t.Parallel()
			for _, frac := range []float64{0, 0.5, 0.9, 1} {
				res, ok := RunReadMix(info.New(6), RWOpts{
					Goroutines: 6, Iters: 400, ReadFraction: frac, Work: 3,
				})
				if !ok {
					t.Fatalf("read fraction %v: invariant broken", frac)
				}
				if res.Reads+res.Writes != 6*400 {
					t.Fatalf("ops lost: %d + %d", res.Reads, res.Writes)
				}
				// The mix should track the requested fraction loosely.
				got := float64(res.Reads) / float64(res.Reads+res.Writes)
				if frac == 0 && got != 0 {
					t.Fatalf("frac 0 produced reads")
				}
				if frac == 1 && got != 1 {
					t.Fatalf("frac 1 produced writes")
				}
			}
		})
	}
}

func TestRunCounterHotspot(t *testing.T) {
	for _, tc := range []struct {
		name string
		c    AddLoader
	}{
		{"central", sharded.NewCentralCounter()},
		{"sharded", sharded.NewCounter(0)},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			res, ok := RunCounterHotspot(tc.c, CounterOpts{Goroutines: 8, Iters: 2000})
			if !ok {
				t.Fatalf("%s lost updates", tc.name)
			}
			if res.Total != 8*2000 || res.OpsPerSec <= 0 {
				t.Fatalf("bad result: %+v", res)
			}
		})
	}
}

func TestRunBarrierPhases(t *testing.T) {
	for _, info := range barriers.All() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			t.Parallel()
			res, ok := RunBarrierPhases(info.New(6), BarrierOpts{
				Parties: 6, Phases: 100, Work: 10,
			})
			if !ok {
				t.Fatalf("%s released early", info.Name)
			}
			if res.NsPerWait <= 0 {
				t.Fatalf("bad NsPerWait: %v", res.NsPerWait)
			}
		})
	}
}

func TestRunPipeline(t *testing.T) {
	for _, mode := range []core.WaitMode{core.SpinPark, core.Spin} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			res := RunPipeline(PipelineOpts{
				Producers: 4, Consumers: 4, Items: 5000, Capacity: 16, Mode: mode,
			})
			if !res.SumValidated {
				t.Fatal("pipeline checksum mismatch: items lost or duplicated")
			}
			if res.ItemsPerSec <= 0 {
				t.Fatalf("bad throughput: %v", res.ItemsPerSec)
			}
		})
	}
}

func TestRunPipelineTinyCapacity(t *testing.T) {
	res := RunPipeline(PipelineOpts{
		Producers: 3, Consumers: 2, Items: 2000, Capacity: 1, Mode: core.SpinPark,
	})
	if !res.SumValidated {
		t.Fatal("capacity-1 pipeline checksum mismatch")
	}
}

func TestRunPipelineUnbalanced(t *testing.T) {
	res := RunPipeline(PipelineOpts{
		Producers: 1, Consumers: 7, Items: 3000, Capacity: 8, Mode: core.SpinPark,
	})
	if !res.SumValidated {
		t.Fatal("unbalanced pipeline checksum mismatch")
	}
}
