// Package workload generates the real-runtime workloads the experiments
// run: contended critical sections, read-mostly mixes, barrier-phased
// computations, and bounded-buffer pipelines. Each runner returns
// throughput figures the harness turns into tables.
package workload

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/barriers"
	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/stats"
)

// LatSummary condenses a per-operation latency distribution for the
// table columns the real-runtime sweeps print. Each worker records into
// its own stats.Hist (allocation-free in the hot loop) and the runner
// merges them, so the quantiles carry the histogram's documented
// ≤1/32 one-sided relative error and nothing depends on goroutine
// interleaving beyond the latencies themselves.
type LatSummary struct {
	P50Ns int64
	P99Ns int64
	// SlowFrac is the contention proxy: the fraction of operations
	// slower than twice the median. An uncontended run keeps nearly
	// every op within its own service time, so the mass beyond 2×p50 is
	// (to first order) the queueing tail.
	SlowFrac float64
}

// summarizeLat folds merged per-worker histograms into a LatSummary.
func summarizeLat(hists []stats.Hist) LatSummary {
	var h stats.Hist
	for i := range hists {
		h.Merge(&hists[i])
	}
	if h.Count() == 0 {
		return LatSummary{}
	}
	p50 := h.Quantile(0.5)
	return LatSummary{
		P50Ns:    p50,
		P99Ns:    h.Quantile(0.99),
		SlowFrac: float64(h.CountAbove(2*p50)) / float64(h.Count()),
	}
}

// spin burns roughly n loop iterations of local work.
func spin(n int) {
	for i := 0; i < n; i++ {
		if sink.Load() > 1<<62 {
			sink.Store(0)
		}
	}
}

var sink atomic.Int64

// CSResult reports a critical-section workload run.
type CSResult struct {
	Goroutines int
	Total      int64         // total acquisitions
	Elapsed    time.Duration // wall time
	NsPerOp    float64
	OpsPerSec  float64
	Lat        LatSummary // per acquire→release pair, think time excluded
}

// CSOpts configures RunCriticalSections.
type CSOpts struct {
	Goroutines int
	Iters      int // per goroutine
	CSWork     int // spin units inside the critical section
	ThinkWork  int // spin units outside
}

// RunCriticalSections drives a contended lock and reports throughput.
// It also verifies mutual exclusion with an unprotected counter: on any
// violation the count will (overwhelmingly likely) come up short, which
// callers should treat as a failed run.
func RunCriticalSections(l locks.Lock, o CSOpts) (CSResult, bool) {
	counter := 0
	// One histogram per goroutine: Record is allocation-free and the
	// pair of clock reads it costs per op is identical for every lock
	// under test, so the columns stay comparable.
	hists := make([]stats.Hist, o.Goroutines)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < o.Goroutines; g++ {
		h := &hists[g]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < o.Iters; i++ {
				t0 := time.Now()
				l.Lock()
				counter++
				if o.CSWork > 0 {
					spin(o.CSWork)
				}
				l.Unlock()
				h.Record(time.Since(t0).Nanoseconds())
				if o.ThinkWork > 0 {
					spin(o.ThinkWork)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	total := int64(o.Goroutines) * int64(o.Iters)
	res := CSResult{
		Goroutines: o.Goroutines,
		Total:      total,
		Elapsed:    elapsed,
		NsPerOp:    float64(elapsed.Nanoseconds()) / float64(total),
		OpsPerSec:  float64(total) / elapsed.Seconds(),
		Lat:        summarizeLat(hists),
	}
	return res, counter == int(total)
}

// RWResult reports a read/write mix run.
type RWResult struct {
	ReadFraction float64
	Reads        int64
	Writes       int64
	Elapsed      time.Duration
	OpsPerSec    float64
	Lat          LatSummary // per section (read or write), entry to exit
}

// RWOpts configures RunReadMix.
type RWOpts struct {
	Goroutines   int
	Iters        int     // per goroutine
	ReadFraction float64 // 0..1
	Work         int     // spin units inside each section
}

// RunReadMix drives any registered reader-writer lock with the given
// read fraction and verifies the invariant that writers keep two
// variables equal. The boolean result is false if a reader ever saw the
// invariant broken.
func RunReadMix(rw locks.RWLock, o RWOpts) (RWResult, bool) {
	x, y := 0, 0
	var bad atomic.Int32
	var reads, writes atomic.Int64
	hists := make([]stats.Hist, o.Goroutines)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < o.Goroutines; g++ {
		g := g
		h := &hists[g]
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Deterministic per-goroutine operation mix.
			rng := uint64(g)*0x9e3779b97f4a7c15 + 1
			for i := 0; i < o.Iters; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				t0 := time.Now()
				if float64(rng%1000) < o.ReadFraction*1000 {
					tok := rw.RLock()
					if x != y {
						bad.Add(1)
					}
					if o.Work > 0 {
						spin(o.Work)
					}
					rw.RUnlock(tok)
					reads.Add(1)
				} else {
					rw.Lock()
					x++
					if o.Work > 0 {
						spin(o.Work)
					}
					y++
					rw.Unlock()
					writes.Add(1)
				}
				h.Record(time.Since(t0).Nanoseconds())
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	total := reads.Load() + writes.Load()
	res := RWResult{
		ReadFraction: o.ReadFraction,
		Reads:        reads.Load(),
		Writes:       writes.Load(),
		Elapsed:      elapsed,
		OpsPerSec:    float64(total) / elapsed.Seconds(),
		Lat:          summarizeLat(hists),
	}
	return res, bad.Load() == 0 && x == y && int64(x) == writes.Load()
}

// BarrierResult reports a phased-computation run.
type BarrierResult struct {
	Parties   int
	Phases    int
	Elapsed   time.Duration
	NsPerWait float64
}

// BarrierOpts configures RunBarrierPhases.
type BarrierOpts struct {
	Parties int
	Phases  int
	Work    int // spin units per phase per party
}

// RunBarrierPhases drives an identified-party barrier through phased
// work, verifying no early release. The boolean result is the safety
// verdict.
func RunBarrierPhases(b barriers.Barrier, o BarrierOpts) (BarrierResult, bool) {
	arrivals := make([]atomic.Int32, o.Phases)
	var bad atomic.Int32
	var wg sync.WaitGroup
	start := time.Now()
	for id := 0; id < o.Parties; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ph := 0; ph < o.Phases; ph++ {
				if o.Work > 0 {
					spin(o.Work)
				}
				arrivals[ph].Add(1)
				b.Wait(id)
				if arrivals[ph].Load() != int32(o.Parties) {
					bad.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	return BarrierResult{
		Parties:   o.Parties,
		Phases:    o.Phases,
		Elapsed:   elapsed,
		NsPerWait: float64(elapsed.Nanoseconds()) / float64(o.Phases),
	}, bad.Load() == 0
}

// CounterResult reports a hot-spot counter run.
type CounterResult struct {
	Goroutines int
	Total      int64
	Elapsed    time.Duration
	OpsPerSec  float64
}

// CounterOpts configures RunCounterHotspot.
type CounterOpts struct {
	Goroutines int
	Iters      int // increments per goroutine
	ThinkWork  int // spin units between increments
}

// AddLoader is the real-runtime counter surface the hot-spot workload
// drives (both sharded.Counter and sharded.CentralCounter satisfy it).
type AddLoader interface {
	Inc()
	Load() int64
}

// RunCounterHotspot hammers a counter from many goroutines and reports
// increment throughput. The boolean result verifies no update was lost.
func RunCounterHotspot(c AddLoader, o CounterOpts) (CounterResult, bool) {
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < o.Goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < o.Iters; i++ {
				c.Inc()
				if o.ThinkWork > 0 {
					spin(o.ThinkWork)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	total := int64(o.Goroutines) * int64(o.Iters)
	return CounterResult{
		Goroutines: o.Goroutines,
		Total:      total,
		Elapsed:    elapsed,
		OpsPerSec:  float64(total) / elapsed.Seconds(),
	}, c.Load() == total
}

// PipelineResult reports a bounded-buffer pipeline run.
type PipelineResult struct {
	Producers    int
	Consumers    int
	Items        int64
	Elapsed      time.Duration
	ItemsPerSec  float64
	SumValidated bool
	Lat          LatSummary // per push/pop, semaphore wait included
}

// PipelineOpts configures RunPipeline.
type PipelineOpts struct {
	Producers int
	Consumers int
	Items     int // total items pushed through
	Capacity  int // buffer capacity
	Mode      core.WaitMode
}

// RunPipeline runs the classic semaphore-paired bounded buffer: a
// `spaces` semaphore gates producers, an `items` semaphore gates
// consumers, and a mechanism Mutex guards the ring. The checksum of
// consumed values must equal the checksum of produced values.
func RunPipeline(o PipelineOpts) PipelineResult {
	if o.Capacity < 1 {
		o.Capacity = 1
	}
	spaces := core.NewSemaphore(int64(o.Capacity))
	items := core.NewSemaphore(0)
	spaces.Mode, items.Mode = o.Mode, o.Mode
	var mu core.Mutex
	mu.Mode = o.Mode

	buf := make([]int64, o.Capacity)
	head, tail := 0, 0

	var produced, consumed atomic.Int64
	var pushSum, popSum atomic.Int64
	hists := make([]stats.Hist, o.Producers+o.Consumers)
	var wg sync.WaitGroup
	start := time.Now()

	for p := 0; p < o.Producers; p++ {
		h := &hists[p]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := produced.Add(1)
				if n > int64(o.Items) {
					return
				}
				t0 := time.Now()
				spaces.Acquire()
				mu.Lock()
				buf[tail] = n
				tail = (tail + 1) % o.Capacity
				mu.Unlock()
				items.Release()
				h.Record(time.Since(t0).Nanoseconds())
				pushSum.Add(n)
			}
		}()
	}
	for c := 0; c < o.Consumers; c++ {
		h := &hists[o.Producers+c]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := consumed.Add(1)
				if n > int64(o.Items) {
					return
				}
				t0 := time.Now()
				items.Acquire()
				mu.Lock()
				v := buf[head]
				head = (head + 1) % o.Capacity
				mu.Unlock()
				spaces.Release()
				h.Record(time.Since(t0).Nanoseconds())
				popSum.Add(v)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	return PipelineResult{
		Producers:    o.Producers,
		Consumers:    o.Consumers,
		Items:        int64(o.Items),
		Elapsed:      elapsed,
		ItemsPerSec:  float64(o.Items) / elapsed.Seconds(),
		SumValidated: pushSum.Load() == popSum.Load(),
		Lat:          summarizeLat(hists),
	}
}
