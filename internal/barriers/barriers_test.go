package barriers

import (
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
)

// Every barrier must be safe (no early release) for assorted party
// counts, including non-powers-of-two.
func TestAllBarriersSafety(t *testing.T) {
	for _, info := range All() {
		for _, parties := range []int{1, 2, 3, 5, 8, 13} {
			info, parties := info, parties
			t.Run(info.Name+"/"+strconv.Itoa(parties), func(t *testing.T) {
				t.Parallel()
				const episodes = 150
				b := info.New(parties)
				if b.Parties() != parties {
					t.Fatalf("Parties = %d, want %d", b.Parties(), parties)
				}
				arrivals := make([]atomic.Int32, episodes)
				var bad atomic.Int32
				var wg sync.WaitGroup
				for id := 0; id < parties; id++ {
					wg.Add(1)
					go func(id int) {
						defer wg.Done()
						for e := 0; e < episodes; e++ {
							arrivals[e].Add(1)
							b.Wait(id)
							if arrivals[e].Load() != int32(parties) {
								bad.Add(1)
							}
						}
					}(id)
				}
				wg.Wait()
				if bad.Load() != 0 {
					t.Fatalf("%s released %d waiters early", info.Name, bad.Load())
				}
			})
		}
	}
}

func TestNamesMatchRegistry(t *testing.T) {
	for _, info := range All() {
		b := info.New(2)
		if b.Name() != info.Name {
			t.Errorf("registry %q constructs barrier named %q", info.Name, b.Name())
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("dissemination"); !ok {
		t.Fatal("dissemination missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("bogus barrier found")
	}
}

func TestCentralInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCentral(0) did not panic")
		}
	}()
	NewCentral(0)
}

func TestDisseminationInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDissemination(0) did not panic")
		}
	}()
	NewDissemination(0)
}

func TestTournamentInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTournament(0) did not panic")
		}
	}()
	NewTournament(0)
}

// Phased computation integration check: every party must observe the
// full previous phase's writes after each barrier.
func TestBarrierPhasedVisibility(t *testing.T) {
	for _, info := range All() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			t.Parallel()
			const parties = 8
			const phases = 40
			b := info.New(parties)
			cells := make([]atomic.Int64, parties)
			var bad atomic.Int32
			var wg sync.WaitGroup
			for id := 0; id < parties; id++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					for ph := 1; ph <= phases; ph++ {
						cells[id].Store(int64(ph))
						b.Wait(id)
						for j := 0; j < parties; j++ {
							if cells[j].Load() < int64(ph) {
								bad.Add(1)
							}
						}
						b.Wait(id) // second barrier so writers don't race ahead
					}
				}(id)
			}
			wg.Wait()
			if bad.Load() != 0 {
				t.Fatalf("%s: %d stale reads across phases", info.Name, bad.Load())
			}
		})
	}
}
