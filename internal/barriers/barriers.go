// Package barriers provides real-runtime implementations of the 1991
// baseline barrier algorithms, for comparison with the mechanism's
// barriers in internal/core. All of these are identified-party barriers:
// each participant calls Wait with a fixed id in [0, n).
//
// As with package locks, the simulator carries the paper's quantitative
// claims; these are the practical twins.
package barriers

import (
	"runtime"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/registry"
)

// Barrier is an identified-party episode barrier.
type Barrier interface {
	Name() string
	Wait(id int)
	Parties() int
}

// Info describes one barrier algorithm.
type Info struct {
	Name string
	New  func(parties int) Barrier
}

// Registry is the barrier family's registry.Set, in canonical order.
var Registry = registry.NewSet[Info]("barriers", func(i Info) string { return i.Name })

func init() {
	Registry.Register(
		Info{Name: "central", New: func(n int) Barrier { return NewCentral(n) }},
		Info{Name: "dissemination", New: func(n int) Barrier { return NewDissemination(n) }},
		Info{Name: "tournament", New: func(n int) Barrier { return NewTournament(n) }},
		Info{Name: "qsync-tree", New: func(n int) Barrier { return &treeAdapter{b: core.NewTreeBarrier(n)} }},
		Info{Name: "qsync-park", New: func(n int) Barrier { return &centralAdapter{b: core.NewBarrier(n, core.SpinPark), n: n} }},
	)
}

// All returns the registry in canonical order.
func All() []Info { return Registry.All() }

// ByName returns the registry entry for name, or false.
func ByName(name string) (Info, bool) { return Registry.ByName(name) }

type treeAdapter struct {
	b *core.TreeBarrier
}

func (a *treeAdapter) Name() string { return "qsync-tree" }
func (a *treeAdapter) Wait(id int)  { a.b.Wait(id) }
func (a *treeAdapter) Parties() int { return a.b.Parties() }

type centralAdapter struct {
	b *core.Barrier
	n int
}

func (a *centralAdapter) Name() string { return "qsync-park" }
func (a *centralAdapter) Wait(int)     { a.b.Wait() }
func (a *centralAdapter) Parties() int { return a.n }

// spin waits for cond with periodic yields.
func spin(cond func() bool) {
	for i := 0; !cond(); i++ {
		if i%4096 == 4095 {
			runtime.Gosched()
		}
	}
}

// padded64 keeps hot flags on separate cache lines.
type padded64 struct {
	v atomic.Uint64
	_ [56]byte
}

// Central is the sense-reversing counter barrier: one atomic counter,
// one broadcast word. Simple and compact; every release invalidates
// every spinner.
type Central struct {
	n     int64
	count atomic.Int64
	sense atomic.Uint64 // episode number, acts as the broadcast flag
}

// NewCentral builds a central barrier for n parties.
func NewCentral(n int) *Central {
	if n < 1 {
		panic("barriers: NewCentral with fewer than one party")
	}
	return &Central{n: int64(n)}
}

// Name implements Barrier.
func (b *Central) Name() string { return "central" }

// Parties implements Barrier.
func (b *Central) Parties() int { return int(b.n) }

// Wait implements Barrier. The id is unused; central barriers are
// anonymous.
func (b *Central) Wait(int) {
	epoch := b.sense.Load()
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.sense.Add(1)
		return
	}
	spin(func() bool { return b.sense.Load() != epoch })
}

// Dissemination is the log-round pairwise-signal barrier: in round r,
// party i signals party (i+2^r) mod n and waits for its own flag. No
// root, no release phase, all spins on the party's own flags.
type Dissemination struct {
	n      int
	rounds int
	flags  [2][][]padded64 // [parity][round][party]
	parity []int           // per-party; padded by distance in practice
	sense  []uint64
}

// NewDissemination builds a dissemination barrier for n parties.
func NewDissemination(n int) *Dissemination {
	if n < 1 {
		panic("barriers: NewDissemination with fewer than one party")
	}
	rounds := 0
	for 1<<rounds < n {
		rounds++
	}
	if rounds == 0 {
		rounds = 1
	}
	b := &Dissemination{
		n:      n,
		rounds: rounds,
		parity: make([]int, n),
		sense:  make([]uint64, n),
	}
	for i := range b.sense {
		b.sense[i] = 1
	}
	for par := 0; par < 2; par++ {
		b.flags[par] = make([][]padded64, rounds)
		for r := 0; r < rounds; r++ {
			b.flags[par][r] = make([]padded64, n)
		}
	}
	return b
}

// Name implements Barrier.
func (b *Dissemination) Name() string { return "dissemination" }

// Parties implements Barrier.
func (b *Dissemination) Parties() int { return b.n }

// Wait implements Barrier.
func (b *Dissemination) Wait(id int) {
	par := b.parity[id]
	sense := b.sense[id]
	if b.n > 1 {
		for r := 0; r < b.rounds; r++ {
			partner := (id + (1 << r)) % b.n
			b.flags[par][r][partner].v.Store(sense)
			flag := &b.flags[par][r][id].v
			spin(func() bool { return flag.Load() == sense })
		}
	}
	if par == 1 {
		b.sense[id] = sense + 1
	}
	b.parity[id] = 1 - par
}

// Tournament statically pairs parties in a binary elimination tree;
// losers signal winners and wait; the champion broadcasts release back
// down. No atomic read-modify-writes at all.
type Tournament struct {
	n       int
	rounds  int
	arrive  [][]padded64 // [round][party]
	release [][]padded64
	sense   []uint64
}

// NewTournament builds a tournament barrier for n parties.
func NewTournament(n int) *Tournament {
	if n < 1 {
		panic("barriers: NewTournament with fewer than one party")
	}
	rounds := 0
	for 1<<rounds < n {
		rounds++
	}
	b := &Tournament{
		n:       n,
		rounds:  rounds,
		arrive:  make([][]padded64, rounds),
		release: make([][]padded64, rounds),
		sense:   make([]uint64, n),
	}
	for r := 0; r < rounds; r++ {
		b.arrive[r] = make([]padded64, n)
		b.release[r] = make([]padded64, n)
	}
	return b
}

// Name implements Barrier.
func (b *Tournament) Name() string { return "tournament" }

// Parties implements Barrier.
func (b *Tournament) Parties() int { return b.n }

// Wait implements Barrier.
func (b *Tournament) Wait(id int) {
	sense := b.sense[id] + 1
	b.sense[id] = sense

	stopped := b.rounds
	for r := 0; r < b.rounds; r++ {
		span := 1 << r
		if id%(span<<1) == 0 {
			partner := id + span
			if partner < b.n {
				flag := &b.arrive[r][id].v
				spin(func() bool { return flag.Load() == sense })
			}
		} else {
			partner := id - span
			b.arrive[r][partner].v.Store(sense)
			flag := &b.release[r][id].v
			spin(func() bool { return flag.Load() == sense })
			stopped = r
			break
		}
	}
	for r := stopped - 1; r >= 0; r-- {
		partner := id + 1<<r
		if partner < b.n {
			b.release[r][partner].v.Store(sense)
		}
	}
}
