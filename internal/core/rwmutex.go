package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// RWMutex is the mechanism applied to reader-writer synchronization: a
// fair (FIFO) queue-based lock with reader chaining, following the
// local-spin reader-writer algorithm of the 1991 literature. Readers
// arriving behind active readers join them immediately; readers queued
// behind a writer are granted as a batch when the writer leaves; writers
// wait for the exact set of readers ahead of them. No starvation in
// either direction.
//
// Because waiters' records are CAS-targets of their successors, RWMutex
// waiters always spin (with runtime.Gosched); there is no park mode.
// Use it where phases are short or CPUs are dedicated — the same
// assumption the paper makes.
//
// Readers receive an RToken from RLock and must pass it to RUnlock; the
// write side is token-free because there is at most one writer.
// The zero value is an unlocked RWMutex. It must not be copied after use.
type RWMutex struct {
	tail        atomic.Pointer[rwnode]
	readerCount atomic.Int32
	nextWriter  atomic.Pointer[rwnode]
	wHolder     *rwnode // current writer's node; accessed only by the writer
}

// RToken identifies one reader's participation between RLock and
// RUnlock.
type RToken struct {
	n *rwnode
}

// Reader/writer classes.
const (
	classReader uint32 = iota
	classWriter
)

// rwnode state word layout: bit 0 = blocked; bits 1-2 = successor class.
const (
	rwBlocked    uint32 = 1 << 0
	rwSuccShift         = 1
	rwSuccMask   uint32 = 3 << rwSuccShift
	rwSuccNone   uint32 = 0 << rwSuccShift
	rwSuccReader uint32 = 1 << rwSuccShift
	rwSuccWriter uint32 = 2 << rwSuccShift
)

type rwnode struct {
	next  atomic.Pointer[rwnode]
	state atomic.Uint32 // blocked flag + successor class, one CAS-able word
	class uint32        // set before publication, read-only afterwards
	_     [44]byte      // cache-line padding
}

var rwPool = sync.Pool{New: func() interface{} { return new(rwnode) }}

// spinWait spins until cond returns true, yielding periodically.
func spinWait(cond func() bool) {
	for i := 0; !cond(); i++ {
		if i%4096 == 4095 {
			runtime.Gosched()
		}
	}
}

// newRWNode returns a reset node.
func newRWNode(class uint32) *rwnode {
	n := rwPool.Get().(*rwnode)
	n.next.Store(nil)
	n.state.Store(rwBlocked | rwSuccNone)
	n.class = class
	return n
}

// setSuccClass atomically merges a successor class into the state word,
// preserving the blocked bit (CAS loop; atomic OR would also do).
func (n *rwnode) setSuccClass(sc uint32) {
	for {
		old := n.state.Load()
		if n.state.CompareAndSwap(old, (old&^rwSuccMask)|sc) {
			return
		}
	}
}

// clearBlocked atomically clears the blocked bit, preserving the
// successor class.
func (n *rwnode) clearBlocked() {
	for {
		old := n.state.Load()
		if n.state.CompareAndSwap(old, old&^rwBlocked) {
			return
		}
	}
}

func (n *rwnode) blocked() bool { return n.state.Load()&rwBlocked != 0 }

func (n *rwnode) succClass() uint32 { return n.state.Load() & rwSuccMask }

// Lock acquires the write lock, waiting behind all earlier requests and
// ahead of all later ones.
func (rw *RWMutex) Lock() {
	n := newRWNode(classWriter)
	pred := rw.tail.Swap(n)
	if pred == nil {
		rw.nextWriter.Store(n)
		if rw.readerCount.Load() == 0 && rw.nextWriter.Swap(nil) == n {
			n.clearBlocked()
		}
	} else {
		pred.setSuccClass(rwSuccWriter)
		pred.next.Store(n)
	}
	spinWait(func() bool { return !n.blocked() })
	rw.wHolder = n
}

// Unlock releases the write lock. The successor — a batch of readers or
// the next writer — is granted directly. Unlocking an unheld write lock
// panics.
func (rw *RWMutex) Unlock() {
	n := rw.wHolder
	if n == nil {
		panic("core: Unlock of un-write-locked RWMutex")
	}
	rw.wHolder = nil
	if n.next.Load() != nil || !rw.tail.CompareAndSwap(n, nil) {
		spinWait(func() bool { return n.next.Load() != nil })
		next := n.next.Load()
		if next.class == classReader {
			rw.readerCount.Add(1)
		}
		next.clearBlocked()
	}
	rwPool.Put(n)
}

// RLock acquires a read lock and returns the token to release it with.
func (rw *RWMutex) RLock() *RToken {
	n := newRWNode(classReader)
	pred := rw.tail.Swap(n)
	if pred == nil {
		rw.readerCount.Add(1)
		n.clearBlocked()
	} else {
		if pred.class == classWriter ||
			pred.state.CompareAndSwap(rwBlocked|rwSuccNone, rwBlocked|rwSuccReader) {
			// Predecessor is a writer, or a still-blocked reader that
			// will now chain-unblock us: wait our turn.
			pred.next.Store(n)
			spinWait(func() bool { return !n.blocked() })
		} else {
			// Predecessor is an active reader: join the read batch now.
			rw.readerCount.Add(1)
			pred.next.Store(n)
			n.clearBlocked()
		}
	}
	if n.succClass() == rwSuccReader {
		// A reader queued behind us while we were blocked: pull it into
		// the batch (reader chaining).
		spinWait(func() bool { return n.next.Load() != nil })
		rw.readerCount.Add(1)
		n.next.Load().clearBlocked()
	}
	return &RToken{n: n}
}

// RUnlock releases a read lock acquired with RLock. The last reader of
// a batch hands off to the waiting writer, if any.
func (rw *RWMutex) RUnlock(t *RToken) {
	if t == nil || t.n == nil {
		panic("core: RUnlock with invalid token")
	}
	n := t.n
	t.n = nil
	if n.next.Load() != nil || !rw.tail.CompareAndSwap(n, nil) {
		spinWait(func() bool { return n.next.Load() != nil })
		if n.succClass() == rwSuccWriter {
			rw.nextWriter.Store(n.next.Load())
		}
	}
	if rw.readerCount.Add(-1) == 0 {
		if w := rw.nextWriter.Swap(nil); w != nil {
			w.clearBlocked()
		}
	}
	rwPool.Put(n)
}
