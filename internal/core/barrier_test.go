package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBarrierBasicEpisodes(t *testing.T) {
	for _, mode := range modes() {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			const parties = 8
			const episodes = 200
			b := NewBarrier(parties, mode)
			// arrivals[e] counts parties that arrived at episode e; when
			// any party leaves episode e the count must be full.
			arrivals := make([]atomic.Int32, episodes)
			var bad atomic.Int32
			var wg sync.WaitGroup
			for g := 0; g < parties; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for e := 0; e < episodes; e++ {
						arrivals[e].Add(1)
						b.Wait()
						if arrivals[e].Load() != parties {
							bad.Add(1)
						}
					}
				}()
			}
			wg.Wait()
			if bad.Load() != 0 {
				t.Fatalf("%d early releases", bad.Load())
			}
			if b.Episodes() != episodes {
				t.Fatalf("Episodes = %d, want %d", b.Episodes(), episodes)
			}
		})
	}
}

func TestBarrierSingleParty(t *testing.T) {
	b := NewBarrier(1, SpinPark)
	for i := 0; i < 10; i++ {
		b.Wait() // must never block
	}
	if b.Episodes() != 10 {
		t.Fatalf("Episodes = %d, want 10", b.Episodes())
	}
}

func TestBarrierInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBarrier(0) did not panic")
		}
	}()
	NewBarrier(0, SpinPark)
}

func TestBarrierOversubscribed(t *testing.T) {
	// Many more parties than CPUs: SpinPark barrier must still cycle.
	const parties = 64
	const episodes = 50
	b := NewBarrier(parties, SpinPark)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < parties; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for e := 0; e < episodes; e++ {
				b.Wait()
			}
		}()
	}
	wg.Wait()
	if d := time.Since(start); d > 30*time.Second {
		t.Fatalf("oversubscribed barrier took %v", d)
	}
}

func TestTreeBarrierEpisodes(t *testing.T) {
	for _, parties := range []int{1, 2, 3, 5, 8, 13, 21} {
		parties := parties
		t.Run(itoa(parties), func(t *testing.T) {
			const episodes = 100
			b := NewTreeBarrier(parties)
			arrivals := make([]atomic.Int32, episodes)
			var bad atomic.Int32
			var wg sync.WaitGroup
			for id := 0; id < parties; id++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					for e := 0; e < episodes; e++ {
						arrivals[e].Add(1)
						b.Wait(id)
						if arrivals[e].Load() != int32(parties) {
							bad.Add(1)
						}
					}
				}(id)
			}
			wg.Wait()
			if bad.Load() != 0 {
				t.Fatalf("%d early releases with %d parties", bad.Load(), parties)
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestTreeBarrierIDValidation(t *testing.T) {
	b := NewTreeBarrier(4)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range id did not panic")
		}
	}()
	b.Wait(4)
}

func TestTreeBarrierParties(t *testing.T) {
	if NewTreeBarrier(7).Parties() != 7 {
		t.Fatal("Parties mismatch")
	}
}

func TestTreeBarrierInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTreeBarrier(0) did not panic")
		}
	}()
	NewTreeBarrier(0)
}

func TestWaitModeString(t *testing.T) {
	if SpinPark.String() != "spin-park" || Spin.String() != "spin" {
		t.Fatal("WaitMode.String broken")
	}
	if WaitMode(99).String() == "" {
		t.Fatal("unknown WaitMode should still print something")
	}
}
