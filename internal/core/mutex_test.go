package core

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

func modes() []WaitMode { return []WaitMode{SpinPark, Spin} }

func TestMutexSingleGoroutine(t *testing.T) {
	var m Mutex
	m.Lock()
	m.Unlock()
	m.Lock()
	m.Unlock()
}

func TestMutexMutualExclusionStress(t *testing.T) {
	for _, mode := range modes() {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			m := &Mutex{Mode: mode}
			const workers = 16
			const iters = 2000
			counter := 0
			var wg sync.WaitGroup
			for g := 0; g < workers; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						m.Lock()
						counter++ // not atomic: the lock must protect it
						m.Unlock()
					}
				}()
			}
			wg.Wait()
			if counter != workers*iters {
				t.Fatalf("counter = %d, want %d (lost updates)", counter, workers*iters)
			}
		})
	}
}

func TestMutexAsSyncLocker(t *testing.T) {
	var m Mutex
	var l sync.Locker = &m
	l.Lock()
	l.Unlock()
}

func TestMutexTryLock(t *testing.T) {
	var m Mutex
	if !m.TryLock() {
		t.Fatal("TryLock on free mutex failed")
	}
	if m.TryLock() {
		t.Fatal("TryLock on held mutex succeeded")
	}
	m.Unlock()
	if !m.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
	m.Unlock()
}

func TestMutexTryLockContended(t *testing.T) {
	var m Mutex
	m.Lock()
	done := make(chan bool)
	go func() { done <- m.TryLock() }()
	if <-done {
		t.Fatal("TryLock from another goroutine succeeded while held")
	}
	m.Unlock()
}

func TestMutexUnlockOfUnlockedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Unlock of unlocked Mutex did not panic")
		}
	}()
	var m Mutex
	m.Unlock()
}

func TestMutexFIFOHandoff(t *testing.T) {
	// One holder, then a strict chain of waiters; order of wakeups must
	// match order of Lock calls. We sequence the Lock calls with a relay
	// channel so the queue order is deterministic.
	var m Mutex
	m.Lock()
	const waiters = 8
	order := make(chan int, waiters)
	enqueued := make(chan struct{})
	for i := 0; i < waiters; i++ {
		i := i
		go func() {
			enqueued <- struct{}{}
			m.Lock()
			order <- i
			m.Unlock()
		}()
		<-enqueued
		// Give the goroutine time to actually reach the queue swap. The
		// sleep only sequences test setup; correctness never depends on it.
		time.Sleep(2 * time.Millisecond)
	}
	m.Unlock()
	for want := 0; want < waiters; want++ {
		got := <-order
		if got != want {
			t.Fatalf("hand-off order: got waiter %d at position %d", got, want)
		}
	}
}

func TestMutexOversubscribedSpinPark(t *testing.T) {
	// Far more goroutines than CPUs: SpinPark must still make progress
	// quickly because parked waiters consume nothing.
	m := &Mutex{Mode: SpinPark}
	workers := runtime.GOMAXPROCS(0) * 8
	const iters = 200
	var wg sync.WaitGroup
	counter := 0
	start := time.Now()
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.Lock()
				counter++
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != workers*iters {
		t.Fatalf("counter = %d, want %d", counter, workers*iters)
	}
	if d := time.Since(start); d > 30*time.Second {
		t.Fatalf("oversubscribed run took %v; park path suspect", d)
	}
}

func TestMutexHandoffLatencySane(t *testing.T) {
	// A ping-pong between two goroutines must complete promptly in both
	// modes; this catches lost-wakeup bugs that stress tests can mask.
	for _, mode := range modes() {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			m := &Mutex{Mode: mode}
			var other sync.WaitGroup
			other.Add(1)
			go func() {
				defer other.Done()
				for i := 0; i < 5000; i++ {
					m.Lock()
					m.Unlock()
				}
			}()
			for i := 0; i < 5000; i++ {
				m.Lock()
				m.Unlock()
			}
			done := make(chan struct{})
			go func() { other.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("ping-pong did not finish; probable lost wakeup")
			}
		})
	}
}

func TestMutexManyLocksIndependent(t *testing.T) {
	// Distinct mutexes must not interfere through the shared node pool.
	const locks = 32
	ms := make([]Mutex, locks)
	counters := make([]int, locks)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				k := (seed + i) % locks
				ms[k].Lock()
				counters[k]++
				ms[k].Unlock()
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, c := range counters {
		total += c
	}
	if total != 8*3000 {
		t.Fatalf("total = %d, want %d", total, 8*3000)
	}
}
