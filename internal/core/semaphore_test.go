package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestSemaphoreBasic(t *testing.T) {
	s := NewSemaphore(2)
	s.Acquire()
	s.Acquire()
	if s.TryAcquire() {
		t.Fatal("TryAcquire succeeded with zero permits")
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("TryAcquire failed with one permit")
	}
	s.Release()
	s.Release()
	if got := s.Available(); got != 2 {
		t.Fatalf("Available = %d, want 2", got)
	}
}

func TestSemaphoreNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSemaphore(-1) did not panic")
		}
	}()
	NewSemaphore(-1)
}

func TestSemaphoreBoundsConcurrency(t *testing.T) {
	for _, mode := range modes() {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			const permits = 3
			s := NewSemaphore(permits)
			s.Mode = mode
			var inside atomic.Int32
			var peak atomic.Int32
			var wg sync.WaitGroup
			for g := 0; g < 16; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 400; i++ {
						s.Acquire()
						cur := inside.Add(1)
						for {
							p := peak.Load()
							if cur <= p || peak.CompareAndSwap(p, cur) {
								break
							}
						}
						inside.Add(-1)
						s.Release()
					}
				}()
			}
			wg.Wait()
			if p := peak.Load(); p > permits {
				t.Fatalf("saw %d holders with %d permits", p, permits)
			}
			if got := s.Available(); got != permits {
				t.Fatalf("Available after drain = %d, want %d", got, permits)
			}
		})
	}
}

func TestSemaphoreZeroPermitsSignaling(t *testing.T) {
	s := NewSemaphore(0)
	done := make(chan struct{})
	go func() {
		s.Acquire() // must block until the release below
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Acquire on zero-permit semaphore returned immediately")
	case <-time.After(50 * time.Millisecond):
	}
	s.Release()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Release did not wake the waiter")
	}
}

func TestSemaphoreFIFOHandoff(t *testing.T) {
	s := NewSemaphore(0)
	const waiters = 6
	order := make(chan int, waiters)
	ready := make(chan struct{})
	for i := 0; i < waiters; i++ {
		i := i
		go func() {
			ready <- struct{}{}
			s.Acquire()
			order <- i
		}()
		<-ready
		time.Sleep(2 * time.Millisecond) // sequence queue entry
	}
	// Release one permit at a time: exactly one waiter can wake per
	// release, so the report order is the grant order.
	for want := 0; want < waiters; want++ {
		s.Release()
		if got := <-order; got != want {
			t.Fatalf("hand-off order: waiter %d at position %d", got, want)
		}
	}
}

// Property: any interleaving of acquires and releases conserves permits.
func TestSemaphorePermitConservation(t *testing.T) {
	f := func(permits uint8, workers uint8) bool {
		p := int64(permits%8) + 1
		w := int(workers%8) + 1
		s := NewSemaphore(p)
		var wg sync.WaitGroup
		for g := 0; g < w; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 100; i++ {
					s.Acquire()
					s.Release()
				}
			}()
		}
		wg.Wait()
		return s.Available() == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestEventBasic(t *testing.T) {
	e := NewEvent()
	if e.Read() != 0 {
		t.Fatal("fresh event not at zero")
	}
	if got := e.Advance(); got != 1 {
		t.Fatalf("Advance returned %d, want 1", got)
	}
	e.Await(1) // already reached: returns immediately
	if got := e.AdvanceN(5); got != 6 {
		t.Fatalf("AdvanceN returned %d, want 6", got)
	}
}

func TestEventAwaitBlocksUntilAdvance(t *testing.T) {
	for _, mode := range modes() {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			e := NewEvent()
			e.Mode = mode
			done := make(chan struct{})
			go func() {
				e.Await(3)
				close(done)
			}()
			e.Advance()
			e.Advance()
			select {
			case <-done:
				t.Fatal("Await(3) returned at count 2")
			case <-time.After(50 * time.Millisecond):
			}
			e.Advance()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("Await(3) never returned after count reached 3")
			}
		})
	}
}

func TestEventManyWaitersDistinctTargets(t *testing.T) {
	e := NewEvent()
	const n = 20
	var woken atomic.Int32
	var wg sync.WaitGroup
	for i := 1; i <= n; i++ {
		wg.Add(1)
		go func(target uint64) {
			defer wg.Done()
			e.Await(target)
			woken.Add(1)
		}(uint64(i))
	}
	for i := 0; i < n; i++ {
		e.Advance()
	}
	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(10 * time.Second):
		t.Fatalf("only %d/%d waiters woke", woken.Load(), n)
	}
}

func TestEventAdvanceNWakesBatch(t *testing.T) {
	e := NewEvent()
	var wg sync.WaitGroup
	for i := 1; i <= 10; i++ {
		wg.Add(1)
		go func(target uint64) {
			defer wg.Done()
			e.Await(target)
		}(uint64(i))
	}
	time.Sleep(20 * time.Millisecond) // let waiters register
	e.AdvanceN(10)
	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(10 * time.Second):
		t.Fatal("AdvanceN(10) failed to wake all waiters")
	}
}

func TestEventProducerConsumerOrdering(t *testing.T) {
	// Classic eventcount/sequencer pipeline: producers write slots in
	// ticket order; a consumer awaits each ticket and must observe every
	// slot filled.
	e := NewEvent()
	var seq Sequencer
	const items = 2000
	slots := make([]uint64, items+1)
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				tk := seq.Ticket()
				if tk > items {
					return
				}
				slots[tk] = tk
				// Publish in ticket order: wait until everything before
				// us is published, then advance.
				e.Await(tk - 1)
				e.Advance()
			}
		}()
	}
	e.Await(items)
	for i := uint64(1); i <= items; i++ {
		if slots[i] != i {
			t.Fatalf("slot %d = %d; published out of order", i, slots[i])
		}
	}
	wg.Wait()
}

func TestSequencerDense(t *testing.T) {
	var s Sequencer
	const workers, each = 8, 1000
	seen := make([]atomic.Bool, workers*each+1)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				tk := s.Ticket()
				if tk == 0 || tk > workers*each {
					t.Errorf("ticket %d out of range", tk)
					return
				}
				if seen[tk].Swap(true) {
					t.Errorf("duplicate ticket %d", tk)
					return
				}
			}
		}()
	}
	wg.Wait()
	for i := 1; i <= workers*each; i++ {
		if !seen[i].Load() {
			t.Fatalf("ticket %d never issued", i)
		}
	}
}
