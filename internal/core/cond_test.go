package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCondNilMutexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCond(nil) did not panic")
		}
	}()
	NewCond(nil)
}

func TestCondSignalWakesOne(t *testing.T) {
	var m Mutex
	c := NewCond(&m)
	ready := false
	done := make(chan struct{})
	go func() {
		m.Lock()
		for !ready {
			c.Wait()
		}
		m.Unlock()
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	m.Lock()
	ready = true
	c.Signal()
	m.Unlock()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("signaled waiter never woke")
	}
}

func TestCondBroadcastWakesAll(t *testing.T) {
	var m Mutex
	c := NewCond(&m)
	const waiters = 10
	gate := false
	var woke atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Lock()
			for !gate {
				c.Wait()
			}
			m.Unlock()
			woke.Add(1)
		}()
	}
	time.Sleep(20 * time.Millisecond)
	m.Lock()
	gate = true
	c.Broadcast()
	m.Unlock()
	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(10 * time.Second):
		t.Fatalf("only %d/%d waiters woke after Broadcast", woke.Load(), waiters)
	}
}

func TestCondSignalNoWaitersHarmless(t *testing.T) {
	var m Mutex
	c := NewCond(&m)
	c.Signal()
	c.Broadcast()
}

func TestCondBoundedQueueMonitor(t *testing.T) {
	// The classic monitor exercise: a bounded queue with notFull and
	// notEmpty conditions, hammered by producers and consumers.
	var m Mutex
	notFull := NewCond(&m)
	notEmpty := NewCond(&m)
	const capacity = 4
	var q []int
	const producers, consumers, items = 4, 4, 3000
	var produced, consumed atomic.Int64
	var sumIn, sumOut atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := produced.Add(1)
				if n > items {
					return
				}
				m.Lock()
				for len(q) == capacity {
					notFull.Wait()
				}
				q = append(q, int(n))
				m.Unlock()
				notEmpty.Signal()
				sumIn.Add(n)
			}
		}()
	}
	for cns := 0; cns < consumers; cns++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := consumed.Add(1)
				if n > items {
					return
				}
				m.Lock()
				for len(q) == 0 {
					notEmpty.Wait()
				}
				v := q[0]
				q = q[1:]
				m.Unlock()
				notFull.Signal()
				sumOut.Add(int64(v))
			}
		}()
	}
	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(60 * time.Second):
		t.Fatal("monitor queue deadlocked")
	}
	if sumIn.Load() != sumOut.Load() {
		t.Fatalf("checksum mismatch: %d != %d", sumIn.Load(), sumOut.Load())
	}
}

func TestCondFIFOWakeOrder(t *testing.T) {
	var m Mutex
	c := NewCond(&m)
	const waiters = 5
	order := make(chan int, waiters)
	queued := make(chan struct{})
	for i := 0; i < waiters; i++ {
		i := i
		go func() {
			m.Lock()
			queued <- struct{}{}
			c.Wait()
			order <- i
			m.Unlock()
		}()
		<-queued
		// The goroutine holds the lock until Wait queues it and
		// releases; take and release the lock to be sure it is queued
		// before launching the next waiter.
		m.Lock()
		m.Unlock()
	}
	for want := 0; want < waiters; want++ {
		m.Lock()
		c.Signal()
		m.Unlock()
		select {
		case got := <-order:
			if got != want {
				t.Fatalf("wake order: waiter %d at position %d", got, want)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("signaled waiter never reported")
		}
	}
}

func TestCondStressSignalBroadcastMix(t *testing.T) {
	var m Mutex
	c := NewCond(&m)
	stop := false
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				m.Lock()
				if stop {
					m.Unlock()
					return
				}
				c.Wait()
				m.Unlock()
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		m.Lock()
		if i%7 == 0 {
			c.Broadcast()
		} else {
			c.Signal()
		}
		m.Unlock()
	}
	m.Lock()
	stop = true
	c.Broadcast()
	m.Unlock()
	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(30 * time.Second):
		t.Fatal("stress mix deadlocked (lost wakeup?)")
	}
}
