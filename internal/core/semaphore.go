package core

import (
	"runtime"
	"sync/atomic"
)

// spinLock is a minimal internal ticket lock used to serialize the
// short bookkeeping sections of Semaphore and Event. It is fair, tiny,
// and never held across a wait.
type spinLock struct {
	next    atomic.Uint32
	serving atomic.Uint32
}

func (s *spinLock) lock() {
	t := s.next.Add(1) - 1
	for i := 0; s.serving.Load() != t; i++ {
		if i%4096 == 4095 {
			runtime.Gosched()
		}
	}
}

func (s *spinLock) unlock() {
	s.serving.Add(1)
}

// Semaphore is the mechanism applied to counting: a FIFO counting
// semaphore with direct hand-off. A released permit goes straight to
// the oldest waiter without re-competition, so waiters are served in
// arrival order — the discipline the 1991 mechanism derives from its
// queueing cell.
//
// Construct with NewSemaphore. A Semaphore must not be copied.
type Semaphore struct {
	mu    spinLock
	count int64 // available permits; guarded by mu
	head  *node // FIFO waiter list; guarded by mu
	tail  *node
	// Mode selects the waiter strategy; set before first use.
	Mode WaitMode
}

// NewSemaphore returns a semaphore holding n permits. n may be zero
// (a pure signaling semaphore) but not negative.
func NewSemaphore(n int64) *Semaphore {
	if n < 0 {
		panic("core: NewSemaphore with negative permits")
	}
	return &Semaphore{count: n}
}

// Acquire takes one permit, waiting FIFO behind earlier requesters if
// none is available.
func (s *Semaphore) Acquire() {
	s.mu.lock()
	if s.count > 0 {
		s.count--
		s.mu.unlock()
		return
	}
	n := newNode()
	if s.tail == nil {
		s.head, s.tail = n, n
	} else {
		s.tail.next.Store(n)
		s.tail = n
	}
	s.mu.unlock()
	n.wait(s.Mode)
	putNode(n) // granted: the releaser holds no further reference
}

// TryAcquire takes a permit only if one is immediately available.
func (s *Semaphore) TryAcquire() bool {
	s.mu.lock()
	ok := s.count > 0
	if ok {
		s.count--
	}
	s.mu.unlock()
	return ok
}

// Release returns one permit. If anyone is waiting, the permit is
// handed directly to the oldest waiter.
func (s *Semaphore) Release() {
	s.mu.lock()
	if s.head != nil {
		w := s.head
		s.head = w.next.Load()
		if s.head == nil {
			s.tail = nil
		}
		s.mu.unlock()
		w.grant()
		return
	}
	s.count++
	s.mu.unlock()
}

// Available reports the number of free permits at this instant (for
// monitoring; the value may be stale by the time it is read).
func (s *Semaphore) Available() int64 {
	s.mu.lock()
	c := s.count
	s.mu.unlock()
	return c
}
