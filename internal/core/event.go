package core

import "sync/atomic"

// Event is an eventcount: a monotonically increasing counter that
// waiters can await crossing a threshold. Together with Sequencer it
// forms the classic pre-futex producer/consumer discipline: a consumer
// takes a ticket from a Sequencer and Awaits the Event reaching it; a
// producer Advances the Event once per item. The band note "superseded
// by modern futex/atomics" is about exactly this pattern — futex wait/
// wake generalized it — so the library keeps the original discipline
// and layers the modern waiter underneath.
//
// Construct with NewEvent (or use the zero value, which starts at 0 in
// SpinPark mode). An Event must not be copied after first use.
type Event struct {
	count atomic.Uint64
	nwait atomic.Int32 // registered waiters, for the advance fast path
	mu    spinLock
	// waiters is a min-heap ordered by target; guarded by mu.
	waiters []eventWaiter
	// Mode selects the waiter strategy; set before first use.
	Mode WaitMode
}

type eventWaiter struct {
	target uint64
	n      *node
}

// NewEvent returns an eventcount starting at zero.
func NewEvent() *Event { return &Event{} }

// Read returns the current count.
func (e *Event) Read() uint64 { return e.count.Load() }

// Await blocks until the count is at least target.
func (e *Event) Await(target uint64) {
	if e.count.Load() >= target {
		return
	}
	e.mu.lock()
	// Dekker-style handshake with AdvanceN's fast path: publish our
	// intent to wait before the final count recheck. AdvanceN bumps the
	// count before reading nwait, so at least one side always sees the
	// other — no lost wakeups.
	e.nwait.Add(1)
	if e.count.Load() >= target {
		e.nwait.Add(-1)
		e.mu.unlock()
		return
	}
	n := newNode()
	e.pushWaiter(eventWaiter{target: target, n: n})
	e.mu.unlock()
	n.wait(e.Mode)
	putNode(n)
}

// Advance increments the count by one, waking every waiter whose target
// has been reached, and returns the new value.
func (e *Event) Advance() uint64 { return e.AdvanceN(1) }

// AdvanceN increments the count by k and wakes accordingly.
func (e *Event) AdvanceN(k uint64) uint64 {
	v := e.count.Add(k)
	if e.nwait.Load() == 0 {
		// No registered waiters. A waiter registering concurrently has
		// already published nwait before rechecking the count, and our
		// Add preceded this load, so it will observe count >= target
		// and never sleep.
		return v
	}
	e.mu.lock()
	var wake []*node
	for len(e.waiters) > 0 && e.waiters[0].target <= v {
		wake = append(wake, e.popWaiter().n)
		e.nwait.Add(-1)
	}
	e.mu.unlock()
	for _, n := range wake {
		n.grant()
	}
	return v
}

// pushWaiter inserts into the min-heap; caller holds mu.
func (e *Event) pushWaiter(w eventWaiter) {
	e.waiters = append(e.waiters, w)
	i := len(e.waiters) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if e.waiters[parent].target <= e.waiters[i].target {
			break
		}
		e.waiters[parent], e.waiters[i] = e.waiters[i], e.waiters[parent]
		i = parent
	}
}

// popWaiter removes the minimum-target waiter; caller holds mu.
func (e *Event) popWaiter() eventWaiter {
	top := e.waiters[0]
	last := len(e.waiters) - 1
	e.waiters[0] = e.waiters[last]
	e.waiters = e.waiters[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(e.waiters) && e.waiters[l].target < e.waiters[smallest].target {
			smallest = l
		}
		if r < len(e.waiters) && e.waiters[r].target < e.waiters[smallest].target {
			smallest = r
		}
		if smallest == i {
			break
		}
		e.waiters[i], e.waiters[smallest] = e.waiters[smallest], e.waiters[i]
		i = smallest
	}
	return top
}

// Sequencer dispenses strictly increasing tickets starting at 1, the
// companion of Event: Ticket then Await(ticket) serializes consumers in
// arrival order.
type Sequencer struct {
	next atomic.Uint64
}

// Ticket returns the next ticket (1, 2, 3, ...).
func (s *Sequencer) Ticket() uint64 { return s.next.Add(1) }
