package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRWMutexBasic(t *testing.T) {
	var rw RWMutex
	rw.Lock()
	rw.Unlock()
	tok := rw.RLock()
	rw.RUnlock(tok)
}

func TestRWMutexWriterExcludesWriters(t *testing.T) {
	var rw RWMutex
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				rw.Lock()
				counter++
				rw.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != 8*2000 {
		t.Fatalf("counter = %d, want %d", counter, 8*2000)
	}
}

func TestRWMutexReadersCoexistWritersExclude(t *testing.T) {
	var rw RWMutex
	var readers atomic.Int32
	var writers atomic.Int32
	var violations atomic.Int32
	var wg sync.WaitGroup

	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1500; i++ {
				tok := rw.RLock()
				readers.Add(1)
				if writers.Load() != 0 {
					violations.Add(1)
				}
				readers.Add(-1)
				rw.RUnlock(tok)
			}
		}()
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 800; i++ {
				rw.Lock()
				if writers.Add(1) != 1 {
					violations.Add(1)
				}
				if readers.Load() != 0 {
					violations.Add(1)
				}
				writers.Add(-1)
				rw.Unlock()
			}
		}()
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d reader/writer exclusion violations", v)
	}
}

func TestRWMutexReadersShareConcurrently(t *testing.T) {
	// Two readers must be able to hold the lock at the same time: reader
	// A takes the lock and waits for reader B to join before releasing.
	var rw RWMutex
	aIn := make(chan struct{})
	bIn := make(chan struct{})
	go func() {
		tok := rw.RLock()
		close(aIn)
		select {
		case <-bIn:
		case <-time.After(10 * time.Second):
		}
		rw.RUnlock(tok)
	}()
	<-aIn
	done := make(chan struct{})
	go func() {
		tok := rw.RLock() // must succeed while A still holds
		close(bIn)
		rw.RUnlock(tok)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("second reader could not join while first held the read lock")
	}
}

func TestRWMutexWriterNotStarvedByReaders(t *testing.T) {
	// A continuous stream of readers must not starve a writer: the queue
	// is FIFO, so the writer gets in once the readers ahead of it leave.
	var rw RWMutex
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tok := rw.RLock()
				rw.RUnlock(tok)
			}
		}()
	}
	acquired := make(chan struct{})
	go func() {
		rw.Lock()
		rw.Unlock()
		close(acquired)
	}()
	select {
	case <-acquired:
	case <-time.After(20 * time.Second):
		t.Fatal("writer starved by reader stream")
	}
	close(stop)
	wg.Wait()
}

func TestRWMutexReaderNotStarvedByWriters(t *testing.T) {
	var rw RWMutex
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rw.Lock()
				rw.Unlock()
			}
		}()
	}
	acquired := make(chan struct{})
	go func() {
		tok := rw.RLock()
		rw.RUnlock(tok)
		close(acquired)
	}()
	select {
	case <-acquired:
	case <-time.After(20 * time.Second):
		t.Fatal("reader starved by writer stream")
	}
	close(stop)
	wg.Wait()
}

func TestRWMutexMixedStressInvariant(t *testing.T) {
	// Writers maintain an invariant over two variables; readers verify it.
	var rw RWMutex
	x, y := 0, 0
	var bad atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 1200; i++ {
				if (id+i)%4 == 0 {
					rw.Lock()
					x++
					y++ // x == y always holds under the write lock
					rw.Unlock()
				} else {
					tok := rw.RLock()
					if x != y {
						bad.Add(1)
					}
					rw.RUnlock(tok)
				}
			}
		}(g)
	}
	wg.Wait()
	if bad.Load() != 0 {
		t.Fatalf("readers observed %d broken invariants", bad.Load())
	}
	if x != y {
		t.Fatalf("final x=%d y=%d", x, y)
	}
}

func TestRWMutexUnlockUnheldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Unlock of unheld write lock did not panic")
		}
	}()
	var rw RWMutex
	rw.Unlock()
}

func TestRWMutexRUnlockNilTokenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RUnlock(nil) did not panic")
		}
	}()
	var rw RWMutex
	rw.RUnlock(nil)
}

func TestRWMutexRUnlockTwicePanics(t *testing.T) {
	var rw RWMutex
	tok := rw.RLock()
	rw.RUnlock(tok)
	defer func() {
		if recover() == nil {
			t.Fatal("double RUnlock did not panic")
		}
	}()
	rw.RUnlock(tok)
}
