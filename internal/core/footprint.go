package core

import "unsafe"

// Footprint reports the memory cost of the mechanism's primitives in
// this implementation: bytes per Mutex, per waiter record, per RWMutex,
// and per reader-writer waiter record. The experiment harness uses it
// for the T2 space table; the sizes include the cache-line padding that
// makes local spinning local.
func Footprint() (lockBytes, waiterBytes, rwLockBytes, rwWaiterBytes uintptr) {
	return unsafe.Sizeof(Mutex{}), unsafe.Sizeof(node{}),
		unsafe.Sizeof(RWMutex{}), unsafe.Sizeof(rwnode{})
}
