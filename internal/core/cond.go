package core

// Cond is a condition variable with Mesa semantics bound to a mechanism
// Mutex, completing the monitor discipline the era structured programs
// with. Waiters queue FIFO on mechanism records; Signal performs a
// direct hand-off of exactly one waiter; Broadcast releases the whole
// queue.
//
// As with sync.Cond, Wait must be called with L held, and because
// wakeups are Mesa-style ("the condition was true at some point"),
// callers re-check their predicate in a loop:
//
//	c.L.Lock()
//	for !condition() {
//	    c.Wait()
//	}
//	... use the condition ...
//	c.L.Unlock()
//
// Signal and Broadcast should be called with L held; calling them
// unlocked is permitted but can race with a waiter that has not yet
// queued (the usual Mesa caveat).
type Cond struct {
	// L is the monitor lock; it must be set before use (NewCond does).
	L *Mutex

	mu   spinLock
	head *node
	tail *node
	// Mode selects the waiter strategy; set before first use.
	Mode WaitMode
}

// NewCond returns a condition variable bound to l.
func NewCond(l *Mutex) *Cond {
	if l == nil {
		panic("core: NewCond with nil Mutex")
	}
	return &Cond{L: l}
}

// Wait atomically releases L, blocks until signaled, and re-acquires L
// before returning.
func (c *Cond) Wait() {
	n := newNode()
	c.mu.lock()
	if c.tail == nil {
		c.head, c.tail = n, n
	} else {
		c.tail.next.Store(n)
		c.tail = n
	}
	c.mu.unlock()
	// The waiter is queued before the monitor lock is released, so any
	// signal that happens-after our caller's predicate check (made under
	// L) will find us: no lost wakeups.
	c.L.Unlock()
	n.wait(c.Mode)
	putNode(n)
	c.L.Lock()
}

// Signal wakes the longest-waiting goroutine, if any.
func (c *Cond) Signal() {
	c.mu.lock()
	w := c.head
	if w != nil {
		c.head = w.next.Load()
		if c.head == nil {
			c.tail = nil
		}
	}
	c.mu.unlock()
	if w != nil {
		w.grant()
	}
}

// Broadcast wakes every waiting goroutine.
func (c *Cond) Broadcast() {
	c.mu.lock()
	w := c.head
	c.head, c.tail = nil, nil
	c.mu.unlock()
	for w != nil {
		next := w.next.Load()
		w.grant()
		w = next
	}
}
