package core

import (
	"runtime"
	"sync/atomic"
)

// Barrier is a reusable episode barrier for a fixed party of n
// goroutines. It is the practical (central) variant: arrival is one
// atomic decrement, release is a broadcast. In SpinPark mode waiters
// park on a per-generation channel, so the barrier behaves well even
// heavily oversubscribed.
//
// Construct with NewBarrier. A Barrier must not be copied.
type Barrier struct {
	n      int32
	mu     spinLock
	count  int32
	gate   chan struct{} // closed to release the current generation
	mode   WaitMode
	epochs atomic.Uint64 // completed episodes, for observability
}

// NewBarrier returns a barrier for n parties in the given mode.
func NewBarrier(n int, mode WaitMode) *Barrier {
	if n < 1 {
		panic("core: NewBarrier with fewer than one party")
	}
	return &Barrier{n: int32(n), gate: make(chan struct{}), mode: mode}
}

// Wait blocks until all n parties have called Wait for this episode.
func (b *Barrier) Wait() {
	b.mu.lock()
	gate := b.gate
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gate = make(chan struct{})
		b.epochs.Add(1)
		b.mu.unlock()
		close(gate) // release everyone, including ourselves (non-blocking)
		return
	}
	b.mu.unlock()
	if b.mode == Spin {
		for i := 0; ; i++ {
			select {
			case <-gate:
				return
			default:
			}
			if i%4096 == 4095 {
				runtime.Gosched()
			}
		}
	}
	<-gate
}

// Episodes returns the number of completed episodes.
func (b *Barrier) Episodes() uint64 { return b.epochs.Load() }

// TreeBarrier is the mechanism's barrier: a static 4-ary tree in which
// children push their arrival epoch into slots in the parent's line and
// the parent pushes the release epoch directly into each child's
// personal flag — direct hand-off, all spinning on per-party words.
// With one party per CPU this is the fastest reusable barrier here;
// it always spins (with Gosched), so prefer Barrier when oversubscribed.
//
// Each party must call Wait with its fixed id in [0, n).
type TreeBarrier struct {
	n       int
	arrive  [][]paddedUint64 // arrive[i][s]: slot written by child 4i+s+1
	release []paddedUint64   // release[i]: personal release flag
	epoch   []paddedUint64   // per-party episode number (unshared)
}

const treeArity = 4

// paddedUint64 keeps hot flags on separate cache lines.
type paddedUint64 struct {
	v atomic.Uint64
	_ [56]byte
}

// NewTreeBarrier returns a tree barrier for n parties.
func NewTreeBarrier(n int) *TreeBarrier {
	if n < 1 {
		panic("core: NewTreeBarrier with fewer than one party")
	}
	b := &TreeBarrier{
		n:       n,
		arrive:  make([][]paddedUint64, n),
		release: make([]paddedUint64, n),
		epoch:   make([]paddedUint64, n),
	}
	for i := range b.arrive {
		b.arrive[i] = make([]paddedUint64, treeArity)
	}
	return b
}

// Parties returns the party count.
func (b *TreeBarrier) Parties() int { return b.n }

// Wait blocks party id until all parties arrive at this episode.
func (b *TreeBarrier) Wait(id int) {
	if id < 0 || id >= b.n {
		panic("core: TreeBarrier.Wait id out of range")
	}
	epoch := b.epoch[id].v.Load() + 1
	b.epoch[id].v.Store(epoch)

	// Gather: wait for each existing child to post this epoch.
	for s := 0; s < treeArity; s++ {
		child := treeArity*id + s + 1
		if child >= b.n {
			break
		}
		slot := &b.arrive[id][s].v
		for i := 0; slot.Load() != epoch; i++ {
			if i%4096 == 4095 {
				runtime.Gosched()
			}
		}
	}
	if id != 0 {
		parent := (id - 1) / treeArity
		slot := (id - 1) % treeArity
		b.arrive[parent][slot].v.Store(epoch)
		rel := &b.release[id].v
		for i := 0; rel.Load() != epoch; i++ {
			if i%4096 == 4095 {
				runtime.Gosched()
			}
		}
	}
	// Scatter: direct hand-off to each child.
	for s := 0; s < treeArity; s++ {
		child := treeArity*id + s + 1
		if child >= b.n {
			break
		}
		b.release[child].v.Store(epoch)
	}
}
