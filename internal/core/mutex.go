package core

import (
	"runtime"
	"sync/atomic"
)

// Mutex is the mechanism's mutual-exclusion lock: a FIFO queue lock in
// which each waiter spins (or parks) on its own record and the holder
// releases by writing exactly one word in the successor's record.
// Interconnect traffic per acquire/release pair is constant regardless
// of contention — the property the 1991 paper trades a few cycles of
// uncontended latency for.
//
// The zero value is an unlocked mutex in SpinPark mode. A Mutex must not
// be copied after first use. Mutex implements sync.Locker.
type Mutex struct {
	tail   atomic.Pointer[node]
	holder *node // set while held; accessed only by the holder
	// Mode selects the waiter strategy. It may be set before first use
	// and must not change while the lock is in use.
	Mode WaitMode
}

// Lock acquires the mutex, blocking in FIFO order behind prior waiters.
func (m *Mutex) Lock() {
	n := newNode()
	pred := m.tail.Swap(n)
	if pred != nil {
		pred.next.Store(n)
		n.wait(m.Mode)
	}
	m.holder = n
}

// TryLock acquires the mutex only if no one holds or waits for it.
func (m *Mutex) TryLock() bool {
	n := newNode()
	if m.tail.CompareAndSwap(nil, n) {
		m.holder = n
		return true
	}
	putNode(n)
	return false
}

// Unlock releases the mutex, handing it directly to the oldest waiter
// if one exists. Unlocking an unheld Mutex panics.
func (m *Mutex) Unlock() {
	n := m.holder
	if n == nil {
		panic("core: Unlock of unlocked Mutex")
	}
	m.holder = nil
	next := n.next.Load()
	if next == nil {
		if m.tail.CompareAndSwap(n, nil) {
			putNode(n)
			return
		}
		// A successor is mid-enqueue: it has swapped the tail but not
		// yet linked itself. Wait for the link; this window is two
		// instructions long in the successor.
		for {
			if next = n.next.Load(); next != nil {
				break
			}
			runtime.Gosched()
		}
	}
	next.grant()
	// After grant, no goroutine references our node: the successor only
	// used it to store the link, which we have already consumed.
	putNode(n)
}
