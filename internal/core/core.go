// Package core implements QSync — the reconstructed "new synchronization
// mechanism" of the ICPP 1991 paper — as a real Go library.
//
// The mechanism is a single-word queueing cell: waiters enqueue a small
// per-waiter record with one atomic swap, wait on a flag in their own
// record (their own cache line), and are released by direct hand-off
// from the previous holder writing that flag. One primitive yields a
// whole family of synchronization disciplines:
//
//   - Mutex: FIFO mutual exclusion with constant interconnect traffic
//     per acquisition (the queue lock itself).
//   - RWMutex: fair reader-writer locking with reader chaining.
//   - Semaphore: counting semaphore with direct hand-off to the oldest
//     waiter.
//   - Event and Sequencer: the classic eventcount/sequencer pair.
//   - Barrier and TreeBarrier: episode synchronization.
//
// Waiters support two strategies (WaitMode): pure spinning, which
// matches the paper's dedicated-processor model, and spin-then-park,
// which is the futex usage pattern that eventually superseded primitives
// of this family — provided here both for practicality and because the
// comparison is itself one of the reproduced experiments (F12).
package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// WaitMode selects how a waiter passes the time until granted.
type WaitMode int

const (
	// SpinPark spins briefly, then parks on a channel until granted.
	// This is the right default on a time-shared system: oversubscribed
	// waiters cost almost nothing.
	SpinPark WaitMode = iota
	// Spin never blocks; it spins with periodic runtime.Gosched calls.
	// This matches the paper's dedicated-processor assumption and gives
	// the lowest hand-off latency when every waiter owns a CPU.
	Spin
)

func (w WaitMode) String() string {
	switch w {
	case SpinPark:
		return "spin-park"
	case Spin:
		return "spin"
	}
	return "waitmode(?)"
}

// Node states. Granted is zero so a freshly zeroed node is "granted",
// but pool reset always establishes Waiting explicitly before use.
const (
	stateGranted uint32 = iota
	stateWaiting
	stateParked
)

// node is the mechanism's per-waiter record: one queue link plus one
// grant flag, padded so two nodes never share a cache line (local
// spinning is the whole point).
type node struct {
	next  atomic.Pointer[node]
	state atomic.Uint32
	park  chan struct{}
	_     [40]byte // pad to a typical 64-byte line with the fields above
}

// spinBudget is how many check iterations SpinPark performs before
// parking. Tuned loosely: long enough to cover a short critical section
// on another CPU, short enough not to burn a scheduling quantum.
const spinBudget = 4096

// goschedEvery is how many spin iterations pass between runtime.Gosched
// calls. Yielding keeps spin loops live when goroutines outnumber CPUs,
// but it must be *sparse*: a waiter that yields is frequently
// descheduled at the instant it is granted, turning a ~100ns cache-line
// hand-off into a multi-microsecond scheduler round trip (measured 50x
// on this workload's hot path).
const goschedEvery = 8192

// wait blocks until the node is granted, using the given mode.
func (n *node) wait(mode WaitMode) {
	if mode == Spin {
		for i := 1; n.state.Load() != stateGranted; i++ {
			if i%goschedEvery == 0 {
				runtime.Gosched()
			}
		}
		return
	}
	for i := 0; i < spinBudget; i++ {
		if n.state.Load() == stateGranted {
			return
		}
	}
	for {
		if n.state.CompareAndSwap(stateWaiting, stateParked) {
			<-n.park
			return // the only park signal is the grant
		}
		if n.state.Load() == stateGranted {
			return
		}
		// Lost a race against a grant in progress; re-check.
		runtime.Gosched()
	}
}

// grant releases the waiter: direct hand-off.
func (n *node) grant() {
	if n.state.Swap(stateGranted) == stateParked {
		n.park <- struct{}{}
	}
}

// nodePool recycles nodes. A node may be returned to the pool as soon
// as its owner's acquire/release protocol no longer references it; each
// primitive documents where that point is.
var nodePool = sync.Pool{
	New: func() interface{} {
		return &node{park: make(chan struct{}, 1)}
	},
}

// newNode returns a reset node in the Waiting state.
func newNode() *node {
	n := nodePool.Get().(*node)
	n.next.Store(nil)
	n.state.Store(stateWaiting)
	return n
}

func putNode(n *node) {
	nodePool.Put(n)
}
