package repro_test

import (
	"sync"
	"testing"

	"repro"
)

// The facade must expose working aliases for the whole core API; these
// tests exercise each through the public import path.

func TestFacadeMutex(t *testing.T) {
	var m repro.Mutex
	var l sync.Locker = &m
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != 8000 {
		t.Fatalf("counter = %d", counter)
	}
}

func TestFacadeModes(t *testing.T) {
	m := repro.Mutex{Mode: repro.Spin}
	m.Lock()
	m.Unlock()
	m2 := repro.Mutex{Mode: repro.SpinPark}
	m2.Lock()
	m2.Unlock()
}

func TestFacadeRWMutex(t *testing.T) {
	var rw repro.RWMutex
	rw.Lock()
	rw.Unlock()
	tok := rw.RLock()
	rw.RUnlock(tok)
}

func TestFacadeSemaphore(t *testing.T) {
	s := repro.NewSemaphore(1)
	s.Acquire()
	if s.TryAcquire() {
		t.Fatal("TryAcquire with no permits succeeded")
	}
	s.Release()
}

func TestFacadeEventSequencer(t *testing.T) {
	e := repro.NewEvent()
	var q repro.Sequencer
	if q.Ticket() != 1 {
		t.Fatal("first ticket != 1")
	}
	e.Advance()
	e.Await(1)
}

func TestFacadeCond(t *testing.T) {
	var m repro.Mutex
	c := repro.NewCond(&m)
	done := make(chan struct{})
	ok := false
	go func() {
		m.Lock()
		for !ok {
			c.Wait()
		}
		m.Unlock()
		close(done)
	}()
	m.Lock()
	ok = true
	c.Broadcast()
	m.Unlock()
	<-done
}

func TestFacadeBarriers(t *testing.T) {
	b := repro.NewBarrier(2, repro.SpinPark)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for e := 0; e < 10; e++ {
				b.Wait()
			}
		}()
	}
	wg.Wait()

	tb := repro.NewTreeBarrier(3)
	for id := 0; id < 3; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for e := 0; e < 10; e++ {
				tb.Wait(id)
			}
		}(id)
	}
	wg.Wait()
}
