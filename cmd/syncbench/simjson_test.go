package main

import (
	"os"
	"path/filepath"
	"testing"
)

// The -simjson flag must accumulate a trajectory: new snapshots merge
// into the existing file instead of overwriting it, and files written
// in the pre-trajectory single-snapshot layout convert on load.

func TestLoadSimBenchConvertsLegacyFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_sim.json")
	legacy := `{
  "experiment": "simulator hot-path throughput",
  "quick": false,
  "results": [
    {"workload": "lock/tas", "model": "bus", "procs": 8,
     "sim_ops_per_sec": 1000, "events_per_sec": 900, "inline_ops_frac": 0.1}
  ]
}`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := loadSimBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Snapshots) != 1 {
		t.Fatalf("converted %d snapshots, want 1", len(f.Snapshots))
	}
	s := f.Snapshots[0]
	if len(s.Results) != 1 || s.Results[0].Workload != "lock/tas" || s.Results[0].SimOpsPerSec != 1000 {
		t.Fatalf("legacy results not preserved: %+v", s)
	}
	if f.Results != nil {
		t.Fatal("legacy fields should be cleared after conversion")
	}
}

func TestLoadSimBenchMissingFile(t *testing.T) {
	f, err := loadSimBench(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatalf("missing file should yield an empty trajectory, got %v", err)
	}
	if len(f.Snapshots) != 0 {
		t.Fatalf("expected empty trajectory, got %d snapshots", len(f.Snapshots))
	}
}

func TestMergeSimSnapshotAppendsAndReplaces(t *testing.T) {
	base := simBenchSnapshot{Date: "2026-07-01", Label: "baseline", Results: []simBenchResult{{Workload: "lock/tas", SimOpsPerSec: 1}}}
	var f simBenchFile
	f, err := mergeSimSnapshot(f, base)
	if err != nil {
		t.Fatal(err)
	}
	// A different label on the same date is a distinct milestone: append.
	next := simBenchSnapshot{Date: "2026-07-01", Label: "batched", Results: []simBenchResult{{Workload: "lock/tas", SimOpsPerSec: 3}}}
	if f, err = mergeSimSnapshot(f, next); err != nil {
		t.Fatal(err)
	}
	if len(f.Snapshots) != 2 {
		t.Fatalf("distinct labels should append: got %d snapshots", len(f.Snapshots))
	}
	// Re-running the same (date, label, quick) measurement replaces it.
	rerun := simBenchSnapshot{Date: "2026-07-01", Label: "batched", Results: []simBenchResult{{Workload: "lock/tas", SimOpsPerSec: 4}}}
	if f, err = mergeSimSnapshot(f, rerun); err != nil {
		t.Fatal(err)
	}
	if len(f.Snapshots) != 2 {
		t.Fatalf("rerun should replace, not append: got %d snapshots", len(f.Snapshots))
	}
	if got := f.Snapshots[1].Results[0].SimOpsPerSec; got != 4 {
		t.Fatalf("rerun did not replace the matching snapshot: %v", got)
	}
	// The same label on a later date is a new trajectory point: append.
	later := simBenchSnapshot{Date: "2026-07-02", Label: "batched"}
	if f, err = mergeSimSnapshot(f, later); err != nil {
		t.Fatal(err)
	}
	if len(f.Snapshots) != 3 {
		t.Fatalf("later date should append: got %d snapshots", len(f.Snapshots))
	}
}

// TestMergeSimSnapshotRefusesDuplicateLabel pins the duplicate guard:
// the same (date, label) in a different quick/full mode must be
// refused, not appended as a silent second point, and the trajectory
// must be left untouched.
func TestMergeSimSnapshotRefusesDuplicateLabel(t *testing.T) {
	full := simBenchSnapshot{Date: "2026-07-01", Label: "batched", Results: []simBenchResult{{Workload: "lock/tas", SimOpsPerSec: 4}}}
	var f simBenchFile
	f, err := mergeSimSnapshot(f, full)
	if err != nil {
		t.Fatal(err)
	}
	quick := simBenchSnapshot{Date: "2026-07-01", Label: "batched", Quick: true}
	g, err := mergeSimSnapshot(f, quick)
	if err == nil {
		t.Fatal("quick snapshot under an existing full (date, label) should be refused")
	}
	if len(g.Snapshots) != 1 || g.Snapshots[0].Results[0].SimOpsPerSec != 4 {
		t.Fatalf("refused merge must not modify the trajectory: %+v", g.Snapshots)
	}
	// The unlabeled default is held to the same rule.
	f, err = mergeSimSnapshot(f, simBenchSnapshot{Date: "2026-07-03"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err = mergeSimSnapshot(f, simBenchSnapshot{Date: "2026-07-03", Quick: true}); err == nil {
		t.Fatal("unlabeled duplicate in a different mode should be refused")
	}
}
