package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// The -simjson flag must accumulate a trajectory: new snapshots merge
// into the existing file instead of overwriting it, and files written
// in the pre-trajectory single-snapshot layout convert on load.

func TestLoadSimBenchConvertsLegacyFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_sim.json")
	legacy := `{
  "experiment": "simulator hot-path throughput",
  "quick": false,
  "results": [
    {"workload": "lock/tas", "model": "bus", "procs": 8,
     "sim_ops_per_sec": 1000, "events_per_sec": 900, "inline_ops_frac": 0.1}
  ]
}`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := loadSimBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Snapshots) != 1 {
		t.Fatalf("converted %d snapshots, want 1", len(f.Snapshots))
	}
	s := f.Snapshots[0]
	if len(s.Results) != 1 || s.Results[0].Workload != "lock/tas" || s.Results[0].SimOpsPerSec != 1000 {
		t.Fatalf("legacy results not preserved: %+v", s)
	}
	if f.Results != nil {
		t.Fatal("legacy fields should be cleared after conversion")
	}
}

func TestLoadSimBenchMissingFile(t *testing.T) {
	f, err := loadSimBench(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatalf("missing file should yield an empty trajectory, got %v", err)
	}
	if len(f.Snapshots) != 0 {
		t.Fatalf("expected empty trajectory, got %d snapshots", len(f.Snapshots))
	}
}

func TestMergeSimSnapshotAppendsAndReplaces(t *testing.T) {
	base := simBenchSnapshot{Date: "2026-07-01", Label: "baseline", Results: []simBenchResult{{Workload: "lock/tas", SimOpsPerSec: 1}}}
	var f simBenchFile
	f, err := mergeSimSnapshot(f, base)
	if err != nil {
		t.Fatal(err)
	}
	// A different label on the same date is a distinct milestone: append.
	next := simBenchSnapshot{Date: "2026-07-01", Label: "batched", Results: []simBenchResult{{Workload: "lock/tas", SimOpsPerSec: 3}}}
	if f, err = mergeSimSnapshot(f, next); err != nil {
		t.Fatal(err)
	}
	if len(f.Snapshots) != 2 {
		t.Fatalf("distinct labels should append: got %d snapshots", len(f.Snapshots))
	}
	// Re-running the same (date, label, quick) measurement replaces it.
	rerun := simBenchSnapshot{Date: "2026-07-01", Label: "batched", Results: []simBenchResult{{Workload: "lock/tas", SimOpsPerSec: 4}}}
	if f, err = mergeSimSnapshot(f, rerun); err != nil {
		t.Fatal(err)
	}
	if len(f.Snapshots) != 2 {
		t.Fatalf("rerun should replace, not append: got %d snapshots", len(f.Snapshots))
	}
	if got := f.Snapshots[1].Results[0].SimOpsPerSec; got != 4 {
		t.Fatalf("rerun did not replace the matching snapshot: %v", got)
	}
	// The same label on a later date is a new trajectory point: append.
	later := simBenchSnapshot{Date: "2026-07-02", Label: "batched"}
	if f, err = mergeSimSnapshot(f, later); err != nil {
		t.Fatal(err)
	}
	if len(f.Snapshots) != 3 {
		t.Fatalf("later date should append: got %d snapshots", len(f.Snapshots))
	}
}

// TestSimScaleLabelRoundTrip pins the procs-axis scaling label (PR 6):
// the deep P ∈ {256, 1024} battery rows must land in the trajectory as
// distinct rows — (workload, model, scale) is the collision-free key —
// and the label must survive a write/load round trip through the
// trajectory file, including past a merge that replaces the snapshot.
func TestSimScaleLabelRoundTrip(t *testing.T) {
	if got, want := simScaleLabel(32), "P32"; got != want {
		t.Fatalf("simScaleLabel(32) = %q, want %q", got, want)
	}
	row := func(workload, model string, procs int) simBenchResult {
		return simBenchResult{
			Workload: workload, Model: model, Procs: procs,
			Scale: simScaleLabel(procs), SimOpsPerSec: float64(procs),
		}
	}
	snap := simBenchSnapshot{
		Date:  "2026-08-08",
		Label: "scaling sweep",
		Results: []simBenchResult{
			row("lock/tas", "cluster", 32),
			row("lock/tas", "cluster", 256),
			row("lock/tas-nowin", "cluster", 256),
			row("lock/tas", "cluster", 1024),
			row("lock/tas", "numa", 256),
		},
	}
	// The deep points share (workload, model) with the canonical rows;
	// the scale label is what keeps the row keys distinct.
	keys := map[string]bool{}
	for _, r := range snap.Results {
		k := r.Workload + "@" + r.Model + "/" + r.Scale
		if keys[k] {
			t.Fatalf("duplicate row key %q: scale label does not disambiguate", k)
		}
		keys[k] = true
	}

	var f simBenchFile
	f, err := mergeSimSnapshot(f, snap)
	if err != nil {
		t.Fatal(err)
	}
	f.Experiment = "round trip"
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_sim.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := loadSimBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Snapshots) != 1 {
		t.Fatalf("round trip changed snapshot count: %d", len(got.Snapshots))
	}
	if !reflect.DeepEqual(got.Snapshots[0], snap) {
		t.Fatalf("snapshot changed across the round trip:\n  wrote %+v\n  read  %+v", snap, got.Snapshots[0])
	}
	for _, r := range got.Snapshots[0].Results {
		if r.Scale != simScaleLabel(r.Procs) {
			t.Errorf("row %s@%s: scale %q does not match procs %d", r.Workload, r.Model, r.Scale, r.Procs)
		}
	}
}

// TestSimInlineTwinLabelRoundTrip pins the continuation-dispatch twin
// labels (PR 10): an inline/noinline pair on the same (model, procs)
// must land in the trajectory as distinct rows — the "-noinline"
// workload suffix is the key, exactly like PR 4's "-nowin" twins — and
// both rows must survive the write/load round trip, including a twin
// that is simultaneously windows-off (suffixes compose in battery
// order: "-nowin-noinline").
func TestSimInlineTwinLabelRoundTrip(t *testing.T) {
	row := func(workload string, ops float64) simBenchResult {
		return simBenchResult{
			Workload: workload, Model: "cluster", Procs: 32,
			Scale: simScaleLabel(32), SimOpsPerSec: ops,
		}
	}
	snap := simBenchSnapshot{
		Date:  "2026-08-08",
		Label: "inline continuation dispatch",
		Results: []simBenchResult{
			row("lock/tas", 19e6),
			row("lock/tas-noinline", 7e6),
			row("lock/tas-nowin", 6e6),
			row("lock/tas-nowin-noinline", 5e6),
		},
	}
	keys := map[string]bool{}
	for _, r := range snap.Results {
		k := r.Workload + "@" + r.Model + "/" + r.Scale
		if keys[k] {
			t.Fatalf("duplicate row key %q: dispatch twin suffix does not disambiguate", k)
		}
		keys[k] = true
	}

	var f simBenchFile
	f, err := mergeSimSnapshot(f, snap)
	if err != nil {
		t.Fatal(err)
	}
	f.Experiment = "round trip"
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_sim.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := loadSimBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Snapshots) != 1 || !reflect.DeepEqual(got.Snapshots[0], snap) {
		t.Fatalf("twin snapshot changed across the round trip:\n  wrote %+v\n  read  %+v", snap, got.Snapshots)
	}
}

// TestMergeSimSnapshotRefusesDuplicateLabel pins the duplicate guard:
// the same (date, label) in a different quick/full mode must be
// refused, not appended as a silent second point, and the trajectory
// must be left untouched.
func TestMergeSimSnapshotRefusesDuplicateLabel(t *testing.T) {
	full := simBenchSnapshot{Date: "2026-07-01", Label: "batched", Results: []simBenchResult{{Workload: "lock/tas", SimOpsPerSec: 4}}}
	var f simBenchFile
	f, err := mergeSimSnapshot(f, full)
	if err != nil {
		t.Fatal(err)
	}
	quick := simBenchSnapshot{Date: "2026-07-01", Label: "batched", Quick: true}
	g, err := mergeSimSnapshot(f, quick)
	if err == nil {
		t.Fatal("quick snapshot under an existing full (date, label) should be refused")
	}
	if len(g.Snapshots) != 1 || g.Snapshots[0].Results[0].SimOpsPerSec != 4 {
		t.Fatalf("refused merge must not modify the trajectory: %+v", g.Snapshots)
	}
	// The unlabeled default is held to the same rule.
	f, err = mergeSimSnapshot(f, simBenchSnapshot{Date: "2026-07-03"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err = mergeSimSnapshot(f, simBenchSnapshot{Date: "2026-07-03", Quick: true}); err == nil {
		t.Fatal("unlabeled duplicate in a different mode should be refused")
	}
}
