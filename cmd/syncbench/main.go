// Command syncbench regenerates every figure and table of the
// reconstructed ICPP 1991 evaluation (see DESIGN.md and EXPERIMENTS.md).
//
// Usage:
//
//	syncbench -list
//	syncbench -all                 # full-size run of every experiment
//	syncbench -run F2,F4           # selected tables
//	syncbench -quick -all          # small sweeps, finishes in seconds
//	syncbench -all -csv results/   # also write one CSV per table
//	syncbench -all -algos=tas,qsync  # restrict sweeps to named algorithms
//	syncbench -topo=cluster -run L1-cluster,X1  # topology selection (see -list)
//	syncbench -faults=L0,R2 -run FT3,FT4  # fault-level selection (see -list)
//	syncbench -shardedjson BENCH_sharded.json  # real-runtime ops/sec snapshot
//	syncbench -simjson BENCH_sim.json -simlabel "engine milestone"
//	                               # merge a dated snapshot into the trajectory
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/locks"
	"repro/internal/machine"
	"repro/internal/registry"
	"repro/internal/sharded"
	"repro/internal/simsync"
	"repro/internal/topo"
	"repro/internal/workload"
)

func main() {
	os.Exit(run())
}

// run is main minus os.Exit, so the -cpuprofile/-memprofile defers
// flush on every exit path, including errors.
func run() int {
	var (
		list     = flag.Bool("list", false, "list experiments and exit")
		runIDs   = flag.String("run", "", "comma-separated table ids to regenerate (e.g. F2,T3)")
		all      = flag.Bool("all", false, "run every experiment")
		quick    = flag.Bool("quick", false, "small sweeps (seconds instead of minutes)")
		csvDir   = flag.String("csv", "", "directory to write one CSV per table")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		algos    = flag.String("algos", "", "comma-separated algorithm names to restrict sweeps to (per family; families with no match run in full)")
		topos    = flag.String("topo", "", "comma-separated topology names for the topology-axis experiments (X1/X2 and the per-topology battery); see -list")
		faults   = flag.String("faults", "", "comma-separated fault-level names for the fault-axis experiments (FT1/FT2 and FT3/FT4); see -list")
		benchJS  = flag.String("shardedjson", "", "write a machine-readable real-runtime ops/sec snapshot (e.g. BENCH_sharded.json)")
		simJS    = flag.String("simjson", "", "merge a dated simulator-throughput snapshot into this trajectory file (e.g. BENCH_sim.json); earlier snapshots are preserved")
		simLabel = flag.String("simlabel", "", "optional label recorded on the -simjson snapshot")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		verbose  = flag.Bool("v", false, "print per-sweep-point progress")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "syncbench:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "syncbench:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "syncbench:", err)
				return
			}
			defer f.Close()
			// The heap profile reflects the most recently completed GC
			// cycle, so force one first: without it the snapshot shows
			// whatever the last incidental GC saw — including since-freed
			// sweep machinery — instead of what is actually live on exit.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "syncbench:", err)
			}
		}()
	}

	if *list {
		fmt.Println("experiments (table ids -> title):")
		for _, e := range harness.Registry() {
			fmt.Printf("  %-12s %s\n", strings.Join(e.IDs, "+"), e.Title)
		}
		fmt.Printf("topologies (-topo): %s\n", strings.Join(topo.Names(), " "))
		fmt.Println("fault levels (-faults):")
		for _, lv := range harness.FaultLevels() {
			fmt.Printf("  %-12s %s\n", lv.Name, lv.Note)
		}
		return 0
	}

	algoList := registry.SplitList(*algos)
	if err := harness.ValidateAlgos(algoList); err != nil {
		fmt.Fprintln(os.Stderr, "syncbench:", err)
		return 2
	}
	topoList := registry.SplitList(*topos)
	if err := harness.ValidateTopos(topoList); err != nil {
		fmt.Fprintln(os.Stderr, "syncbench:", err)
		return 2
	}
	faultList := registry.SplitList(*faults)
	if err := harness.ValidateFaults(faultList); err != nil {
		fmt.Fprintln(os.Stderr, "syncbench:", err)
		return 2
	}

	var ids []string
	if *runIDs != "" {
		for _, id := range strings.Split(*runIDs, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	if *benchJS != "" {
		if err := writeShardedBench(*benchJS, *quick, algoList); err != nil {
			fmt.Fprintln(os.Stderr, "syncbench:", err)
			return 1
		}
		fmt.Printf("wrote %s\n", *benchJS)
	}
	if *simJS != "" {
		if err := writeSimBench(*simJS, *quick, *simLabel); err != nil {
			fmt.Fprintln(os.Stderr, "syncbench:", err)
			return 1
		}
		fmt.Printf("wrote %s\n", *simJS)
	}
	if len(ids) == 0 && !*all {
		if *benchJS != "" || *simJS != "" {
			return 0
		}
		fmt.Fprintln(os.Stderr, "nothing to do: pass -all, -run <ids>, -shardedjson <path>, -simjson <path>, or -list")
		flag.Usage()
		return 2
	}

	opts := harness.Options{Quick: *quick, Seed: *seed, CSVDir: *csvDir, Algos: algoList, Topos: topoList, Faults: faultList}
	if *verbose {
		opts.Progress = os.Stderr
	}
	if err := harness.RunIDs(ids, opts, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "syncbench:", err)
		return 1
	}
	return 0
}

// simBenchResult is one line of a BENCH_sim.json snapshot: host-side
// throughput of the simulator on one fixed contended workload. Model
// carries the topology label (the json key predates the topology
// subsystem and is kept for trajectory continuity).
type simBenchResult struct {
	Workload string `json:"workload"`
	Model    string `json:"model"`
	Procs    int    `json:"procs"`
	// Scale is the procs-axis-aware scaling label ("P32", "P256", ...):
	// trajectory tooling that keys rows by (workload, model) predates
	// the P ∈ {256, 1024} scaling points, and without the label those
	// deep rows would collide with the canonical P=32 rows of the same
	// workload. Always computed via simScaleLabel, never hand-written.
	Scale         string  `json:"scale,omitempty"`
	SimOpsPerSec  float64 `json:"sim_ops_per_sec"`
	EventsPerSec  float64 `json:"events_per_sec"`
	InlineOpsFrac float64 `json:"inline_ops_frac"` // fraction of ops retired on the fast path
}

// simScaleLabel renders the procs-axis scaling label for one snapshot
// row, making (workload, model, scale) a collision-free row key across
// the whole P axis.
func simScaleLabel(procs int) string {
	return fmt.Sprintf("P%d", procs)
}

// simBenchSnapshot is one dated measurement of the whole battery.
type simBenchSnapshot struct {
	Date    string           `json:"date"`
	Label   string           `json:"label,omitempty"`
	Quick   bool             `json:"quick"`
	Results []simBenchResult `json:"results"`
}

// simBenchFile is the simulator-throughput trajectory: one snapshot per
// engine-improvement milestone, so the host-efficiency history of the
// event engine and machine hot path reads directly from the file.
// Legacy single-snapshot files (top-level "results") are converted to a
// one-entry trajectory on load.
type simBenchFile struct {
	Experiment string             `json:"experiment"`
	Snapshots  []simBenchSnapshot `json:"snapshots"`

	// Legacy single-snapshot fields, for reading files written before
	// the trajectory format.
	Quick   bool             `json:"quick,omitempty"`
	Results []simBenchResult `json:"results,omitempty"`
}

// loadSimBench reads an existing trajectory file, converting the legacy
// single-snapshot layout. A missing file yields an empty trajectory.
func loadSimBench(path string) (simBenchFile, error) {
	var f simBenchFile
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return f, nil
	}
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("simjson: %s: %w", path, err)
	}
	if len(f.Snapshots) == 0 && len(f.Results) > 0 {
		f.Snapshots = []simBenchSnapshot{{
			Label: "converted legacy snapshot", Quick: f.Quick, Results: f.Results,
		}}
	}
	f.Quick = false
	f.Results = nil
	return f, nil
}

// mergeSimSnapshot appends snap to the trajectory. A (date, label)
// pair identifies one milestone measurement: re-running it in the same
// mode replaces the entry, while a quick/full mode mismatch is refused
// — silently appending a second point under the same label would make
// the trajectory ambiguous (two same-day points whose difference is
// sweep size, not engine progress). Distinct milestones measured the
// same day need distinct -simlabel values.
func mergeSimSnapshot(f simBenchFile, snap simBenchSnapshot) (simBenchFile, error) {
	if err := simSnapshotConflict(f, snap); err != nil {
		return f, err
	}
	for i, s := range f.Snapshots {
		if s.Date == snap.Date && s.Label == snap.Label {
			f.Snapshots[i] = snap
			return f, nil
		}
	}
	f.Snapshots = append(f.Snapshots, snap)
	return f, nil
}

// simSnapshotConflict reports the duplicate-(date, label) refusal
// without mutating the trajectory. writeSimBench runs it against the
// loaded file before measuring, so a conflicting invocation fails in
// milliseconds instead of after a full battery run.
func simSnapshotConflict(f simBenchFile, snap simBenchSnapshot) error {
	for _, s := range f.Snapshots {
		if s.Date == snap.Date && s.Label == snap.Label && s.Quick != snap.Quick {
			return fmt.Errorf("simjson: snapshot %q on %s already exists with quick=%v; re-run in the same mode or pick a distinct -simlabel",
				snap.Label, snap.Date, s.Quick)
		}
	}
	return nil
}

// writeSimBench measures host-side simulator throughput — simulated
// memory operations and engine events per host second — over a fixed
// battery of contended workloads, and merges the dated snapshot into
// the trajectory file at path (earlier snapshots are preserved, so the
// file accumulates the engine's perf history). The simulated results of
// these runs are deterministic; only the host throughput varies between
// machines.
func writeSimBench(path string, quick bool, label string) error {
	iters := 200
	reps := 20
	if quick {
		iters, reps = 40, 3
	}
	snap := simBenchSnapshot{
		Date:  time.Now().Format("2006-01-02"),
		Label: label,
		Quick: quick,
	}
	// Load the trajectory and refuse a duplicate (date, label) up
	// front, before the battery burns minutes of measurement.
	f, err := loadSimBench(path)
	if err != nil {
		return err
	}
	if err := simSnapshotConflict(f, snap); err != nil {
		return err
	}
	// The windows-on/off pairs measure spin-window batching directly:
	// same workload with windows on (default) and forced off, so the
	// trajectory file itself carries the speedup. Since the
	// per-distance-class rotations (PR 6) the cluster storms batch too
	// — their pairs track the mixed-service closed form against the
	// per-event path on the hierarchical machine. The deep P ∈ {256,
	// 1024} rows are the scaling points: storms grow with P, so those
	// rows carry their own (smaller) iteration counts to keep cell cost
	// roughly flat, and their procs-axis scale labels keep them from
	// colliding with the canonical P=32 rows.
	// The -noinline twins (PR 10) do the same for continuation dispatch:
	// the default leg executes straight-line scripted events inline in
	// the drive loop, the twin forces every one back over the per-event
	// goroutine baton, so the pair's ratio is the handoff residue on the
	// most contended rows. Simulated results are bit-identical either
	// way (the NoInlineDispatch determinism suite pins this).
	battery := []struct {
		lock     string
		topo     topo.Topology
		procs    int
		noWin    bool
		noInline bool
		iters    int // 0 = battery default
	}{
		{"tas", topo.Bus, 8, false, false, 0},
		{"tas", topo.Bus, 32, false, false, 0},
		{"tas", topo.Bus, 32, true, false, 0},
		{"tas", topo.Bus, 32, false, true, 0},
		{"ttas", topo.Bus, 8, false, false, 0},
		{"tas-bo", topo.Bus, 8, false, false, 0},
		{"qsync", topo.Bus, 8, false, false, 0},
		{"qsync", topo.NUMA, 16, false, false, 0},
		{"tas", topo.Cluster, 32, false, false, 0},
		{"tas", topo.Cluster, 32, true, false, 0},
		{"tas", topo.Cluster, 32, false, true, 0},
		{"qsync", topo.Cluster, 16, false, false, 0},
		// Deep scaling points (heap-mode engine, multi-word window masks).
		{"tas", topo.NUMA, 256, false, false, 8},
		{"tas", topo.NUMA, 256, true, false, 8},
		{"tas", topo.Cluster, 256, false, false, 8},
		{"tas", topo.Cluster, 256, true, false, 8},
		{"tas", topo.Cluster, 256, false, true, 8},
		{"tas", topo.Cluster, 1024, false, false, 2},
		{"tas", topo.Cluster, 1024, true, false, 2},
	}
	pool := new(machine.Pool)
	for _, bc := range battery {
		info, ok := simsync.LockByName(bc.lock)
		if !ok {
			return fmt.Errorf("simjson: unknown lock %q", bc.lock)
		}
		cellIters := iters
		if bc.iters > 0 {
			cellIters = bc.iters
		}
		var ops, events, inline uint64
		start := time.Now()
		for r := 0; r < reps; r++ {
			res, err := simsync.RunLockIn(pool,
				machine.Config{Procs: bc.procs, Topo: bc.topo, Seed: uint64(r + 1),
					SharedWords: 1 << 12, LocalWords: 1 << 8,
					NoSpinWindows: bc.noWin, NoInlineDispatch: bc.noInline},
				info,
				simsync.LockOpts{Iters: cellIters, CS: 25, Think: 50, CheckMutex: true},
			)
			if err != nil {
				return fmt.Errorf("simjson: %s: %w", bc.lock, err)
			}
			st := res.Stats
			ops += st.Loads + st.Stores + st.RMWs
			events += st.Events
			inline += st.InlineOps
		}
		el := time.Since(start).Seconds()
		name := "lock/" + bc.lock
		if bc.noWin {
			name += "-nowin"
		}
		if bc.noInline {
			name += "-noinline"
		}
		res := simBenchResult{
			Workload: name, Model: bc.topo.Name(), Procs: bc.procs,
			Scale:        simScaleLabel(bc.procs),
			SimOpsPerSec: float64(ops) / el,
			EventsPerSec: float64(events) / el,
		}
		if ops > 0 {
			res.InlineOpsFrac = float64(inline) / float64(ops)
		}
		snap.Results = append(snap.Results, res)
	}
	f.Experiment = "simulator hot-path throughput (host ops/sec, contended workloads)"
	if f, err = mergeSimSnapshot(f, snap); err != nil {
		return err
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(path, append(data, '\n'))
}

// writeFileAtomic writes data to path via a temp file in the same
// directory plus a rename, so a crash (or ^C) mid-write never leaves a
// truncated snapshot behind — these JSON files are merged trajectories
// that accumulate history across runs, and a torn write would lose all
// of it on the next merge.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// benchResult is one line of the BENCH_sharded.json trajectory file.
type benchResult struct {
	Family    string  `json:"family"`
	Name      string  `json:"name"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// benchFile is the whole snapshot; future PRs diff these to track the
// perf trajectory of the sharded layer.
type benchFile struct {
	Experiment string        `json:"experiment"`
	Goroutines int           `json:"goroutines"`
	Quick      bool          `json:"quick"`
	Results    []benchResult `json:"results"`
}

// writeShardedBench measures real-runtime ops/sec for the hot-spot
// counters (central vs sharded) and the registered reader-writer locks
// under a read-heavy mix, and writes them as JSON. The -algos selection
// applies with the same lenient per-family semantics as the sweeps.
func writeShardedBench(path string, quick bool, algoList []string) error {
	gor := runtime.GOMAXPROCS(0)
	iters := 200000
	rwIters := 20000
	if quick {
		iters, rwIters = 20000, 2000
	}
	out := benchFile{
		Experiment: "sharded hot-spot and read-mostly throughput (real runtime)",
		Goroutines: gor,
		Quick:      quick,
	}

	// Names mirror the simulated counter registry (the real central
	// counter is one fetch&add word), so one -algos list addresses both.
	allCounters := []struct {
		name string
		c    workload.AddLoader
	}{
		{"ctr-fa", sharded.NewCentralCounter()},
		{"ctr-sharded", sharded.NewCounter(0)},
	}
	want := make(map[string]bool, len(algoList))
	for _, n := range algoList {
		want[n] = true
	}
	counters := allCounters[:0:0]
	for _, tc := range allCounters {
		if want[tc.name] {
			counters = append(counters, tc)
		}
	}
	if len(counters) == 0 {
		counters = allCounters
	}
	for _, tc := range counters {
		res, ok := workload.RunCounterHotspot(tc.c, workload.CounterOpts{
			Goroutines: gor, Iters: iters,
		})
		if !ok {
			return fmt.Errorf("counter %s lost updates", tc.name)
		}
		out.Results = append(out.Results, benchResult{
			Family: "counter", Name: tc.name, OpsPerSec: res.OpsPerSec,
		})
	}

	for _, info := range locks.RWRegistry.Filter(algoList) {
		res, ok := workload.RunReadMix(info.New(gor), workload.RWOpts{
			Goroutines: gor, Iters: rwIters, ReadFraction: 0.95, Work: 50,
		})
		if !ok {
			return fmt.Errorf("rwlock %s invariant broken", info.Name)
		}
		out.Results = append(out.Results, benchResult{
			Family: "rwlock", Name: info.Name, OpsPerSec: res.OpsPerSec,
		})
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(path, append(data, '\n'))
}
