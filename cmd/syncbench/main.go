// Command syncbench regenerates every figure and table of the
// reconstructed ICPP 1991 evaluation (see DESIGN.md and EXPERIMENTS.md).
//
// Usage:
//
//	syncbench -list
//	syncbench -all                 # full-size run of every experiment
//	syncbench -run F2,F4           # selected tables
//	syncbench -quick -all          # small sweeps, finishes in seconds
//	syncbench -all -csv results/   # also write one CSV per table
//	syncbench -all -algos=tas,qsync  # restrict sweeps to named algorithms
//	syncbench -shardedjson BENCH_sharded.json  # real-runtime ops/sec snapshot
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/harness"
	"repro/internal/locks"
	"repro/internal/registry"
	"repro/internal/sharded"
	"repro/internal/workload"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiments and exit")
		runIDs  = flag.String("run", "", "comma-separated table ids to regenerate (e.g. F2,T3)")
		all     = flag.Bool("all", false, "run every experiment")
		quick   = flag.Bool("quick", false, "small sweeps (seconds instead of minutes)")
		csvDir  = flag.String("csv", "", "directory to write one CSV per table")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		algos   = flag.String("algos", "", "comma-separated algorithm names to restrict sweeps to (per family; families with no match run in full)")
		benchJS = flag.String("shardedjson", "", "write a machine-readable real-runtime ops/sec snapshot (e.g. BENCH_sharded.json)")
		verbose = flag.Bool("v", false, "print per-sweep-point progress")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments (table ids -> title):")
		for _, e := range harness.Registry() {
			fmt.Printf("  %-12s %s\n", strings.Join(e.IDs, "+"), e.Title)
		}
		return
	}

	algoList := registry.SplitList(*algos)
	if err := harness.ValidateAlgos(algoList); err != nil {
		fmt.Fprintln(os.Stderr, "syncbench:", err)
		os.Exit(2)
	}

	var ids []string
	if *runIDs != "" {
		for _, id := range strings.Split(*runIDs, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	if *benchJS != "" {
		if err := writeShardedBench(*benchJS, *quick, algoList); err != nil {
			fmt.Fprintln(os.Stderr, "syncbench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *benchJS)
		if len(ids) == 0 && !*all {
			return
		}
	}
	if len(ids) == 0 && !*all {
		fmt.Fprintln(os.Stderr, "nothing to do: pass -all, -run <ids>, -shardedjson <path>, or -list")
		flag.Usage()
		os.Exit(2)
	}

	opts := harness.Options{Quick: *quick, Seed: *seed, CSVDir: *csvDir, Algos: algoList}
	if *verbose {
		opts.Progress = os.Stderr
	}
	if err := harness.RunIDs(ids, opts, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "syncbench:", err)
		os.Exit(1)
	}
}

// benchResult is one line of the BENCH_sharded.json trajectory file.
type benchResult struct {
	Family    string  `json:"family"`
	Name      string  `json:"name"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// benchFile is the whole snapshot; future PRs diff these to track the
// perf trajectory of the sharded layer.
type benchFile struct {
	Experiment string        `json:"experiment"`
	Goroutines int           `json:"goroutines"`
	Quick      bool          `json:"quick"`
	Results    []benchResult `json:"results"`
}

// writeShardedBench measures real-runtime ops/sec for the hot-spot
// counters (central vs sharded) and the registered reader-writer locks
// under a read-heavy mix, and writes them as JSON. The -algos selection
// applies with the same lenient per-family semantics as the sweeps.
func writeShardedBench(path string, quick bool, algoList []string) error {
	gor := runtime.GOMAXPROCS(0)
	iters := 200000
	rwIters := 20000
	if quick {
		iters, rwIters = 20000, 2000
	}
	out := benchFile{
		Experiment: "sharded hot-spot and read-mostly throughput (real runtime)",
		Goroutines: gor,
		Quick:      quick,
	}

	// Names mirror the simulated counter registry (the real central
	// counter is one fetch&add word), so one -algos list addresses both.
	allCounters := []struct {
		name string
		c    workload.AddLoader
	}{
		{"ctr-fa", sharded.NewCentralCounter()},
		{"ctr-sharded", sharded.NewCounter(0)},
	}
	want := make(map[string]bool, len(algoList))
	for _, n := range algoList {
		want[n] = true
	}
	counters := allCounters[:0:0]
	for _, tc := range allCounters {
		if want[tc.name] {
			counters = append(counters, tc)
		}
	}
	if len(counters) == 0 {
		counters = allCounters
	}
	for _, tc := range counters {
		res, ok := workload.RunCounterHotspot(tc.c, workload.CounterOpts{
			Goroutines: gor, Iters: iters,
		})
		if !ok {
			return fmt.Errorf("counter %s lost updates", tc.name)
		}
		out.Results = append(out.Results, benchResult{
			Family: "counter", Name: tc.name, OpsPerSec: res.OpsPerSec,
		})
	}

	for _, info := range locks.RWRegistry.Filter(algoList) {
		res, ok := workload.RunReadMix(info.New(gor), workload.RWOpts{
			Goroutines: gor, Iters: rwIters, ReadFraction: 0.95, Work: 50,
		})
		if !ok {
			return fmt.Errorf("rwlock %s invariant broken", info.Name)
		}
		out.Results = append(out.Results, benchResult{
			Family: "rwlock", Name: info.Name, OpsPerSec: res.OpsPerSec,
		})
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
