// Command syncbench regenerates every figure and table of the
// reconstructed ICPP 1991 evaluation (see DESIGN.md and EXPERIMENTS.md).
//
// Usage:
//
//	syncbench -list
//	syncbench -all                 # full-size run of every experiment
//	syncbench -run F2,F4           # selected tables
//	syncbench -quick -all          # small sweeps, finishes in seconds
//	syncbench -all -csv results/   # also write one CSV per table
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/harness"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiments and exit")
		runIDs  = flag.String("run", "", "comma-separated table ids to regenerate (e.g. F2,T3)")
		all     = flag.Bool("all", false, "run every experiment")
		quick   = flag.Bool("quick", false, "small sweeps (seconds instead of minutes)")
		csvDir  = flag.String("csv", "", "directory to write one CSV per table")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		verbose = flag.Bool("v", false, "print per-sweep-point progress")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments (table ids -> title):")
		for _, e := range harness.Registry() {
			fmt.Printf("  %-12s %s\n", strings.Join(e.IDs, "+"), e.Title)
		}
		return
	}

	var ids []string
	if *runIDs != "" {
		for _, id := range strings.Split(*runIDs, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	if len(ids) == 0 && !*all {
		fmt.Fprintln(os.Stderr, "nothing to do: pass -all, -run <ids>, or -list")
		flag.Usage()
		os.Exit(2)
	}

	opts := harness.Options{Quick: *quick, Seed: *seed, CSVDir: *csvDir}
	if *verbose {
		opts.Progress = os.Stderr
	}
	if err := harness.RunIDs(ids, opts, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "syncbench:", err)
		os.Exit(1)
	}
}
