// Command ratelimiter serves an admission-controlled work endpoint: the
// overload-robustness pieces of this repo (sharded.Gate, stats.Hist)
// wrapped in the smallest HTTP service that demonstrates them end to
// end. Every request carries a deadline, the gate bounds how many may
// wait for a permit, and everything beyond that bound is shed
// immediately with 429 + Retry-After instead of queueing into the
// deadline ceiling.
//
// Usage:
//
//	ratelimiter -addr :8080 -permits 4 -waiters 64 -hold 2ms
//	ratelimiter -selftest        # in-process smoke: start, drive, drain
//
// Endpoints:
//
//	GET /work      acquire a permit, hold it for -hold (or ?ms=N,
//	               capped), release. Deadline comes from the
//	               X-Deadline-Ms header, ?deadline_ms=N, or -budget.
//	               200 on success, 429 shed, 503 draining, 504 deadline.
//	GET /healthz   200 "ok" while serving, 503 "draining" after SIGTERM.
//	GET /statz     JSON counters: admitted/shed/timeout/canceled,
//	               in-flight, waiting, goodput, p50/p95/p99 ms, uptime.
//
// On SIGTERM/SIGINT the server flips /healthz to draining, closes the
// gate (waiters fail fast with 503), and gives in-flight requests a
// grace period before exiting.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/sharded"
	"repro/internal/stats"
)

// server is the handler state: one gate, one latency histogram, and
// the knobs they were built with.
type server struct {
	gate     *sharded.Gate
	lat      *stats.ShardedHist
	hold     time.Duration // default simulated service time
	maxHold  time.Duration // ceiling on client-requested ?ms
	budget   time.Duration // default per-request deadline
	start    time.Time
	draining atomic.Bool
}

func newServer(permits int64, waiters int, hold, budget time.Duration) *server {
	return &server{
		gate:    sharded.NewGate(permits, waiters, 0),
		lat:     stats.NewShardedHist(0),
		hold:    hold,
		maxHold: 20 * hold,
		budget:  budget,
		start:   time.Now(),
	}
}

// requestBudget resolves the request's deadline: header beats query
// beats the server default. Zero or garbage falls back to the default.
func (s *server) requestBudget(r *http.Request) time.Duration {
	for _, raw := range []string{r.Header.Get("X-Deadline-Ms"), r.URL.Query().Get("deadline_ms")} {
		if raw == "" {
			continue
		}
		if ms, err := strconv.Atoi(raw); err == nil && ms > 0 {
			return time.Duration(ms) * time.Millisecond
		}
	}
	return s.budget
}

// retryAfterSec estimates when a shed client should come back: the
// time for the current waiting room to drain through the permit pool,
// rounded up to whole seconds (Retry-After's granularity).
func (s *server) retryAfterSec() int {
	st := s.gate.Stats()
	drain := time.Duration(st.Waiting/s.gate.Capacity()+1) * s.hold
	sec := int((drain + time.Second - 1) / time.Second)
	if sec < 1 {
		sec = 1
	}
	return sec
}

func (s *server) handleWork(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), s.requestBudget(r))
	defer cancel()

	startWait := time.Now()
	switch err := s.gate.Acquire(ctx); {
	case err == nil:
		// admitted below
	case errors.Is(err, sharded.ErrShed):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSec()))
		http.Error(w, "shed: waiting room full", http.StatusTooManyRequests)
		return
	case errors.Is(err, sharded.ErrClosed):
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	default: // context deadline or cancellation while waiting
		http.Error(w, "deadline exceeded while queued", http.StatusGatewayTimeout)
		return
	}
	defer s.gate.Release()

	hold := s.hold
	if raw := r.URL.Query().Get("ms"); raw != "" {
		if ms, err := strconv.Atoi(raw); err == nil && ms >= 0 {
			hold = min(time.Duration(ms)*time.Millisecond, s.maxHold)
		}
	}
	// The permit is held for the service time, but never past the
	// request's deadline: a deadline-aware worker stops early rather
	// than doing work nobody is waiting for.
	select {
	case <-time.After(hold):
	case <-ctx.Done():
		http.Error(w, "deadline exceeded mid-service", http.StatusGatewayTimeout)
		return
	}
	s.lat.Record(int64(time.Since(startWait)))
	fmt.Fprintf(w, "ok wait+service=%v\n", time.Since(startWait).Round(time.Microsecond))
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() || s.gate.Closed() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// statz is the expvar-style counter snapshot.
type statz struct {
	Admitted  int64   `json:"admitted"`
	Shed      int64   `json:"shed"`
	TimedOut  int64   `json:"timed_out"`
	Canceled  int64   `json:"canceled"`
	InFlight  int64   `json:"in_flight"`
	Waiting   int64   `json:"waiting"`
	Draining  bool    `json:"draining"`
	UptimeSec float64 `json:"uptime_sec"`
	OKPerSec  float64 `json:"ok_per_sec"`
	P50Ms     float64 `json:"p50_ms"`
	P95Ms     float64 `json:"p95_ms"`
	P99Ms     float64 `json:"p99_ms"`
}

func (s *server) snapshot() statz {
	st := s.gate.Stats()
	h := s.lat.Snapshot()
	up := time.Since(s.start).Seconds()
	ms := func(p float64) float64 { return float64(h.Quantile(p)) / 1e6 }
	return statz{
		Admitted: st.Admitted, Shed: st.Shed, TimedOut: st.TimedOut, Canceled: st.Canceled,
		InFlight: st.InFlight, Waiting: st.Waiting,
		Draining:  s.draining.Load() || st.Closed,
		UptimeSec: up,
		OKPerSec:  float64(h.Count()) / up,
		P50Ms:     ms(0.50), P95Ms: ms(0.95), P99Ms: ms(0.99),
	}
}

func (s *server) handleStatz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.snapshot())
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/work", s.handleWork)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statz", s.handleStatz)
	return mux
}

// drain is the SIGTERM path: stop advertising health, close the gate
// so queued waiters 503 instead of burning their deadlines, then give
// in-flight handlers a grace period.
func (s *server) drain(srv *http.Server, grace time.Duration) error {
	s.draining.Store(true)
	s.gate.Close()
	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := s.gate.Drain(ctx); err != nil {
		return fmt.Errorf("gate drain: %w", err)
	}
	return srv.Shutdown(ctx)
}

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		permits  = flag.Int64("permits", 4, "concurrent work permits")
		waiters  = flag.Int("waiters", 64, "max queued acquirers before shedding (0 = shed unless free, -1 = unbounded)")
		hold     = flag.Duration("hold", 2*time.Millisecond, "default simulated service time per request")
		budget   = flag.Duration("budget", 100*time.Millisecond, "default per-request deadline")
		grace    = flag.Duration("grace", 5*time.Second, "drain grace period on SIGTERM")
		selftest = flag.Bool("selftest", false, "start on an ephemeral port, drive traffic through every status path, drain, and exit")
	)
	flag.Parse()

	s := newServer(*permits, *waiters, *hold, *budget)

	if *selftest {
		if err := runSelftest(s, *grace); err != nil {
			fmt.Fprintln(os.Stderr, "selftest:", err)
			os.Exit(1)
		}
		fmt.Println("selftest ok")
		return
	}

	srv := &http.Server{Addr: *addr, Handler: s.mux()}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGTERM, syscall.SIGINT)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "ratelimiter listening on %s (permits=%d waiters=%d hold=%v budget=%v)\n",
		*addr, *permits, *waiters, *hold, *budget)
	select {
	case sig := <-stop:
		fmt.Fprintf(os.Stderr, "%v: draining (grace %v)\n", sig, *grace)
		if err := s.drain(srv, *grace); err != nil {
			fmt.Fprintln(os.Stderr, "drain:", err)
			os.Exit(1)
		}
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runSelftest exercises the service in-process: real listener, real
// HTTP round trips, overload sheds, then a clean drain. Used by the CI
// smoke step.
func runSelftest(s *server, grace time.Duration) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.mux()}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()

	get := func(path string) (int, error) {
		resp, err := http.Get(base + path)
		if err != nil {
			return 0, err
		}
		resp.Body.Close()
		return resp.StatusCode, nil
	}
	if code, err := get("/healthz"); err != nil || code != http.StatusOK {
		return fmt.Errorf("healthz: code=%d err=%v", code, err)
	}
	if code, err := get("/work?ms=1"); err != nil || code != http.StatusOK {
		return fmt.Errorf("work: code=%d err=%v", code, err)
	}
	// Overload: far more concurrent requests than permits+waiters, each
	// holding long relative to its deadline — some must shed or time out.
	const storm = 256
	codes := make(chan int, storm)
	for i := 0; i < storm; i++ {
		go func() {
			resp, err := http.Get(base + "/work?ms=20&deadline_ms=50")
			if err != nil {
				codes <- 0
				return
			}
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	counts := map[int]int{}
	for i := 0; i < storm; i++ {
		counts[<-codes]++
	}
	if counts[http.StatusOK] == 0 {
		return fmt.Errorf("storm: no request succeeded: %v", counts)
	}
	if counts[http.StatusTooManyRequests]+counts[http.StatusGatewayTimeout] == 0 {
		return fmt.Errorf("storm: nothing shed or timed out under %dx overload: %v", storm, counts)
	}
	var sz statz
	resp, err := http.Get(base + "/statz")
	if err != nil {
		return err
	}
	err = json.NewDecoder(resp.Body).Decode(&sz)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if sz.Admitted == 0 || sz.P99Ms <= 0 {
		return fmt.Errorf("statz counters empty: %+v", sz)
	}
	if err := s.drain(srv, grace); err != nil {
		return err
	}
	if st := s.gate.Stats(); st.InFlight != 0 || st.Waiting != 0 {
		return fmt.Errorf("gate not quiesced after drain: %+v", st)
	}
	fmt.Printf("storm codes: %v; admitted=%d shed=%d timeout=%d p99=%.1fms\n",
		counts, sz.Admitted, sz.Shed, sz.TimedOut, sz.P99Ms)
	return nil
}
