package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func testServer(t *testing.T, permits int64, waiters int, hold, budget time.Duration) (*server, *httptest.Server) {
	t.Helper()
	s := newServer(permits, waiters, hold, budget)
	ts := httptest.NewServer(s.mux())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestWorkOK(t *testing.T) {
	_, ts := testServer(t, 2, 8, time.Millisecond, 100*time.Millisecond)
	if resp := get(t, ts.URL+"/work"); resp.StatusCode != http.StatusOK {
		t.Fatalf("work: %d", resp.StatusCode)
	}
	if resp := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
}

// TestShedHasRetryAfter: with a zero-size waiting room, a second
// concurrent request sheds as 429 and carries a Retry-After hint.
func TestShedHasRetryAfter(t *testing.T) {
	_, ts := testServer(t, 1, 0, 50*time.Millisecond, time.Second)
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(ts.URL + "/work?ms=100")
		if err == nil {
			resp.Body.Close()
		}
		close(release)
	}()
	time.Sleep(20 * time.Millisecond) // let the holder win the permit
	resp := get(t, ts.URL+"/work")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("want 429, got %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	<-release
	wg.Wait()
}

// TestDeadlinePropagation: a request whose own deadline is shorter
// than the queue ahead of it times out as 504, honoring the
// X-Deadline-Ms header rather than the server default.
func TestDeadlinePropagation(t *testing.T) {
	_, ts := testServer(t, 1, 8, 50*time.Millisecond, 10*time.Second)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(ts.URL + "/work?ms=200")
		if err == nil {
			resp.Body.Close()
		}
	}()
	time.Sleep(20 * time.Millisecond)
	req, _ := http.NewRequest("GET", ts.URL+"/work", nil)
	req.Header.Set("X-Deadline-Ms", "30")
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("want 504, got %d", resp.StatusCode)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("504 took %v — header deadline not honored", el)
	}
	wg.Wait()
}

// TestDrain: after drain, healthz flips to 503, new work sheds with
// 503, and the gate quiesces.
func TestDrain(t *testing.T) {
	s, ts := testServer(t, 2, 8, time.Millisecond, 100*time.Millisecond)
	if resp := get(t, ts.URL+"/work"); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup: %d", resp.StatusCode)
	}
	srv := &http.Server{Handler: s.mux()}
	if err := s.drain(srv, time.Second); err != nil {
		t.Fatal(err)
	}
	if resp := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after drain: %d", resp.StatusCode)
	}
	if resp := get(t, ts.URL+"/work"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("work after drain: %d", resp.StatusCode)
	}
	if st := s.gate.Stats(); st.InFlight != 0 || st.Waiting != 0 {
		t.Fatalf("gate not quiesced: %+v", st)
	}
}

func TestStatz(t *testing.T) {
	_, ts := testServer(t, 2, 8, time.Millisecond, 100*time.Millisecond)
	for i := 0; i < 5; i++ {
		if resp := get(t, ts.URL+"/work"); resp.StatusCode != http.StatusOK {
			t.Fatalf("work %d: %d", i, resp.StatusCode)
		}
	}
	resp := get(t, ts.URL+"/statz")
	var sz statz
	if err := json.NewDecoder(resp.Body).Decode(&sz); err != nil {
		t.Fatal(err)
	}
	if sz.Admitted != 5 || sz.InFlight != 0 {
		t.Fatalf("counters: %+v", sz)
	}
	if sz.P50Ms <= 0 || sz.P99Ms < sz.P50Ms {
		t.Fatalf("quantiles: %+v", sz)
	}
}

// TestSelftest runs the CI smoke path end to end.
func TestSelftest(t *testing.T) {
	s := newServer(4, 16, 2*time.Millisecond, 100*time.Millisecond)
	if err := runSelftest(s, 5*time.Second); err != nil {
		t.Fatal(err)
	}
}
