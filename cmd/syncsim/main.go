// Command syncsim runs a single simulated workload and prints its
// counters — the microscope companion to syncbench's survey. It covers
// all five simulated algorithm families (locks, barriers, reader-writer
// locks, semaphores, hot-spot counters) and can compare several
// algorithms of one family side by side:
//
//	syncsim -kind lock -algos qsync -topo numa -procs 16 -iters 200
//	syncsim -kind lock -algos tas,ticket,qsync -topo bus -procs 8
//	syncsim -kind barrier -algos dissemination -topo bus -procs 32
//	syncsim -kind counter -algos ctr-fa,ctr-sharded -topo cluster -procs 32
//	syncsim -kind rw -algos rw-qsync -readfrac 0.9 -procs 16
//	syncsim -kind sem -algos sem-central,sem-sharded -topo cluster -procs 8
//	syncsim -kind lock -algos qheal -faults R1 -procs 16
//
// Topologies resolve through the registry in internal/topo (-names
// lists them); -model remains as a legacy spelling of -topo. -faults
// drives the lock and barrier workloads through a named fault level
// (the FT-sweep axis; -names lists the levels) using the
// crash-recovery runners, reporting availability-style counters —
// orphaned acquisitions, time-to-recovery — instead of the fault-free
// latency breakdown.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"

	"repro/internal/fault"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/registry"
	"repro/internal/sim"
	"repro/internal/simsync"
	"repro/internal/topo"
)

func main() {
	var (
		kind     = flag.String("kind", "lock", "lock, barrier, rw, sem, or counter")
		algos    = flag.String("algos", "", "comma-separated algorithm names (default per kind: qsync, qsync-tree, rw-qsync, sem-qsync, ctr-sharded; see -names)")
		algo     = flag.String("algo", "", "single algorithm name (legacy spelling of -algos)")
		topoName = flag.String("topo", "", "machine topology (see -names); wins over -model")
		model    = flag.String("model", "bus", "legacy spelling of -topo")
		procs    = flag.Int("procs", 8, "processors")
		iters    = flag.Int("iters", 100, "operations per processor (lock, rw)")
		episodes = flag.Int("episodes", 50, "episodes (barrier)")
		items    = flag.Int("items", 100, "items through the buffer (sem)")
		incs     = flag.Int("incs", 100, "increments per processor (counter)")
		cs       = flag.Int64("cs", 25, "critical-section work, cycles (lock)")
		think    = flag.Int64("think", 50, "mean think time, cycles")
		readfrac = flag.Float64("readfrac", 0.9, "read fraction (rw)")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		faultLvl = flag.String("faults", "", "fault-level name to inject (lock and barrier kinds; see -names)")
		names    = flag.Bool("names", false, "list algorithm names and exit")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fail("%v", err)
		}
		cpuStop := func() {
			pprof.StopCPUProfile()
			f.Close()
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fail("%v", err)
		}
		addProfileStop(cpuStop)
	}
	if *memProf != "" {
		path := *memProf
		addProfileStop(func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "syncsim:", err)
				return
			}
			defer f.Close()
			// Heap profiles report the state at the last completed GC;
			// run one so the snapshot is of live data at exit, not of a
			// stale mid-run cycle.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "syncsim:", err)
			}
		})
	}
	defer stopProfiles()

	if *names {
		fmt.Printf("locks:     %s\n", strings.Join(simsync.LockSet.Names(), " "))
		fmt.Printf("barriers:  %s\n", strings.Join(simsync.BarrierSet.Names(), " "))
		fmt.Printf("rwlocks:   %s\n", strings.Join(simsync.RWLockSet.Names(), " "))
		fmt.Printf("semaphores: %s\n", strings.Join(simsync.SemaphoreSet.Names(), " "))
		fmt.Printf("counters:  %s\n", strings.Join(simsync.CounterSet.Names(), " "))
		fmt.Printf("topologies: %s\n", strings.Join(topo.Names(), " "))
		var levels []string
		for _, lv := range harness.FaultLevels() {
			levels = append(levels, lv.Name)
		}
		fmt.Printf("fault levels: %s\n", strings.Join(levels, " "))
		return
	}

	sel := *topoName
	if sel == "" {
		sel = *model
	}
	tp, ok := topo.ByName(sel)
	if !ok {
		fail("unknown topology %q (known: %s)", sel, strings.Join(topo.Names(), " "))
	}
	cfg := machine.Config{Procs: *procs, Topo: tp, Seed: *seed}

	selection := parseAlgos(*algos, *algo)

	if *faultLvl != "" {
		lv, ok := harness.FaultLevelByName(*faultLvl)
		if !ok {
			var known []string
			for _, l := range harness.FaultLevels() {
				known = append(known, l.Name)
			}
			fail("unknown fault level %q (known: %s)", *faultLvl, strings.Join(known, " "))
		}
		runFaulted(cfg, lv, *kind, selection, *iters, *episodes, sim.Time(*cs), sim.Time(*think))
		return
	}

	switch *kind {
	case "lock":
		for _, info := range selectFrom(simsync.LockSet, selection, "qsync") {
			res, err := simsync.RunLock(cfg, info, simsync.LockOpts{
				Iters: *iters, CS: sim.Time(*cs), Think: sim.Time(*think),
				CheckMutex: true, RecordOrder: true,
			})
			if err != nil {
				fail("%v", err)
			}
			fmt.Printf("lock=%s model=%s procs=%d iters=%d\n", res.Lock, res.Topo.Name(), res.Procs, *iters)
			fmt.Printf("  acquisitions:      %d\n", res.Acquisitions)
			fmt.Printf("  elapsed cycles:    %d\n", res.Cycles)
			fmt.Printf("  cycles/acq:        %.1f\n", res.CyclesPerAcq)
			fmt.Printf("  traffic/acq:       %.2f (%s)\n", res.TrafficPerAcq, trafficName(tp))
			fmt.Printf("  FIFO inversions:   %d\n", res.FIFOInversions)
			fmt.Printf("  events simulated:  %d\n", res.Stats.Events)
		}
	case "barrier":
		for _, info := range selectFrom(simsync.BarrierSet, selection, "qsync-tree") {
			res, err := simsync.RunBarrier(cfg, info, simsync.BarrierOpts{
				Episodes: *episodes, Work: sim.Time(*think),
			})
			if err != nil {
				fail("%v", err)
			}
			fmt.Printf("barrier=%s model=%s procs=%d episodes=%d\n", res.Barrier, res.Topo.Name(), res.Procs, res.Episodes)
			fmt.Printf("  elapsed cycles:    %d\n", res.Cycles)
			fmt.Printf("  cycles/episode:    %.1f\n", res.CyclesPerEpisode)
			fmt.Printf("  traffic/episode:   %.2f (%s)\n", res.TrafficPerEpisode, trafficName(tp))
			fmt.Printf("  events simulated:  %d\n", res.Stats.Events)
		}
	case "rw":
		for _, info := range selectFrom(simsync.RWLockSet, selection, "rw-qsync") {
			res, err := simsync.RunRW(cfg, info, simsync.RWOpts{
				Iters: *iters, ReadFraction: *readfrac,
				Work: sim.Time(*cs), Think: sim.Time(*think),
			})
			if err != nil {
				fail("%v", err)
			}
			fmt.Printf("rwlock=%s model=%s procs=%d readfrac=%.2f\n", res.Lock, res.Topo.Name(), res.Procs, *readfrac)
			fmt.Printf("  reads / writes:    %d / %d\n", res.Reads, res.Writes)
			fmt.Printf("  elapsed cycles:    %d\n", res.Cycles)
			fmt.Printf("  cycles/op:         %.1f\n", res.CyclesPerOp)
			fmt.Printf("  traffic/op:        %.2f (%s)\n", res.TrafficPerOp, trafficName(tp))
			fmt.Printf("  events simulated:  %d\n", res.Stats.Events)
		}
	case "sem":
		for _, info := range selectFrom(simsync.SemaphoreSet, selection, "sem-qsync") {
			res, err := simsync.RunProducerConsumer(cfg, info, simsync.PCOpts{
				Items: *items, Capacity: 4, Work: sim.Time(*cs),
			})
			if err != nil {
				fail("%v", err)
			}
			fmt.Printf("semaphore=%s model=%s procs=%d items=%d\n", res.Semaphore, res.Topo.Name(), res.Procs, res.Items)
			fmt.Printf("  elapsed cycles:    %d\n", res.Cycles)
			fmt.Printf("  cycles/item:       %.1f\n", res.CyclesPerItem)
			fmt.Printf("  traffic/item:      %.2f (%s)\n", res.TrafficPerItem, trafficName(tp))
			fmt.Printf("  events simulated:  %d\n", res.Stats.Events)
		}
	case "counter":
		for _, info := range selectFrom(simsync.CounterSet, selection, "ctr-sharded") {
			res, err := simsync.RunCounter(cfg, info, simsync.CounterOpts{
				Incs: *incs, Think: sim.Time(*think),
			})
			if err != nil {
				fail("%v", err)
			}
			fmt.Printf("counter=%s model=%s procs=%d incs=%d\n", res.Counter, res.Topo.Name(), res.Procs, res.Incs)
			fmt.Printf("  elapsed cycles:    %d\n", res.Cycles)
			fmt.Printf("  cycles/inc:        %.1f\n", res.CyclesPerInc)
			fmt.Printf("  traffic/inc:       %.2f (%s)\n", res.TrafficPerInc, trafficName(tp))
			fmt.Printf("  events simulated:  %d\n", res.Stats.Events)
		}
	default:
		fail("unknown kind %q (lock, barrier, rw, sem, counter)", *kind)
	}
}

// runFaulted drives the selected algorithms through one named fault
// level using the crash-recovery runners, the single-cell microscope
// for the FT sweeps. Only the lock and barrier kinds have resilience
// runners; the other families are rejected rather than silently run
// fault-free.
func runFaulted(cfg machine.Config, lv harness.FaultLevel, kind string, selection []string, iters, episodes int, cs, think sim.Time) {
	const maxSteps = 2_000_000
	plan := func(units int) *fault.Plan {
		if lv.None {
			return fault.NewPlan(lv.Name)
		}
		return fault.Generate(fmt.Sprintf("%s/%s", cfg.Topo.Name(), lv.Name), cfg.Seed, lv.Spec(cfg.Procs, units))
	}
	switch kind {
	case "lock":
		for _, info := range selectFrom(simsync.LockSet, selection, "qsync") {
			res, err := simsync.RunLockRecovery(nil, cfg, info, plan(iters), simsync.RecoveryLockOpts{
				Iters: iters, CS: cs, Think: think,
				Budget: 4096, MaxSteps: maxSteps,
			})
			if err != nil {
				fail("%v", err)
			}
			fmt.Printf("lock=%s model=%s procs=%d iters=%d faults=%s\n", res.Lock, res.Topo.Name(), res.Procs, iters, res.Plan)
			fmt.Printf("  outcome:           %s\n", res.Outcome)
			fmt.Printf("  acquisitions:      %d of %d offered\n", res.Acquisitions, uint64(iters)*uint64(res.Procs))
			fmt.Printf("  timeouts:          %d\n", res.Timeouts)
			fmt.Printf("  orphaned acq:      %d\n", res.Orphaned)
			fmt.Printf("  fenced writes:     %d\n", res.StaleWrites)
			fmt.Printf("  crashed/recovered: %d / %d\n", res.Crashed, res.Recovered)
			if res.Recoveries > 0 {
				fmt.Printf("  mean ttr (cycles): %d\n", int64(res.RecoveryCycles)/int64(res.Recoveries))
			}
			fmt.Printf("  elapsed cycles:    %d\n", res.Cycles)
			fmt.Printf("  acq/kilocycle:     %.2f\n", res.AcqPerKCycle)
		}
	case "barrier":
		for _, info := range selectFrom(simsync.BarrierSet, selection, "qsync-tree") {
			res, err := simsync.RunBarrierRecovery(nil, cfg, info.Name, info.Make, plan(episodes), simsync.RecoveryBarrierOpts{
				Episodes: episodes, Work: think, MaxSteps: maxSteps,
			})
			if err != nil {
				fail("%v", err)
			}
			fmt.Printf("barrier=%s model=%s procs=%d episodes=%d faults=%s\n", res.Barrier, cfg.Topo.Name(), res.Procs, episodes, res.Plan)
			fmt.Printf("  outcome:           %s\n", res.Outcome)
			fmt.Printf("  episodes done:     %d of %d offered\n", res.Episodes, uint64(episodes)*uint64(res.Procs))
			fmt.Printf("  crashed/recovered: %d / %d\n", res.Crashed, res.Recovered)
			if res.Recoveries > 0 {
				fmt.Printf("  mean ttr (cycles): %d\n", int64(res.RecoveryCycles)/int64(res.Recoveries))
			}
			fmt.Printf("  elapsed cycles:    %d\n", res.Cycles)
		}
	default:
		fail("-faults supports -kind lock and barrier, not %q", kind)
	}
}

// parseAlgos merges the -algos list and the legacy -algo single name.
func parseAlgos(list, single string) []string {
	out := registry.SplitList(list)
	if single = strings.TrimSpace(single); single != "" {
		out = append(out, single)
	}
	return out
}

// selectFrom resolves the selection against one family's registry,
// defaulting to the family's mechanism variant when nothing was asked
// for. Unknown names are fatal — the strict Select path, since an
// explicit request with a typo should not silently run something else.
func selectFrom[T any](set interface {
	Select([]string) ([]T, error)
}, names []string, deflt string) []T {
	if len(names) == 0 {
		names = []string{deflt}
	}
	infos, err := set.Select(names)
	if err != nil {
		fail("%v (try -names)", err)
	}
	return infos
}

func trafficName(t topo.Topology) string {
	return t.Traffic().Unit()
}

// profileStops holds the -cpuprofile/-memprofile flush actions. They
// run once, on the normal return of main or inside fail — os.Exit skips
// deferred functions, and a truncated CPU profile is unreadable.
var (
	profileStops []func()
	profileOnce  sync.Once
)

func addProfileStop(fn func()) { profileStops = append(profileStops, fn) }

func stopProfiles() {
	profileOnce.Do(func() {
		for _, fn := range profileStops {
			fn()
		}
	})
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "syncsim: "+format+"\n", args...)
	stopProfiles()
	os.Exit(1)
}
