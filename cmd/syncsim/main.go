// Command syncsim runs a single simulated-lock or simulated-barrier
// workload and prints its counters — the microscope companion to
// syncbench's survey. Useful for poking at one algorithm under one
// configuration, e.g.:
//
//	syncsim -kind lock -algo qsync -model numa -procs 16 -iters 200
//	syncsim -kind barrier -algo dissemination -model bus -procs 32
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/simsync"
)

func main() {
	var (
		kind     = flag.String("kind", "lock", "lock or barrier")
		algo     = flag.String("algo", "qsync", "algorithm name (see -names)")
		model    = flag.String("model", "bus", "machine model: bus, numa, ideal")
		procs    = flag.Int("procs", 8, "processors")
		iters    = flag.Int("iters", 100, "acquisitions per processor (lock)")
		episodes = flag.Int("episodes", 50, "episodes (barrier)")
		cs       = flag.Int64("cs", 25, "critical-section work, cycles (lock)")
		think    = flag.Int64("think", 50, "mean think time, cycles")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		names    = flag.Bool("names", false, "list algorithm names and exit")
	)
	flag.Parse()

	if *names {
		fmt.Print("locks:")
		for _, li := range simsync.Locks() {
			fmt.Printf(" %s", li.Name)
		}
		fmt.Print("\nbarriers:")
		for _, bi := range simsync.Barriers() {
			fmt.Printf(" %s", bi.Name)
		}
		fmt.Println()
		return
	}

	var mdl machine.Model
	switch *model {
	case "bus":
		mdl = machine.Bus
	case "numa":
		mdl = machine.NUMA
	case "ideal":
		mdl = machine.Ideal
	default:
		fail("unknown model %q", *model)
	}
	cfg := machine.Config{Procs: *procs, Model: mdl, Seed: *seed}

	switch *kind {
	case "lock":
		info, ok := simsync.LockByName(*algo)
		if !ok {
			fail("unknown lock %q (try -names)", *algo)
		}
		res, err := simsync.RunLock(cfg, info, simsync.LockOpts{
			Iters: *iters, CS: sim.Time(*cs), Think: sim.Time(*think),
			CheckMutex: true, RecordOrder: true,
		})
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("lock=%s model=%s procs=%d iters=%d\n", res.Lock, res.Model, res.Procs, *iters)
		fmt.Printf("  acquisitions:      %d\n", res.Acquisitions)
		fmt.Printf("  elapsed cycles:    %d\n", res.Cycles)
		fmt.Printf("  cycles/acq:        %.1f\n", res.CyclesPerAcq)
		fmt.Printf("  traffic/acq:       %.2f (%s)\n", res.TrafficPerAcq, trafficName(mdl))
		fmt.Printf("  FIFO inversions:   %d\n", res.FIFOInversions)
		fmt.Printf("  events simulated:  %d\n", res.Stats.Events)
	case "barrier":
		info, ok := simsync.BarrierByName(*algo)
		if !ok {
			fail("unknown barrier %q (try -names)", *algo)
		}
		res, err := simsync.RunBarrier(cfg, info, simsync.BarrierOpts{
			Episodes: *episodes, Work: sim.Time(*think),
		})
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("barrier=%s model=%s procs=%d episodes=%d\n", res.Barrier, res.Model, res.Procs, res.Episodes)
		fmt.Printf("  elapsed cycles:    %d\n", res.Cycles)
		fmt.Printf("  cycles/episode:    %.1f\n", res.CyclesPerEpisode)
		fmt.Printf("  traffic/episode:   %.2f (%s)\n", res.TrafficPerEpisode, trafficName(mdl))
		fmt.Printf("  events simulated:  %d\n", res.Stats.Events)
	default:
		fail("unknown kind %q", *kind)
	}
}

func trafficName(m machine.Model) string {
	if m == machine.NUMA {
		return "remote refs"
	}
	return "bus txns"
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "syncsim: "+format+"\n", args...)
	os.Exit(1)
}
