// Package repro is the public facade of the QSync reproduction: it
// re-exports the core mechanism (internal/core) under one import path,
// so example programs and downstream users write repro.Mutex, the same
// way the paper's library would have shipped.
//
// See DESIGN.md for what is reconstructed and why, EXPERIMENTS.md for
// the reproduced evaluation, and cmd/syncbench to regenerate it.
package repro

import (
	"repro/internal/core"
	"repro/internal/sharded"
)

// WaitMode selects how waiters pass the time; see core.WaitMode.
type WaitMode = core.WaitMode

// Waiter strategies.
const (
	// SpinPark spins briefly then parks (futex-style); the default.
	SpinPark = core.SpinPark
	// Spin never blocks; for dedicated-CPU phases.
	Spin = core.Spin
)

// Mutex is the mechanism's FIFO queue lock. The zero value is unlocked.
type Mutex = core.Mutex

// RWMutex is the mechanism's fair reader-writer lock.
type RWMutex = core.RWMutex

// RToken is a reader's handle between RLock and RUnlock.
type RToken = core.RToken

// Semaphore is the mechanism's FIFO counting semaphore.
type Semaphore = core.Semaphore

// NewSemaphore returns a semaphore holding n permits.
func NewSemaphore(n int64) *Semaphore { return core.NewSemaphore(n) }

// Event is an eventcount: await a monotone counter crossing a target.
type Event = core.Event

// NewEvent returns an eventcount starting at zero.
func NewEvent() *Event { return core.NewEvent() }

// Sequencer dispenses strictly increasing tickets; pairs with Event.
type Sequencer = core.Sequencer

// Cond is a Mesa-style condition variable bound to a Mutex.
type Cond = core.Cond

// NewCond returns a condition variable bound to l.
func NewCond(l *Mutex) *Cond { return core.NewCond(l) }

// Barrier is the practical central barrier (parks when oversubscribed).
type Barrier = core.Barrier

// NewBarrier returns a barrier for n parties.
func NewBarrier(n int, mode WaitMode) *Barrier { return core.NewBarrier(n, mode) }

// TreeBarrier is the mechanism's local-spin tree barrier for
// dedicated-CPU phases; parties call Wait with a fixed id.
type TreeBarrier = core.TreeBarrier

// NewTreeBarrier returns a tree barrier for n parties.
func NewTreeBarrier(n int) *TreeBarrier { return core.NewTreeBarrier(n) }

// ShardedCounter is the scalability layer's striped counter: high-rate
// concurrent increments with occasional combined reads.
type ShardedCounter = sharded.Counter

// NewShardedCounter returns a striped counter with at least stripes
// cells; stripes <= 0 sizes to GOMAXPROCS.
func NewShardedCounter(stripes int) *ShardedCounter { return sharded.NewCounter(stripes) }

// CentralCounter is the one-word atomic counter the sharded counter is
// measured against.
type CentralCounter = sharded.CentralCounter

// NewCentralCounter returns a zeroed central counter.
func NewCentralCounter() *CentralCounter { return sharded.NewCentralCounter() }

// ShardedSemaphore is the striped counting semaphore: permits live on
// per-core stripes, releases go home, acquires sweep. Throughput over
// fairness; the plain Semaphore remains the FIFO choice.
type ShardedSemaphore = sharded.Semaphore

// NewShardedSemaphore returns a striped semaphore holding permits
// spread over at least stripes cells; stripes <= 0 sizes to GOMAXPROCS.
func NewShardedSemaphore(permits int64, stripes int) *ShardedSemaphore {
	return sharded.NewSemaphore(permits, stripes)
}

// ShardedRWMutex is the reader-biased sharded reader-writer lock:
// readers take one shard, writers sweep them all.
type ShardedRWMutex = sharded.RWMutex

// ShardedRToken is a sharded reader's handle between RLock and RUnlock.
type ShardedRToken = sharded.RToken

// NewShardedRWMutex returns a sharded reader-writer lock with at least
// shards shards; shards <= 0 sizes to GOMAXPROCS.
func NewShardedRWMutex(shards int) *ShardedRWMutex { return sharded.NewRWMutex(shards) }
