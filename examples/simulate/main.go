// Simulate: using the multiprocessor substrate directly. Builds a tiny
// custom synchronization algorithm against the simulated ISA, runs it on
// every registered machine topology — the coherent bus, the flat NUMA
// machine, and the two-level cluster machine — and prints the counters
// the 1991 methodology cares about. A template for experimenting with
// your own algorithms and machine shapes.
package main

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/simsync"
	"repro/internal/topo"
)

// A deliberately naive algorithm to study: a "polite" test&set that
// waits a fixed delay between attempts. Era folklore said politeness
// should help; the counters show what it actually buys compared to the
// mechanism.
type politeTAS struct {
	l machine.Addr
}

func (t *politeTAS) Name() string { return "polite-tas" }

func (t *politeTAS) Acquire(p *machine.Proc) {
	for p.TestAndSet(t.l) != 0 {
		p.Delay(100) // fixed politeness
	}
}

func (t *politeTAS) Release(p *machine.Proc) {
	p.Store(t.l, 0)
}

func main() {
	fmt.Println("== custom algorithm on the simulated multiprocessor ==")
	fmt.Println()

	for _, tp := range []topo.Topology{topo.Bus, topo.NUMA, topo.Cluster} {
		fmt.Printf("--- %s machine, 16 processors, 50 acquisitions each ---\n", tp.Name())
		for _, tc := range []struct {
			name string
			make simsync.LockMaker
		}{
			{"polite-tas", func(m *machine.Machine) simsync.Lock {
				return &politeTAS{l: m.AllocShared(1)}
			}},
			{"qsync", simsync.NewQSync},
		} {
			res, err := simsync.RunLock(
				machine.Config{Procs: 16, Topo: tp, Seed: 42},
				simsync.LockInfo{Name: tc.name, Make: tc.make},
				simsync.LockOpts{Iters: 50, CS: 25, Think: 50, CheckMutex: true},
			)
			if err != nil {
				panic(err)
			}
			fmt.Printf("%12s: %7.0f cycles/acq  %6.2f %s/acq  (%d events simulated)\n",
				tc.name, res.CyclesPerAcq, res.TrafficPerAcq, tp.Traffic().Unit(), res.Stats.Events)
		}
		fmt.Println()
	}
	fmt.Println("politeness lowers traffic versus raw test&set but still scales with P;")
	fmt.Println("the mechanism's queue keeps both cycles and traffic per operation flat.")
	fmt.Println("mutual exclusion was verified by the harness on every run above.")
}
