// Pipeline: a two-stage bounded-buffer pipeline built entirely from the
// mechanism's primitives — semaphores gate buffer slots, a mutex guards
// each ring, and an eventcount lets the main goroutine await overall
// progress. Simulates a parse→compress workflow over synthetic records
// and validates end-to-end checksums.
package main

import (
	"fmt"
	"sync"
	"time"

	"repro"
)

const (
	records  = 120000
	capacity = 128
	parsers  = 3
	packers  = 3
)

// ring is a bounded buffer guarded by mechanism primitives.
type ring struct {
	mu     repro.Mutex
	buf    []uint64
	head   int
	tail   int
	spaces *repro.Semaphore
	items  *repro.Semaphore
}

func newRing(n int) *ring {
	r := &ring{
		buf:    make([]uint64, n),
		spaces: repro.NewSemaphore(int64(n)),
		items:  repro.NewSemaphore(0),
	}
	// The pipeline runs far fewer goroutines than CPUs, so spin waiters
	// give the lowest hand-off latency (see experiment F12 for when this
	// choice flips).
	r.mu.Mode = repro.Spin
	r.spaces.Mode = repro.Spin
	r.items.Mode = repro.Spin
	return r
}

func (r *ring) push(v uint64) {
	r.spaces.Acquire()
	r.mu.Lock()
	r.buf[r.tail] = v
	r.tail = (r.tail + 1) % len(r.buf)
	r.mu.Unlock()
	r.items.Release()
}

func (r *ring) pop() uint64 {
	r.items.Acquire()
	r.mu.Lock()
	v := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.mu.Unlock()
	r.spaces.Release()
	return v
}

// mix is a cheap stand-in for per-record work.
func mix(v uint64) uint64 {
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	return v
}

func main() {
	fmt.Println("== two-stage pipeline:", records, "records,", parsers, "parsers,", packers, "packers ==")

	stage1 := newRing(capacity) // raw -> parsed
	stage2 := newRing(capacity) // parsed -> packed
	done := repro.NewEvent()

	var wg sync.WaitGroup
	var inSum, outSum uint64
	var outMu repro.Mutex

	start := time.Now()

	// Source: one producer of raw records.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); i <= records; i++ {
			inSum += mix(mix(i)) // what the sink should accumulate
			stage1.push(i)
		}
	}()

	// Stage 1: parsers.
	for w := 0; w < parsers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v := stage1.pop()
				if v == 0 {
					return
				}
				stage2.push(mix(v))
			}
		}()
	}

	// Stage 2: packers feed the sink-side checksum and the eventcount.
	for w := 0; w < packers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v := stage2.pop()
				if v == 0 {
					return
				}
				outMu.Lock()
				outSum += mix(v)
				outMu.Unlock()
				done.Advance()
			}
		}()
	}

	// Await completion via the eventcount, then shut the stages down
	// with zero-value poison pills.
	done.Await(records)
	for w := 0; w < parsers; w++ {
		stage1.push(0)
	}
	for w := 0; w < packers; w++ {
		stage2.push(0)
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("throughput: %.2f Mrecords/s (%v)\n",
		records/elapsed.Seconds()/1e6, elapsed.Round(time.Millisecond))
	if inSum != outSum {
		panic(fmt.Sprintf("checksum mismatch: %x != %x", inSum, outSum))
	}
	fmt.Printf("checksums match (%x): no record lost, duplicated, or corrupted\n", outSum)
}
