// Phases: a barrier-phased numerical kernel — Jacobi iteration on the
// 1-D heat equation — the canonical data-parallel workload the 1991
// barrier literature benchmarked. Each worker owns a strip of the rod;
// every sweep is separated by two tree-barrier episodes (compute, then
// swap). Correctness is checked the strict way: the parallel result
// must be bit-identical to a sequential run of the same sweeps — any
// barrier ordering bug shows up as a mismatch.
package main

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro"
)

const (
	cells   = 2048
	workers = 8
	sweeps  = 3000
	leftT   = 0.0
	rightT  = 100.0
)

func sequential() []float64 {
	cur := make([]float64, cells)
	nxt := make([]float64, cells)
	cur[0], cur[cells-1] = leftT, rightT
	nxt[0], nxt[cells-1] = leftT, rightT
	for s := 0; s < sweeps; s++ {
		for i := 1; i < cells-1; i++ {
			nxt[i] = 0.5 * (cur[i-1] + cur[i+1])
		}
		cur, nxt = nxt, cur
	}
	return cur
}

func parallel() ([]float64, time.Duration) {
	cur := make([]float64, cells)
	nxt := make([]float64, cells)
	cur[0], cur[cells-1] = leftT, rightT
	nxt[0], nxt[cells-1] = leftT, rightT

	bar := repro.NewTreeBarrier(workers)
	var wg sync.WaitGroup
	start := time.Now()
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			lo := 1 + id*(cells-2)/workers
			hi := 1 + (id+1)*(cells-2)/workers
			src, dst := cur, nxt
			for s := 0; s < sweeps; s++ {
				for i := lo; i < hi; i++ {
					dst[i] = 0.5 * (src[i-1] + src[i+1])
				}
				// Two episodes per sweep: one to finish writing, one to
				// make the swap safe for everyone.
				bar.Wait(id)
				src, dst = dst, src
				bar.Wait(id)
			}
		}(id)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if sweeps%2 == 0 {
		return cur, elapsed
	}
	return nxt, elapsed
}

func main() {
	fmt.Println("== Jacobi heat diffusion:", cells, "cells,", workers, "workers,", sweeps, "sweeps ==")

	ref := sequential()
	got, elapsed := parallel()

	for i := range ref {
		if got[i] != ref[i] {
			panic(fmt.Sprintf("cell %d: parallel %v != sequential %v — barrier ordering broken", i, got[i], ref[i]))
		}
	}
	// Progress toward the linear steady state, for flavor.
	maxErr := 0.0
	for i := range got {
		exact := leftT + (rightT-leftT)*float64(i)/float64(cells-1)
		if e := math.Abs(got[i] - exact); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("elapsed: %v for %d barrier episodes (%.1f us/episode across %d workers)\n",
		elapsed.Round(time.Millisecond), 2*sweeps,
		float64(elapsed.Microseconds())/float64(2*sweeps), workers)
	fmt.Println("parallel result is bit-identical to the sequential reference")
	fmt.Printf("diffusion progress: max deviation from steady state %.2f degrees after %d sweeps\n", maxErr, sweeps)
}
