// Histogram: the motivating shared-counter workload of the 1991 era —
// many processors bumping bins of a shared histogram. Compares a single
// global lock against per-bin sharded mechanism locks, and against the
// standard library mutex, printing throughput for each arrangement.
package main

import (
	"fmt"
	"sync"
	"time"

	"repro"
)

const (
	bins    = 256
	workers = 8
	samples = 400000 // per worker
)

// synth generates a deterministic pseudo-random stream of bin indexes.
func synth(seed uint64) func() int {
	state := seed*0x9e3779b97f4a7c15 + 1
	return func() int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % bins)
	}
}

func runGlobal(lock sync.Locker) (time.Duration, int64) {
	hist := make([]int64, bins)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			next := synth(uint64(w))
			for i := 0; i < samples; i++ {
				b := next()
				lock.Lock()
				hist[b]++
				lock.Unlock()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var total int64
	for _, c := range hist {
		total += c
	}
	return elapsed, total
}

func runSharded() (time.Duration, int64) {
	hist := make([]int64, bins)
	shard := make([]repro.Mutex, bins)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			next := synth(uint64(w))
			for i := 0; i < samples; i++ {
				b := next()
				shard[b].Lock()
				hist[b]++
				shard[b].Unlock()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var total int64
	for _, c := range hist {
		total += c
	}
	return elapsed, total
}

func main() {
	fmt.Println("== parallel histogram:", workers, "workers x", samples, "samples,", bins, "bins ==")
	want := int64(workers) * samples

	// Spin mode: every worker owns a CPU here, the paper's model. (With
	// tiny critical sections, spin-park's FIFO hand-off convoys through
	// the scheduler — that trade-off is measured in experiment F12.)
	qs := repro.Mutex{Mode: repro.Spin}
	d, total := runGlobal(&qs)
	check(total, want)
	fmt.Printf("global qsync mutex:   %8.1f Mops/s (%v)\n", rate(want, d), d.Round(time.Millisecond))

	var std sync.Mutex
	d, total = runGlobal(&std)
	check(total, want)
	fmt.Printf("global stdlib mutex:  %8.1f Mops/s (%v)\n", rate(want, d), d.Round(time.Millisecond))

	d, total = runSharded()
	check(total, want)
	fmt.Printf("sharded qsync (256):  %8.1f Mops/s (%v)\n", rate(want, d), d.Round(time.Millisecond))

	fmt.Println()
	fmt.Println("reading the numbers: under a single global lock the stdlib mutex wins by")
	fmt.Println("barging — a releasing goroutine can immediately reacquire with everything")
	fmt.Println("hot in cache, which is fast and unfair. The mechanism hands off FIFO, so")
	fmt.Println("every operation pays a cross-CPU transfer (fairness has a price; the 1991")
	fmt.Println("papers document exactly this trade). Its strength is the last line: one")
	fmt.Println("word per cell makes fine-grained sharding free, and sharded qsync beats")
	fmt.Println("every global lock.")
}

func rate(n int64, d time.Duration) float64 {
	return float64(n) / d.Seconds() / 1e6
}

func check(got, want int64) {
	if got != want {
		panic(fmt.Sprintf("histogram lost updates: %d != %d", got, want))
	}
}
