// Quickstart: a five-minute tour of the mechanism's public API —
// Mutex, RWMutex, Semaphore, Event/Sequencer, and Barrier.
package main

import (
	"fmt"
	"sync"
	"time"

	"repro"
)

func main() {
	fmt.Println("== QSync quickstart ==")

	// 1. Mutex: a FIFO queue lock; drop-in sync.Locker.
	var mu repro.Mutex
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				mu.Lock()
				counter++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	fmt.Printf("mutex: 8 goroutines x 10000 increments = %d (want 80000)\n", counter)

	// 2. RWMutex: fair reader-writer lock; readers carry a token.
	var rw repro.RWMutex
	config := map[string]string{"mode": "fast"}
	rw.Lock()
	config["mode"] = "safe"
	rw.Unlock()
	tok := rw.RLock()
	fmt.Printf("rwmutex: mode=%s (read under shared lock)\n", config["mode"])
	rw.RUnlock(tok)

	// 3. Semaphore: FIFO counting semaphore with direct hand-off.
	sem := repro.NewSemaphore(3)
	var active, peak int
	var pmu repro.Mutex
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem.Acquire()
			pmu.Lock()
			active++
			if active > peak {
				peak = active
			}
			pmu.Unlock()
			time.Sleep(5 * time.Millisecond) // hold the permit briefly
			pmu.Lock()
			active--
			pmu.Unlock()
			sem.Release()
		}()
	}
	wg.Wait()
	fmt.Printf("semaphore: 10 workers through 3 permits, peak concurrency %d (<= 3)\n", peak)

	// 4. Event + Sequencer: the classic eventcount pattern.
	ev := repro.NewEvent()
	var seq repro.Sequencer
	results := make([]uint64, 6)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t := seq.Ticket()
				if t > 5 {
					return
				}
				results[t] = t * t
				ev.Await(t - 1) // publish strictly in ticket order
				ev.Advance()
			}
		}()
	}
	ev.Await(5)
	fmt.Printf("eventcount: squares published in order: %v\n", results[1:])
	wg.Wait()

	// 5. Barrier: phased execution.
	const parties = 4
	bar := repro.NewBarrier(parties, repro.SpinPark)
	phaseLog := make([][]int, parties)
	for id := 0; id < parties; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for phase := 0; phase < 3; phase++ {
				phaseLog[id] = append(phaseLog[id], phase)
				bar.Wait()
			}
		}(id)
	}
	wg.Wait()
	fmt.Printf("barrier: %d parties completed %d synchronized phases\n", parties, bar.Episodes())
}
