// Benchmarks: one testing.B family per figure/table of the evaluation.
// Simulated experiments report cycles and interconnect transactions via
// b.ReportMetric (the wall-clock ns/op of a simulation is meaningless);
// real-runtime experiments report ns/op directly.
//
// Run everything:   go test -bench=. -benchmem
// One figure:       go test -bench=BenchmarkF2 -benchmem
package repro_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro"
	"repro/internal/barriers"
	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/simsync"
	"repro/internal/topo"
	"repro/internal/workload"
)

// simLockBench runs one simulated lock configuration per b.N batch and
// reports cycles and traffic per acquisition.
func simLockBench(b *testing.B, tp topo.Topology, lockName string, procs int) {
	info, ok := simsync.LockByName(lockName)
	if !ok {
		b.Fatalf("unknown lock %q", lockName)
	}
	var cyc, traf float64
	for i := 0; i < b.N; i++ {
		res, err := simsync.RunLock(
			machine.Config{Procs: procs, Topo: tp, Seed: uint64(i + 1)},
			info,
			simsync.LockOpts{Iters: 40, CS: 25, Think: 50, CheckMutex: true},
		)
		if err != nil {
			b.Fatal(err)
		}
		cyc, traf = res.CyclesPerAcq, res.TrafficPerAcq
	}
	b.ReportMetric(cyc, "cycles/acq")
	b.ReportMetric(traf, "traffic/acq")
}

// simBarrierBench likewise for barriers.
func simBarrierBench(b *testing.B, tp topo.Topology, barName string, procs int) {
	info, ok := simsync.BarrierByName(barName)
	if !ok {
		b.Fatalf("unknown barrier %q", barName)
	}
	var cyc, traf float64
	for i := 0; i < b.N; i++ {
		res, err := simsync.RunBarrier(
			machine.Config{Procs: procs, Topo: tp, Seed: uint64(i + 1)},
			info,
			simsync.BarrierOpts{Episodes: 12, Work: 150},
		)
		if err != nil {
			b.Fatal(err)
		}
		cyc, traf = res.CyclesPerEpisode, res.TrafficPerEpisode
	}
	b.ReportMetric(cyc, "cycles/episode")
	b.ReportMetric(traf, "traffic/episode")
}

// BenchmarkEngineStep — raw event-engine throughput: schedule+pop one
// typed event per iteration against a standing population, the
// steady-state pattern of a running simulation. The allocation report
// is the point: the hot path must not allocate.
func BenchmarkEngineStep(b *testing.B) {
	e := sim.NewEngine()
	e.SetHandler(func(sim.EventKind, int32, int32) {})
	const standing = 1024
	for i := 0; i < standing; i++ {
		e.AtEvent(sim.Time(i), sim.EvDispatch, 0, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.AtEvent(e.Now()+standing, sim.EvDispatch, 0, 0)
		e.Step()
	}
}

// BenchmarkMachineSpinContended — host-side throughput of the machine
// hot path under heavy spin contention: 8 processors fighting over one
// lock on the bus machine, across the classic spin disciplines (raw
// test&set storm, test-and-test&set cache spin, exponential backoff).
// Reported simops/s is simulated memory operations per host second —
// the number that bounds sweep wall-clock. The machine is sized to the
// workload so the measurement is the hot path, not construction.
func BenchmarkMachineSpinContended(b *testing.B) {
	for _, name := range []string{"tas", "ttas", "tas-bo"} {
		info, ok := simsync.LockByName(name)
		if !ok {
			b.Fatalf("unknown lock %q", name)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var ops, acqs uint64
			for i := 0; i < b.N; i++ {
				res, err := simsync.RunLock(
					machine.Config{Procs: 8, Topo: topo.Bus, Seed: uint64(i + 1),
						SharedWords: 1 << 12, LocalWords: 1 << 8},
					info,
					simsync.LockOpts{Iters: 40, CS: 25, Think: 50, CheckMutex: true},
				)
				if err != nil {
					b.Fatal(err)
				}
				st := res.Stats
				ops += st.Loads + st.Stores + st.RMWs
				acqs += res.Acquisitions
			}
			b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "simops/s")
			b.ReportMetric(float64(acqs)/b.Elapsed().Seconds(), "acq/s")
		})
	}
}

// BenchmarkMachineSpinBatched — the same contended spin storms as
// BenchmarkMachineSpinContended, but in the pooled configuration the
// sweeps actually run: each iteration resets a recycled machine instead
// of constructing one, so the allocation report shows the steady-state
// cell cost (near zero) and simops/s the batched engine's throughput
// with construction amortized away. The simulated results are
// bit-identical between the two benchmarks — only host cost differs.
func BenchmarkMachineSpinBatched(b *testing.B) {
	for _, name := range []string{"tas", "ttas", "tas-bo"} {
		info, ok := simsync.LockByName(name)
		if !ok {
			b.Fatalf("unknown lock %q", name)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			pool := new(machine.Pool)
			var ops, acqs uint64
			for i := 0; i < b.N; i++ {
				res, err := simsync.RunLockIn(pool,
					machine.Config{Procs: 8, Topo: topo.Bus, Seed: uint64(i + 1),
						SharedWords: 1 << 12, LocalWords: 1 << 8},
					info,
					simsync.LockOpts{Iters: 40, CS: 25, Think: 50, CheckMutex: true},
				)
				if err != nil {
					b.Fatal(err)
				}
				st := res.Stats
				ops += st.Loads + st.Stores + st.RMWs
				acqs += res.Acquisitions
			}
			b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "simops/s")
			b.ReportMetric(float64(acqs)/b.Elapsed().Seconds(), "acq/s")
		})
	}
}

// BenchmarkMachineStormBatched — the cross-processor spin-window
// workload: a 32-processor raw test&set storm on the bus machine, the
// configuration where nearly every event is an interleaved probe and
// window batching fast-forwards whole rotations in closed form. The
// windows/nowindows pair shares one pooled machine shape, so the ratio
// of their simops/s is the window mechanism's speedup; the simulated
// results are bit-identical (pinned by the determinism suite).
func BenchmarkMachineStormBatched(b *testing.B) {
	for _, tc := range []struct {
		name  string
		noWin bool
	}{{"windows", false}, {"nowindows", true}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			info, ok := simsync.LockByName("tas")
			if !ok {
				b.Fatal("tas lock missing")
			}
			b.ReportAllocs()
			pool := new(machine.Pool)
			var ops, acqs uint64
			for i := 0; i < b.N; i++ {
				res, err := simsync.RunLockIn(pool,
					machine.Config{Procs: 32, Topo: topo.Bus, Seed: uint64(i + 1),
						SharedWords: 1 << 12, LocalWords: 1 << 8, NoSpinWindows: tc.noWin},
					info,
					simsync.LockOpts{Iters: 40, CS: 25, Think: 50, CheckMutex: true},
				)
				if err != nil {
					b.Fatal(err)
				}
				st := res.Stats
				ops += st.Loads + st.Stores + st.RMWs
				acqs += res.Acquisitions
			}
			b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "simops/s")
			b.ReportMetric(float64(acqs)/b.Elapsed().Seconds(), "acq/s")
		})
	}
}

// BenchmarkMachineClusterStorm — the same 32-processor raw test&set
// storm on the two-level cluster topology. Since the per-distance-class
// windows (PR 6) the hierarchical storm batches too: spinners are
// partitioned by the topology's declared traversal classes and whole
// mixed-period rotations are fast-forwarded through the cumulative
// service schedule. This benchmark runs the default (windowed)
// configuration the sweeps use; BenchmarkMachineClusterStormBatched
// below isolates the mechanism with a windows/nowindows pair. The
// sharded pair (ctr-sharded under the same pool) shows what group-home
// placement buys back.
func BenchmarkMachineClusterStorm(b *testing.B) {
	b.Run("lock/tas", func(b *testing.B) {
		info, ok := simsync.LockByName("tas")
		if !ok {
			b.Fatal("tas lock missing")
		}
		b.ReportAllocs()
		pool := new(machine.Pool)
		var ops, acqs uint64
		for i := 0; i < b.N; i++ {
			res, err := simsync.RunLockIn(pool,
				machine.Config{Procs: 32, Topo: topo.Cluster, Seed: uint64(i + 1),
					SharedWords: 1 << 12, LocalWords: 1 << 8},
				info,
				simsync.LockOpts{Iters: 40, CS: 25, Think: 50, CheckMutex: true},
			)
			if err != nil {
				b.Fatal(err)
			}
			st := res.Stats
			ops += st.Loads + st.Stores + st.RMWs
			acqs += res.Acquisitions
		}
		b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "simops/s")
		b.ReportMetric(float64(acqs)/b.Elapsed().Seconds(), "acq/s")
	})
	b.Run("ctr-sharded", func(b *testing.B) {
		info, ok := simsync.CounterByName("ctr-sharded")
		if !ok {
			b.Fatal("ctr-sharded missing")
		}
		b.ReportAllocs()
		pool := new(machine.Pool)
		var ops uint64
		for i := 0; i < b.N; i++ {
			res, err := simsync.RunCounterIn(pool,
				machine.Config{Procs: 32, Topo: topo.Cluster, Seed: uint64(i + 1),
					SharedWords: 1 << 12, LocalWords: 1 << 8},
				info,
				simsync.CounterOpts{Incs: 60},
			)
			if err != nil {
				b.Fatal(err)
			}
			st := res.Stats
			ops += st.Loads + st.Stores + st.RMWs
		}
		b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "simops/s")
	})
}

// BenchmarkMachineClusterStormBatched — the cluster twin of
// BenchmarkMachineStormBatched: a 32-processor raw test&set storm on
// the two-level cluster topology, windows on vs off over one pooled
// machine shape. The storm mixes the topology's two traversal classes
// (intra-cluster probes against the lock's home module and double-cost
// inter-cluster ones), so the windowed leg exercises the mixed-service
// rotation closed form rather than the bus machine's uniform-period
// fast path; the ratio of the two legs' simops/s is what
// per-distance-class batching buys on a hierarchical machine. The
// simulated results are bit-identical (pinned by the determinism
// suite's mixed-class storm test).
func BenchmarkMachineClusterStormBatched(b *testing.B) {
	for _, tc := range []struct {
		name  string
		noWin bool
	}{{"windows", false}, {"nowindows", true}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			info, ok := simsync.LockByName("tas")
			if !ok {
				b.Fatal("tas lock missing")
			}
			b.ReportAllocs()
			pool := new(machine.Pool)
			var ops, acqs uint64
			for i := 0; i < b.N; i++ {
				res, err := simsync.RunLockIn(pool,
					machine.Config{Procs: 32, Topo: topo.Cluster, Seed: uint64(i + 1),
						SharedWords: 1 << 12, LocalWords: 1 << 8, NoSpinWindows: tc.noWin},
					info,
					simsync.LockOpts{Iters: 40, CS: 25, Think: 50, CheckMutex: true},
				)
				if err != nil {
					b.Fatal(err)
				}
				st := res.Stats
				ops += st.Loads + st.Stores + st.RMWs
				acqs += res.Acquisitions
			}
			b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "simops/s")
			b.ReportMetric(float64(acqs)/b.Elapsed().Seconds(), "acq/s")
		})
	}
}

// BenchmarkMachineDispatchResidue — the inline-continuation A/B on the
// contended cluster storm: the same 32-processor test&set storm as
// BenchmarkMachineClusterStormBatched, with continuation dispatch on
// (the default: straight-line critical-section and think-time events
// execute inline in the drive loop) vs forced back onto the per-event
// goroutine baton (NoInlineDispatch). The ratio of the two legs'
// simops/s is the residual cost of the holder-side handoff; the
// simulated results are bit-identical (pinned by the NoInlineDispatch
// determinism suite).
func BenchmarkMachineDispatchResidue(b *testing.B) {
	for _, tc := range []struct {
		name     string
		noInline bool
	}{{"inline", false}, {"noinline", true}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			info, ok := simsync.LockByName("tas")
			if !ok {
				b.Fatal("tas lock missing")
			}
			b.ReportAllocs()
			pool := new(machine.Pool)
			var ops, acqs uint64
			for i := 0; i < b.N; i++ {
				res, err := simsync.RunLockIn(pool,
					machine.Config{Procs: 32, Topo: topo.Cluster, Seed: uint64(i + 1),
						SharedWords: 1 << 12, LocalWords: 1 << 8, NoInlineDispatch: tc.noInline},
					info,
					simsync.LockOpts{Iters: 40, CS: 25, Think: 50, CheckMutex: true},
				)
				if err != nil {
					b.Fatal(err)
				}
				st := res.Stats
				ops += st.Loads + st.Stores + st.RMWs
				acqs += res.Acquisitions
			}
			b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "simops/s")
			b.ReportMetric(float64(acqs)/b.Elapsed().Seconds(), "acq/s")
		})
	}
}

// BenchmarkMachineDeepClusterStorm — the P=256 deep-topology point of
// the scaling sweeps (PR 6): a raw test&set storm on the cluster
// machine four times past the bus protocol's 64-processor ceiling,
// where the engine runs in heap mode throughout and the window
// eligibility mask spans multiple words. Windows on vs off, pooled;
// this is the configuration whose wall-clock bounds the P ∈ {256,
// 1024} sweep tables in EXPERIMENTS.md.
func BenchmarkMachineDeepClusterStorm(b *testing.B) {
	for _, tc := range []struct {
		name  string
		noWin bool
	}{{"windows", false}, {"nowindows", true}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			info, ok := simsync.LockByName("tas")
			if !ok {
				b.Fatal("tas lock missing")
			}
			b.ReportAllocs()
			pool := new(machine.Pool)
			var ops, acqs uint64
			for i := 0; i < b.N; i++ {
				res, err := simsync.RunLockIn(pool,
					machine.Config{Procs: 256, Topo: topo.Cluster, Seed: uint64(i + 1),
						SharedWords: 1 << 12, LocalWords: 1 << 8, NoSpinWindows: tc.noWin},
					info,
					simsync.LockOpts{Iters: 4, CS: 25, Think: 50, CheckMutex: true},
				)
				if err != nil {
					b.Fatal(err)
				}
				st := res.Stats
				ops += st.Loads + st.Stores + st.RMWs
				acqs += res.Acquisitions
			}
			b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "simops/s")
			b.ReportMetric(float64(acqs)/b.Elapsed().Seconds(), "acq/s")
		})
	}
}

// BenchmarkT1 — uncontended latency, simulated bus machine. Pooled,
// as the harness runs it: one acquire/release pair per reset machine.
func BenchmarkT1_Uncontended(b *testing.B) {
	for _, li := range simsync.Locks() {
		li := li
		b.Run(li.Name, func(b *testing.B) {
			b.ReportAllocs()
			pool := new(machine.Pool)
			var cyc float64
			for i := 0; i < b.N; i++ {
				c, _, err := simsync.UncontendedLockCostIn(pool, topo.Bus, li)
				if err != nil {
					b.Fatal(err)
				}
				cyc = float64(c)
			}
			b.ReportMetric(cyc, "cycles/pair")
		})
	}
}

// BenchmarkF1F2 — bus machine lock sweep (cycles + bus transactions).
func BenchmarkF1F2_BusLocks(b *testing.B) {
	for _, li := range simsync.Locks() {
		for _, p := range []int{2, 8, 24} {
			b.Run(fmt.Sprintf("%s/P=%d", li.Name, p), func(b *testing.B) {
				simLockBench(b, topo.Bus, li.Name, p)
			})
		}
	}
}

// BenchmarkF3F4 — NUMA machine lock sweep (cycles + remote references).
func BenchmarkF3F4_NUMALocks(b *testing.B) {
	for _, li := range simsync.Locks() {
		for _, p := range []int{2, 8, 32} {
			b.Run(fmt.Sprintf("%s/P=%d", li.Name, p), func(b *testing.B) {
				simLockBench(b, topo.NUMA, li.Name, p)
			})
		}
	}
}

// BenchmarkF5 — backoff sensitivity ablation at P=16 on the bus machine.
func BenchmarkF5_BackoffAblation(b *testing.B) {
	for _, bp := range []simsync.BackoffParams{
		{Base: 4, Cap: 256}, {Base: 16, Cap: 2048}, {Base: 256, Cap: 16384},
	} {
		bp := bp
		b.Run(fmt.Sprintf("tas-bo/base=%d,cap=%d", bp.Base, bp.Cap), func(b *testing.B) {
			var cyc float64
			for i := 0; i < b.N; i++ {
				info := simsync.LockInfo{
					Name: "tas-bo",
					Make: func(m *machine.Machine) simsync.Lock {
						return simsync.NewTASBackoffParams(m, bp)
					},
				}
				res, err := simsync.RunLock(
					machine.Config{Procs: 16, Topo: topo.Bus, Seed: uint64(i + 1)},
					info, simsync.LockOpts{Iters: 40, CS: 25, Think: 50, CheckMutex: true},
				)
				if err != nil {
					b.Fatal(err)
				}
				cyc = res.CyclesPerAcq
			}
			b.ReportMetric(cyc, "cycles/acq")
		})
	}
	b.Run("qsync/untuned", func(b *testing.B) {
		simLockBench(b, topo.Bus, "qsync", 16)
	})
}

// BenchmarkF6 — critical-section length crossover at P=16.
func BenchmarkF6_CSLength(b *testing.B) {
	for _, cs := range []int64{0, 400, 1600} {
		for _, name := range []string{"tas", "ticket", "qsync"} {
			cs, name := cs, name
			b.Run(fmt.Sprintf("%s/cs=%d", name, cs), func(b *testing.B) {
				info, _ := simsync.LockByName(name)
				var cyc float64
				for i := 0; i < b.N; i++ {
					res, err := simsync.RunLock(
						machine.Config{Procs: 16, Topo: topo.Bus, Seed: uint64(i + 1)},
						info, simsync.LockOpts{Iters: 40, CS: sim.Time(cs), Think: sim.Time(2 * cs), CheckMutex: true},
					)
					if err != nil {
						b.Fatal(err)
					}
					cyc = res.CyclesPerAcq
				}
				b.ReportMetric(cyc, "cycles/acq")
			})
		}
	}
}

// BenchmarkF7 — barrier sweep on the bus machine.
func BenchmarkF7_BusBarriers(b *testing.B) {
	for _, bi := range simsync.Barriers() {
		for _, p := range []int{4, 16} {
			b.Run(fmt.Sprintf("%s/P=%d", bi.Name, p), func(b *testing.B) {
				simBarrierBench(b, topo.Bus, bi.Name, p)
			})
		}
	}
}

// BenchmarkF8 — barrier sweep on the NUMA machine.
func BenchmarkF8_NUMABarriers(b *testing.B) {
	for _, bi := range simsync.Barriers() {
		for _, p := range []int{8, 32} {
			b.Run(fmt.Sprintf("%s/P=%d", bi.Name, p), func(b *testing.B) {
				simBarrierBench(b, topo.NUMA, bi.Name, p)
			})
		}
	}
}

// BenchmarkF9 — real-runtime reader-writer locks across read
// fractions, swept over the whole rwlock registry.
func BenchmarkF9_RWMutex(b *testing.B) {
	for _, info := range locks.RWLocks() {
		for _, frac := range []float64{0.5, 0.9, 1.0} {
			info, frac := info, frac
			b.Run(fmt.Sprintf("%s/read=%.2f", info.Name, frac), func(b *testing.B) {
				rw := info.New(runtime.GOMAXPROCS(0))
				b.RunParallel(func(pb *testing.PB) {
					rng := uint64(0x9e3779b97f4a7c15)
					for pb.Next() {
						rng ^= rng << 13
						rng ^= rng >> 7
						rng ^= rng << 17
						if float64(rng%1000) < frac*1000 {
							tok := rw.RLock()
							rw.RUnlock(tok)
						} else {
							rw.Lock()
							rw.Unlock()
						}
					}
				})
			})
		}
	}
}

// BenchmarkF10 — real-runtime bounded-buffer pipeline.
func BenchmarkF10_Pipeline(b *testing.B) {
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(fmt.Sprintf("w=%d", workers), func(b *testing.B) {
			var itemsPerSec float64
			for i := 0; i < b.N; i++ {
				res := workload.RunPipeline(workload.PipelineOpts{
					Producers: workers, Consumers: workers,
					Items: 20000, Capacity: 64, Mode: core.SpinPark,
				})
				if !res.SumValidated {
					b.Fatal("pipeline checksum mismatch")
				}
				itemsPerSec = res.ItemsPerSec
			}
			b.ReportMetric(itemsPerSec, "items/s")
		})
	}
}

// BenchmarkF14 — simulated semaphores through the bounded buffer.
func BenchmarkF14_SimSemaphores(b *testing.B) {
	for _, si := range simsync.Semaphores() {
		for _, p := range []int{4, 16} {
			si, p := si, p
			b.Run(fmt.Sprintf("%s/P=%d", si.Name, p), func(b *testing.B) {
				var cyc, traf float64
				for i := 0; i < b.N; i++ {
					res, err := simsync.RunProducerConsumer(
						machine.Config{Procs: p, Topo: topo.Bus, Seed: uint64(i + 1)},
						si, simsync.PCOpts{Items: 60, Capacity: 4, Work: 20},
					)
					if err != nil {
						b.Fatal(err)
					}
					cyc, traf = res.CyclesPerItem, res.TrafficPerItem
				}
				b.ReportMetric(cyc, "cycles/item")
				b.ReportMetric(traf, "traffic/item")
			})
		}
	}
}

// BenchmarkF13 — simulated reader-writer locks.
func BenchmarkF13_SimRWLocks(b *testing.B) {
	for _, ri := range simsync.RWLocks() {
		for _, frac := range []float64{0.5, 0.9} {
			ri, frac := ri, frac
			b.Run(fmt.Sprintf("%s/read=%.1f", ri.Name, frac), func(b *testing.B) {
				var cyc float64
				for i := 0; i < b.N; i++ {
					res, err := simsync.RunRW(
						machine.Config{Procs: 16, Topo: topo.Bus, Seed: uint64(i + 1)},
						ri, simsync.RWOpts{Iters: 30, ReadFraction: frac, Work: 40, Think: 60},
					)
					if err != nil {
						b.Fatal(err)
					}
					cyc = res.CyclesPerOp
				}
				b.ReportMetric(cyc, "cycles/op")
			})
		}
	}
}

// BenchmarkF11 — real-runtime lock acquire/release under contention.
func BenchmarkF11_RealLocks(b *testing.B) {
	for _, li := range locks.All() {
		li := li
		b.Run(li.Name, func(b *testing.B) {
			l := li.New(runtime.GOMAXPROCS(0) * 2)
			counter := 0
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					l.Lock()
					counter++
					l.Unlock()
				}
			})
		})
	}
}

// BenchmarkF12 — spin vs park, oversubscribed by 4x.
func BenchmarkF12_Oversubscription(b *testing.B) {
	n := runtime.GOMAXPROCS(0)
	for _, tc := range []struct {
		name string
		mode core.WaitMode
	}{{"spin", core.Spin}, {"spin-park", core.SpinPark}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			m := &core.Mutex{Mode: tc.mode}
			workers := n * 4
			var wg sync.WaitGroup
			per := b.N/workers + 1
			counter := 0
			b.ResetTimer()
			for g := 0; g < workers; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						m.Lock()
						counter++
						m.Unlock()
					}
				}()
			}
			wg.Wait()
		})
	}
}

// BenchmarkF16_Counters — simulated hot-spot counters at scale: the
// sharded stripe counter against fetch&add and software combining.
func BenchmarkF16_Counters(b *testing.B) {
	for _, ci := range simsync.Counters() {
		for _, p := range []int{16, 64} {
			ci, p := ci, p
			b.Run(fmt.Sprintf("%s/P=%d", ci.Name, p), func(b *testing.B) {
				var cyc, traf float64
				for i := 0; i < b.N; i++ {
					res, err := simsync.RunCounter(
						machine.Config{Procs: p, Topo: topo.NUMA, Seed: uint64(i + 1)},
						ci, simsync.CounterOpts{Incs: 40},
					)
					if err != nil {
						b.Fatal(err)
					}
					cyc, traf = res.CyclesPerInc, res.TrafficPerInc
				}
				b.ReportMetric(cyc, "cycles/inc")
				b.ReportMetric(traf, "traffic/inc")
			})
		}
	}
}

// BenchmarkCountersReal — real-runtime hot-spot counter: one atomic
// word vs the sharded stripe counter, all cores incrementing.
func BenchmarkCountersReal(b *testing.B) {
	b.Run("central", func(b *testing.B) {
		c := repro.NewCentralCounter() // one plain atomic word
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Inc()
			}
		})
		if c.Load() != int64(b.N) {
			b.Fatalf("lost updates: %d != %d", c.Load(), b.N)
		}
	})
	b.Run("sharded", func(b *testing.B) {
		c := repro.NewShardedCounter(0)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Inc()
			}
		})
		if c.Load() != int64(b.N) {
			b.Fatalf("lost updates: %d != %d", c.Load(), b.N)
		}
	})
}

// BenchmarkShardedRWRead — read-side scalability of the sharded
// reader-writer lock vs the central queue lock.
func BenchmarkShardedRWRead(b *testing.B) {
	b.Run("rw-qsync", func(b *testing.B) {
		var rw repro.RWMutex
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				tok := rw.RLock()
				rw.RUnlock(tok)
			}
		})
	})
	b.Run("rw-sharded", func(b *testing.B) {
		rw := repro.NewShardedRWMutex(0)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				tok := rw.RLock()
				rw.RUnlock(tok)
			}
		})
	})
}

// BenchmarkBarriers_Real — real-runtime barrier episode cost.
func BenchmarkBarriers_Real(b *testing.B) {
	parties := runtime.GOMAXPROCS(0)
	if parties > 8 {
		parties = 8
	}
	for _, bi := range barriers.All() {
		bi := bi
		b.Run(bi.Name, func(b *testing.B) {
			bar := bi.New(parties)
			var wg sync.WaitGroup
			b.ResetTimer()
			for id := 0; id < parties; id++ {
				id := id
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < b.N; i++ {
						bar.Wait(id)
					}
				}()
			}
			wg.Wait()
		})
	}
}

// BenchmarkUncontendedReal — T1's real-runtime twin.
func BenchmarkUncontendedReal(b *testing.B) {
	for _, li := range locks.All() {
		li := li
		b.Run(li.Name, func(b *testing.B) {
			l := li.New(1)
			for i := 0; i < b.N; i++ {
				l.Lock()
				l.Unlock()
			}
		})
	}
}
